# Empty compiler generated dependencies file for exrquy_xquery.
# This may be replaced when dependencies are built.
