// The order-dependency and semantic-type domains (opt/analyses.h), from
// unit level to end-to-end:
//
//  1. lattice algebra: ItemKind join/leq, OrderImplied over hand-built
//     fact sets (strictness, constant skipping, single-row saturation);
//  2. rewrite level: hand-built plans where the order-dependency trade
//     must fire (input already sorted, monotone function images) and
//     where it must not (unsorted input, direction mismatch), plus the
//     semantic-type unit-group trade seeded by kCardCheck — each with
//     the surviving operator population pinned and the traded plans
//     evaluated to confirm the positional ranks are the right ranks;
//  3. fuzzing: rownum_by_od on vs off must be byte-identical in both
//     ordering modes — the trade replaces a % with an operator that
//     produces the exact same column, so flipping the flag can never
//     show up in results;
//  4. dynamic validation: every sortedness fact and unit group claimed
//     for an optimized XMark sub-plan is checked against the actually
//     materialized table.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "algebra/algebra.h"
#include "algebra/stats.h"
#include "api/session.h"
#include "engine/eval.h"
#include "engine/value.h"
#include "opt/analyses.h"
#include "opt/pipeline.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

namespace exrquy {
namespace {

using col::item;
using col::iter;
using col::pos;

// ---------------------------------------------------------------------------
// 1. Lattice algebra.
// ---------------------------------------------------------------------------

TEST(ItemKindLattice, LeqIsAPartialOrderWithTopAny) {
  const ItemKind all[] = {ItemKind::kInt,  ItemKind::kNumeric,
                          ItemKind::kString, ItemKind::kBool,
                          ItemKind::kNode, ItemKind::kAny};
  for (ItemKind k : all) {
    EXPECT_TRUE(KindLe(k, k)) << ItemKindName(k);
    EXPECT_TRUE(KindLe(k, ItemKind::kAny)) << ItemKindName(k);
  }
  EXPECT_TRUE(KindLe(ItemKind::kInt, ItemKind::kNumeric));
  EXPECT_FALSE(KindLe(ItemKind::kNumeric, ItemKind::kInt));
  EXPECT_FALSE(KindLe(ItemKind::kString, ItemKind::kNumeric));
  EXPECT_FALSE(KindLe(ItemKind::kAny, ItemKind::kNode));
}

TEST(ItemKindLattice, JoinIsLeastUpperBound) {
  EXPECT_EQ(KindJoin(ItemKind::kInt, ItemKind::kInt), ItemKind::kInt);
  EXPECT_EQ(KindJoin(ItemKind::kInt, ItemKind::kNumeric),
            ItemKind::kNumeric);
  EXPECT_EQ(KindJoin(ItemKind::kInt, ItemKind::kString), ItemKind::kAny);
  EXPECT_EQ(KindJoin(ItemKind::kBool, ItemKind::kNode), ItemKind::kAny);
  const ItemKind all[] = {ItemKind::kInt,  ItemKind::kNumeric,
                          ItemKind::kString, ItemKind::kBool,
                          ItemKind::kNode, ItemKind::kAny};
  for (ItemKind a : all) {
    for (ItemKind b : all) {
      ItemKind j = KindJoin(a, b);
      EXPECT_EQ(j, KindJoin(b, a));  // commutative
      EXPECT_TRUE(KindLe(a, j));     // an upper bound
      EXPECT_TRUE(KindLe(b, j));
    }
  }
  EXPECT_TRUE(KindIsNumeric(ItemKind::kInt));
  EXPECT_TRUE(KindIsNumeric(ItemKind::kNumeric));
  EXPECT_FALSE(KindIsNumeric(ItemKind::kAny));
}

TEST(OrderImpliedTest, FactsConstantsAndSaturation) {
  ColId a = ColSym("oi_a");
  ColId b = ColSym("oi_b");
  ColId c = ColSym("oi_c");
  OrderFact a_strict{{{a, false}}, true};
  OrderFact a_loose{{{a, false}}, false};

  // A fact implies its own order, strict or not.
  EXPECT_TRUE(OrderImplied({a_strict}, {}, {}, false, {{a, false}}));
  EXPECT_TRUE(OrderImplied({a_loose}, {}, {}, false, {{a, false}}));
  // ... but never the opposite direction.
  EXPECT_FALSE(OrderImplied({a_strict}, {}, {}, false, {{a, true}}));

  // Strict exhaustion: <a>! ties on nothing, so every extension of <a>
  // is realized; the non-strict fact leaves <a,b> open.
  EXPECT_TRUE(
      OrderImplied({a_strict}, {}, {}, false, {{a, false}, {b, false}}));
  EXPECT_FALSE(
      OrderImplied({a_loose}, {}, {}, false, {{a, false}, {b, false}}));

  // Constant criteria are skippable on the requested side, in either
  // direction (all rows tie on them).
  EXPECT_TRUE(OrderImplied({}, {c}, {}, false, {{c, false}}));
  EXPECT_TRUE(OrderImplied({}, {c}, {}, false, {{c, true}}));
  EXPECT_TRUE(OrderImplied({a_strict}, {c}, {}, false,
                           {{c, true}, {a, false}, {b, false}}));

  // No fact, no constants: nothing is implied ...
  EXPECT_FALSE(OrderImplied({}, {}, {}, false, {{b, false}}));
  // ... unless the relation can never hold two rows.
  EXPECT_TRUE(OrderImplied({}, {}, {}, true, {{b, true}}));
}

// ---------------------------------------------------------------------------
// 2. The rewrites, on hand-built plans.
// ---------------------------------------------------------------------------

class OrderDependencyTest : public ::testing::Test {
 protected:
  // (iter, pos, item) rows.
  OpId Triples(std::vector<std::array<int64_t, 3>> rows) {
    LitTable t;
    t.cols = {iter(), pos(), item()};
    for (const auto& r : rows) {
      t.rows.push_back(
          {Value::Int(r[0]), Value::Int(r[1]), Value::Int(r[2])});
    }
    return dag_.Lit(std::move(t));
  }

  OpId Opt(OpId root, RewriteOptions rewrites = {}) {
    OptimizeOptions options;
    options.rewrites = rewrites;
    options.verify_each_pass = true;  // audits run on every pass
    Result<OpId> opt = Optimize(&dag_, root, options);
    EXPECT_TRUE(opt.ok()) << opt.status().ToString();
    return opt.ok() ? *opt : root;
  }

  // Evaluates `root` serially and returns the `col` column.
  std::vector<int64_t> Eval(OpId root, ColId col) {
    EvalContext ctx;
    ctx.store = &store_;
    ctx.strings = &strings_;
    ctx.num_threads = 1;
    Evaluator ev(dag_, &ctx);
    Result<TablePtr> r = ev.Eval(root);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    std::vector<int64_t> out;
    if (!r.ok()) return out;
    for (size_t row = 0; row < (*r)->rows(); ++row) {
      Value v = (*r)->at(col, row);
      EXPECT_EQ(v.kind, ValueKind::kInt);
      out.push_back(v.i);
    }
    return out;
  }

  Dag dag_;
  StrPool strings_;
  NodeStore store_{&strings_};
};

// The input is already sorted by the requested criterion: the % is a
// sort that provably does nothing, so it degrades to a positional #
// (RowId^) whose ids are exactly the ranks the % would have computed.
TEST_F(OrderDependencyTest, RowNumOverSortedInputBecomesPositionalRowId) {
  OpId l = Triples({{1, 1, 5}, {1, 2, 7}, {1, 3, 9}});
  ColId rank = ColSym("od_r1");
  OpId rn = dag_.RowNum(l, rank, {{item(), false}}, kNoCol);
  OpId proj = dag_.Project(rn, {{iter(), iter()}, {pos(), rank},
                                {item(), item()}});
  OpId opt = Opt(proj);
  PlanStats stats = CollectPlanStats(dag_, opt);
  EXPECT_EQ(stats.rownum_ops, 0u);
  EXPECT_EQ(stats.rowid_ops, 1u);
  EXPECT_EQ(stats.positional_rowid_ops, 1u);
  // The positional ids are the ranks the sort would have assigned.
  EXPECT_EQ(Eval(opt, pos()), (std::vector<int64_t>{1, 2, 3}));
}

// Unsorted input: the fact is not derivable and the % must survive.
TEST_F(OrderDependencyTest, RowNumOverUnsortedInputSurvives) {
  OpId l = Triples({{1, 1, 9}, {1, 2, 5}, {1, 3, 7}});
  ColId rank = ColSym("od_r2");
  OpId rn = dag_.RowNum(l, rank, {{item(), false}}, kNoCol);
  OpId proj = dag_.Project(rn, {{iter(), iter()}, {pos(), rank},
                                {item(), item()}});
  OpId opt = Opt(proj);
  EXPECT_EQ(CollectPlanStats(dag_, opt).rownum_ops, 1u);
  EXPECT_EQ(Eval(opt, pos()), (std::vector<int64_t>{3, 1, 2}));
}

// Direction matters: ascending data does not realize a descending
// request.
TEST_F(OrderDependencyTest, DirectionMismatchBlocksTheTrade) {
  OpId l = Triples({{1, 1, 5}, {1, 2, 7}, {1, 3, 9}});
  ColId rank = ColSym("od_r3");
  OpId rn = dag_.RowNum(l, rank, {{item(), true}}, kNoCol);
  OpId proj = dag_.Project(rn, {{iter(), iter()}, {pos(), rank},
                                {item(), item()}});
  OpId opt = Opt(proj);
  EXPECT_EQ(CollectPlanStats(dag_, opt).rownum_ops, 1u);
  EXPECT_EQ(Eval(opt, pos()), (std::vector<int64_t>{3, 2, 1}));
}

// Monotone-map transfer: fn:number over a statically numeric sorted
// column preserves the sortedness fact, so ordering by the image column
// still collapses the %.
TEST_F(OrderDependencyTest, MonotoneFunctionImagePreservesSortedness) {
  OpId l = Triples({{1, 1, 5}, {1, 2, 7}, {1, 3, 9}});
  ColId d = ColSym("od_d4");
  OpId f = dag_.Fun(l, FunKind::kToDouble, d, {item()});
  ColId rank = ColSym("od_r4");
  OpId rn = dag_.RowNum(f, rank, {{d, false}}, kNoCol);
  OpId proj = dag_.Project(rn, {{iter(), iter()}, {pos(), rank}, {d, d}});
  OpId opt = Opt(proj);
  PlanStats stats = CollectPlanStats(dag_, opt);
  EXPECT_EQ(stats.rownum_ops, 0u);
  EXPECT_EQ(stats.positional_rowid_ops, 1u);
  EXPECT_EQ(Eval(opt, pos()), (std::vector<int64_t>{1, 2, 3}));
}

// Antitone transfer: negation flips the direction, so a descending
// request over the negated column is realized (and the ascending one is
// not).
TEST_F(OrderDependencyTest, AntitoneFunctionFlipsDirection) {
  for (bool descending : {true, false}) {
    Dag dag;
    LitTable t;
    t.cols = {iter(), pos(), item()};
    for (int64_t i = 0; i < 3; ++i) {
      t.rows.push_back(
          {Value::Int(1), Value::Int(i + 1), Value::Int(5 + 2 * i)});
    }
    OpId l = dag.Lit(std::move(t));
    ColId n = ColSym("od_n5");
    OpId f = dag.Fun(l, FunKind::kNeg, n, {item()});
    ColId rank = ColSym("od_r5");
    OpId rn = dag.RowNum(f, rank, {{n, descending}}, kNoCol);
    OpId proj = dag.Project(rn, {{iter(), iter()}, {pos(), rank}, {n, n}});
    OptimizeOptions options;
    options.verify_each_pass = true;
    Result<OpId> opt = Optimize(&dag, proj, options);
    ASSERT_TRUE(opt.ok()) << opt.status().ToString();
    PlanStats stats = CollectPlanStats(dag, *opt);
    // -item of an ascending item is descending: only the descending
    // request is already realized.
    EXPECT_EQ(stats.rownum_ops, descending ? 0u : 1u);
  }
}

// Semantic-type trade: a per-iteration cardinality assertion
// (fn:exactly-one) makes iter a unit group — partitions by it are
// singletons and every rank is 1. The key-driven rule is disabled to
// prove this is the semantic-type domain's own contribution.
TEST_F(OrderDependencyTest, CardCheckUnitGroupCollapsesPartitionedRowNum) {
  OpId l = Triples({{1, 1, 7}, {2, 1, 5}});
  LitTable loop_t;
  loop_t.cols = {iter()};
  loop_t.rows = {{Value::Int(1)}, {Value::Int(2)}};
  OpId loop = dag_.Lit(std::move(loop_t));
  OpId cc = dag_.CardCheck(l, loop, 1, 1, strings_.Intern("exactly-one"));
  ColId rank = ColSym("od_r6");
  OpId rn = dag_.RowNum(cc, rank, {{pos(), false}}, iter());
  OpId proj = dag_.Project(rn, {{iter(), iter()}, {pos(), rank},
                                {item(), item()}});

  RewriteOptions no_keys;
  no_keys.rownum_by_keys = false;
  OpId opt = Opt(proj, no_keys);
  EXPECT_EQ(CollectPlanStats(dag_, opt).rownum_ops, 0u);
  EXPECT_EQ(Eval(opt, pos()), (std::vector<int64_t>{1, 1}));

  // With the order-dependency/semantic-type flag also off, nothing else
  // can eliminate this %.
  RewriteOptions all_off = no_keys;
  all_off.rownum_by_od = false;
  OpId kept = Opt(proj, all_off);
  EXPECT_EQ(CollectPlanStats(dag_, kept).rownum_ops, 1u);
  EXPECT_EQ(Eval(kept, pos()), (std::vector<int64_t>{1, 1}));
}

// ---------------------------------------------------------------------------
// 3. Fuzz: the flag is invisible in results.
// ---------------------------------------------------------------------------

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 0x9e3779b97f4a7c15ull + 1) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  int Below(int n) { return static_cast<int>(Next() % n); }

 private:
  uint64_t state_;
};

std::string RandomDoc(Rng* rng) {
  std::string xml = "<top>";
  int groups = 2 + rng->Below(4);
  for (int g = 0; g < groups; ++g) {
    xml += "<g k=\"" + std::to_string(rng->Below(9)) + "\">";
    int leaves = rng->Below(4);
    for (int l = 0; l < leaves; ++l) {
      xml += "<n v=\"" + std::to_string(rng->Below(30)) + "\">" +
             std::to_string(rng->Below(30)) + "</n>";
    }
    xml += "</g>";
  }
  xml += "</top>";
  return xml;
}

// Order-heavy productions: order by over numeric images, positional
// predicates, nested for — the constructs whose % population the
// order-dependency trade targets.
std::string RandomQuery(Rng* rng) {
  std::string path = (rng->Below(2) != 0) ? R"(doc("f.xml")/top/g)"
                                          : R"(doc("f.xml")//n)";
  switch (rng->Below(5)) {
    case 0:
      return "for $x in " + path +
             " order by number($x/@k) return count($x/n)";
    case 1:
      return "for $x in " + path + " order by -number($x/@v)" +
             " return <r>{ $x/@v }</r>";
    case 2:
      return "for $x in " + path + "[" + std::to_string(1 + rng->Below(3)) +
             "] return exactly-one($x)/@k";
    case 3:
      return "for $x in " + path + " for $y in $x/n[" +
             std::to_string(1 + rng->Below(2)) + "] return number($y)";
    default:
      return "sum(for $x in " + path + " return count($x//n))";
  }
}

class OdFlagFuzzTest : public ::testing::TestWithParam<int> {};

// rownum_by_od trades a % for an operator computing the exact same
// ranks, so turning the flag off must be byte-invisible — in ordered
// AND in unordered mode (the trade never licenses a reordering, unlike
// the mode switch itself).
TEST_P(OdFlagFuzzTest, FlagIsByteInvisible) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 77);
  Session session;
  ASSERT_TRUE(session.LoadDocument("f.xml", RandomDoc(&rng)).ok());

  for (int i = 0; i < 25; ++i) {
    std::string query = RandomQuery(&rng);
    for (bool unordered : {false, true}) {
      QueryOptions on;
      QueryOptions off;
      if (unordered) {
        on.default_ordering = OrderingMode::kUnordered;
        off.default_ordering = OrderingMode::kUnordered;
      }
      off.rownum_by_od = false;
      on.verify_each_pass = true;
      off.verify_each_pass = true;
      Result<QueryResult> a = session.Execute(query, on);
      Result<QueryResult> b = session.Execute(query, off);
      ASSERT_EQ(a.ok(), b.ok())
          << query << "\non:  " << a.status().ToString()
          << "\noff: " << b.status().ToString();
      if (!a.ok()) continue;
      EXPECT_EQ(a->serialized, b->serialized) << query;
      EXPECT_EQ(a->items, b->items) << query;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OdFlagFuzzTest, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// 4. Dynamic validation on XMark.
// ---------------------------------------------------------------------------

std::pair<uint8_t, uint64_t> ValueBits(const Value& v) {
  uint64_t bits = 0;
  switch (v.kind) {
    case ValueKind::kInt:
      bits = static_cast<uint64_t>(v.i);
      break;
    case ValueKind::kDouble:
      static_assert(sizeof(v.d) == sizeof(bits));
      __builtin_memcpy(&bits, &v.d, sizeof(bits));
      break;
    case ValueKind::kString:
    case ValueKind::kUntyped:
      bits = v.str;
      break;
    case ValueKind::kBool:
      bits = v.b ? 1 : 0;
      break;
    case ValueKind::kNode:
      bits = v.node;
      break;
  }
  return {static_cast<uint8_t>(v.kind), bits};
}

class OrderDependencyXMarkTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    session_ = new Session();
    XMarkOptions options;
    options.scale = 0.004;
    ASSERT_TRUE(
        session_->LoadDocument("auction.xml", GenerateXMark(options)).ok());
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }

  static Session* session_;
};

Session* OrderDependencyXMarkTest::session_ = nullptr;

// Every sortedness fact and unit group the analyses claim for an
// optimized XMark sub-plan must hold on the materialized table:
// lexicographic order under the engine's OrderCompare (no full tie when
// strict), duplicate-freeness for unit-group columns. Evaluating every
// operator re-runs its whole subtree, so the per-plan checked set is
// capped to a sample of operators with non-trivial claims.
TEST_F(OrderDependencyXMarkTest, ClaimedFactsHoldDynamically) {
  EvalContext ctx;
  ctx.store = &session_->store();
  ctx.strings = &session_->strings();
  ctx.documents = session_->documents();
  ctx.num_threads = 1;
  ValueOps ops(&session_->strings(), &session_->store());

  size_t order_checks = 0;
  size_t unit_checks = 0;
  for (const XMarkQuery& q : XMarkQueries()) {
    for (bool unordered : {false, true}) {
      QueryOptions options;
      if (unordered) options.default_ordering = OrderingMode::kUnordered;
      Result<QueryPlans> p = session_->Plan(q.text, options);
      ASSERT_TRUE(p.ok()) << q.name << ": " << p.status().ToString();
      const Dag& dag = *p->dag;
      PropertyTracker props(&dag);
      CardTracker cards(&dag);
      KeyTracker keys(&dag, &cards);
      SemTypeTracker sem(&dag, &cards);
      OrderTracker od(&dag, &props, &cards, &keys, &sem);

      std::vector<OpId> targets;
      for (OpId id : dag.ReachableFrom(p->optimized)) {
        if (!od.Get(id).facts.empty() ||
            !sem.Get(id).unit_groups.empty()) {
          targets.push_back(id);
        }
      }
      const size_t kMaxTargets = 24;
      if (targets.size() > kMaxTargets) {
        std::vector<OpId> sampled;
        for (size_t i = 0; i < kMaxTargets; ++i) {
          sampled.push_back(targets[i * targets.size() / kMaxTargets]);
        }
        targets = std::move(sampled);
      }

      for (OpId id : targets) {
        Evaluator ev(dag, &ctx);
        Result<TablePtr> r = ev.Eval(id);
        ASSERT_TRUE(r.ok())
            << q.name << " op " << id << ": " << r.status().ToString();
        const Table& t = **r;

        for (const OrderFact& fact : od.Get(id).facts) {
          for (size_t row = 1; row < t.rows(); ++row) {
            bool tied = true;
            for (const SortKey& k : fact.keys) {
              int c = ops.OrderCompare(t.at(k.col, row - 1),
                                       t.at(k.col, row));
              if (k.descending) c = -c;
              ASSERT_LE(c, 0)
                  << q.name << " op " << id << ": claimed "
                  << fact.ToString() << " violated at row " << row;
              if (c < 0) {
                tied = false;
                break;
              }
            }
            EXPECT_TRUE(!fact.strict || !tied)
                << q.name << " op " << id << ": strict claim "
                << fact.ToString() << " tied at row " << row;
          }
          ++order_checks;
        }

        for (ColId c : sem.Get(id).unit_groups) {
          std::set<std::pair<uint8_t, uint64_t>> distinct;
          for (size_t row = 0; row < t.rows(); ++row) {
            EXPECT_TRUE(distinct.insert(ValueBits(t.at(c, row))).second)
                << q.name << " op " << id << ": claimed unit group " << c
                << " has a duplicate at row " << row;
          }
          ++unit_checks;
        }
      }
    }
  }
  // The corpus genuinely exercises both domains.
  EXPECT_GT(order_checks, 100u);
  EXPECT_GT(unit_checks, 0u);
}

}  // namespace
}  // namespace exrquy
