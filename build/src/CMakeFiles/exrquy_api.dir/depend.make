# Empty dependencies file for exrquy_api.
# This may be replaced when dependencies are built.
