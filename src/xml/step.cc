#include "xml/step.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <unordered_map>

#include "common/check.h"

namespace exrquy {

const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kSelf:
      return "self";
    case Axis::kAttribute:
      return "attribute";
    case Axis::kParent:
      return "parent";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
    case Axis::kFollowing:
      return "following";
    case Axis::kPreceding:
      return "preceding";
  }
  return "?";
}

std::string NodeTestToString(const NodeTest& test, const StrPool& strings) {
  switch (test.kind) {
    case NodeTest::Kind::kAnyKind:
      return "node()";
    case NodeTest::Kind::kText:
      return "text()";
    case NodeTest::Kind::kComment:
      return "comment()";
    case NodeTest::Kind::kWildcard:
      return "*";
    case NodeTest::Kind::kName:
      return strings.Get(test.name);
  }
  return "?";
}

bool MatchesTest(const NodeStore& store, NodeIdx n, Axis axis,
                 const NodeTest& test) {
  NodeKind k = store.kind(n);
  NodeKind principal =
      axis == Axis::kAttribute ? NodeKind::kAttribute : NodeKind::kElement;
  switch (test.kind) {
    case NodeTest::Kind::kAnyKind:
      return true;
    case NodeTest::Kind::kText:
      return k == NodeKind::kText;
    case NodeTest::Kind::kComment:
      return k == NodeKind::kComment;
    case NodeTest::Kind::kWildcard:
      return k == principal;
    case NodeTest::Kind::kName:
      return k == principal && store.name(n) == test.name;
  }
  return false;
}

namespace {

// Per-context emitters. Each pushes the axis results for context `n`.

void EmitChildren(const NodeStore& store, NodeIdx n, Axis axis,
                  const NodeTest& test, std::vector<NodeIdx>* out) {
  NodeIdx end = n + store.size(n);
  NodeIdx c = n + 1;
  while (c <= end) {
    if (store.kind(c) != NodeKind::kAttribute &&
        MatchesTest(store, c, axis, test)) {
      out->push_back(c);
    }
    c += store.size(c) + 1;
  }
}

void EmitAttributes(const NodeStore& store, NodeIdx n, Axis axis,
                    const NodeTest& test, std::vector<NodeIdx>* out) {
  NodeIdx end = n + store.size(n);
  for (NodeIdx c = n + 1; c <= end && store.kind(c) == NodeKind::kAttribute;
       ++c) {
    if (MatchesTest(store, c, axis, test)) out->push_back(c);
  }
}

// Scans the subtree range, excluding attribute nodes (attributes are not
// on the descendant axis even though they live inside the subtree range).
void EmitDescendantsScan(const NodeStore& store, NodeIdx n, Axis axis,
                         const NodeTest& test, std::vector<NodeIdx>* out) {
  NodeIdx end = n + store.size(n);
  for (NodeIdx c = n + 1; c <= end; ++c) {
    if (store.kind(c) == NodeKind::kAttribute) continue;
    if (MatchesTest(store, c, axis, test)) out->push_back(c);
  }
}

// Fast path: binary-searched range of the per-tag index.
void EmitDescendantsIndexed(const std::vector<NodeIdx>& index, NodeIdx n,
                            uint32_t size, std::vector<NodeIdx>* out) {
  auto lo = std::lower_bound(index.begin(), index.end(), n + 1);
  auto hi = std::upper_bound(lo, index.end(), n + size);
  out->insert(out->end(), lo, hi);
}

void EmitAncestors(const NodeStore& store, NodeIdx n, Axis axis,
                   const NodeTest& test, bool with_self,
                   std::vector<NodeIdx>* out) {
  NodeIdx c = with_self ? n : store.parent(n);
  if (!with_self && c == kInvalidNode) return;
  while (c != kInvalidNode) {
    if (MatchesTest(store, c, axis, test)) out->push_back(c);
    c = store.parent(c);
  }
}

void EmitSiblings(const NodeStore& store, NodeIdx n, Axis axis,
                  const NodeTest& test, bool following,
                  std::vector<NodeIdx>* out) {
  NodeIdx p = store.parent(n);
  if (p == kInvalidNode || store.kind(n) == NodeKind::kAttribute) return;
  NodeIdx end = p + store.size(p);
  if (following) {
    NodeIdx c = n + store.size(n) + 1;
    while (c <= end) {
      if (store.kind(c) != NodeKind::kAttribute &&
          MatchesTest(store, c, axis, test)) {
        out->push_back(c);
      }
      c += store.size(c) + 1;
    }
  } else {
    NodeIdx c = p + 1;
    while (c < n) {
      if (store.kind(c) != NodeKind::kAttribute &&
          MatchesTest(store, c, axis, test)) {
        out->push_back(c);
      }
      c += store.size(c) + 1;
    }
  }
}

void EmitFollowing(const NodeStore& store, NodeIdx n, Axis axis,
                   const NodeTest& test, std::vector<NodeIdx>* out) {
  const NodeStore::Fragment& frag = store.FragmentOf(n);
  NodeIdx frag_end = frag.root + frag.node_count;
  for (NodeIdx c = n + store.size(n) + 1; c < frag_end; ++c) {
    if (store.kind(c) == NodeKind::kAttribute) continue;
    if (MatchesTest(store, c, axis, test)) out->push_back(c);
  }
}

void EmitPreceding(const NodeStore& store, NodeIdx n, Axis axis,
                   const NodeTest& test, std::vector<NodeIdx>* out) {
  const NodeStore::Fragment& frag = store.FragmentOf(n);
  for (NodeIdx c = frag.root; c < n; ++c) {
    if (store.kind(c) == NodeKind::kAttribute) continue;
    // Exclude ancestors: c is an ancestor of n iff n lies in its subtree.
    if (n <= c + store.size(c)) continue;
    if (MatchesTest(store, c, axis, test)) out->push_back(c);
  }
}

bool IsDescendantAxis(Axis axis) {
  return axis == Axis::kDescendant || axis == Axis::kDescendantOrSelf;
}

// For descendant-type axes, contexts nested inside an earlier context's
// subtree are pruned (staircase join's "pruning" phase): their results
// are covered, except for -or-self, where the context itself must still
// be emitted.
void EvalGroup(const NodeStore& store, Axis axis, const NodeTest& test,
               const std::vector<NodeIdx>& ctx,  // sorted, duplicate-free
               const std::vector<NodeIdx>* index,
               std::vector<NodeIdx>* out) {
  size_t start = out->size();
  bool sorted_disjoint = false;  // output known sorted & duplicate-free?

  if (IsDescendantAxis(axis)) {
    sorted_disjoint = true;
    NodeIdx covered_end = 0;  // exclusive upper bound of covered range
    for (NodeIdx n : ctx) {
      bool covered = n < covered_end;
      if (axis == Axis::kDescendantOrSelf && covered) {
        // Context already emitted as part of an enclosing subtree scan
        // (node() test) or would be found below; with a name test it may
        // not have been emitted by the indexed path, but it is contained
        // in the covering context's result set either way.
      }
      if (covered) continue;
      if (axis == Axis::kDescendantOrSelf &&
          MatchesTest(store, n, axis, test)) {
        out->push_back(n);
      }
      if (index != nullptr && store.FragmentOf(n).indexed) {
        EmitDescendantsIndexed(*index, n, store.size(n), out);
      } else {
        EmitDescendantsScan(store, n, axis, test, out);
      }
      covered_end = n + store.size(n) + 1;
    }
  } else {
    switch (axis) {
      case Axis::kChild:
        for (NodeIdx n : ctx) EmitChildren(store, n, axis, test, out);
        break;
      case Axis::kAttribute:
        for (NodeIdx n : ctx) EmitAttributes(store, n, axis, test, out);
        break;
      case Axis::kSelf:
        sorted_disjoint = true;
        for (NodeIdx n : ctx) {
          if (MatchesTest(store, n, axis, test)) out->push_back(n);
        }
        break;
      case Axis::kParent:
        for (NodeIdx n : ctx) {
          NodeIdx p = store.parent(n);
          if (p != kInvalidNode && MatchesTest(store, p, axis, test)) {
            out->push_back(p);
          }
        }
        break;
      case Axis::kAncestor:
        for (NodeIdx n : ctx) EmitAncestors(store, n, axis, test, false, out);
        break;
      case Axis::kAncestorOrSelf:
        for (NodeIdx n : ctx) EmitAncestors(store, n, axis, test, true, out);
        break;
      case Axis::kFollowingSibling:
        for (NodeIdx n : ctx) EmitSiblings(store, n, axis, test, true, out);
        break;
      case Axis::kPrecedingSibling:
        for (NodeIdx n : ctx) EmitSiblings(store, n, axis, test, false, out);
        break;
      case Axis::kFollowing:
        for (NodeIdx n : ctx) EmitFollowing(store, n, axis, test, out);
        break;
      case Axis::kPreceding:
        for (NodeIdx n : ctx) EmitPreceding(store, n, axis, test, out);
        break;
      default:
        EXRQUY_CHECK(false);
    }
  }

  if (!sorted_disjoint) {
    std::sort(out->begin() + start, out->end());
    out->erase(std::unique(out->begin() + start, out->end()), out->end());
  }
}

}  // namespace

void EvalStep(const NodeStore& store, Axis axis, const NodeTest& test,
              std::vector<int64_t> iters, std::vector<NodeIdx> nodes,
              std::vector<int64_t>* out_iters,
              std::vector<NodeIdx>* out_nodes) {
  EXRQUY_CHECK(iters.size() == nodes.size());
  out_iters->clear();
  out_nodes->clear();
  if (iters.empty()) return;

  // Sort contexts by (iter, node) and deduplicate.
  std::vector<uint32_t> perm(iters.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    if (iters[a] != iters[b]) return iters[a] < iters[b];
    if (nodes[a] != nodes[b]) return nodes[a] < nodes[b];
    return a < b;  // total key: duplicate contexts keep input order
  });

  // Name-index fast path applies to element name tests on descendant axes
  // (the principal kind on those axes is element).
  const std::vector<NodeIdx>* index = nullptr;
  if (IsDescendantAxis(axis) && test.kind == NodeTest::Kind::kName) {
    index = store.IndexedNodes(NodeKind::kElement, test.name);
    static const std::vector<NodeIdx> kEmptyIndex;
    if (index == nullptr) index = &kEmptyIndex;
    // Note: EvalGroup falls back to scanning for unindexed fragments.
  }

  // Loop-lifted plans frequently evaluate a step over *identical* context
  // sets in every iteration (e.g. a document root lifted across thousands
  // of bindings — the pattern Pathfinder's join recognition short-cuts by
  // evaluating the path once, Section 5). Memoizing per-group results by
  // the group's context-set hash recovers that: each distinct context set
  // is evaluated exactly once.
  struct GroupMemo {
    std::vector<NodeIdx> contexts;
    std::vector<NodeIdx> results;
  };
  std::deque<GroupMemo> memo;  // stable addresses
  std::unordered_multimap<uint64_t, const GroupMemo*> memo_index;
  auto hash_group = [](const std::vector<NodeIdx>& g) {
    uint64_t h = 1469598103934665603ull;
    for (NodeIdx n : g) {
      h ^= n + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
  };

  std::vector<NodeIdx> group;
  std::vector<NodeIdx> results;
  size_t i = 0;
  while (i < perm.size()) {
    int64_t iter = iters[perm[i]];
    group.clear();
    while (i < perm.size() && iters[perm[i]] == iter) {
      NodeIdx n = nodes[perm[i]];
      if (group.empty() || group.back() != n) group.push_back(n);
      ++i;
    }
    uint64_t h = hash_group(group);
    const std::vector<NodeIdx>* cached = nullptr;
    auto [lo, hi] = memo_index.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      if (it->second->contexts == group) {
        cached = &it->second->results;
        break;
      }
    }
    if (cached == nullptr) {
      results.clear();
      EvalGroup(store, axis, test, group, index, &results);
      memo.push_back(GroupMemo{group, results});
      memo_index.emplace(h, &memo.back());
      cached = &memo.back().results;
    }
    for (NodeIdx n : *cached) {
      out_iters->push_back(iter);
      out_nodes->push_back(n);
    }
  }
}

}  // namespace exrquy
