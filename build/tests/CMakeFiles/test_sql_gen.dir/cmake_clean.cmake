file(REMOVE_RECURSE
  "CMakeFiles/test_sql_gen.dir/test_sql_gen.cc.o"
  "CMakeFiles/test_sql_gen.dir/test_sql_gen.cc.o.d"
  "test_sql_gen"
  "test_sql_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sql_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
