// A direct, tree-walking XQuery interpreter over the normalized AST —
// deliberately *not* sharing any code with the algebraic compiler or the
// columnar engine beyond the value primitives and the axis evaluator.
//
// Its purpose is differential testing: the loop-lifting compiler, the
// rewrite pipeline and the engine together form a large trusted base;
// this interpreter provides an independent implementation of the same
// (ordered-mode) semantics, so any divergence pinpoints a bug in one of
// the two stacks. It is intentionally simple and slow (nested loops,
// no sharing) and supports exactly the subset the compiler supports.
#ifndef EXRQUY_REF_INTERP_H_
#define EXRQUY_REF_INTERP_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "engine/value.h"
#include "xml/node_store.h"
#include "xquery/ast.h"

namespace exrquy {

class RefInterpreter {
 public:
  RefInterpreter(NodeStore* store, StrPool* strings,
                 std::map<StrId, NodeIdx> documents);

  // Evaluates a normalized query body under ordered-mode semantics and
  // returns the result item sequence.
  Result<std::vector<Value>> Eval(const Expr& body);

  // Renders a result sequence the way engine/eval.h's ResultItems does
  // (nodes serialized as XML, atomics via their string value).
  std::vector<std::string> Render(const std::vector<Value>& items) const;

 private:
  using Sequence = std::vector<Value>;
  using Env = std::map<std::string, Sequence>;

  Result<Sequence> EvalExpr(const Expr& e, Env& env);
  Result<Sequence> EvalFlwor(const Expr& e, Env& env);
  Result<Sequence> EvalFlworClauses(const Expr& e, size_t idx, Env& env,
                                    std::vector<std::pair<Sequence, Sequence>>*
                                        keyed_results);
  Result<Sequence> EvalPathStep(const Expr& e, Env& env);
  Result<Sequence> EvalPredicate(const Expr& e, Env& env);
  Result<Sequence> EvalComparison(const Expr& e, Env& env);
  Result<Sequence> EvalArith(const Expr& e, Env& env);
  Result<Sequence> EvalCall(const Expr& e, Env& env);
  Result<Sequence> EvalCtor(const Expr& e, Env& env);
  Result<std::string> EvalAvt(const std::vector<CtorPart>& parts, Env& env);

  Result<bool> Ebv(const Sequence& s) const;
  Result<Value> Singleton(const Sequence& s, const char* what) const;
  // Sorts by document order / value order and removes duplicates — the
  // node-set normalization after steps and set operations.
  Sequence SortedDistinct(Sequence s) const;

  NodeStore* store_;
  StrPool* strings_;
  std::map<StrId, NodeIdx> documents_;
  // The value primitives (atomization, casts, comparison dynamics) are
  // shared with the engine on purpose: the differential surface is the
  // compiler + rewriter + relational execution, not the scalar
  // semantics.
  ValueOps ops_;
};

}  // namespace exrquy

#endif  // EXRQUY_REF_INTERP_H_
