file(REMOVE_RECURSE
  "libexrquy_sql.a"
)
