// Shared helpers for the experiment benches: session setup over generated
// XMark instances, repeated-timing, and the two experimental
// configurations of Section 5.
#ifndef EXRQUY_BENCH_BENCH_UTIL_H_
#define EXRQUY_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "api/session.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

namespace exrquy {
namespace bench {

// Baseline of Section 5: the compiler ignores order indifference.
inline QueryOptions Baseline() {
  QueryOptions o;
  o.enable_order_indifference = false;
  return o;
}

// Order indifference enabled: declare ordering unordered plus the
// normalization rules, # rules, CDA and the property rewrites.
inline QueryOptions Enabled() {
  QueryOptions o;
  o.enable_order_indifference = true;
  o.default_ordering = OrderingMode::kUnordered;
  return o;
}

inline std::unique_ptr<Session> MakeXMarkSession(double scale,
                                                 size_t* doc_bytes) {
  XMarkOptions options;
  options.scale = scale;
  std::string xml = GenerateXMark(options);
  if (doc_bytes != nullptr) *doc_bytes = xml.size();
  auto session = std::make_unique<Session>();
  Status st = session->LoadDocument("auction.xml", xml);
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return session;
}

// Median execution wall clock over `runs` executions; returns -1 on
// error. Also reports the result through *result when non-null.
inline double MedianExecMs(Session* session, const std::string& query,
                           const QueryOptions& options, int runs,
                           QueryResult* result = nullptr) {
  std::vector<double> times;
  for (int i = 0; i < runs; ++i) {
    Result<QueryResult> r = session->Execute(query, options);
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
      return -1;
    }
    times.push_back(r->execute_ms);
    if (result != nullptr && i == 0) *result = std::move(r).value();
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

inline double EnvScale(const char* name, double fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env lookup at startup
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

}  // namespace bench
}  // namespace exrquy

#endif  // EXRQUY_BENCH_BENCH_UTIL_H_
