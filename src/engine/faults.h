// Deterministic fault injection for the resource governor. A FaultPlan
// names exact failure points in terms of the engine's own monotonic
// counters — "fail allocation N", "cancel at operator dispatch K", "trip
// the deadline at chunk boundary M" — so a test (or an operator
// reproducing a production incident) can replay the identical failure on
// every run: the counters advance at well-defined points in the
// evaluator, not on wall clocks or thread identities. What is
// deterministic is the *outcome* (the query fails with the planned
// Status code iff the counter reaches the threshold, and the threshold
// is reached iff an unfaulted run would pass that many points); under
// parallel execution the specific operator observing the trip may vary,
// which the governor's clean-abort contract makes unobservable.
//
// The plan is configured per query via QueryOptions::faults or, when
// that is all zeros, the environment:
//
//   EXRQUY_FAULT_ALLOC=N           fail MemoryBudget charge N  -> kResourceExhausted
//   EXRQUY_FAULT_CANCEL_OP=K       cancel at op dispatch K     -> kCancelled
//   EXRQUY_FAULT_DEADLINE_CHUNK=M  deadline at chunk M         -> kDeadlineExceeded
#ifndef EXRQUY_ENGINE_FAULTS_H_
#define EXRQUY_ENGINE_FAULTS_H_

#include <atomic>
#include <cstdint>

namespace exrquy {

// Which failure to inject, in engine-counter coordinates. All thresholds
// are 1-based; 0 disarms the corresponding fault.
struct FaultPlan {
  uint64_t fail_alloc = 0;         // MemoryBudget charge number
  uint64_t cancel_at_op = 0;       // operator dispatch number
  uint64_t deadline_at_chunk = 0;  // chunk-boundary poll number

  bool any() const {
    return fail_alloc != 0 || cancel_at_op != 0 || deadline_at_chunk != 0;
  }

  // Reads the EXRQUY_FAULT_* environment variables (unset/invalid = 0).
  static FaultPlan FromEnv();
};

// Per-query counter state for one FaultPlan. The evaluator consults it
// at every operator dispatch and chunk boundary; thresholds compare with
// >= so the answer stays true once reached (the governor's trip latch
// makes the first observation the only one that matters).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Counts one operator dispatch; true iff the cancel fault is armed and
  // dispatch number >= cancel_at_op.
  bool CancelAtOp() {
    if (plan_.cancel_at_op == 0) return false;
    return ops_.fetch_add(1, std::memory_order_relaxed) + 1 >=
           plan_.cancel_at_op;
  }

  // Counts one chunk-boundary poll; true iff the deadline fault is armed
  // and poll number >= deadline_at_chunk.
  bool DeadlineAtChunk() {
    if (plan_.deadline_at_chunk == 0) return false;
    return chunks_.fetch_add(1, std::memory_order_relaxed) + 1 >=
           plan_.deadline_at_chunk;
  }

  const FaultPlan& plan() const { return plan_; }

 private:
  const FaultPlan plan_;
  std::atomic<uint64_t> ops_{0};
  std::atomic<uint64_t> chunks_{0};
};

}  // namespace exrquy

#endif  // EXRQUY_ENGINE_FAULTS_H_
