// Static plan verification: a single-pass well-formedness and property
// checker over the algebra DAG. The optimizer's rewrites (column pruning,
// % weakening, distinct elimination, step merging) are only trustworthy
// if every intermediate plan stays well-formed, so the verifier checks
// three layers of invariants and reports the first violation as a
// Status (never UB or a CHECK abort):
//
//  (1) structure   — every edge points to an existing, *earlier* operator
//                    (acyclicity is a local property of the id order),
//                    kNoOp never appears as a child, per-kind child
//                    arity holds, and the node-constructor sharing
//                    exemption actually holds (distinct constructor ids);
//  (2) schema      — each operator references only columns its inputs
//                    produce, produces no duplicate output column, kNoCol
//                    never escapes into a schema or a column reference,
//                    per-FunKind arities and per-Aggr argument rules
//                    hold, and the stored schema matches an independent
//                    re-derivation;
//  (3) properties  — every fact the optimizer's dataflow analyses claim
//                    (opt/analyses.h) is cross-checked against an
//                    independently derived fact base (OpFacts: constants,
//                    order-meaningless columns, keys, row-count bounds,
//                    item kinds, sorted-prefix facts):
//                    PropertyTracker's constant/arbitrary claims (which
//                    license % weakening), KeyTracker's key claims (which
//                    license Distinct elimination and keyed % collapse),
//                    CardTracker's intervals (which license the
//                    empty-plan short-circuit), SemTypeTracker's kind and
//                    unit-group claims (which license the semantic-type %
//                    collapse and gate the monotone-map order rules), and
//                    OrderTracker's sorted-prefix claims (which license
//                    the order-dependency %→# trade) must all be
//                    derivable; the
//                    column dependency analysis never demands a column an
//                    operator cannot produce (so CDA pruning can never
//                    have deleted a live column) and must agree exactly
//                    with a preserved copy of the pre-framework one-shot
//                    walk; and the order-provenance analysis must demand
//                    exactly the live columns, with every demanded column
//                    carrying at least one attributed reason.
//
// Diagnostics are stable and test-assertable:
//   plan verifier: [<invariant>] op <id> (<OpKind>): <detail>
#ifndef EXRQUY_OPT_VERIFY_H_
#define EXRQUY_OPT_VERIFY_H_

#include <unordered_map>
#include <vector>

#include "algebra/algebra.h"
#include "common/status.h"
#include "opt/analyses.h"
#include "opt/facts_audit.h"

namespace exrquy {

// Structural invariants (layer 1) are always checked — they are the
// precondition for walking the DAG at all; the flags gate the layers on
// top of them.
struct VerifyOptions {
  bool check_schema = true;
  // Re-derives column properties and cross-checks PropertyTracker and
  // ComputeICols. Slightly more expensive (still one pass per analysis);
  // the per-pass pipeline hook runs with this on.
  bool check_properties = true;
};

// The independently derived fact base (OpFacts, DeriveFacts and the
// per-domain re-derivations) lives in opt/facts_audit.h, shared with the
// rewrite-certificate checker (opt/certify.h).

// Checks a set of claimed properties for `id` against independently
// derived facts: every claimed column must exist in the operator's
// schema and be derivable. Returns the first violation as a
// "[property-claim]" diagnostic.
Status CheckClaims(const Dag& dag, OpId id, const OpFacts& claimed,
                   const OpFacts& derived);

// Checks a claimed row-count interval for `id` against independently
// derived bounds: the claim is sound only if it contains the derived
// interval. Returns the first violation as a "[cardinality-claim]"
// diagnostic.
Status CheckCardClaim(const Dag& dag, OpId id, const CardRange& claimed,
                      const OpFacts& derived);

// Checks the semantic-type domain's claims for `id`: every claimed kind
// must be at least as wide as the independently derived one, and every
// claimed unit-group column must be independently derivable as
// duplicate-free. Returns the first violation as a
// "[semantic-type-claim]" diagnostic.
Status CheckSemTypeClaims(const Dag& dag, OpId id, const SemType& claimed,
                          const OpFacts& derived);

// Checks the order-dependency domain's claims for `id`: every claimed
// sorted-prefix fact must be implied by an independently derived one (or
// hold trivially on an at-most-one-row output). Returns the first
// violation as an "[order-dependency-claim]" diagnostic.
Status CheckOrderClaims(const Dag& dag, OpId id, const OrderFacts& claimed,
                        const OpFacts& derived);

// Verifies the sub-plan rooted at `root`. Cheap: one pass per enabled
// analysis over the reachable sub-DAG, no allocation proportional to the
// data. Safe to call on arbitrarily malformed DAGs (including cyclic
// edges and out-of-range ids).
Status VerifyPlan(const Dag& dag, OpId root,
                  const VerifyOptions& options = {});

}  // namespace exrquy

#endif  // EXRQUY_OPT_VERIFY_H_
