// Value-join recognition: the paper's loop-lifted compilation scheme
// evaluates a comparison between two unordered sequences by building the
// *product space* of the enclosing for-loops — a per-iteration join on
// the iteration column whose input tables grow with |outer| x |inner|
// rows (Q8/Q9's quadratic/cubic "join" queries, Section 5: "execution
// times explode"). The comparison itself never looks at the iteration
// scaffolding, though: per iteration it compares the very same item
// values that a value-based join would pair directly.
//
// This module recognizes that shape and re-roots it:
//
//  * RecognizeJoins scans a plan for the EBV-over-product-space idiom —
//    Select(ebv-Aggr(Union(Cross(Distinct(σ(Fun cmp(⋈ iter)))), true),
//    Cross(loop \ ..., false))) consumed through the re-attachment
//    composite π(⋈ bind(π(⋈ iterR(items, σ)), map)) — and proves from
//    the plan's own structure that the inner for-space is the exact
//    product of the outer loop with a loop-invariant document-level node
//    sequence (every iteration steps the same path from the same
//    document root).
//
//  * EmitJoin rebuilds the inner sequence once at document level, keys
//    it with a fresh # (rid), re-roots both comparison chains onto their
//    small inputs, and joins them on the *compared item columns* — an
//    equality predicate over hash-safe kinds becomes a value-marked
//    EquiJoin (Op::value_join), anything else a ThetaJoin. Iteration and
//    order scaffolding columns (iter, pos, % results, the fresh rid)
//    never appear in the join predicate; the plan verifier audits this
//    independently ([join-isolation-claim] in opt/verify.cc).
//
// The surviving (outer, rid) pairs reproduce the original per-iteration
// survivors exactly: the S-space iterations are in bijection with
// (outer iteration, document item) pairs, and each comparison side
// computes a per-row function of only its own half of that pair.
#ifndef EXRQUY_OPT_JOIN_PLAN_H_
#define EXRQUY_OPT_JOIN_PLAN_H_

#include <map>
#include <string>
#include <vector>

#include "algebra/algebra.h"
#include "opt/analyses.h"
#include "opt/rewrites.h"

namespace exrquy {

// How the recognized region consumes the predicate's survivors.
enum class JoinAnchorKind {
  // π(⋈ bind(π(⋈ iterR(items_s, σ)), map_s)) — the predicate's
  // survivors re-attached straight to the outer loop.
  kPredicate,
  // The inner for-loop's whole return expression: survivors semijoin a
  // companion plan X, element construction per surviving iteration, then
  // the re-attachment to the outer loop with order columns. Recognizing
  // the full composite lets EmitJoin retire the product space itself —
  // the surviving (outer, rid) pairs are renumbered into fresh dense
  // iteration ids that reproduce the original iteration order.
  kSemijoinReturn,
};

// One recognized comparison `a_col cmp b_col` between a plan computed
// over the inner sequence (cur: leaves items_s / loop_s) and one over
// the outer loop's items lifted into the product space (leaf `lift`).
// A predicate EBV built from an `and`-conjunction yields one JoinPred
// per conjunct; the region's survivors are the iterations where every
// conjunct has a matching pair, i.e. the intersection of the per-
// predicate survivor sets.
struct JoinPred {
  FunKind cmp = FunKind::kEq;
  ColId a_col = kNoCol;
  ColId b_col = kNoCol;
  bool a_in_cur = false;  // a_col lives on the inner (cur) side
  OpId cur_root = kNoOp;
  OpId outer_root = kNoOp;
  ColId cur_iter = kNoCol;    // iteration column at each side's top
  ColId outer_iter = kNoCol;
};

// One recognized value-join region, keyed by its anchor: the Project
// that re-attaches the surviving iterations to the outer loop. All ids
// refer to the plan RecognizeJoins scanned.
struct JoinSpec {
  JoinAnchorKind akind = JoinAnchorKind::kPredicate;
  OpId anchor = kNoOp;  // π{iter:iter1X[, item]}(⋈ bind(M, map_s))
  bool with_item = false;  // anchor also carries the inner item column

  // The recognized comparisons — one for a plain predicate, several for
  // an `and`-conjunction of product-space comparisons.
  std::vector<JoinPred> preds;

  // The product space S: numbering op N under map_s/loop_s/items_s.
  OpId items_s = kNoOp;  // π{iter:bind, item}(N)
  OpId loop_s = kNoOp;   // π{iter:bind}(N)
  OpId map_s = kNoOp;    // π{iter1X:iter, bindX:bind}(N)
  ColId iter1x = kNoCol;
  ColId bindx = kNoCol;

  // Outer loop: `lift` = π{iter:bindX, item}(⋈(outer_items, map_s))
  // lifts outer_items into S; outer_items = π{iter:bind, item}(src_num)
  // enumerates the outer iterations themselves.
  OpId lift = kNoOp;
  OpId outer_items = kNoOp;
  OpId src_num = kNoOp;

  // Document-level rebuild of the per-iteration content: the original
  // Step ops (innermost first) applied over `base` (an existing
  // Cross(1-row Lit, Doc)) or over a fresh one around `doc_op`.
  OpId base = kNoOp;
  OpId doc_op = kNoOp;
  std::vector<OpId> steps;

  // Iteration-independent sub-plans the comparison sides (or X) join in
  // by value: fixed tables, left untouched by the re-rooting.
  std::vector<OpId> const_roots;

  // kSemijoinReturn only — the recognized return composite:
  //   anchor = π{iter:iter1X, pos:posX, item}(ret_num(⋈ bind(elem,
  //            map_s)))
  //   elem   = Elem(content_num(Step*(π{iter,item}(
  //            ⋈ iter=iterRX(x_root, π{iterRX:iter}(SEL))))),
  //            π{iter}(SEL))
  OpId x_root = kNoOp;    // companion plan keyed by S-iterations
  OpId ret_num = kNoOp;   // RowNum posX:<iter>|iter1X (RowId unordered)
  OpId elem = kNoOp;      // the per-iteration element constructor
  OpId content_num = kNoOp;        // RowNum pos:<...>|iter over content
  std::vector<OpId> content_steps;  // innermost first
};

// Scans the sub-plan rooted at `root` for value-join regions. Returns
// the recognized specs keyed by anchor id. Purely structural — never
// mutates the plan.
std::map<OpId, JoinSpec> RecognizeJoins(const Dag& dag, OpId root);

// Builds the re-rooted join plan for `spec` and returns its root.
// `outer_items_new` is the current pass's rewrite of spec.outer_items.
// Returns kNoOp when the join is refused: equality keys whose kinds are
// not provably hash-safe fall back to ThetaJoin, and ThetaJoin in turn
// requires options.theta_join plus statically non-node operand kinds
// (node operands make the comparison itself a type error — the original
// plan must keep raising it per iteration). `detail` receives the
// justification for the --explain-order trade log.
OpId EmitJoin(Dag* dag, const JoinSpec& spec, OpId outer_items_new,
              const RewriteOptions& options, SemTypeTracker* sem,
              CardTracker* cards, std::string* detail);

}  // namespace exrquy

#endif  // EXRQUY_OPT_JOIN_PLAN_H_
