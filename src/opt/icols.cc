#include "opt/icols.h"

#include <algorithm>

#include "common/check.h"

namespace exrquy {

std::unordered_map<OpId, ColSet> ComputeICols(const Dag& dag, OpId root,
                                              const ColSet& seed) {
  std::unordered_map<OpId, ColSet> icols;
  icols[root] = seed;

  std::vector<OpId> order = dag.ReachableFrom(root);
  // Parents first: reachable ids are topologically ordered (children have
  // smaller ids), so walk them in reverse.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    OpId id = *it;
    const Op& op = dag.op(id);
    const ColSet& r = icols[id];

    auto need = [&](size_t child, ColId c) {
      if (c == kNoCol) return;
      EXRQUY_DCHECK(dag.op(op.children[child]).HasCol(c));
      icols[op.children[child]].insert(c);
    };
    auto need_set = [&](size_t child, const ColSet& cols) {
      const Op& ch = dag.op(op.children[child]);
      for (ColId c : cols) {
        if (ch.HasCol(c)) icols[op.children[child]].insert(c);
      }
    };

    switch (op.kind) {
      case OpKind::kLit:
      case OpKind::kDoc:
        break;
      case OpKind::kProject:
        for (const auto& [n, o] : op.proj) {
          if (r.count(n) != 0) need(0, o);
        }
        break;
      case OpKind::kSelect:
        need_set(0, r);
        need(0, op.col);
        break;
      case OpKind::kEquiJoin:
        need_set(0, r);
        need_set(1, r);
        need(0, op.col);
        need(1, op.col2);
        break;
      case OpKind::kCross:
        need_set(0, r);
        need_set(1, r);
        break;
      case OpKind::kUnion:
        need_set(0, r);
        need_set(1, r);
        break;
      case OpKind::kDifference:
      case OpKind::kSemiJoin:
        need_set(0, r);
        for (ColId k : op.keys) {
          need(0, k);
          need(1, k);
        }
        break;
      case OpKind::kDistinct: {
        // Duplicate elimination depends on every input column.
        for (ColId c : dag.op(op.children[0]).schema) need(0, c);
        break;
      }
      case OpKind::kRowNum: {
        ColSet pass = r;
        pass.erase(op.col);
        need_set(0, pass);
        for (const SortKey& k : op.order) need(0, k.col);
        need(0, op.part);
        break;
      }
      case OpKind::kRowId: {
        ColSet pass = r;
        pass.erase(op.col);
        need_set(0, pass);
        break;
      }
      case OpKind::kFun: {
        ColSet pass = r;
        pass.erase(op.col);
        need_set(0, pass);
        for (ColId a : op.args) need(0, a);
        break;
      }
      case OpKind::kAggr:
        need(0, op.col2);
        need(0, op.part);
        for (ColId k : op.keys) need(0, k);
        break;
      case OpKind::kStep:
        need(0, col::iter());
        need(0, col::item());
        break;
      case OpKind::kElem:
      case OpKind::kAttr:
      case OpKind::kTextNode:
        need(0, col::iter());
        need(0, col::pos());
        need(0, col::item());
        need(1, col::iter());
        break;
      case OpKind::kRange:
        need(0, col::iter());
        need(0, op.col);
        need(0, op.col2);
        break;
      case OpKind::kCardCheck:
        need_set(0, r);
        need(0, col::iter());
        need(1, col::iter());
        break;
    }
  }
  return icols;
}

std::unordered_map<OpId, uint32_t> ConsumerCounts(const Dag& dag, OpId root) {
  std::unordered_map<OpId, uint32_t> counts;
  for (OpId id : dag.ReachableFrom(root)) {
    counts.try_emplace(id, 0);
    for (OpId c : dag.op(id).children) ++counts[c];
  }
  ++counts[root];
  return counts;
}

}  // namespace exrquy
