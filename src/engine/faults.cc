#include "engine/faults.h"

#include <cerrno>
#include <cstdlib>
#include <string>

namespace exrquy {
namespace {

// Unset/empty = 0; otherwise a plain non-negative decimal integer.
// Signs, non-digits, trailing garbage, and overflow are all rejected
// with the variable named — a typo'd fault plan silently parsing to 0
// (or to some prefix) would make an injection test pass vacuously.
Result<uint64_t> StrictEnvU64(const char* name) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env lookup at resolve
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return uint64_t{0};
  if (v[0] == '-' || v[0] == '+') {
    return InvalidArgument(std::string(name) + ": must be a non-negative " +
                           "integer, got \"" + v + "\"");
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long n = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0') {
    return InvalidArgument(std::string(name) + ": not an integer: \"" + v +
                           "\"");
  }
  if (errno == ERANGE) {
    return InvalidArgument(std::string(name) + ": out of range: \"" + v +
                           "\"");
  }
  return static_cast<uint64_t>(n);
}

Result<bool> StrictEnvBool(const char* name) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env lookup at resolve
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  std::string s(v);
  if (s == "0") return false;
  if (s == "1") return true;
  return InvalidArgument(std::string(name) + ": must be 0 or 1, got \"" + s +
                         "\"");
}

}  // namespace

Result<FaultPlan> FaultPlan::FromEnv() {
  FaultPlan plan;
  EXRQUY_ASSIGN_OR_RETURN(plan.fail_alloc, StrictEnvU64("EXRQUY_FAULT_ALLOC"));
  EXRQUY_ASSIGN_OR_RETURN(plan.cancel_at_op,
                          StrictEnvU64("EXRQUY_FAULT_CANCEL_OP"));
  EXRQUY_ASSIGN_OR_RETURN(plan.deadline_at_chunk,
                          StrictEnvU64("EXRQUY_FAULT_DEADLINE_CHUNK"));
  EXRQUY_ASSIGN_OR_RETURN(plan.transient,
                          StrictEnvBool("EXRQUY_FAULT_TRANSIENT"));
  return plan;
}

StatusCode FaultKindCode(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFailAlloc:
      return StatusCode::kResourceExhausted;
    case FaultKind::kCancelAtOp:
      return StatusCode::kCancelled;
    case FaultKind::kDeadlineAtChunk:
      return StatusCode::kDeadlineExceeded;
  }
  return StatusCode::kInternal;
}

Result<uint64_t> SweepFaultPoints(
    FaultKind kind, uint64_t max_points,
    const std::function<Status(const FaultPlan&)>& attempt,
    const std::function<void(uint64_t, const Status&)>& check) {
  for (uint64_t n = 1; n <= max_points; ++n) {
    FaultPlan plan;
    switch (kind) {
      case FaultKind::kFailAlloc:
        plan.fail_alloc = n;
        break;
      case FaultKind::kCancelAtOp:
        plan.cancel_at_op = n;
        break;
      case FaultKind::kDeadlineAtChunk:
        plan.deadline_at_chunk = n;
        break;
    }
    Status st = attempt(plan);
    if (st.ok()) return n - 1;  // point n was never reached: sweep complete
    if (check) check(n, st);
  }
  return Internal("fault-point sweep did not reach a clean run within " +
                  std::to_string(max_points) + " points");
}

}  // namespace exrquy
