// Tests for the concurrent query service (api/service.h) and its cache
// storage (common/cache.h): byte-equality of concurrent replays against
// a serial Session, plan-cache warm-path behavior (compile phase
// skipped), invalidation on document load, eviction under a tiny byte
// budget, and the ShardedLruCache primitive itself.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "api/session.h"
#include "common/cache.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

namespace exrquy {
namespace {

// -- ShardedLruCache -------------------------------------------------------

TEST(ShardedLruCacheTest, PutGetAndStats) {
  ShardedLruCache<std::string> cache(/*budget_bytes=*/0);
  EXPECT_EQ(cache.Get("a"), nullptr);
  ASSERT_TRUE(cache.Put("a", std::make_shared<std::string>("alpha"), 5));
  std::shared_ptr<const std::string> got = cache.Get("a");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, "alpha");
  CacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.insertions, 1u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.bytes, 5u);
}

TEST(ShardedLruCacheTest, ReplaceUpdatesBytes) {
  ShardedLruCache<std::string> cache(0);
  ASSERT_TRUE(cache.Put("k", std::make_shared<std::string>("v1"), 10));
  ASSERT_TRUE(cache.Put("k", std::make_shared<std::string>("v2"), 30));
  CacheStats st = cache.stats();
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.bytes, 30u);
  EXPECT_EQ(*cache.Get("k"), "v2");
}

TEST(ShardedLruCacheTest, EvictsColdestWithinBudget) {
  // One shard so the LRU order is global and deterministic.
  ShardedLruCache<int> cache(/*budget_bytes=*/100, nullptr,
                             /*num_shards=*/1);
  ASSERT_TRUE(cache.Put("a", std::make_shared<int>(1), 40));
  ASSERT_TRUE(cache.Put("b", std::make_shared<int>(2), 40));
  ASSERT_NE(cache.Get("a"), nullptr);  // refresh "a"; "b" is now coldest
  ASSERT_TRUE(cache.Put("c", std::make_shared<int>(3), 40));
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, 100u);
}

TEST(ShardedLruCacheTest, RefusesOversizeEntry) {
  ShardedLruCache<int> cache(100, nullptr, /*num_shards=*/1);
  ASSERT_TRUE(cache.Put("small", std::make_shared<int>(1), 10));
  EXPECT_FALSE(cache.Put("huge", std::make_shared<int>(2), 1000));
  // The resident entry survives the refusal.
  EXPECT_NE(cache.Get("small"), nullptr);
  EXPECT_EQ(cache.Get("huge"), nullptr);
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(ShardedLruCacheTest, ValueOutlivesEviction) {
  ShardedLruCache<std::string> cache(50, nullptr, 1);
  ASSERT_TRUE(cache.Put("a", std::make_shared<std::string>("keep"), 40));
  std::shared_ptr<const std::string> held = cache.Get("a");
  ASSERT_TRUE(cache.Put("b", std::make_shared<std::string>("new"), 40));
  EXPECT_EQ(cache.Get("a"), nullptr);  // evicted...
  EXPECT_EQ(*held, "keep");            // ...but the Get result is valid
}

TEST(ShardedLruCacheTest, ClearReleasesAccountantBytes) {
  MemoryBudget accountant(0);
  ShardedLruCache<int> cache(0, &accountant);
  ASSERT_TRUE(cache.Put("a", std::make_shared<int>(1), 100));
  ASSERT_TRUE(cache.Put("b", std::make_shared<int>(2), 200));
  EXPECT_EQ(accountant.charged(), 300u);
  cache.Clear();
  EXPECT_EQ(accountant.charged(), 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

// -- QueryService ----------------------------------------------------------

std::string XMarkXml() {
  XMarkOptions opts;
  opts.scale = 0.002;
  return GenerateXMark(opts);
}

QueryOptions ModeOptions(OrderingMode mode) {
  QueryOptions o;
  o.default_ordering = mode;
  return o;
}

// The 20 XMark queries, both ordering modes, replayed through the
// service, must be byte-identical to a serial Session over the same
// document.
TEST(QueryServiceTest, MatchesSessionForAllXMarkQueries) {
  std::string xml = XMarkXml();
  Session session;
  ASSERT_TRUE(session.LoadDocument("auction.xml", xml).ok());
  ServiceConfig config;
  config.workers = 2;
  config.plan_cache = 1;
  config.result_cache_bytes = 1 << 20;
  QueryService service(config);
  ASSERT_TRUE(service.LoadDocument("auction.xml", xml).ok());

  for (OrderingMode mode : {OrderingMode::kOrdered, OrderingMode::kUnordered}) {
    for (const XMarkQuery& q : XMarkQueries()) {
      QueryOptions o = ModeOptions(mode);
      Result<QueryResult> expected = session.Execute(q.text, o);
      ASSERT_TRUE(expected.ok()) << q.name << ": "
                                 << expected.status().ToString();
      // Twice: cold (plan miss) and warm (plan or result hit) must both
      // reproduce the Session bytes.
      for (int round = 0; round < 2; ++round) {
        Result<ServiceResult> got = service.Execute(q.text, o);
        ASSERT_TRUE(got.ok()) << q.name << ": " << got.status().ToString();
        EXPECT_EQ(got->result.serialized, expected->serialized)
            << q.name << " round " << round;
      }
    }
  }
  ServiceCounters c = service.counters();
  EXPECT_GT(c.plan_cache.hits + c.result_cache.hits, 0u);
}

// N threads replaying the query mix concurrently produce exactly the
// serial bytes, on a single-worker service (forced hand-off) and on an
// 8-worker one (true concurrency).
TEST(QueryServiceTest, ConcurrentReplayByteEquality) {
  std::string xml = XMarkXml();
  Session session;
  ASSERT_TRUE(session.LoadDocument("auction.xml", xml).ok());
  std::vector<std::string> expected;
  for (const XMarkQuery& q : XMarkQueries()) {
    Result<QueryResult> r = session.Execute(q.text);
    ASSERT_TRUE(r.ok()) << q.name;
    expected.push_back(r->serialized);
  }

  for (size_t workers : {size_t{1}, size_t{8}}) {
    ServiceConfig config;
    config.workers = workers;
    config.plan_cache = 1;
    config.result_cache_bytes = 0;  // every call runs the engine
    QueryService service(config);
    ASSERT_TRUE(service.LoadDocument("auction.xml", xml).ok());

    constexpr size_t kThreads = 8;
    std::atomic<size_t> mismatches{0};
    std::vector<std::thread> threads;
    const std::vector<XMarkQuery>& queries = XMarkQueries();
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        // Each thread starts at a different offset so distinct queries
        // overlap in time.
        for (size_t i = 0; i < queries.size(); ++i) {
          size_t qi = (i + t * 3) % queries.size();
          Result<ServiceResult> r = service.Execute(queries[qi].text);
          if (!r.ok() || r->result.serialized != expected[qi]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& th : threads) th.join();
    EXPECT_EQ(mismatches.load(), 0u) << "workers=" << workers;
  }
}

TEST(QueryServiceTest, WarmExecuteSkipsCompile) {
  ServiceConfig config;
  config.workers = 1;
  config.plan_cache = 1;
  config.result_cache_bytes = 0;  // isolate the plan cache
  QueryService service(config);
  ASSERT_TRUE(service.LoadDocument("d.xml", "<r><x>1</x><x>2</x></r>").ok());

  QueryOptions o;
  o.profile = true;
  const char* query = R"(for $x in doc("d.xml")//x return <y>{ $x }</y>)";
  Result<ServiceResult> cold = service.Execute(query, o);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->plan_cache_hit);
  EXPECT_GT(cold->result.compile_ms, 0);

  Result<ServiceResult> warm = service.Execute(query, o);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);
  EXPECT_FALSE(warm->result_cache_hit);
  // No parse/compile/optimize ran: the phase timer is exactly zero.
  EXPECT_EQ(warm->result.compile_ms, 0);
  EXPECT_TRUE(warm->result.profile.plan_cache_hit());
  EXPECT_FALSE(warm->result.profile.result_cache_hit());
  EXPECT_EQ(warm->result.serialized, cold->result.serialized);
  // Plan-shape stats survive the cache.
  EXPECT_EQ(warm->result.plan_optimized.total_ops,
            cold->result.plan_optimized.total_ops);

  ServiceCounters c = service.counters();
  EXPECT_EQ(c.plan_cache.hits, 1u);
  EXPECT_EQ(c.plan_cache.misses, 1u);
}

TEST(QueryServiceTest, PlanCacheRespectsOptionFingerprint) {
  ServiceConfig config;
  config.workers = 1;
  config.plan_cache = 1;
  QueryService service(config);
  ASSERT_TRUE(service.LoadDocument("d.xml", "<r><x/></r>").ok());
  const char* query = R"(count(doc("d.xml")//x))";
  ASSERT_TRUE(service.Execute(query, ModeOptions(OrderingMode::kOrdered)).ok());
  // A different ordering mode is a different plan: no cross-mode hit.
  Result<ServiceResult> other =
      service.Execute(query, ModeOptions(OrderingMode::kUnordered));
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->plan_cache_hit);
  Result<ServiceResult> same =
      service.Execute(query, ModeOptions(OrderingMode::kUnordered));
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(same->plan_cache_hit);
}

TEST(QueryServiceTest, PlanCacheCanBeDisabled) {
  ServiceConfig config;
  config.workers = 1;
  config.plan_cache = 0;
  QueryService service(config);
  ASSERT_TRUE(service.LoadDocument("d.xml", "<r><x/></r>").ok());
  const char* query = R"(count(doc("d.xml")//x))";
  ASSERT_TRUE(service.Execute(query).ok());
  Result<ServiceResult> second = service.Execute(query);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->plan_cache_hit);
  EXPECT_EQ(service.counters().plan_cache.hits, 0u);
}

TEST(QueryServiceTest, ResultCacheHitServesBytesWithoutEngine) {
  ServiceConfig config;
  config.workers = 1;
  config.plan_cache = 1;
  config.result_cache_bytes = 1 << 20;
  QueryService service(config);
  ASSERT_TRUE(service.LoadDocument("d.xml", "<r><x>7</x></r>").ok());
  QueryOptions o;
  o.profile = true;
  const char* query = R"(doc("d.xml")//x/text())";
  Result<ServiceResult> cold = service.Execute(query, o);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->result_cache_hit);
  Result<ServiceResult> warm = service.Execute(query, o);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->result_cache_hit);
  EXPECT_EQ(warm->result.serialized, cold->result.serialized);
  EXPECT_EQ(warm->result.items, cold->result.items);
  EXPECT_EQ(warm->result.compile_ms, 0);
  EXPECT_EQ(warm->result.execute_ms, 0);
  EXPECT_TRUE(warm->result.profile.result_cache_hit());
  // A result hit does zero engine work: no operator records.
  EXPECT_TRUE(warm->result.profile.ops().empty());
}

// Reloading a document must invalidate both caches: no stale plan, no
// stale bytes, ever.
TEST(QueryServiceTest, LoadInvalidatesCaches) {
  ServiceConfig config;
  config.workers = 2;
  config.plan_cache = 1;
  config.result_cache_bytes = 1 << 20;
  QueryService service(config);
  const char* query = R"(doc("d.xml")/v/text())";

  ASSERT_TRUE(service.LoadDocument("d.xml", "<v>one</v>").ok());
  uint64_t v1 = service.store_version();
  ASSERT_TRUE(service.Execute(query).ok());  // warm both caches
  Result<ServiceResult> warm = service.Execute(query);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->result_cache_hit);
  EXPECT_EQ(warm->result.serialized, "one");

  ASSERT_TRUE(service.LoadDocument("d.xml", "<v>two</v>").ok());
  EXPECT_GT(service.store_version(), v1);
  ServiceCounters after_load = service.counters();
  EXPECT_EQ(after_load.plan_cache.entries, 0u);
  EXPECT_EQ(after_load.result_cache.entries, 0u);

  Result<ServiceResult> fresh = service.Execute(query);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->result_cache_hit);
  EXPECT_FALSE(fresh->plan_cache_hit);
  EXPECT_EQ(fresh->result.serialized, "two");
  // And the re-warmed cache serves the new bytes.
  Result<ServiceResult> rewarmed = service.Execute(query);
  ASSERT_TRUE(rewarmed.ok());
  EXPECT_TRUE(rewarmed->result_cache_hit);
  EXPECT_EQ(rewarmed->result.serialized, "two");
}

// A failed load must leave the snapshot, version, and caches untouched.
TEST(QueryServiceTest, FailedLoadLeavesSnapshotIntact) {
  QueryService service(ServiceConfig{.workers = 1, .plan_cache = 1,
                                     .result_cache_bytes = 1 << 20});
  ASSERT_TRUE(service.LoadDocument("d.xml", "<v>one</v>").ok());
  const char* query = R"(doc("d.xml")/v/text())";
  ASSERT_TRUE(service.Execute(query).ok());
  uint64_t version = service.store_version();
  EXPECT_FALSE(service.LoadDocument("d.xml", "<v>broken").ok());
  EXPECT_EQ(service.store_version(), version);
  Result<ServiceResult> r = service.Execute(query);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.serialized, "one");
  EXPECT_TRUE(r->result_cache_hit);  // cache survived the failed load
}

TEST(QueryServiceTest, EvictionUnderTinyBudget) {
  ServiceConfig config;
  config.workers = 1;
  config.plan_cache = 1;
  config.result_cache_bytes = 512;  // tiny: a handful of entries at most
  QueryService service(config);
  ASSERT_TRUE(
      service.LoadDocument("d.xml", "<r><x>1</x><x>2</x><x>3</x></r>").ok());
  // Distinct queries so every execution inserts a distinct entry.
  for (int i = 1; i <= 20; ++i) {
    std::string q = "count(doc(\"d.xml\")//x) + " + std::to_string(i);
    Result<ServiceResult> r = service.Execute(q);
    ASSERT_TRUE(r.ok()) << q;
  }
  ServiceCounters c = service.counters();
  EXPECT_GT(c.result_cache.evictions, 0u);
  EXPECT_LE(c.result_cache.bytes, 512u);
  EXPECT_LT(c.result_cache.entries, 20u);
  // Evicted or refused entries are misses next time — but never wrong.
  Result<ServiceResult> r = service.Execute("count(doc(\"d.xml\")//x) + 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.serialized, "4");
}

// Concurrent Execute + LoadDocument: every result must be consistent
// with the snapshot version it reports — never a mix, never stale bytes.
TEST(QueryServiceTest, ConcurrentLoadAndExecute) {
  ServiceConfig config;
  config.workers = 4;
  config.plan_cache = 1;
  config.result_cache_bytes = 1 << 20;
  QueryService service(config);
  ASSERT_TRUE(service.LoadDocument("d.xml", "<v>a</v>").ok());
  const char* query = R"(doc("d.xml")/v/text())";
  const std::vector<std::string> by_version = {"a", "b", "c", "d"};

  std::atomic<bool> stop{false};
  std::atomic<size_t> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        Result<ServiceResult> r = service.Execute(query);
        if (!r.ok()) {
          bad.fetch_add(1);
          continue;
        }
        // store_version counts loads; version v serves by_version[v-1].
        uint64_t v = r->store_version;
        if (v == 0 || v > by_version.size() ||
            r->result.serialized != by_version[v - 1]) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (size_t i = 1; i < by_version.size(); ++i) {
    ASSERT_TRUE(
        service.LoadDocument("d.xml", "<v>" + by_version[i] + "</v>").ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0u);
  EXPECT_EQ(service.store_version(), by_version.size());
}

// The shared pool grows monotonically, but worker stores must not grow
// across executions (constructed fragments are reclaimed per call).
TEST(QueryServiceTest, WorkerStoresDoNotGrowAcrossExecutions) {
  ServiceConfig config;
  config.workers = 1;
  config.result_cache_bytes = 0;  // force evaluation every time
  config.plan_cache = 1;
  QueryService service(config);
  ASSERT_TRUE(service.LoadDocument("d.xml", "<r><x/><x/></r>").ok());
  const char* query = R"(for $x in doc("d.xml")//x return <e>{ $x }</e>)";
  Result<ServiceResult> first = service.Execute(query);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 5; ++i) {
    Result<ServiceResult> r = service.Execute(query);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->result.serialized, first->result.serialized);
  }
}

TEST(QueryServiceTest, ErrorsPropagateAndDoNotPoison) {
  QueryService service(ServiceConfig{.workers = 2, .plan_cache = 1,
                                     .result_cache_bytes = 1 << 20});
  ASSERT_TRUE(service.LoadDocument("d.xml", "<v>9</v>").ok());
  EXPECT_EQ(service.Execute("for $x").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.Execute("1 idiv 0").status().code(),
            StatusCode::kTypeError);
  // Errors are not cached: the same bad query fails identically...
  EXPECT_FALSE(service.Execute("1 idiv 0").ok());
  // ...and good queries still work.
  Result<ServiceResult> r = service.Execute(R"(doc("d.xml")/v/text())");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.serialized, "9");
}

}  // namespace
}  // namespace exrquy
