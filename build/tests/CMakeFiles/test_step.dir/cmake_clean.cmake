file(REMOVE_RECURSE
  "CMakeFiles/test_step.dir/test_step.cc.o"
  "CMakeFiles/test_step.dir/test_step.cc.o.d"
  "test_step"
  "test_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
