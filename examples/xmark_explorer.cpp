// XMark explorer: generate an XMark-style auction document and run
// benchmark queries (or your own) against it from the command line.
//
//   xmark_explorer [scale] [Q1..Q20 | - ]
//
//   scale  XMark scale factor (default 0.01, ~350 KB)
//   query  a query name, or '-' to read a query from stdin
//
// Prints the result, the executed plan's shape under both experimental
// configurations, and their wall clocks.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "api/session.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.01;
  std::string which = argc > 2 ? argv[2] : "Q6";

  exrquy::XMarkOptions gen;
  gen.scale = scale;
  std::string xml = exrquy::GenerateXMark(gen);
  std::printf("generated auction.xml: %zu KB (scale %.4f)\n",
              xml.size() / 1024, scale);

  exrquy::Session session;
  exrquy::Status st = session.LoadDocument("auction.xml", xml);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  std::string query;
  if (which == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    query = buf.str();
  } else {
    query = exrquy::XMarkQueryText(which);
    if (query.empty()) {
      std::fprintf(stderr, "unknown query '%s' (use Q1..Q20 or '-')\n",
                   which.c_str());
      return 1;
    }
  }
  std::printf("query:\n%s\n\n", query.c_str());

  exrquy::QueryOptions baseline;
  baseline.enable_order_indifference = false;

  exrquy::QueryOptions enabled;
  enabled.default_ordering = exrquy::OrderingMode::kUnordered;

  exrquy::Result<exrquy::QueryResult> rb = session.Execute(query, baseline);
  exrquy::Result<exrquy::QueryResult> re = session.Execute(query, enabled);
  if (!rb.ok() || !re.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 (!rb.ok() ? rb.status() : re.status()).ToString().c_str());
    return 1;
  }

  std::string preview = re->serialized.substr(0, 800);
  std::printf("result (%zu items)%s:\n%s\n\n", re->items.size(),
              re->serialized.size() > 800 ? ", truncated" : "",
              preview.c_str());

  std::printf("baseline:           %8.2f ms   plan %s\n", rb->execute_ms,
              rb->plan_optimized.ToString().c_str());
  std::printf("order indifference: %8.2f ms   plan %s\n", re->execute_ms,
              re->plan_optimized.ToString().c_str());
  if (re->execute_ms > 0) {
    std::printf("speedup: %.0f %%\n",
                100.0 * (rb->execute_ms / re->execute_ms - 1));
  }
  return 0;
}
