// Operator-at-a-time evaluation of algebra DAGs over columnar tables —
// the stand-in for the MonetDB back-end of the paper. Every reachable
// operator is evaluated exactly once (sub-plan sharing); % performs a
// blocking sort while # attaches a dense numbering at negligible cost,
// which is precisely the cost asymmetry the paper's rewrites exploit.
#ifndef EXRQUY_ENGINE_EVAL_H_
#define EXRQUY_ENGINE_EVAL_H_

#include <map>
#include <string>
#include <vector>

#include "algebra/algebra.h"
#include "common/status.h"
#include "engine/profile.h"
#include "engine/table.h"
#include "engine/value.h"
#include "xml/node_store.h"

namespace exrquy {

struct EvalContext {
  NodeStore* store = nullptr;
  StrPool* strings = nullptr;
  // fn:doc() name -> document node.
  std::map<StrId, NodeIdx> documents;
  Profile* profile = nullptr;  // optional

  // Physical-plan order detection (Section 6's pointer to Moerkotte &
  // Neumann): when set, % first checks in O(n) whether its input already
  // arrives in the requested (partition, criteria) order and skips the
  // blocking sort if so — "this renders subsequent % as cheap as #".
  // Orthogonal to the paper's logical rewrites, hence off by default.
  bool detect_sorted_inputs = false;
  // Number of % evaluations whose sort was skipped (diagnostics).
  mutable size_t sorts_skipped = 0;
};

class Evaluator {
 public:
  Evaluator(const Dag& dag, EvalContext* ctx);

  // Evaluates the sub-DAG rooted at `root` and returns its table.
  Result<TablePtr> Eval(OpId root);

 private:
  Result<TablePtr> EvalOp(const Op& op);

  Result<TablePtr> EvalLit(const Op& op);
  Result<TablePtr> EvalProject(const Op& op, const Table& in);
  Result<TablePtr> EvalSelect(const Op& op, const Table& in);
  Result<TablePtr> EvalEquiJoin(const Op& op, const Table& l, const Table& r);
  Result<TablePtr> EvalCross(const Op& op, const Table& l, const Table& r);
  Result<TablePtr> EvalUnion(const Op& op, const Table& l, const Table& r);
  Result<TablePtr> EvalDiffSemi(const Op& op, const Table& l, const Table& r);
  Result<TablePtr> EvalDistinct(const Op& op, const Table& in);
  Result<TablePtr> EvalRowNum(const Op& op, const Table& in);
  Result<TablePtr> EvalRowId(const Op& op, const Table& in);
  Result<TablePtr> EvalFun(const Op& op, const Table& in);
  Result<TablePtr> EvalAggr(const Op& op, const Table& in);
  Result<TablePtr> EvalStep(const Op& op, const Table& in);
  Result<TablePtr> EvalDoc(const Op& op);
  Result<TablePtr> EvalElem(const Op& op, const Table& content,
                            const Table& loop);
  Result<TablePtr> EvalAttr(const Op& op, const Table& value,
                            const Table& loop);
  Result<TablePtr> EvalText(const Op& op, const Table& content,
                            const Table& loop);
  Result<TablePtr> EvalRange(const Op& op, const Table& in);
  Result<TablePtr> EvalCardCheck(const Op& op, const Table& in,
                                 const Table& loop);

  Result<Value> ApplyFun(const Op& op, const std::vector<const Column*>& args,
                         size_t row);

  const Dag& dag_;
  EvalContext* ctx_;
  ValueOps ops_;
  std::map<OpId, TablePtr> memo_;
};

// Serializes a query result table (schema iter|pos|item, single
// iteration) in sequence order: nodes as XML, atomics via their string
// value, adjacent atomics separated by a single space.
Result<std::string> SerializeResult(const Table& t, const EvalContext& ctx);

// The result items individually rendered (order preserved); useful for
// the multiset comparisons in tests ("any permutation is admissible").
Result<std::vector<std::string>> ResultItems(const Table& t,
                                             const EvalContext& ctx);

}  // namespace exrquy

#endif  // EXRQUY_ENGINE_EVAL_H_
