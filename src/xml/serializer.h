// XML serialization of nodes from a NodeStore.
#ifndef EXRQUY_XML_SERIALIZER_H_
#define EXRQUY_XML_SERIALIZER_H_

#include <string>

#include "xml/node_store.h"

namespace exrquy {

struct XmlSerializeOptions {
  bool indent = false;  // pretty-print with two-space indentation
};

// Serializes the subtree rooted at `n` (document nodes serialize their
// children). Appends to `*out`.
void SerializeNode(const NodeStore& store, NodeIdx n,
                   const XmlSerializeOptions& options, std::string* out);

std::string SerializeNode(const NodeStore& store, NodeIdx n,
                          const XmlSerializeOptions& options = {});

// Escapes character data (&, <, >).
void EscapeText(std::string_view s, std::string* out);
// Escapes attribute values (&, <, >, ").
void EscapeAttribute(std::string_view s, std::string* out);

}  // namespace exrquy

#endif  // EXRQUY_XML_SERIALIZER_H_
