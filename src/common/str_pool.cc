#include "common/str_pool.h"

#include "common/check.h"
#include "common/governor.h"

namespace exrquy {

StrPool::StrPool()
    : chunks_(new std::atomic<std::string*>[kMaxChunks]()) {
  StrId id = Intern("");
  EXRQUY_CHECK(id == kEmpty);
}

StrPool::~StrPool() {
  for (size_t c = 0; c < kMaxChunks; ++c) {
    delete[] chunks_[c].load(std::memory_order_relaxed);
  }
}

StrId StrPool::Intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  size_t n = size_.load(std::memory_order_relaxed);
  EXRQUY_CHECK(n < kMaxChunks * kChunkSize);
  size_t chunk = n >> kChunkShift;
  std::string* block = chunks_[chunk].load(std::memory_order_relaxed);
  if (block == nullptr) {
    block = new std::string[kChunkSize];
    chunks_[chunk].store(block, std::memory_order_release);
  }
  // Store the string first; the string_view key aliases the stored copy,
  // whose address is stable because chunks never move or shrink.
  block[n & (kChunkSize - 1)] = std::string(s);
  StrId id = static_cast<StrId>(n);
  index_.emplace(std::string_view(block[n & (kChunkSize - 1)]), id);
  size_.store(n + 1, std::memory_order_release);
  if (budget_ != nullptr) budget_->Charge(InternedBytes(s.size()));
  return id;
}

void StrPool::set_budget(MemoryBudget* budget) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = budget;
}

void StrPool::TruncateTo(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t cur = size_.load(std::memory_order_relaxed);
  EXRQUY_CHECK(n <= cur);
  if (n == cur) return;
  size_t released = 0;
  for (size_t i = cur; i-- > n;) {
    std::string* block = chunks_[i >> kChunkShift].load(std::memory_order_relaxed);
    std::string& s = block[i & (kChunkSize - 1)];
    released += InternedBytes(s.size());
    index_.erase(std::string_view(s));
    s.clear();
    s.shrink_to_fit();
  }
  size_.store(n, std::memory_order_release);
  if (budget_ != nullptr) budget_->Release(released);
}

const std::string& StrPool::Get(StrId id) const {
  EXRQUY_DCHECK(id < size_.load(std::memory_order_acquire));
  const std::string* block =
      chunks_[id >> kChunkShift].load(std::memory_order_acquire);
  return block[id & (kChunkSize - 1)];
}

}  // namespace exrquy
