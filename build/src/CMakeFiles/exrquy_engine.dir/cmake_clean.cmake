file(REMOVE_RECURSE
  "CMakeFiles/exrquy_engine.dir/engine/eval.cc.o"
  "CMakeFiles/exrquy_engine.dir/engine/eval.cc.o.d"
  "CMakeFiles/exrquy_engine.dir/engine/profile.cc.o"
  "CMakeFiles/exrquy_engine.dir/engine/profile.cc.o.d"
  "CMakeFiles/exrquy_engine.dir/engine/table.cc.o"
  "CMakeFiles/exrquy_engine.dir/engine/table.cc.o.d"
  "CMakeFiles/exrquy_engine.dir/engine/value.cc.o"
  "CMakeFiles/exrquy_engine.dir/engine/value.cc.o.d"
  "libexrquy_engine.a"
  "libexrquy_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exrquy_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
