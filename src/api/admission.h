// Admission control and overload resilience for the query service
// (api/service.h). Three cooperating pieces, all layered *around* the
// engine rather than into it:
//
//  * AdmissionController — bounded admission over the worker slots. An
//    Execute call that finds every slot busy waits in a bounded queue;
//    the queue sheds load with kUnavailable instead of blocking forever,
//    on three triggers: the queue is already at max_queue_depth (shed
//    immediately, < 1 ms), the caller waited queue_timeout_ms without a
//    slot freeing (shed with kUnavailable), or the request's own
//    deadline expired while queued (shed with kDeadlineExceeded — the
//    queue wait is charged against the deadline, so a query never starts
//    an execution it cannot finish).
//
//  * QuarantineList — a circuit breaker keyed by the service's plan-cache
//    key. A query that repeatedly exhausts its deadline or memory budget
//    is a *poison query*: each arrival occupies a worker slot until the
//    governor trips, so under load a single pathological query text can
//    starve the whole service. After `failure_threshold` consecutive
//    resource failures the key opens: arrivals fast-fail kUnavailable
//    without touching a worker. After `cooldown_ms` the breaker goes
//    half-open and admits exactly one probe; a clean probe closes the
//    breaker, a failed probe re-opens it with doubled (capped) cooldown.
//    Fault-injected runs never count: injection tests must see their
//    planned outcome, not the breaker's.
//
//  * LatencyHistogram — fixed power-of-two microsecond buckets for
//    queue-wait and end-to-end latency, cheap enough to record on every
//    call (one relaxed atomic increment) and rich enough for the p50/p99
//    numbers the overload bench and the --serve-batch report print.
//
// Everything here is engine-agnostic: the controller hands out abstract
// slot indices and the quarantine stores opaque keys, so both are unit-
// testable without a document or a plan.
#ifndef EXRQUY_API_ADMISSION_H_
#define EXRQUY_API_ADMISSION_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace exrquy {

// ---------------------------------------------------------------------
// Latency histograms.

// Value-type snapshot: bucket i counts samples in [2^(i-1), 2^i) µs
// (bucket 0: < 1 µs). 28 buckets cover up to ~2.2 minutes.
struct LatencyHistogram {
  static constexpr size_t kBuckets = 28;

  std::array<uint64_t, kBuckets> buckets{};
  uint64_t count = 0;

  // Upper bound (in µs) of the bucket containing the p-th percentile
  // (0 < p <= 100) of recorded samples; 0 when empty.
  double PercentileUs(double p) const;
};

// Concurrent recorder; Snapshot() produces the value type above.
class AtomicLatencyHistogram {
 public:
  void Record(double us);
  LatencyHistogram Snapshot() const;

 private:
  std::array<std::atomic<uint64_t>, LatencyHistogram::kBuckets> buckets_{};
};

// ---------------------------------------------------------------------
// Bounded admission.

// Point-in-time admission observability.
struct AdmissionStats {
  uint64_t admitted = 0;            // got a slot (queued or not)
  uint64_t queued = 0;              // waited at all before admission/shed
  uint64_t shed_queue_full = 0;     // kUnavailable: queue at max depth
  uint64_t shed_queue_timeout = 0;  // kUnavailable: queue_timeout_ms hit
  uint64_t shed_deadline = 0;       // kDeadlineExceeded while/after queueing
  size_t queue_depth = 0;           // current waiters
  size_t peak_queue_depth = 0;
  LatencyHistogram queue_wait_us;   // admitted requests' queue wait
};

// Hands out `slots` abstract worker slots with a bounded wait queue.
// Thread-safe. Slots are the service's worker indices; the controller
// never touches the workers themselves.
class AdmissionController {
 public:
  using Clock = std::chrono::steady_clock;

  struct Config {
    size_t slots = 1;
    // Max requests waiting for a slot at once; one more arrival is shed
    // immediately. SIZE_MAX = unbounded (block until a slot frees, the
    // pre-admission-control behavior); 0 = never queue.
    size_t max_queue_depth = SIZE_MAX;
    // Longest a request may wait queued before being shed. 0 = no
    // timeout (the request's own deadline, if any, still applies).
    int64_t queue_timeout_ms = 0;
  };

  struct Ticket {
    size_t slot = 0;
    double queue_ms = 0;  // time spent waiting for the slot
  };

  explicit AdmissionController(Config config);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // Acquires a slot, waiting in the bounded queue if none is free.
  // `deadline` (optional) is the request's absolute deadline: expiring
  // while queued — or being already expired on admission — sheds with
  // kDeadlineExceeded, so queue wait is fully charged against it.
  Result<Ticket> Admit(std::optional<Clock::time_point> deadline);

  void Release(size_t slot);

  AdmissionStats stats() const;
  size_t slot_count() const { return config_.slots; }

 private:
  const Config config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<size_t> free_;
  size_t waiters_ = 0;
  size_t peak_waiters_ = 0;

  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> queued_{0};
  std::atomic<uint64_t> shed_queue_full_{0};
  std::atomic<uint64_t> shed_queue_timeout_{0};
  std::atomic<uint64_t> shed_deadline_{0};
  AtomicLatencyHistogram queue_wait_us_;
};

// ---------------------------------------------------------------------
// Poison-query quarantine.

struct QuarantineStats {
  uint64_t shed = 0;        // arrivals fast-failed while open
  uint64_t trips = 0;       // closed/half-open -> open transitions
  uint64_t probes = 0;      // half-open probes admitted
  uint64_t recoveries = 0;  // probes that closed the breaker
  size_t tracked = 0;       // keys currently tracked
  size_t open = 0;          // keys currently open (or probing)
};

// Circuit breaker over opaque query keys. Thread-safe; all transitions
// happen under one mutex (the map is touched once per Execute, far off
// the evaluation hot path).
class QuarantineList {
 public:
  using Clock = std::chrono::steady_clock;

  struct Config {
    // Consecutive resource failures (deadline/budget) before the key
    // opens. 0 disables quarantining entirely.
    uint32_t failure_threshold = 3;
    int64_t cooldown_ms = 250;       // open -> half-open delay
    int64_t max_cooldown_ms = 30000; // cap for the doubling backoff
    size_t max_entries = 1024;       // fail-open beyond this many keys
  };

  enum class Decision {
    kAdmit,  // not quarantined (or quarantining disabled)
    kProbe,  // half-open: this caller is the one probe; MUST report back
             // via Record(..., was_probe=true) or ProbeAborted()
    kShed,   // open: fast-fail kUnavailable
  };

  explicit QuarantineList(Config config) : config_(config) {}

  QuarantineList(const QuarantineList&) = delete;
  QuarantineList& operator=(const QuarantineList&) = delete;

  Decision Admit(const std::string& key);

  // Reports the outcome of an admitted (or probing) execution.
  // `resource_failure` = the run exhausted its deadline or budget (the
  // poison signal); anything else — success, a fast type error, a
  // cancellation — counts as evidence the query is not poison.
  void Record(const std::string& key, bool resource_failure, bool was_probe);

  // The probe never ran (e.g. shed by the admission queue): re-open the
  // breaker with an immediate re-probe opportunity instead of leaving
  // the half-open state permanently occupied.
  void ProbeAborted(const std::string& key);

  void Clear();

  QuarantineStats stats() const;

 private:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Entry {
    State state = State::kClosed;
    uint32_t failures = 0;        // consecutive resource failures
    uint32_t trips = 0;           // times this key opened (backoff exponent)
    Clock::time_point open_until{};
  };

  const Config config_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;

  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> trips_{0};
  std::atomic<uint64_t> probes_{0};
  std::atomic<uint64_t> recoveries_{0};
};

}  // namespace exrquy

#endif  // EXRQUY_API_ADMISSION_H_
