// Unit tests for the XQuery lexer: token classification, QNames vs '::',
// numbers, string literals with escapes and entities, nested comments,
// and raw-offset bookkeeping for constructor parsing.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "xquery/lexer.h"

namespace exrquy {
namespace {

std::vector<Token> LexAll(std::string_view text) {
  Lexer lexer(text);
  std::vector<Token> out;
  for (;;) {
    Status st = lexer.Advance();
    EXPECT_TRUE(st.ok()) << st.ToString();
    if (!st.ok() || lexer.Cur().kind == TokKind::kEof) break;
    out.push_back(lexer.Cur());
  }
  return out;
}

TEST(LexerTest, BasicTokens) {
  auto toks = LexAll("for $x in (1, 2) return $x");
  ASSERT_EQ(toks.size(), 10u);
  EXPECT_EQ(toks[0].kind, TokKind::kName);
  EXPECT_EQ(toks[0].text, "for");
  EXPECT_EQ(toks[1].kind, TokKind::kVar);
  EXPECT_EQ(toks[1].text, "x");
  EXPECT_EQ(toks[3].kind, TokKind::kLParen);
  EXPECT_EQ(toks[4].kind, TokKind::kInt);
  EXPECT_EQ(toks[4].int_value, 1);
}

TEST(LexerTest, QNameKeepsPrefix) {
  auto toks = LexAll("fn:count local:f");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "fn:count");
  EXPECT_EQ(toks[1].text, "local:f");
}

TEST(LexerTest, AxisColonColonNotEatenByQName) {
  auto toks = LexAll("child::item");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "child");
  EXPECT_EQ(toks[1].kind, TokKind::kColonColon);
  EXPECT_EQ(toks[2].text, "item");
}

TEST(LexerTest, Numbers) {
  auto toks = LexAll("42 3.14 1e3 2.5E-2 .5");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, TokKind::kInt);
  EXPECT_EQ(toks[1].kind, TokKind::kDouble);
  EXPECT_DOUBLE_EQ(toks[1].double_value, 3.14);
  EXPECT_EQ(toks[2].kind, TokKind::kDouble);
  EXPECT_DOUBLE_EQ(toks[2].double_value, 1000.0);
  EXPECT_DOUBLE_EQ(toks[3].double_value, 0.025);
  EXPECT_DOUBLE_EQ(toks[4].double_value, 0.5);
}

TEST(LexerTest, IntDotDotNotDouble) {
  // '1..2' should not lex '1.' as a double ('to' ranges aside, the
  // DotDot token must survive).
  auto toks = LexAll("a/..");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[2].kind, TokKind::kDotDot);
}

TEST(LexerTest, Strings) {
  auto toks = LexAll(R"("hello" 'wo''rld' "do""ble" "&lt;&amp;")");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "hello");
  EXPECT_EQ(toks[1].text, "wo'rld");
  EXPECT_EQ(toks[2].text, "do\"ble");
  EXPECT_EQ(toks[3].text, "<&");
}

TEST(LexerTest, ComparisonOperators) {
  auto toks = LexAll("< <= << > >= >> = != := ::");
  std::vector<TokKind> kinds;
  for (const Token& t : toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokKind>{TokKind::kLt, TokKind::kLe, TokKind::kLtLt,
                                  TokKind::kGt, TokKind::kGe, TokKind::kGtGt,
                                  TokKind::kEq, TokKind::kNe, TokKind::kAssign,
                                  TokKind::kColonColon}));
}

TEST(LexerTest, SlashesAndDots) {
  auto toks = LexAll("/ // . ..");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].kind, TokKind::kSlash);
  EXPECT_EQ(toks[1].kind, TokKind::kSlashSlash);
  EXPECT_EQ(toks[2].kind, TokKind::kDot);
  EXPECT_EQ(toks[3].kind, TokKind::kDotDot);
}

TEST(LexerTest, NestedComments) {
  auto toks = LexAll("1 (: outer (: inner :) still :) 2");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].int_value, 1);
  EXPECT_EQ(toks[1].int_value, 2);
}

TEST(LexerTest, UnterminatedCommentFails) {
  Lexer lexer("1 (: oops");
  EXPECT_TRUE(lexer.Advance().ok());
  EXPECT_FALSE(lexer.Advance().ok());
}

TEST(LexerTest, UnterminatedStringFails) {
  Lexer lexer("\"abc");
  EXPECT_FALSE(lexer.Advance().ok());
}

TEST(LexerTest, OffsetsAndReset) {
  Lexer lexer("ab  cd");
  ASSERT_TRUE(lexer.Advance().ok());
  EXPECT_EQ(lexer.Cur().offset, 0u);
  EXPECT_EQ(lexer.pos(), 2u);
  ASSERT_TRUE(lexer.Advance().ok());
  EXPECT_EQ(lexer.Cur().offset, 4u);
  lexer.ResetTo(0);
  ASSERT_TRUE(lexer.Advance().ok());
  EXPECT_EQ(lexer.Cur().text, "ab");
}

TEST(LexerTest, DecodeEntitiesHelper) {
  EXPECT_EQ(DecodeEntities("a&lt;b&gt;c&amp;&quot;&apos;"), "a<b>c&\"'");
  EXPECT_EQ(DecodeEntities("&#65;&#x42;"), "AB");
  EXPECT_EQ(DecodeEntities("no entities"), "no entities");
  EXPECT_EQ(DecodeEntities("&unknown;"), "&unknown;");
}

TEST(LexerTest, DecodeEntitiesMultiByteCharRefs) {
  // U+00E9, U+263A, U+10348 as proper 2-/3-/4-byte UTF-8, not a
  // truncated single byte.
  EXPECT_EQ(DecodeEntities("&#xE9;"), "\xC3\xA9");
  EXPECT_EQ(DecodeEntities("&#x263A;"), "\xE2\x98\xBA");
  EXPECT_EQ(DecodeEntities("&#x10348;"), "\xF0\x90\x8D\x88");
  // Out-of-range / surrogate code points have no UTF-8 form.
  EXPECT_EQ(DecodeEntities("&#x110000;"), "?");
  EXPECT_EQ(DecodeEntities("&#xD800;"), "?");
}

// Pre-fix, 1e999 lexed as +inf and out-of-range integers wrapped through
// strtoll saturation without any error.
TEST(LexerTest, DoubleLiteralOverflowIsAnError) {
  Lexer lexer("1e999");
  Status st = lexer.Advance();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("1e999"), std::string::npos);
}

TEST(LexerTest, IntegerLiteralOverflowIsAnError) {
  Lexer lexer("99999999999999999999");  // > INT64_MAX
  Status st = lexer.Advance();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(LexerTest, LargeButRepresentableLiteralsStillLex) {
  auto toks = LexAll("9223372036854775807 1e308 5e-324");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].kind, TokKind::kInt);
  EXPECT_EQ(toks[0].int_value, INT64_MAX);
  EXPECT_EQ(toks[1].kind, TokKind::kDouble);
  EXPECT_DOUBLE_EQ(toks[1].double_value, 1e308);
  // Subnormal underflow is representable (rounds toward zero), not an
  // overflow: it must lex.
  EXPECT_EQ(toks[2].kind, TokKind::kDouble);
}

}  // namespace
}  // namespace exrquy
