// Per-operator execution profiling. Two granularities:
//
//  * aggregated by operator kind and by the compiler's provenance labels
//    — this regenerates Table 2 of the paper ("a breakdown of where time
//    goes during evaluation");
//  * one record per evaluated operator id — wall time, scheduler queue
//    wait, input/output cardinalities and chunk count — which makes the
//    parallel engine observable: ToJson() dumps the whole run, including
//    the peak live intermediate-table footprint under refcounted
//    release.
//
// The profile itself is a plain value type (copied into QueryResult);
// the evaluator serializes concurrent Record calls externally.
#ifndef EXRQUY_ENGINE_PROFILE_H_
#define EXRQUY_ENGINE_PROFILE_H_

#include <map>
#include <string>
#include <vector>

#include "algebra/algebra.h"

namespace exrquy {

class Profile {
 public:
  struct Bucket {
    double ms = 0;
    size_t ops = 0;
    size_t out_rows = 0;
  };

  // One evaluated operator.
  struct OpMetrics {
    OpId op = kNoOp;
    std::string kind;        // OpKindName
    std::string prov;        // provenance label ("" when unlabeled)
    double ms = 0;           // kernel wall time
    // Scheduler-queue wait, ready -> start, charged once per *scheduled
    // unit*: 0 for fused pipeline stages (the wait is on the pipeline's
    // record) and for units run inline on the thread that readied them —
    // so summing queue_ms over ops never double-counts a backlog.
    double queue_ms = 0;
    size_t in_rows = 0;      // sum over inputs
    size_t out_rows = 0;
    size_t chunks = 1;       // chunk/morsel tasks (1 = unchunked)
    // Fused pipeline this op ran in (index into pipelines()); -1 when it
    // ran standalone. Fused stages report per-morsel-summed wall time
    // and exact row counts, but no queue wait of their own.
    int64_t pipeline = -1;
  };

  // One fused pipeline (morsel-driven execution, opt/morsel_plan.h).
  struct PipelineMetrics {
    uint32_t id = 0;         // index in plan order
    OpId head = kNoOp;
    OpId sink = kNoOp;
    size_t stages = 0;
    size_t morsels = 0;
    // Unit wall time (morsel pulls + ordered merge). Stage wall times
    // already land in total_ms() via their OpMetrics, so this is NOT
    // added to total_ms() again.
    double ms = 0;
    double queue_ms = 0;     // ready -> start, once for the whole unit
    size_t in_rows = 0;      // morsel-domain (head source) rows
    size_t out_rows = 0;     // sink output rows
  };

  void Record(const Op& op, OpMetrics m);
  void RecordPipeline(PipelineMetrics m);

  // Engine-level facts about the run.
  void SetExecution(size_t threads, bool release_intermediates);
  void SetMemory(size_t peak_live_bytes, size_t final_live_bytes,
                 size_t released_tables);
  // Memory-governor accounting (common/governor.h MemoryBudget): the
  // configured limit (0 = unlimited), bytes still charged when the query
  // ended, and the high-water mark across tables + nodes + strings.
  void SetBudget(size_t limit_bytes, size_t charged_bytes,
                 size_t peak_bytes);
  // Query-service cache interaction for this execution (api/service.h):
  // whether the plan / serialized result came from cache, and how many
  // result-cache evictions this query's insertion triggered. Zeroed for
  // plain Session executions.
  void SetCache(bool plan_cache_hit, bool result_cache_hit,
                uint64_t result_evictions);
  // Query-service admission facts (api/admission.h): time spent queued
  // for a worker slot, number of execution attempts (1 = no retry), and
  // whether the run was admitted in degraded mode (serial execution,
  // caches bypassed). Zeroed for plain Session executions.
  void SetAdmission(double queue_ms, uint32_t attempts, bool degraded);

  const std::map<std::string, Bucket>& by_prov() const { return by_prov_; }
  const std::map<std::string, Bucket>& by_kind() const { return by_kind_; }
  double total_ms() const { return total_ms_; }

  // Sorted by operator id (insertion order is scheduling-dependent).
  const std::vector<OpMetrics>& ops() const;
  // Sorted by pipeline id (same reason).
  const std::vector<PipelineMetrics>& pipelines() const;

  size_t threads() const { return threads_; }
  size_t peak_live_bytes() const { return peak_live_bytes_; }
  size_t final_live_bytes() const { return final_live_bytes_; }
  size_t released_tables() const { return released_tables_; }
  size_t budget_limit_bytes() const { return budget_limit_bytes_; }
  size_t budget_charged_bytes() const { return budget_charged_bytes_; }
  size_t budget_peak_bytes() const { return budget_peak_bytes_; }
  bool plan_cache_hit() const { return plan_cache_hit_; }
  bool result_cache_hit() const { return result_cache_hit_; }
  uint64_t result_cache_evictions() const { return result_cache_evictions_; }
  double queue_ms() const { return queue_ms_; }
  uint32_t attempts() const { return attempts_; }
  bool degraded() const { return degraded_; }

  // Table 2-style rendering: one line per provenance label, with
  // millisecond and percentage columns, sorted by time descending.
  std::string ToString() const;

  // The full run as a JSON object: execution facts, memory footprint,
  // per-operator records and the two aggregations.
  std::string ToJson() const;

 private:
  std::map<std::string, Bucket> by_prov_;
  std::map<std::string, Bucket> by_kind_;
  double total_ms_ = 0;
  mutable std::vector<OpMetrics> ops_;  // sorted lazily by ops()
  mutable bool ops_sorted_ = true;
  mutable std::vector<PipelineMetrics> pipelines_;  // sorted lazily
  mutable bool pipelines_sorted_ = true;
  size_t threads_ = 1;
  bool release_intermediates_ = true;
  size_t peak_live_bytes_ = 0;
  size_t final_live_bytes_ = 0;
  size_t released_tables_ = 0;
  size_t budget_limit_bytes_ = 0;
  size_t budget_charged_bytes_ = 0;
  size_t budget_peak_bytes_ = 0;
  bool plan_cache_hit_ = false;
  bool result_cache_hit_ = false;
  uint64_t result_cache_evictions_ = 0;
  double queue_ms_ = 0;
  uint32_t attempts_ = 0;  // 0 = not a service execution
  bool degraded_ = false;
};

}  // namespace exrquy

#endif  // EXRQUY_ENGINE_PROFILE_H_
