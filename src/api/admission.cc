#include "api/admission.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace exrquy {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Bucket 0 holds sub-microsecond samples; bucket i >= 1 holds
// [2^(i-1), 2^i) µs. The last bucket absorbs everything beyond.
size_t BucketFor(double us) {
  if (us < 1.0) return 0;
  size_t i = 1;
  uint64_t bound = 1;  // 2^(i-1)
  while (i + 1 < LatencyHistogram::kBuckets &&
         static_cast<double>(bound) * 2.0 <= us) {
    bound *= 2;
    ++i;
  }
  return i;
}

}  // namespace

double LatencyHistogram::PercentileUs(double p) const {
  if (count == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      return static_cast<double>(uint64_t{1} << i);  // bucket upper bound
    }
  }
  return static_cast<double>(uint64_t{1} << (kBuckets - 1));
}

void AtomicLatencyHistogram::Record(double us) {
  buckets_[BucketFor(us)].fetch_add(1, std::memory_order_relaxed);
}

LatencyHistogram AtomicLatencyHistogram::Snapshot() const {
  LatencyHistogram out;
  for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    out.count += out.buckets[i];
  }
  return out;
}

// ---------------------------------------------------------------------
// AdmissionController.

AdmissionController::AdmissionController(Config config) : config_(config) {
  free_.reserve(config_.slots);
  // pop_back hands out slot 0 first, matching the service's historical
  // worker order.
  for (size_t i = 0; i < config_.slots; ++i) {
    free_.push_back(config_.slots - 1 - i);
  }
}

Result<AdmissionController::Ticket> AdmissionController::Admit(
    std::optional<Clock::time_point> deadline) {
  Clock::time_point t0 = Clock::now();
  if (deadline.has_value() && t0 >= *deadline) {
    shed_deadline_.fetch_add(1, std::memory_order_relaxed);
    return DeadlineExceeded("deadline expired before admission");
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (free_.empty()) {
    if (waiters_ >= config_.max_queue_depth) {
      shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
      return Unavailable("admission queue full (" +
                         std::to_string(waiters_) + " queued, " +
                         std::to_string(config_.slots) +
                         " workers busy): request shed");
    }
    ++waiters_;
    peak_waiters_ = std::max(peak_waiters_, waiters_);
    queued_.fetch_add(1, std::memory_order_relaxed);

    std::optional<Clock::time_point> timeout_at;
    if (config_.queue_timeout_ms > 0) {
      timeout_at =
          t0 + std::chrono::milliseconds(config_.queue_timeout_ms);
    }
    auto have_slot = [this] { return !free_.empty(); };
    for (;;) {
      // Wait until whichever bound binds first; no bound = wait forever.
      bool deadline_binds =
          deadline.has_value() &&
          (!timeout_at.has_value() || *deadline < *timeout_at);
      std::optional<Clock::time_point> until =
          deadline_binds ? deadline : timeout_at;
      if (!until.has_value()) {
        cv_.wait(lock, have_slot);
        break;
      }
      if (cv_.wait_until(lock, *until, have_slot)) break;
      --waiters_;
      if (deadline_binds) {
        shed_deadline_.fetch_add(1, std::memory_order_relaxed);
        return DeadlineExceeded(
            "deadline expired after " +
            std::to_string(static_cast<int64_t>(MsSince(t0))) +
            " ms queued; execution never started");
      }
      shed_queue_timeout_.fetch_add(1, std::memory_order_relaxed);
      return Unavailable("queue timeout (" +
                         std::to_string(config_.queue_timeout_ms) +
                         " ms) waiting for a worker slot: request shed");
    }
    --waiters_;
  }

  // The queue wait is charged against the request's deadline: a slot
  // that frees up exactly at (or past) the deadline is declined — the
  // execution could only ever end in kDeadlineExceeded after burning a
  // worker, which is precisely what shedding exists to prevent.
  if (deadline.has_value() && Clock::now() >= *deadline) {
    shed_deadline_.fetch_add(1, std::memory_order_relaxed);
    // The slot stays free; pass the wakeup on so another waiter gets it.
    cv_.notify_one();
    return DeadlineExceeded(
        "deadline expired after " +
        std::to_string(static_cast<int64_t>(MsSince(t0))) +
        " ms queued; execution never started");
  }

  Ticket ticket;
  ticket.slot = free_.back();
  free_.pop_back();
  ticket.queue_ms = MsSince(t0);
  admitted_.fetch_add(1, std::memory_order_relaxed);
  queue_wait_us_.Record(ticket.queue_ms * 1000.0);
  return ticket;
}

void AdmissionController::Release(size_t slot) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(slot);
  }
  cv_.notify_one();
}

AdmissionStats AdmissionController::stats() const {
  AdmissionStats out;
  out.admitted = admitted_.load(std::memory_order_relaxed);
  out.queued = queued_.load(std::memory_order_relaxed);
  out.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  out.shed_queue_timeout =
      shed_queue_timeout_.load(std::memory_order_relaxed);
  out.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.queue_depth = waiters_;
    out.peak_queue_depth = peak_waiters_;
  }
  out.queue_wait_us = queue_wait_us_.Snapshot();
  return out;
}

// ---------------------------------------------------------------------
// QuarantineList.

QuarantineList::Decision QuarantineList::Admit(const std::string& key) {
  if (config_.failure_threshold == 0) return Decision::kAdmit;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return Decision::kAdmit;
  Entry& e = it->second;
  switch (e.state) {
    case State::kClosed:
      return Decision::kAdmit;
    case State::kOpen:
      if (Clock::now() >= e.open_until) {
        e.state = State::kHalfOpen;
        probes_.fetch_add(1, std::memory_order_relaxed);
        return Decision::kProbe;
      }
      shed_.fetch_add(1, std::memory_order_relaxed);
      return Decision::kShed;
    case State::kHalfOpen:
      // The one probe is in flight; everyone else stays shed.
      shed_.fetch_add(1, std::memory_order_relaxed);
      return Decision::kShed;
  }
  return Decision::kAdmit;
}

void QuarantineList::Record(const std::string& key, bool resource_failure,
                            bool was_probe) {
  if (config_.failure_threshold == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (!resource_failure) {
    if (it != entries_.end() &&
        (was_probe || it->second.state == State::kClosed)) {
      if (was_probe) recoveries_.fetch_add(1, std::memory_order_relaxed);
      entries_.erase(it);  // clean slate: consecutive count resets
    }
    return;
  }
  if (it == entries_.end()) {
    if (entries_.size() >= config_.max_entries) {
      // Drop closed entries (mere failure counts) to make room; if every
      // entry is open, fail open for new keys rather than grow unbounded.
      for (auto e = entries_.begin(); e != entries_.end();) {
        e = e->second.state == State::kClosed ? entries_.erase(e)
                                              : std::next(e);
      }
      if (entries_.size() >= config_.max_entries) return;
    }
    it = entries_.emplace(key, Entry{}).first;
  }
  Entry& e = it->second;
  auto open_with_backoff = [&] {
    e.trips = e.trips >= 31 ? 31 : e.trips + 1;
    trips_.fetch_add(1, std::memory_order_relaxed);
    int64_t cooldown = config_.cooldown_ms;
    for (uint32_t i = 1; i < e.trips && cooldown < config_.max_cooldown_ms;
         ++i) {
      cooldown *= 2;
    }
    e.state = State::kOpen;
    e.open_until = Clock::now() + std::chrono::milliseconds(std::min(
                                      cooldown, config_.max_cooldown_ms));
  };
  if (was_probe || e.state == State::kHalfOpen) {
    // A failed probe: the query is still poison — back off harder.
    e.failures = config_.failure_threshold;
    open_with_backoff();
    return;
  }
  ++e.failures;
  if (e.state == State::kClosed &&
      e.failures >= config_.failure_threshold) {
    open_with_backoff();
  }
}

void QuarantineList::ProbeAborted(const std::string& key) {
  if (config_.failure_threshold == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second.state == State::kHalfOpen) {
    // Nothing was learned: re-open with an immediate re-probe window.
    it->second.state = State::kOpen;
    it->second.open_until = Clock::now();
  }
}

void QuarantineList::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

QuarantineStats QuarantineList::stats() const {
  QuarantineStats out;
  out.shed = shed_.load(std::memory_order_relaxed);
  out.trips = trips_.load(std::memory_order_relaxed);
  out.probes = probes_.load(std::memory_order_relaxed);
  out.recoveries = recoveries_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  out.tracked = entries_.size();
  for (const auto& [key, e] : entries_) {
    if (e.state != State::kClosed) ++out.open;
  }
  return out;
}

}  // namespace exrquy
