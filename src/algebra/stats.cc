#include "algebra/stats.h"

namespace exrquy {

PlanStats CollectPlanStats(const Dag& dag, OpId root) {
  PlanStats stats;
  for (OpId id : dag.ReachableFrom(root)) {
    const Op& op = dag.op(id);
    ++stats.total_ops;
    ++stats.by_kind[OpKindName(op.kind)];
    switch (op.kind) {
      case OpKind::kRowNum:
        ++stats.rownum_ops;
        break;
      case OpKind::kRowId:
        ++stats.rowid_ops;
        if (op.positional) ++stats.positional_rowid_ops;
        break;
      case OpKind::kStep:
        ++stats.step_ops;
        break;
      case OpKind::kThetaJoin:
        ++stats.theta_join_ops;
        break;
      case OpKind::kEquiJoin:
        if (op.value_join) ++stats.value_join_ops;
        break;
      case OpKind::kDistinct:
        ++stats.distinct_ops;
        break;
      default:
        break;
    }
  }
  return stats;
}

std::string PlanStats::ToString() const {
  std::string out = std::to_string(total_ops) + " ops (";
  out += std::to_string(rownum_ops) + " %, ";
  out += std::to_string(rowid_ops) + " #, ";
  out += std::to_string(step_ops) + " steps, ";
  out += std::to_string(distinct_ops) + " distinct)";
  return out;
}

}  // namespace exrquy
