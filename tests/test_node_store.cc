// Unit tests for the pre/size/level node store (Figure 5 of the paper):
// builder invariants, string values, subtree copies, fragments, the name
// index, and truncation.
#include <gtest/gtest.h>

#include "xml/node_store.h"

namespace exrquy {
namespace {

class NodeStoreTest : public ::testing::Test {
 protected:
  NodeStoreTest() : store_(&strings_) {}

  // Builds the paper's Figure 1/5 fragment <a><b><c/><d/></b><c/></a>
  // (no document node) and returns the a element's preorder rank.
  NodeIdx BuildFig5() {
    NodeBuilder b(&store_);
    b.BeginElement("a");
    b.BeginElement("b");
    b.BeginElement("c");
    b.EndElement();
    b.BeginElement("d");
    b.EndElement();
    b.EndElement();
    b.BeginElement("c");
    b.EndElement();
    b.EndElement();
    return b.Finish();
  }

  StrPool strings_;
  NodeStore store_;
};

TEST_F(NodeStoreTest, PreorderRanksMatchFigure5) {
  NodeIdx a = BuildFig5();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(store_.name_str(0), "a");
  EXPECT_EQ(store_.name_str(1), "b");
  EXPECT_EQ(store_.name_str(2), "c");  // c1
  EXPECT_EQ(store_.name_str(3), "d");
  EXPECT_EQ(store_.name_str(4), "c");  // c2
  // b (rank 1) precedes d (rank 3) in document order: 1 < 3.
  EXPECT_LT(NodeIdx{1}, NodeIdx{3});
}

TEST_F(NodeStoreTest, SizesCountDescendants) {
  BuildFig5();
  EXPECT_EQ(store_.size(0), 4u);  // a: b, c1, d, c2
  EXPECT_EQ(store_.size(1), 2u);  // b: c1, d
  EXPECT_EQ(store_.size(2), 0u);
  EXPECT_EQ(store_.size(4), 0u);
}

TEST_F(NodeStoreTest, LevelsAndParents) {
  BuildFig5();
  EXPECT_EQ(store_.level(0), 0);
  EXPECT_EQ(store_.level(1), 1);
  EXPECT_EQ(store_.level(2), 2);
  EXPECT_EQ(store_.level(4), 1);
  EXPECT_EQ(store_.parent(0), kInvalidNode);
  EXPECT_EQ(store_.parent(1), 0u);
  EXPECT_EQ(store_.parent(2), 1u);
  EXPECT_EQ(store_.parent(3), 1u);
  EXPECT_EQ(store_.parent(4), 0u);
}

TEST_F(NodeStoreTest, AttributesAndText) {
  NodeBuilder b(&store_);
  b.BeginElement("e");
  b.Attribute("id", "e1");
  b.Attribute("lang", "en");
  b.Text("hello");
  b.EndElement();
  NodeIdx e = b.Finish();
  EXPECT_EQ(store_.kind(e + 1), NodeKind::kAttribute);
  EXPECT_EQ(store_.name_str(e + 1), "id");
  EXPECT_EQ(store_.value_str(e + 1), "e1");
  EXPECT_EQ(store_.kind(e + 3), NodeKind::kText);
  EXPECT_EQ(store_.value_str(e + 3), "hello");
  EXPECT_EQ(store_.size(e), 3u);  // attributes count into the subtree
}

TEST_F(NodeStoreTest, StringValueConcatenatesTextDescendants) {
  NodeBuilder b(&store_);
  b.BeginElement("p");
  b.Text("one ");
  b.BeginElement("em");
  b.Text("two");
  b.EndElement();
  b.Text(" three");
  b.EndElement();
  NodeIdx p = b.Finish();
  EXPECT_EQ(store_.StringValue(p), "one two three");
}

TEST_F(NodeStoreTest, StringValueOfAttributeAndText) {
  NodeBuilder b(&store_);
  b.BeginElement("e");
  b.Attribute("k", "v");
  b.Text("t");
  b.EndElement();
  NodeIdx e = b.Finish();
  EXPECT_EQ(store_.StringValue(e + 1), "v");
  EXPECT_EQ(store_.StringValue(e + 2), "t");
}

TEST_F(NodeStoreTest, CopySubtreePreservesStructure) {
  NodeIdx a = BuildFig5();
  NodeBuilder b(&store_);
  b.BeginElement("root");
  b.CopySubtree(a + 1);  // copy <b><c/><d/></b>
  b.EndElement();
  NodeIdx root = b.Finish();
  EXPECT_EQ(store_.name_str(root), "root");
  NodeIdx bcopy = root + 1;
  EXPECT_EQ(store_.name_str(bcopy), "b");
  EXPECT_EQ(store_.size(bcopy), 2u);
  EXPECT_EQ(store_.level(bcopy), 1);
  EXPECT_EQ(store_.parent(bcopy), root);
  EXPECT_EQ(store_.parent(bcopy + 1), bcopy);
  EXPECT_EQ(store_.name_str(bcopy + 2), "d");
  EXPECT_EQ(store_.level(bcopy + 2), 2);
}

TEST_F(NodeStoreTest, FragmentsAndLookup) {
  NodeIdx a = BuildFig5();
  NodeIdx attr = store_.MakeAttribute(strings_.Intern("x"),
                                      strings_.Intern("1"));
  EXPECT_EQ(store_.fragment_count(), 2u);
  EXPECT_EQ(store_.FragmentOf(a).root, a);
  EXPECT_EQ(store_.FragmentOf(a + 3).root, a);
  EXPECT_EQ(store_.FragmentOf(attr).root, attr);
  EXPECT_EQ(store_.FragmentOf(attr).node_count, 1u);
}

TEST_F(NodeStoreTest, NameIndexSortedAndComplete) {
  NodeIdx a = BuildFig5();
  store_.IndexFragment(0);
  StrId c = strings_.Intern("c");
  const std::vector<NodeIdx>* idx =
      store_.IndexedNodes(NodeKind::kElement, c);
  ASSERT_NE(idx, nullptr);
  ASSERT_EQ(idx->size(), 2u);
  EXPECT_EQ((*idx)[0], a + 2);
  EXPECT_EQ((*idx)[1], a + 4);
  EXPECT_EQ(store_.IndexedNodes(NodeKind::kElement, strings_.Intern("zz")),
            nullptr);
}

TEST_F(NodeStoreTest, TruncateDropsConstructedFragments) {
  BuildFig5();
  size_t nodes = store_.node_count();
  size_t frags = store_.fragment_count();
  store_.MakeText(strings_.Intern("scratch"));
  store_.MakeAttribute(strings_.Intern("a"), strings_.Intern("b"));
  EXPECT_GT(store_.node_count(), nodes);
  store_.TruncateTo(nodes, frags);
  EXPECT_EQ(store_.node_count(), nodes);
  EXPECT_EQ(store_.fragment_count(), frags);
}

TEST_F(NodeStoreTest, DocumentNodeWrapsRoot) {
  NodeBuilder b(&store_);
  b.BeginDocument();
  b.BeginElement("r");
  b.EndElement();
  b.EndDocument();
  NodeIdx doc = b.Finish();
  EXPECT_EQ(store_.kind(doc), NodeKind::kDocument);
  EXPECT_EQ(store_.size(doc), 1u);
  EXPECT_EQ(store_.parent(doc + 1), doc);
}

}  // namespace
}  // namespace exrquy
