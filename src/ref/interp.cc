#include "ref/interp.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/check.h"
#include "xml/serializer.h"
#include "xml/step.h"

namespace exrquy {

RefInterpreter::RefInterpreter(NodeStore* store, StrPool* strings,
                               std::map<StrId, NodeIdx> documents)
    : store_(store),
      strings_(strings),
      documents_(std::move(documents)),
      ops_(strings, store) {}

Result<std::vector<Value>> RefInterpreter::Eval(const Expr& body) {
  Env env;
  return EvalExpr(body, env);
}

std::vector<std::string> RefInterpreter::Render(
    const std::vector<Value>& items) const {
  std::vector<std::string> out;
  out.reserve(items.size());
  for (const Value& v : items) {
    if (v.kind == ValueKind::kNode) {
      out.push_back(SerializeNode(*store_, v.node));
    } else {
      out.push_back(ops_.Render(v));
    }
  }
  return out;
}

Result<bool> RefInterpreter::Ebv(const Sequence& s) const {
  if (s.empty()) return false;
  if (s.size() == 1) return ops_.EbvSingle(s[0]);
  for (const Value& v : s) {
    if (v.kind == ValueKind::kNode) return true;
  }
  return TypeError("effective boolean value of a multi-item atomic sequence");
}

Result<Value> RefInterpreter::Singleton(const Sequence& s,
                                        const char* what) const {
  if (s.size() != 1) {
    return TypeError(std::string(what) + ": expected a singleton");
  }
  return s[0];
}

RefInterpreter::Sequence RefInterpreter::SortedDistinct(Sequence s) const {
  std::stable_sort(s.begin(), s.end(), [&](const Value& a, const Value& b) {
    return ops_.OrderCompare(a, b) < 0;
  });
  Sequence out;
  for (const Value& v : s) {
    if (out.empty() || !(out.back() == v)) out.push_back(v);
  }
  return out;
}

Result<RefInterpreter::Sequence> RefInterpreter::EvalExpr(const Expr& e,
                                                          Env& env) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return Sequence{Value::Int(e.int_value)};
    case ExprKind::kDoubleLit:
      return Sequence{Value::Double(e.double_value)};
    case ExprKind::kStringLit:
      return Sequence{Value::Str(strings_->Intern(e.string_value))};
    case ExprKind::kEmptySeq:
      return Sequence{};
    case ExprKind::kVarRef: {
      auto it = env.find(e.string_value);
      if (it == env.end()) {
        return NotFound("undefined variable $" + e.string_value);
      }
      return it->second;
    }
    case ExprKind::kContextItem: {
      auto it = env.find(".");
      if (it == env.end()) return NotFound("no context item");
      return it->second;
    }
    case ExprKind::kSequence: {
      Sequence out;
      for (const ExprPtr& c : e.children) {
        EXRQUY_ASSIGN_OR_RETURN(Sequence part, EvalExpr(*c, env));
        out.insert(out.end(), part.begin(), part.end());
      }
      return out;
    }
    case ExprKind::kFlwor:
      return EvalFlwor(e, env);
    case ExprKind::kIf: {
      EXRQUY_ASSIGN_OR_RETURN(Sequence cond, EvalExpr(*e.children[0], env));
      EXRQUY_ASSIGN_OR_RETURN(bool b, Ebv(cond));
      return EvalExpr(*e.children[b ? 1 : 2], env);
    }
    case ExprKind::kQuantified: {
      EXRQUY_CHECK(e.op == BinOp::kOr);  // `every` was normalized away
      EXRQUY_ASSIGN_OR_RETURN(Sequence domain,
                              EvalExpr(*e.children[0], env));
      Sequence saved;
      bool had = env.count(e.string_value) != 0;
      if (had) saved = env[e.string_value];
      bool found = false;
      for (const Value& v : domain) {
        env[e.string_value] = {v};
        Result<Sequence> s = EvalExpr(*e.children[1], env);
        if (!s.ok()) {
          if (had) env[e.string_value] = saved; else env.erase(e.string_value);
          return s.status();
        }
        Result<bool> b = Ebv(*s);
        if (!b.ok()) {
          if (had) env[e.string_value] = saved; else env.erase(e.string_value);
          return b.status();
        }
        if (*b) {
          found = true;
          break;
        }
      }
      if (had) env[e.string_value] = saved; else env.erase(e.string_value);
      return Sequence{Value::Bool(found)};
    }
    case ExprKind::kPathStep:
      return EvalPathStep(e, env);
    case ExprKind::kPathFilter: {
      EXRQUY_ASSIGN_OR_RETURN(Sequence ctx, EvalExpr(*e.children[0], env));
      Sequence collected;
      Sequence saved;
      bool had = env.count(".") != 0;
      if (had) saved = env["."];
      for (const Value& v : ctx) {
        env["."] = {v};
        Result<Sequence> r = EvalExpr(*e.children[1], env);
        if (!r.ok()) {
          if (had) env["."] = saved; else env.erase(".");
          return r.status();
        }
        collected.insert(collected.end(), r->begin(), r->end());
      }
      if (had) env["."] = saved; else env.erase(".");
      return SortedDistinct(std::move(collected));
    }
    case ExprKind::kPredicate:
      return EvalPredicate(e, env);
    case ExprKind::kSetOp: {
      EXRQUY_ASSIGN_OR_RETURN(Sequence l, EvalExpr(*e.children[0], env));
      EXRQUY_ASSIGN_OR_RETURN(Sequence r, EvalExpr(*e.children[1], env));
      Sequence ld = SortedDistinct(std::move(l));
      Sequence rd = SortedDistinct(std::move(r));
      Sequence out;
      switch (e.op) {
        case BinOp::kUnion:
          std::set_union(ld.begin(), ld.end(), rd.begin(), rd.end(),
                         std::back_inserter(out),
                         [&](const Value& a, const Value& b) {
                           return ops_.OrderCompare(a, b) < 0;
                         });
          break;
        case BinOp::kIntersect:
          std::set_intersection(ld.begin(), ld.end(), rd.begin(), rd.end(),
                                std::back_inserter(out),
                                [&](const Value& a, const Value& b) {
                                  return ops_.OrderCompare(a, b) < 0;
                                });
          break;
        case BinOp::kExcept:
          std::set_difference(ld.begin(), ld.end(), rd.begin(), rd.end(),
                              std::back_inserter(out),
                              [&](const Value& a, const Value& b) {
                                return ops_.OrderCompare(a, b) < 0;
                              });
          break;
        default:
          return Internal("bad set op");
      }
      return out;
    }
    case ExprKind::kGeneralComp:
    case ExprKind::kValueComp:
    case ExprKind::kNodeComp:
      return EvalComparison(e, env);
    case ExprKind::kArith:
      return EvalArith(e, env);
    case ExprKind::kRange: {
      EXRQUY_ASSIGN_OR_RETURN(Sequence l, EvalExpr(*e.children[0], env));
      EXRQUY_ASSIGN_OR_RETURN(Sequence r, EvalExpr(*e.children[1], env));
      if (l.empty() || r.empty()) return Sequence{};
      EXRQUY_ASSIGN_OR_RETURN(Value lo, Singleton(l, "range"));
      EXRQUY_ASSIGN_OR_RETURN(Value hi, Singleton(r, "range"));
      EXRQUY_ASSIGN_OR_RETURN(Value lod, ops_.ToDouble(ops_.Atomize(lo)));
      EXRQUY_ASSIGN_OR_RETURN(Value hid, ops_.ToDouble(ops_.Atomize(hi)));
      Sequence out;
      for (int64_t v = static_cast<int64_t>(lod.d);
           v <= static_cast<int64_t>(hid.d); ++v) {
        out.push_back(Value::Int(v));
      }
      return out;
    }
    case ExprKind::kLogical: {
      EXRQUY_ASSIGN_OR_RETURN(Sequence l, EvalExpr(*e.children[0], env));
      EXRQUY_ASSIGN_OR_RETURN(Sequence r, EvalExpr(*e.children[1], env));
      EXRQUY_ASSIGN_OR_RETURN(bool a, Ebv(l));
      EXRQUY_ASSIGN_OR_RETURN(bool b, Ebv(r));
      return Sequence{
          Value::Bool(e.op == BinOp::kAnd ? (a && b) : (a || b))};
    }
    case ExprKind::kFunctionCall:
      return EvalCall(e, env);
    case ExprKind::kOrderedExpr:
      // Ordered-mode reference semantics in either case.
      return EvalExpr(*e.children[0], env);
    case ExprKind::kElementCtor:
      return EvalCtor(e, env);
    case ExprKind::kAttributeCtor:
      return Internal("attribute constructor outside element");
    case ExprKind::kTextCtor: {
      EXRQUY_ASSIGN_OR_RETURN(Sequence c, EvalExpr(*e.children[0], env));
      if (c.empty()) return Sequence{};
      std::string s;
      for (size_t i = 0; i < c.size(); ++i) {
        if (i) s += ' ';
        EXRQUY_ASSIGN_OR_RETURN(Value sv, ops_.ToString(ops_.Atomize(c[i])));
        s += strings_->Get(sv.str);
      }
      return Sequence{Value::Node(store_->MakeText(strings_->Intern(s)))};
    }
  }
  return Internal("unhandled expression kind");
}

Result<RefInterpreter::Sequence> RefInterpreter::EvalFlwor(const Expr& e,
                                                           Env& env) {
  size_t for_count = 0;
  for (const FlworClause& c : e.clauses) {
    if (c.kind == FlworClause::Kind::kFor) ++for_count;
  }
  if (!e.order_by.empty() && for_count != 1) {
    return Unimplemented(
        "order by is supported for FLWOR blocks with exactly one for "
        "clause");
  }
  std::vector<std::pair<Sequence, Sequence>> keyed;  // (keys, items)
  EXRQUY_ASSIGN_OR_RETURN(Sequence direct,
                          EvalFlworClauses(e, 0, env, &keyed));
  if (e.order_by.empty()) return direct;

  std::stable_sort(
      keyed.begin(), keyed.end(), [&](const auto& a, const auto& b) {
        for (size_t k = 0; k < e.order_by.size(); ++k) {
          int c = ops_.OrderCompare(a.first[k], b.first[k]);
          if (c != 0) return e.order_by[k].descending ? c > 0 : c < 0;
        }
        return false;
      });
  Sequence out;
  for (const auto& [keys, items] : keyed) {
    out.insert(out.end(), items.begin(), items.end());
  }
  return out;
}

Result<RefInterpreter::Sequence> RefInterpreter::EvalFlworClauses(
    const Expr& e, size_t idx, Env& env,
    std::vector<std::pair<Sequence, Sequence>>* keyed_results) {
  if (idx == e.clauses.size()) {
    if (e.where != nullptr) {
      EXRQUY_ASSIGN_OR_RETURN(Sequence w, EvalExpr(*e.where, env));
      EXRQUY_ASSIGN_OR_RETURN(bool pass, Ebv(w));
      if (!pass) return Sequence{};
    }
    if (e.order_by.empty()) return EvalExpr(*e.ret, env);
    Sequence keys;
    for (const OrderSpec& spec : e.order_by) {
      EXRQUY_ASSIGN_OR_RETURN(Sequence k, EvalExpr(*spec.key, env));
      if (k.empty()) {
        keys.push_back(Value::Untyped(StrPool::kEmpty));
      } else {
        // Mirror the compiled key derivation: atomize, and pick the
        // maximum when the key is (erroneously) plural.
        Value best = ops_.Atomize(k[0]);
        for (size_t i = 1; i < k.size(); ++i) {
          Value cand = ops_.Atomize(k[i]);
          if (ops_.OrderCompare(cand, best) > 0) best = cand;
        }
        keys.push_back(best);
      }
    }
    EXRQUY_ASSIGN_OR_RETURN(Sequence items, EvalExpr(*e.ret, env));
    keyed_results->emplace_back(std::move(keys), std::move(items));
    return Sequence{};
  }

  const FlworClause& c = e.clauses[idx];
  auto restore = [&](const std::string& name, bool had, Sequence saved) {
    if (had) {
      env[name] = std::move(saved);
    } else {
      env.erase(name);
    }
  };

  if (c.kind == FlworClause::Kind::kLet) {
    EXRQUY_ASSIGN_OR_RETURN(Sequence v, EvalExpr(*c.expr, env));
    bool had = env.count(c.var) != 0;
    Sequence saved = had ? env[c.var] : Sequence{};
    env[c.var] = std::move(v);
    Result<Sequence> out = EvalFlworClauses(e, idx + 1, env, keyed_results);
    restore(c.var, had, std::move(saved));
    return out;
  }

  EXRQUY_ASSIGN_OR_RETURN(Sequence binding, EvalExpr(*c.expr, env));
  bool had = env.count(c.var) != 0;
  Sequence saved = had ? env[c.var] : Sequence{};
  bool had_pos = !c.pos_var.empty() && env.count(c.pos_var) != 0;
  Sequence saved_pos =
      had_pos ? env[c.pos_var] : Sequence{};
  Sequence out;
  for (size_t i = 0; i < binding.size(); ++i) {
    env[c.var] = {binding[i]};
    if (!c.pos_var.empty()) {
      env[c.pos_var] = {Value::Int(static_cast<int64_t>(i) + 1)};
    }
    Result<Sequence> part = EvalFlworClauses(e, idx + 1, env, keyed_results);
    if (!part.ok()) {
      restore(c.var, had, std::move(saved));
      if (!c.pos_var.empty()) restore(c.pos_var, had_pos, std::move(saved_pos));
      return part.status();
    }
    out.insert(out.end(), part->begin(), part->end());
  }
  restore(c.var, had, std::move(saved));
  if (!c.pos_var.empty()) restore(c.pos_var, had_pos, std::move(saved_pos));
  return out;
}

Result<RefInterpreter::Sequence> RefInterpreter::EvalPathStep(const Expr& e,
                                                              Env& env) {
  EXRQUY_ASSIGN_OR_RETURN(Sequence ctx, EvalExpr(*e.children[0], env));
  std::vector<int64_t> iters;
  std::vector<NodeIdx> nodes;
  for (const Value& v : ctx) {
    if (v.kind != ValueKind::kNode) {
      return TypeError("path step applied to a non-node item");
    }
    iters.push_back(0);
    nodes.push_back(v.node);
  }
  NodeTest test;
  test.kind = e.test_kind;
  if (test.kind == NodeTest::Kind::kName) {
    test.name = strings_->Intern(e.test_name);
  }
  std::vector<int64_t> out_iters;
  std::vector<NodeIdx> out_nodes;
  EvalStep(*store_, e.axis, test, std::move(iters), std::move(nodes),
           &out_iters, &out_nodes);
  Sequence out;
  out.reserve(out_nodes.size());
  for (NodeIdx n : out_nodes) out.push_back(Value::Node(n));
  return out;
}

Result<RefInterpreter::Sequence> RefInterpreter::EvalPredicate(const Expr& e,
                                                               Env& env) {
  EXRQUY_ASSIGN_OR_RETURN(Sequence base, EvalExpr(*e.children[0], env));
  const Expr& p = *e.children[1];

  if (p.kind == ExprKind::kIntLit) {
    int64_t k = p.int_value;
    if (k < 1 || static_cast<size_t>(k) > base.size()) return Sequence{};
    return Sequence{base[static_cast<size_t>(k) - 1]};
  }
  if (p.kind == ExprKind::kFunctionCall && p.string_value == "last" &&
      p.children.empty()) {
    if (base.empty()) return Sequence{};
    return Sequence{base.back()};
  }

  // position() comparisons.
  auto unwrap = [](const Expr* x) {
    while (x->kind == ExprKind::kFunctionCall &&
           x->string_value == "unordered") {
      x = x->children[0].get();
    }
    return x;
  };
  if ((p.kind == ExprKind::kGeneralComp || p.kind == ExprKind::kValueComp) &&
      p.children.size() == 2) {
    const Expr* lhs = unwrap(p.children[0].get());
    const Expr* rhs = unwrap(p.children[1].get());
    auto is_position = [](const Expr& x) {
      return x.kind == ExprKind::kFunctionCall &&
             x.string_value == "position" && x.children.empty();
    };
    const Expr* lit = nullptr;
    bool swapped = false;
    if (is_position(*lhs) && rhs->kind == ExprKind::kIntLit) {
      lit = rhs;
    } else if (is_position(*rhs) && lhs->kind == ExprKind::kIntLit) {
      lit = lhs;
      swapped = true;
    }
    if (lit != nullptr) {
      Sequence out;
      for (size_t i = 0; i < base.size(); ++i) {
        int64_t posn = static_cast<int64_t>(i) + 1;
        int64_t a = swapped ? lit->int_value : posn;
        int64_t b = swapped ? posn : lit->int_value;
        bool keep = false;
        switch (p.op) {
          case BinOp::kEq:
            keep = a == b;
            break;
          case BinOp::kNe:
            keep = a != b;
            break;
          case BinOp::kLt:
            keep = a < b;
            break;
          case BinOp::kLe:
            keep = a <= b;
            break;
          case BinOp::kGt:
            keep = a > b;
            break;
          case BinOp::kGe:
            keep = a >= b;
            break;
          default:
            break;
        }
        if (keep) out.push_back(base[i]);
      }
      return out;
    }
  }

  // General boolean predicate with the context item bound.
  Sequence out;
  Sequence saved;
  bool had = env.count(".") != 0;
  if (had) saved = env["."];
  for (const Value& v : base) {
    env["."] = {v};
    Result<Sequence> r = EvalExpr(p, env);
    if (!r.ok()) {
      if (had) env["."] = saved; else env.erase(".");
      return r.status();
    }
    Result<bool> b = Ebv(*r);
    if (!b.ok()) {
      if (had) env["."] = saved; else env.erase(".");
      return b.status();
    }
    if (*b) out.push_back(v);
  }
  if (had) env["."] = saved; else env.erase(".");
  return out;
}

Result<RefInterpreter::Sequence> RefInterpreter::EvalComparison(const Expr& e,
                                                                Env& env) {
  EXRQUY_ASSIGN_OR_RETURN(Sequence l, EvalExpr(*e.children[0], env));
  EXRQUY_ASSIGN_OR_RETURN(Sequence r, EvalExpr(*e.children[1], env));
  FunKind fk;
  switch (e.op) {
    case BinOp::kEq:
      fk = FunKind::kEq;
      break;
    case BinOp::kNe:
      fk = FunKind::kNe;
      break;
    case BinOp::kLt:
      fk = FunKind::kLt;
      break;
    case BinOp::kLe:
      fk = FunKind::kLe;
      break;
    case BinOp::kGt:
      fk = FunKind::kGt;
      break;
    case BinOp::kGe:
      fk = FunKind::kGe;
      break;
    case BinOp::kBefore:
    case BinOp::kAfter:
    case BinOp::kIs: {
      bool found = false;
      for (const Value& a : l) {
        for (const Value& b : r) {
          if (a.kind != ValueKind::kNode || b.kind != ValueKind::kNode) {
            return TypeError("node comparison on non-node operands");
          }
          bool v = e.op == BinOp::kBefore  ? a.node < b.node
                   : e.op == BinOp::kAfter ? a.node > b.node
                                           : a.node == b.node;
          if (v) found = true;
        }
      }
      return Sequence{Value::Bool(found)};
    }
    default:
      return Internal("bad comparison op");
  }
  bool found = false;
  for (const Value& a : l) {
    for (const Value& b : r) {
      EXRQUY_ASSIGN_OR_RETURN(
          Value v, ops_.Compare(fk, ops_.Atomize(a), ops_.Atomize(b)));
      if (v.b) found = true;
    }
  }
  return Sequence{Value::Bool(found)};
}

Result<RefInterpreter::Sequence> RefInterpreter::EvalArith(const Expr& e,
                                                           Env& env) {
  if (e.op == BinOp::kNeg) {
    EXRQUY_ASSIGN_OR_RETURN(Sequence s, EvalExpr(*e.children[0], env));
    Sequence out;
    for (const Value& v : s) {
      Value a = ops_.Atomize(v);
      if (a.kind == ValueKind::kInt) {
        if (a.i == INT64_MIN) {
          return TypeError("err:FOAR0002: integer overflow in negation");
        }
        out.push_back(Value::Int(-a.i));
      } else {
        EXRQUY_ASSIGN_OR_RETURN(Value d, ops_.ToDouble(a));
        out.push_back(Value::Double(-d.d));
      }
    }
    return out;
  }
  FunKind fk;
  switch (e.op) {
    case BinOp::kAdd:
      fk = FunKind::kAdd;
      break;
    case BinOp::kSub:
      fk = FunKind::kSub;
      break;
    case BinOp::kMul:
      fk = FunKind::kMul;
      break;
    case BinOp::kDiv:
      fk = FunKind::kDiv;
      break;
    case BinOp::kIDiv:
      fk = FunKind::kIDiv;
      break;
    case BinOp::kMod:
      fk = FunKind::kMod;
      break;
    default:
      return Internal("bad arithmetic op");
  }
  EXRQUY_ASSIGN_OR_RETURN(Sequence l, EvalExpr(*e.children[0], env));
  EXRQUY_ASSIGN_OR_RETURN(Sequence r, EvalExpr(*e.children[1], env));
  if (l.empty() || r.empty()) return Sequence{};
  // Mirrors the compiled per-iteration pairing (cross pairs when the
  // operands are erroneously plural).
  Sequence out;
  for (const Value& a : l) {
    for (const Value& b : r) {
      EXRQUY_ASSIGN_OR_RETURN(
          Value v, ops_.Arith(fk, ops_.Atomize(a), ops_.Atomize(b)));
      out.push_back(v);
    }
  }
  return out;
}

Result<std::string> RefInterpreter::EvalAvt(
    const std::vector<CtorPart>& parts, Env& env) {
  std::string out;
  for (const CtorPart& p : parts) {
    if (p.expr == nullptr) {
      out += p.text;
      continue;
    }
    EXRQUY_ASSIGN_OR_RETURN(Sequence s, EvalExpr(*p.expr, env));
    for (size_t i = 0; i < s.size(); ++i) {
      if (i) out += ' ';
      EXRQUY_ASSIGN_OR_RETURN(Value sv, ops_.ToString(ops_.Atomize(s[i])));
      out += strings_->Get(sv.str);
    }
  }
  return out;
}

Result<RefInterpreter::Sequence> RefInterpreter::EvalCtor(const Expr& e,
                                                          Env& env) {
  // Attributes, then content (literal parts become text nodes).
  std::vector<std::pair<StrId, StrId>> attrs;
  for (const ExprPtr& a : e.children) {
    EXRQUY_ASSIGN_OR_RETURN(std::string value, EvalAvt(a->parts, env));
    attrs.emplace_back(strings_->Intern(a->string_value),
                       strings_->Intern(value));
  }
  Sequence content;
  for (const CtorPart& p : e.parts) {
    if (p.expr == nullptr) {
      content.push_back(
          Value::Node(store_->MakeText(strings_->Intern(p.text))));
      continue;
    }
    EXRQUY_ASSIGN_OR_RETURN(Sequence s, EvalExpr(*p.expr, env));
    content.insert(content.end(), s.begin(), s.end());
  }

  NodeBuilder builder(store_);
  builder.BeginElement(strings_->Intern(e.string_value));
  for (const auto& [n, v] : attrs) builder.Attribute(n, v);
  for (const Value& v : content) {
    if (v.kind == ValueKind::kNode &&
        store_->kind(v.node) == NodeKind::kAttribute) {
      builder.Attribute(store_->name(v.node), store_->value(v.node));
    }
  }
  std::string pending;
  bool have_pending = false;
  auto flush = [&] {
    if (have_pending) builder.Text(pending);
    pending.clear();
    have_pending = false;
  };
  for (const Value& v : content) {
    if (v.kind == ValueKind::kNode) {
      NodeKind k = store_->kind(v.node);
      if (k == NodeKind::kAttribute) continue;
      flush();
      if (k == NodeKind::kDocument) {
        NodeIdx end = v.node + store_->size(v.node);
        NodeIdx c = v.node + 1;
        while (c <= end) {
          builder.CopySubtree(c);
          c += store_->size(c) + 1;
        }
      } else {
        builder.CopySubtree(v.node);
      }
    } else {
      if (have_pending) pending += ' ';
      pending += ops_.Render(v);
      have_pending = true;
    }
  }
  flush();
  builder.EndElement();
  return Sequence{Value::Node(builder.Finish())};
}

Result<RefInterpreter::Sequence> RefInterpreter::EvalCall(const Expr& e,
                                                          Env& env) {
  const std::string& name = e.string_value;
  auto arg = [&](size_t i) { return EvalExpr(*e.children[i], env); };
  auto single_string =
      [&](const Sequence& s) -> Result<std::string> {
    EXRQUY_ASSIGN_OR_RETURN(Value v, Singleton(s, "string argument"));
    EXRQUY_ASSIGN_OR_RETURN(Value sv, ops_.ToString(ops_.Atomize(v)));
    return strings_->Get(sv.str);
  };

  if (name == "true") return Sequence{Value::Bool(true)};
  if (name == "false") return Sequence{Value::Bool(false)};
  if (name == "doc") {
    if (e.children[0]->kind != ExprKind::kStringLit) {
      return Unimplemented("fn:doc requires a string literal argument");
    }
    auto it = documents_.find(strings_->Intern(e.children[0]->string_value));
    if (it == documents_.end()) {
      return NotFound("document not loaded: " + e.children[0]->string_value);
    }
    return Sequence{Value::Node(it->second)};
  }
  if (name == "unordered") return arg(0);  // ordered reference semantics

  if (name == "count" || name == "empty" || name == "exists") {
    EXRQUY_ASSIGN_OR_RETURN(Sequence s, arg(0));
    if (name == "count") {
      return Sequence{Value::Int(static_cast<int64_t>(s.size()))};
    }
    bool is_empty = s.empty();
    return Sequence{Value::Bool(name == "empty" ? is_empty : !is_empty)};
  }
  if (name == "sum" || name == "avg" || name == "max" || name == "min") {
    EXRQUY_ASSIGN_OR_RETURN(Sequence s, arg(0));
    if (name == "sum") {
      Value acc = Value::Int(0);
      for (const Value& v : s) {
        EXRQUY_ASSIGN_OR_RETURN(acc,
                                ops_.Arith(FunKind::kAdd, acc,
                                           ops_.Atomize(v)));
      }
      return Sequence{acc};
    }
    if (s.empty()) return Sequence{};
    if (name == "avg") {
      Value acc = Value::Int(0);
      for (const Value& v : s) {
        EXRQUY_ASSIGN_OR_RETURN(acc,
                                ops_.Arith(FunKind::kAdd, acc,
                                           ops_.Atomize(v)));
      }
      EXRQUY_ASSIGN_OR_RETURN(Value d, ops_.ToDouble(acc));
      return Sequence{Value::Double(d.d / static_cast<double>(s.size()))};
    }
    // max / min with the engine's untyped-numeric behaviour.
    bool numeric = true;
    for (const Value& v : s) {
      if (!ops_.ToDouble(ops_.Atomize(v)).ok()) {
        numeric = false;
        break;
      }
    }
    bool want_max = name == "max";
    bool first = true;
    Value best;
    for (const Value& v : s) {
      Value cand = ops_.Atomize(v);
      if (numeric) {
        EXRQUY_ASSIGN_OR_RETURN(cand, ops_.ToDouble(cand));
      }
      if (first) {
        best = cand;
        first = false;
        continue;
      }
      int c = ops_.OrderCompare(cand, best);
      if (want_max ? c > 0 : c < 0) best = cand;
    }
    return Sequence{best};
  }

  if (name == "boolean" || name == "not") {
    EXRQUY_ASSIGN_OR_RETURN(Sequence s, arg(0));
    EXRQUY_ASSIGN_OR_RETURN(bool b, Ebv(s));
    return Sequence{Value::Bool(name == "not" ? !b : b)};
  }

  if (name == "distinct-values") {
    EXRQUY_ASSIGN_OR_RETURN(Sequence s, arg(0));
    Sequence atomized;
    for (const Value& v : s) atomized.push_back(ops_.Atomize(v));
    // Baseline-compiled distinct-values sorts by value.
    return SortedDistinct(std::move(atomized));
  }

  if (name == "data" || name == "string" || name == "number") {
    EXRQUY_ASSIGN_OR_RETURN(Sequence s, arg(0));
    Sequence out;
    for (const Value& v : s) {
      Value a = ops_.Atomize(v);
      if (name == "string") {
        EXRQUY_ASSIGN_OR_RETURN(a, ops_.ToString(a));
      } else if (name == "number") {
        EXRQUY_ASSIGN_OR_RETURN(a, ops_.ToDouble(a));
      }
      out.push_back(a);
    }
    return out;
  }

  if (name == "contains" || name == "starts-with" || name == "ends-with") {
    EXRQUY_ASSIGN_OR_RETURN(Sequence l, arg(0));
    EXRQUY_ASSIGN_OR_RETURN(Sequence r, arg(1));
    if (l.empty() || r.empty()) return Sequence{};  // mirrors the join
    EXRQUY_ASSIGN_OR_RETURN(std::string a, single_string(l));
    EXRQUY_ASSIGN_OR_RETURN(std::string b, single_string(r));
    bool v;
    if (name == "contains") {
      v = a.find(b) != std::string::npos;
    } else if (name == "starts-with") {
      v = b.size() <= a.size() && a.compare(0, b.size(), b) == 0;
    } else {
      v = b.size() <= a.size() &&
          a.compare(a.size() - b.size(), b.size(), b) == 0;
    }
    return Sequence{Value::Bool(v)};
  }

  if (name == "concat") {
    std::string out;
    for (size_t i = 0; i < e.children.size(); ++i) {
      EXRQUY_ASSIGN_OR_RETURN(Sequence s, arg(i));
      if (s.empty()) return Sequence{};  // mirrors the join chain
      EXRQUY_ASSIGN_OR_RETURN(std::string part, single_string(s));
      out += part;
    }
    return Sequence{Value::Str(strings_->Intern(out))};
  }

  if (name == "string-length" || name == "upper-case" ||
      name == "lower-case" || name == "normalize-space") {
    EXRQUY_ASSIGN_OR_RETURN(Sequence s, arg(0));
    Sequence out;
    for (const Value& v : s) {
      EXRQUY_ASSIGN_OR_RETURN(Value sv, ops_.ToString(ops_.Atomize(v)));
      std::string str = strings_->Get(sv.str);
      if (name == "string-length") {
        out.push_back(Value::Int(static_cast<int64_t>(str.size())));
        continue;
      }
      if (name == "upper-case" || name == "lower-case") {
        for (char& c : str) {
          c = name == "upper-case"
                  ? static_cast<char>(
                        std::toupper(static_cast<unsigned char>(c)))
                  : static_cast<char>(
                        std::tolower(static_cast<unsigned char>(c)));
        }
      } else {
        std::string norm;
        bool in_space = true;
        for (char c : str) {
          if (std::isspace(static_cast<unsigned char>(c))) {
            if (!in_space) norm += ' ';
            in_space = true;
          } else {
            norm += c;
            in_space = false;
          }
        }
        while (!norm.empty() && norm.back() == ' ') norm.pop_back();
        str = norm;
      }
      out.push_back(Value::Str(strings_->Intern(str)));
    }
    return out;
  }

  if (name == "substring") {
    EXRQUY_ASSIGN_OR_RETURN(Sequence s0, arg(0));
    EXRQUY_ASSIGN_OR_RETURN(Sequence s1, arg(1));
    if (s0.empty() || s1.empty()) return Sequence{};
    EXRQUY_ASSIGN_OR_RETURN(std::string s, single_string(s0));
    EXRQUY_ASSIGN_OR_RETURN(Value v1, Singleton(s1, "substring"));
    EXRQUY_ASSIGN_OR_RETURN(Value d1, ops_.ToDouble(ops_.Atomize(v1)));
    int64_t start = static_cast<int64_t>(std::llround(d1.d));
    int64_t end = static_cast<int64_t>(s.size()) + 1;
    if (e.children.size() == 3) {
      EXRQUY_ASSIGN_OR_RETURN(Sequence s2, arg(2));
      if (s2.empty()) return Sequence{};
      EXRQUY_ASSIGN_OR_RETURN(Value v2, Singleton(s2, "substring"));
      EXRQUY_ASSIGN_OR_RETURN(Value d2, ops_.ToDouble(ops_.Atomize(v2)));
      end = start + static_cast<int64_t>(std::llround(d2.d));
    }
    start = std::max<int64_t>(start, 1);
    end = std::min<int64_t>(end, static_cast<int64_t>(s.size()) + 1);
    std::string out = start < end
                          ? s.substr(static_cast<size_t>(start - 1),
                                     static_cast<size_t>(end - start))
                          : "";
    return Sequence{Value::Str(strings_->Intern(out))};
  }

  if (name == "abs" || name == "floor" || name == "ceiling" ||
      name == "round") {
    EXRQUY_ASSIGN_OR_RETURN(Sequence s, arg(0));
    Sequence out;
    for (const Value& v : s) {
      Value a = ops_.Atomize(v);
      if (a.kind == ValueKind::kUntyped || a.kind == ValueKind::kString) {
        EXRQUY_ASSIGN_OR_RETURN(a, ops_.ToDouble(a));
      }
      if (a.kind == ValueKind::kInt) {
        out.push_back(name == "abs" ? Value::Int(std::llabs(a.i)) : a);
        continue;
      }
      if (a.kind != ValueKind::kDouble) {
        return TypeError("numeric function on non-numeric operand");
      }
      double d = a.d;
      if (name == "abs") {
        d = std::fabs(d);
      } else if (name == "floor") {
        d = std::floor(d);
      } else if (name == "ceiling") {
        d = std::ceil(d);
      } else {
        d = std::floor(d + 0.5);
      }
      out.push_back(Value::Double(d));
    }
    return out;
  }

  if (name == "name" || name == "local-name") {
    EXRQUY_ASSIGN_OR_RETURN(Sequence s, arg(0));
    Sequence out;
    for (const Value& v : s) {
      if (v.kind != ValueKind::kNode) {
        return TypeError("fn:name on a non-node item");
      }
      out.push_back(Value::Str(store_->name(v.node)));
    }
    return out;
  }

  if (name == "string-join") {
    if (e.children[1]->kind != ExprKind::kStringLit) {
      return Unimplemented(
          "fn:string-join requires a string literal separator");
    }
    EXRQUY_ASSIGN_OR_RETURN(Sequence s, arg(0));
    std::string sep = e.children[1]->string_value;
    std::string out;
    for (size_t i = 0; i < s.size(); ++i) {
      if (i) out += sep;
      EXRQUY_ASSIGN_OR_RETURN(Value sv, ops_.ToString(ops_.Atomize(s[i])));
      out += strings_->Get(sv.str);
    }
    return Sequence{Value::Str(strings_->Intern(out))};
  }

  if (name == "reverse") {
    EXRQUY_ASSIGN_OR_RETURN(Sequence s, arg(0));
    std::reverse(s.begin(), s.end());
    return s;
  }

  if (name == "subsequence") {
    EXRQUY_ASSIGN_OR_RETURN(Sequence s, arg(0));
    EXRQUY_ASSIGN_OR_RETURN(Sequence s1, arg(1));
    if (s1.empty()) return Sequence{};
    EXRQUY_ASSIGN_OR_RETURN(Value v1, Singleton(s1, "subsequence"));
    EXRQUY_ASSIGN_OR_RETURN(Value d1, ops_.ToDouble(ops_.Atomize(v1)));
    int64_t start = static_cast<int64_t>(std::llround(d1.d));
    int64_t end = std::numeric_limits<int64_t>::max();
    if (e.children.size() == 3) {
      EXRQUY_ASSIGN_OR_RETURN(Sequence s2, arg(2));
      if (s2.empty()) return Sequence{};
      EXRQUY_ASSIGN_OR_RETURN(Value v2, Singleton(s2, "subsequence"));
      EXRQUY_ASSIGN_OR_RETURN(Value d2, ops_.ToDouble(ops_.Atomize(v2)));
      end = start + static_cast<int64_t>(std::llround(d2.d));
    }
    Sequence out;
    for (size_t i = 0; i < s.size(); ++i) {
      int64_t rank = static_cast<int64_t>(i) + 1;
      if (rank >= start && rank < end) out.push_back(s[i]);
    }
    return out;
  }

  if (name == "zero-or-one" || name == "exactly-one" ||
      name == "one-or-more") {
    EXRQUY_ASSIGN_OR_RETURN(Sequence s, arg(0));
    size_t n = s.size();
    bool ok = name == "zero-or-one"   ? n <= 1
              : name == "exactly-one" ? n == 1
                                      : n >= 1;
    if (!ok) {
      return CardinalityError("fn:" + name + ": argument has " +
                              std::to_string(n) + " item(s)");
    }
    return s;
  }

  if (name == "last" || name == "position") {
    return Unimplemented("fn:" + name +
                         " is supported only inside predicates");
  }
  return NotFound("unknown function: " + name);
}

}  // namespace exrquy
