// Regenerates the committed XMark operator-count golden:
//
//   ./gen_opcounts > tests/corpus/opcounts/xmark_opcounts.txt
//
// The report (api/opcounts.h) is what tests/test_plan_shapes.cc compares
// byte-for-byte, so a deliberate change to the rewriter's %-elimination
// power is recorded by re-running this tool and committing the diff.
#include <cstdio>

#include "api/opcounts.h"
#include "api/session.h"

int main() {
  exrquy::Session session;
  exrquy::Result<std::string> report = exrquy::OpCountReport(&session);
  if (!report.ok()) {
    std::fprintf(stderr, "gen_opcounts: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::fputs(report->c_str(), stdout);
  return 0;
}
