// Plan rewrites driven by column dependency analysis and column
// properties:
//
//  * column pruning — dead %, #, ⊕ and attached constants are removed;
//    projections are narrowed and composed (Section 4.1, Figure 9),
//  * % weakening — order/grouping criteria that are constant are dropped;
//    a % ordered (only) by arbitrary-order columns with no meaningful
//    grouping becomes a free # (Section 7),
//  * distinct elimination — Distinct over a (union of) location step
//    results that are pairwise disjoint is removed; this is the rewrite
//    that trades the node set union '|' for sequence concatenation ','
//    (Section 4.2, Figure 10),
//  * step merging — descendant-or-self::node()/child::nt becomes
//    descendant::nt once the intervening order derivation is gone (the
//    exceptional Q6/Q7 speedups of Section 5),
//
// plus the fact-driven rewrites unlocked by the dataflow analyses
// (opt/analyses.h):
//
//  * key-based distinct elimination — Distinct whose input has a key
//    column (or at most one row) is dropped: a duplicate-free column
//    makes the whole rows pairwise distinct,
//  * empty-plan short-circuiting — a sub-plan with a statically-zero row
//    bound collapses to an empty literal, provided evaluating it can
//    never raise a dynamic error (the error capability analysis gates
//    this, so error semantics are preserved),
//  * key-justified % collapse — a % whose partition column is a key of
//    its input (or whose input has at most one row) ranks singleton
//    groups; the rank is the constant 1 and the blocking sort vanishes
//    without consuming the order demand,
//  * order-dependency % collapse — a % whose requested order the input
//    provably already realizes (the order-dependency domain) performs an
//    identity sort: it degrades to a positional # carrying the very same
//    1..n values; and a % partitioned by a unit-group column (the
//    semantic-type domain, e.g. below fn:exactly-one) ranks singleton
//    groups and becomes the constant 1.
#ifndef EXRQUY_OPT_REWRITES_H_
#define EXRQUY_OPT_REWRITES_H_

#include <string>
#include <vector>

#include "algebra/algebra.h"
#include "opt/certify.h"

namespace exrquy {

struct RewriteOptions {
  bool column_pruning = true;
  bool weaken_rownum = true;
  bool distinct_elimination = true;
  bool step_merging = true;
  // Fact-driven rewrites (key / cardinality / error-capability analyses).
  bool distinct_by_keys = true;
  bool empty_short_circuit = true;
  bool rownum_by_keys = true;
  // Order-dependency + semantic-type driven % elimination.
  bool rownum_by_od = true;
  // Value-join recognition: comparisons evaluated over loop-lifted
  // product spaces are re-rooted as joins on the compared item columns,
  // keeping iteration/order scaffolding out of the join predicates.
  bool join_recognition = true;
  // Allow non-equality comparisons to become ThetaJoin operators; when
  // off, only hash-joinable equality predicates are recognized.
  bool theta_join = true;
  // Rewrite certification (opt/certify.h). kOff emits bare trade
  // records; kCheck validates every certificate and records the outcome;
  // kStrict rejects any rewrite whose certificate fails its obligation
  // and keeps the old sub-plan.
  CertifySettings certify;
};

// Every rewrite instance the pass performed is logged as a certificate —
// the family, before/after roots, the cited facts, a column witness map,
// and (unless certification is off) the checker's verdict. The legacy %-
// elimination trade log is the order_trade subset of these entries.
using RewriteTrade = RewriteCertificate;

// One rewrite pass over the sub-DAG rooted at `root`; returns the new
// root and sets *changed if the plan shrank or any operator changed.
// When `trades` is non-null, every rewrite instance the pass performed
// is appended with the reason it is sound (its certificate).
OpId RewriteOnce(Dag* dag, OpId root, const RewriteOptions& options,
                 bool* changed, std::vector<RewriteTrade>* trades = nullptr);

}  // namespace exrquy

#endif  // EXRQUY_OPT_REWRITES_H_
