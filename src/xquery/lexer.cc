#include "xquery/lexer.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace exrquy {

namespace {

// Appends `cp` UTF-8 encoded; false for values outside Unicode or in the
// surrogate gap.
bool AppendUtf8(long cp, std::string* out) {
  if (cp <= 0 || cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) {
    return false;
  }
  if (cp < 0x80) {
    *out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    *out += static_cast<char>(0xC0 | (cp >> 6));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    *out += static_cast<char>(0xE0 | (cp >> 12));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    *out += static_cast<char>(0xF0 | (cp >> 18));
    *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  }
  return true;
}

}  // namespace

bool IsNcNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsNcNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.';
}

std::string DecodeEntities(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size();) {
    if (raw[i] != '&') {
      out += raw[i++];
      continue;
    }
    size_t semi = raw.find(';', i);
    if (semi == std::string_view::npos) {
      out += raw[i++];
      continue;
    }
    std::string_view ent = raw.substr(i + 1, semi - i - 1);
    if (ent == "lt") {
      out += '<';
    } else if (ent == "gt") {
      out += '>';
    } else if (ent == "amp") {
      out += '&';
    } else if (ent == "quot") {
      out += '"';
    } else if (ent == "apos") {
      out += '\'';
    } else if (!ent.empty() && ent[0] == '#') {
      long code;
      if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
        code = std::strtol(std::string(ent.substr(2)).c_str(), nullptr, 16);
      } else {
        code = std::strtol(std::string(ent.substr(1)).c_str(), nullptr, 10);
      }
      if (!AppendUtf8(code, &out)) out += '?';
    } else {
      out += '&';
      out += ent;
      out += ';';
    }
    i = semi + 1;
  }
  return out;
}

Lexer::Lexer(std::string_view text) : text_(text) {}

Status Lexer::Error(std::string message) const {
  message += " (offset ";
  message += std::to_string(pos_);
  message += ")";
  return InvalidArgument(std::move(message));
}

Status Lexer::Advance() {
  // Skip whitespace and (possibly nested) comments.
  for (;;) {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ + 1 < text_.size() && text_[pos_] == '(' &&
        text_[pos_ + 1] == ':') {
      size_t depth = 1;
      pos_ += 2;
      while (pos_ + 1 < text_.size() && depth > 0) {
        if (text_[pos_] == '(' && text_[pos_ + 1] == ':') {
          ++depth;
          pos_ += 2;
        } else if (text_[pos_] == ':' && text_[pos_ + 1] == ')') {
          --depth;
          pos_ += 2;
        } else {
          ++pos_;
        }
      }
      if (depth > 0) return Error("unterminated comment");
      continue;
    }
    break;
  }

  cur_ = Token();
  cur_.offset = pos_;
  if (pos_ >= text_.size()) {
    cur_.kind = TokKind::kEof;
    return Status::Ok();
  }

  char c = text_[pos_];
  auto two = [&](char second) {
    return pos_ + 1 < text_.size() && text_[pos_ + 1] == second;
  };
  auto emit = [&](TokKind kind, size_t len) {
    cur_.kind = kind;
    cur_.text = std::string(text_.substr(pos_, len));
    pos_ += len;
    return Status::Ok();
  };

  // Names / QNames.
  if (IsNcNameStart(c)) {
    size_t start = pos_;
    while (pos_ < text_.size() && IsNcNameChar(text_[pos_])) ++pos_;
    // Optional single-colon prefix continuation (but not '::').
    if (pos_ + 1 < text_.size() && text_[pos_] == ':' &&
        text_[pos_ + 1] != ':' && IsNcNameStart(text_[pos_ + 1])) {
      ++pos_;
      while (pos_ < text_.size() && IsNcNameChar(text_[pos_])) ++pos_;
    }
    cur_.kind = TokKind::kName;
    cur_.text = std::string(text_.substr(start, pos_ - start));
    return Status::Ok();
  }

  // Variables.
  if (c == '$') {
    ++pos_;
    if (pos_ >= text_.size() || !IsNcNameStart(text_[pos_])) {
      return Error("expected variable name after '$'");
    }
    size_t start = pos_;
    while (pos_ < text_.size() && IsNcNameChar(text_[pos_])) ++pos_;
    cur_.kind = TokKind::kVar;
    cur_.text = std::string(text_.substr(start, pos_ - start));
    return Status::Ok();
  }

  // Numbers.
  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && pos_ + 1 < text_.size() &&
       std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
    size_t start = pos_;
    bool is_double = false;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.' &&
        !(pos_ + 1 < text_.size() && text_[pos_ + 1] == '.')) {
      is_double = true;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    if (is_double) {
      cur_.kind = TokKind::kDouble;
      errno = 0;
      cur_.double_value = std::strtod(num.c_str(), &end);
      // ERANGE covers both directions; only overflow (±HUGE_VAL) is an
      // error — gradual underflow to 0 is fine for xs:double.
      if (errno == ERANGE && std::fabs(cur_.double_value) == HUGE_VAL) {
        return Error("numeric literal out of xs:double range: " + num);
      }
      if (end != num.c_str() + num.size()) {
        return Error("malformed numeric literal: " + num);
      }
    } else {
      cur_.kind = TokKind::kInt;
      errno = 0;
      cur_.int_value = std::strtoll(num.c_str(), &end, 10);
      if (errno == ERANGE) {
        return Error("integer literal out of xs:integer range: " + num);
      }
      if (end != num.c_str() + num.size()) {
        return Error("malformed numeric literal: " + num);
      }
    }
    cur_.text = std::move(num);
    return Status::Ok();
  }

  // String literals.
  if (c == '"' || c == '\'') {
    char quote = c;
    ++pos_;
    std::string raw;
    for (;;) {
      if (pos_ >= text_.size()) return Error("unterminated string literal");
      if (text_[pos_] == quote) {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == quote) {
          raw += quote;  // doubled quote escape
          pos_ += 2;
          continue;
        }
        ++pos_;
        break;
      }
      raw += text_[pos_++];
    }
    cur_.kind = TokKind::kString;
    cur_.text = DecodeEntities(raw);
    return Status::Ok();
  }

  switch (c) {
    case '(':
      return emit(TokKind::kLParen, 1);
    case ')':
      return emit(TokKind::kRParen, 1);
    case '[':
      return emit(TokKind::kLBracket, 1);
    case ']':
      return emit(TokKind::kRBracket, 1);
    case '{':
      return emit(TokKind::kLBrace, 1);
    case '}':
      return emit(TokKind::kRBrace, 1);
    case ',':
      return emit(TokKind::kComma, 1);
    case ';':
      return emit(TokKind::kSemicolon, 1);
    case '.':
      return two('.') ? emit(TokKind::kDotDot, 2) : emit(TokKind::kDot, 1);
    case '/':
      return two('/') ? emit(TokKind::kSlashSlash, 2)
                      : emit(TokKind::kSlash, 1);
    case '|':
      return emit(TokKind::kPipe, 1);
    case '+':
      return emit(TokKind::kPlus, 1);
    case '-':
      return emit(TokKind::kMinus, 1);
    case '*':
      return emit(TokKind::kStar, 1);
    case '=':
      return emit(TokKind::kEq, 1);
    case '!':
      if (two('=')) return emit(TokKind::kNe, 2);
      return Error("unexpected '!'");
    case '<':
      if (two('<')) return emit(TokKind::kLtLt, 2);
      if (two('=')) return emit(TokKind::kLe, 2);
      return emit(TokKind::kLt, 1);
    case '>':
      if (two('>')) return emit(TokKind::kGtGt, 2);
      if (two('=')) return emit(TokKind::kGe, 2);
      return emit(TokKind::kGt, 1);
    case ':':
      if (two('=')) return emit(TokKind::kAssign, 2);
      if (two(':')) return emit(TokKind::kColonColon, 2);
      return Error("unexpected ':'");
    case '@':
      return emit(TokKind::kAt, 1);
    case '?':
      return emit(TokKind::kQuestion, 1);
    default:
      return Error(std::string("unexpected character '") + c + "'");
  }
}

}  // namespace exrquy
