// The compilation scheme ·⇒· (Sections 3 and 4 of the paper): XQuery Core
// expressions compile to relational algebra plans over iter|pos|item
// tables via loop lifting.
//
// The ordered rules LOC and BIND implement the order interactions
// doc -> seq and seq -> iter with the row-numbering primitive %; their
// unordered twins LOC# and BIND# (Figure 7) trade % for the free
// arbitrary-numbering primitive #, and Rule FN:UNORDERED implements
// fn:unordered() as  #pos(π_iter,item(q)).
//
// `exploit_unordered` selects between the paper's baseline configuration
// (ordered rules everywhere; fn:unordered() compiled as the identity,
// which is what most processors do per Section 6) and the
// order-indifference configuration.
#ifndef EXRQUY_COMPILER_COMPILE_H_
#define EXRQUY_COMPILER_COMPILE_H_

#include <memory>

#include "algebra/algebra.h"
#include "common/status.h"
#include "xquery/ast.h"

namespace exrquy {

struct CompileOptions {
  // Effective default ordering mode (the query prolog's declare ordering
  // overrides this).
  OrderingMode default_mode = OrderingMode::kOrdered;
  // Apply rules LOC#/BIND#/FN:UNORDERED (and free the for-bindings of
  // FLWOR blocks that carry an order by clause). When false, ordered
  // rules are used throughout and fn:unordered() is the identity.
  bool exploit_unordered = true;
};

struct CompiledQuery {
  std::unique_ptr<Dag> dag;
  // Root plan with schema (iter, pos, item); evaluated under the single-
  // iteration top-level loop, so iter = 1 throughout.
  OpId root = kNoOp;
};

// Compiles a normalized query. `strings` interns document/element names
// and string literals and must outlive the compiled plan.
Result<CompiledQuery> CompileQuery(const Query& query, StrPool* strings,
                                   const CompileOptions& options);

}  // namespace exrquy

#endif  // EXRQUY_COMPILER_COMPILE_H_
