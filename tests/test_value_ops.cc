// Unit tests for XQuery value semantics: atomization, casts, arithmetic
// promotion, general-comparison casting rules, effective boolean values,
// the total sort order behind %, and double formatting.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <tuple>

#include "engine/value.h"
#include "xml/xml_parser.h"

namespace exrquy {
namespace {

class ValueOpsTest : public ::testing::Test {
 protected:
  ValueOpsTest() : store_(&strings_), ops_(&strings_, &store_) {}

  Value U(const char* s) { return Value::Untyped(strings_.Intern(s)); }
  Value S(const char* s) { return Value::Str(strings_.Intern(s)); }

  bool CompareBool(FunKind op, Value a, Value b) {
    Result<Value> r = ops_.Compare(op, a, b);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() && r->b;
  }

  StrPool strings_;
  NodeStore store_;
  ValueOps ops_;
};

TEST_F(ValueOpsTest, AtomizeAtomicsUnchanged) {
  EXPECT_TRUE(ops_.Atomize(Value::Int(5)) == Value::Int(5));
  EXPECT_TRUE(ops_.Atomize(Value::Bool(true)) == Value::Bool(true));
}

TEST_F(ValueOpsTest, AtomizeElementYieldsUntypedStringValue) {
  Result<NodeIdx> doc = ParseXml(&store_, "<a>12<b>3</b></a>");
  ASSERT_TRUE(doc.ok());
  Value v = ops_.Atomize(Value::Node(*doc + 1));
  EXPECT_EQ(v.kind, ValueKind::kUntyped);
  EXPECT_EQ(strings_.Get(v.str), "123");
}

TEST_F(ValueOpsTest, AtomizeAttribute) {
  Result<NodeIdx> doc = ParseXml(&store_, "<a k=\"42\"/>");
  ASSERT_TRUE(doc.ok());
  Value v = ops_.Atomize(Value::Node(*doc + 2));
  EXPECT_EQ(v.kind, ValueKind::kUntyped);
  EXPECT_EQ(strings_.Get(v.str), "42");
}

TEST_F(ValueOpsTest, ToDoubleParsing) {
  EXPECT_DOUBLE_EQ(ops_.ToDouble(U("3.5"))->d, 3.5);
  EXPECT_DOUBLE_EQ(ops_.ToDouble(U("  42 "))->d, 42.0);
  EXPECT_DOUBLE_EQ(ops_.ToDouble(Value::Int(7))->d, 7.0);
  EXPECT_FALSE(ops_.ToDouble(U("abc")).ok());
  EXPECT_FALSE(ops_.ToDouble(U("12x")).ok());
  EXPECT_FALSE(ops_.ToDouble(Value::Node(0)).ok());
}

TEST_F(ValueOpsTest, ToStringRendering) {
  EXPECT_EQ(strings_.Get(ops_.ToString(Value::Int(12))->str), "12");
  EXPECT_EQ(strings_.Get(ops_.ToString(Value::Bool(false))->str), "false");
  EXPECT_EQ(strings_.Get(ops_.ToString(U("raw"))->str), "raw");
  EXPECT_FALSE(ops_.ToString(Value::Node(0)).ok());
}

TEST_F(ValueOpsTest, ArithmeticPromotion) {
  Result<Value> ii = ops_.Arith(FunKind::kAdd, Value::Int(2), Value::Int(3));
  EXPECT_EQ(ii->kind, ValueKind::kInt);
  EXPECT_EQ(ii->i, 5);
  Result<Value> id =
      ops_.Arith(FunKind::kMul, Value::Int(2), Value::Double(1.5));
  EXPECT_EQ(id->kind, ValueKind::kDouble);
  EXPECT_DOUBLE_EQ(id->d, 3.0);
  // Untyped casts to double (the 5000 * $i case of Q11).
  Result<Value> ud = ops_.Arith(FunKind::kMul, Value::Int(5000), U("2.5"));
  EXPECT_DOUBLE_EQ(ud->d, 12500.0);
}

TEST_F(ValueOpsTest, DivisionSemantics) {
  // div on integers yields a double (xs:decimal stand-in)...
  Result<Value> d = ops_.Arith(FunKind::kDiv, Value::Int(7), Value::Int(2));
  EXPECT_DOUBLE_EQ(d->d, 3.5);
  // ... idiv truncates, mod keeps sign of the dividend.
  EXPECT_EQ(ops_.Arith(FunKind::kIDiv, Value::Int(7), Value::Int(2))->i, 3);
  EXPECT_EQ(ops_.Arith(FunKind::kMod, Value::Int(7), Value::Int(2))->i, 1);
  EXPECT_FALSE(ops_.Arith(FunKind::kDiv, Value::Int(1), Value::Int(0)).ok());
  EXPECT_FALSE(
      ops_.Arith(FunKind::kAdd, S("nope"), Value::Int(1)).ok());
}

// F&O sign rules: idiv truncates toward zero, mod keeps the dividend's
// sign, for every sign combination.
TEST_F(ValueOpsTest, IDivAndModSigns) {
  auto idiv = [&](int64_t a, int64_t b) {
    return ops_.Arith(FunKind::kIDiv, Value::Int(a), Value::Int(b))->i;
  };
  auto mod = [&](int64_t a, int64_t b) {
    return ops_.Arith(FunKind::kMod, Value::Int(a), Value::Int(b))->i;
  };
  EXPECT_EQ(idiv(7, -2), -3);
  EXPECT_EQ(idiv(-7, 2), -3);
  EXPECT_EQ(idiv(-7, -2), 3);
  EXPECT_EQ(mod(7, -2), 1);
  EXPECT_EQ(mod(-7, 2), -1);
  EXPECT_EQ(mod(-7, -2), -1);
}

// Pre-fix, integer idiv went through double division and silently lost
// precision past 2^53.
TEST_F(ValueOpsTest, IntegerIDivIsExact) {
  const int64_t big = 9007199254740993;  // 2^53 + 1
  Result<Value> r = ops_.Arith(FunKind::kIDiv, Value::Int(big), Value::Int(1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kind, ValueKind::kInt);
  EXPECT_EQ(r->i, big);
}

TEST_F(ValueOpsTest, DivideByZeroIsFoar0001) {
  for (FunKind op : {FunKind::kDiv, FunKind::kIDiv, FunKind::kMod}) {
    Result<Value> r = ops_.Arith(op, Value::Int(1), Value::Int(0));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
    EXPECT_NE(r.status().message().find("FOAR0001"), std::string::npos)
        << r.status().ToString();
  }
}

// INT64_MIN edge cases: idiv -1 overflows (FOAR0002); mod -1 is exactly
// 0 — pre-fix both were undefined behavior (hardware trap under UBSan).
TEST_F(ValueOpsTest, Int64MinEdgeCases) {
  const int64_t min = std::numeric_limits<int64_t>::min();
  Result<Value> overflow =
      ops_.Arith(FunKind::kIDiv, Value::Int(min), Value::Int(-1));
  ASSERT_FALSE(overflow.ok());
  EXPECT_NE(overflow.status().message().find("FOAR0002"), std::string::npos);
  Result<Value> zero =
      ops_.Arith(FunKind::kMod, Value::Int(min), Value::Int(-1));
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->i, 0);
}

// Integer +, -, * detect overflow instead of wrapping (pre-fix: UB).
TEST_F(ValueOpsTest, AddSubMulOverflowIsFoar0002) {
  const int64_t max = std::numeric_limits<int64_t>::max();
  const int64_t min = std::numeric_limits<int64_t>::min();
  for (auto [op, a, b] :
       {std::tuple{FunKind::kAdd, max, int64_t{1}},
        std::tuple{FunKind::kSub, min, int64_t{1}},
        std::tuple{FunKind::kMul, max, int64_t{2}}}) {
    Result<Value> r = ops_.Arith(op, Value::Int(a), Value::Int(b));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
    EXPECT_NE(r.status().message().find("FOAR0002"), std::string::npos)
        << r.status().ToString();
  }
  // In-range results stay exact.
  EXPECT_EQ(ops_.Arith(FunKind::kAdd, Value::Int(max - 1), Value::Int(1))->i,
            max);
}

// Double-path idiv: NaN / infinite dividends and zero divisors error;
// finite quotients truncate toward zero.
TEST_F(ValueOpsTest, DoubleIDivEdgeCases) {
  EXPECT_EQ(
      ops_.Arith(FunKind::kIDiv, Value::Double(7.5), Value::Int(2))->i, 3);
  EXPECT_EQ(
      ops_.Arith(FunKind::kIDiv, Value::Int(-7), Value::Double(2.0))->i, -3);
  EXPECT_FALSE(
      ops_.Arith(FunKind::kIDiv, Value::Double(1.0), Value::Double(0.0)).ok());
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(
      ops_.Arith(FunKind::kIDiv, Value::Double(inf), Value::Int(2)).ok());
  EXPECT_FALSE(
      ops_.Arith(FunKind::kIDiv, Value::Double(nan), Value::Int(2)).ok());
  // Quotients beyond int64 range overflow cleanly.
  EXPECT_FALSE(
      ops_.Arith(FunKind::kIDiv, Value::Double(1e300), Value::Double(1.0))
          .ok());
}

TEST_F(ValueOpsTest, GeneralComparisonCasting) {
  // untyped vs number: numeric comparison.
  EXPECT_TRUE(CompareBool(FunKind::kGt, U("40"), Value::Int(5)));
  EXPECT_TRUE(CompareBool(FunKind::kLt, Value::Int(5), U("40")));
  // untyped vs untyped: string comparison ("40" < "5").
  EXPECT_TRUE(CompareBool(FunKind::kLt, U("40"), U("5")));
  // untyped vs string: string comparison.
  EXPECT_TRUE(CompareBool(FunKind::kEq, U("abc"), S("abc")));
  // int vs double.
  EXPECT_TRUE(CompareBool(FunKind::kEq, Value::Int(2), Value::Double(2.0)));
  // booleans.
  EXPECT_TRUE(
      CompareBool(FunKind::kNe, Value::Bool(true), Value::Bool(false)));
}

TEST_F(ValueOpsTest, ComparisonErrors) {
  EXPECT_FALSE(ops_.Compare(FunKind::kEq, S("a"), Value::Int(1)).ok());
  EXPECT_FALSE(
      ops_.Compare(FunKind::kEq, Value::Node(0), Value::Int(1)).ok());
  EXPECT_FALSE(ops_.Compare(FunKind::kGt, U("xyz"), Value::Int(1)).ok());
}

TEST_F(ValueOpsTest, EffectiveBooleanValues) {
  EXPECT_FALSE(ops_.EbvSingle(Value::Int(0)));
  EXPECT_TRUE(ops_.EbvSingle(Value::Int(-3)));
  EXPECT_FALSE(ops_.EbvSingle(Value::Double(0.0)));
  EXPECT_FALSE(ops_.EbvSingle(U("")));
  EXPECT_TRUE(ops_.EbvSingle(U("x")));
  EXPECT_TRUE(ops_.EbvSingle(Value::Bool(true)));
  EXPECT_TRUE(ops_.EbvSingle(Value::Node(0)));
}

TEST_F(ValueOpsTest, OrderCompareTotalOrder) {
  // Class order: numerics < strings < bools < nodes.
  EXPECT_LT(ops_.OrderCompare(Value::Int(999), S("a")), 0);
  EXPECT_LT(ops_.OrderCompare(S("zzz"), Value::Bool(false)), 0);
  EXPECT_LT(ops_.OrderCompare(Value::Bool(true), Value::Node(0)), 0);
  // Within classes.
  EXPECT_LT(ops_.OrderCompare(Value::Int(1), Value::Double(1.5)), 0);
  EXPECT_EQ(ops_.OrderCompare(Value::Int(2), Value::Double(2.0)), 0);
  EXPECT_LT(ops_.OrderCompare(S("abc"), S("abd")), 0);
  EXPECT_LT(ops_.OrderCompare(Value::Node(3), Value::Node(9)), 0);
  EXPECT_GT(ops_.OrderCompare(Value::Node(9), Value::Node(3)), 0);
}

TEST_F(ValueOpsTest, FormatDoubleIntegralAndSpecial) {
  EXPECT_EQ(FormatDouble(5500.0), "5500");
  EXPECT_EQ(FormatDouble(-3.0), "-3");
  EXPECT_EQ(FormatDouble(2.5), "2.5");
  EXPECT_EQ(FormatDouble(1.0 / 0.0), "INF");
  EXPECT_EQ(FormatDouble(-1.0 / 0.0), "-INF");
  EXPECT_EQ(FormatDouble(0.0 / 0.0), "NaN");
}

TEST_F(ValueOpsTest, RenderPerKind) {
  EXPECT_EQ(ops_.Render(Value::Int(7)), "7");
  EXPECT_EQ(ops_.Render(Value::Double(2.25)), "2.25");
  EXPECT_EQ(ops_.Render(Value::Bool(true)), "true");
  EXPECT_EQ(ops_.Render(S("s")), "s");
}

}  // namespace
}  // namespace exrquy
