file(REMOVE_RECURSE
  "libexrquy_engine.a"
)
