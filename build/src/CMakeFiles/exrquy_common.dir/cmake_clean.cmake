file(REMOVE_RECURSE
  "CMakeFiles/exrquy_common.dir/common/status.cc.o"
  "CMakeFiles/exrquy_common.dir/common/status.cc.o.d"
  "CMakeFiles/exrquy_common.dir/common/str_pool.cc.o"
  "CMakeFiles/exrquy_common.dir/common/str_pool.cc.o.d"
  "CMakeFiles/exrquy_common.dir/common/symbols.cc.o"
  "CMakeFiles/exrquy_common.dir/common/symbols.cc.o.d"
  "libexrquy_common.a"
  "libexrquy_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exrquy_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
