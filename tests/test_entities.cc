// Entity / character-reference corpus suite: every document under
// corpus/entities/good/ must reach a serialization fixpoint
// (parse -> serialize -> parse -> serialize is stable), and every
// document under corpus/entities/bad/ must be rejected with a clean
// kInvalidArgument — malformed references never silently pass through.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/str_pool.h"
#include "xml/node_store.h"
#include "xml/serializer.h"
#include "xml/xml_parser.h"

namespace exrquy {
namespace {

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::filesystem::path> CorpusFiles(const char* subdir) {
  std::filesystem::path dir(EXRQUY_TEST_CORPUS_DIR);
  dir /= "entities";
  dir /= subdir;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".xml") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

Result<std::string> ParseAndSerialize(std::string_view xml) {
  StrPool strings;
  NodeStore store(&strings);
  XmlParseOptions opts;
  opts.strip_whitespace = false;  // round-trip every byte of text
  EXRQUY_ASSIGN_OR_RETURN(NodeIdx root, ParseXml(&store, xml, opts));
  return SerializeNode(store, root);
}

TEST(EntityCorpusTest, GoodFilesReachSerializationFixpoint) {
  std::vector<std::filesystem::path> files = CorpusFiles("good");
  ASSERT_FALSE(files.empty());
  for (const auto& path : files) {
    std::string raw = ReadFile(path);
    Result<std::string> once = ParseAndSerialize(raw);
    ASSERT_TRUE(once.ok()) << path << ": " << once.status().ToString();
    Result<std::string> twice = ParseAndSerialize(*once);
    ASSERT_TRUE(twice.ok()) << path << ": reserialized form "
                            << "no longer parses: "
                            << twice.status().ToString() << "\n"
                            << *once;
    EXPECT_EQ(*once, *twice) << path << ": serialization is not a fixpoint";
  }
}

TEST(EntityCorpusTest, BadFilesAreRejected) {
  std::vector<std::filesystem::path> files = CorpusFiles("bad");
  ASSERT_FALSE(files.empty());
  for (const auto& path : files) {
    std::string raw = ReadFile(path);
    StrPool strings;
    NodeStore store(&strings);
    Result<NodeIdx> parsed = ParseXml(&store, raw);
    EXPECT_FALSE(parsed.ok()) << path << " parsed but must be rejected";
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << path;
    }
    // Rejection rolls the store back completely.
    EXPECT_EQ(store.node_count(), 0u) << path;
    EXPECT_EQ(store.fragment_count(), 0u) << path;
  }
}

// Decoded references serialize back as their canonical escaped form —
// the literal characters never leak unescaped into the output.
TEST(EntityCorpusTest, ControlCharactersSerializeAsCharRefs) {
  StrPool strings;
  NodeStore store(&strings);
  XmlParseOptions opts;
  opts.strip_whitespace = false;
  Result<NodeIdx> root =
      ParseXml(&store, "<a t=\"x&#x9;y&#xA;z&#xD;w\">p&#xD;q</a>", opts);
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  std::string out = SerializeNode(store, *root);
  EXPECT_EQ(out, "<a t=\"x&#x9;y&#xA;z&#xD;w\">p&#xD;q</a>");
}

TEST(EntityCorpusTest, MultiByteCharRefsDecodeToUtf8) {
  StrPool strings;
  NodeStore store(&strings);
  Result<NodeIdx> root = ParseXml(&store, "<a>&#xE9;&#x263A;&#x10348;</a>");
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  // U+00E9 / U+263A / U+10348 as 2-, 3-, and 4-byte UTF-8.
  EXPECT_EQ(store.StringValue(*root),
            "\xC3\xA9"
            "\xE2\x98\xBA"
            "\xF0\x90\x8D\x88");
}

TEST(EntityCorpusTest, ErrorsNameTheOffendingReference) {
  StrPool strings;
  NodeStore store(&strings);
  Result<NodeIdx> r = ParseXml(&store, "<a>&bogus;</a>");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("bogus"), std::string::npos)
      << r.status().ToString();
}

}  // namespace
}  // namespace exrquy
