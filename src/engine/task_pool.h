// A fixed-size worker pool used by the parallel evaluator: operator
// tasks from the DAG scheduler and chunk tasks from the intra-operator
// kernels share one queue. ParallelFor lets the submitting thread
// participate in draining its own chunks, so a pool saturated with
// operator tasks can never deadlock a chunked kernel.
#ifndef EXRQUY_ENGINE_TASK_POOL_H_
#define EXRQUY_ENGINE_TASK_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace exrquy {

class TaskPool {
 public:
  // A pool of `threads` workers (0 behaves like 1: no workers,
  // everything runs inline on the calling thread). Workers spawn lazily
  // on the first Submit/ParallelFor that needs them — a query whose
  // every unit runs inline (tiny inputs under the evaluator's
  // serial-execution threshold) never pays thread creation at all.
  explicit TaskPool(size_t threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  // The pool's worker capacity (0 = inline pool), independent of whether
  // the workers have spawned yet.
  size_t threads() const { return target_; }

  // Enqueues a task. Tasks must not block on other queued tasks (operator
  // tasks only block on the store lock, whose holder always completes).
  void Submit(std::function<void()> fn);

  // Invokes fn(i) for every i in [0, n), distributing indices over the
  // workers while the calling thread drains indices itself; returns when
  // every index has finished. Index-to-thread assignment is arbitrary —
  // callers must make fn's effects independent of it (disjoint output
  // slots indexed by i).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();
  void EnsureWorkersLocked();  // requires mu_ held

  size_t target_ = 0;    // worker capacity; 0 = run everything inline
  bool spawned_ = false;  // guarded by mu_
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace exrquy

#endif  // EXRQUY_ENGINE_TASK_POOL_H_
