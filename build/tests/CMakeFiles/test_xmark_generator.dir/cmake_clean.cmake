file(REMOVE_RECURSE
  "CMakeFiles/test_xmark_generator.dir/test_xmark_generator.cc.o"
  "CMakeFiles/test_xmark_generator.dir/test_xmark_generator.cc.o.d"
  "test_xmark_generator"
  "test_xmark_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xmark_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
