#include "engine/value.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace exrquy {

namespace {

bool IsNumeric(const Value& v) {
  return v.kind == ValueKind::kInt || v.kind == ValueKind::kDouble;
}

double AsDouble(const Value& v) {
  return v.kind == ValueKind::kInt ? static_cast<double>(v.i) : v.d;
}

Result<double> ParseDouble(const std::string& s) {
  const char* begin = s.c_str();
  // Trim whitespace.
  while (*begin == ' ' || *begin == '\t' || *begin == '\n' || *begin == '\r') {
    ++begin;
  }
  char* end = nullptr;
  double d = std::strtod(begin, &end);
  if (end == begin) {
    return TypeError("cannot cast \"" + s + "\" to xs:double");
  }
  while (*end == ' ' || *end == '\t' || *end == '\n' || *end == '\r') ++end;
  if (*end != '\0') {
    return TypeError("cannot cast \"" + s + "\" to xs:double");
  }
  return d;
}

int Sign(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }

Result<Value> ApplyRelation(FunKind op, int cmp) {
  switch (op) {
    case FunKind::kEq:
      return Value::Bool(cmp == 0);
    case FunKind::kNe:
      return Value::Bool(cmp != 0);
    case FunKind::kLt:
      return Value::Bool(cmp < 0);
    case FunKind::kLe:
      return Value::Bool(cmp <= 0);
    case FunKind::kGt:
      return Value::Bool(cmp > 0);
    case FunKind::kGe:
      return Value::Bool(cmp >= 0);
    default:
      return Internal("bad relation");
  }
}

}  // namespace

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "INF" : "-INF";
  if (v == static_cast<int64_t>(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

Value ValueOps::Atomize(Value v) const {
  if (v.kind != ValueKind::kNode) return v;
  if (store_->kind(v.node) == NodeKind::kAttribute) {
    return Value::Untyped(store_->value(v.node));
  }
  return Value::Untyped(strings_->Intern(store_->StringValue(v.node)));
}

Result<Value> ValueOps::ToDouble(Value v) const {
  switch (v.kind) {
    case ValueKind::kInt:
      return Value::Double(static_cast<double>(v.i));
    case ValueKind::kDouble:
      return v;
    case ValueKind::kString:
    case ValueKind::kUntyped: {
      EXRQUY_ASSIGN_OR_RETURN(double d, ParseDouble(strings_->Get(v.str)));
      return Value::Double(d);
    }
    case ValueKind::kBool:
      return Value::Double(v.b ? 1.0 : 0.0);
    case ValueKind::kNode:
      return TypeError("cannot cast a node to xs:double (atomize first)");
  }
  return Internal("bad value kind");
}

Result<Value> ValueOps::ToString(Value v) const {
  if (v.kind == ValueKind::kNode) {
    return TypeError("cannot cast a node to xs:string (atomize first)");
  }
  if (v.kind == ValueKind::kString) return v;
  return Value::Str(strings_->Intern(Render(v)));
}

Result<Value> ValueOps::Arith(FunKind op, Value a, Value b) const {
  // Untyped operands cast to xs:double for arithmetic.
  if (a.kind == ValueKind::kUntyped || a.kind == ValueKind::kString) {
    EXRQUY_ASSIGN_OR_RETURN(a, ToDouble(a));
  }
  if (b.kind == ValueKind::kUntyped || b.kind == ValueKind::kString) {
    EXRQUY_ASSIGN_OR_RETURN(b, ToDouble(b));
  }
  if (!IsNumeric(a) || !IsNumeric(b)) {
    return TypeError("arithmetic on non-numeric operands");
  }
  bool both_int = a.kind == ValueKind::kInt && b.kind == ValueKind::kInt;
  switch (op) {
    case FunKind::kAdd:
      if (both_int) {
        int64_t r;
        if (__builtin_add_overflow(a.i, b.i, &r)) {
          return TypeError("err:FOAR0002: integer overflow in addition");
        }
        return Value::Int(r);
      }
      return Value::Double(AsDouble(a) + AsDouble(b));
    case FunKind::kSub:
      if (both_int) {
        int64_t r;
        if (__builtin_sub_overflow(a.i, b.i, &r)) {
          return TypeError("err:FOAR0002: integer overflow in subtraction");
        }
        return Value::Int(r);
      }
      return Value::Double(AsDouble(a) - AsDouble(b));
    case FunKind::kMul:
      if (both_int) {
        int64_t r;
        if (__builtin_mul_overflow(a.i, b.i, &r)) {
          return TypeError("err:FOAR0002: integer overflow in multiplication");
        }
        return Value::Int(r);
      }
      return Value::Double(AsDouble(a) * AsDouble(b));
    case FunKind::kDiv: {
      // div on two integers is xs:decimal division (double stands in);
      // a zero divisor is an error there, while double division by zero
      // yields ±INF/NaN per IEEE — exactly the F&O split.
      if (both_int && b.i == 0) {
        return TypeError("err:FOAR0001: integer division by zero");
      }
      return Value::Double(AsDouble(a) / AsDouble(b));
    }
    case FunKind::kIDiv: {
      if (both_int) {
        // Exact 64-bit path: C++ integer division truncates toward zero,
        // which is precisely op:numeric-integer-divide. Routing through
        // doubles here would lose precision above 2^53.
        if (b.i == 0) {
          return TypeError("err:FOAR0001: integer division by zero");
        }
        if (a.i == INT64_MIN && b.i == -1) {
          return TypeError("err:FOAR0002: integer overflow in idiv");
        }
        return Value::Int(a.i / b.i);
      }
      double da = AsDouble(a);
      double db = AsDouble(b);
      if (db == 0) return TypeError("err:FOAR0001: integer division by zero");
      if (std::isnan(da) || std::isnan(db) || std::isinf(da)) {
        return TypeError("err:FOAR0002: idiv of NaN or infinite dividend");
      }
      double q = std::trunc(da / db);
      // 2^63 is exactly representable; anything in [-2^63, 2^63) fits.
      if (!(q >= -9223372036854775808.0 && q < 9223372036854775808.0)) {
        return TypeError("err:FOAR0002: integer overflow in idiv");
      }
      return Value::Int(static_cast<int64_t>(q));
    }
    case FunKind::kMod: {
      if (both_int) {
        if (b.i == 0) return TypeError("err:FOAR0001: integer modulo by zero");
        // INT64_MIN % -1 is UB in C++ even though the result is 0.
        if (b.i == -1) return Value::Int(0);
        return Value::Int(a.i % b.i);
      }
      // Double mod follows fmod: a zero divisor yields NaN, not an error
      // (op:numeric-mod on xs:double).
      return Value::Double(std::fmod(AsDouble(a), AsDouble(b)));
    }
    default:
      return Internal("bad arithmetic op");
  }
}

Result<Value> ValueOps::Compare(FunKind op, Value a, Value b) const {
  if (a.kind == ValueKind::kNode || b.kind == ValueKind::kNode) {
    return TypeError("comparison on unatomized nodes");
  }
  // General-comparison casting for untyped operands.
  if (a.kind == ValueKind::kUntyped && IsNumeric(b)) {
    EXRQUY_ASSIGN_OR_RETURN(a, ToDouble(a));
  } else if (b.kind == ValueKind::kUntyped && IsNumeric(a)) {
    EXRQUY_ASSIGN_OR_RETURN(b, ToDouble(b));
  }
  if (IsNumeric(a) && IsNumeric(b)) {
    if (a.kind == ValueKind::kInt && b.kind == ValueKind::kInt) {
      return ApplyRelation(op, a.i < b.i ? -1 : (a.i > b.i ? 1 : 0));
    }
    return ApplyRelation(op, Sign(AsDouble(a) - AsDouble(b)));
  }
  bool a_str = a.kind == ValueKind::kString || a.kind == ValueKind::kUntyped;
  bool b_str = b.kind == ValueKind::kString || b.kind == ValueKind::kUntyped;
  if (a_str && b_str) {
    return ApplyRelation(op, strings_->Get(a.str).compare(strings_->Get(b.str)));
  }
  if (a.kind == ValueKind::kBool && b.kind == ValueKind::kBool) {
    return ApplyRelation(op, static_cast<int>(a.b) - static_cast<int>(b.b));
  }
  return TypeError("incomparable operand types");
}

bool ValueOps::EbvSingle(Value v) const {
  switch (v.kind) {
    case ValueKind::kBool:
      return v.b;
    case ValueKind::kInt:
      return v.i != 0;
    case ValueKind::kDouble:
      return v.d != 0 && !std::isnan(v.d);
    case ValueKind::kString:
    case ValueKind::kUntyped:
      return !strings_->Get(v.str).empty();
    case ValueKind::kNode:
      return true;
  }
  return false;
}

int ValueOps::OrderCompare(const Value& a, const Value& b) const {
  auto cls = [](const Value& v) {
    switch (v.kind) {
      case ValueKind::kInt:
      case ValueKind::kDouble:
        return 0;
      case ValueKind::kString:
      case ValueKind::kUntyped:
        return 1;
      case ValueKind::kBool:
        return 2;
      case ValueKind::kNode:
        return 3;
    }
    return 4;
  };
  int ca = cls(a);
  int cb = cls(b);
  if (ca != cb) return ca - cb;
  switch (ca) {
    case 0: {
      if (a.kind == ValueKind::kInt && b.kind == ValueKind::kInt) {
        return a.i < b.i ? -1 : (a.i > b.i ? 1 : 0);
      }
      return Sign(AsDouble(a) - AsDouble(b));
    }
    case 1:
      return strings_->Get(a.str).compare(strings_->Get(b.str));
    case 2:
      return static_cast<int>(a.b) - static_cast<int>(b.b);
    default:
      return a.node < b.node ? -1 : (a.node > b.node ? 1 : 0);
  }
}

std::string ValueOps::Render(Value v) const {
  switch (v.kind) {
    case ValueKind::kInt:
      return std::to_string(v.i);
    case ValueKind::kDouble:
      return FormatDouble(v.d);
    case ValueKind::kString:
    case ValueKind::kUntyped:
      return strings_->Get(v.str);
    case ValueKind::kBool:
      return v.b ? "true" : "false";
    case ValueKind::kNode:
      return store_->StringValue(v.node);
  }
  return "";
}

}  // namespace exrquy
