#include "opt/join_plan.h"

#include <algorithm>
#include <optional>

#include "common/check.h"
#include "common/symbols.h"

namespace exrquy {
namespace {

// a cmp b  ==  b MirrorCmp(cmp) a.
FunKind MirrorCmp(FunKind cmp) {
  switch (cmp) {
    case FunKind::kLt:
      return FunKind::kGt;
    case FunKind::kLe:
      return FunKind::kGe;
    case FunKind::kGt:
      return FunKind::kLt;
    case FunKind::kGe:
      return FunKind::kLe;
    default:
      return cmp;  // kEq / kNe are symmetric
  }
}

bool IsCmp(FunKind f) {
  switch (f) {
    case FunKind::kEq:
    case FunKind::kNe:
    case FunKind::kLt:
    case FunKind::kLe:
    case FunKind::kGt:
    case FunKind::kGe:
      return true;
    default:
      return false;
  }
}

// The old column that Project `p` exposes as `n`, or kNoCol.
ColId ProjOld(const Op& p, ColId n) {
  for (const auto& [nn, oo] : p.proj) {
    if (nn == n) return oo;
  }
  return kNoCol;
}

// Project with exactly the given (new, old) entries, in any order.
bool ProjIs(const Op& p, std::vector<std::pair<ColId, ColId>> want) {
  if (p.kind != OpKind::kProject || p.proj.size() != want.size()) {
    return false;
  }
  for (const auto& e : p.proj) {
    auto it = std::find(want.begin(), want.end(), e);
    if (it == want.end()) return false;
    want.erase(it);
  }
  return true;
}

bool IsOneRowLit(const Op& op) {
  return op.kind == OpKind::kLit && op.lit.rows.size() == 1;
}

// One-row boolean literal [item = value] — the EBV true/false padding.
bool IsBoolLit(const Op& op, bool value) {
  return IsOneRowLit(op) && op.lit.cols.size() == 1 &&
         op.lit.cols[0] == col::item() && op.lit.rows[0][0] == Value::Bool(value);
}

bool IsNumbering(const Op& op) {
  return op.kind == OpKind::kRowNum || op.kind == OpKind::kRowId;
}

// One product-space comparison raised from the predicate EBV, before
// its sides are classified as cur/outer.
struct RawPred {
  OpId side_a;
  OpId side_b;
  ColId iter2x;  // the per-iteration join's right-side iteration column
  FunKind cmp;
  ColId a_col;
  ColId b_col;
};

class Recognizer {
 public:
  explicit Recognizer(const Dag& dag) : dag_(dag) {}

  std::map<OpId, JoinSpec> Run(OpId root) {
    std::map<OpId, JoinSpec> specs;
    for (OpId id : dag_.ReachableFrom(root)) {
      JoinSpec spec;
      if (MatchAnchor(id, &spec)) {
        specs.emplace(id, std::move(spec));
        continue;
      }
      spec = JoinSpec();
      if (MatchReturnAnchor(id, &spec)) specs.emplace(id, std::move(spec));
    }
    return specs;
  }

 private:
  const Op& op(OpId id) const { return dag_.op(id); }

  // Whether `a` or `b` is reachable from `id` (inclusive). `memo` must
  // be scoped to one (a, b) pair.
  bool Reaches(OpId id, OpId a, OpId b, std::map<OpId, int>* memo) const {
    if (id == a || id == b) return true;
    if (auto it = memo->find(id); it != memo->end()) return it->second != 0;
    bool r = false;
    for (OpId c : op(id).children) {
      if (Reaches(c, a, b, memo)) {
        r = true;
        break;
      }
    }
    (*memo)[id] = r ? 1 : 0;
    return r;
  }

  // The anchor composite re-attaching the surviving S-iterations to the
  // outer loop:
  //   π{iter:iter1X[, item]}(⋈ iter=bindX(M, map_s))
  //   M = π{iter[, item]}(⋈ iter=iterRX(items_s, π{iterRX:iter}(SEL)))
  bool MatchAnchor(OpId id, JoinSpec* s) {
    const Op& a = op(id);
    if (a.kind != OpKind::kProject) return false;
    ColId iter1x = ProjOld(a, col::iter());
    if (iter1x == kNoCol || iter1x == col::item()) return false;
    if (ProjIs(a, {{col::iter(), iter1x}})) {
      s->with_item = false;
    } else if (ProjIs(a, {{col::iter(), iter1x},
                          {col::item(), col::item()}})) {
      s->with_item = true;
    } else {
      return false;
    }

    const Op& j2 = op(a.children[0]);
    if (j2.kind != OpKind::kEquiJoin || j2.value_join) return false;
    if (j2.col != col::iter()) return false;
    OpId m_id = j2.children[0];
    OpId map_id = j2.children[1];
    ColId bindx = j2.col2;

    // map_s = π{iter1X:iter, bindX:bind}(N), N the bind numbering.
    const Op& map = op(map_id);
    if (map.kind != OpKind::kProject) return false;
    OpId n_id = map.children[0];
    const Op& n = op(n_id);
    if (!IsNumbering(n)) return false;
    if (!ProjIs(map, {{iter1x, col::iter()}, {bindx, n.col}})) return false;

    const Op& m = op(m_id);
    if (s->with_item) {
      if (!ProjIs(m, {{col::iter(), col::iter()},
                      {col::item(), col::item()}})) {
        return false;
      }
    } else if (!ProjIs(m, {{col::iter(), col::iter()}})) {
      return false;
    }
    const Op& j1 = op(m.children[0]);
    if (j1.kind != OpKind::kEquiJoin || j1.value_join) return false;
    if (j1.col != col::iter()) return false;
    OpId items_id = j1.children[0];
    const Op& items = op(items_id);
    if (items.kind != OpKind::kProject || items.children[0] != n_id ||
        !ProjIs(items, {{col::iter(), n.col}, {col::item(), col::item()}})) {
      return false;
    }
    const Op& selp = op(j1.children[1]);
    if (selp.kind != OpKind::kProject ||
        !ProjIs(selp, {{j1.col2, col::iter()}})) {
      return false;
    }

    s->anchor = id;
    s->items_s = items_id;
    s->map_s = map_id;
    s->iter1x = iter1x;
    s->bindx = bindx;

    std::vector<RawPred> raws;
    return MatchEbv(selp.children[0], n_id, s, &raws) &&
           MatchSpace(n_id, s) && ClassifyAll(raws, s);
  }

  // The semijoin-return composite — a whole inner for-loop whose body
  // filters by the EBV predicate and returns a constructed element:
  //   π{iter:iter1X, pos:posX, item}(num(⋈ iter=bindX(
  //     Elem(content, π{iter}(SEL)), map_s)))
  //   content = num'(Step*(π{iter,item}(⋈ iter=iterRX(
  //     X, π{iterRX:iter}(SEL)))))
  // X is an arbitrary side-shaped companion plan keyed by S-iterations
  // (e.g. an already-recognized value join). Recognizing the whole
  // composite lets EmitJoin drop the S-space numbering itself and
  // renumber only the survivors.
  bool MatchReturnAnchor(OpId id, JoinSpec* s) {
    const Op& a = op(id);
    if (a.kind != OpKind::kProject || a.proj.size() != 3) return false;
    ColId iter1x = ProjOld(a, col::iter());
    ColId posx = ProjOld(a, col::pos());
    if (iter1x == kNoCol || posx == kNoCol ||
        ProjOld(a, col::item()) != col::item()) {
      return false;
    }

    OpId rn_id = a.children[0];
    const Op& rn = op(rn_id);
    if (!IsNumbering(rn) || rn.col != posx) return false;
    if (rn.kind == OpKind::kRowNum &&
        (rn.part != iter1x ||
         rn.order != std::vector<SortKey>{{col::iter(), false}})) {
      return false;
    }

    const Op& j2 = op(rn.children[0]);
    if (j2.kind != OpKind::kEquiJoin || j2.value_join ||
        j2.col != col::iter()) {
      return false;
    }
    OpId e_id = j2.children[0];
    OpId map_id = j2.children[1];
    ColId bindx = j2.col2;

    // map_s = π{iter1X:iter, bindX:bind}(N), N the bind numbering.
    const Op& map = op(map_id);
    if (map.kind != OpKind::kProject) return false;
    OpId n_id = map.children[0];
    const Op& n = op(n_id);
    if (!IsNumbering(n)) return false;
    if (!ProjIs(map, {{iter1x, col::iter()}, {bindx, n.col}})) return false;

    const Op& e = op(e_id);
    if (e.kind != OpKind::kElem) return false;
    const Op& lp = op(e.children[1]);
    if (lp.kind != OpKind::kProject ||
        !ProjIs(lp, {{col::iter(), col::iter()}})) {
      return false;
    }
    OpId sel_id = lp.children[0];

    // Content: a per-iteration numbering over a Step chain over the
    // survivors' semijoin with X. A RowNum must group by the iteration
    // and order by value columns only; a RowId is the order-indifference
    // analysis' license that any deterministic numbering serves.
    OpId cn_id = e.children[0];
    const Op& cn = op(cn_id);
    if (!IsNumbering(cn)) return false;
    if (cn.kind == OpKind::kRowNum) {
      if (cn.part != col::iter()) return false;
      for (const SortKey& k : cn.order) {
        if (k.col == col::iter()) return false;
      }
    }
    OpId cur = cn.children[0];
    std::vector<OpId> csteps;
    while (op(cur).kind == OpKind::kStep) {
      csteps.push_back(cur);
      cur = op(cur).children[0];
    }
    std::reverse(csteps.begin(), csteps.end());  // innermost first
    const Op& pj = op(cur);
    if (!ProjIs(pj, {{col::iter(), col::iter()},
                     {col::item(), col::item()}})) {
      return false;
    }
    const Op& sj = op(pj.children[0]);
    if (sj.kind != OpKind::kEquiJoin || sj.value_join ||
        sj.col != col::iter()) {
      return false;
    }
    OpId x_id = sj.children[0];
    const Op& selp = op(sj.children[1]);
    if (selp.kind != OpKind::kProject ||
        !ProjIs(selp, {{sj.col2, col::iter()}}) ||
        selp.children[0] != sel_id) {
      return false;
    }

    // items_s = π{iter:bind, item}(N) — hash-consing makes it unique, so
    // a scan of the predicate's region finds the one the sides use.
    OpId items_id = kNoOp;
    for (OpId c : dag_.ReachableFrom(sel_id)) {
      const Op& o = op(c);
      if (o.kind == OpKind::kProject && !o.children.empty() &&
          o.children[0] == n_id &&
          ProjIs(o, {{col::iter(), n.col}, {col::item(), col::item()}})) {
        items_id = c;
        break;
      }
    }
    if (items_id == kNoOp) return false;

    s->akind = JoinAnchorKind::kSemijoinReturn;
    s->anchor = id;
    s->items_s = items_id;
    s->map_s = map_id;
    s->iter1x = iter1x;
    s->bindx = bindx;
    s->ret_num = rn_id;
    s->elem = e_id;
    s->content_num = cn_id;
    s->content_steps = std::move(csteps);
    s->x_root = x_id;

    std::vector<RawPred> raws;
    if (!MatchEbv(sel_id, n_id, s, &raws) || !MatchSpace(n_id, s) ||
        !ClassifyAll(raws, s)) {
      return false;
    }

    // X must key its rows by the S-iteration in exactly the semijoin's
    // column, carrying no iteration ids elsewhere.
    std::vector<OpId> xconsts;
    std::map<OpId, int> rm;
    auto xi = SideWalk(x_id, s->items_s, s->loop_s, s, false, nullptr,
                       nullptr, &xconsts, &rm);
    if (!xi || *xi != ColSet{sj.col} || sj.col != col::iter()) {
      return false;
    }
    s->const_roots.insert(s->const_roots.end(), xconsts.begin(),
                          xconsts.end());
    return true;
  }

  // The EBV scaffolding over the per-iteration predicate:
  //   Select item(Union(π{iter, item:e}(Aggr e:ebv(item)|iter(T)),
  //     Cross(loop_s \iter π{iter}(Aggr), [false])))
  // where T is a boolean tree: the survivors-Union of one comparison, or
  // an `and` pairing two padded boolean subtrees per iteration.
  bool MatchEbv(OpId sel_id, OpId n_id, JoinSpec* s,
                std::vector<RawPred>* raws) {
    const Op& sel = op(sel_id);
    if (sel.kind != OpKind::kSelect || sel.col != col::item()) return false;
    const Op& u2 = op(sel.children[0]);
    if (u2.kind != OpKind::kUnion) return false;
    const Op& pa = op(u2.children[0]);
    if (pa.kind != OpKind::kProject) return false;
    OpId ag_id = pa.children[0];
    const Op& ag = op(ag_id);
    if (ag.kind != OpKind::kAggr || ag.aggr != AggrKind::kEbv ||
        ag.part != col::iter() || ag.col2 != col::item()) {
      return false;
    }
    if (!ProjIs(pa, {{col::iter(), col::iter()}, {col::item(), ag.col}})) {
      return false;
    }
    OpId loop_id = MatchFalseBranch(u2.children[1], ag_id);
    if (loop_id == kNoOp) return false;
    const Op& loop = op(loop_id);
    const Op& n = op(n_id);
    if (loop.kind != OpKind::kProject || loop.children[0] != n_id ||
        !ProjIs(loop, {{col::iter(), n.col}})) {
      return false;
    }
    s->loop_s = loop_id;
    return MatchBoolTree(ag.children[0], loop_id, raws);
  }

  // A per-iteration boolean tree under an EBV Aggr: either the
  // survivors-Union of one comparison, or an `and`-conjunction
  //   π{iter, item:c}(Fun c:and(item, y)(⋈ iter=iterK(L,
  //     π{iterK:iter, y:item}(R))))
  // pairing two padded boolean subtrees per iteration. Nested `and`s
  // recurse through the padding, so a chain of conjuncts flattens into
  // one RawPred per comparison.
  bool MatchBoolTree(OpId id, OpId loop, std::vector<RawPred>* raws) {
    const Op& o = op(id);
    if (o.kind == OpKind::kUnion) return MatchCmpUnion(id, loop, raws);
    if (o.kind != OpKind::kProject) return false;
    ColId c = ProjOld(o, col::item());
    if (c == kNoCol ||
        !ProjIs(o, {{col::iter(), col::iter()}, {col::item(), c}})) {
      return false;
    }
    const Op& f = op(o.children[0]);
    if (f.kind != OpKind::kFun || f.fun != FunKind::kAnd || f.col != c ||
        f.args.size() != 2 || f.args[0] != col::item()) {
      return false;
    }
    const Op& j = op(f.children[0]);
    if (j.kind != OpKind::kEquiJoin || j.value_join ||
        j.col != col::iter()) {
      return false;
    }
    const Op& rp = op(j.children[1]);
    if (rp.kind != OpKind::kProject ||
        !ProjIs(rp, {{j.col2, col::iter()}, {f.args[1], col::item()}})) {
      return false;
    }
    return MatchPaddedBool(j.children[0], loop, raws) &&
           MatchPaddedBool(rp.children[0], loop, raws);
  }

  // Union(π{iter, item:e}(Aggr e:ebv(item)|iter(T)),
  //       Cross(loop \iter π{iter}(Aggr), [false])) — one conjunct's
  // boolean value per iteration, padded to total over the loop.
  bool MatchPaddedBool(OpId id, OpId loop, std::vector<RawPred>* raws) {
    const Op& u = op(id);
    if (u.kind != OpKind::kUnion) return false;
    const Op& pa = op(u.children[0]);
    if (pa.kind != OpKind::kProject) return false;
    OpId ag_id = pa.children[0];
    const Op& ag = op(ag_id);
    if (ag.kind != OpKind::kAggr || ag.aggr != AggrKind::kEbv ||
        ag.part != col::iter() || ag.col2 != col::item()) {
      return false;
    }
    if (!ProjIs(pa, {{col::iter(), col::iter()}, {col::item(), ag.col}})) {
      return false;
    }
    if (MatchFalseBranch(u.children[1], ag_id) != loop) return false;
    return MatchBoolTree(ag.children[0], loop, raws);
  }

  // The survivors of one comparison, padded to a boolean per iteration:
  //   Union(Cross([Distinct](π{iter}(σ cmp(Fun cmp(⋈ iter)))), [true]),
  //         Cross(loop \iter π{iter}(·), [false]))
  bool MatchCmpUnion(OpId id, OpId loop, std::vector<RawPred>* raws) {
    const Op& u1 = op(id);
    OpId true_id = u1.children[0];
    const Op& t = op(true_id);
    if (t.kind != OpKind::kCross || !IsBoolLit(op(t.children[1]), true)) {
      return false;
    }
    // The Distinct over the survivors is optional: when a key fact
    // already proves at most one matching pair per iteration, the
    // distinct_by_keys rewrite has dropped it. Either way the EBV Aggr
    // collapses duplicates, and EmitJoin re-Distincts the survivors.
    const Op& d = op(t.children[0]);
    const Op& pi =
        d.kind == OpKind::kDistinct ? op(d.children[0]) : d;
    if (pi.kind != OpKind::kProject ||
        !ProjIs(pi, {{col::iter(), col::iter()}})) {
      return false;
    }
    const Op& selc = op(pi.children[0]);
    if (selc.kind != OpKind::kSelect) return false;
    const Op& fo = op(selc.children[0]);
    if (fo.kind != OpKind::kFun || fo.col != selc.col || !IsCmp(fo.fun) ||
        fo.args.size() != 2) {
      return false;
    }
    const Op& j = op(fo.children[0]);
    if (j.kind != OpKind::kEquiJoin || j.value_join) return false;
    if (j.col != col::iter()) return false;
    if (MatchFalseBranch(u1.children[1], true_id) != loop) return false;
    raws->push_back({j.children[0], j.children[1], j.col2, fo.fun,
                     fo.args[0], fo.args[1]});
    return true;
  }

  // Cross(Difference on iter(loop, π{iter}(src)), [item=false]) -> loop.
  OpId MatchFalseBranch(OpId id, OpId src) {
    const Op& c = op(id);
    if (c.kind != OpKind::kCross || !IsBoolLit(op(c.children[1]), false)) {
      return kNoOp;
    }
    const Op& diff = op(c.children[0]);
    if (diff.kind != OpKind::kDifference ||
        diff.keys != std::vector<ColId>{col::iter()}) {
      return kNoOp;
    }
    const Op& pr = op(diff.children[1]);
    if (pr.kind != OpKind::kProject || pr.children[0] != src ||
        !ProjIs(pr, {{col::iter(), col::iter()}})) {
      return kNoOp;
    }
    return diff.children[0];
  }

  // The composite lifting some outer value into a loop:
  //   π{iter:bX, item:item}(⋈ iter=iX(inner, π{iX:iter, bX:bind}(NX)))
  bool LiftShape(OpId id, OpId* nx, ColId* bindc, OpId* inner) {
    const Op& p = op(id);
    if (p.kind != OpKind::kProject || p.proj.size() != 2) return false;
    ColId bx = ProjOld(p, col::iter());
    if (bx == kNoCol || ProjOld(p, col::item()) != col::item()) return false;
    const Op& ej = op(p.children[0]);
    if (ej.kind != OpKind::kEquiJoin || ej.value_join ||
        ej.col != col::iter()) {
      return false;
    }
    const Op& mp = op(ej.children[1]);
    if (mp.kind != OpKind::kProject) return false;
    const Op& nxo = op(mp.children[0]);
    if (!IsNumbering(nxo)) return false;
    if (!ProjIs(mp, {{ej.col2, col::iter()}, {bx, nxo.col}})) return false;
    *nx = mp.children[0];
    *bindc = bx;
    *inner = ej.children[0];
    return true;
  }

  // Cross(1-row Lit{iter}, Doc) — the document-level loop of exactly one
  // iteration whose content is the document root.
  bool IsDocBase(OpId id) {
    const Op& c = op(id);
    if (c.kind != OpKind::kCross) return false;
    const Op& l = op(c.children[0]);
    return IsOneRowLit(l) && l.schema == std::vector<ColId>{col::iter()} &&
           op(c.children[1]).kind == OpKind::kDoc;
  }

  // Proves the S-space is the exact product of an outer loop with a
  // loop-invariant document-level node sequence, and records how to
  // rebuild that sequence. Two source forms below the numbering + Step
  // chain:
  //  (i)  Cross(π{iter:c}(NN), Doc) — the document root crossed into an
  //       outer loop directly;
  //  (ii) a chain of lift composites bottoming out at Cross(Lit, Doc) —
  //       a `let $d := doc(..)` lifted through nested for-loops. Every
  //       iteration's content is the single document root either way.
  bool MatchSpace(OpId n_id, JoinSpec* s) {
    OpId cur = n_id;
    while (IsNumbering(op(cur))) cur = op(cur).children[0];
    std::vector<OpId> steps;
    while (op(cur).kind == OpKind::kStep) {
      steps.push_back(cur);
      cur = op(cur).children[0];
    }
    std::reverse(steps.begin(), steps.end());  // innermost first
    s->steps = std::move(steps);

    const Op& src = op(cur);
    if (IsDocBase(cur)) return false;  // no outer loop to re-attach to
    if (src.kind == OpKind::kCross &&
        op(src.children[1]).kind == OpKind::kDoc) {
      const Op& l = op(src.children[0]);
      if (l.kind != OpKind::kProject || l.proj.size() != 1 ||
          l.proj[0].first != col::iter()) {
        return false;
      }
      OpId nn_id = l.children[0];
      const Op& nn = op(nn_id);
      // The outer iterations must be duplicate-free: a numbering result.
      if (!IsNumbering(nn) || nn.col != l.proj[0].second) return false;
      s->doc_op = src.children[1];
      s->base = kNoOp;
      s->src_num = nn_id;
      return true;
    }
    OpId nx = kNoOp, inner = kNoOp;
    ColId bindc = kNoCol;
    if (!LiftShape(cur, &nx, &bindc, &inner)) return false;
    OpId b = inner;
    while (!IsDocBase(b)) {
      OpId nx2 = kNoOp, in2 = kNoOp;
      ColId bc2 = kNoCol;
      if (!LiftShape(b, &nx2, &bc2, &in2)) return false;
      b = in2;
    }
    s->base = b;
    s->src_num = nx;
    return true;
  }

  // Walks a comparison side, tracking which columns carry the S-space
  // iteration id. Chains of per-row operators over the leaves preserve
  // the per-iteration semantics when the iteration ids are renamed to
  // the fresh document-level rids, provided no ⊕ consumes an iteration
  // column as a value. Sub-plans that never reach the S-space at all are
  // fixed tables — the side meets the same rows under either naming, so
  // they are admitted as-is and recorded in `consts` for EmitJoin to
  // keep untouched (sound even if they carry iteration ids as data).
  // Returns the iteration columns at the top, or nullopt if the side
  // reaches anything outside the allowed shape. `rmemo` caches the
  // reachability test and must be scoped to one (side, mode) walk.
  std::optional<ColSet> SideWalk(OpId id, OpId leaf_a, OpId leaf_b,
                                 const JoinSpec* s, bool outer,
                                 OpId* lift, OpId* outer_items,
                                 std::vector<OpId>* consts,
                                 std::map<OpId, int>* rmemo) {
    if (!outer && (id == leaf_a || id == leaf_b)) {
      return ColSet{col::iter()};
    }
    if (outer) {
      OpId nx = kNoOp, inner = kNoOp;
      ColId bindc = kNoCol;
      if (LiftShape(id, &nx, &bindc, &inner)) {
        // Must be THE lift through this anchor's map_s.
        const Op& ej = op(op(id).children[0]);
        if (ej.children[1] == s->map_s && ej.col2 == s->iter1x &&
            bindc == s->bindx) {
          if (*lift != kNoOp && *lift != id) return std::nullopt;
          *lift = id;
          *outer_items = inner;
          return ColSet{col::iter()};
        }
        return std::nullopt;
      }
    }
    if (!Reaches(id, outer ? s->map_s : leaf_a, outer ? kNoOp : leaf_b,
                 rmemo)) {
      consts->push_back(id);
      return ColSet{};
    }
    const Op& o = op(id);
    auto walk = [&](OpId c) {
      return SideWalk(c, leaf_a, leaf_b, s, outer, lift, outer_items,
                      consts, rmemo);
    };
    switch (o.kind) {
      case OpKind::kProject: {
        auto sub = walk(o.children[0]);
        if (!sub) return std::nullopt;
        ColSet out;
        for (const auto& [n, old] : o.proj) {
          if (sub->count(old) != 0) out.insert(n);
        }
        return std::optional<ColSet>(out);
      }
      case OpKind::kFun: {
        auto sub = walk(o.children[0]);
        if (!sub) return std::nullopt;
        for (ColId a : o.args) {
          if (sub->count(a) != 0) return std::nullopt;
        }
        return sub;
      }
      case OpKind::kStep: {
        auto sub = walk(o.children[0]);
        if (!sub || *sub != ColSet{col::iter()}) return std::nullopt;
        return sub;
      }
      case OpKind::kSelect: {
        auto sub = walk(o.children[0]);
        if (!sub || sub->count(o.col) != 0) return std::nullopt;
        return sub;
      }
      case OpKind::kDistinct: {
        // Global dedup equals per-iteration dedup: rows keep their
        // iteration column, and iterations are renamed injectively.
        return walk(o.children[0]);
      }
      case OpKind::kCardCheck: {
        // Groups by the literal `iter` column on both children; per-rid
        // groups equal the per-iteration groups, so the assertion maps.
        auto sub = walk(o.children[0]);
        auto lp = walk(o.children[1]);
        if (!sub || !lp || sub->count(col::iter()) == 0 ||
            lp->count(col::iter()) == 0) {
          return std::nullopt;
        }
        return sub;
      }
      case OpKind::kCross: {
        // × with a fixed table on (at least) one side.
        auto l = walk(o.children[0]);
        auto r = walk(o.children[1]);
        if (!l || !r || (!l->empty() && !r->empty())) return std::nullopt;
        ColSet out = *l;
        out.insert(r->begin(), r->end());
        return std::optional<ColSet>(out);
      }
      case OpKind::kEquiJoin:
      case OpKind::kThetaJoin: {
        auto l = walk(o.children[0]);
        auto r = walk(o.children[1]);
        if (!l || !r) return std::nullopt;
        if (!l->empty() && !r->empty()) {
          // Per-iteration pairing: both sides join on their own
          // iteration column.
          if (o.kind != OpKind::kEquiJoin || o.value_join) {
            return std::nullopt;
          }
          if (l->count(o.col) == 0 || r->count(o.col2) == 0) {
            return std::nullopt;
          }
        } else if (l->count(o.col) != 0 || r->count(o.col2) != 0) {
          // Join against a fixed table: keyed on value columns only, so
          // each iteration's rows meet the same table either way.
          return std::nullopt;
        }
        ColSet out = *l;
        out.insert(r->begin(), r->end());
        return std::optional<ColSet>(out);
      }
      default:
        return std::nullopt;
    }
  }

  bool ClassifyAll(const std::vector<RawPred>& raws, JoinSpec* s) {
    if (raws.empty()) return false;
    for (const RawPred& raw : raws) {
      if (!ClassifySides(raw, s)) return false;
    }
    return true;
  }

  bool ClassifySides(const RawPred& raw, JoinSpec* s) {
    for (int swap = 0; swap < 2; ++swap) {
      OpId curc = swap != 0 ? raw.side_b : raw.side_a;
      OpId outc = swap != 0 ? raw.side_a : raw.side_b;
      std::vector<OpId> consts;
      std::map<OpId, int> rm_cur, rm_out;
      auto cur_iters = SideWalk(curc, s->items_s, s->loop_s, s, false,
                                nullptr, nullptr, &consts, &rm_cur);
      if (!cur_iters || cur_iters->size() != 1) continue;
      OpId lift = kNoOp, oi = kNoOp;
      auto out_iters = SideWalk(outc, kNoOp, kNoOp, s, true, &lift, &oi,
                                &consts, &rm_out);
      if (!out_iters || out_iters->size() != 1 || lift == kNoOp) continue;

      ColId cur_iter = *cur_iters->begin();
      ColId outer_iter = *out_iters->begin();
      // The per-iteration join must pair each side by its own iteration
      // column: left (side_a) joins on `iter`, right on iter2X.
      ColId a_side_iter = swap != 0 ? outer_iter : cur_iter;
      ColId b_side_iter = swap != 0 ? cur_iter : outer_iter;
      if (a_side_iter != col::iter() || b_side_iter != raw.iter2x) {
        continue;
      }

      // The compared columns are item values, one per side.
      bool a_in_cur = op(curc).HasCol(raw.a_col);
      bool b_in_cur = op(curc).HasCol(raw.b_col);
      if (a_in_cur == b_in_cur) continue;
      if (a_in_cur ? !op(outc).HasCol(raw.b_col)
                   : !op(outc).HasCol(raw.a_col)) {
        continue;
      }
      if (raw.a_col == cur_iter || raw.a_col == outer_iter ||
          raw.b_col == cur_iter || raw.b_col == outer_iter) {
        continue;
      }

      // The lifted outer items must enumerate exactly the outer loop the
      // S-space was built over: the same numbering op that seeded the
      // product source.
      const Op& oio = op(oi);
      const Op& nn = op(s->src_num);
      if (oio.kind != OpKind::kProject || oio.children[0] != s->src_num ||
          !ProjIs(oio, {{col::iter(), nn.col},
                        {col::item(), col::item()}})) {
        continue;
      }
      // Every conjunct's outer side must lift through the one composite
      // this spec's map_s defines; hash-consing makes it unique, so
      // later conjuncts simply land on the same node.
      if (s->lift != kNoOp && s->lift != lift) continue;

      JoinPred p;
      p.cmp = raw.cmp;
      p.a_col = raw.a_col;
      p.b_col = raw.b_col;
      p.a_in_cur = a_in_cur;
      p.cur_root = curc;
      p.outer_root = outc;
      p.cur_iter = cur_iter;
      p.outer_iter = outer_iter;
      s->preds.push_back(p);
      s->lift = lift;
      s->outer_items = oi;
      s->const_roots.insert(s->const_roots.end(), consts.begin(),
                            consts.end());
      return true;
    }
    return false;
  }

  const Dag& dag_;
};

// Re-emits the subtree under `id` with the leaf substitutions applied.
// Only the operator kinds SideWalk admitted can appear here.
OpId Rebuild(Dag* dag, OpId id, const std::map<OpId, OpId>& leaves,
             std::map<OpId, OpId>* memo) {
  if (auto it = leaves.find(id); it != leaves.end()) return it->second;
  if (auto it = memo->find(id); it != memo->end()) return it->second;
  const Op& o = dag->op(id);
  OpId out = kNoOp;
  switch (o.kind) {
    case OpKind::kLit:
      out = id;  // per-row constants are iteration-independent
      break;
    case OpKind::kProject:
      out = dag->Project(Rebuild(dag, o.children[0], leaves, memo), o.proj);
      break;
    case OpKind::kFun:
      out = dag->Fun(Rebuild(dag, o.children[0], leaves, memo), o.fun, o.col,
                     o.args);
      break;
    case OpKind::kStep:
      out = dag->Step(Rebuild(dag, o.children[0], leaves, memo), o.axis,
                      o.test);
      break;
    case OpKind::kSelect:
      out = dag->Select(Rebuild(dag, o.children[0], leaves, memo), o.col);
      break;
    case OpKind::kDistinct:
      out = dag->Distinct(Rebuild(dag, o.children[0], leaves, memo));
      break;
    case OpKind::kThetaJoin:
      out = dag->ThetaJoin(Rebuild(dag, o.children[0], leaves, memo),
                           Rebuild(dag, o.children[1], leaves, memo), o.col,
                           o.fun, o.col2);
      break;
    case OpKind::kCardCheck:
      out = dag->CardCheck(Rebuild(dag, o.children[0], leaves, memo),
                           Rebuild(dag, o.children[1], leaves, memo),
                           o.min_card, o.max_card, o.name);
      break;
    case OpKind::kCross:
      out = dag->Cross(Rebuild(dag, o.children[0], leaves, memo),
                       Rebuild(dag, o.children[1], leaves, memo));
      break;
    case OpKind::kEquiJoin:
      out = o.value_join
                ? dag->ValueJoin(Rebuild(dag, o.children[0], leaves, memo),
                                 Rebuild(dag, o.children[1], leaves, memo),
                                 o.col, o.col2)
                : dag->EquiJoin(Rebuild(dag, o.children[0], leaves, memo),
                                Rebuild(dag, o.children[1], leaves, memo),
                                o.col, o.col2);
      break;
    default:
      EXRQUY_CHECK(false);
  }
  (*memo)[id] = out;
  return out;
}

bool HashSafeKind(ItemKind k) {
  // Exactly the verifier's gate: within these classes the engine's
  // bit-exact (untyped-normalized) hash equality coincides with the
  // general-comparison eq. Mixed int/double (kNumeric) does not — 5 and
  // 5.0e0 compare equal but hash apart.
  return k == ItemKind::kInt || k == ItemKind::kString ||
         k == ItemKind::kBool;
}

bool NonNodeKind(ItemKind k) {
  return k != ItemKind::kNode && k != ItemKind::kAny;
}

}  // namespace

std::map<OpId, JoinSpec> RecognizeJoins(const Dag& dag, OpId root) {
  return Recognizer(dag).Run(root);
}

OpId EmitJoin(Dag* dag, const JoinSpec& spec, OpId outer_items_new,
              const RewriteOptions& options, SemTypeTracker* sem,
              CardTracker* cards, std::string* detail) {
  const Op& oi = dag->op(outer_items_new);
  if (!oi.HasCol(col::iter()) || !oi.HasCol(col::item())) return kNoOp;

  // The inner sequence, rebuilt once at document level and keyed by a
  // fresh # — one rid per document item, standing in for the per-outer-
  // iteration copies the product space materialized.
  OpId base = spec.base;
  if (base == kNoOp) {
    LitTable one;
    one.cols = {col::iter()};
    one.rows = {{Value::Int(1)}};
    base = dag->Cross(dag->Lit(std::move(one)), spec.doc_op);
  }
  OpId chain = base;
  for (OpId sid : spec.steps) {
    const Op& st = dag->op(sid);
    chain = dag->Step(chain, st.axis, st.test);
  }
  ColId rid = FreshCol("rid");
  OpId k = dag->RowId(chain, rid);
  OpId k_items =
      dag->Project(k, {{col::iter(), rid}, {col::item(), col::item()}});
  OpId k_loop = dag->Project(k, {{col::iter(), rid}});

  std::map<OpId, OpId> memo_cur;
  std::map<OpId, OpId> leaves_cur{{spec.items_s, k_items},
                                  {spec.loop_s, k_loop}};
  std::map<OpId, OpId> memo_out;
  std::map<OpId, OpId> leaves_out{{spec.lift, outer_items_new}};
  for (OpId cr : spec.const_roots) {
    // Fixed tables pass through untouched.
    leaves_cur.emplace(cr, cr);
    leaves_out.emplace(cr, cr);
  }

  // One join per conjunct. Each conjunct's surviving (outer iteration,
  // rid) pairs are the original S-iterations where it has a matching
  // pair — the Distinct mirrors the EBV's "any match" — and the
  // conjunction holds exactly on the intersection of those sets, taken
  // here with scaffolding semijoins on the canonical pair columns.
  ColId o_iter = spec.preds[0].outer_iter;
  ColId c_iter = spec.preds[0].cur_iter;
  struct BuiltJoin {
    OpId keep;
    uint64_t est;  // cardinality-interval upper bound on survivors
  };
  std::vector<BuiltJoin> built;
  std::string hows;
  for (const JoinPred& p : spec.preds) {
    OpId cur2 = Rebuild(dag, p.cur_root, leaves_cur, &memo_cur);
    OpId outer2 = Rebuild(dag, p.outer_root, leaves_out, &memo_out);

    ColId o_key = p.a_in_cur ? p.b_col : p.a_col;
    ColId c_key = p.a_in_cur ? p.a_col : p.b_col;
    ItemKind ko = sem->Get(outer2).KindOf(o_key);
    ItemKind kc = sem->Get(cur2).KindOf(c_key);

    const char* how = nullptr;
    OpId vj = kNoOp;
    if (p.cmp == FunKind::kEq && ko == kc && HashSafeKind(ko)) {
      // Hash value join; the engine picks the build side by size.
      vj = dag->ValueJoin(outer2, cur2, o_key, c_key);
      how = "hash value join";
    } else if (options.theta_join && NonNodeKind(ko) && NonNodeKind(kc)) {
      // ThetaJoin evaluates the comparison over exactly the pairs the
      // product-space plan compared, so dynamic-error conditions are
      // preserved. Probe (left) side: the larger input, for chunk
      // parallelism across its rows.
      uint64_t co = cards->Get(outer2).max;
      uint64_t cc = cards->Get(cur2).max;
      bool cur_left = cc >= co;
      OpId l = cur_left ? cur2 : outer2;
      OpId r = cur_left ? outer2 : cur2;
      ColId lk = cur_left ? c_key : o_key;
      ColId rk = cur_left ? o_key : c_key;
      // p.cmp is stated as a_col cmp b_col; mirror if a sits right.
      bool a_left = cur_left == p.a_in_cur;
      vj = dag->ThetaJoin(l, r, lk, a_left ? p.cmp : MirrorCmp(p.cmp), rk);
      how = "theta join";
    } else {
      return kNoOp;
    }

    OpId ki = dag->Distinct(dag->Project(
        vj, {{o_iter, p.outer_iter}, {c_iter, p.cur_iter}}));
    built.push_back({ki, cards->Get(ki).max});
    if (!hows.empty()) hows += ", and ";
    hows += std::string(how) + " on " + ColName(p.a_col) + " " +
            FunKindName(p.cmp) + " " + ColName(p.b_col) + " (" +
            ItemKindName(ko) + "/" + ItemKindName(kc) + " keys)";
  }
  // Greedy intersection order from the cardinality intervals: the
  // tightest survivor set seeds the semijoin chain, so every probe that
  // follows scans the smallest left side available. Stable, so equal
  // estimates keep the conjuncts' source order — plans stay
  // deterministic.
  std::stable_sort(built.begin(), built.end(),
                   [](const BuiltJoin& a, const BuiltJoin& b) {
                     return a.est < b.est;
                   });
  OpId keep = kNoOp;
  for (const BuiltJoin& b : built) {
    keep = keep == kNoOp ? b.keep
                         : dag->SemiJoin(keep, b.keep, {o_iter, c_iter});
  }
  OpId result = kNoOp;
  if (spec.akind == JoinAnchorKind::kSemijoinReturn) {
    // Renumber the survivors into fresh dense iteration ids. Within each
    // outer iteration the rids are the inner sequence's document order —
    // exactly the order the product space enumerated — so sorting by
    // (outer iteration, rid) makes the fresh ids order-isomorphic to the
    // original S-iterations everywhere they are compared below.
    ColId s2 = FreshCol("s2");
    OpId keepn = dag->RowNum(keep, s2,
                             {{o_iter, false}, {c_iter, false}}, kNoCol);
    ColId pf = FreshCol("po");
    ColId tf = FreshCol("tr");
    OpId knp =
        dag->Project(keepn, {{s2, s2}, {pf, o_iter}, {tf, c_iter}});

    // The companion plan, re-rooted onto the document-level rids and
    // semijoined down to the survivors by construction.
    std::map<OpId, OpId> memo_x;
    OpId x2 = Rebuild(dag, spec.x_root, leaves_cur, &memo_x);
    OpId xj = dag->EquiJoin(x2, knp, col::iter(), tf);
    OpId cb =
        dag->Project(xj, {{col::iter(), s2}, {col::item(), col::item()}});
    OpId cchain = cb;
    for (OpId sid : spec.content_steps) {
      const Op& st = dag->op(sid);
      cchain = dag->Step(cchain, st.axis, st.test);
    }
    const Op& cn = dag->op(spec.content_num);
    OpId content = cn.kind == OpKind::kRowNum
                       ? dag->RowNum(cchain, cn.col, cn.order, cn.part)
                       : dag->RowId(cchain, cn.col);

    // One element per survivor — including empty-content ones, which the
    // loop relation supplies just as the original Select did.
    OpId loop2 = dag->Project(knp, {{col::iter(), s2}});
    StrId ename = dag->op(spec.elem).name;
    OpId elem2 = dag->Elem(ename, content, loop2);

    // Re-attach to the outer loop and restore the original order
    // columns: the numbering mirrors the recognized one, over the fresh
    // ids whose order within each outer iteration is the original.
    OpId map2 = dag->Project(knp, {{spec.iter1x, pf}, {spec.bindx, s2}});
    OpId jr = dag->EquiJoin(elem2, map2, col::iter(), spec.bindx);
    const Op& rn = dag->op(spec.ret_num);
    OpId rn2 = rn.kind == OpKind::kRowNum
                   ? dag->RowNum(jr, rn.col, rn.order, rn.part)
                   : dag->RowId(jr, rn.col);
    auto aproj = dag->op(spec.anchor).proj;
    result = dag->Project(rn2, std::move(aproj));
    if (detail != nullptr) {
      *detail = hows +
                "; for-loop return re-rooted, product space replaced by " +
                "survivor renumbering over " +
                std::to_string(spec.steps.size()) + "-step document items";
    }
    return result;
  }
  if (!spec.with_item) {
    result = dag->Project(keep, {{col::iter(), o_iter}});
  } else {
    // Re-attach the inner item by rid — plain scaffolding equi-join.
    ColId ridf = FreshCol("rid");
    OpId kre =
        dag->Project(k, {{ridf, rid}, {col::item(), col::item()}});
    OpId j = dag->EquiJoin(keep, kre, c_iter, ridf);
    result = dag->Project(
        j, {{col::iter(), o_iter}, {col::item(), col::item()}});
  }
  if (detail != nullptr) {
    *detail = hows + "; iteration-product space re-rooted at " +
              std::to_string(spec.steps.size()) + "-step document items";
  }
  return result;
}

}  // namespace exrquy
