file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_q11_profile.dir/bench_table2_q11_profile.cc.o"
  "CMakeFiles/bench_table2_q11_profile.dir/bench_table2_q11_profile.cc.o.d"
  "bench_table2_q11_profile"
  "bench_table2_q11_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_q11_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
