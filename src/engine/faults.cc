#include "engine/faults.h"

#include <cstdlib>

namespace exrquy {
namespace {

uint64_t EnvU64(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  unsigned long long n = std::strtoull(v, &end, 10);
  if (end == v) return 0;
  return static_cast<uint64_t>(n);
}

}  // namespace

FaultPlan FaultPlan::FromEnv() {
  FaultPlan plan;
  plan.fail_alloc = EnvU64("EXRQUY_FAULT_ALLOC");
  plan.cancel_at_op = EnvU64("EXRQUY_FAULT_CANCEL_OP");
  plan.deadline_at_chunk = EnvU64("EXRQUY_FAULT_DEADLINE_CHUNK");
  return plan;
}

}  // namespace exrquy
