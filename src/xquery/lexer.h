// Hand-written XQuery lexer. Keywords are context sensitive in XQuery, so
// the lexer emits plain kName tokens and the parser matches keyword text.
// Direct element constructors are parsed at character level by the parser;
// the lexer supports that by exposing raw offsets and ResetTo().
#ifndef EXRQUY_XQUERY_LEXER_H_
#define EXRQUY_XQUERY_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace exrquy {

enum class TokKind : uint8_t {
  kEof,
  kName,    // QName (possibly prefixed, e.g. fn:count)
  kVar,     // $name (text excludes the '$')
  kInt,
  kDouble,
  kString,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kSemicolon,
  kDot,
  kDotDot,
  kSlash,
  kSlashSlash,
  kPipe,
  kPlus,
  kMinus,
  kStar,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kLtLt,
  kGtGt,
  kAssign,      // :=
  kColonColon,  // ::
  kAt,
  kQuestion,
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;
  int64_t int_value = 0;
  double double_value = 0;
  size_t offset = 0;  // start offset in the source
};

class Lexer {
 public:
  explicit Lexer(std::string_view text);

  // Lexes the first/next token into Cur(). Fails on malformed input.
  Status Advance();

  const Token& Cur() const { return cur_; }

  // Raw source access for constructor parsing.
  std::string_view text() const { return text_; }
  // Offset just past the current token.
  size_t pos() const { return pos_; }
  // Restarts lexing at `offset` (the next Advance() lexes from there).
  void ResetTo(size_t offset) { pos_ = offset; }

 private:
  Status Error(std::string message) const;

  std::string_view text_;
  size_t pos_ = 0;
  Token cur_;
};

// Character classification shared with the parser's constructor scanning.
bool IsNcNameStart(char c);
bool IsNcNameChar(char c);

// Decodes predefined entity and character references in XQuery string
// literals and constructor content.
std::string DecodeEntities(std::string_view raw);

}  // namespace exrquy

#endif  // EXRQUY_XQUERY_LEXER_H_
