// Independent fact re-derivation, shared by the plan verifier
// (opt/verify.h) and the rewrite-certificate checker (opt/certify.h).
//
// Everything in this module deliberately re-implements the transfer
// rules of the optimizer's dataflow analyses (opt/analyses.h) instead of
// sharing code with them: the audits built on top are only worth running
// against a second, independent derivation. All derived sets are sound
// under-approximations (a column listed as constant *is* constant in
// every model), so an audit failure always means the *claim* was too
// strong, never that the fact base was too weak to matter.
#ifndef EXRQUY_OPT_FACTS_AUDIT_H_
#define EXRQUY_OPT_FACTS_AUDIT_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/algebra.h"
#include "opt/analyses.h"

namespace exrquy {

// Independently derived facts about one operator's output, used to audit
// the optimizer's property claims and rewrite certificates.
struct OpFacts {
  ColSet constant;    // every row holds the same value
  ColSet arbitrary;   // relative order carries no semantic information
  ColSet keys;        // no two rows share a value (row-identifying)
  // Sound row-count bounds; at_most_one_row / no_rows are derived views
  // (max_rows <= 1 / max_rows == 0) kept for claim-audit convenience.
  uint64_t min_rows = 0;
  uint64_t max_rows = kUnboundedRows;
  bool at_most_one_row = false;
  bool no_rows = false;  // statically empty (e.g. a 0-row literal)
  // Sound per-column item kinds (absent = no static knowledge, i.e.
  // kAny): every value the column can hold belongs to the kind's
  // OrderCompare class.
  std::map<ColId, ItemKind> kinds;
  // Sound sorted-prefix facts: the output rows are physically sorted
  // (and, when strict, duplicate-free) the way each fact says.
  std::vector<OrderFact> sorted;
};

// The derived kind of one column (kAny when nothing is known).
ItemKind KindAt(const OpFacts& f, ColId c);

// F logically implies G (sorted F's way forces sorted G's way).
bool SortedImplies(const OrderFact& f, const OrderFact& g);

// Whether the derived facts force `requested` to be realized already
// (the order-dependency trade's licensing condition).
bool SortedCovers(const OpFacts& f, const std::vector<SortKey>& requested);

// Derives the facts of a single operator from its children's facts
// (which must already be present in `facts`).
OpFacts DeriveOpFacts(const Dag& dag, OpId id,
                      const std::unordered_map<OpId, OpFacts>& facts);

// Bottom-up derivation of OpFacts for every operator reachable from
// `root`. Requires a structurally and schema-wise valid plan.
std::unordered_map<OpId, OpFacts> DeriveFacts(const Dag& dag, OpId root);

// Join-graph isolation: which columns carry iteration/order scaffolding
// (loop-lifting iter/pos columns, % and # results) rather than item
// values. Re-derived forward from the column sources, independently of
// the join-recognition rewrite whose claims it audits. Deliberately
// over-approximated — a column touched by any scaffolding source counts
// as scaffolding, so over-approximation can only reject a plan, never
// admit a bad one. `order` must list the operators bottom-up (ascending
// ids, as ReachableFrom produces).
std::unordered_map<OpId, ColSet> DeriveScaffolding(
    const Dag& dag, const std::vector<OpId>& order);

// The pre-framework one-shot liveness walk, preserved verbatim as the
// independent reference for auditing the dataflow-framework ComputeICols:
// parents first in reverse topological (descending id) order, one
// transfer each.
std::unordered_map<OpId, ColSet> DeriveLiveColumns(const Dag& dag, OpId root,
                                                   const ColSet& seed);

std::string ColSetToString(const ColSet& cols);

// Lazy, memoized view of the audit fact base over a growing DAG. The
// rewrite-certificate checker derives facts on demand — both for
// operators of the pre-pass plan and for replacements appended during
// the pass (children always carry smaller ids, so a bottom-up sweep of
// the reachable region is well-defined at any point).
class FactsAudit {
 public:
  explicit FactsAudit(const Dag* dag) : dag_(dag) {}

  // Facts for `id`, deriving (and caching) the reachable region first.
  const OpFacts& Get(OpId id);

  // Scaffolding column set for `id` (see DeriveScaffolding).
  const ColSet& Scaffolding(OpId id);

  // Whether evaluating the sub-plan rooted at `id` can raise a dynamic
  // error. An independent re-derivation of the error-capability
  // analysis, using the audit's own row bounds instead of CardTracker's.
  bool MayRaise(OpId id);

 private:
  const Dag* dag_;
  std::unordered_map<OpId, OpFacts> facts_;
  std::unordered_map<OpId, ColSet> scaff_;
  std::unordered_map<OpId, char> raise_;
};

}  // namespace exrquy

#endif  // EXRQUY_OPT_FACTS_AUDIT_H_
