// Public entry point. A Session owns the XML store and string pool,
// loads documents, and runs queries through the full pipeline:
//
//   parse -> normalize (J.K) -> compile (·⇒·) -> optimize -> evaluate
//
// QueryOptions mirrors the paper's experimental configurations: with
// enable_order_indifference = false the compiler behaves like the
// baseline of Section 5 (ordered rules everywhere, fn:unordered() as the
// identity, no rewriting); with it on, the normalization rules, the #
// rules (LOC#/BIND#/FN:UNORDERED), column dependency analysis and the
// property-based rewrites are all active. The fine-grained flags ablate
// individual pieces.
#ifndef EXRQUY_API_SESSION_H_
#define EXRQUY_API_SESSION_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/algebra.h"
#include "algebra/stats.h"
#include "common/governor.h"
#include "common/status.h"
#include "engine/eval.h"
#include "engine/faults.h"
#include "engine/profile.h"
#include "opt/rewrites.h"
#include "xml/node_store.h"
#include "xquery/ast.h"

namespace exrquy {

struct QueryOptions {
  // Ordering mode used when the query prolog has no declare ordering.
  OrderingMode default_ordering = OrderingMode::kOrdered;

  // Master switch for exploiting order indifference.
  bool enable_order_indifference = true;

  // Fine-grained ablation flags (effective only when the master switch is
  // on).
  bool insert_unordered = true;      // normalization FN:COUNT/QUANT/...
  bool mode_rules = true;            // LOC# / BIND# / FN:UNORDERED
  bool column_pruning = true;        // CDA (Section 4.1)
  bool weaken_rownum = true;         // constant/arbitrary cols (Section 7)
  bool distinct_elimination = true;  // '|' -> ',' (Section 4.2)
  bool step_merging = true;          // Q6/Q7 step fusion
  bool distinct_by_keys = true;      // key columns elide Distinct
  bool empty_short_circuit = true;   // statically empty sub-plans collapse
  bool rownum_by_keys = true;        // keyed partitions make % rank 1
  bool rownum_by_od = true;          // order-dependency/semantic-type trades
  bool join_recognition = true;      // product-space predicates become joins
  bool theta_join = true;            // non-equality predicates -> ThetaJoin

  // Re-verifies the plan after every optimizer pass (opt/verify.h) and
  // names the first offending rewrite on failure. Every compiled and
  // optimized plan is verified once regardless of this flag before it
  // reaches the engine; this turns on the per-pass hook, for debugging
  // rewrites and for the fuzz/equivalence suites.
  bool verify_each_pass = false;

  // Rewrite certification (opt/certify.h): every rewrite instance emits
  // a certificate an independent checker validates. kDefault resolves
  // against EXRQUY_CERTIFY (unset -> check); kStrict fail-closes by
  // keeping the old sub-plan for any unprovable certificate; spot_check
  // additionally evaluates before/after sub-plans during Execute and
  // compares the witnessed columns byte-for-byte.
  CertifySettings certify;

  // Physical-plan order detection (orthogonal to the logical rewrites;
  // Section 6's pointer to combined order/grouping frameworks): % skips
  // its blocking sort when the input already arrives in the requested
  // order. Off by default — the paper's configurations do not assume it.
  bool physical_sort_detection = false;

  // Record a per-operator execution profile (Table 2).
  bool profile = false;

  // Execution-engine knobs (engine/eval.h EvalContext). num_threads = 1
  // forces the exact serial evaluation order; 0 defers to EXRQUY_THREADS
  // or the hardware. Results are byte-identical for every setting.
  int num_threads = 0;
  size_t chunk_rows = 65536;
  bool release_intermediates = true;
  // Morsel-driven pipelined execution (engine/eval.h): fuse non-blocking
  // operator chains and pull them in morsels of `morsel_rows` rows
  // (0 defers to EXRQUY_MORSEL_ROWS, then chunk_rows). Scheduled units
  // with at most `inline_rows` materialized input rows run inline on the
  // readying thread instead of a pool task. All three change scheduling
  // and footprint only — results are byte-identical for every setting.
  bool pipelined_execution = true;
  size_t morsel_rows = 0;
  size_t inline_rows = 4096;

  // -- Resource governance (common/governor.h, engine/faults.h) -----------
  // Wall-clock deadline for this execution, in milliseconds from the
  // start of Execute (compilation included). 0 defers to the
  // EXRQUY_DEADLINE_MS environment variable; unset/0 there = no deadline.
  // Exceeding it aborts within one chunk's work -> kDeadlineExceeded.
  int64_t deadline_ms = 0;

  // Per-query memory budget in bytes, covering intermediate table
  // columns, constructed nodes, and newly interned strings. 0 defers to
  // EXRQUY_MEM_BUDGET; unset/0 there = unlimited (accounting still runs
  // when `profile` is set, reported via Profile). Crossing the budget
  // aborts cleanly -> kResourceExhausted, never OOM.
  size_t memory_budget = 0;

  // Shareable cancellation token: call cancel->Cancel() from any thread
  // to abort the running query -> kCancelled. The Session never takes
  // ownership of the flag's lifecycle beyond the shared_ptr.
  CancelTokenPtr cancel;

  // Deterministic fault injection for tests and incident reproduction;
  // all-zeros (the default) defers to the EXRQUY_FAULT_* environment
  // variables (engine/faults.h).
  FaultPlan faults;
};

struct QueryResult {
  std::string serialized;
  std::vector<std::string> items;  // individually rendered, in order
  PlanStats plan_initial;          // as emitted by the compiler
  PlanStats plan_optimized;        // after the rewrite pipeline
  Profile profile;                 // filled when QueryOptions::profile
  size_t sorts_skipped = 0;        // with physical_sort_detection
  double compile_ms = 0;
  double optimize_ms = 0;
  double execute_ms = 0;
};

// Compiled + optimized plan, for plan-shape experiments (Figures 6/9/10).
struct QueryPlans {
  std::unique_ptr<Dag> dag;
  OpId initial = kNoOp;
  OpId optimized = kNoOp;
  // Every rewrite instance the passes performed, as certificates: the
  // family, before/after roots, cited facts, column witnesses, and the
  // checker's verdict (opt/rewrites.h, opt/certify.h). The legacy
  // %-elimination trade log is the order_trade subset.
  std::vector<RewriteTrade> trades;
};

// The front half of the pipeline — parse -> normalize -> compile ->
// optimize, with a static verification pass after compilation and after
// the rewrites — as a free function over an explicit string pool. Plans
// never read documents (fn:doc resolves at evaluation), so this is pure
// in the store; Session::Plan and the QueryService plan cache
// (api/service.h) both route through here. Thread-safe when `strings`
// is shared: interning is the only pool interaction.
Result<QueryPlans> PlanQuery(std::string_view query,
                             const QueryOptions& options, StrPool* strings);

// Why each sort that survived optimization is still there: for every %
// in the optimized plan, the source-syntax constructs whose order demand
// reaches its rank column (the order-provenance analysis of
// opt/analyses.h). An empty `reasons` list means the rank is dead and a
// further pruning pass would remove the operator.
struct OrderExplanation {
  struct SortPoint {
    OpId op = kNoOp;
    std::string label;   // operator rendering, e.g. "RowNum pos:<item>|iter"
    std::string source;  // originating source expression, when recorded
    std::vector<std::string> reasons;
  };
  // One % the optimizer eliminated, with the justification for the
  // trade (order dependency, semantic type, key, or arbitrary order).
  struct Trade {
    OpId op = kNoOp;     // the eliminated % (an id of the planning DAG)
    std::string label;   // its rendering at elimination time
    std::string source;  // originating source expression, when recorded
    std::string rule;    // rewrite family, e.g. "order-dependency"
    std::string detail;  // why the elimination is sound
  };
  std::vector<SortPoint> sorts;  // every surviving %, bottom-up
  std::vector<Trade> trades;     // every eliminated %, in trade order
  std::string dot;               // provenance-annotated DOT dump
};

// Every rewrite instance of one planning run, with its certificate
// verdict (xq --explain-rewrites): what fired, what it cited, whether
// the independent checker could prove the obligation, and whether the
// rewrite was committed (strict mode keeps the old sub-plan when the
// certificate fails).
struct RewriteExplanation {
  struct Entry {
    OpId from = kNoOp;
    OpId to = kNoOp;
    std::string rule;        // rewrite family, e.g. "join_recognition"
    std::string detail;      // the rewrite's own justification
    std::string label;       // rendering of the rewritten operator
    std::string source;      // originating source expression, if recorded
    std::vector<std::string> facts;  // cited facts, rendered
    bool checked = false;    // a checker ran on the certificate
    bool valid = false;      // ... and could prove the obligation
    bool committed = true;   // the rewrite made it into the plan
    std::string obligation;  // failed obligation (when checked && !valid)
    std::string diagnostic;  // "certify: [<obligation>] ..." (same case)
  };
  std::vector<Entry> entries;  // in rewrite order
  size_t emitted = 0;          // certificates emitted
  size_t validated = 0;        // proven by the independent checker
  size_t rejected = 0;         // unprovable (committed anyway unless strict)
  std::string dot;             // certificate-annotated DOT dump
};

class Session {
 public:
  Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Parses and name-indexes a document; fn:doc(name) resolves to it.
  Status LoadDocument(std::string_view name, std::string_view xml);
  Status LoadDocumentFile(std::string_view name, const std::string& path);

  // Runs the full pipeline. Constructed fragments and query-interned
  // strings are discarded on every exit path — success, compile error,
  // runtime error, or governor abort — so repeated executions (including
  // repeated failures) do not grow the store or the pool, and the
  // Session stays fully usable after any abort.
  Result<QueryResult> Execute(std::string_view query,
                              const QueryOptions& options = {});

  // Compiles and optimizes only (no evaluation).
  Result<QueryPlans> Plan(std::string_view query,
                          const QueryOptions& options = {});

  // Compiles and optimizes, then explains why each surviving % still
  // sorts (xq --explain-order).
  Result<OrderExplanation> ExplainOrder(std::string_view query,
                                        const QueryOptions& options = {});

  // Compiles and optimizes, then reports every rewrite instance with its
  // certificate verdict (xq --explain-rewrites).
  Result<RewriteExplanation> ExplainRewrites(std::string_view query,
                                             const QueryOptions& options = {});

  NodeStore& store() { return store_; }
  StrPool& strings() { return strings_; }
  // fn:doc() name -> document node, as loaded; lets callers evaluate
  // planned sub-DAGs directly with engine/eval.h (tests, benches).
  const std::map<StrId, NodeIdx>& documents() const { return documents_; }

 private:
  Result<QueryPlans> PlanInternal(std::string_view query,
                                  const QueryOptions& options);

  StrPool strings_;
  NodeStore store_;
  std::map<StrId, NodeIdx> documents_;
};

}  // namespace exrquy

#endif  // EXRQUY_API_SESSION_H_
