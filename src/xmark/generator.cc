#include "xmark/generator.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace exrquy {
namespace {

// splitmix64: tiny, deterministic, seedable.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, n).
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  // True with probability pct/100.
  bool Percent(int pct) { return Below(100) < static_cast<uint64_t>(pct); }

  double Money(double lo, double hi) {
    double v = lo + (hi - lo) * (static_cast<double>(Below(100000)) / 100000);
    return static_cast<double>(static_cast<int64_t>(v * 100)) / 100;
  }

 private:
  uint64_t state_;
};

const char* const kWords[] = {
    "rage",    "against",  "dying",   "light",   "gentle",  "good",
    "night",   "wise",     "men",     "know",    "dark",    "words",
    "forked",  "lightning","deeds",   "danced",  "green",   "bay",
    "crying",  "bright",   "frail",   "sun",     "flight",  "grieved",
    "blinding","sight",    "eyes",    "blaze",   "meteors", "gay",
    "grave",   "fierce",   "tears",   "pray",    "curse",   "bless",
    "sad",     "height",   "wave",    "caught",  "sang",    "learn",
};
constexpr size_t kWordCount = sizeof(kWords) / sizeof(kWords[0]);

const char* const kFirstNames[] = {"Torsten", "Jan",   "Jens",  "Maurice",
                                   "Peter",   "Sarah", "Ines",  "Stefan",
                                   "Albrecht", "Ana",  "Kurt",  "Maria"};
const char* const kLastNames[] = {"Grust",  "Rittinger", "Teubner", "Boncz",
                                  "Kersten", "Manegold", "Keulen",  "Schmidt",
                                  "Waas",    "Carey",    "Busse",   "Florescu"};
const char* const kCities[] = {"Munich",    "Amsterdam", "Twente",
                               "Konstanz",  "Chicago",   "Trondheim",
                               "Toronto",   "Madison"};
const char* const kCountries[] = {"Germany", "Netherlands", "United States",
                                  "Norway",  "Canada"};
const char* const kRegions[] = {"africa",   "asia",    "australia",
                                "europe",   "namerica", "samerica"};
// Item share per region (percent); australia and europe carry the load
// queries Q9/Q13 need.
const int kRegionShare[] = {5, 15, 10, 30, 30, 10};

class Generator {
 public:
  explicit Generator(const XMarkOptions& options)
      : rng_(options.seed), scale_(options.scale) {}

  std::string Run() {
    out_.reserve(1 << 20);
    items_ = Count(21750, 6);
    persons_ = Count(25500, 6);
    open_auctions_ = Count(12000, 4);
    closed_auctions_ = Count(9750, 4);
    categories_ = Count(1000, 3);

    out_ += "<site>\n";
    Regions();
    Categories();
    Catgraph();
    People();
    OpenAuctions();
    ClosedAuctions();
    out_ += "</site>\n";
    return std::move(out_);
  }

 private:
  size_t Count(size_t base, size_t min) {
    return std::max<size_t>(min,
                            static_cast<size_t>(base * scale_ + 0.5));
  }

  void Tag(const char* name, const std::string& text) {
    out_ += '<';
    out_ += name;
    out_ += '>';
    out_ += text;
    out_ += "</";
    out_ += name;
    out_ += ">\n";
  }

  std::string Words(size_t n, bool maybe_gold) {
    std::string s;
    for (size_t i = 0; i < n; ++i) {
      if (i) s += ' ';
      if (maybe_gold && rng_.Percent(8) ) {
        s += "gold";
      } else {
        s += kWords[rng_.Below(kWordCount)];
      }
    }
    return s;
  }

  std::string MoneyStr(double lo, double hi) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", rng_.Money(lo, hi));
    return buf;
  }

  // <text>words <emph>words <keyword>word</keyword></emph> words</text>
  void TextElem(bool with_keyword, bool maybe_gold) {
    out_ += "<text>";
    out_ += Words(4 + rng_.Below(6), maybe_gold);
    if (with_keyword) {
      out_ += " <emph>";
      out_ += Words(2, false);
      out_ += " <keyword>";
      out_ += Words(1 + rng_.Below(2), false);
      out_ += "</keyword>";
      out_ += "</emph> ";
      out_ += Words(2, false);
    } else if (rng_.Percent(30)) {
      out_ += " <bold>";
      out_ += Words(2, false);
      out_ += "</bold> ";
      out_ += Words(1, maybe_gold);
    }
    out_ += "</text>\n";
  }

  // description with (sometimes) nested parlists; `deep` forces the
  // parlist/listitem/parlist/listitem/text/emph/keyword chain of Q15/Q16.
  void Description(bool deep, bool maybe_gold) {
    out_ += "<description>";
    if (deep || rng_.Percent(60)) {
      out_ += "<parlist>";
      size_t listitems = 1 + rng_.Below(3);
      for (size_t i = 0; i < listitems; ++i) {
        out_ += "<listitem>";
        bool nest = deep ? i == 0 : rng_.Percent(25);
        if (nest) {
          out_ += "<parlist><listitem>";
          TextElem(/*with_keyword=*/deep || rng_.Percent(50), maybe_gold);
          out_ += "</listitem></parlist>";
        } else {
          TextElem(/*with_keyword=*/rng_.Percent(20), maybe_gold);
        }
        out_ += "</listitem>";
      }
      out_ += "</parlist>";
    } else {
      TextElem(/*with_keyword=*/false, maybe_gold);
    }
    out_ += "</description>\n";
  }

  void Item(size_t id) {
    out_ += "<item id=\"item" + std::to_string(id) + "\">\n";
    Tag("location", kCountries[rng_.Below(5)]);
    Tag("quantity", std::to_string(1 + rng_.Below(3)));
    Tag("name", Words(2, false));
    Tag("payment", "Creditcard");
    Description(/*deep=*/false, /*maybe_gold=*/true);
    out_ += "<shipping>Will ship internationally</shipping>\n";
    size_t cats = 1 + rng_.Below(3);
    for (size_t c = 0; c < cats; ++c) {
      out_ += "<incategory category=\"category" +
              std::to_string(rng_.Below(categories_)) + "\"/>\n";
    }
    if (rng_.Percent(60)) {
      out_ += "<mailbox><mail>\n";
      Tag("from", Words(2, false));
      Tag("to", Words(2, false));
      Tag("date", Date());
      TextElem(false, true);
      out_ += "</mail></mailbox>\n";
    }
    out_ += "</item>\n";
  }

  std::string Date() {
    return std::to_string(1 + rng_.Below(12)) + "/" +
           std::to_string(1 + rng_.Below(28)) + "/" +
           std::to_string(1998 + rng_.Below(4));
  }

  void Regions() {
    out_ += "<regions>\n";
    size_t next_item = 0;
    for (size_t r = 0; r < 6; ++r) {
      out_ += '<';
      out_ += kRegions[r];
      out_ += ">\n";
      size_t count = std::max<size_t>(1, items_ * kRegionShare[r] / 100);
      if (r == 5) count = items_ > next_item ? items_ - next_item : 1;
      for (size_t i = 0; i < count; ++i) Item(next_item++);
      out_ += "</";
      out_ += kRegions[r];
      out_ += ">\n";
    }
    total_items_ = next_item;
    out_ += "</regions>\n";
  }

  void Categories() {
    out_ += "<categories>\n";
    for (size_t c = 0; c < categories_; ++c) {
      out_ += "<category id=\"category" + std::to_string(c) + "\">\n";
      Tag("name", Words(1, false));
      Description(false, false);
      out_ += "</category>\n";
    }
    out_ += "</categories>\n";
  }

  void Catgraph() {
    out_ += "<catgraph>\n";
    for (size_t e = 0; e < categories_; ++e) {
      out_ += "<edge from=\"category" +
              std::to_string(rng_.Below(categories_)) + "\" to=\"category" +
              std::to_string(rng_.Below(categories_)) + "\"/>\n";
    }
    out_ += "</catgraph>\n";
  }

  void People() {
    out_ += "<people>\n";
    for (size_t p = 0; p < persons_; ++p) {
      out_ += "<person id=\"person" + std::to_string(p) + "\">\n";
      Tag("name", std::string(kFirstNames[rng_.Below(12)]) + " " +
                      kLastNames[rng_.Below(12)]);
      Tag("emailaddress",
          "mailto:person" + std::to_string(p) + "@example.org");
      if (rng_.Percent(50)) Tag("phone", "+49 " + std::to_string(rng_.Below(10000000)));
      if (rng_.Percent(60)) {
        out_ += "<address>\n";
        Tag("street", std::to_string(1 + rng_.Below(99)) + " " +
                          Words(1, false) + " St");
        Tag("city", kCities[rng_.Below(8)]);
        Tag("country", kCountries[rng_.Below(5)]);
        Tag("zipcode", std::to_string(10000 + rng_.Below(89999)));
        out_ += "</address>\n";
      }
      if (rng_.Percent(45)) {
        Tag("homepage", "http://example.org/~person" + std::to_string(p));
      }
      if (rng_.Percent(70)) Tag("creditcard", CardNumber());
      if (rng_.Percent(80)) {
        // Roughly half of the profiles carry an income (Q12/Q20 buckets).
        if (rng_.Percent(75)) {
          out_ += "<profile income=\"" + MoneyStr(9000, 200000) + "\">\n";
        } else {
          out_ += "<profile>\n";
        }
        size_t interests = rng_.Below(4);
        for (size_t i = 0; i < interests; ++i) {
          out_ += "<interest category=\"category" +
                  std::to_string(rng_.Below(categories_)) + "\"/>\n";
        }
        if (rng_.Percent(40)) Tag("education", "Graduate School");
        if (rng_.Percent(70)) Tag("gender", rng_.Percent(50) ? "male" : "female");
        Tag("business", rng_.Percent(50) ? "Yes" : "No");
        if (rng_.Percent(60)) Tag("age", std::to_string(18 + rng_.Below(60)));
        out_ += "</profile>\n";
      }
      out_ += "</person>\n";
    }
    out_ += "</people>\n";
  }

  std::string CardNumber() {
    std::string s;
    for (int g = 0; g < 4; ++g) {
      if (g) s += ' ';
      s += std::to_string(1000 + rng_.Below(9000));
    }
    return s;
  }

  void Bidder() {
    out_ += "<bidder>\n";
    Tag("date", Date());
    Tag("time", std::to_string(rng_.Below(24)) + ":" +
                    std::to_string(10 + rng_.Below(50)));
    out_ += "<personref person=\"person" +
            std::to_string(rng_.Below(persons_)) + "\"/>\n";
    Tag("increase", MoneyStr(1.5, 30));
    out_ += "</bidder>\n";
  }

  void OpenAuctions() {
    out_ += "<open_auctions>\n";
    for (size_t a = 0; a < open_auctions_; ++a) {
      out_ += "<open_auction id=\"open_auction" + std::to_string(a) +
              "\">\n";
      Tag("initial", MoneyStr(1, 100));
      if (rng_.Percent(40)) Tag("reserve", MoneyStr(50, 300));
      size_t bidders = rng_.Below(5);
      for (size_t b = 0; b < bidders; ++b) Bidder();
      Tag("current", MoneyStr(1, 400));
      if (rng_.Percent(30)) Tag("privacy", "Yes");
      out_ += "<itemref item=\"item" +
              std::to_string(rng_.Below(total_items_)) + "\"/>\n";
      out_ += "<seller person=\"person" +
              std::to_string(rng_.Below(persons_)) + "\"/>\n";
      Annotation(/*deep=*/rng_.Percent(12));
      Tag("quantity", "1");
      Tag("type", "Regular");
      out_ += "<interval>";
      Tag("start", Date());
      Tag("end", Date());
      out_ += "</interval>\n";
      out_ += "</open_auction>\n";
    }
    out_ += "</open_auctions>\n";
  }

  void Annotation(bool deep) {
    out_ += "<annotation>\n";
    Tag("author", std::string(kFirstNames[rng_.Below(12)]) + " " +
                      kLastNames[rng_.Below(12)]);
    Description(deep, false);
    Tag("happiness", std::to_string(1 + rng_.Below(10)));
    out_ += "</annotation>\n";
  }

  void ClosedAuctions() {
    out_ += "<closed_auctions>\n";
    for (size_t a = 0; a < closed_auctions_; ++a) {
      out_ += "<closed_auction>\n";
      out_ += "<seller person=\"person" +
              std::to_string(rng_.Below(persons_)) + "\"/>\n";
      out_ += "<buyer person=\"person" +
              std::to_string(rng_.Below(persons_)) + "\"/>\n";
      out_ += "<itemref item=\"item" +
              std::to_string(rng_.Below(total_items_)) + "\"/>\n";
      Tag("price", MoneyStr(5, 200));
      Tag("date", Date());
      Tag("quantity", "1");
      Tag("type", rng_.Percent(50) ? "Regular" : "Featured");
      Annotation(/*deep=*/rng_.Percent(15));
      out_ += "</closed_auction>\n";
    }
    out_ += "</closed_auctions>\n";
  }

  Rng rng_;
  double scale_;
  std::string out_;
  size_t items_ = 0;
  size_t total_items_ = 0;
  size_t persons_ = 0;
  size_t open_auctions_ = 0;
  size_t closed_auctions_ = 0;
  size_t categories_ = 0;
};

}  // namespace

std::string GenerateXMark(const XMarkOptions& options) {
  return Generator(options).Run();
}

}  // namespace exrquy
