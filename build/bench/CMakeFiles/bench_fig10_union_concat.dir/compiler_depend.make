# Empty compiler generated dependencies file for bench_fig10_union_concat.
# This may be replaced when dependencies are built.
