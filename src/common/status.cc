#include "common/status.h"

namespace exrquy {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kCardinalityError:
      return "CardinalityError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

Status InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status Unimplemented(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status TypeError(std::string message) {
  return Status(StatusCode::kTypeError, std::move(message));
}
Status CardinalityError(std::string message) {
  return Status(StatusCode::kCardinalityError, std::move(message));
}
Status Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status Cancelled(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
Status DeadlineExceeded(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status ResourceExhausted(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status Unavailable(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

}  // namespace exrquy
