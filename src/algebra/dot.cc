#include "algebra/dot.h"

#include <set>
#include <sstream>

namespace exrquy {
namespace {

std::string ValueToString(const Value& v, const StrPool& strings) {
  switch (v.kind) {
    case ValueKind::kInt:
      return std::to_string(v.i);
    case ValueKind::kDouble:
      return std::to_string(v.d);
    case ValueKind::kString:
      return "\"" + strings.Get(v.str) + "\"";
    case ValueKind::kUntyped:
      return "u\"" + strings.Get(v.str) + "\"";
    case ValueKind::kBool:
      return v.b ? "true" : "false";
    case ValueKind::kNode:
      return "node:" + std::to_string(v.node);
  }
  return "?";
}

}  // namespace

std::string OpToString(const Dag& dag, OpId id, const StrPool& strings) {
  const Op& op = dag.op(id);
  std::ostringstream out;
  switch (op.kind) {
    case OpKind::kLit: {
      out << "Lit[";
      for (size_t i = 0; i < op.lit.cols.size(); ++i) {
        out << (i ? "," : "") << ColName(op.lit.cols[i]);
      }
      out << "](" << op.lit.rows.size() << " rows";
      if (op.lit.rows.size() == 1) {
        out << ":";
        for (const Value& v : op.lit.rows[0]) {
          out << " " << ValueToString(v, strings);
        }
      }
      out << ")";
      break;
    }
    case OpKind::kProject: {
      out << "Project ";
      for (size_t i = 0; i < op.proj.size(); ++i) {
        const auto& [n, o] = op.proj[i];
        if (i) out << ",";
        if (n == o) {
          out << ColName(n);
        } else {
          out << ColName(n) << ":" << ColName(o);
        }
      }
      break;
    }
    case OpKind::kSelect:
      out << "Select " << ColName(op.col);
      break;
    case OpKind::kEquiJoin:
      out << "Join " << ColName(op.col) << "=" << ColName(op.col2);
      if (op.value_join) out << " (value)";
      break;
    case OpKind::kThetaJoin:
      out << "ThetaJoin " << ColName(op.col) << " " << FunKindName(op.fun)
          << " " << ColName(op.col2);
      break;
    case OpKind::kCross:
      out << "Cross";
      break;
    case OpKind::kUnion:
      out << "Union";
      break;
    case OpKind::kDifference: {
      out << "Difference on";
      for (ColId c : op.keys) out << " " << ColName(c);
      break;
    }
    case OpKind::kSemiJoin: {
      out << "SemiJoin on";
      for (ColId c : op.keys) out << " " << ColName(c);
      break;
    }
    case OpKind::kDistinct:
      out << "Distinct";
      break;
    case OpKind::kRowNum: {
      out << "RowNum " << ColName(op.col) << ":<";
      for (size_t i = 0; i < op.order.size(); ++i) {
        if (i) out << ",";
        out << ColName(op.order[i].col);
        if (op.order[i].descending) out << " desc";
      }
      out << ">";
      if (op.part != kNoCol) out << "|" << ColName(op.part);
      break;
    }
    case OpKind::kRowId:
      // `^` marks a positional # — the ids are proven row positions, not
      // arbitrary unique numbers (Op::positional).
      out << "RowId" << (op.positional ? "^ " : " ") << ColName(op.col);
      break;
    case OpKind::kFun: {
      out << "Fun " << ColName(op.col) << ":" << FunKindName(op.fun) << "(";
      for (size_t i = 0; i < op.args.size(); ++i) {
        out << (i ? "," : "") << ColName(op.args[i]);
      }
      out << ")";
      break;
    }
    case OpKind::kAggr: {
      out << "Aggr " << ColName(op.col) << ":" << AggrKindName(op.aggr);
      if (op.aggr != AggrKind::kCount) out << "(" << ColName(op.col2) << ")";
      if (op.part != kNoCol) out << "|" << ColName(op.part);
      break;
    }
    case OpKind::kStep:
      out << "Step " << AxisName(op.axis)
          << "::" << NodeTestToString(op.test, strings);
      break;
    case OpKind::kDoc:
      out << "Doc \"" << strings.Get(op.name) << "\"";
      break;
    case OpKind::kElem:
      out << "Elem <" << strings.Get(op.name) << ">";
      break;
    case OpKind::kAttr:
      out << "Attr @" << strings.Get(op.name);
      break;
    case OpKind::kTextNode:
      out << "TextNode";
      break;
    case OpKind::kRange:
      out << "Range " << ColName(op.col) << ".." << ColName(op.col2);
      break;
    case OpKind::kCardCheck:
      out << "CardCheck [" << op.min_card << "," << op.max_card << "]";
      break;
  }
  return out.str();
}

namespace {

void RenderText(const Dag& dag, OpId id, const StrPool& strings, int depth,
                std::set<OpId>* seen, std::ostringstream& out) {
  out << std::string(static_cast<size_t>(depth) * 2, ' ');
  if (seen->count(id) != 0) {
    out << "^" << id << "\n";
    return;
  }
  seen->insert(id);
  out << OpToString(dag, id, strings) << "  [" << id << "]";
  const Op& op = dag.op(id);
  if (!op.prov.empty()) out << "  -- " << op.prov;
  out << "\n";
  for (OpId c : op.children) {
    RenderText(dag, c, strings, depth + 1, seen, out);
  }
}

}  // namespace

std::string PlanToText(const Dag& dag, OpId root, const StrPool& strings) {
  std::ostringstream out;
  std::set<OpId> seen;
  RenderText(dag, root, strings, 0, &seen, out);
  return out.str();
}

std::string PlanToDot(const Dag& dag, OpId root, const StrPool& strings) {
  return PlanToDot(dag, root, strings, {});
}

std::string PlanToDot(
    const Dag& dag, OpId root, const StrPool& strings,
    const std::map<OpId, std::vector<std::string>>& annotations) {
  std::ostringstream out;
  out << "digraph plan {\n  node [shape=box, fontname=monospace];\n";
  for (OpId id : dag.ReachableFrom(root)) {
    const Op& op = dag.op(id);
    std::string label = OpToString(dag, id, strings);
    auto ann = annotations.find(id);
    if (ann != annotations.end()) {
      for (const std::string& line : ann->second) {
        label += "\n" + line;
      }
    }
    // Escape double quotes and literal newlines for DOT.
    std::string escaped;
    for (char c : label) {
      if (c == '"') {
        escaped += "\\\"";
      } else if (c == '\n') {
        escaped += "\\n";
      } else {
        escaped += c;
      }
    }
    out << "  n" << id << " [label=\"" << escaped << "\"";
    if (op.kind == OpKind::kRowNum) out << ", style=filled, fillcolor=salmon";
    if (op.kind == OpKind::kRowId) {
      out << ", style=filled, fillcolor=palegreen";
    }
    out << "];\n";
    for (OpId c : op.children) {
      out << "  n" << id << " -> n" << c << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace exrquy
