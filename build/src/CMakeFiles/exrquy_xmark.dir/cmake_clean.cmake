file(REMOVE_RECURSE
  "CMakeFiles/exrquy_xmark.dir/xmark/generator.cc.o"
  "CMakeFiles/exrquy_xmark.dir/xmark/generator.cc.o.d"
  "CMakeFiles/exrquy_xmark.dir/xmark/queries.cc.o"
  "CMakeFiles/exrquy_xmark.dir/xmark/queries.cc.o.d"
  "libexrquy_xmark.a"
  "libexrquy_xmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exrquy_xmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
