// Per-operator execution profiling, aggregated by operator kind and by
// the compiler's provenance labels. This regenerates Table 2 of the
// paper: "a breakdown of where time goes during evaluation".
#ifndef EXRQUY_ENGINE_PROFILE_H_
#define EXRQUY_ENGINE_PROFILE_H_

#include <map>
#include <string>

#include "algebra/algebra.h"

namespace exrquy {

class Profile {
 public:
  struct Bucket {
    double ms = 0;
    size_t ops = 0;
    size_t out_rows = 0;
  };

  void Record(const Op& op, double ms, size_t out_rows);

  const std::map<std::string, Bucket>& by_prov() const { return by_prov_; }
  const std::map<std::string, Bucket>& by_kind() const { return by_kind_; }
  double total_ms() const { return total_ms_; }

  // Table 2-style rendering: one line per provenance label, with
  // millisecond and percentage columns, sorted by time descending.
  std::string ToString() const;

 private:
  std::map<std::string, Bucket> by_prov_;
  std::map<std::string, Bucket> by_kind_;
  double total_ms_ = 0;
};

}  // namespace exrquy

#endif  // EXRQUY_ENGINE_PROFILE_H_
