# Empty compiler generated dependencies file for test_xmark_generator.
# This may be replaced when dependencies are built.
