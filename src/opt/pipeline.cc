#include "opt/pipeline.h"

#include <string>

#include "algebra/dot.h"
#include "opt/verify.h"

namespace exrquy {
namespace {

// The individually attributable rewrite families of one combined pass,
// in the order the attribution replay applies them.
struct NamedRewrite {
  const char* name;
  bool RewriteOptions::*flag;
};

constexpr NamedRewrite kNamedRewrites[] = {
    {"column_pruning", &RewriteOptions::column_pruning},
    {"weaken_rownum", &RewriteOptions::weaken_rownum},
    {"distinct_elimination", &RewriteOptions::distinct_elimination},
    {"step_merging", &RewriteOptions::step_merging},
    {"distinct_by_keys", &RewriteOptions::distinct_by_keys},
    {"empty_short_circuit", &RewriteOptions::empty_short_circuit},
    {"rownum_by_keys", &RewriteOptions::rownum_by_keys},
    {"rownum_by_od", &RewriteOptions::rownum_by_od},
    {"join_recognition", &RewriteOptions::join_recognition},
    {"theta_join", &RewriteOptions::theta_join},
};

Status VerifyFailure(const Dag& dag, OpId bad_root,
                     const OptimizeOptions& options, int pass,
                     const std::string& stage, const Status& diag) {
  std::string msg = "optimizer pass " + std::to_string(pass) + ", " + stage +
                    ": " + diag.message();
  if (options.strings != nullptr) {
    msg += "\noffending plan:\n" + PlanToDot(dag, bad_root, *options.strings);
  }
  return Internal(std::move(msg));
}

// The combined pass broke an invariant: replay it from `before` one
// rewrite family at a time and blame the first one whose output fails to
// verify — naming the failed certificate obligation when the replayed
// family's own certificates cannot be proven either. Falls back to
// blaming the combined pass if each family is individually clean (an
// interaction bug).
Status AttributeFailure(Dag* dag, OpId before, const OptimizeOptions& options,
                        int pass, OpId combined_root,
                        const Status& combined_diag) {
  OpId current = before;
  for (const NamedRewrite& r : kNamedRewrites) {
    if (!(options.rewrites.*(r.flag))) continue;
    RewriteOptions solo;
    for (const NamedRewrite& off : kNamedRewrites) solo.*(off.flag) = false;
    solo.*(r.flag) = true;
    // Replay in plain checking mode: strict would reject (and so mask)
    // the very rewrite being hunted, and a test-only forced rejection
    // would misattribute it.
    solo.certify.mode = CertifyMode::kCheck;
    bool changed = false;
    std::vector<RewriteTrade> replay;
    current = RewriteOnce(dag, current, solo, &changed, &replay);
    Status diag = VerifyPlan(*dag, current);
    if (!diag.ok()) {
      std::string stage = "rewrite '" + std::string(r.name) + "'";
      for (const RewriteTrade& t : replay) {
        if (t.checked && !t.valid) {
          stage += "\nfailed obligation: " + t.diagnostic;
          break;
        }
      }
      return VerifyFailure(*dag, current, options, pass, stage, diag);
    }
  }
  return VerifyFailure(*dag, combined_root, options, pass,
                       "combined rewrite pass", combined_diag);
}

}  // namespace

Result<OpId> Optimize(Dag* dag, OpId root, const OptimizeOptions& options) {
  if (!options.enable) return root;
  if (options.verify_each_pass) {
    Status diag = VerifyPlan(*dag, root);
    if (!diag.ok()) {
      return VerifyFailure(*dag, root, options, 0,
                           "initial plan (compiler output)", diag);
    }
  }
  OpId current = root;
  for (int pass = 0; pass < options.max_passes; ++pass) {
    bool changed = false;
    OpId before = current;
    current = RewriteOnce(dag, current, options.rewrites, &changed,
                          options.trade_log);
    if (options.verify_each_pass) {
      Status diag = VerifyPlan(*dag, current);
      if (!diag.ok()) {
        return AttributeFailure(dag, before, options, pass, current, diag);
      }
    }
    if (!changed) break;
  }
  return current;
}

}  // namespace exrquy
