# Empty dependencies file for exrquy_xml.
# This may be replaced when dependencies are built.
