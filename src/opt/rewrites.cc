#include "opt/rewrites.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/symbols.h"
#include "opt/analyses.h"
#include "opt/join_plan.h"

namespace exrquy {
namespace {

class Rewriter {
 public:
  Rewriter(Dag* dag, const RewriteOptions& options,
           std::vector<RewriteTrade>* trades)
      : dag_(dag),
        options_(options),
        trades_(trades),
        certify_(ResolveCertify(options.certify)),
        props_(dag),
        cards_(dag),
        keys_(dag, &cards_),
        sem_(dag, &cards_),
        od_(dag, &props_, &cards_, &keys_, &sem_),
        raise_(dag, &cards_) {}

  OpId Run(OpId root, bool* changed) {
    icols_ = ComputeICols(*dag_, root,
                          {col::iter(), col::pos(), col::item()});
    if (options_.join_recognition) {
      join_specs_ = RecognizeJoins(*dag_, root);
    }
    if (certify_.mode != CertifyMode::kOff) {
      checker_ = std::make_unique<CertifyChecker>(
          dag_, root, certify_.force_reject_rule);
    }
    *changed = false;
    for (OpId id : dag_->ReachableFrom(root)) {
      OpId new_id = RewriteOp(id);
      map_[id] = new_id;
      if (new_id != id) {
        *changed = true;
        // Keep the provenance label for the Table 2 profile.
        dag_->SetProv(new_id, dag_->op(id).prov);
      }
    }
    return map_.at(root);
  }

 private:
  OpId Child(const Op& op, size_t i) const {
    return map_.at(op.children[i]);
  }

  const ColSet& Required(OpId old_id) { return icols_[old_id]; }

  // Starts a certificate for one rewrite instance, with the default
  // column witness: every column the original and the replacement both
  // produce must correspond exactly, row for row.
  RewriteCertificate Cert(OpId from, OpId to, const char* rule,
                          std::string detail, bool order_trade = false) {
    RewriteCertificate cert;
    cert.from = from;
    cert.to = to;
    cert.rule = rule;
    cert.detail = std::move(detail);
    cert.order_trade = order_trade;
    const Op& f = dag_->op(from);
    for (ColId c : dag_->op(to).schema) {
      if (f.HasCol(c)) cert.witness.push_back({c, c, true});
    }
    return cert;
  }

  // Validates (unless certification is off), records, and commits the
  // certificate: returns the replacement, or kNoOp when strict mode
  // rejects an unprovable certificate (the caller keeps the old
  // sub-plan).
  OpId Attempt(RewriteCertificate cert) {
    if (checker_ != nullptr) checker_->Check(&cert);
    bool rejected = certify_.mode == CertifyMode::kStrict &&
                    cert.checked && !cert.valid;
    OpId to = rejected ? kNoOp : cert.to;
    if (trades_ != nullptr) trades_->push_back(std::move(cert));
    return to;
  }

  // Projects `id` onto exactly `cols` (sorted), collapsing identities.
  OpId NarrowTo(OpId id, const ColSet& cols) {
    std::vector<std::pair<ColId, ColId>> proj;
    for (ColId c : cols) proj.emplace_back(c, c);
    return ProjectSimplified(id, proj);
  }

  // Builds Project(child, proj) with identity collapsing and
  // Project-over-Project composition.
  OpId ProjectSimplified(OpId child,
                         std::vector<std::pair<ColId, ColId>> proj) {
    const Op& c = dag_->op(child);
    if (c.kind == OpKind::kProject) {
      // Compose: resolve each old column through the child's mapping.
      std::vector<std::pair<ColId, ColId>> composed;
      for (const auto& [n, o] : proj) {
        ColId resolved = kNoCol;
        for (const auto& [cn, co] : c.proj) {
          if (cn == o) {
            resolved = co;
            break;
          }
        }
        EXRQUY_CHECK(resolved != kNoCol);
        composed.emplace_back(n, resolved);
      }
      return ProjectSimplified(c.children[0], std::move(composed));
    }
    // Identity?
    if (proj.size() == c.schema.size()) {
      bool identity = true;
      for (const auto& [n, o] : proj) {
        if (n != o) {
          identity = false;
          break;
        }
      }
      if (identity) {
        // Same column set (sizes equal, all names map to themselves, and
        // schema checks ensured uniqueness).
        bool covers = true;
        for (const auto& [n, o] : proj) {
          (void)o;
          if (!c.HasCol(n)) {
            covers = false;
            break;
          }
        }
        if (covers) return child;
      }
    }
    return dag_->Project(child, std::move(proj));
  }

  // Collects the location-step leaves under (nested) disjoint unions.
  // Returns false if any leaf is not a step.
  bool StepLeaves(OpId id, std::vector<OpId>* leaves) const {
    const Op& op = dag_->op(id);
    if (op.kind == OpKind::kUnion) {
      return StepLeaves(op.children[0], leaves) &&
             StepLeaves(op.children[1], leaves);
    }
    if (op.kind == OpKind::kStep) {
      leaves->push_back(id);
      return true;
    }
    return false;
  }

  // True if the two steps provably produce disjoint (iter, item) sets:
  // the same context input and axis but different element name tests.
  bool DisjointSteps(OpId a, OpId b) const {
    const Op& sa = dag_->op(a);
    const Op& sb = dag_->op(b);
    return sa.children[0] == sb.children[0] && sa.axis == sb.axis &&
           sa.axis != Axis::kAttribute &&
           sa.test.kind == NodeTest::Kind::kName &&
           sb.test.kind == NodeTest::Kind::kName &&
           sa.test.name != sb.test.name;
  }

  // The recognized value-join anchor rewrite: replace the whole EBV-
  // over-product-space region with a join on the compared item values.
  // Returns kNoOp when no join is emitted (or strict certification
  // rejects it).
  OpId TryJoin(OpId id, const JoinSpec& spec) {
    std::string detail;
    OpId repl = EmitJoin(dag_, spec, map_.at(spec.outer_items), options_,
                         &sem_, &cards_, &detail);
    if (repl == kNoOp) return kNoOp;
    RewriteCertificate cert = Cert(id, repl, "join_recognition",
                                   std::move(detail), /*order_trade=*/true);
    // The join re-rooting enumerates survivors in join order, not the
    // product space's iteration order.
    cert.rows_reordered = true;
    // An arbitrary-# return numbering produces legitimately different
    // rank values; exclude it from the exact-value witness.
    const Op& ra = dag_->op(repl);
    if (ra.kind == OpKind::kProject && !ra.children.empty() &&
        dag_->op(ra.children[0]).kind == OpKind::kRowId) {
      for (ColWitness& w : cert.witness) {
        if (w.after == col::pos()) w.exact = false;
      }
    }
    // Cite isolation and kind-gate facts for every value join in the
    // emitted region; the checker re-derives them and re-scans the
    // region on its own.
    for (OpId nid : dag_->ReachableFrom(repl)) {
      const Op& j = dag_->op(nid);
      bool theta = j.kind == OpKind::kThetaJoin;
      bool value_equi = j.kind == OpKind::kEquiJoin && j.value_join;
      if (!theta && !value_equi) continue;
      cert.cited.push_back(CiteScaffoldFree(j.children[0], j.col));
      cert.cited.push_back(CiteScaffoldFree(j.children[1], j.col2));
      cert.cited.push_back(CiteKindClass(
          j.children[0], j.col, sem_.Get(j.children[0]).KindOf(j.col)));
      cert.cited.push_back(CiteKindClass(
          j.children[1], j.col2, sem_.Get(j.children[1]).KindOf(j.col2)));
    }
    return Attempt(std::move(cert));
  }

  OpId RewriteOp(OpId id) {
    const Op& op = dag_->op(id);
    const ColSet& required = Required(id);

    // A sub-plan that provably produces no rows is an empty literal —
    // unless evaluating it could raise a dynamic error (an empty literal
    // never raises, so collapsing would change error semantics).
    if (options_.empty_short_circuit && op.kind != OpKind::kLit &&
        cards_.Get(id).max == 0 && !raise_.Get(id)) {
      RewriteCertificate cert =
          Cert(id, dag_->Empty(op.schema), "empty_short_circuit",
               "the sub-plan provably produces no rows and can never "
               "raise: it is the empty literal");
      cert.cited.push_back(CiteInterval(id, 0, 0));
      cert.cited.push_back(CiteNoRaise(id));
      OpId r = Attempt(std::move(cert));
      if (r != kNoOp) return r;
    }

    switch (op.kind) {
      case OpKind::kLit:
      case OpKind::kDoc:
        return id;

      case OpKind::kProject: {
        if (auto jit = join_specs_.find(id); jit != join_specs_.end()) {
          OpId repl = TryJoin(id, jit->second);
          if (repl != kNoOp) return repl;
        }
        std::vector<std::pair<ColId, ColId>> proj;
        std::vector<ColId> dropped;
        for (const auto& [n, o] : op.proj) {
          if (!options_.column_pruning || required.count(n) != 0) {
            proj.emplace_back(n, o);
          } else {
            dropped.push_back(n);
          }
        }
        if (proj.empty() && !op.proj.empty()) {
          proj.push_back(op.proj.front());  // keep the table's row count
          dropped.erase(std::remove(dropped.begin(), dropped.end(),
                                    op.proj.front().first),
                        dropped.end());
        }
        if (!dropped.empty()) {
          RewriteCertificate cert =
              Cert(id, ProjectSimplified(Child(op, 0), proj),
                   "column_pruning",
                   std::to_string(dropped.size()) +
                       " projection column(s) no consumer demands");
          for (ColId c : dropped) {
            cert.cited.push_back(CiteDeadColumn(id, c));
          }
          OpId r = Attempt(std::move(cert));
          if (r != kNoOp) return r;
          std::vector<std::pair<ColId, ColId>> full(op.proj);
          return ProjectSimplified(Child(op, 0), std::move(full));
        }
        return ProjectSimplified(Child(op, 0), std::move(proj));
      }

      case OpKind::kSelect:
        return dag_->Select(Child(op, 0), op.col);

      case OpKind::kEquiJoin:
        if (op.value_join) {
          return dag_->ValueJoin(Child(op, 0), Child(op, 1), op.col,
                                 op.col2);
        }
        return dag_->EquiJoin(Child(op, 0), Child(op, 1), op.col, op.col2);

      case OpKind::kThetaJoin:
        return dag_->ThetaJoin(Child(op, 0), Child(op, 1), op.col, op.fun,
                               op.col2);

      case OpKind::kCross: {
        OpId l = Child(op, 0);
        OpId r = Child(op, 1);
        if (options_.column_pruning) {
          // × with a one-row literal contributing no required column is
          // the identity.
          auto prunable = [&](OpId side) {
            const Op& s = dag_->op(side);
            if (s.kind != OpKind::kLit || s.lit.rows.size() != 1) {
              return false;
            }
            for (ColId c : s.schema) {
              if (required.count(c) != 0) return false;
            }
            return true;
          };
          auto prune = [&](OpId keep, OpId lit) {
            RewriteCertificate cert =
                Cert(id, keep, "column_pruning",
                     "one-row literal attaches no demanded column: the "
                     "product is the identity");
            for (ColId c : dag_->op(lit).schema) {
              cert.cited.push_back(CiteDeadColumn(id, c));
            }
            return Attempt(std::move(cert));
          };
          if (prunable(r)) {
            OpId res = prune(l, r);
            if (res != kNoOp) return res;
          } else if (prunable(l)) {
            OpId res = prune(r, l);
            if (res != kNoOp) return res;
          }
        }
        return dag_->Cross(l, r);
      }

      case OpKind::kUnion: {
        OpId l = Child(op, 0);
        OpId r = Child(op, 1);
        // Empty branches vanish.
        auto is_empty_lit = [&](OpId side) {
          const Op& s = dag_->op(side);
          return s.kind == OpKind::kLit && s.lit.rows.empty();
        };
        ColSet cols = required;
        if (cols.empty()) {
          for (ColId c : op.schema) cols.insert(c);
        }
        std::vector<ColId> narrowed_away;
        for (ColId c : op.schema) {
          if (cols.count(c) == 0) narrowed_away.push_back(c);
        }
        auto drop_branch = [&](OpId keep, OpId empty, const char* side) {
          RewriteCertificate cert =
              Cert(id, NarrowTo(keep, cols), "union_empty_branch",
                   std::string("the ") + side +
                       " branch is statically empty: the union is its "
                       "other branch");
          cert.cited.push_back(CiteInterval(empty, 0, 0));
          for (ColId c : narrowed_away) {
            cert.cited.push_back(CiteDeadColumn(id, c));
          }
          return Attempt(std::move(cert));
        };
        if (is_empty_lit(l)) {
          OpId res = drop_branch(r, l, "left");
          if (res != kNoOp) return res;
        } else if (is_empty_lit(r)) {
          OpId res = drop_branch(l, r, "right");
          if (res != kNoOp) return res;
        }
        // Narrow both branches to the required columns so their schemas
        // stay aligned after pruning below them.
        if (!narrowed_away.empty()) {
          RewriteCertificate cert =
              Cert(id, dag_->Union(NarrowTo(l, cols), NarrowTo(r, cols)),
                   "column_pruning",
                   "union branches narrowed to the demanded columns");
          for (ColId c : narrowed_away) {
            cert.cited.push_back(CiteDeadColumn(id, c));
          }
          OpId res = Attempt(std::move(cert));
          if (res != kNoOp) return res;
          ColSet all;
          for (ColId c : op.schema) all.insert(c);
          return dag_->Union(NarrowTo(l, all), NarrowTo(r, all));
        }
        return dag_->Union(NarrowTo(l, cols), NarrowTo(r, cols));
      }

      case OpKind::kDifference:
        return dag_->Difference(Child(op, 0), Child(op, 1), op.keys);
      case OpKind::kSemiJoin:
        return dag_->SemiJoin(Child(op, 0), Child(op, 1), op.keys);

      case OpKind::kDistinct: {
        OpId c = Child(op, 0);
        if (options_.distinct_elimination) {
          std::vector<OpId> leaves;
          if (StepLeaves(c, &leaves)) {
            bool all_disjoint = true;
            for (size_t i = 0; i < leaves.size() && all_disjoint; ++i) {
              for (size_t j = i + 1; j < leaves.size(); ++j) {
                if (leaves[i] != leaves[j] &&
                    !DisjointSteps(leaves[i], leaves[j])) {
                  all_disjoint = false;
                  break;
                }
                if (leaves[i] == leaves[j]) {
                  all_disjoint = false;  // same step twice: duplicates
                  break;
                }
              }
            }
            if (all_disjoint && leaves.size() >= 1) {
              // Steps are duplicate-free and pairwise disjoint: '|' has
              // become ','.
              RewriteCertificate cert =
                  Cert(id, c, "distinct_elimination",
                       "the input is a union of pairwise-disjoint "
                       "location steps: '|' has become ','");
              for (OpId leaf : leaves) {
                cert.cited.push_back(CiteStructural(leaf, "disjoint step"));
              }
              OpId res = Attempt(std::move(cert));
              if (res != kNoOp) return res;
            }
          }
        }
        if (options_.distinct_by_keys) {
          // A duplicate-free column makes whole rows pairwise distinct,
          // and a single-row input trivially has no duplicates.
          if (cards_.Get(c).max <= 1) {
            RewriteCertificate cert =
                Cert(id, c, "distinct_by_keys",
                     "the input has at most one row: no duplicates "
                     "exist");
            cert.cited.push_back(CiteInterval(c, 0, 1));
            OpId res = Attempt(std::move(cert));
            if (res != kNoOp) return res;
          } else if (!keys_.Get(c).empty()) {
            ColId k = *keys_.Get(c).begin();
            RewriteCertificate cert =
                Cert(id, c, "distinct_by_keys",
                     "column '" + ColName(k) +
                         "' is a key of the input: whole rows are "
                         "pairwise distinct");
            cert.cited.push_back(CiteKey(c, k));
            OpId res = Attempt(std::move(cert));
            if (res != kNoOp) return res;
          }
        }
        return dag_->Distinct(c);
      }

      case OpKind::kRowNum: {
        OpId c = Child(op, 0);
        if (options_.column_pruning && required.count(op.col) == 0) {
          RewriteCertificate cert =
              Cert(id, c, "column_pruning",
                   "the rank column is never consumed: the blocking "
                   "sort is dead");
          cert.cited.push_back(CiteDeadColumn(id, op.col));
          OpId res = Attempt(std::move(cert));
          if (res != kNoOp) return res;
        }
        if (options_.rownum_by_keys &&
            (cards_.Get(c).max <= 1 ||
             (op.part != kNoCol && keys_.Get(c).count(op.part) != 0))) {
          // Every partition holds at most one row (the partition column
          // is a key, or the input is a single row): each row ranks 1
          // and the blocking sort vanishes.
          bool one_row = cards_.Get(c).max <= 1;
          RewriteCertificate cert = Cert(
              id, dag_->AttachConst(c, op.col, Value::Int(1)),
              "keyed-partition",
              one_row
                  ? "the input has at most one row: every rank is 1"
                  : "partition column '" + ColName(op.part) +
                        "' is a key of the input: every partition holds "
                        "one row and every rank is 1",
              /*order_trade=*/true);
          if (one_row) {
            cert.cited.push_back(CiteInterval(c, 0, 1));
          } else {
            cert.cited.push_back(CiteKey(c, op.part));
          }
          OpId res = Attempt(std::move(cert));
          if (res != kNoOp) return res;
        }
        if (options_.rownum_by_od && op.part != kNoCol &&
            sem_.Get(c).unit_groups.count(op.part) != 0) {
          // Semantic typing proves the partition column duplicate-free
          // (a unit group, e.g. below fn:exactly-one): singleton groups
          // again, through a source the key domain cannot see.
          RewriteCertificate cert =
              Cert(id, dag_->AttachConst(c, op.col, Value::Int(1)),
                   "semantic-type",
                   "partition column '" + ColName(op.part) +
                       "' is duplicate-free by semantic typing (unit "
                       "group): every rank is 1",
                   /*order_trade=*/true);
          cert.cited.push_back(CiteUnitGroup(c, op.part));
          OpId res = Attempt(std::move(cert));
          if (res != kNoOp) return res;
        }
        std::vector<SortKey> order = op.order;
        ColId part = op.part;
        std::vector<ColId> dropped_criteria;
        bool part_dropped = false;
        if (options_.weaken_rownum) {
          const ColProps& p = props_.Get(c);
          // Constant criteria carry no order information.
          order.erase(std::remove_if(order.begin(), order.end(),
                                     [&](const SortKey& k) {
                                       if (p.constant.count(k.col) != 0) {
                                         dropped_criteria.push_back(k.col);
                                         return true;
                                       }
                                       return false;
                                     }),
                      order.end());
          if (part != kNoCol && p.constant.count(part) != 0) {
            part = kNoCol;  // all rows in one group
            part_dropped = true;
          }
          // Ordering led by an arbitrary-order column is arbitrary: with
          // no meaningful grouping left, % degenerates to # (Section 7).
          bool arbitrary_order =
              order.empty() ||
              p.arbitrary.count(order.front().col) != 0;
          if (arbitrary_order && part == kNoCol) {
            RewriteCertificate cert =
                Cert(id, dag_->RowId(c, op.col), "arbitrary-order",
                     "the sort criteria are constant or descend from "
                     "arbitrary # numbering: any stable numbering "
                     "satisfies them",
                     /*order_trade=*/true);
            for (ColId dc : dropped_criteria) {
              cert.cited.push_back(CiteConstant(c, dc));
            }
            if (part_dropped) cert.cited.push_back(CiteConstant(c, op.part));
            if (!order.empty()) {
              cert.cited.push_back(CiteArbitrary(c, order.front().col));
            }
            if (cert.cited.empty()) {
              cert.cited.push_back(
                  CiteStructural(id, "no order or grouping criteria"));
            }
            // The arbitrary numbering's values legitimately differ from
            // the original ranks.
            for (ColWitness& w : cert.witness) {
              if (w.after == op.col) w.exact = false;
            }
            OpId res = Attempt(std::move(cert));
            if (res != kNoOp) return res;
          }
        }
        if (options_.rownum_by_od &&
            (part == kNoCol ||
             props_.Get(c).constant.count(part) != 0) &&
            od_.Covers(c, order)) {
          // The input provably already realizes the requested order: the
          // stable sort is the identity permutation and the ranks are
          // 1..n in physical row order — exactly what a positional #
          // produces. The positional marking keeps the column out of the
          // arbitrary-order domain (its values remain order-bearing).
          RewriteCertificate cert = Cert(
              id, dag_->RowId(c, op.col, /*positional=*/true),
              "order-dependency",
              "requested order " + OrderFact{order, false}.ToString() +
                  " is already realized by the input (sorted " +
                  od_.Get(c).ToString() +
                  "): the sort is the identity and the ranks are the row "
                  "positions",
              /*order_trade=*/true);
          cert.cited.push_back(CiteSorted(c, op.order));
          if (part != kNoCol) cert.cited.push_back(CiteConstant(c, part));
          OpId res = Attempt(std::move(cert));
          if (res != kNoOp) return res;
        }
        if (order.size() != op.order.size() || part != op.part) {
          RewriteCertificate cert =
              Cert(id, dag_->RowNum(c, op.col, order, part),
                   "weaken_rownum",
                   std::to_string(dropped_criteria.size() +
                                  (part_dropped ? 1 : 0)) +
                       " constant order/grouping criteria dropped");
          for (ColId dc : dropped_criteria) {
            cert.cited.push_back(CiteConstant(c, dc));
          }
          if (part_dropped) cert.cited.push_back(CiteConstant(c, op.part));
          OpId res = Attempt(std::move(cert));
          if (res != kNoOp) return res;
          std::vector<SortKey> orig = op.order;
          return dag_->RowNum(c, op.col, std::move(orig), op.part);
        }
        return dag_->RowNum(c, op.col, std::move(order), part);
      }

      case OpKind::kRowId: {
        OpId c = Child(op, 0);
        if (options_.column_pruning && required.count(op.col) == 0) {
          RewriteCertificate cert =
              Cert(id, c, "column_pruning",
                   "the # column is never consumed: the numbering is "
                   "dead");
          cert.cited.push_back(CiteDeadColumn(id, op.col));
          OpId res = Attempt(std::move(cert));
          if (res != kNoOp) return res;
        }
        return dag_->RowId(c, op.col, op.positional);
      }

      case OpKind::kFun: {
        OpId c = Child(op, 0);
        if (options_.column_pruning && required.count(op.col) == 0) {
          RewriteCertificate cert =
              Cert(id, c, "column_pruning",
                   "the ⊕ result column is never consumed: the "
                   "computation is dead");
          cert.cited.push_back(CiteDeadColumn(id, op.col));
          OpId res = Attempt(std::move(cert));
          if (res != kNoOp) return res;
        }
        return dag_->Fun(c, op.fun, op.col, op.args);
      }

      case OpKind::kAggr:
        if (op.aggr == AggrKind::kStrJoin) {
          // Preserves the separator (op.name).
          return dag_->AggrStrJoin(Child(op, 0), op.col, op.col2, op.part,
                                   op.keys.empty() ? kNoCol : op.keys[0],
                                   op.name);
        }
        return dag_->Aggr(Child(op, 0), op.aggr, op.col, op.col2, op.part,
                          op.keys.empty() ? kNoCol : op.keys[0]);

      case OpKind::kStep: {
        OpId c = Child(op, 0);
        if (options_.step_merging) {
          const Op& cs = dag_->op(c);
          if (cs.kind == OpKind::kStep &&
              cs.axis == Axis::kDescendantOrSelf &&
              cs.test.kind == NodeTest::Kind::kAnyKind &&
              (op.axis == Axis::kChild || op.axis == Axis::kDescendant ||
               op.axis == Axis::kDescendantOrSelf)) {
            Axis merged = op.axis == Axis::kDescendantOrSelf
                              ? Axis::kDescendantOrSelf
                              : Axis::kDescendant;
            RewriteCertificate cert =
                Cert(id, dag_->Step(cs.children[0], merged, op.test),
                     "step_merging",
                     "descendant-or-self::node() absorbed into the "
                     "following step");
            cert.cited.push_back(
                CiteStructural(c, "descendant-or-self::node() step"));
            OpId res = Attempt(std::move(cert));
            if (res != kNoOp) return res;
          }
        }
        return dag_->Step(c, op.axis, op.test);
      }

      case OpKind::kRange:
        return dag_->Range(Child(op, 0), op.col, op.col2);

      case OpKind::kCardCheck:
        return dag_->CardCheck(Child(op, 0), Child(op, 1), op.min_card,
                               op.max_card, op.name);

      case OpKind::kElem:
      case OpKind::kAttr:
      case OpKind::kTextNode: {
        // Constructors are identity-bearing: rebuild only if a child
        // changed (keeping the same constructor id).
        if (Child(op, 0) == op.children[0] &&
            Child(op, 1) == op.children[1]) {
          return id;
        }
        Op copy = op;
        copy.children = {Child(op, 0), Child(op, 1)};
        copy.schema.clear();
        return dag_->Add(std::move(copy));
      }
    }
    EXRQUY_CHECK(false);
    return id;
  }

  Dag* dag_;
  const RewriteOptions& options_;
  std::vector<RewriteTrade>* trades_;
  CertifySettings certify_;
  std::unique_ptr<CertifyChecker> checker_;
  PropertyTracker props_;
  CardTracker cards_;
  KeyTracker keys_;      // depends on cards_
  SemTypeTracker sem_;   // depends on cards_
  OrderTracker od_;      // depends on props_, cards_, keys_, sem_
  RaiseTracker raise_;   // depends on cards_
  std::unordered_map<OpId, ColSet> icols_;
  std::unordered_map<OpId, OpId> map_;
  std::map<OpId, JoinSpec> join_specs_;
};

}  // namespace

OpId RewriteOnce(Dag* dag, OpId root, const RewriteOptions& options,
                 bool* changed, std::vector<RewriteTrade>* trades) {
  Rewriter rewriter(dag, options, trades);
  return rewriter.Run(root, changed);
}

}  // namespace exrquy
