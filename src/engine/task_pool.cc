#include "engine/task_pool.h"

#include <atomic>
#include <memory>

namespace exrquy {

TaskPool::TaskPool(size_t threads) : target_(threads <= 1 ? 0 : threads) {}

void TaskPool::EnsureWorkersLocked() {
  if (spawned_) return;
  spawned_ = true;
  workers_.reserve(target_);
  for (size_t i = 0; i < target_; ++i) {
    // Workers block on mu_ until the caller releases it — safe to spawn
    // while holding the lock.
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void TaskPool::Submit(std::function<void()> fn) {
  if (target_ == 0) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    EnsureWorkersLocked();
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void TaskPool::WorkerLoop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    fn();
  }
}

namespace {

// Shared state of one ParallelFor: workers and the caller race on `next`;
// the slot that finishes index n-1 is not necessarily the one that
// observes done == n, hence the condition variable.
struct ForState {
  explicit ForState(size_t n, const std::function<void(size_t)>& f)
      : total(n), fn(f) {}

  const size_t total;
  std::function<void(size_t)> fn;  // copy: helpers may start late
  std::atomic<size_t> next{0};
  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;

  // Runs indices until none remain; returns the count it executed.
  void Drain() {
    size_t ran = 0;
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) break;
      fn(i);
      ++ran;
    }
    if (ran > 0) {
      std::lock_guard<std::mutex> lock(mu);
      done += ran;
      if (done == total) cv.notify_all();
    }
  }
};

}  // namespace

void TaskPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (target_ == 0 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<ForState>(n, fn);
  size_t helpers = std::min(target_, n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state] { state->Drain(); });
  }
  state->Drain();
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done == state->total; });
}

}  // namespace exrquy
