// Per-operator profile of one XMark query over a generated document:
//
//   ./profile_query Q9 [scale]
//
// Executes the query twice (warm plan is irrelevant here — a plain
// Session re-plans, but compile time is reported separately) and prints
// the operator metrics sorted by kernel wall time, plus the by-kind
// rollup. The quickest way to see which operator a slow query actually
// spends its time in.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "api/session.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: profile_query <Qname> [scale]\n");
    return 2;
  }
  double scale = argc > 2 ? std::atof(argv[2]) : 0.016;
  exrquy::Session session;
  exrquy::XMarkOptions xmark;
  xmark.scale = scale;
  if (!session.LoadDocument("auction.xml", exrquy::GenerateXMark(xmark))
           .ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  exrquy::QueryOptions options;
  options.profile = true;
  exrquy::Result<exrquy::QueryResult> r =
      session.Execute(exrquy::XMarkQueryText(argv[1]), options);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("%s at scale %.3f: compile %.2f ms, execute %.2f ms\n\n",
              argv[1], scale, r->compile_ms, r->execute_ms);
  std::vector<exrquy::Profile::OpMetrics> ops = r->profile.ops();
  std::sort(ops.begin(), ops.end(),
            [](const auto& a, const auto& b) { return a.ms > b.ms; });
  std::printf("%5s  %-12s %8s %10s %10s  %s\n", "op", "kind", "ms",
              "in_rows", "out_rows", "prov");
  for (size_t i = 0; i < ops.size() && i < 25; ++i) {
    const auto& m = ops[i];
    std::printf("%5d  %-12s %8.3f %10zu %10zu  %.50s\n",
                static_cast<int>(m.op), m.kind.c_str(), m.ms, m.in_rows,
                m.out_rows, m.prov.c_str());
  }
  std::printf("\nby kind:\n");
  for (const auto& [kind, b] : r->profile.by_kind()) {
    std::printf("  %-12s %8.3f ms  %6zu ops  %10zu rows\n", kind.c_str(),
                b.ms, b.ops, b.out_rows);
  }
  return 0;
}
