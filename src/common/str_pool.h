// String interning pool. Element/attribute names, text contents, and
// string items are stored once and referred to by dense 32-bit ids, which
// keeps the columnar engine's values fixed-width (MonetDB does the same
// with its string heaps).
#ifndef EXRQUY_COMMON_STR_POOL_H_
#define EXRQUY_COMMON_STR_POOL_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace exrquy {

using StrId = uint32_t;

class StrPool {
 public:
  StrPool();

  StrPool(const StrPool&) = delete;
  StrPool& operator=(const StrPool&) = delete;

  // Interns `s`, returning its dense id. Identical strings share an id.
  StrId Intern(std::string_view s);

  // Returns the string for `id`. The reference is stable for the lifetime
  // of the pool.
  const std::string& Get(StrId id) const;

  // Id of the empty string (always 0).
  static constexpr StrId kEmpty = 0;

  size_t size() const { return strings_.size(); }

 private:
  // deque: element addresses are stable under growth, so the string_view
  // keys of index_ (which alias the stored strings) never dangle.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, StrId> index_;
};

}  // namespace exrquy

#endif  // EXRQUY_COMMON_STR_POOL_H_
