// Deterministic XMark-style auction document generator (Schmidt et al.,
// "XMark: A Benchmark for XML Data Management", VLDB 2002). Reproduces
// the structural features the twenty benchmark queries exercise:
// regions/items (with category references and "gold"-bearing
// descriptions), categories, people (ids, optional income/homepage,
// interests), open auctions (bidders with increases, initial/reserve),
// and closed auctions (buyer/seller/price and the deeply nested
// parlist/listitem/.../emph/keyword annotations of Q15/Q16).
//
// `scale` follows XMark's scale factor: scale 1.0 corresponds to the
// original ~100 MB / 25,500-person document; the defaults target
// CI-class machines (documented substitution in DESIGN.md).
#ifndef EXRQUY_XMARK_GENERATOR_H_
#define EXRQUY_XMARK_GENERATOR_H_

#include <cstdint>
#include <string>

namespace exrquy {

struct XMarkOptions {
  double scale = 0.005;
  uint64_t seed = 42;
};

std::string GenerateXMark(const XMarkOptions& options = {});

}  // namespace exrquy

#endif  // EXRQUY_XMARK_GENERATOR_H_
