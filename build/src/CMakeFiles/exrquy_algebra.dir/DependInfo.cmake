
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/algebra.cc" "src/CMakeFiles/exrquy_algebra.dir/algebra/algebra.cc.o" "gcc" "src/CMakeFiles/exrquy_algebra.dir/algebra/algebra.cc.o.d"
  "/root/repo/src/algebra/dot.cc" "src/CMakeFiles/exrquy_algebra.dir/algebra/dot.cc.o" "gcc" "src/CMakeFiles/exrquy_algebra.dir/algebra/dot.cc.o.d"
  "/root/repo/src/algebra/stats.cc" "src/CMakeFiles/exrquy_algebra.dir/algebra/stats.cc.o" "gcc" "src/CMakeFiles/exrquy_algebra.dir/algebra/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/exrquy_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exrquy_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
