file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rewrites.dir/bench_ablation_rewrites.cc.o"
  "CMakeFiles/bench_ablation_rewrites.dir/bench_ablation_rewrites.cc.o.d"
  "bench_ablation_rewrites"
  "bench_ablation_rewrites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rewrites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
