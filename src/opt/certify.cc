#include "opt/certify.h"

#include <cstdlib>

namespace exrquy {
namespace {

std::string AtOp(OpId op) { return "@op" + std::to_string(op); }

std::string RowBound(uint64_t n) {
  return n == kUnboundedRows ? "inf" : std::to_string(n);
}

// The proof obligation each rewrite family must discharge. Unknown
// families fail closed ("unknown-family").
const char* ObligationFor(const std::string& rule) {
  if (rule == "column_pruning") return "dead-column";
  if (rule == "weaken_rownum") return "constant-criteria";
  if (rule == "arbitrary-order") return "arbitrary-order";
  if (rule == "distinct_elimination") return "disjoint-steps";
  if (rule == "step_merging") return "step-shape";
  if (rule == "distinct_by_keys") return "key-distinct";
  if (rule == "empty_short_circuit") return "empty-plan";
  if (rule == "union_empty_branch") return "empty-branch";
  if (rule == "keyed-partition") return "keyed-partition";
  if (rule == "semantic-type") return "unit-group";
  if (rule == "order-dependency") return "sorted-prefix";
  if (rule == "join_recognition") return "join-isolation";
  return "unknown-family";
}

// Independent restatements of the distinct-elimination shape conditions
// (rewrites.cc keeps its own copy: the checker must not trust the code
// it validates).
bool StepLeaves(const Dag& dag, OpId id, std::vector<OpId>* leaves) {
  const Op& op = dag.op(id);
  if (op.kind == OpKind::kUnion) {
    return StepLeaves(dag, op.children[0], leaves) &&
           StepLeaves(dag, op.children[1], leaves);
  }
  if (op.kind == OpKind::kStep) {
    leaves->push_back(id);
    return true;
  }
  return false;
}

bool DisjointSteps(const Dag& dag, OpId a, OpId b) {
  const Op& sa = dag.op(a);
  const Op& sb = dag.op(b);
  return sa.children[0] == sb.children[0] && sa.axis == sb.axis &&
         sa.axis != Axis::kAttribute &&
         sa.test.kind == NodeTest::Kind::kName &&
         sb.test.kind == NodeTest::Kind::kName &&
         sa.test.name != sb.test.name;
}

}  // namespace

CertifySettings ResolveCertify(const CertifySettings& options) {
  CertifySettings r = options;
  if (r.mode != CertifyMode::kDefault) return r;
  r.mode = CertifyMode::kCheck;
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env lookup at resolve
  const char* env = std::getenv("EXRQUY_CERTIFY");
  if (env == nullptr) return r;
  std::string v(env);
  if (v == "off" || v == "0") {
    r.mode = CertifyMode::kOff;
  } else if (v == "strict") {
    r.mode = CertifyMode::kStrict;
  } else if (v == "spot") {
    r.mode = CertifyMode::kStrict;
    r.spot_check = true;
  }  // "on", "check", anything else: the default checking mode
  return r;
}

const char* CitedFactKindName(CitedFact::Kind kind) {
  switch (kind) {
    case CitedFact::Kind::kKey:
      return "key";
    case CitedFact::Kind::kConstant:
      return "constant";
    case CitedFact::Kind::kArbitrary:
      return "arbitrary-order";
    case CitedFact::Kind::kInterval:
      return "interval";
    case CitedFact::Kind::kSorted:
      return "sorted-prefix";
    case CitedFact::Kind::kUnitGroup:
      return "unit-group";
    case CitedFact::Kind::kNoRaise:
      return "no-raise";
    case CitedFact::Kind::kKindClass:
      return "kind-class";
    case CitedFact::Kind::kScaffoldFree:
      return "scaffold-free";
    case CitedFact::Kind::kDeadColumn:
      return "dead-column";
    case CitedFact::Kind::kStructural:
      return "structural";
  }
  return "?";
}

CitedFact CiteKey(OpId op, ColId col) {
  CitedFact f;
  f.kind = CitedFact::Kind::kKey;
  f.op = op;
  f.col = col;
  f.text = "key(" + ColName(col) + ")" + AtOp(op);
  return f;
}

CitedFact CiteConstant(OpId op, ColId col) {
  CitedFact f;
  f.kind = CitedFact::Kind::kConstant;
  f.op = op;
  f.col = col;
  f.text = "constant(" + ColName(col) + ")" + AtOp(op);
  return f;
}

CitedFact CiteArbitrary(OpId op, ColId col) {
  CitedFact f;
  f.kind = CitedFact::Kind::kArbitrary;
  f.op = op;
  f.col = col;
  f.text = "arbitrary-order(" + ColName(col) + ")" + AtOp(op);
  return f;
}

CitedFact CiteInterval(OpId op, uint64_t min_rows, uint64_t max_rows) {
  CitedFact f;
  f.kind = CitedFact::Kind::kInterval;
  f.op = op;
  f.min_rows = min_rows;
  f.max_rows = max_rows;
  f.text = "rows[" + RowBound(min_rows) + "," + RowBound(max_rows) + "]" +
           AtOp(op);
  return f;
}

CitedFact CiteSorted(OpId op, std::vector<SortKey> order) {
  CitedFact f;
  f.kind = CitedFact::Kind::kSorted;
  f.op = op;
  f.text = "sorted " + OrderFact{order, false}.ToString() + AtOp(op);
  f.order = std::move(order);
  return f;
}

CitedFact CiteUnitGroup(OpId op, ColId col) {
  CitedFact f;
  f.kind = CitedFact::Kind::kUnitGroup;
  f.op = op;
  f.col = col;
  f.text = "unit-group(" + ColName(col) + ")" + AtOp(op);
  return f;
}

CitedFact CiteNoRaise(OpId op) {
  CitedFact f;
  f.kind = CitedFact::Kind::kNoRaise;
  f.op = op;
  f.text = "no-raise" + AtOp(op);
  return f;
}

CitedFact CiteKindClass(OpId op, ColId col, ItemKind kind_class) {
  CitedFact f;
  f.kind = CitedFact::Kind::kKindClass;
  f.op = op;
  f.col = col;
  f.kind_class = kind_class;
  f.text = "kind(" + ColName(col) + ")<=" + ItemKindName(kind_class) +
           AtOp(op);
  return f;
}

CitedFact CiteScaffoldFree(OpId op, ColId col) {
  CitedFact f;
  f.kind = CitedFact::Kind::kScaffoldFree;
  f.op = op;
  f.col = col;
  f.text = "scaffold-free(" + ColName(col) + ")" + AtOp(op);
  return f;
}

CitedFact CiteDeadColumn(OpId op, ColId col) {
  CitedFact f;
  f.kind = CitedFact::Kind::kDeadColumn;
  f.op = op;
  f.col = col;
  f.text = "dead(" + ColName(col) + ")" + AtOp(op);
  return f;
}

CitedFact CiteStructural(OpId op, std::string text) {
  CitedFact f;
  f.kind = CitedFact::Kind::kStructural;
  f.op = op;
  f.text = std::move(text) + AtOp(op);
  return f;
}

CertifyChecker::CertifyChecker(const Dag* dag, OpId pass_root,
                               std::string force_reject_rule)
    : dag_(dag),
      pass_root_(pass_root),
      force_reject_rule_(std::move(force_reject_rule)),
      audit_(dag) {}

void CertifyChecker::EnsureLive() {
  if (live_ready_) return;
  ColSet seed;
  for (ColId c : {col::iter(), col::pos(), col::item()}) {
    if (dag_->op(pass_root_).HasCol(c)) seed.insert(c);
  }
  live_ = DeriveLiveColumns(*dag_, pass_root_, seed);
  live_ready_ = true;
}

bool CertifyChecker::Fail(RewriteCertificate* cert, const char* obligation,
                          const std::string& detail) {
  cert->valid = false;
  cert->obligation = obligation;
  cert->diagnostic = "certify: [" + std::string(obligation) + "] " +
                     cert->rule + " op " + std::to_string(cert->from) +
                     " -> op " + std::to_string(cert->to) + ": " + detail;
  return false;
}

bool CertifyChecker::ValidateCited(RewriteCertificate* cert,
                                   const char* obligation) {
  for (const CitedFact& f : cert->cited) {
    auto bad = [&](const std::string& why) {
      return Fail(cert, obligation,
                  "cited " + std::string(CitedFactKindName(f.kind)) +
                      " fact '" + f.text + "' " + why);
    };
    switch (f.kind) {
      case CitedFact::Kind::kKey:
        if (audit_.Get(f.op).keys.count(f.col) == 0) {
          return bad("is not derivable: the column is not provably "
                     "duplicate-free");
        }
        break;
      case CitedFact::Kind::kConstant:
        if (audit_.Get(f.op).constant.count(f.col) == 0) {
          return bad("is not derivable: the column is not provably "
                     "constant");
        }
        break;
      case CitedFact::Kind::kArbitrary:
        if (audit_.Get(f.op).arbitrary.count(f.col) == 0) {
          return bad("is not derivable: the column is not provably "
                     "order-meaningless");
        }
        break;
      case CitedFact::Kind::kInterval: {
        const OpFacts& d = audit_.Get(f.op);
        if (f.min_rows > d.min_rows || f.max_rows < d.max_rows) {
          return bad("is not derivable: derived bounds [" +
                     RowBound(d.min_rows) + "," + RowBound(d.max_rows) +
                     "] are not contained in the cited interval");
        }
        break;
      }
      case CitedFact::Kind::kSorted:
        if (!SortedCovers(audit_.Get(f.op), f.order)) {
          return bad("is not derivable: no derived sorted-prefix fact "
                     "covers the cited order");
        }
        break;
      case CitedFact::Kind::kUnitGroup:
        if (audit_.Get(f.op).keys.count(f.col) == 0) {
          return bad("is not derivable: the column is not provably "
                     "duplicate-free");
        }
        break;
      case CitedFact::Kind::kNoRaise:
        if (audit_.MayRaise(f.op)) {
          return bad("is not derivable: evaluating the operator may "
                     "raise a dynamic error");
        }
        break;
      case CitedFact::Kind::kKindClass:
        if (!KindLe(KindAt(audit_.Get(f.op), f.col), f.kind_class)) {
          return bad("is not derivable: the derived kind '" +
                     std::string(ItemKindName(
                         KindAt(audit_.Get(f.op), f.col))) +
                     "' exceeds the cited class");
        }
        break;
      case CitedFact::Kind::kScaffoldFree:
        if (audit_.Scaffolding(f.op).count(f.col) != 0) {
          return bad("is not derivable: the column carries iteration/"
                     "order scaffolding");
        }
        break;
      case CitedFact::Kind::kDeadColumn: {
        EnsureLive();
        auto it = live_.find(f.op);
        if (it == live_.end()) {
          return bad("names an operator outside the pre-pass region");
        }
        if (it->second.count(f.col) != 0) {
          return bad("is not derivable: the reference liveness walk "
                     "demands the column");
        }
        break;
      }
      case CitedFact::Kind::kStructural:
        break;  // re-checked by the family template below
    }
  }
  return true;
}

bool CertifyChecker::CheckFamily(RewriteCertificate* cert) {
  const char* ob = ObligationFor(cert->rule);
  const Op& from = dag_->op(cert->from);
  const Op& to = dag_->op(cert->to);

  if (cert->rule == "column_pruning") {
    size_t dead = 0;
    for (const CitedFact& f : cert->cited) {
      if (f.kind != CitedFact::Kind::kDeadColumn) {
        return Fail(cert, ob, "unexpected cited fact '" + f.text + "'");
      }
      if (f.op != cert->from) {
        return Fail(cert, ob,
                    "cited fact '" + f.text +
                        "' does not name the rewritten operator");
      }
      ++dead;
    }
    if (dead == 0) {
      return Fail(cert, ob, "no dropped column is cited");
    }
    return true;
  }

  if (cert->rule == "union_empty_branch") {
    if (from.kind != OpKind::kUnion) {
      return Fail(cert, ob, "the rewritten operator is not a Union");
    }
    bool branch_ok = false;
    for (const CitedFact& f : cert->cited) {
      if (f.kind == CitedFact::Kind::kDeadColumn && f.op != cert->from) {
        return Fail(cert, ob,
                    "cited fact '" + f.text +
                        "' does not name the rewritten operator");
      }
      if (f.kind != CitedFact::Kind::kInterval) continue;
      const Op& branch = dag_->op(f.op);
      if (f.max_rows != 0) {
        return Fail(cert, ob,
                    "cited interval '" + f.text + "' does not pin the "
                    "branch to zero rows");
      }
      if (branch.kind != OpKind::kLit || !branch.lit.rows.empty()) {
        return Fail(cert, ob,
                    "dropped branch op " + std::to_string(f.op) +
                        " is not an empty literal");
      }
      branch_ok = true;
    }
    if (!branch_ok) {
      return Fail(cert, ob, "no empty branch is cited");
    }
    return true;
  }

  if (cert->rule == "distinct_elimination") {
    if (from.kind != OpKind::kDistinct) {
      return Fail(cert, ob, "the rewritten operator is not a Distinct");
    }
    std::vector<OpId> leaves;
    if (!StepLeaves(*dag_, cert->to, &leaves) || leaves.empty()) {
      return Fail(cert, ob,
                  "the replacement is not a (union of) location steps");
    }
    for (size_t i = 0; i < leaves.size(); ++i) {
      for (size_t j = i + 1; j < leaves.size(); ++j) {
        if (leaves[i] == leaves[j]) {
          return Fail(cert, ob,
                      "step op " + std::to_string(leaves[i]) +
                          " occurs twice: the union can duplicate rows");
        }
        if (!DisjointSteps(*dag_, leaves[i], leaves[j])) {
          return Fail(cert, ob,
                      "steps op " + std::to_string(leaves[i]) + " and op " +
                          std::to_string(leaves[j]) +
                          " are not provably disjoint");
        }
      }
    }
    return true;
  }

  if (cert->rule == "distinct_by_keys") {
    if (from.kind != OpKind::kDistinct) {
      return Fail(cert, ob, "the rewritten operator is not a Distinct");
    }
    for (const CitedFact& f : cert->cited) {
      bool licensing =
          (f.kind == CitedFact::Kind::kKey ||
           (f.kind == CitedFact::Kind::kInterval && f.max_rows <= 1));
      if (licensing && f.op == cert->to) return true;
    }
    return Fail(cert, ob,
                "no key or at-most-one-row fact is cited for the "
                "before input");
  }

  if (cert->rule == "empty_short_circuit") {
    bool interval = false;
    bool no_raise = false;
    for (const CitedFact& f : cert->cited) {
      if (f.op != cert->from) continue;
      if (f.kind == CitedFact::Kind::kInterval && f.max_rows == 0) {
        interval = true;
      }
      if (f.kind == CitedFact::Kind::kNoRaise) no_raise = true;
    }
    if (!interval) {
      return Fail(cert, ob, "no zero-row interval fact is cited");
    }
    if (!no_raise) {
      return Fail(cert, ob, "no error-capability fact is cited");
    }
    if (to.kind != OpKind::kLit || !to.lit.rows.empty()) {
      return Fail(cert, ob, "the replacement is not an empty literal");
    }
    if (to.schema != from.schema) {
      return Fail(cert, ob,
                  "the replacement's schema differs from the original");
    }
    return true;
  }

  if (cert->rule == "keyed-partition" || cert->rule == "semantic-type") {
    if (from.kind != OpKind::kRowNum) {
      return Fail(cert, ob, "the rewritten operator is not a %");
    }
    // AttachConst shape: Cross(input, one-row literal {rank: 1}).
    if (to.kind != OpKind::kCross) {
      return Fail(cert, ob, "the replacement is not an attached constant");
    }
    const Op& lit = dag_->op(to.children[1]);
    if (lit.kind != OpKind::kLit || lit.lit.rows.size() != 1 ||
        lit.lit.cols != std::vector<ColId>{from.col} ||
        !(lit.lit.rows[0][0] == Value::Int(1))) {
      return Fail(cert, ob,
                  "the replacement does not attach the constant rank 1");
    }
    OpId in = to.children[0];
    for (const CitedFact& f : cert->cited) {
      if (f.op != in) continue;
      if (cert->rule == "semantic-type") {
        if (f.kind == CitedFact::Kind::kUnitGroup && f.col == from.part) {
          return true;
        }
      } else if (f.kind == CitedFact::Kind::kKey && f.col == from.part) {
        return true;
      } else if (f.kind == CitedFact::Kind::kInterval && f.max_rows <= 1) {
        return true;
      }
    }
    return Fail(cert, ob,
                "no singleton-partition fact is cited for the input");
  }

  if (cert->rule == "weaken_rownum") {
    if (from.kind != OpKind::kRowNum || to.kind != OpKind::kRowNum ||
        to.col != from.col) {
      return Fail(cert, ob, "the replacement is not a weakened %");
    }
    OpId in = to.children[0];
    const OpFacts& fin = audit_.Get(in);
    // The surviving criteria must be a subsequence of the original ones;
    // every dropped criterion must be derivably constant.
    size_t ti = 0;
    for (const SortKey& k : from.order) {
      if (ti < to.order.size() && to.order[ti] == k) {
        ++ti;
        continue;
      }
      if (fin.constant.count(k.col) == 0) {
        return Fail(cert, ob,
                    "dropped criterion '" + ColName(k.col) +
                        "' is not derivably constant");
      }
    }
    if (ti != to.order.size()) {
      return Fail(cert, ob,
                  "the surviving criteria are not a subsequence of the "
                  "original ones");
    }
    if (to.part != from.part) {
      if (to.part != kNoCol || from.part == kNoCol ||
          fin.constant.count(from.part) == 0) {
        return Fail(cert, ob,
                    "dropped grouping column is not derivably constant");
      }
    }
    return true;
  }

  if (cert->rule == "arbitrary-order" || cert->rule == "order-dependency") {
    if (from.kind != OpKind::kRowNum) {
      return Fail(cert, ob, "the rewritten operator is not a %");
    }
    bool positional = cert->rule == "order-dependency";
    if (to.kind != OpKind::kRowId || to.col != from.col ||
        to.positional != positional) {
      return Fail(cert, ob,
                  positional
                      ? "the replacement is not a positional #"
                      : "the replacement is not an arbitrary #");
    }
    OpId in = to.children[0];
    const OpFacts& fin = audit_.Get(in);
    if (from.part != kNoCol && fin.constant.count(from.part) == 0) {
      return Fail(cert, ob,
                  "grouping column '" + ColName(from.part) +
                      "' is not derivably constant");
    }
    if (positional) {
      if (!SortedCovers(fin, from.order)) {
        return Fail(cert, ob,
                    "the requested order is not covered by any derivable "
                    "sorted-prefix fact");
      }
      return true;
    }
    // Arbitrary #: after removing the cited constant criteria (each
    // independently re-derived above), either nothing remains or the
    // leading criterion is order-meaningless.
    ColSet cited_const;
    for (const CitedFact& f : cert->cited) {
      if (f.kind == CitedFact::Kind::kConstant) cited_const.insert(f.col);
    }
    std::vector<SortKey> eff;
    for (const SortKey& k : from.order) {
      if (cited_const.count(k.col) == 0) eff.push_back(k);
    }
    if (!eff.empty() && fin.arbitrary.count(eff.front().col) == 0) {
      return Fail(cert, ob,
                  "leading criterion '" + ColName(eff.front().col) +
                      "' is not derivably order-meaningless");
    }
    return true;
  }

  if (cert->rule == "step_merging") {
    if (from.kind != OpKind::kStep ||
        (from.axis != Axis::kChild && from.axis != Axis::kDescendant &&
         from.axis != Axis::kDescendantOrSelf)) {
      return Fail(cert, ob, "the rewritten operator is not a mergeable "
                            "location step");
    }
    OpId mid = kNoOp;
    for (const CitedFact& f : cert->cited) {
      if (f.kind == CitedFact::Kind::kStructural) mid = f.op;
    }
    if (mid == kNoOp) {
      return Fail(cert, ob, "no merged-away step is cited");
    }
    const Op& m = dag_->op(mid);
    if (m.kind != OpKind::kStep || m.axis != Axis::kDescendantOrSelf ||
        m.test.kind != NodeTest::Kind::kAnyKind) {
      return Fail(cert, ob,
                  "cited op " + std::to_string(mid) +
                      " is not a descendant-or-self::node() step");
    }
    Axis want = from.axis == Axis::kDescendantOrSelf
                    ? Axis::kDescendantOrSelf
                    : Axis::kDescendant;
    if (to.kind != OpKind::kStep || to.children[0] != m.children[0] ||
        to.axis != want || !(to.test == from.test)) {
      return Fail(cert, ob,
                  "the replacement step does not merge the cited "
                  "descendant-or-self::node() exactly");
    }
    return true;
  }

  if (cert->rule == "join_recognition") {
    if (from.kind != OpKind::kProject) {
      return Fail(cert, ob, "the rewritten operator is not a join anchor");
    }
    bool cited_scaffold = false;
    for (const CitedFact& f : cert->cited) {
      cited_scaffold |= f.kind == CitedFact::Kind::kScaffoldFree;
    }
    if (!cited_scaffold) {
      return Fail(cert, ob, "no scaffold-free fact is cited");
    }
    // Re-derive the isolation and kind gates for every value join in the
    // replacement region, independently of what the certificate cites.
    size_t joins = 0;
    for (OpId id : dag_->ReachableFrom(cert->to)) {
      const Op& op = dag_->op(id);
      bool theta = op.kind == OpKind::kThetaJoin;
      bool value_equi = op.kind == OpKind::kEquiJoin && op.value_join;
      if (!theta && !value_equi) continue;
      ++joins;
      if (audit_.Scaffolding(op.children[0]).count(op.col) != 0 ||
          audit_.Scaffolding(op.children[1]).count(op.col2) != 0) {
        return Fail(cert, ob,
                    "join op " + std::to_string(id) +
                        " predicate touches a scaffolding column");
      }
      ItemKind lk = KindAt(audit_.Get(op.children[0]), op.col);
      ItemKind rk = KindAt(audit_.Get(op.children[1]), op.col2);
      if (value_equi) {
        bool safe = lk == rk && (lk == ItemKind::kInt ||
                                 lk == ItemKind::kString ||
                                 lk == ItemKind::kBool);
        if (!safe) {
          return Fail(cert, ob,
                      "join op " + std::to_string(id) +
                          " hash-equality over kinds '" +
                          ItemKindName(lk) + "'/'" + ItemKindName(rk) +
                          "' does not coincide with the eq comparison");
        }
      } else {
        bool comparable = lk != ItemKind::kNode && lk != ItemKind::kAny &&
                          rk != ItemKind::kNode && rk != ItemKind::kAny;
        if (!comparable) {
          return Fail(cert, ob,
                      "join op " + std::to_string(id) +
                          " theta comparison over kinds '" +
                          ItemKindName(lk) + "'/'" + ItemKindName(rk) +
                          "' is not statically comparable");
        }
      }
    }
    if (joins == 0) {
      return Fail(cert, ob, "the replacement contains no value join");
    }
    return true;
  }

  return Fail(cert, ob, "no proof-obligation template for this family");
}

bool CertifyChecker::Check(RewriteCertificate* cert) {
  cert->checked = true;
  cert->valid = false;
  cert->obligation.clear();
  cert->diagnostic.clear();
  if (!force_reject_rule_.empty() && cert->rule == force_reject_rule_) {
    return Fail(cert, "forced-reject",
                "rejected by force_reject_rule (test hook)");
  }
  const char* ob = ObligationFor(cert->rule);
  if (cert->from == kNoOp || cert->from >= dag_->size() ||
      cert->to == kNoOp || cert->to >= dag_->size()) {
    return Fail(cert, "certificate-roots",
                "before/after roots do not name operators in the DAG");
  }
  for (const ColWitness& w : cert->witness) {
    if (w.after == kNoCol || !dag_->op(cert->to).HasCol(w.after)) {
      return Fail(cert, "witness",
                  "witness column '" +
                      (w.after == kNoCol ? std::string("<none>")
                                         : ColName(w.after)) +
                      "' is not produced by the replacement");
    }
    if (w.before == kNoCol || !dag_->op(cert->from).HasCol(w.before)) {
      return Fail(cert, "witness",
                  "witness column '" +
                      (w.before == kNoCol ? std::string("<none>")
                                          : ColName(w.before)) +
                      "' is not produced by the original");
    }
  }
  for (const CitedFact& f : cert->cited) {
    if (f.op == kNoOp || f.op >= dag_->size()) {
      return Fail(cert, ob,
                  "cited fact '" + f.text +
                      "' names an operator outside the DAG");
    }
  }
  if (cert->cited.empty()) {
    return Fail(cert, ob, "the certificate cites no facts");
  }
  if (!ValidateCited(cert, ob)) return false;
  if (!CheckFamily(cert)) return false;
  cert->valid = true;
  return true;
}

}  // namespace exrquy
