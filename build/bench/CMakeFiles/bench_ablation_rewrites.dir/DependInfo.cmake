
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_rewrites.cc" "bench/CMakeFiles/bench_ablation_rewrites.dir/bench_ablation_rewrites.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_rewrites.dir/bench_ablation_rewrites.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/exrquy_api.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exrquy_xmark.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exrquy_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exrquy_xquery.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exrquy_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exrquy_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exrquy_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exrquy_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exrquy_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exrquy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
