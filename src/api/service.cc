#include "api/service.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

#include "algebra/stats.h"
#include "engine/eval.h"
#include "xml/xml_parser.h"

namespace exrquy {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

uint64_t EnvU64(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  unsigned long long n = std::strtoull(v, &end, 10);
  return end == v ? 0 : static_cast<uint64_t>(n);
}

bool EnvPlanCacheEnabled() {
  const char* v = std::getenv("EXRQUY_PLAN_CACHE");
  if (v == nullptr || *v == '\0') return true;  // default on
  return std::string_view(v) != "0";
}

size_t ResolveWorkers(size_t requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

size_t ResolveResultCacheBytes(int64_t requested) {
  if (requested >= 0) return static_cast<size_t>(requested);
  return static_cast<size_t>(EnvU64("EXRQUY_RESULT_CACHE_BYTES"));
}

// Cache key: query text, then the plan-affecting option bits, then the
// store version. Execution knobs (threads, chunking, governor) are
// deliberately absent — the engine guarantees byte-identical results
// across all of them, which is what makes cached bytes reusable.
std::string CacheKey(std::string_view query, const QueryOptions& o,
                     uint64_t version) {
  uint64_t bits = 0;
  for (bool b : {o.default_ordering == OrderingMode::kOrdered,
                 o.enable_order_indifference, o.insert_unordered,
                 o.mode_rules, o.column_pruning, o.weaken_rownum,
                 o.distinct_elimination, o.step_merging, o.distinct_by_keys,
                 o.empty_short_circuit, o.rownum_by_keys, o.rownum_by_od,
                 o.join_recognition, o.theta_join,
                 o.physical_sort_detection}) {
    bits = (bits << 1) | (b ? 1 : 0);
  }
  char suffix[48];
  std::snprintf(suffix, sizeof(suffix), "\x1f%llx\x1f%llu",
                static_cast<unsigned long long>(bits),
                static_cast<unsigned long long>(version));
  std::string key;
  key.reserve(query.size() + sizeof(suffix));
  key.append(query.data(), query.size());
  key += suffix;
  return key;
}

size_t PlanBytes(const Dag& dag) {
  // Order-of-magnitude accounting; the plan cache has no byte budget
  // (population is bounded by the distinct query mix), so this only
  // feeds the stats.
  return dag.size() * (sizeof(Op) + 32) + sizeof(Dag);
}

}  // namespace

QueryService::QueryService(ServiceConfig config)
    : plan_cache_enabled_(config.plan_cache < 0 ? EnvPlanCacheEnabled()
                                                : config.plan_cache != 0),
      base_store_(&strings_),
      cache_accountant_(0),
      plan_cache_(0),
      result_cache_(ResolveResultCacheBytes(config.result_cache_bytes),
                    &cache_accountant_) {
  size_t n = ResolveWorkers(config.workers);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>(&strings_));
    free_workers_.push_back(n - 1 - i);  // pop_back hands out slot 0 first
  }
}

Status QueryService::LoadDocument(std::string_view name,
                                  std::string_view xml) {
  std::unique_lock<std::shared_mutex> exclusive(snapshot_mu_);
  // A parse failure rolls the base store back (NodeBuilder's destructor),
  // so nothing below this point runs and the snapshot is untouched.
  EXRQUY_ASSIGN_OR_RETURN(NodeIdx root, ParseXml(&base_store_, xml));
  base_store_.IndexFragment(base_store_.fragment_count() - 1);
  documents_[strings_.Intern(name)] = root;
  CloneWorkersLocked();
  version_.fetch_add(1, std::memory_order_acq_rel);
  // Stale keys could never hit again (the version is part of every key);
  // clearing reclaims their bytes immediately instead of waiting for
  // LRU pressure.
  plan_cache_.Clear();
  result_cache_.Clear();
  return Status::Ok();
}

void QueryService::CloneWorkersLocked() {
  for (std::unique_ptr<Worker>& w : workers_) {
    w->store.CloneFrom(base_store_);
    w->base_nodes = w->store.node_count();
    w->base_fragments = w->store.fragment_count();
  }
}

size_t QueryService::AcquireWorker() {
  std::unique_lock<std::mutex> lock(workers_mu_);
  workers_cv_.wait(lock, [this] { return !free_workers_.empty(); });
  size_t idx = free_workers_.back();
  free_workers_.pop_back();
  return idx;
}

void QueryService::ReleaseWorker(size_t idx) {
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    free_workers_.push_back(idx);
  }
  workers_cv_.notify_one();
}

Result<ServiceResult> QueryService::Execute(std::string_view query,
                                            const QueryOptions& options) {
  // Held shared for the whole call: the snapshot (base store contents,
  // worker clones, document map, version) cannot change under us.
  std::shared_lock<std::shared_mutex> snapshot(snapshot_mu_);
  Clock::time_point start = Clock::now();

  ServiceResult out;
  out.store_version = version_.load(std::memory_order_acquire);
  std::string key = CacheKey(query, options, out.store_version);

  // Governed calls bypass the result cache: serving cached bytes would
  // skip the injection/cancellation points a caller asked to exercise.
  bool result_cacheable = result_cache_.budget_bytes() != 0 &&
                          !options.faults.any() && options.cancel == nullptr;

  if (result_cacheable) {
    if (std::shared_ptr<const CachedResult> hit = result_cache_.Get(key)) {
      out.result_cache_hit = true;
      out.result.serialized = hit->serialized;
      out.result.items = hit->items;
      out.result.plan_initial = hit->stats_initial;
      out.result.plan_optimized = hit->stats_optimized;
      if (options.profile) out.result.profile.SetCache(false, true, 0);
      executions_.fetch_add(1, std::memory_order_relaxed);
      return out;
    }
  }

  // Plan: cached DAG when warm, full front-half pipeline when cold.
  std::shared_ptr<const CachedPlan> plan;
  if (plan_cache_enabled_) plan = plan_cache_.Get(key);
  if (plan != nullptr) {
    out.plan_cache_hit = true;
    out.result.compile_ms = 0;  // no parse/compile/optimize happened
  } else {
    Result<QueryPlans> planned = PlanQuery(query, options, &strings_);
    if (!planned.ok()) {
      executions_.fetch_add(1, std::memory_order_relaxed);
      return planned.status();
    }
    auto fresh = std::make_shared<CachedPlan>();
    fresh->dag = std::move(planned.value().dag);
    fresh->initial = planned.value().initial;
    fresh->optimized = planned.value().optimized;
    fresh->stats_initial = CollectPlanStats(*fresh->dag, fresh->initial);
    fresh->stats_optimized = CollectPlanStats(*fresh->dag, fresh->optimized);
    out.result.compile_ms = MsSince(start);
    if (plan_cache_enabled_) {
      plan_cache_.Put(key, fresh, PlanBytes(*fresh->dag));
    }
    plan = std::move(fresh);
  }
  out.result.plan_initial = plan->stats_initial;
  out.result.plan_optimized = plan->stats_optimized;

  // Resolve the governor configuration exactly like Session::Execute,
  // minus the shared-pool budget attachment: the pool is shared across
  // queries, so charging one query's budget for another query's interns
  // would be wrong. Node and table bytes are still fully accounted.
  int64_t deadline_ms =
      options.deadline_ms > 0
          ? options.deadline_ms
          : static_cast<int64_t>(EnvU64("EXRQUY_DEADLINE_MS"));
  size_t budget_limit =
      options.memory_budget > 0
          ? options.memory_budget
          : static_cast<size_t>(EnvU64("EXRQUY_MEM_BUDGET"));
  FaultPlan faults =
      options.faults.any() ? options.faults : FaultPlan::FromEnv();
  MemoryBudget budget(budget_limit);
  if (faults.fail_alloc != 0) budget.FailChargeAt(faults.fail_alloc);
  FaultInjector injector(faults);
  bool account =
      budget_limit != 0 || faults.fail_alloc != 0 || options.profile;

  size_t slot = AcquireWorker();
  Worker& worker = *workers_[slot];
  if (account) worker.store.set_budget(&budget);

  EvalContext ctx;
  ctx.store = &worker.store;
  ctx.strings = &strings_;
  ctx.documents = documents_;
  ctx.detect_sorted_inputs = options.physical_sort_detection;
  ctx.num_threads = options.num_threads;
  ctx.chunk_rows = options.chunk_rows;
  ctx.release_intermediates = options.release_intermediates;
  if (options.profile) ctx.profile = &out.result.profile;
  ctx.cancel = options.cancel.get();
  if (deadline_ms > 0) {
    ctx.has_deadline = true;
    ctx.deadline = start + std::chrono::milliseconds(deadline_ms);
  }
  if (account) ctx.budget = &budget;
  if (faults.any()) ctx.faults = &injector;

  Clock::time_point t1 = Clock::now();
  Status failed = Status::Ok();
  {
    Evaluator evaluator(*plan->dag, &ctx);
    Result<TablePtr> table = evaluator.Eval(plan->optimized);
    if (options.profile) {
      out.result.profile.SetBudget(budget.limit(), budget.charged(),
                                   budget.peak());
    }
    if (!table.ok()) {
      failed = table.status();
    } else {
      out.result.execute_ms = MsSince(t1);
      out.result.sorts_skipped = ctx.sorts_skipped;
      Result<std::string> serialized = SerializeResult(**table, ctx);
      Result<std::vector<std::string>> items = ResultItems(**table, ctx);
      if (!serialized.ok()) {
        failed = serialized.status();
      } else if (!items.ok()) {
        failed = items.status();
      } else {
        out.result.serialized = std::move(serialized).value();
        out.result.items = std::move(items).value();
      }
    }
  }
  // Constructed fragments never outlive the call (results hold plain
  // strings); the shared pool keeps query-interned strings by design.
  worker.store.set_budget(nullptr);
  worker.store.TruncateTo(worker.base_nodes, worker.base_fragments);
  ReleaseWorker(slot);
  executions_.fetch_add(1, std::memory_order_relaxed);
  if (!failed.ok()) return failed;

  uint64_t evicted = 0;
  if (result_cacheable) {
    size_t bytes = out.result.serialized.size() + 64;
    for (const std::string& item : out.result.items) {
      bytes += item.size() + sizeof(std::string);
    }
    uint64_t before = result_cache_.stats().evictions;
    auto cached = std::make_shared<CachedResult>();
    cached->serialized = out.result.serialized;
    cached->items = out.result.items;
    cached->stats_initial = out.result.plan_initial;
    cached->stats_optimized = out.result.plan_optimized;
    result_cache_.Put(key, std::move(cached), bytes);
    evicted = result_cache_.stats().evictions - before;
  }
  if (options.profile) {
    out.result.profile.SetCache(out.plan_cache_hit, false, evicted);
  }
  return out;
}

ServiceCounters QueryService::counters() const {
  ServiceCounters out;
  out.executions = executions_.load(std::memory_order_relaxed);
  out.store_version = version_.load(std::memory_order_acquire);
  out.plan_cache = plan_cache_.stats();
  out.result_cache = result_cache_.stats();
  return out;
}

}  // namespace exrquy
