#include "engine/profile.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace exrquy {
namespace {

void AppendJsonString(const std::string& s, std::string* out) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void AppendNumber(double v, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  *out += buf;
}

}  // namespace

void Profile::Record(const Op& op, OpMetrics m) {
  total_ms_ += m.ms;
  Bucket& p = by_prov_[op.prov.empty() ? "(unlabeled)" : op.prov];
  p.ms += m.ms;
  p.ops += 1;
  p.out_rows += m.out_rows;
  Bucket& k = by_kind_[OpKindName(op.kind)];
  k.ms += m.ms;
  k.ops += 1;
  k.out_rows += m.out_rows;
  m.kind = OpKindName(op.kind);
  m.prov = op.prov;
  ops_.push_back(std::move(m));
  ops_sorted_ = false;
}

void Profile::RecordPipeline(PipelineMetrics m) {
  pipelines_.push_back(m);
  pipelines_sorted_ = false;
}

void Profile::SetExecution(size_t threads, bool release_intermediates) {
  threads_ = threads;
  release_intermediates_ = release_intermediates;
}

void Profile::SetMemory(size_t peak_live_bytes, size_t final_live_bytes,
                        size_t released_tables) {
  peak_live_bytes_ = peak_live_bytes;
  final_live_bytes_ = final_live_bytes;
  released_tables_ = released_tables;
}

void Profile::SetBudget(size_t limit_bytes, size_t charged_bytes,
                        size_t peak_bytes) {
  budget_limit_bytes_ = limit_bytes;
  budget_charged_bytes_ = charged_bytes;
  budget_peak_bytes_ = peak_bytes;
}

void Profile::SetCache(bool plan_cache_hit, bool result_cache_hit,
                       uint64_t result_evictions) {
  plan_cache_hit_ = plan_cache_hit;
  result_cache_hit_ = result_cache_hit;
  result_cache_evictions_ = result_evictions;
}

void Profile::SetAdmission(double queue_ms, uint32_t attempts,
                           bool degraded) {
  queue_ms_ = queue_ms;
  attempts_ = attempts;
  degraded_ = degraded;
}

const std::vector<Profile::OpMetrics>& Profile::ops() const {
  if (!ops_sorted_) {
    std::stable_sort(
        ops_.begin(), ops_.end(),
        [](const OpMetrics& a, const OpMetrics& b) { return a.op < b.op; });
    ops_sorted_ = true;
  }
  return ops_;
}

const std::vector<Profile::PipelineMetrics>& Profile::pipelines() const {
  if (!pipelines_sorted_) {
    std::stable_sort(pipelines_.begin(), pipelines_.end(),
                     [](const PipelineMetrics& a, const PipelineMetrics& b) {
                       return a.id < b.id;
                     });
    pipelines_sorted_ = true;
  }
  return pipelines_;
}

std::string Profile::ToString() const {
  std::vector<std::pair<std::string, Bucket>> rows(by_prov_.begin(),
                                                   by_prov_.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.ms != b.second.ms) return a.second.ms > b.second.ms;
    return a.first < b.first;  // total key: equal-time labels stay ordered
  });
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-58s %10s %6s %12s\n", "sub-expression",
                "time [ms]", "%", "rows");
  out += buf;
  for (const auto& [label, b] : rows) {
    double pct = total_ms_ > 0 ? 100.0 * b.ms / total_ms_ : 0;
    std::snprintf(buf, sizeof(buf), "%-58s %10.2f %5.1f%% %12zu\n",
                  label.c_str(), b.ms, pct, b.out_rows);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%-58s %10.2f\n", "total", total_ms_);
  out += buf;
  return out;
}

std::string Profile::ToJson() const {
  std::string out = "{\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "  \"threads\": %zu,\n  \"release_intermediates\": %s,\n",
                threads_, release_intermediates_ ? "true" : "false");
  out += buf;
  out += "  \"total_ms\": ";
  AppendNumber(total_ms_, &out);
  std::snprintf(buf, sizeof(buf),
                ",\n  \"peak_live_bytes\": %zu,\n  \"final_live_bytes\": "
                "%zu,\n  \"released_tables\": %zu,\n",
                peak_live_bytes_, final_live_bytes_, released_tables_);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"budget_limit_bytes\": %zu,\n  \"budget_charged_bytes\": "
                "%zu,\n  \"budget_peak_bytes\": %zu,\n",
                budget_limit_bytes_, budget_charged_bytes_,
                budget_peak_bytes_);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"cache\": {\"plan_hit\": %s, \"result_hit\": %s, "
                "\"result_evictions\": %llu},\n",
                plan_cache_hit_ ? "true" : "false",
                result_cache_hit_ ? "true" : "false",
                static_cast<unsigned long long>(result_cache_evictions_));
  out += buf;
  out += "  \"admission\": {\"queue_ms\": ";
  AppendNumber(queue_ms_, &out);
  std::snprintf(buf, sizeof(buf), ", \"attempts\": %u, \"degraded\": %s},\n",
                attempts_, degraded_ ? "true" : "false");
  out += buf;
  out += "  \"ops\": [\n";
  const std::vector<OpMetrics>& records = ops();
  for (size_t i = 0; i < records.size(); ++i) {
    const OpMetrics& m = records[i];
    std::snprintf(buf, sizeof(buf), "    {\"op\": %u, \"kind\": ",
                  m.op);
    out += buf;
    AppendJsonString(m.kind, &out);
    out += ", \"prov\": ";
    AppendJsonString(m.prov, &out);
    out += ", \"ms\": ";
    AppendNumber(m.ms, &out);
    out += ", \"queue_ms\": ";
    AppendNumber(m.queue_ms, &out);
    std::snprintf(buf, sizeof(buf),
                  ", \"in_rows\": %zu, \"out_rows\": %zu, \"chunks\": %zu, "
                  "\"pipeline\": %lld}",
                  m.in_rows, m.out_rows, m.chunks,
                  static_cast<long long>(m.pipeline));
    out += buf;
    out += i + 1 < records.size() ? ",\n" : "\n";
  }
  out += "  ],\n  \"pipelines\": [\n";
  const std::vector<PipelineMetrics>& pipes = pipelines();
  for (size_t p = 0; p < pipes.size(); ++p) {
    const PipelineMetrics& m = pipes[p];
    std::snprintf(buf, sizeof(buf),
                  "    {\"id\": %u, \"head\": %u, \"sink\": %u, \"stages\": "
                  "%zu, \"morsels\": %zu, \"ms\": ",
                  m.id, m.head, m.sink, m.stages, m.morsels);
    out += buf;
    AppendNumber(m.ms, &out);
    out += ", \"queue_ms\": ";
    AppendNumber(m.queue_ms, &out);
    std::snprintf(buf, sizeof(buf), ", \"in_rows\": %zu, \"out_rows\": %zu}",
                  m.in_rows, m.out_rows);
    out += buf;
    out += p + 1 < pipes.size() ? ",\n" : "\n";
  }
  out += "  ],\n  \"by_kind\": {\n";
  size_t i = 0;
  for (const auto& [kind, b] : by_kind_) {
    out += "    ";
    AppendJsonString(kind, &out);
    out += ": {\"ms\": ";
    AppendNumber(b.ms, &out);
    std::snprintf(buf, sizeof(buf), ", \"ops\": %zu, \"out_rows\": %zu}",
                  b.ops, b.out_rows);
    out += buf;
    out += ++i < by_kind_.size() ? ",\n" : "\n";
  }
  out += "  }\n}\n";
  return out;
}

}  // namespace exrquy
