file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_union_concat.dir/bench_fig10_union_concat.cc.o"
  "CMakeFiles/bench_fig10_union_concat.dir/bench_fig10_union_concat.cc.o.d"
  "bench_fig10_union_concat"
  "bench_fig10_union_concat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_union_concat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
