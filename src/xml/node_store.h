// Columnar XML node storage using the pre/size/level encoding of
// Grust et al. (Figure 5 of the paper): every node is identified by its
// preorder rank; `size` is the number of nodes in its subtree (excluding
// itself); `level` is its depth. Preorder ranks are document
// order-preserving node identifiers, which is all the compilation scheme
// requires. All loaded documents and all fragments constructed at query
// runtime live in one store, so a single integer comparison decides
// document order globally (order across fragments is implementation
// defined, as XQuery permits).
#ifndef EXRQUY_XML_NODE_STORE_H_
#define EXRQUY_XML_NODE_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/governor.h"
#include "common/status.h"
#include "common/str_pool.h"

namespace exrquy {

using NodeIdx = uint64_t;
inline constexpr NodeIdx kInvalidNode = ~NodeIdx{0};

enum class NodeKind : uint8_t {
  kDocument = 0,
  kElement = 1,
  kAttribute = 2,
  kText = 3,
  kComment = 4,
};

class NodeStore {
 public:
  // `strings` must outlive the store; names and text values are interned
  // there so that items referring to them stay fixed-width.
  explicit NodeStore(StrPool* strings) : strings_(strings) {}

  NodeStore(const NodeStore&) = delete;
  NodeStore& operator=(const NodeStore&) = delete;

  // -- Node accessors ------------------------------------------------------
  size_t node_count() const { return kind_.size(); }
  NodeKind kind(NodeIdx n) const { return static_cast<NodeKind>(kind_[n]); }
  StrId name(NodeIdx n) const { return name_[n]; }
  StrId value(NodeIdx n) const { return value_[n]; }
  // Number of nodes in the subtree below n (attributes included).
  uint32_t size(NodeIdx n) const { return size_[n]; }
  uint16_t level(NodeIdx n) const { return level_[n]; }
  // Parent preorder rank, or kInvalidNode for fragment roots.
  NodeIdx parent(NodeIdx n) const { return parent_[n]; }

  const std::string& name_str(NodeIdx n) const {
    return strings_->Get(name_[n]);
  }
  const std::string& value_str(NodeIdx n) const {
    return strings_->Get(value_[n]);
  }

  StrPool& strings() const { return *strings_; }

  // Typed-value / string-value of a node: concatenation of the values of
  // all text nodes in its subtree (attribute and text nodes yield their
  // own value).
  std::string StringValue(NodeIdx n) const;

  // -- Fragments -----------------------------------------------------------
  struct Fragment {
    NodeIdx root;
    uint32_t node_count;
    bool indexed;  // has per-tag name index entries (loaded documents)
  };

  size_t fragment_count() const { return fragments_.size(); }
  const Fragment& fragment(size_t i) const { return fragments_[i]; }
  // Fragment that contains node n (binary search over fragment roots).
  const Fragment& FragmentOf(NodeIdx n) const;

  // Deep-copies the subtree rooted at src to the end of the store as part
  // of the currently open fragment built by a NodeBuilder, or as a new
  // standalone fragment when none is open. Returns the copy's root.
  // (Used by element constructors: sequence order establishes document
  // order in the new fragment — interaction seq->doc of Section 2.)
  NodeIdx CopySubtreeInto(NodeIdx src, uint16_t level_delta,
                          NodeIdx new_parent);

  // Creates a standalone (parentless) attribute/text node as its own
  // one-node fragment. Used by computed attribute/text constructors.
  NodeIdx MakeAttribute(StrId name, StrId value);
  NodeIdx MakeText(StrId value);

  // Discards all nodes and fragments appended after the snapshot taken
  // as (node_count(), fragment_count()). Dropped fragments must not be
  // name indexed (query-constructed fragments never are); used to free
  // constructed fragments between query executions.
  void TruncateTo(size_t node_count, size_t fragment_count);

  // Replaces this store's entire contents with a copy of `src` — nodes,
  // fragments, and name index. Both stores must share the same StrPool
  // (interned ids are copied verbatim). Used by the query service to
  // stamp per-worker snapshots of the loaded-document store: workers
  // append (and truncate) constructed fragments privately while reading
  // identical document bytes at identical preorder ranks, which is what
  // makes results byte-identical across workers.
  void CloneFrom(const NodeStore& src);

  // -- Name index ----------------------------------------------------------
  // Sorted preorder ranks of all element/attribute nodes with the given
  // name in *indexed* fragments. Enables the binary-searched
  // `descendant::nt` fast path (the staircase-join/TwigStack stand-in).
  const std::vector<NodeIdx>* IndexedNodes(NodeKind kind, StrId name) const;

  // Builds index entries for fragment `frag_id` (loaded documents only;
  // must be called in fragment creation order to keep index vectors
  // sorted).
  void IndexFragment(size_t frag_id);

  // -- Resource governance -------------------------------------------------
  // Attaches (nullptr detaches) a per-query MemoryBudget: every appended
  // node charges kBytesPerNode, and TruncateTo returns the bytes of the
  // dropped range. Mutations already serialize behind the evaluator's
  // store mutex, so no extra locking here.
  void set_budget(MemoryBudget* budget) { budget_ = budget; }

  // Columnar footprint of one node: kind + name + value + size + level +
  // parent. Exposed so tests can predict budget numbers.
  static constexpr size_t kBytesPerNode =
      sizeof(uint8_t) + 2 * sizeof(StrId) + sizeof(uint32_t) +
      sizeof(uint16_t) + sizeof(NodeIdx);

 private:
  friend class NodeBuilder;

  NodeIdx AppendNode(NodeKind kind, StrId name, StrId value, uint16_t level,
                     NodeIdx parent);

  StrPool* strings_;

  std::vector<uint8_t> kind_;
  std::vector<StrId> name_;
  std::vector<StrId> value_;
  std::vector<uint32_t> size_;
  std::vector<uint16_t> level_;
  std::vector<NodeIdx> parent_;

  std::vector<Fragment> fragments_;

  // (kind, name) -> sorted preorder ranks.
  std::unordered_map<uint64_t, std::vector<NodeIdx>> name_index_;

  MemoryBudget* budget_ = nullptr;
};

// Builds one fragment (a loaded document or a constructed element) in
// preorder. Usage:
//   NodeBuilder b(&store);
//   b.BeginDocument();              // optional document node
//   b.BeginElement(name);
//   b.Attribute(name, value);       // only directly after BeginElement
//   b.Text(value);
//   b.EndElement();
//   NodeIdx root = b.Finish();
class NodeBuilder {
 public:
  explicit NodeBuilder(NodeStore* store);
  ~NodeBuilder();

  NodeBuilder(const NodeBuilder&) = delete;
  NodeBuilder& operator=(const NodeBuilder&) = delete;

  void BeginDocument();
  void BeginElement(StrId name);
  void BeginElement(std::string_view name);
  void Attribute(StrId name, StrId value);
  void Attribute(std::string_view name, std::string_view value);
  void Text(StrId value);
  void Text(std::string_view value);
  void Comment(std::string_view value);
  // Deep-copies an existing subtree as the next child.
  void CopySubtree(NodeIdx src);
  void EndElement();
  void EndDocument();

  // Closes the fragment and registers it with the store; returns its root.
  NodeIdx Finish();

 private:
  uint16_t CurrentLevel() const;
  NodeIdx CurrentParent() const;

  NodeStore* store_;
  NodeIdx first_;                 // first node of the fragment
  std::vector<NodeIdx> open_;     // stack of open element/document nodes
  bool finished_ = false;
};

}  // namespace exrquy

#endif  // EXRQUY_XML_NODE_STORE_H_
