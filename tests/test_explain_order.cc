// Session::ExplainOrder (the --explain-order surface): every sort that
// survives optimization must carry a non-empty order-provenance
// attribution — a % the analysis cannot justify would either be dead
// (and pruned) or mark a gap in the attribution rules — and the
// annotated DOT rendering must carry the same reasons.
#include <gtest/gtest.h>

#include <string>

#include "algebra/dot.h"
#include "algebra/stats.h"
#include "api/session.h"
#include "opt/analyses.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

namespace exrquy {
namespace {

class ExplainOrderTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    session_ = new Session();
    XMarkOptions options;
    options.scale = 0.004;
    ASSERT_TRUE(
        session_->LoadDocument("auction.xml", GenerateXMark(options)).ok());
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }

  static Session* session_;
};

Session* ExplainOrderTest::session_ = nullptr;

// Acceptance bar for the provenance domain: across all 20 XMark queries
// in both ordering modes, every surviving % has at least one reason, and
// the reason count matches the plan's % population.
TEST_F(ExplainOrderTest, EverySurvivingSortIsAttributed) {
  for (const XMarkQuery& q : XMarkQueries()) {
    for (bool unordered : {false, true}) {
      QueryOptions options;
      if (unordered) options.default_ordering = OrderingMode::kUnordered;
      Result<OrderExplanation> ex = session_->ExplainOrder(q.text, options);
      ASSERT_TRUE(ex.ok()) << q.name << ": " << ex.status().ToString();
      Result<QueryPlans> p = session_->Plan(q.text, options);
      ASSERT_TRUE(p.ok());
      PlanStats stats = CollectPlanStats(*p->dag, p->optimized);
      EXPECT_EQ(ex->sorts.size(), stats.rownum_ops)
          << q.name << (unordered ? " unordered" : " ordered");
      for (const auto& sort : ex->sorts) {
        EXPECT_FALSE(sort.label.empty());
        EXPECT_FALSE(sort.reasons.empty())
            << q.name << (unordered ? " unordered" : " ordered") << " op "
            << sort.op << " (" << sort.label
            << "): surviving sort with no attributed order demand";
      }
    }
  }
}

// The reasons name the consuming construct, carrying the consumer's
// source label where the compiler recorded one.
TEST_F(ExplainOrderTest, ReasonsNameTheConsumingConstruct) {
  // The result of an ordered query is serialized in sequence order: the
  // back-map % must be attributed to result serialization.
  Result<OrderExplanation> ex = session_->ExplainOrder(
      R"(for $i in doc("auction.xml")//item return $i/name)", {});
  ASSERT_TRUE(ex.ok()) << ex.status().ToString();
  ASSERT_FALSE(ex->sorts.empty());
  bool saw_serialization = false;
  for (const auto& sort : ex->sorts) {
    for (const std::string& reason : sort.reasons) {
      if (reason.find("result serialization") != std::string::npos) {
        saw_serialization = true;
      }
    }
  }
  EXPECT_TRUE(saw_serialization);
}

// Fully order-indifferent plans explain to an empty sort list.
TEST_F(ExplainOrderTest, OrderFreePlanHasNoSorts) {
  QueryOptions unordered;
  unordered.default_ordering = OrderingMode::kUnordered;
  Result<OrderExplanation> ex = session_->ExplainOrder(
      R"(count(doc("auction.xml")//item))", unordered);
  ASSERT_TRUE(ex.ok()) << ex.status().ToString();
  EXPECT_TRUE(ex->sorts.empty());
}

// The annotated DOT rendering carries the same attribution inline.
TEST_F(ExplainOrderTest, DotRenderingCarriesAnnotations) {
  Result<OrderExplanation> ex = session_->ExplainOrder(
      R"(for $i in doc("auction.xml")//item return $i/name)", {});
  ASSERT_TRUE(ex.ok()) << ex.status().ToString();
  ASSERT_FALSE(ex->sorts.empty());
  EXPECT_NE(ex->dot.find("digraph plan"), std::string::npos);
  EXPECT_NE(ex->dot.find("ordered because:"), std::string::npos);
}

}  // namespace
}  // namespace exrquy
