file(REMOVE_RECURSE
  "CMakeFiles/order_semantics.dir/order_semantics.cpp.o"
  "CMakeFiles/order_semantics.dir/order_semantics.cpp.o.d"
  "order_semantics"
  "order_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
