file(REMOVE_RECURSE
  "CMakeFiles/test_xmark.dir/test_xmark.cc.o"
  "CMakeFiles/test_xmark.dir/test_xmark.cc.o.d"
  "test_xmark"
  "test_xmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
