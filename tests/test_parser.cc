// Unit tests for the XQuery parser: AST shapes, precedence, paths and
// abbreviations, predicates, constructors (with AVTs and escapes),
// FLWOR/quantifier binding lists, prolog declarations, and errors.
#include <gtest/gtest.h>

#include "xquery/parser.h"

namespace exrquy {
namespace {

ExprPtr MustParse(const std::string& text) {
  Result<ExprPtr> r = ParseExpression(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? std::move(r).value() : nullptr;
}

// Round-trip through ExprToString is a compact way to pin AST shapes.
std::string Shape(const std::string& text) {
  ExprPtr e = MustParse(text);
  return e ? ExprToString(*e) : "<parse error>";
}

TEST(ParserTest, Literals) {
  EXPECT_EQ(Shape("42"), "42");
  EXPECT_EQ(Shape("\"hi\""), "\"hi\"");
  EXPECT_EQ(Shape("()"), "()");
}

TEST(ParserTest, ArithmeticPrecedence) {
  EXPECT_EQ(Shape("1 + 2 * 3"), "(1 + (2 * 3))");
  EXPECT_EQ(Shape("(1 + 2) * 3"), "((1 + 2) * 3)");
  EXPECT_EQ(Shape("1 - 2 - 3"), "((1 - 2) - 3)");
  EXPECT_EQ(Shape("6 idiv 2 mod 2"), "((6 idiv 2) mod 2)");
  EXPECT_EQ(Shape("-1 + 2"), "(-(1) + 2)");
}

TEST(ParserTest, ComparisonKinds) {
  ExprPtr gen = MustParse("$a = $b");
  EXPECT_EQ(gen->kind, ExprKind::kGeneralComp);
  ExprPtr val = MustParse("$a eq $b");
  EXPECT_EQ(val->kind, ExprKind::kValueComp);
  ExprPtr node = MustParse("$a << $b");
  EXPECT_EQ(node->kind, ExprKind::kNodeComp);
  EXPECT_EQ(node->op, BinOp::kBefore);
  ExprPtr is = MustParse("$a is $b");
  EXPECT_EQ(is->op, BinOp::kIs);
}

TEST(ParserTest, ComparisonBindsLooserThanArithmetic) {
  EXPECT_EQ(Shape("$a > 5 + 3"), "($a > (5 + 3))");
}

TEST(ParserTest, LogicalPrecedence) {
  EXPECT_EQ(Shape("$a or $b and $c"), "($a or ($b and $c))");
}

TEST(ParserTest, SetOpsPrecedence) {
  // union binds tighter than '*'; intersect tighter than union.
  ExprPtr e = MustParse("$a | $b intersect $c");
  EXPECT_EQ(e->kind, ExprKind::kSetOp);
  EXPECT_EQ(e->op, BinOp::kUnion);
  EXPECT_EQ(e->children[1]->op, BinOp::kIntersect);
}

TEST(ParserTest, PathSteps) {
  EXPECT_EQ(Shape("$a/b/c"), "$a/child::b/child::c");
  EXPECT_EQ(Shape("$a/@id"), "$a/attribute::id");
  EXPECT_EQ(Shape("$a/.."), "$a/parent::node()");
  EXPECT_EQ(Shape("$a/*"), "$a/child::*");
  EXPECT_EQ(Shape("$a/text()"), "$a/child::text()");
  EXPECT_EQ(Shape("$a/node()"), "$a/child::node()");
}

TEST(ParserTest, ExplicitAxes) {
  EXPECT_EQ(Shape("$a/descendant::x"), "$a/descendant::x");
  EXPECT_EQ(Shape("$a/ancestor-or-self::*"), "$a/ancestor-or-self::*");
  EXPECT_EQ(Shape("$a/following-sibling::y"), "$a/following-sibling::y");
}

TEST(ParserTest, DoubleSlashDesugars) {
  EXPECT_EQ(Shape("$a//c"), "$a/descendant-or-self::node()/child::c");
}

TEST(ParserTest, RelativePathUsesContextItem) {
  EXPECT_EQ(Shape("$a/b[c/@id = 1]"),
            "$a/child::b[(./child::c/attribute::id = 1)]");
}

TEST(ParserTest, ParenthesizedFilterStep) {
  EXPECT_EQ(Shape("$a//(c|d)"),
            "$a/descendant-or-self::node()/((./child::c | ./child::d))");
}

TEST(ParserTest, Predicates) {
  EXPECT_EQ(Shape("$a/b[1]"), "$a/child::b[1]");
  EXPECT_EQ(Shape("$a/b[last()]"), "$a/child::b[last()]");
  EXPECT_EQ(Shape("$a/b[1][2]"), "$a/child::b[1][2]");
  EXPECT_EQ(Shape("($a//b)[2]"), "$a/descendant-or-self::node()/child::b[2]");
}

TEST(ParserTest, FlworFull) {
  ExprPtr e = MustParse(
      "for $x at $p in $s let $y := $x + 1 where $y > 2 "
      "order by $y descending return ($x, $y)");
  ASSERT_EQ(e->kind, ExprKind::kFlwor);
  ASSERT_EQ(e->clauses.size(), 2u);
  EXPECT_EQ(e->clauses[0].kind, FlworClause::Kind::kFor);
  EXPECT_EQ(e->clauses[0].var, "x");
  EXPECT_EQ(e->clauses[0].pos_var, "p");
  EXPECT_EQ(e->clauses[1].kind, FlworClause::Kind::kLet);
  ASSERT_TRUE(e->where != nullptr);
  ASSERT_EQ(e->order_by.size(), 1u);
  EXPECT_TRUE(e->order_by[0].descending);
}

TEST(ParserTest, FlworMultiBinding) {
  ExprPtr e = MustParse("for $a in (1), $b in (2) return $a + $b");
  ASSERT_EQ(e->clauses.size(), 2u);
  EXPECT_EQ(e->clauses[1].var, "b");
}

TEST(ParserTest, CommaAfterReturnIsSequence) {
  ExprPtr e = MustParse("(for $x in (1) return $x, 3)");
  ASSERT_EQ(e->kind, ExprKind::kSequence);
  EXPECT_EQ(e->children[0]->kind, ExprKind::kFlwor);
  EXPECT_EQ(e->children[1]->kind, ExprKind::kIntLit);
}

TEST(ParserTest, QuantifiersDesugarMultipleBinders) {
  ExprPtr e = MustParse("some $a in (1), $b in (2) satisfies $a = $b");
  ASSERT_EQ(e->kind, ExprKind::kQuantified);
  EXPECT_EQ(e->string_value, "a");
  EXPECT_EQ(e->children[1]->kind, ExprKind::kQuantified);
  EXPECT_EQ(e->children[1]->string_value, "b");
}

TEST(ParserTest, EveryMarkedWithAnd) {
  ExprPtr e = MustParse("every $a in (1) satisfies $a > 0");
  EXPECT_EQ(e->op, BinOp::kAnd);
}

TEST(ParserTest, IfThenElse) {
  ExprPtr e = MustParse("if ($a) then 1 else 2");
  ASSERT_EQ(e->kind, ExprKind::kIf);
  ASSERT_EQ(e->children.size(), 3u);
}

TEST(ParserTest, FunctionCallsNormalizeFnPrefix) {
  ExprPtr e = MustParse("fn:count((1,2))");
  EXPECT_EQ(e->kind, ExprKind::kFunctionCall);
  EXPECT_EQ(e->string_value, "count");
  ExprPtr l = MustParse("local:f(1, 2)");
  EXPECT_EQ(l->string_value, "local:f");
  EXPECT_EQ(l->children.size(), 2u);
}

TEST(ParserTest, OrderedUnorderedExpr) {
  ExprPtr e = MustParse("unordered { $a }");
  ASSERT_EQ(e->kind, ExprKind::kOrderedExpr);
  EXPECT_EQ(e->mode, OrderingMode::kUnordered);
  ExprPtr o = MustParse("ordered { $a }");
  EXPECT_EQ(o->mode, OrderingMode::kOrdered);
}

TEST(ParserTest, ElementCtorBasic) {
  ExprPtr e = MustParse("<a/>");
  ASSERT_EQ(e->kind, ExprKind::kElementCtor);
  EXPECT_EQ(e->string_value, "a");
  EXPECT_TRUE(e->parts.empty());
}

TEST(ParserTest, ElementCtorWithContent) {
  ExprPtr e = MustParse("<a>text {$x} more <b/>{1+1}</a>");
  ASSERT_EQ(e->kind, ExprKind::kElementCtor);
  ASSERT_EQ(e->parts.size(), 5u);
  EXPECT_EQ(e->parts[0].text, "text ");
  EXPECT_EQ(e->parts[1].expr->kind, ExprKind::kVarRef);
  EXPECT_EQ(e->parts[2].text, " more ");
  EXPECT_EQ(e->parts[3].expr->kind, ExprKind::kElementCtor);
  EXPECT_EQ(e->parts[4].expr->kind, ExprKind::kArith);
}

TEST(ParserTest, ElementCtorAttributes) {
  ExprPtr e = MustParse(R"(<a id="x{$i}y" class="fixed"/>)");
  ASSERT_EQ(e->children.size(), 2u);
  const Expr& id = *e->children[0];
  EXPECT_EQ(id.kind, ExprKind::kAttributeCtor);
  ASSERT_EQ(id.parts.size(), 3u);
  EXPECT_EQ(id.parts[0].text, "x");
  EXPECT_EQ(id.parts[1].expr->kind, ExprKind::kVarRef);
  EXPECT_EQ(id.parts[2].text, "y");
  EXPECT_EQ(e->children[1]->parts[0].text, "fixed");
}

TEST(ParserTest, CtorBraceEscapes) {
  ExprPtr e = MustParse(R"(<a k="{{not-expr}}">lit {{x}}</a>)");
  EXPECT_EQ(e->children[0]->parts[0].text, "{not-expr}");
  EXPECT_EQ(e->parts[0].text, "lit {x}");
}

TEST(ParserTest, CtorBoundaryWhitespaceStripped) {
  ExprPtr e = MustParse("<a>  <b/>  </a>");
  ASSERT_EQ(e->parts.size(), 1u);
  EXPECT_EQ(e->parts[0].expr->kind, ExprKind::kElementCtor);
}

TEST(ParserTest, CtorEntityDecoding) {
  ExprPtr e = MustParse("<a>&lt;x&gt;</a>");
  ASSERT_EQ(e->parts.size(), 1u);
  EXPECT_EQ(e->parts[0].text, "<x>");
}

TEST(ParserTest, NestedCtorAndExprInterleaving) {
  ExprPtr e = MustParse("<a><b>{ <c>{$v}</c> }</b></a>");
  ASSERT_EQ(e->parts.size(), 1u);
  const Expr& b = *e->parts[0].expr;
  ASSERT_EQ(b.parts.size(), 1u);
  EXPECT_EQ(b.parts[0].expr->kind, ExprKind::kElementCtor);
}

TEST(ParserTest, TextConstructor) {
  ExprPtr e = MustParse("text { \"abc\" }");
  EXPECT_EQ(e->kind, ExprKind::kTextCtor);
}

TEST(ParserTest, PrologOrderingAndFunctions) {
  Result<Query> q = ParseQuery(
      "declare ordering unordered; "
      "declare function local:f($a, $b) { $a + $b }; "
      "local:f(1, 2)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->has_ordering_decl);
  EXPECT_EQ(q->default_ordering, OrderingMode::kUnordered);
  ASSERT_EQ(q->functions.size(), 1u);
  EXPECT_EQ(q->functions[0].name, "local:f");
  EXPECT_EQ(q->functions[0].params,
            (std::vector<std::string>{"a", "b"}));
}

TEST(ParserTest, PrologTypeAnnotationsSkipped) {
  Result<Query> q = ParseQuery(
      "declare function local:f($a as xs:integer) as xs:integer { $a }; "
      "local:f(1)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->functions[0].params.size(), 1u);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseExpression("for $x in").ok());
  EXPECT_FALSE(ParseExpression("1 +").ok());
  EXPECT_FALSE(ParseExpression("<a><b></a>").ok());
  EXPECT_FALSE(ParseExpression("$x[").ok());
  EXPECT_FALSE(ParseExpression("if (1) then 2").ok());
  EXPECT_FALSE(ParseExpression("/a").ok());  // absolute paths unsupported
  EXPECT_FALSE(ParseExpression("1 2").ok());
}

TEST(ParserTest, RobustAgainstGarbage) {
  // Random byte soup must produce a Status, never a crash or hang. The
  // generator biases toward XQuery-ish characters to reach deeper states.
  const char kAlphabet[] =
      "abcxyz $./@[]{}()<>\"'=!:;,*|+-0123456789 forletinreturn";
  uint64_t state = 0xfeed;
  auto next = [&] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < 500; ++i) {
    std::string text;
    size_t len = next() % 60;
    for (size_t c = 0; c < len; ++c) {
      text += kAlphabet[next() % (sizeof(kAlphabet) - 1)];
    }
    Result<Query> r = ParseQuery(text);
    (void)r;  // ok or error — both fine; no crash is the assertion
  }
  SUCCEED();
}

TEST(ParserTest, RobustAgainstTruncations) {
  // Every prefix of a complex query must parse or fail cleanly.
  const std::string query =
      R"(declare function local:f($a) { $a + 1 };
         for $x at $p in doc("d.xml")//item[@k = "v"][2]
         let $y := <e a="{ $x }">t{ local:f($p) }</e>
         where some $z in (1 to 5) satisfies $z = $p
         order by $y descending
         return unordered { ($y, $x/.., $x//text()) })";
  for (size_t len = 0; len <= query.size(); ++len) {
    Result<Query> r = ParseQuery(query.substr(0, len));
    (void)r;
  }
  SUCCEED();
}

TEST(ParserTest, CloneProducesEqualShape) {
  ExprPtr e = MustParse(
      "for $x in $s where $x > 1 order by $x return <a k=\"{$x}\">{$x}</a>");
  ExprPtr c = CloneExpr(*e);
  EXPECT_EQ(ExprToString(*e), ExprToString(*c));
}

}  // namespace
}  // namespace exrquy
