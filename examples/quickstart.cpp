// Quickstart: load an XML document, run XQuery, inspect plans.
//
//   $ ./examples/quickstart
//
// Demonstrates the three-line happy path of the public API — Session,
// LoadDocument, Execute — plus the ordering-mode knobs that this library
// exists for.
#include <cstdio>

#include "api/session.h"

int main() {
  exrquy::Session session;

  // A small library catalogue.
  exrquy::Status st = session.LoadDocument("books.xml", R"(
    <catalogue>
      <book year="2007"><title>Order Indifference in XQuery</title>
        <price>10.00</price></book>
      <book year="2003"><title>Staircase Join</title>
        <price>12.50</price></book>
      <book year="2004"><title>XQuery on SQL Hosts</title>
        <price>8.75</price></book>
    </catalogue>)");
  if (!st.ok()) {
    std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
    return 1;
  }

  // 1. A FLWOR query with a where clause and element construction.
  const char* query = R"(
    for $b in doc("books.xml")/catalogue/book
    where $b/price > 9
    order by $b/title ascending
    return <hit year="{ $b/@year }">{ $b/title/text() }</hit>)";

  exrquy::Result<exrquy::QueryResult> r = session.Execute(query);
  if (!r.ok()) {
    std::fprintf(stderr, "query: %s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("result:\n%s\n\n", r->serialized.c_str());

  // 2. The same query without order-indifference exploitation: more
  //    blocking sorts (%) in the executed plan.
  exrquy::QueryOptions baseline;
  baseline.enable_order_indifference = false;
  exrquy::Result<exrquy::QueryResult> rb = session.Execute(query, baseline);
  if (rb.ok()) {
    std::printf("plan, order indifference exploited: %s\n",
                r->plan_optimized.ToString().c_str());
    std::printf("plan, baseline:                     %s\n",
                rb->plan_optimized.ToString().c_str());
  }

  // 3. An aggregate: the argument of fn:count is order indifferent, so
  //    the optimizer removes the order derivation entirely.
  exrquy::Result<exrquy::QueryResult> rc =
      session.Execute(R"(count(doc("books.xml")//book[price > 9]))");
  if (rc.ok()) {
    std::printf("\nbooks over 9.00: %s  (plan: %s)\n",
                rc->serialized.c_str(),
                rc->plan_optimized.ToString().c_str());
  }
  return 0;
}
