// Unit tests for the XQuery -> Core normalizer (Section 2.2): insertion
// of fn:unordered() (rules FN:COUNT / QUANT / general comparisons),
// every -> not(some(not)) rewriting, and user-function inlining with
// capture avoidance.
#include <gtest/gtest.h>

#include "xquery/normalize.h"
#include "xquery/parser.h"

namespace exrquy {
namespace {

Query MustNormalize(const std::string& text, bool insert_unordered = true) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  NormalizeOptions options;
  options.insert_unordered = insert_unordered;
  Status st = Normalize(&q.value(), options);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return std::move(q).value();
}

std::string Shape(const std::string& text, bool insert_unordered = true) {
  return ExprToString(*MustNormalize(text, insert_unordered).body);
}

TEST(NormalizeTest, RuleFnCountInsertsUnordered) {
  EXPECT_EQ(Shape("count($x)"), "count(unordered($x))");
  EXPECT_EQ(Shape("sum($x)"), "sum(unordered($x))");
  EXPECT_EQ(Shape("empty($x)"), "empty(unordered($x))");
  EXPECT_EQ(Shape("exists($x)"), "exists(unordered($x))");
  EXPECT_EQ(Shape("boolean($x)"), "boolean(unordered($x))");
  EXPECT_EQ(Shape("distinct-values($x)"),
            "distinct-values(unordered($x))");
}

TEST(NormalizeTest, NoDoubleWrap) {
  EXPECT_EQ(Shape("count(unordered($x))"), "count(unordered($x))");
}

TEST(NormalizeTest, DisabledLeavesAstAlone) {
  EXPECT_EQ(Shape("count($x)", /*insert_unordered=*/false), "count($x)");
}

TEST(NormalizeTest, RuleQuantWrapsDomain) {
  // Both the quantifier domain (Rule QUANT) and the general comparison's
  // operands are wrapped.
  EXPECT_EQ(Shape("some $v in $s satisfies $v > 1"),
            "some $v in unordered($s) satisfies "
            "(unordered($v) > unordered(1))");
}

TEST(NormalizeTest, EveryBecomesNotSomeNot) {
  EXPECT_EQ(Shape("every $v in $s satisfies $v > 1"),
            "not(some $v in unordered($s) satisfies "
            "not((unordered($v) > unordered(1))))");
}

TEST(NormalizeTest, GeneralComparisonWrapsBothSides) {
  EXPECT_EQ(Shape("$a = $b"), "(unordered($a) = unordered($b))");
}

TEST(NormalizeTest, ValueComparisonNotWrapped) {
  EXPECT_EQ(Shape("$a eq $b"), "($a eq $b)");
}

TEST(NormalizeTest, OrderIndifferentCallsInsideFlwor) {
  EXPECT_EQ(Shape("for $x in $s return count($x)"),
            "for $x in $s return count(unordered($x))");
}

TEST(NormalizeTest, FunctionInliningBindsArgsViaLet) {
  Query q = MustNormalize(
      "declare function local:f($v) { $v + 1 }; local:f(41)");
  std::string s = ExprToString(*q.body);
  // let $v<fresh> := 41 return ($v<fresh> + 1)
  EXPECT_NE(s.find("let $v$"), std::string::npos) << s;
  EXPECT_NE(s.find(":= 41"), std::string::npos) << s;
  EXPECT_NE(s.find("+ 1)"), std::string::npos) << s;
}

TEST(NormalizeTest, InliningAvoidsCapture) {
  // The caller's $v must not be captured by the parameter $v.
  Query q = MustNormalize(
      "declare function local:f($v) { $v * 2 }; "
      "for $v in (1, 2) return local:f($v + 10)");
  std::string s = ExprToString(*q.body);
  // The argument references the caller's $v; the body the fresh one.
  EXPECT_NE(s.find(":= ($v + 10)"), std::string::npos) << s;
  EXPECT_NE(s.find("($v$"), std::string::npos) << s;
}

TEST(NormalizeTest, NestedFunctionCallsInline) {
  Query q = MustNormalize(
      "declare function local:f($a) { $a + 1 }; "
      "declare function local:g($b) { local:f($b) * 2 }; "
      "local:g(10)");
  std::string s = ExprToString(*q.body);
  EXPECT_EQ(s.find("local:"), std::string::npos) << s;
}

TEST(NormalizeTest, RecursionRejected) {
  Result<Query> q = ParseQuery(
      "declare function local:f($a) { local:f($a) }; local:f(1)");
  ASSERT_TRUE(q.ok());
  Status st = Normalize(&q.value(), {});
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnimplemented);
}

TEST(NormalizeTest, ArityMismatchRejected) {
  Result<Query> q =
      ParseQuery("declare function local:f($a) { $a }; local:f(1, 2)");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(Normalize(&q.value(), {}).ok());
}

TEST(NormalizeTest, FreeVariableInBodyRejected) {
  Result<Query> q =
      ParseQuery("declare function local:f($a) { $a + $outer }; local:f(1)");
  ASSERT_TRUE(q.ok());
  Status st = Normalize(&q.value(), {});
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("free variable"), std::string::npos);
}

TEST(NormalizeTest, FunctionBodyNormalizedToo) {
  Query q = MustNormalize(
      "declare function local:f($a) { count($a) }; local:f((1,2))");
  std::string s = ExprToString(*q.body);
  EXPECT_NE(s.find("count(unordered("), std::string::npos) << s;
}

TEST(NormalizeTest, ShadowingBinderStopsRename) {
  Query q = MustNormalize(
      "declare function local:f($v) { for $v in (1,2) return $v }; "
      "local:f(9)");
  std::string s = ExprToString(*q.body);
  // The inner for re-binds $v; its body must reference the *inner* $v,
  // not the renamed parameter.
  EXPECT_NE(s.find("for $v in (1, 2) return $v"), std::string::npos) << s;
}

}  // namespace
}  // namespace exrquy
