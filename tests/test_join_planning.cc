// Join recognition & planning (opt/join_plan.*): the product-space
// predicate idiom must be lifted into value/theta joins exactly when the
// proof obligations hold, and never otherwise. Four layers of coverage:
//
//   * unit recognition over a handcrafted two-table document — equality
//     and theta predicates, an `and`-conjunction (one join per
//     conjunct), the whole-for-loop return composite, and two near-miss
//     shapes that look like joins but must not fire;
//   * the plan verifier's independent [join-isolation-claim] audit on
//     hand-built plans whose join predicates touch scaffolding columns
//     or mix hash-unsafe kinds;
//   * off-vs-on equivalence across the entire XMark corpus in both
//     ordering modes at 1 and 4 threads — byte-identical ordered
//     results, equal multisets unordered;
//   * governor faults injected through ThetaJoin plans, and a CI
//     wall-clock guard pinning Q9 under a deadline the retired
//     product-space plan could not meet.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <string>
#include <vector>

#include "algebra/algebra.h"
#include "api/session.h"
#include "engine/faults.h"
#include "opt/verify.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

namespace exrquy {
namespace {

using col::item;
using col::iter;
using col::pos;

// ---------------------------------------------------------------------
// Recognition hits and misses.

const char kDoc[] =
    R"(<root><as><a k="1" j="1"/><a k="2" j="9"/><a k="3" j="3"/></as>)"
    R"(<bs><b k="2"/><b k="3"/><b k="5"/></bs></root>)";

class JoinRecognitionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    session_ = new Session();
    ASSERT_TRUE(session_->LoadDocument("d.xml", kDoc).ok());
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }

  static Result<QueryResult> Run(const std::string& q,
                                 const QueryOptions& o) {
    return session_->Execute(q, o);
  }

  // Runs `q` with recognition on and off in both ordering modes and
  // asserts equal results either way (byte-identical ordered, equal
  // multisets unordered). Returns the default-options result.
  static QueryResult CheckEquivalent(const std::string& q) {
    QueryResult out;
    for (OrderingMode mode :
         {OrderingMode::kOrdered, OrderingMode::kUnordered}) {
      QueryOptions on;
      on.default_ordering = mode;
      QueryOptions off = on;
      off.join_recognition = false;
      Result<QueryResult> a = Run(q, on);
      Result<QueryResult> b = Run(q, off);
      EXPECT_TRUE(a.ok()) << a.status().ToString();
      EXPECT_TRUE(b.ok()) << b.status().ToString();
      if (!a.ok() || !b.ok()) return out;
      EXPECT_EQ(b->plan_optimized.value_join_ops, 0u);
      EXPECT_EQ(b->plan_optimized.theta_join_ops, 0u);
      if (mode == OrderingMode::kOrdered) {
        EXPECT_EQ(a->serialized, b->serialized);
        EXPECT_EQ(a->items, b->items);
        out = *a;
      } else {
        std::vector<std::string> ia = a->items;
        std::vector<std::string> ib = b->items;
        std::sort(ia.begin(), ia.end());
        std::sort(ib.begin(), ib.end());
        EXPECT_EQ(ia, ib);
      }
    }
    return out;
  }

  static Session* session_;
};

Session* JoinRecognitionTest::session_ = nullptr;

TEST_F(JoinRecognitionTest, EqualityPredicateBecomesValueJoin) {
  QueryResult r = CheckEquivalent(
      R"(for $a in doc("d.xml")/root/as/a
         return count(for $b in doc("d.xml")/root/bs/b
                      where $b/@k = $a/@k return $b))");
  EXPECT_GE(r.plan_optimized.value_join_ops, 1u);
  EXPECT_EQ(r.plan_optimized.theta_join_ops, 0u);
  EXPECT_EQ(r.items, (std::vector<std::string>{"0", "1", "1"}));
}

TEST_F(JoinRecognitionTest, OrderPredicateBecomesThetaJoin) {
  const std::string q =
      R"(for $a in doc("d.xml")/root/as/a
         return count(for $b in doc("d.xml")/root/bs/b
                      where $b/@k < $a/@k return $b))";
  QueryResult r = CheckEquivalent(q);
  EXPECT_GE(r.plan_optimized.theta_join_ops, 1u);
  EXPECT_EQ(r.items, (std::vector<std::string>{"0", "0", "1"}));

  // theta_join=false refuses the non-equality predicate while leaving
  // the result untouched.
  QueryOptions no_theta;
  no_theta.theta_join = false;
  Result<QueryResult> nt = Run(q, no_theta);
  ASSERT_TRUE(nt.ok()) << nt.status().ToString();
  EXPECT_EQ(nt->plan_optimized.theta_join_ops, 0u);
  EXPECT_EQ(nt->plan_optimized.value_join_ops, 0u);
  EXPECT_EQ(nt->items, r.items);
}

TEST_F(JoinRecognitionTest, ConjunctionYieldsOneJoinPerConjunct) {
  // `and` of two equality comparisons: each conjunct becomes its own
  // hash join, and the survivor sets intersect.
  QueryResult r = CheckEquivalent(
      R"(for $a in doc("d.xml")/root/as/a
         return count(for $b in doc("d.xml")/root/bs/b
                      where $b/@k = $a/@k and $b/@k = $a/@j
                      return $b))");
  EXPECT_GE(r.plan_optimized.value_join_ops, 2u);
  EXPECT_EQ(r.items, (std::vector<std::string>{"0", "0", "1"}));
}

TEST_F(JoinRecognitionTest, SemijoinReturnCompositeFires) {
  // The inner for-loop returns a constructed element: the whole return
  // composite is recognized and the product space itself retired.
  QueryResult r = CheckEquivalent(
      R"(for $a in doc("d.xml")/root/as/a
         return <hit>{for $b in doc("d.xml")/root/bs/b
                      where $b/@k = $a/@k
                      return <v>{$b/@k}</v>}</hit>)");
  EXPECT_GE(r.plan_optimized.value_join_ops, 1u);
  EXPECT_EQ(r.serialized,
            "<hit/><hit><v k=\"2\"/></hit><hit><v k=\"3\"/></hit>");
}

TEST_F(JoinRecognitionTest, InnerSequenceDependingOnOuterDoesNotFire) {
  // $b ranges over $a's own attributes — the inner sequence is not
  // loop-invariant, so no document-level rebuild is sound.
  QueryResult r = CheckEquivalent(
      R"(for $a in doc("d.xml")/root/as/a
         return count(for $b in $a/@k where $b = $a/@j return $b))");
  EXPECT_EQ(r.plan_optimized.value_join_ops, 0u);
  EXPECT_EQ(r.plan_optimized.theta_join_ops, 0u);
  EXPECT_EQ(r.items, (std::vector<std::string>{"1", "0", "1"}));
}

TEST_F(JoinRecognitionTest, PredicateWithoutOuterReferenceDoesNotFire) {
  // Both comparison sides live on the inner sequence: there is no
  // lifted outer side to re-root, so the shape must be refused.
  QueryResult r = CheckEquivalent(
      R"(for $a in doc("d.xml")/root/as/a
         return count(for $b in doc("d.xml")/root/bs/b
                      where $b/@k = $b/@k return $b))");
  EXPECT_EQ(r.plan_optimized.value_join_ops, 0u);
  EXPECT_EQ(r.plan_optimized.theta_join_ops, 0u);
  EXPECT_EQ(r.items, (std::vector<std::string>{"3", "3", "3"}));
}

// ---------------------------------------------------------------------
// The verifier's independent join-isolation audit.

class JoinIsolationVerifyTest : public ::testing::Test {
 protected:
  // (iter, pos, item) literal rows.
  OpId Triples(std::vector<std::array<int64_t, 3>> rows) {
    LitTable t;
    t.cols = {iter(), pos(), item()};
    for (const auto& r : rows) {
      t.rows.push_back(
          {Value::Int(r[0]), Value::Int(r[1]), Value::Int(r[2])});
    }
    return dag_.Lit(std::move(t));
  }

  // The right side of a join, columns renamed apart from the left's.
  OpId Renamed(OpId src) {
    return dag_.Project(src, {{iter2_, iter()}, {pos2_, pos()},
                              {item2_, item()}});
  }

  void ExpectRejected(OpId root, const std::string& invariant, OpId bad) {
    Status st = VerifyPlan(dag_, root);
    ASSERT_FALSE(st.ok()) << "expected a [" << invariant << "] rejection";
    EXPECT_NE(st.message().find("[" + invariant + "]"), std::string::npos)
        << st.message();
    EXPECT_NE(st.message().find("op " + std::to_string(bad)),
              std::string::npos)
        << st.message();
  }

  Dag dag_;
  ColId iter2_ = ColSym("viter2");
  ColId pos2_ = ColSym("vpos2");
  ColId item2_ = ColSym("vitem2");
};

TEST_F(JoinIsolationVerifyTest, AcceptsValueJoinOnItemValues) {
  OpId l = Triples({{1, 1, 5}, {2, 1, 7}});
  OpId r = Renamed(Triples({{1, 1, 5}, {1, 2, 9}}));
  OpId vj = dag_.ValueJoin(l, r, item(), item2_);
  EXPECT_TRUE(VerifyPlan(dag_, vj).ok());
}

TEST_F(JoinIsolationVerifyTest, RejectsValueJoinKeyedOnIteration) {
  OpId l = Triples({{1, 1, 5}});
  OpId r = Renamed(Triples({{1, 1, 5}}));
  OpId vj = dag_.ValueJoin(l, r, iter(), iter2_);
  ExpectRejected(vj, "join-isolation-claim", vj);
}

TEST_F(JoinIsolationVerifyTest, RejectsThetaJoinOnScaffolding) {
  OpId l = Triples({{1, 1, 5}});
  OpId r = Renamed(Triples({{1, 1, 5}}));
  OpId tj = dag_.ThetaJoin(l, r, pos(), FunKind::kLt, pos2_);
  ExpectRejected(tj, "join-isolation-claim", tj);
}

TEST_F(JoinIsolationVerifyTest, RejectsHashEqualityOverMixedKinds) {
  OpId l = Triples({{1, 1, 5}});
  LitTable t;
  t.cols = {iter(), pos(), item()};
  t.rows.push_back({Value::Int(1), Value::Int(1), Value::Bool(true)});
  OpId r = Renamed(dag_.Lit(std::move(t)));
  OpId vj = dag_.ValueJoin(l, r, item(), item2_);
  ExpectRejected(vj, "join-isolation-claim", vj);
}

// ---------------------------------------------------------------------
// Off-vs-on equivalence across the XMark corpus.

QueryOptions Threads(int n) {
  QueryOptions o;
  o.num_threads = n;
  o.chunk_rows = 7;
  return o;
}

class JoinCorpusTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    session_ = new Session();
    XMarkOptions options;
    options.scale = 0.004;
    ASSERT_TRUE(
        session_->LoadDocument("auction.xml", GenerateXMark(options)).ok());
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }
  static Session* session_;
};

Session* JoinCorpusTest::session_ = nullptr;

class JoinCorpusQueryTest : public JoinCorpusTest,
                            public ::testing::WithParamInterface<int> {};

TEST_P(JoinCorpusQueryTest, OffVsOnEquivalentAtEveryThreadCount) {
  const XMarkQuery& q = XMarkQueries()[GetParam()];
  for (OrderingMode mode :
       {OrderingMode::kOrdered, OrderingMode::kUnordered}) {
    std::string on_serialized_at_one;
    for (int threads : {1, 4}) {
      QueryOptions on = Threads(threads);
      on.default_ordering = mode;
      QueryOptions off = on;
      off.join_recognition = false;
      Result<QueryResult> a = session_->Execute(q.text, on);
      Result<QueryResult> b = session_->Execute(q.text, off);
      std::string context = std::string(q.name) + " threads=" +
                            std::to_string(threads) +
                            (mode == OrderingMode::kUnordered ? " unordered"
                                                              : " ordered");
      ASSERT_TRUE(a.ok()) << context << ": " << a.status().ToString();
      ASSERT_TRUE(b.ok()) << context << ": " << b.status().ToString();
      EXPECT_EQ(b->plan_optimized.value_join_ops, 0u) << context;
      EXPECT_EQ(b->plan_optimized.theta_join_ops, 0u) << context;
      if (mode == OrderingMode::kOrdered) {
        // Only the join flags differ, so even Q10's free distinct-values
        // order is pinned identically on both sides.
        EXPECT_EQ(a->serialized, b->serialized) << context;
        EXPECT_EQ(a->items, b->items) << context;
      } else {
        std::vector<std::string> ia = a->items;
        std::vector<std::string> ib = b->items;
        std::sort(ia.begin(), ia.end());
        std::sort(ib.begin(), ib.end());
        EXPECT_EQ(ia, ib) << context;
      }
      // The recognized plans themselves are deterministic across thread
      // counts, byte for byte.
      if (threads == 1) {
        on_serialized_at_one = a->serialized;
      } else {
        EXPECT_EQ(a->serialized, on_serialized_at_one) << context;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, JoinCorpusQueryTest,
                         ::testing::Range(0, 20),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return XMarkQueries()[info.param].name;
                         });

// ---------------------------------------------------------------------
// Governor faults through ThetaJoin plans.

TEST_F(JoinCorpusTest, GovernorFaultsThroughThetaJoin) {
  struct Fault {
    const char* name;
    FaultPlan plan;
    StatusCode expected;
  };
  std::vector<Fault> faults;
  {
    FaultPlan p;
    p.cancel_at_op = 2;
    faults.push_back({"cancel@op2", p, StatusCode::kCancelled});
  }
  {
    FaultPlan p;
    p.deadline_at_chunk = 2;
    faults.push_back({"deadline@chunk2", p, StatusCode::kDeadlineExceeded});
  }
  {
    FaultPlan p;
    p.fail_alloc = 5;
    faults.push_back({"alloc@5", p, StatusCode::kResourceExhausted});
  }

  for (const char* name : {"Q11", "Q12"}) {
    const std::string& text = XMarkQueryText(name);
    // Never-faulted reference; its plan must actually run a ThetaJoin so
    // the fault counters tick through the new kernels.
    Result<QueryResult> reference = session_->Execute(text, Threads(1));
    ASSERT_TRUE(reference.ok())
        << name << ": " << reference.status().ToString();
    ASSERT_GE(reference->plan_optimized.theta_join_ops, 1u) << name;

    for (const Fault& fault : faults) {
      std::string context = std::string(name) + " " + fault.name;
      StatusCode outcome_at_one = StatusCode::kOk;
      for (int threads : {1, 4}) {
        QueryOptions o = Threads(threads);
        o.faults = fault.plan;
        Result<QueryResult> r = session_->Execute(text, o);
        StatusCode outcome = r.ok() ? StatusCode::kOk : r.status().code();
        if (!r.ok()) {
          EXPECT_EQ(outcome, fault.expected)
              << context << " threads=" << threads << ": "
              << r.status().ToString();
        }
        if (threads == 1) {
          outcome_at_one = outcome;
        } else {
          EXPECT_EQ(outcome, outcome_at_one) << context;
        }
        // After any abort the Session re-runs the same query, unfaulted,
        // to a byte-identical result.
        Result<QueryResult> again = session_->Execute(text, Threads(threads));
        ASSERT_TRUE(again.ok())
            << context << ": " << again.status().ToString();
        EXPECT_EQ(again->serialized, reference->serialized) << context;
      }
    }
  }
}

// ---------------------------------------------------------------------
// CI wall-clock regression guard.

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    setenv(name, value, 1);
  }
  ~ScopedEnv() { unsetenv(name_); }

 private:
  const char* name_;
};

TEST(JoinDeadlineGuard, Q9CompletesUnderCiDeadline) {
  // At scale 0.1 the retired product-space plan for Q9 needs seconds of
  // cubic-blowup evaluation; the recognized join plan needs tens of
  // milliseconds. Running under the environment deadline asserts the
  // regression guard end to end: if recognition stops firing, the
  // governor trips kDeadlineExceeded here long before a CI timeout.
  Session session;
  XMarkOptions options;
  options.scale = 0.1;
  ASSERT_TRUE(
      session.LoadDocument("auction.xml", GenerateXMark(options)).ok());
  ScopedEnv env("EXRQUY_DEADLINE_MS", "2000");
  Result<QueryResult> r = session.Execute(XMarkQueryText("Q9"), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r->plan_optimized.value_join_ops, 1u);
  EXPECT_FALSE(r->items.empty());
}

}  // namespace
}  // namespace exrquy
