#include "opt/facts_audit.h"

#include <algorithm>

namespace exrquy {
namespace {

// Everything that is true of a relation with at most one row: any column
// is trivially constant, order-meaningless, and row-identifying.
void SaturateSingleRow(const Op& op, OpFacts* f) {
  for (ColId c : op.schema) {
    f->constant.insert(c);
    f->arbitrary.insert(c);
    f->keys.insert(c);
  }
}

// Deliberately local saturating arithmetic (not shared with
// opt/analyses.cc): the whole point of the fact base is that it is
// derived independently of the implementation it audits.
uint64_t BoundAdd(uint64_t a, uint64_t b) {
  if (a == kUnboundedRows || b == kUnboundedRows) return kUnboundedRows;
  uint64_t s = a + b;
  return s < a ? kUnboundedRows : s;
}

uint64_t BoundMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kUnboundedRows || b == kUnboundedRows) return kUnboundedRows;
  if (a > kUnboundedRows / b) return kUnboundedRows;
  return a * b;
}

// ---------------------------------------------------------------------------
// Semantic kinds and sorted-prefix facts: independent re-derivations of
// the two static-analysis domains behind the order-dependency and
// semantic-type trades.
// ---------------------------------------------------------------------------

ItemKind LitValueKind(const Value& v) {
  switch (v.kind) {
    case ValueKind::kInt:
      return ItemKind::kInt;
    case ValueKind::kDouble:
      return ItemKind::kNumeric;
    case ValueKind::kString:
    case ValueKind::kUntyped:  // untypedAtomic compares in the string class
      return ItemKind::kString;
    case ValueKind::kBool:
      return ItemKind::kBool;
    case ValueKind::kNode:
      return ItemKind::kNode;
  }
  return ItemKind::kAny;
}

ItemKind FunResultKind(FunKind fun, ItemKind arg0) {
  switch (fun) {
    // Integer results.
    case FunKind::kIDiv:
    case FunKind::kStringLength:
      return ItemKind::kInt;
    // Numeric results (possibly fractional).
    case FunKind::kAdd:
    case FunKind::kSub:
    case FunKind::kMul:
    case FunKind::kDiv:
    case FunKind::kMod:
    case FunKind::kNeg:
    case FunKind::kToDouble:
    case FunKind::kAbs:
    case FunKind::kFloor:
    case FunKind::kCeiling:
    case FunKind::kRound:
      return ItemKind::kNumeric;
    // Boolean results.
    case FunKind::kEq:
    case FunKind::kNe:
    case FunKind::kLt:
    case FunKind::kLe:
    case FunKind::kGt:
    case FunKind::kGe:
    case FunKind::kNodeBefore:
    case FunKind::kNodeAfter:
    case FunKind::kNodeIs:
    case FunKind::kAnd:
    case FunKind::kOr:
    case FunKind::kNot:
    case FunKind::kContains:
    case FunKind::kStartsWith:
    case FunKind::kEndsWith:
      return ItemKind::kBool;
    // String results.
    case FunKind::kToString:
    case FunKind::kConcat:
    case FunKind::kUpperCase:
    case FunKind::kLowerCase:
    case FunKind::kNormalizeSpace:
    case FunKind::kSubstring2:
    case FunKind::kSubstring3:
    case FunKind::kNodeName:
      return ItemKind::kString;
    case FunKind::kAtomize:
      // Atomics pass through; nodes atomize to untypedAtomic (string
      // class).
      if (arg0 == ItemKind::kNode) return ItemKind::kString;
      return arg0;
  }
  return ItemKind::kAny;
}

void DeriveKinds(const Dag& dag, OpId id,
                 const std::unordered_map<OpId, OpFacts>& facts,
                 OpFacts* out) {
  const Op& op = dag.op(id);
  auto child = [&](size_t i) -> const OpFacts& {
    return facts.at(op.children[i]);
  };
  auto put = [&](ColId c, ItemKind k) {
    if (k != ItemKind::kAny) out->kinds[c] = k;
  };
  auto inherit = [&](const OpFacts& f) {
    for (const auto& [c, k] : f.kinds) {
      if (op.HasCol(c)) out->kinds.emplace(c, k);
    }
  };
  switch (op.kind) {
    case OpKind::kLit:
      for (size_t i = 0; i < op.lit.cols.size(); ++i) {
        if (op.lit.rows.empty()) continue;
        ItemKind k = LitValueKind(op.lit.rows[0][i]);
        for (size_t r = 1; r < op.lit.rows.size(); ++r) {
          k = KindJoin(k, LitValueKind(op.lit.rows[r][i]));
        }
        put(op.lit.cols[i], k);
      }
      break;
    case OpKind::kProject:
      for (const auto& [n, o] : op.proj) put(n, KindAt(child(0), o));
      break;
    case OpKind::kSelect:
    case OpKind::kDistinct:
    case OpKind::kDifference:
    case OpKind::kSemiJoin:
    case OpKind::kCardCheck:
      inherit(child(0));
      break;
    case OpKind::kRowNum:
    case OpKind::kRowId:
      inherit(child(0));
      out->kinds[op.col] = ItemKind::kInt;
      break;
    case OpKind::kFun:
      inherit(child(0));
      out->kinds.erase(op.col);
      put(op.col, FunResultKind(
                      op.fun, op.args.empty() ? ItemKind::kAny
                                              : KindAt(child(0), op.args[0])));
      break;
    case OpKind::kAggr: {
      if (op.part != kNoCol) put(op.part, KindAt(child(0), op.part));
      ItemKind k = ItemKind::kAny;
      switch (op.aggr) {
        case AggrKind::kCount:
          k = ItemKind::kInt;
          break;
        case AggrKind::kSum:
        case AggrKind::kAvg:
          k = ItemKind::kNumeric;
          break;
        case AggrKind::kMin:
        case AggrKind::kMax:
          k = KindAt(child(0), op.col2);
          if (k == ItemKind::kNode) k = ItemKind::kAny;  // atomizes first
          break;
        case AggrKind::kEbv:
          k = ItemKind::kBool;
          break;
        case AggrKind::kStrJoin:
          k = ItemKind::kString;
          break;
      }
      put(op.col, k);
      break;
    }
    case OpKind::kStep:
      put(col::iter(), KindAt(child(0), col::iter()));
      out->kinds[col::item()] = ItemKind::kNode;
      break;
    case OpKind::kRange:
      put(col::iter(), KindAt(child(0), col::iter()));
      out->kinds[col::item()] = ItemKind::kInt;
      break;
    case OpKind::kDoc:
      out->kinds[col::item()] = ItemKind::kNode;
      break;
    case OpKind::kElem:
    case OpKind::kAttr:
    case OpKind::kTextNode:
      put(col::iter(), KindAt(child(1), col::iter()));
      out->kinds[col::item()] = ItemKind::kNode;
      break;
    case OpKind::kEquiJoin:
    case OpKind::kThetaJoin:
    case OpKind::kCross:
      inherit(child(0));
      inherit(child(1));
      break;
    case OpKind::kUnion:
      if (child(0).no_rows) {
        inherit(child(1));
      } else if (child(1).no_rows) {
        inherit(child(0));
      } else {
        for (const auto& [c, k] : child(0).kinds) {
          if (op.HasCol(c)) put(c, KindJoin(k, KindAt(child(1), c)));
        }
      }
      break;
  }
}

// The audit's fact caps are wider than the analysis's (6 facts of 4
// keys): subsumption only ever replaces a fact with a stronger one, so a
// wider derived set can never lose a claim the tracker retained.
constexpr size_t kAuditMaxSortedFacts = 12;
constexpr size_t kAuditMaxSortedKeys = 6;

void AddSorted(std::vector<OrderFact>* sorted, OrderFact f) {
  std::vector<SortKey> keys;
  for (const SortKey& k : f.keys) {
    bool dup = false;
    for (const SortKey& seen : keys) dup |= seen.col == k.col;
    if (!dup) keys.push_back(k);
  }
  if (keys.size() > kAuditMaxSortedKeys) {
    keys.resize(kAuditMaxSortedKeys);
    f.strict = false;
  }
  f.keys = std::move(keys);
  if (f.keys.empty()) return;
  for (const OrderFact& have : *sorted) {
    if (SortedImplies(have, f)) return;
  }
  sorted->erase(std::remove_if(sorted->begin(), sorted->end(),
                               [&](const OrderFact& have) {
                                 return SortedImplies(f, have);
                               }),
                sorted->end());
  if (sorted->size() >= kAuditMaxSortedFacts) return;
  sorted->push_back(std::move(f));
}

void DeriveSorted(const Dag& dag, OpId id,
                  const std::unordered_map<OpId, OpFacts>& facts,
                  OpFacts* out) {
  const Op& op = dag.op(id);
  auto child = [&](size_t i) -> const OpFacts& {
    return facts.at(op.children[i]);
  };
  auto add = [&](OrderFact f) { AddSorted(&out->sorted, std::move(f)); };
  // Order-preserving ops keep child facts, truncated at the first key
  // the schema no longer carries (truncation loses strictness).
  auto inherit = [&](const OpFacts& f) {
    for (const OrderFact& fact : f.sorted) {
      OrderFact g;
      for (const SortKey& k : fact.keys) {
        if (!op.HasCol(k.col)) break;
        g.keys.push_back(k);
      }
      if (g.keys.empty()) continue;
      g.strict = fact.strict && g.keys.size() == fact.keys.size();
      add(std::move(g));
    }
  };
  switch (op.kind) {
    case OpKind::kLit:
      for (size_t i = 0; i < op.lit.cols.size(); ++i) {
        bool ints = true;
        for (const auto& row : op.lit.rows) {
          ints &= row[i].kind == ValueKind::kInt;
        }
        if (!ints) continue;
        bool asc = true;
        bool desc = true;
        bool ties = false;
        for (size_t r = 1; r < op.lit.rows.size(); ++r) {
          int64_t a = op.lit.rows[r - 1][i].i;
          int64_t b = op.lit.rows[r][i].i;
          asc &= a <= b;
          desc &= a >= b;
          ties |= a == b;
        }
        if (asc) {
          add({{{op.lit.cols[i], false}}, !ties});
        } else if (desc) {
          add({{{op.lit.cols[i], true}}, !ties});
        }
      }
      break;
    case OpKind::kProject:
      for (const OrderFact& fact : child(0).sorted) {
        OrderFact g;
        bool complete = true;
        for (const SortKey& k : fact.keys) {
          ColId renamed = kNoCol;
          for (const auto& [n, o] : op.proj) {
            if (o == k.col) {
              renamed = n;
              break;
            }
          }
          if (renamed == kNoCol) {
            complete = false;
            break;
          }
          g.keys.push_back({renamed, k.descending});
        }
        if (g.keys.empty()) continue;
        g.strict = fact.strict && complete;
        add(std::move(g));
      }
      break;
    case OpKind::kSelect:
    case OpKind::kDistinct:
    case OpKind::kDifference:
    case OpKind::kSemiJoin:
    case OpKind::kCardCheck:
      inherit(child(0));
      break;
    case OpKind::kRowNum:
      inherit(child(0));
      // Ranks are written back into the input's row slots; when the
      // requested order is already realized the stable sort is the
      // identity and the ranks are 1..n in physical order.
      if ((op.part == kNoCol ||
           child(0).constant.count(op.part) != 0) &&
          SortedCovers(child(0), op.order)) {
        add({{{op.col, false}}, true});
      }
      break;
    case OpKind::kRowId:
      inherit(child(0));
      add({{{op.col, false}}, true});  // r+1 per physical row r
      break;
    case OpKind::kFun:
      inherit(child(0));
      // Monotone single-argument maps over statically numeric input
      // (OrderCompare is type-class-major: monotonicity only holds
      // inside the numeric class).
      if (op.args.size() == 1 &&
          KindIsNumeric(KindAt(child(0), op.args[0]))) {
        bool iso = op.fun == FunKind::kToDouble;
        bool mono = op.fun == FunKind::kFloor ||
                    op.fun == FunKind::kCeiling || op.fun == FunKind::kRound;
        bool anti = op.fun == FunKind::kNeg;
        if (iso || mono || anti) {
          for (const OrderFact& fact : child(0).sorted) {
            for (size_t i = 0; i < fact.keys.size(); ++i) {
              if (fact.keys[i].col != op.args[0]) continue;
              OrderFact g = fact;
              g.keys[i].col = op.col;
              if (anti) g.keys[i].descending = !g.keys[i].descending;
              if (mono) {
                g.keys.resize(i + 1);  // ties in the image hide order
                g.strict = false;
              }
              add(std::move(g));
            }
          }
        }
      }
      break;
    case OpKind::kAggr:
      if (op.part != kNoCol) {
        // Groups are emitted in first-appearance order.
        for (const OrderFact& fact : child(0).sorted) {
          if (!fact.keys.empty() && fact.keys[0].col == op.part) {
            add({{fact.keys[0]}, true});
          }
        }
      }
      break;
    case OpKind::kStep:
      // The engine sorts and de-duplicates step output globally.
      add({{{col::iter(), false}, {col::item(), false}}, true});
      break;
    case OpKind::kRange:
      for (const OrderFact& fact : child(0).sorted) {
        if (fact.keys[0].col != col::iter()) continue;
        if (fact.keys.size() == 1 && fact.strict) {
          add({{fact.keys[0], {col::item(), false}}, true});
        } else {
          add({{fact.keys[0]}, false});
        }
      }
      break;
    case OpKind::kCross:
      // Left-major enumeration.
      for (const OrderFact& f : child(0).sorted) {
        add({f.keys, f.strict && child(1).max_rows <= 1});
        if (f.strict) {
          for (const OrderFact& g : child(1).sorted) {
            OrderFact cat;
            cat.keys = f.keys;
            cat.keys.insert(cat.keys.end(), g.keys.begin(), g.keys.end());
            cat.strict = g.strict;
            add(std::move(cat));
          }
        }
      }
      if (child(0).max_rows <= 1) {
        for (const OrderFact& g : child(1).sorted) add(g);
      }
      break;
    case OpKind::kEquiJoin:
    case OpKind::kThetaJoin:
      // Only a statically at-most-one-row far side guarantees the
      // output is a subsequence of the near side (the engine picks the
      // equi-join build side dynamically; the theta kernel may emit
      // per-probe matches in build-value order).
      if (child(1).max_rows <= 1) {
        for (const OrderFact& f : child(0).sorted) add(f);
      }
      if (child(0).max_rows <= 1) {
        for (const OrderFact& g : child(1).sorted) add(g);
      }
      break;
    case OpKind::kUnion:
      if (child(0).no_rows) {
        inherit(child(1));
      } else if (child(1).no_rows) {
        inherit(child(0));
      }
      break;
    case OpKind::kDoc:
    case OpKind::kElem:
    case OpKind::kAttr:
    case OpKind::kTextNode:
      break;
  }
}

// One operator's scaffolding transfer (see DeriveScaffolding); the
// children's sets must already be present in `scaff`.
ColSet DeriveOpScaffolding(const Dag& dag, OpId id,
                           const std::unordered_map<OpId, ColSet>& scaff) {
  const Op& op = dag.op(id);
  ColSet out;
  auto from = [&](size_t i) -> const ColSet& {
    return scaff.at(op.children[i]);
  };
  auto inherit = [&](const ColSet& s) {
    for (ColId c : op.schema) {
      if (s.count(c) != 0) out.insert(c);
    }
  };
  switch (op.kind) {
    case OpKind::kLit:
      // Literal loop relations seed the iteration columns.
      for (ColId c : op.lit.cols) {
        if (c == col::iter() || c == col::pos()) out.insert(c);
      }
      break;
    case OpKind::kDoc:
      break;  // a document node is an item value
    case OpKind::kProject:
      for (const auto& [n, o] : op.proj) {
        if (from(0).count(o) != 0) out.insert(n);
      }
      break;
    case OpKind::kSelect:
    case OpKind::kDistinct:
    case OpKind::kDifference:
    case OpKind::kSemiJoin:
    case OpKind::kCardCheck:
      inherit(from(0));
      break;
    case OpKind::kEquiJoin:
    case OpKind::kThetaJoin:
    case OpKind::kCross:
    case OpKind::kUnion:
      inherit(from(0));
      inherit(from(1));
      break;
    case OpKind::kRowNum:
    case OpKind::kRowId:
      // The produced numbering is the scaffolding the paper's %-trading
      // machinery manages.
      inherit(from(0));
      out.insert(op.col);
      break;
    case OpKind::kFun:
      inherit(from(0));
      out.erase(op.col);
      for (ColId a : op.args) {
        if (from(0).count(a) != 0) out.insert(op.col);
      }
      break;
    case OpKind::kAggr:
      // The aggregate result is a value; the group column keeps its
      // nature.
      if (op.part != kNoCol && from(0).count(op.part) != 0) {
        out.insert(op.part);
      }
      break;
    case OpKind::kStep:
    case OpKind::kRange:
      // Output items are document nodes / range values; iter descends
      // from the context.
      if (from(0).count(col::iter()) != 0) out.insert(col::iter());
      break;
    case OpKind::kElem:
    case OpKind::kAttr:
    case OpKind::kTextNode:
      if (from(1).count(col::iter()) != 0) out.insert(col::iter());
      break;
  }
  return out;
}

}  // namespace

ItemKind KindAt(const OpFacts& f, ColId c) {
  auto it = f.kinds.find(c);
  return it == f.kinds.end() ? ItemKind::kAny : it->second;
}

bool SortedImplies(const OrderFact& f, const OrderFact& g) {
  bool f_prefix =
      f.keys.size() <= g.keys.size() &&
      std::equal(f.keys.begin(), f.keys.end(), g.keys.begin());
  if (f_prefix && f.strict) return true;  // no ties: any extension holds
  bool g_prefix =
      g.keys.size() <= f.keys.size() &&
      std::equal(g.keys.begin(), g.keys.end(), f.keys.begin());
  return g_prefix && !g.strict;  // longer sort implies its prefixes
}

bool SortedCovers(const OpFacts& f, const std::vector<SortKey>& requested) {
  if (f.at_most_one_row) return true;
  std::vector<SortKey> want;
  for (const SortKey& k : requested) {
    if (f.constant.count(k.col) == 0) want.push_back(k);
  }
  if (want.empty()) return true;
  for (const OrderFact& fact : f.sorted) {
    size_t qi = 0;
    size_t fi = 0;
    bool covered = false;
    while (true) {
      if (qi == want.size()) {
        covered = true;
        break;
      }
      while (fi < fact.keys.size() &&
             f.constant.count(fact.keys[fi].col) != 0) {
        ++fi;
      }
      if (fi == fact.keys.size()) {
        covered = fact.strict;
        break;
      }
      if (fact.keys[fi].col != want[qi].col ||
          fact.keys[fi].descending != want[qi].descending) {
        break;
      }
      if (f.keys.count(want[qi].col) != 0) {
        covered = true;  // duplicate-free: later criteria never fire
        break;
      }
      ++qi;
      ++fi;
    }
    if (covered) return true;
  }
  return false;
}

OpFacts DeriveOpFacts(const Dag& dag, OpId id,
                      const std::unordered_map<OpId, OpFacts>& facts) {
  const Op& op = dag.op(id);
  OpFacts out;
  auto child = [&](size_t i) -> const OpFacts& {
    return facts.at(op.children[i]);
  };
  // Copies the facts of columns that survive into this operator's schema
  // (row-preserving or row-subsetting operators).
  auto inherit = [&](const OpFacts& f, bool keep_keys) {
    for (ColId c : op.schema) {
      if (f.constant.count(c) != 0) out.constant.insert(c);
      if (f.arbitrary.count(c) != 0) out.arbitrary.insert(c);
      if (keep_keys && f.keys.count(c) != 0) out.keys.insert(c);
    }
  };

  switch (op.kind) {
    case OpKind::kLit: {
      size_t n = op.lit.rows.size();
      out.min_rows = out.max_rows = n;
      for (size_t i = 0; i < op.lit.cols.size(); ++i) {
        bool constant = true;
        bool distinct = true;
        for (size_t r = 0; r < n; ++r) {
          for (size_t r2 = r + 1; r2 < n; ++r2) {
            if (op.lit.rows[r][i] == op.lit.rows[r2][i]) {
              distinct = false;
            } else {
              constant = false;
            }
          }
        }
        if (constant) out.constant.insert(op.lit.cols[i]);
        if (distinct) out.keys.insert(op.lit.cols[i]);
      }
      break;
    }
    case OpKind::kProject: {
      const OpFacts& f = child(0);
      out.min_rows = f.min_rows;
      out.max_rows = f.max_rows;
      for (const auto& [n, o] : op.proj) {
        if (f.constant.count(o) != 0) out.constant.insert(n);
        if (f.arbitrary.count(o) != 0) out.arbitrary.insert(n);
        if (f.keys.count(o) != 0) out.keys.insert(n);
      }
      break;
    }
    // Row subsets: every per-column fact survives; only the lower row
    // bound is lost (CardCheck is row-preserving when it succeeds, and a
    // failing check produces no table at all).
    case OpKind::kSelect:
    case OpKind::kDifference:
    case OpKind::kSemiJoin: {
      const OpFacts& f = child(0);
      out.min_rows = 0;
      out.max_rows = f.max_rows;
      inherit(f, /*keep_keys=*/true);
      break;
    }
    case OpKind::kDistinct: {
      const OpFacts& f = child(0);
      out.min_rows = f.min_rows > 0 ? 1 : 0;
      out.max_rows = f.max_rows;
      inherit(f, /*keep_keys=*/true);
      break;
    }
    case OpKind::kCardCheck: {
      const OpFacts& f = child(0);
      out.min_rows = f.min_rows;
      out.max_rows = f.max_rows;
      inherit(f, /*keep_keys=*/true);
      // A passed per-iteration assertion of at most one row makes iter
      // duplicate-free. (Relies on the compiler invariant that the
      // checked relation's iterations all stem from the loop relation.)
      if (op.max_card <= 1) out.keys.insert(col::iter());
      break;
    }
    case OpKind::kEquiJoin:
    case OpKind::kThetaJoin:
    case OpKind::kCross: {
      const OpFacts& l = child(0);
      const OpFacts& r = child(1);
      if (op.kind == OpKind::kCross) {
        out.min_rows = BoundMul(l.min_rows, r.min_rows);
      } else {
        out.min_rows = 0;
      }
      out.max_rows = BoundMul(l.max_rows, r.max_rows);
      inherit(l, /*keep_keys=*/false);
      inherit(r, /*keep_keys=*/false);
      // A side's keys survive when each of its rows appears at most once:
      // the other side contributes at most one match per row.
      bool left_once;
      bool right_once;
      if (op.kind == OpKind::kEquiJoin) {
        left_once = r.keys.count(op.col2) != 0 || r.at_most_one_row;
        right_once = l.keys.count(op.col) != 0 || l.at_most_one_row;
      } else {
        left_once = r.at_most_one_row;
        right_once = l.at_most_one_row;
      }
      if (left_once) {
        for (ColId c : l.keys) out.keys.insert(c);
      }
      if (right_once) {
        for (ColId c : r.keys) out.keys.insert(c);
      }
      break;
    }
    case OpKind::kUnion: {
      const OpFacts& l = child(0);
      const OpFacts& r = child(1);
      out.min_rows = BoundAdd(l.min_rows, r.min_rows);
      out.max_rows = BoundAdd(l.max_rows, r.max_rows);
      if (l.no_rows) {
        inherit(r, /*keep_keys=*/true);
      } else if (r.no_rows) {
        inherit(l, /*keep_keys=*/true);
      } else {
        // Constancy and keys need cross-branch value reasoning (out of
        // scope); order-meaninglessness survives when both agree.
        for (ColId c : l.arbitrary) {
          if (r.arbitrary.count(c) != 0) out.arbitrary.insert(c);
        }
      }
      break;
    }
    case OpKind::kRowNum: {
      const OpFacts& f = child(0);
      out.min_rows = f.min_rows;
      out.max_rows = f.max_rows;
      inherit(f, /*keep_keys=*/true);
      // A dense numbering over the whole table identifies rows; within
      // partitions it repeats across groups.
      if (op.part == kNoCol) out.keys.insert(op.col);
      break;
    }
    case OpKind::kRowId: {
      const OpFacts& f = child(0);
      out.min_rows = f.min_rows;
      out.max_rows = f.max_rows;
      inherit(f, /*keep_keys=*/true);
      out.keys.insert(op.col);
      // A plain # numbers rows in arbitrary order; a positional #
      // (RowId^) numbers the physical row order, which carries the very
      // order the order-dependency trade proved meaningful.
      if (!op.positional) out.arbitrary.insert(op.col);
      break;
    }
    case OpKind::kFun: {
      const OpFacts& f = child(0);
      out.min_rows = f.min_rows;
      out.max_rows = f.max_rows;
      inherit(f, /*keep_keys=*/true);
      bool all_const = true;
      for (ColId a : op.args) {
        if (f.constant.count(a) == 0) all_const = false;
      }
      if (all_const) out.constant.insert(op.col);
      break;
    }
    case OpKind::kAggr: {
      const OpFacts& f = child(0);
      if (op.part == kNoCol) {
        // The whole table is one group; the engine emits that group even
        // for an empty input (count() = 0, EBV = false, ...).
        out.min_rows = out.max_rows = 1;
      } else {
        out.min_rows = f.min_rows > 0 ? 1 : 0;
        out.max_rows = f.max_rows;
      }
      if (op.part != kNoCol) {
        if (f.constant.count(op.part) != 0) out.constant.insert(op.part);
        if (f.arbitrary.count(op.part) != 0) out.arbitrary.insert(op.part);
        out.keys.insert(op.part);  // one output row per group
      }
      break;
    }
    case OpKind::kStep: {
      // (iter, item) rows fanned out from the context; iter facts flow
      // through, cardinality does not (an empty context stays empty).
      const OpFacts& f = child(0);
      out.min_rows = 0;
      out.max_rows = f.max_rows == 0 ? 0 : kUnboundedRows;
      if (f.constant.count(col::iter()) != 0) {
        out.constant.insert(col::iter());
      }
      if (f.arbitrary.count(col::iter()) != 0) {
        out.arbitrary.insert(col::iter());
      }
      // Document structure: every node has exactly one parent, at most
      // one attribute of a given name, and belongs to exactly one
      // element's attribute list.
      switch (op.axis) {
        case Axis::kSelf:  // a row subset of the (iter, item) context
          if (f.keys.count(col::iter()) != 0) out.keys.insert(col::iter());
          if (f.keys.count(col::item()) != 0) out.keys.insert(col::item());
          break;
        case Axis::kParent:  // at most one output row per context row
          if (f.keys.count(col::iter()) != 0) out.keys.insert(col::iter());
          break;
        case Axis::kChild:  // distinct parents have disjoint children
          if (f.keys.count(col::item()) != 0) out.keys.insert(col::item());
          break;
        case Axis::kAttribute:
          // Attributes of distinct elements are distinct nodes; a name
          // test additionally caps the fan-out at one row per context.
          if (f.keys.count(col::item()) != 0) out.keys.insert(col::item());
          if (op.test.kind == NodeTest::Kind::kName &&
              f.keys.count(col::iter()) != 0) {
            out.keys.insert(col::iter());
          }
          break;
        default:
          // Descendant/ancestor/sibling subtrees of distinct context
          // nodes can overlap: no keys survive.
          break;
      }
      break;
    }
    case OpKind::kRange: {
      const OpFacts& f = child(0);
      out.min_rows = 0;
      out.max_rows = f.max_rows == 0 ? 0 : kUnboundedRows;
      if (f.constant.count(col::iter()) != 0) {
        out.constant.insert(col::iter());
      }
      if (f.arbitrary.count(col::iter()) != 0) {
        out.arbitrary.insert(col::iter());
      }
      break;
    }
    case OpKind::kElem:
    case OpKind::kAttr:
    case OpKind::kTextNode: {
      // One fresh node per row of the loop relation (child 1).
      const OpFacts& loop = child(1);
      out.min_rows = loop.min_rows;
      out.max_rows = loop.max_rows;
      if (loop.constant.count(col::iter()) != 0) {
        out.constant.insert(col::iter());
      }
      if (loop.arbitrary.count(col::iter()) != 0) {
        out.arbitrary.insert(col::iter());
      }
      if (loop.keys.count(col::iter()) != 0) out.keys.insert(col::iter());
      out.keys.insert(col::item());  // distinct node identities
      break;
    }
    case OpKind::kDoc:
      out.min_rows = out.max_rows = 1;
      break;
  }
  out.at_most_one_row = out.max_rows <= 1;
  out.no_rows = out.max_rows == 0;
  if (out.at_most_one_row) SaturateSingleRow(op, &out);
  DeriveKinds(dag, id, facts, &out);
  DeriveSorted(dag, id, facts, &out);
  return out;
}

std::unordered_map<OpId, OpFacts> DeriveFacts(const Dag& dag, OpId root) {
  std::unordered_map<OpId, OpFacts> facts;
  for (OpId id : dag.ReachableFrom(root)) {
    facts.emplace(id, DeriveOpFacts(dag, id, facts));
  }
  return facts;
}

std::unordered_map<OpId, ColSet> DeriveScaffolding(
    const Dag& dag, const std::vector<OpId>& order) {
  std::unordered_map<OpId, ColSet> scaff;
  for (OpId id : order) {
    scaff.emplace(id, DeriveOpScaffolding(dag, id, scaff));
  }
  return scaff;
}

std::unordered_map<OpId, ColSet> DeriveLiveColumns(const Dag& dag, OpId root,
                                                   const ColSet& seed) {
  std::unordered_map<OpId, ColSet> icols;
  icols[root] = seed;

  std::vector<OpId> order = dag.ReachableFrom(root);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    OpId id = *it;
    const Op& op = dag.op(id);
    const ColSet& r = icols[id];

    auto need = [&](size_t child, ColId c) {
      if (c == kNoCol) return;
      icols[op.children[child]].insert(c);
    };
    auto need_set = [&](size_t child, const ColSet& cols) {
      const Op& ch = dag.op(op.children[child]);
      for (ColId c : cols) {
        if (ch.HasCol(c)) icols[op.children[child]].insert(c);
      }
    };

    switch (op.kind) {
      case OpKind::kLit:
      case OpKind::kDoc:
        break;
      case OpKind::kProject:
        for (const auto& [n, o] : op.proj) {
          if (r.count(n) != 0) need(0, o);
        }
        break;
      case OpKind::kSelect:
        need_set(0, r);
        need(0, op.col);
        break;
      case OpKind::kEquiJoin:
      case OpKind::kThetaJoin:
        need_set(0, r);
        need_set(1, r);
        need(0, op.col);
        need(1, op.col2);
        break;
      case OpKind::kCross:
      case OpKind::kUnion:
        need_set(0, r);
        need_set(1, r);
        break;
      case OpKind::kDifference:
      case OpKind::kSemiJoin:
        need_set(0, r);
        for (ColId k : op.keys) {
          need(0, k);
          need(1, k);
        }
        break;
      case OpKind::kDistinct:
        for (ColId c : dag.op(op.children[0]).schema) need(0, c);
        break;
      case OpKind::kRowNum: {
        ColSet pass = r;
        pass.erase(op.col);
        need_set(0, pass);
        for (const SortKey& k : op.order) need(0, k.col);
        need(0, op.part);
        break;
      }
      case OpKind::kRowId: {
        ColSet pass = r;
        pass.erase(op.col);
        need_set(0, pass);
        break;
      }
      case OpKind::kFun: {
        ColSet pass = r;
        pass.erase(op.col);
        need_set(0, pass);
        for (ColId a : op.args) need(0, a);
        break;
      }
      case OpKind::kAggr:
        need(0, op.col2);
        need(0, op.part);
        for (ColId k : op.keys) need(0, k);
        break;
      case OpKind::kStep:
        need(0, col::iter());
        need(0, col::item());
        break;
      case OpKind::kElem:
      case OpKind::kAttr:
      case OpKind::kTextNode:
        need(0, col::iter());
        need(0, col::pos());
        need(0, col::item());
        need(1, col::iter());
        break;
      case OpKind::kRange:
        need(0, col::iter());
        need(0, op.col);
        need(0, op.col2);
        break;
      case OpKind::kCardCheck:
        need_set(0, r);
        need(0, col::iter());
        need(1, col::iter());
        break;
    }
  }
  return icols;
}

std::string ColSetToString(const ColSet& cols) {
  std::string out = "{";
  bool first = true;
  for (ColId c : cols) {
    if (!first) out += ",";
    first = false;
    out += ColName(c);
  }
  return out + "}";
}

const OpFacts& FactsAudit::Get(OpId id) {
  auto it = facts_.find(id);
  if (it != facts_.end()) return it->second;
  for (OpId x : dag_->ReachableFrom(id)) {
    if (facts_.count(x) == 0) {
      facts_.emplace(x, DeriveOpFacts(*dag_, x, facts_));
    }
  }
  return facts_.at(id);
}

const ColSet& FactsAudit::Scaffolding(OpId id) {
  auto it = scaff_.find(id);
  if (it != scaff_.end()) return it->second;
  for (OpId x : dag_->ReachableFrom(id)) {
    if (scaff_.count(x) == 0) {
      scaff_.emplace(x, DeriveOpScaffolding(*dag_, x, scaff_));
    }
  }
  return scaff_.at(id);
}

bool FactsAudit::MayRaise(OpId id) {
  auto it = raise_.find(id);
  if (it != raise_.end()) return it->second != 0;
  for (OpId x : dag_->ReachableFrom(id)) {
    if (raise_.count(x) != 0) continue;
    const Op& op = dag_->op(x);
    bool r = false;
    for (OpId c : op.children) r |= raise_.at(c) != 0;
    // Independent restatement of the error-capability rules
    // (RaiseAnalysis in opt/analyses.cc), gated on the audit's own row
    // bounds rather than CardTracker's.
    switch (op.kind) {
      case OpKind::kDoc:
        r = true;  // unknown document name
        break;
      case OpKind::kCardCheck:
        r = true;  // can fire even on an empty input (min_card > 0)
        break;
      case OpKind::kRange:
      case OpKind::kFun:
        // Non-integer bounds / casts / arithmetic errors — per input row.
        r = r || Get(op.children[0]).max_rows > 0;
        break;
      case OpKind::kThetaJoin:
        // The comparison raises on incomparable pairs — only when pairs
        // can exist at all.
        r = r || (Get(op.children[0]).max_rows > 0 &&
                  Get(op.children[1]).max_rows > 0);
        break;
      case OpKind::kAggr:
        switch (op.aggr) {
          case AggrKind::kSum:
          case AggrKind::kMax:
          case AggrKind::kMin:
          case AggrKind::kAvg:
            r = true;  // type errors; avg/min/max of an empty group
            break;
          default:
            break;
        }
        break;
      default:
        break;
    }
    raise_.emplace(x, r ? 1 : 0);
  }
  return raise_.at(id) != 0;
}

}  // namespace exrquy
