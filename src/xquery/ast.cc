#include "xquery/ast.h"

#include <sstream>

#include "common/check.h"

namespace exrquy {

ExprPtr MakeExpr(ExprKind kind) { return std::make_unique<Expr>(kind); }

ExprPtr CloneExpr(const Expr& e) {
  ExprPtr out = MakeExpr(e.kind);
  for (const ExprPtr& c : e.children) {
    out->children.push_back(CloneExpr(*c));
  }
  out->int_value = e.int_value;
  out->double_value = e.double_value;
  out->string_value = e.string_value;
  out->op = e.op;
  out->axis = e.axis;
  out->test_kind = e.test_kind;
  out->test_name = e.test_name;
  for (const FlworClause& c : e.clauses) {
    FlworClause copy;
    copy.kind = c.kind;
    copy.var = c.var;
    copy.pos_var = c.pos_var;
    copy.expr = CloneExpr(*c.expr);
    out->clauses.push_back(std::move(copy));
  }
  if (e.where) out->where = CloneExpr(*e.where);
  for (const OrderSpec& s : e.order_by) {
    OrderSpec copy;
    copy.key = CloneExpr(*s.key);
    copy.descending = s.descending;
    out->order_by.push_back(std::move(copy));
  }
  if (e.ret) out->ret = CloneExpr(*e.ret);
  out->mode = e.mode;
  for (const CtorPart& p : e.parts) {
    CtorPart copy;
    copy.text = p.text;
    if (p.expr) copy.expr = CloneExpr(*p.expr);
    out->parts.push_back(std::move(copy));
  }
  return out;
}

namespace {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kEq:
      return "=";
    case BinOp::kNe:
      return "!=";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kBefore:
      return "<<";
    case BinOp::kAfter:
      return ">>";
    case BinOp::kIs:
      return "is";
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "div";
    case BinOp::kIDiv:
      return "idiv";
    case BinOp::kMod:
      return "mod";
    case BinOp::kNeg:
      return "-";
    case BinOp::kAnd:
      return "and";
    case BinOp::kOr:
      return "or";
    case BinOp::kUnion:
      return "|";
    case BinOp::kIntersect:
      return "intersect";
    case BinOp::kExcept:
      return "except";
  }
  return "?";
}

void Render(const Expr& e, std::ostringstream& out) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      out << e.int_value;
      break;
    case ExprKind::kDoubleLit:
      out << e.double_value;
      break;
    case ExprKind::kStringLit:
      out << '"' << e.string_value << '"';
      break;
    case ExprKind::kEmptySeq:
      out << "()";
      break;
    case ExprKind::kVarRef:
      out << '$' << e.string_value;
      break;
    case ExprKind::kContextItem:
      out << '.';
      break;
    case ExprKind::kSequence:
      out << '(';
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i) out << ", ";
        Render(*e.children[i], out);
      }
      out << ')';
      break;
    case ExprKind::kFlwor: {
      for (const FlworClause& c : e.clauses) {
        out << (c.kind == FlworClause::Kind::kFor ? "for $" : "let $")
            << c.var;
        if (!c.pos_var.empty()) out << " at $" << c.pos_var;
        out << (c.kind == FlworClause::Kind::kFor ? " in " : " := ");
        Render(*c.expr, out);
        out << ' ';
      }
      if (e.where) {
        out << "where ";
        Render(*e.where, out);
        out << ' ';
      }
      if (!e.order_by.empty()) {
        out << "order by ";
        for (size_t i = 0; i < e.order_by.size(); ++i) {
          if (i) out << ", ";
          Render(*e.order_by[i].key, out);
          if (e.order_by[i].descending) out << " descending";
        }
        out << ' ';
      }
      out << "return ";
      Render(*e.ret, out);
      break;
    }
    case ExprKind::kIf:
      out << "if (";
      Render(*e.children[0], out);
      out << ") then ";
      Render(*e.children[1], out);
      out << " else ";
      Render(*e.children[2], out);
      break;
    case ExprKind::kQuantified:
      out << "some $" << e.string_value << " in ";
      Render(*e.children[0], out);
      out << " satisfies ";
      Render(*e.children[1], out);
      break;
    case ExprKind::kPathStep: {
      Render(*e.children[0], out);
      out << '/' << AxisName(e.axis) << "::";
      switch (e.test_kind) {
        case NodeTest::Kind::kAnyKind:
          out << "node()";
          break;
        case NodeTest::Kind::kText:
          out << "text()";
          break;
        case NodeTest::Kind::kComment:
          out << "comment()";
          break;
        case NodeTest::Kind::kWildcard:
          out << '*';
          break;
        case NodeTest::Kind::kName:
          out << e.test_name;
          break;
      }
      break;
    }
    case ExprKind::kPathFilter:
      Render(*e.children[0], out);
      out << "/(";
      Render(*e.children[1], out);
      out << ')';
      break;
    case ExprKind::kPredicate:
      Render(*e.children[0], out);
      out << '[';
      Render(*e.children[1], out);
      out << ']';
      break;
    case ExprKind::kValueComp: {
      const char* name = "?";
      switch (e.op) {
        case BinOp::kEq:
          name = "eq";
          break;
        case BinOp::kNe:
          name = "ne";
          break;
        case BinOp::kLt:
          name = "lt";
          break;
        case BinOp::kLe:
          name = "le";
          break;
        case BinOp::kGt:
          name = "gt";
          break;
        case BinOp::kGe:
          name = "ge";
          break;
        default:
          break;
      }
      out << '(';
      Render(*e.children[0], out);
      out << ' ' << name << ' ';
      Render(*e.children[1], out);
      out << ')';
      break;
    }
    case ExprKind::kRange:
      out << '(';
      Render(*e.children[0], out);
      out << " to ";
      Render(*e.children[1], out);
      out << ')';
      break;
    case ExprKind::kSetOp:
    case ExprKind::kGeneralComp:
    case ExprKind::kNodeComp:
    case ExprKind::kLogical:
      out << '(';
      Render(*e.children[0], out);
      out << ' ' << BinOpName(e.op) << ' ';
      Render(*e.children[1], out);
      out << ')';
      break;
    case ExprKind::kArith:
      if (e.op == BinOp::kNeg) {
        out << "-(";
        Render(*e.children[0], out);
        out << ')';
      } else {
        out << '(';
        Render(*e.children[0], out);
        out << ' ' << BinOpName(e.op) << ' ';
        Render(*e.children[1], out);
        out << ')';
      }
      break;
    case ExprKind::kFunctionCall:
      out << e.string_value << '(';
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i) out << ", ";
        Render(*e.children[i], out);
      }
      out << ')';
      break;
    case ExprKind::kOrderedExpr:
      out << (e.mode == OrderingMode::kOrdered ? "ordered { "
                                               : "unordered { ");
      Render(*e.children[0], out);
      out << " }";
      break;
    case ExprKind::kElementCtor: {
      out << '<' << e.string_value;
      for (const ExprPtr& a : e.children) {
        out << ' ' << a->string_value << "=\"...\"";
      }
      out << '>';
      for (const CtorPart& p : e.parts) {
        if (p.expr) {
          out << '{';
          Render(*p.expr, out);
          out << '}';
        } else {
          out << p.text;
        }
      }
      out << "</" << e.string_value << '>';
      break;
    }
    case ExprKind::kAttributeCtor: {
      out << '@' << e.string_value << "=\"";
      for (const CtorPart& p : e.parts) {
        if (p.expr) {
          out << '{';
          Render(*p.expr, out);
          out << '}';
        } else {
          out << p.text;
        }
      }
      out << '"';
      break;
    }
    case ExprKind::kTextCtor:
      out << "text { ";
      Render(*e.children[0], out);
      out << " }";
      break;
  }
}

}  // namespace

std::string ExprToString(const Expr& e) {
  std::ostringstream out;
  Render(e, out);
  return out.str();
}

}  // namespace exrquy
