#include "api/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

#include "algebra/stats.h"
#include "engine/eval.h"
#include "xml/xml_parser.h"

namespace exrquy {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

uint64_t EnvU64(const char* name) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env lookup at resolve
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  unsigned long long n = std::strtoull(v, &end, 10);
  return end == v ? 0 : static_cast<uint64_t>(n);
}

// Presence-sensitive variant for knobs where "unset" and "=0" mean
// different things (e.g. queue depth: unset = unbounded, 0 = never
// queue).
bool EnvU64Present(const char* name, uint64_t* value) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env lookup at resolve
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  char* end = nullptr;
  unsigned long long n = std::strtoull(v, &end, 10);
  *value = end == v ? 0 : static_cast<uint64_t>(n);
  return true;
}

bool EnvPlanCacheEnabled() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env lookup at resolve
  const char* v = std::getenv("EXRQUY_PLAN_CACHE");
  if (v == nullptr || *v == '\0') return true;  // default on
  return std::string_view(v) != "0";
}

size_t ResolveWorkers(size_t requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

size_t ResolveResultCacheBytes(int64_t requested) {
  if (requested >= 0) return static_cast<size_t>(requested);
  return static_cast<size_t>(EnvU64("EXRQUY_RESULT_CACHE_BYTES"));
}

size_t ResolveMaxQueueDepth(int64_t requested) {
  if (requested >= 0) return static_cast<size_t>(requested);
  uint64_t v = 0;
  if (!EnvU64Present("EXRQUY_MAX_QUEUE_DEPTH", &v)) return SIZE_MAX;
  return static_cast<size_t>(v);
}

int64_t ResolveQueueTimeoutMs(int64_t requested) {
  if (requested >= 0) return requested;
  uint64_t v = 0;
  if (!EnvU64Present("EXRQUY_QUEUE_TIMEOUT_MS", &v)) return 0;
  return static_cast<int64_t>(v);
}

int ResolveMaxRetries(int requested) {
  if (requested >= 0) return requested;
  uint64_t v = 0;
  if (!EnvU64Present("EXRQUY_MAX_RETRIES", &v)) return 1;
  return static_cast<int>(std::min<uint64_t>(v, 16));
}

// Cache key: query text, then the plan-affecting option bits, then the
// store version. Execution knobs (threads, chunking, governor) are
// deliberately absent — the engine guarantees byte-identical results
// across all of them, which is what makes cached bytes reusable. The
// same key strings the poison-query quarantine: two calls that would
// share a plan share a breaker.
std::string CacheKey(std::string_view query, const QueryOptions& o,
                     uint64_t version) {
  // Certification participates resolved (options beat environment, like
  // PlanQuery itself): a strict plan may differ from a checked one when a
  // certificate is rejected, and a forced rejection must never leak a
  // mutilated plan into another caller's cache slot.
  CertifySettings rc = ResolveCertify(o.certify);
  uint64_t bits = 0;
  for (bool b : {o.default_ordering == OrderingMode::kOrdered,
                 o.enable_order_indifference, o.insert_unordered,
                 o.mode_rules, o.column_pruning, o.weaken_rownum,
                 o.distinct_elimination, o.step_merging, o.distinct_by_keys,
                 o.empty_short_circuit, o.rownum_by_keys, o.rownum_by_od,
                 o.join_recognition, o.theta_join, o.physical_sort_detection,
                 rc.mode == CertifyMode::kStrict, rc.mode == CertifyMode::kOff,
                 rc.spot_check, !rc.force_reject_rule.empty()}) {
    bits = (bits << 1) | (b ? 1 : 0);
  }
  char suffix[48];
  std::snprintf(suffix, sizeof(suffix), "\x1f%llx\x1f%llu",
                static_cast<unsigned long long>(bits),
                static_cast<unsigned long long>(version));
  std::string key;
  key.reserve(query.size() + sizeof(suffix));
  key.append(query.data(), query.size());
  key += suffix;
  if (!rc.force_reject_rule.empty()) {
    key += '\x1f';
    key += rc.force_reject_rule;
  }
  return key;
}

size_t PlanBytes(const Dag& dag) {
  // Order-of-magnitude accounting; the plan cache has no byte budget
  // (population is bounded by the distinct query mix), so this only
  // feeds the stats.
  return dag.size() * (sizeof(Op) + 32) + sizeof(Dag);
}

}  // namespace

QueryService::QueryService(ServiceConfig config)
    : plan_cache_enabled_(config.plan_cache < 0 ? EnvPlanCacheEnabled()
                                                : config.plan_cache != 0),
      max_retries_(ResolveMaxRetries(config.max_retries)),
      memory_high_water_(config.memory_high_water),
      degraded_window_ms_(config.degraded_window_ms),
      base_store_(&strings_),
      cache_accountant_(0),
      plan_cache_(0),
      result_cache_(ResolveResultCacheBytes(config.result_cache_bytes),
                    &cache_accountant_),
      admission_(AdmissionController::Config{
          ResolveWorkers(config.workers),
          ResolveMaxQueueDepth(config.max_queue_depth),
          ResolveQueueTimeoutMs(config.queue_timeout_ms)}),
      quarantine_(QuarantineList::Config{
          config.quarantine_failures,
          std::max<int64_t>(config.quarantine_cooldown_ms, 1),
          /*max_cooldown_ms=*/30000, /*max_entries=*/1024}) {
  size_t n = admission_.slot_count();
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>(&strings_));
  }
}

Status QueryService::LoadDocument(std::string_view name,
                                  std::string_view xml) {
  std::unique_lock<std::shared_mutex> exclusive(snapshot_mu_);
  // A parse failure rolls the base store back (NodeBuilder's destructor),
  // so nothing below this point runs and the snapshot is untouched.
  EXRQUY_ASSIGN_OR_RETURN(NodeIdx root, ParseXml(&base_store_, xml));
  base_store_.IndexFragment(base_store_.fragment_count() - 1);
  documents_[strings_.Intern(name)] = root;
  CloneWorkersLocked();
  version_.fetch_add(1, std::memory_order_acq_rel);
  // Stale keys could never hit again (the version is part of every key);
  // clearing reclaims their bytes immediately instead of waiting for
  // LRU pressure. Quarantine verdicts are snapshot-scoped too: a query
  // that was poison against the old documents may be cheap now.
  plan_cache_.Clear();
  result_cache_.Clear();
  quarantine_.Clear();
  return Status::Ok();
}

void QueryService::CloneWorkersLocked() {
  for (std::unique_ptr<Worker>& w : workers_) {
    w->store.CloneFrom(base_store_);
    w->base_nodes = w->store.node_count();
    w->base_fragments = w->store.fragment_count();
  }
}

bool QueryService::WorkersPristine() const {
  std::shared_lock<std::shared_mutex> snapshot(snapshot_mu_);
  for (const std::unique_ptr<Worker>& w : workers_) {
    if (w->store.node_count() != w->base_nodes ||
        w->store.fragment_count() != w->base_fragments) {
      return false;
    }
  }
  return true;
}

bool QueryService::DegradedNow() const {
  int64_t until = degraded_until_ns_.load(std::memory_order_relaxed);
  return until != 0 && Clock::now().time_since_epoch().count() < until;
}

void QueryService::EnterDegradedWindow() {
  if (degraded_window_ms_ <= 0) return;
  int64_t until =
      (Clock::now() + std::chrono::milliseconds(degraded_window_ms_))
          .time_since_epoch()
          .count();
  // Monotonic max: concurrent pressure events only ever extend the
  // window.
  int64_t cur = degraded_until_ns_.load(std::memory_order_relaxed);
  while (cur < until && !degraded_until_ns_.compare_exchange_weak(
                            cur, until, std::memory_order_relaxed)) {
  }
}

Status QueryService::RunAttempt(const CachedPlan& plan,
                                const QueryOptions& options, Worker& worker,
                                int64_t deadline_ms, size_t budget_limit,
                                const FaultPlan& faults,
                                Clock::time_point arrival, bool degraded,
                                bool* high_water, ServiceResult* out) {
  // Fresh governor state per attempt: the budget's exhausted latch and
  // the injector's counters must not leak across retries.
  MemoryBudget budget(budget_limit);
  if (faults.fail_alloc != 0) budget.FailChargeAt(faults.fail_alloc);
  FaultInjector injector(faults);
  bool account =
      budget_limit != 0 || faults.fail_alloc != 0 || options.profile;
  if (account) worker.store.set_budget(&budget);

  EvalContext ctx;
  ctx.store = &worker.store;
  ctx.strings = &strings_;
  ctx.documents = documents_;
  ctx.detect_sorted_inputs = options.physical_sort_detection;
  ctx.num_threads = degraded ? 1 : options.num_threads;
  ctx.chunk_rows = options.chunk_rows;
  ctx.release_intermediates = options.release_intermediates;
  ctx.pipelined_execution = options.pipelined_execution;
  ctx.morsel_rows = options.morsel_rows;
  ctx.inline_rows = options.inline_rows;
  if (options.profile) ctx.profile = &out->result.profile;
  ctx.cancel = options.cancel.get();
  if (deadline_ms > 0) {
    // Anchored at arrival, not at admission: time spent queued or in
    // earlier attempts is already gone from this request's budget.
    ctx.has_deadline = true;
    ctx.deadline = arrival + std::chrono::milliseconds(deadline_ms);
  }
  if (account) ctx.budget = &budget;
  if (faults.any()) ctx.faults = &injector;

  Clock::time_point t1 = Clock::now();
  Status failed = Status::Ok();
  {
    Evaluator evaluator(*plan.dag, &ctx);
    Result<TablePtr> table = evaluator.Eval(plan.optimized);
    if (options.profile) {
      out->result.profile.SetBudget(budget.limit(), budget.charged(),
                                    budget.peak());
    }
    if (!table.ok()) {
      failed = table.status();
    } else {
      out->result.execute_ms = MsSince(t1);
      out->result.sorts_skipped = ctx.sorts_skipped;
      Result<std::string> serialized = SerializeResult(**table, ctx);
      Result<std::vector<std::string>> items = ResultItems(**table, ctx);
      if (!serialized.ok()) {
        failed = serialized.status();
      } else if (!items.ok()) {
        failed = items.status();
      } else {
        out->result.serialized = std::move(serialized).value();
        out->result.items = std::move(items).value();
      }
    }
  }
  // Constructed fragments never outlive the attempt (results hold plain
  // strings); the shared pool keeps query-interned strings by design.
  worker.store.set_budget(nullptr);
  worker.store.TruncateTo(worker.base_nodes, worker.base_fragments);
  *high_water = budget.PeakAboveFraction(memory_high_water_);
  return failed;
}

Result<ServiceResult> QueryService::Execute(std::string_view query,
                                            const QueryOptions& options) {
  Clock::time_point arrival = Clock::now();
  auto done = [&] {
    executions_.fetch_add(1, std::memory_order_relaxed);
    latency_us_.Record(MsSince(arrival) * 1000.0);
  };

  // Resolve the governed-execution knobs before taking any lock or
  // slot: a malformed EXRQUY_FAULT_* must fail fast, and the absolute
  // deadline below anchors queue-wait accounting at arrival.
  int64_t deadline_ms =
      options.deadline_ms > 0
          ? options.deadline_ms
          : static_cast<int64_t>(EnvU64("EXRQUY_DEADLINE_MS"));
  size_t budget_limit =
      options.memory_budget > 0
          ? options.memory_budget
          : static_cast<size_t>(EnvU64("EXRQUY_MEM_BUDGET"));
  FaultPlan faults = options.faults;
  if (!faults.any()) {
    Result<FaultPlan> from_env = FaultPlan::FromEnv();
    if (!from_env.ok()) {
      done();
      return from_env.status();
    }
    faults = from_env.value();
  }
  std::optional<Clock::time_point> abs_deadline;
  if (deadline_ms > 0) {
    abs_deadline = arrival + std::chrono::milliseconds(deadline_ms);
  }

  // Held shared for the whole call: the snapshot (base store contents,
  // worker clones, document map, version) cannot change under us.
  std::shared_lock<std::shared_mutex> snapshot(snapshot_mu_);

  ServiceResult out;
  out.store_version = version_.load(std::memory_order_acquire);
  std::string key = CacheKey(query, options, out.store_version);

  // Governed calls bypass the result cache: serving cached bytes would
  // skip the injection/cancellation points a caller asked to exercise.
  bool result_cacheable = result_cache_.budget_bytes() != 0 &&
                          !faults.any() && options.cancel == nullptr;

  if (result_cacheable) {
    if (std::shared_ptr<const CachedResult> hit = result_cache_.Get(key)) {
      out.result_cache_hit = true;
      out.result.serialized = hit->serialized;
      out.result.items = hit->items;
      out.result.plan_initial = hit->stats_initial;
      out.result.plan_optimized = hit->stats_optimized;
      if (options.profile) out.result.profile.SetCache(false, true, 0);
      done();
      return out;
    }
  }

  // Poison-query quarantine, before any planning or queueing: an open
  // breaker fast-fails without burning a worker slot or a compile.
  // Fault-injected calls never consult it — injection tests must see
  // their planned outcome, not the breaker's.
  QuarantineList::Decision quarantine_decision =
      QuarantineList::Decision::kAdmit;
  bool quarantine_tracked = !faults.any();
  if (quarantine_tracked) {
    quarantine_decision = quarantine_.Admit(key);
    if (quarantine_decision == QuarantineList::Decision::kShed) {
      done();
      return Unavailable(
          "query quarantined after repeated resource exhaustion: "
          "request shed (breaker re-probes after cooldown)");
    }
  }
  bool was_probe = quarantine_decision == QuarantineList::Decision::kProbe;

  // Bounded admission. The queue wait is charged against the request's
  // own deadline; shed requests never reach the planner.
  Result<AdmissionController::Ticket> ticket = admission_.Admit(abs_deadline);
  if (!ticket.ok()) {
    if (was_probe) quarantine_.ProbeAborted(key);
    done();
    return ticket.status();
  }
  Worker& worker = *workers_[ticket.value().slot];

  // Plan: cached DAG when warm, full front-half pipeline when cold.
  Clock::time_point plan_start = Clock::now();
  std::shared_ptr<const CachedPlan> plan;
  if (plan_cache_enabled_) plan = plan_cache_.Get(key);
  if (plan != nullptr) {
    out.plan_cache_hit = true;
    out.result.compile_ms = 0;  // no parse/compile/optimize happened
  } else {
    Result<QueryPlans> planned = PlanQuery(query, options, &strings_);
    if (!planned.ok()) {
      admission_.Release(ticket.value().slot);
      // A compile error is instant evidence the query is not poison (it
      // never reaches the governor), so it closes a probing breaker.
      if (quarantine_tracked) quarantine_.Record(key, false, was_probe);
      done();
      return planned.status();
    }
    auto fresh = std::make_shared<CachedPlan>();
    fresh->dag = std::move(planned.value().dag);
    fresh->initial = planned.value().initial;
    fresh->optimized = planned.value().optimized;
    fresh->stats_initial = CollectPlanStats(*fresh->dag, fresh->initial);
    fresh->stats_optimized = CollectPlanStats(*fresh->dag, fresh->optimized);
    out.result.compile_ms = MsSince(plan_start);
    if (plan_cache_enabled_) {
      plan_cache_.Put(key, fresh, PlanBytes(*fresh->dag));
    }
    plan = std::move(fresh);
  }
  out.result.plan_initial = plan->stats_initial;
  out.result.plan_optimized = plan->stats_optimized;

  // Retry loop. The worker slot is held across attempts: a transient
  // failure (budget trip, injected transient fault) is re-run in
  // degraded mode — serial execution, fresh governor state, capped
  // backoff — without re-entering the admission queue. Fault-injected
  // failures are surfaced verbatim unless the plan is marked transient.
  bool window_degraded = DegradedNow();
  Status failed = Status::Ok();
  uint32_t attempts = 0;
  bool any_degraded = false;
  bool high_water = false;
  int64_t backoff_ms = 1;
  for (;;) {
    ++attempts;
    bool degraded = window_degraded || attempts > 1;
    any_degraded = any_degraded || degraded;
    if (degraded) degraded_runs_.fetch_add(1, std::memory_order_relaxed);
    if (attempts > 1) {
      // The failed attempt's operator records must not pollute the
      // retry's profile.
      out.result.profile = Profile();
    }
    FaultPlan attempt_faults = attempts == 1 ? faults : FaultPlan{};
    failed = RunAttempt(*plan, options, worker, deadline_ms, budget_limit,
                        attempt_faults, arrival, degraded, &high_water, &out);
    if (failed.ok()) break;
    bool transient = failed.code() == StatusCode::kResourceExhausted &&
                     (!faults.any() || faults.transient);
    if (!transient || attempts > static_cast<uint32_t>(max_retries_)) break;
    retries_.fetch_add(1, std::memory_order_relaxed);
    // Transient resource exhaustion is the memory-pressure signal: shed
    // cached result bytes (the one pool of memory the service can free)
    // and run near-future admissions serial so they don't trip too.
    pressure_events_.fetch_add(1, std::memory_order_relaxed);
    result_cache_.Clear();
    EnterDegradedWindow();
    int64_t sleep_ms = backoff_ms;
    backoff_ms = std::min<int64_t>(backoff_ms * 2, 16);
    if (abs_deadline.has_value()) {
      int64_t remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              *abs_deadline - Clock::now())
              .count();
      if (remaining <= 0) break;  // surface the transient failure as-is
      sleep_ms = std::min(sleep_ms, remaining);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  admission_.Release(ticket.value().slot);

  // Proactive reaction to a near-limit success: evict the result cache
  // and open the degraded window *before* a sibling query trips.
  if (failed.ok() && high_water) {
    pressure_events_.fetch_add(1, std::memory_order_relaxed);
    result_cache_.Clear();
    EnterDegradedWindow();
  }

  if (quarantine_tracked) {
    bool resource_failure =
        !failed.ok() &&
        (failed.code() == StatusCode::kDeadlineExceeded ||
         failed.code() == StatusCode::kResourceExhausted);
    quarantine_.Record(key, resource_failure, was_probe);
  }

  if (!failed.ok()) {
    done();
    return failed;
  }

  uint64_t evicted = 0;
  // Degraded runs and near-limit results skip the insert: under
  // pressure the cache is being drained, not refilled.
  if (result_cacheable && attempts == 1 && !window_degraded && !high_water) {
    size_t bytes = out.result.serialized.size() + 64;
    for (const std::string& item : out.result.items) {
      bytes += item.size() + sizeof(std::string);
    }
    uint64_t before = result_cache_.stats().evictions;
    auto cached = std::make_shared<CachedResult>();
    cached->serialized = out.result.serialized;
    cached->items = out.result.items;
    cached->stats_initial = out.result.plan_initial;
    cached->stats_optimized = out.result.plan_optimized;
    result_cache_.Put(key, std::move(cached), bytes);
    evicted = result_cache_.stats().evictions - before;
  }
  if (options.profile) {
    out.result.profile.SetCache(out.plan_cache_hit, false, evicted);
    out.result.profile.SetAdmission(ticket.value().queue_ms, attempts,
                                    any_degraded);
  }
  done();
  return out;
}

ServiceCounters QueryService::counters() const {
  ServiceCounters out;
  out.executions = executions_.load(std::memory_order_relaxed);
  out.store_version = version_.load(std::memory_order_acquire);
  out.plan_cache = plan_cache_.stats();
  out.result_cache = result_cache_.stats();
  out.admission = admission_.stats();
  out.quarantine = quarantine_.stats();
  out.retries = retries_.load(std::memory_order_relaxed);
  out.degraded_runs = degraded_runs_.load(std::memory_order_relaxed);
  out.pressure_events = pressure_events_.load(std::memory_order_relaxed);
  out.latency_us = latency_us_.Snapshot();
  return out;
}

}  // namespace exrquy
