// Concurrent query service. A QueryService owns an immutable snapshot of
// the loaded documents and admits many concurrent Execute calls against
// it, backed by two caches:
//
//  * a plan cache keyed by (query text, ordering mode, optimizer flags,
//    store version) holding the compiled + optimized DAG — a warm hit
//    skips parse/normalize/compile/optimize entirely (compile_ms == 0);
//  * an optional result cache (LRU with a byte budget, charged through a
//    MemoryBudget accountant) keyed the same way, serving serialized
//    bytes without touching the engine.
//
// Concurrency model. Sessions (api/session.h) mutate their store/pool
// during evaluation (constructed fragments, query-interned strings) and
// roll back afterwards, which cannot overlap. The service instead keeps
//
//  * one shared thread-safe StrPool (Intern is mutex-serialized, Get is
//    wait-free) that every plan and every worker references — cached
//    plans bake StrIds, so all evaluators must agree on the pool;
//  * a base NodeStore holding the loaded documents, plus one private
//    NodeStore per worker slot, cloned from the base. A worker appends
//    (and truncates) constructed fragments privately, so concurrent
//    queries never see each other's nodes, while every worker reads
//    identical document bytes at identical preorder ranks — which is
//    what makes results byte-identical across workers and thread counts.
//
// The shared pool is never truncated: strings interned by queries stay
// resident (monotonic growth, bounded by the distinct strings the query
// mix constructs). That is the deliberate trade-off buying lock-free
// reads on the evaluation hot path; StrPool::TruncateTo is not safe
// concurrently with Get.
//
// LoadDocument is exclusive: it waits for in-flight executions, parses
// into the base store, re-clones every worker, bumps the store version
// (so stale cache keys can never hit again) and drops both caches.
//
// Overload resilience (api/admission.h). Execute calls that find every
// worker busy wait in a *bounded* admission queue and are shed with
// kUnavailable (queue full / queue timeout) or kDeadlineExceeded (the
// request's own deadline expired while queued) instead of blocking
// forever. Transient failures — a memory-budget trip, an injected
// transient fault — are retried up to max_retries times in *degraded
// mode* (serial execution, plan/result caches bypassed) after evicting
// the result cache, with capped exponential backoff. A query whose
// budget peak crosses memory_high_water of its limit triggers the same
// proactive reaction: result cache evicted, subsequent admissions run
// serial for degraded_window_ms. Queries that repeatedly exhaust their
// deadline or budget are quarantined by plan-cache key (circuit breaker
// with timed half-open probes) and fast-fail kUnavailable without
// occupying a worker.
#ifndef EXRQUY_API_SERVICE_H_
#define EXRQUY_API_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "api/admission.h"
#include "api/session.h"
#include "common/cache.h"
#include "common/governor.h"
#include "common/status.h"
#include "common/str_pool.h"
#include "xml/node_store.h"

namespace exrquy {

struct ServiceConfig {
  // Concurrent execution slots. 0 = hardware concurrency (at least 1).
  size_t workers = 0;

  // Plan cache: -1 defers to EXRQUY_PLAN_CACHE ("0" disables; default
  // on), 0 disables, 1 enables.
  int plan_cache = -1;

  // Result cache byte budget: -1 defers to EXRQUY_RESULT_CACHE_BYTES
  // (unset/0 = disabled), 0 disables, > 0 enables with that budget.
  int64_t result_cache_bytes = -1;

  // -- Admission (api/admission.h) ----------------------------------------
  // Max Execute calls queued for a worker slot at once; one more arrival
  // is shed immediately with kUnavailable. -1 defers to
  // EXRQUY_MAX_QUEUE_DEPTH (unset = unbounded, the pre-admission
  // behavior); 0 = never queue.
  int64_t max_queue_depth = -1;

  // Longest a call may wait queued before being shed with kUnavailable.
  // -1 defers to EXRQUY_QUEUE_TIMEOUT_MS (unset = no timeout); 0 = no
  // timeout. A request's own deadline_ms always also bounds the wait.
  int64_t queue_timeout_ms = -1;

  // -- Retry / degradation ------------------------------------------------
  // Transient-failure retries per Execute (degraded mode: serial, caches
  // bypassed, capped backoff). -1 defers to EXRQUY_MAX_RETRIES (unset =
  // 1); 0 disables retrying.
  int max_retries = -1;

  // Fraction of a query's memory budget whose crossing (by the peak
  // charge) counts as memory pressure: the result cache is evicted and
  // new queries are admitted in serial mode for degraded_window_ms
  // rather than being allowed to trip their budgets too.
  double memory_high_water = 0.85;
  int64_t degraded_window_ms = 100;

  // -- Poison-query quarantine --------------------------------------------
  // Consecutive deadline/budget exhaustions (fault injection excluded)
  // before a query key is quarantined. 0 disables the breaker.
  uint32_t quarantine_failures = 3;
  // Open -> half-open probe delay; doubles per failed probe (capped
  // internally at 30 s).
  int64_t quarantine_cooldown_ms = 250;
};

// Execute's answer: the Session-shaped QueryResult plus what the service
// layer did to produce it.
struct ServiceResult {
  QueryResult result;
  bool plan_cache_hit = false;
  bool result_cache_hit = false;  // implies plan untouched this call
  uint64_t store_version = 0;     // snapshot the result was computed on
};

// Aggregate service observability (also mirrored per-execution into
// Profile::SetCache / Profile::SetAdmission when QueryOptions::profile
// is set).
struct ServiceCounters {
  uint64_t executions = 0;     // completed Execute calls (ok or error)
  uint64_t store_version = 0;  // bumped by every LoadDocument
  CacheStats plan_cache;
  CacheStats result_cache;

  // Resilience layer.
  AdmissionStats admission;       // queue/shed counters + queue-wait hist
  QuarantineStats quarantine;     // breaker trips/probes/recoveries
  uint64_t retries = 0;           // extra attempts after transient failure
  uint64_t degraded_runs = 0;     // attempts executed in degraded mode
  uint64_t pressure_events = 0;   // high-water / budget-trip reactions
  LatencyHistogram latency_us;    // end-to-end Execute latency (all calls)
};

class QueryService {
 public:
  explicit QueryService(ServiceConfig config = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Parses and indexes a document into the base snapshot. Exclusive:
  // blocks until in-flight Execute calls drain, then re-clones worker
  // stores, bumps the store version, and clears both caches. On parse
  // error the snapshot, version and caches are all unchanged.
  Status LoadDocument(std::string_view name, std::string_view xml);

  // Runs one query against the current snapshot. Safe to call from any
  // number of threads concurrently; byte-identical to Session::Execute
  // over the same documents, for every worker count and cache state.
  Result<ServiceResult> Execute(std::string_view query,
                                const QueryOptions& options = {});

  ServiceCounters counters() const;
  uint64_t store_version() const {
    return version_.load(std::memory_order_acquire);
  }
  size_t worker_count() const { return workers_.size(); }

  // Test hook: true when every worker store sits exactly at its snapshot
  // bounds — i.e. every execution, including failed and faulted ones,
  // rolled its constructed fragments back. Call on a quiesced service.
  bool WorkersPristine() const;

  StrPool& strings() { return strings_; }

 private:
  using Clock = std::chrono::steady_clock;

  // A compiled + optimized plan with everything Execute needs to skip
  // compilation: the DAG (const during evaluation — that is what makes
  // one cached plan shareable across workers), roots, and the
  // plan-shape stats and compile time of the original compilation.
  struct CachedPlan {
    std::unique_ptr<Dag> dag;
    OpId initial = kNoOp;
    OpId optimized = kNoOp;
    PlanStats stats_initial;
    PlanStats stats_optimized;
  };

  // A finished query, byte-for-byte. The profile of the producing run is
  // not retained: a cache hit did no engine work, so serving the old
  // operator timings would misattribute time.
  struct CachedResult {
    std::string serialized;
    std::vector<std::string> items;
    PlanStats stats_initial;
    PlanStats stats_optimized;
  };

  struct Worker {
    explicit Worker(StrPool* strings) : store(strings) {}
    NodeStore store;
    // Snapshot bounds after the last clone; evaluation appends past
    // them and the lease rolls back to them.
    size_t base_nodes = 0;
    size_t base_fragments = 0;
  };

  void CloneWorkersLocked();

  // One execution attempt on a held worker: governor setup, evaluation,
  // serialization, worker rollback. Fills `out` on success. `degraded`
  // forces serial execution; `high_water` reports whether the attempt's
  // budget peak crossed the memory_high_water fraction.
  Status RunAttempt(const CachedPlan& plan, const QueryOptions& options,
                    Worker& worker, int64_t deadline_ms, size_t budget_limit,
                    const FaultPlan& faults, Clock::time_point arrival,
                    bool degraded, bool* high_water, ServiceResult* out);

  // True while the memory-pressure degraded window is open: admissions
  // run serial until it expires.
  bool DegradedNow() const;
  void EnterDegradedWindow();

  bool plan_cache_enabled_;
  int max_retries_;
  double memory_high_water_;
  int64_t degraded_window_ms_;
  // Shared pool first: workers' stores reference it.
  StrPool strings_;
  NodeStore base_store_;
  std::map<StrId, NodeIdx> documents_;
  std::atomic<uint64_t> version_{0};

  // Writer = LoadDocument, readers = Execute. Held shared for the whole
  // execution so the snapshot cannot change under a running query.
  mutable std::shared_mutex snapshot_mu_;

  std::vector<std::unique_ptr<Worker>> workers_;
  AdmissionController admission_;
  QuarantineList quarantine_;

  // Memory-pressure degraded window: admissions before this instant run
  // serial. time_since_epoch in nanoseconds (steady clock), 0 = closed.
  std::atomic<int64_t> degraded_until_ns_{0};

  // Result-cache byte accounting (observability: peak/charged for
  // counters and profiles; the cache's own budget does the enforcing).
  MemoryBudget cache_accountant_;
  ShardedLruCache<CachedPlan> plan_cache_;
  ShardedLruCache<CachedResult> result_cache_;

  std::atomic<uint64_t> executions_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> degraded_runs_{0};
  std::atomic<uint64_t> pressure_events_{0};
  AtomicLatencyHistogram latency_us_;
};

}  // namespace exrquy

#endif  // EXRQUY_API_SERVICE_H_
