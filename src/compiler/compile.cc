#include "compiler/compile.h"

#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/symbols.h"

namespace exrquy {
namespace {

using col::item;
using col::iter;
using col::pos;

// Standard projection list (iter, pos, item).
std::vector<std::pair<ColId, ColId>> Ipi() {
  return {{iter(), iter()}, {pos(), pos()}, {item(), item()}};
}

std::vector<std::pair<ColId, ColId>> Ii() {
  return {{iter(), iter()}, {item(), item()}};
}

class Compiler {
 public:
  Compiler(Dag* dag, StrPool* strings, bool exploit_unordered)
      : dag_(dag), strings_(strings), exploit_(exploit_unordered) {}

  Result<OpId> CompileRoot(const Expr& body, OrderingMode mode) {
    LitTable loop0;
    loop0.cols = {iter()};
    loop0.rows = {{Value::Int(1)}};
    Scope root;
    root.loop = dag_->Lit(std::move(loop0));
    EXRQUY_ASSIGN_OR_RETURN(OpId q, CompileExpr(body, root, mode));
    OpId out = dag_->Project(q, Ipi());
    dag_->SetProv(out, "serialize");
    return out;
  }

 private:
  // -- Scopes (variable environments with lazy lifting/restriction) --------

  struct Scope {
    OpId loop = kNoOp;
    enum class Link { kRoot, kSame, kLift, kRestrict };
    Link link = Link::kRoot;
    Scope* parent = nullptr;
    // kLift: map relation (map_outer = outer iter, map_inner = inner iter).
    // kRestrict: map = filter loop projected to column map_outer.
    OpId map = kNoOp;
    ColId map_outer = kNoCol;
    ColId map_inner = kNoCol;
    std::map<std::string, OpId> vars;
    std::map<std::string, OpId> cache;
  };

  Result<OpId> LookupVar(Scope& scope, const std::string& name) {
    auto it = scope.vars.find(name);
    if (it != scope.vars.end()) return it->second;
    it = scope.cache.find(name);
    if (it != scope.cache.end()) return it->second;
    if (scope.parent == nullptr) {
      return NotFound("undefined variable $" + name);
    }
    EXRQUY_ASSIGN_OR_RETURN(OpId p, LookupVar(*scope.parent, name));
    OpId result = p;
    switch (scope.link) {
      case Scope::Link::kSame:
        break;
      case Scope::Link::kLift: {
        // Lift the variable into the inner iteration space: one copy of
        // each outer row per inner iteration (Section 3, seq -> iter).
        OpId j = dag_->EquiJoin(p, scope.map, iter(), scope.map_outer);
        result = dag_->Project(j, {{iter(), scope.map_inner},
                                   {pos(), pos()},
                                   {item(), item()}});
        break;
      }
      case Scope::Link::kRestrict: {
        OpId j = dag_->EquiJoin(p, scope.map, iter(), scope.map_outer);
        result = dag_->Project(j, Ipi());
        break;
      }
      case Scope::Link::kRoot:
        EXRQUY_CHECK(false);
    }
    scope.cache[name] = result;
    return result;
  }

  // Inner scope for a bound table qb with columns (iter, pos, item, bind).
  Scope MakeLiftScope(Scope* outer, OpId qb) {
    Scope s;
    s.link = Scope::Link::kLift;
    s.parent = outer;
    s.map_outer = FreshCol("iter1");
    s.map_inner = FreshCol("bind");
    s.map = dag_->Project(
        qb, {{s.map_outer, iter()}, {s.map_inner, col::bind()}});
    s.loop = dag_->Project(qb, {{iter(), col::bind()}});
    return s;
  }

  // Scope restricted to the iterations in `filter_loop` (column iter).
  Scope MakeRestrictScope(Scope* outer, OpId filter_loop) {
    Scope s;
    s.link = Scope::Link::kRestrict;
    s.parent = outer;
    s.loop = filter_loop;
    s.map_outer = FreshCol("iterR");
    s.map = dag_->Project(filter_loop, {{s.map_outer, iter()}});
    return s;
  }

  Scope MakeSameScope(Scope* outer) {
    Scope s;
    s.link = Scope::Link::kSame;
    s.parent = outer;
    s.loop = outer->loop;
    return s;
  }

  // -- Small plan helpers ---------------------------------------------------

  OpId Empty() { return dag_->Empty({iter(), pos(), item()}); }

  // loop × [pos=1, item=v]
  OpId ConstSeq(OpId loop, Value v) {
    return dag_->AttachConst(dag_->AttachConst(loop, pos(), Value::Int(1)),
                             item(), v);
  }

  OpId ToTriple(OpId q_iter_item) {
    return dag_->AttachConst(q_iter_item, pos(), Value::Int(1));
  }

  // Applies a unary function to the item column, keeping (iter, pos).
  OpId MapItem(OpId q, FunKind fun) {
    ColId tmp = FreshCol("item");
    OpId f = dag_->Fun(q, fun, tmp, {item()});
    return dag_->Project(f,
                         {{iter(), iter()}, {pos(), pos()}, {item(), tmp}});
  }

  OpId Atomize(OpId q) { return MapItem(q, FunKind::kAtomize); }

  // Joins two (iter, ..., item) plans on iter; returns the joined plan and
  // the column holding the right item.
  struct Joined {
    OpId plan;
    ColId right_item;
  };
  Joined JoinOnIter(OpId q1, OpId q2) {
    ColId i2 = FreshCol("iter2");
    ColId t2 = FreshCol("item2");
    OpId r = dag_->Project(q2, {{i2, iter()}, {t2, item()}});
    OpId l = dag_->Project(q1, Ii());
    return Joined{dag_->EquiJoin(l, r, iter(), i2), t2};
  }

  // Adds rows [iter, default] for loop iterations missing in q (iter, item).
  OpId WithDefault(OpId q_iter_item, OpId loop, Value dflt) {
    OpId present = dag_->Project(q_iter_item, {{iter(), iter()}});
    OpId missing = dag_->Difference(loop, present, {iter()});
    OpId d = dag_->AttachConst(missing, item(), dflt);
    return dag_->Union(q_iter_item, d);
  }

  // Grouped aggregate over the item column with a per-iteration default.
  // Returns (iter, item).
  OpId AggrDefault(OpId q, AggrKind aggr, OpId loop, const Value* dflt,
                   ColId order_col = kNoCol) {
    ColId res = FreshCol("item");
    OpId a = dag_->Aggr(dag_->Project(q, Ipi()), aggr, res,
                        aggr == AggrKind::kCount ? kNoCol : item(), iter(),
                        order_col);
    OpId renamed = dag_->Project(a, {{iter(), iter()}, {item(), res}});
    if (dflt == nullptr) return renamed;
    return WithDefault(renamed, loop, *dflt);
  }

  // Effective boolean value: (iter, item-bool), one row per loop iter.
  Result<OpId> CompileEbv(const Expr& e, Scope& scope, OrderingMode mode) {
    EXRQUY_ASSIGN_OR_RETURN(OpId q, CompileExpr(e, scope, mode));
    Value f = Value::Bool(false);
    return AggrDefault(q, AggrKind::kEbv, scope.loop, &f);
  }

  // -- Provenance -----------------------------------------------------------

  std::string Label(const Expr& e) {
    std::string s = ExprToString(e);
    if (s.size() > 56) s = s.substr(0, 53) + "...";
    return s;
  }

  // -- Expression dispatch --------------------------------------------------

  Result<OpId> CompileExpr(const Expr& e, Scope& scope, OrderingMode mode) {
    size_t before = dag_->size();
    Result<OpId> r = CompileDispatch(e, scope, mode);
    if (r.ok()) {
      std::string label = Label(e);
      for (OpId id = static_cast<OpId>(before); id < dag_->size(); ++id) {
        dag_->SetProv(id, label);
      }
    }
    return r;
  }

  Result<OpId> CompileDispatch(const Expr& e, Scope& scope,
                               OrderingMode mode) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        return ConstSeq(scope.loop, Value::Int(e.int_value));
      case ExprKind::kDoubleLit:
        return ConstSeq(scope.loop, Value::Double(e.double_value));
      case ExprKind::kStringLit:
        return ConstSeq(scope.loop,
                        Value::Str(strings_->Intern(e.string_value)));
      case ExprKind::kEmptySeq:
        return Empty();
      case ExprKind::kVarRef:
        return LookupVar(scope, e.string_value);
      case ExprKind::kContextItem:
        return LookupVar(scope, ".");
      case ExprKind::kSequence: {
        std::vector<OpId> parts;
        for (const ExprPtr& c : e.children) {
          EXRQUY_ASSIGN_OR_RETURN(OpId q, CompileExpr(*c, scope, mode));
          parts.push_back(q);
        }
        return SequencePlans(parts);
      }
      case ExprKind::kFlwor:
        return CompileFlwor(e, scope, mode);
      case ExprKind::kIf:
        return CompileIf(e, scope, mode);
      case ExprKind::kQuantified:
        return CompileSome(e, scope, mode);
      case ExprKind::kPathStep:
        return CompileStep(e, scope, mode);
      case ExprKind::kPathFilter:
        return CompilePathFilter(e, scope, mode);
      case ExprKind::kPredicate:
        return CompilePredicate(e, scope, mode);
      case ExprKind::kSetOp:
        return CompileSetOp(e, scope, mode);
      case ExprKind::kGeneralComp:
      case ExprKind::kValueComp:
      case ExprKind::kNodeComp:
        return CompileComparison(e, scope, mode);
      case ExprKind::kArith:
        return CompileArith(e, scope, mode);
      case ExprKind::kRange:
        return CompileRange(e, scope, mode);
      case ExprKind::kLogical:
        return CompileLogical(e, scope, mode);
      case ExprKind::kFunctionCall:
        return CompileCall(e, scope, mode);
      case ExprKind::kOrderedExpr:
        return CompileExpr(*e.children[0], scope, e.mode);
      case ExprKind::kElementCtor:
        return CompileElementCtor(e, scope, mode);
      case ExprKind::kAttributeCtor:
        return Internal("attribute constructor outside element");
      case ExprKind::kTextCtor: {
        EXRQUY_ASSIGN_OR_RETURN(OpId q,
                                CompileExpr(*e.children[0], scope, mode));
        OpId content =
            MapItem(MapItem(dag_->Project(q, Ipi()), FunKind::kAtomize),
                    FunKind::kToString);
        return ToTriple(dag_->Text(content, scope.loop));
      }
    }
    return Internal("unhandled expression kind");
  }

  // (e1, e2, ...): disjoint union with ord-tagged renumbering. The
  // iter -> seq interaction (type 4) stays intact in either ordering mode
  // (Figure 3); column dependency analysis removes the % when pos turns
  // out not to be required.
  OpId SequencePlans(const std::vector<OpId>& parts) {
    if (parts.empty()) return Empty();
    if (parts.size() == 1) return dag_->Project(parts[0], Ipi());
    ColId ord = FreshCol("ord");
    ColId posn = FreshCol("pos1");
    OpId u = kNoOp;
    for (size_t i = 0; i < parts.size(); ++i) {
      OpId p = dag_->AttachConst(dag_->Project(parts[i], Ipi()), ord,
                                 Value::Int(static_cast<int64_t>(i)));
      u = (i == 0) ? p : dag_->Union(u, p);
    }
    OpId rn = dag_->RowNum(u, posn, {{ord, false}, {pos(), false}}, iter());
    return dag_->Project(rn,
                         {{iter(), iter()}, {pos(), posn}, {item(), item()}});
  }

  // -- FLWOR ----------------------------------------------------------------

  struct FlworTail {
    OpId body = kNoOp;
    struct Key {
      OpId plan;  // (iter, item), one row per inner iteration
      bool descending;
    };
    std::vector<Key> keys;
  };

  Result<OpId> CompileFlwor(const Expr& e, Scope& scope, OrderingMode mode) {
    size_t for_count = 0;
    size_t last_for = 0;
    for (size_t i = 0; i < e.clauses.size(); ++i) {
      if (e.clauses[i].kind == FlworClause::Kind::kFor) {
        ++for_count;
        last_for = i;
      }
    }
    if (!e.order_by.empty() && for_count != 1) {
      return Unimplemented(
          "order by is supported for FLWOR blocks with exactly one for "
          "clause");
    }
    EXRQUY_ASSIGN_OR_RETURN(FlworTail tail,
                            CompileFlworRest(e, 0, last_for, scope, mode));
    EXRQUY_CHECK(tail.keys.empty());  // consumed by the for clause
    return tail.body;
  }

  Result<FlworTail> CompileFlworRest(const Expr& e, size_t idx,
                                     size_t last_for, Scope& scope,
                                     OrderingMode mode) {
    if (idx == e.clauses.size()) return CompileFlworEnd(e, scope, mode);

    const FlworClause& c = e.clauses[idx];
    if (c.kind == FlworClause::Kind::kLet) {
      EXRQUY_ASSIGN_OR_RETURN(OpId q, CompileExpr(*c.expr, scope, mode));
      Scope inner = MakeSameScope(&scope);
      inner.vars[c.var] = q;
      return CompileFlworRest(e, idx + 1, last_for, inner, mode);
    }

    // for $x (at $p) in e1
    EXRQUY_ASSIGN_OR_RETURN(OpId q1, CompileExpr(*c.expr, scope, mode));
    q1 = dag_->Project(q1, Ipi());
    // Rule BIND (ordered) vs Rule BIND# (Figure 7). A FLWOR whose result
    // is reordered by order by is also free to bind in arbitrary order
    // (context (f) in Section 1).
    bool free_bind =
        exploit_ && (mode == OrderingMode::kUnordered ||
                     (!e.order_by.empty() && idx == last_for));
    OpId qb;
    if (free_bind) {
      qb = dag_->RowId(q1, col::bind());
    } else {
      qb = dag_->RowNum(q1, col::bind(), {{iter(), false}, {pos(), false}},
                        kNoCol);
    }
    Scope inner = MakeLiftScope(&scope, qb);
    inner.vars[c.var] = ToTriple(
        dag_->Project(qb, {{iter(), col::bind()}, {item(), item()}}));
    if (!c.pos_var.empty()) {
      // The positional variable must consistently reflect the position in
      // the binding sequence (Section 2.1, Expression (4)). Under LOC#,
      // pos holds arbitrary unique values numbered across iterations, so
      // $p is derived by a dense per-iteration re-ranking; the nondeter-
      // minism of the binding order is preserved, its density restored.
      OpId psrc = qb;
      ColId pcol = pos();
      if (exploit_ && mode == OrderingMode::kUnordered) {
        pcol = FreshCol("prank");
        psrc = dag_->RowNum(qb, pcol, {{pos(), false}}, iter());
      }
      inner.vars[c.pos_var] = ToTriple(
          dag_->Project(psrc, {{iter(), col::bind()}, {item(), pcol}}));
    }

    EXRQUY_ASSIGN_OR_RETURN(
        FlworTail tail, CompileFlworRest(e, idx + 1, last_for, inner, mode));

    // Back-mapping: derive the result's sequence order from the binding
    // order (order interaction iter -> seq, type 3) — or from the order
    // by keys.
    OpId j = dag_->EquiJoin(tail.body, inner.map, iter(), inner.map_inner);
    std::vector<SortKey> criteria;
    if (idx == last_for && !e.order_by.empty()) {
      EXRQUY_CHECK(tail.keys.size() == e.order_by.size());
      for (const FlworTail::Key& k : tail.keys) {
        ColId kb = FreshCol("kbind");
        ColId kv = FreshCol("key");
        OpId keymap = dag_->Project(k.plan, {{kb, iter()}, {kv, item()}});
        j = dag_->EquiJoin(j, keymap, iter(), kb);
        criteria.push_back({kv, k.descending});
      }
      tail.keys.clear();
    }
    criteria.push_back({iter(), false});  // binding order (iter = bind here)
    criteria.push_back({pos(), false});
    ColId posn = FreshCol("pos1");
    OpId rn = dag_->RowNum(j, posn, std::move(criteria), inner.map_outer);
    dag_->SetProv(rn, "return (iter->seq)");
    FlworTail out;
    out.body = dag_->Project(
        rn, {{iter(), inner.map_outer}, {pos(), posn}, {item(), item()}});
    out.keys = std::move(tail.keys);
    return out;
  }

  Result<FlworTail> CompileFlworEnd(const Expr& e, Scope& scope,
                                    OrderingMode mode) {
    Scope* cur = &scope;
    Scope restricted;  // keep alive while compiling keys and return
    if (e.where) {
      EXRQUY_ASSIGN_OR_RETURN(OpId qw, CompileEbv(*e.where, scope, mode));
      OpId filt = dag_->Project(dag_->Select(qw, item()), {{iter(), iter()}});
      restricted = MakeRestrictScope(&scope, filt);
      cur = &restricted;
    }
    FlworTail tail;
    for (const OrderSpec& spec : e.order_by) {
      EXRQUY_ASSIGN_OR_RETURN(OpId kq, CompileExpr(*spec.key, *cur, mode));
      kq = Atomize(dag_->Project(kq, Ipi()));
      // One key row per iteration; empty keys order first (our
      // approximation of 'empty least': the empty string).
      Value empty_key = Value::Untyped(StrPool::kEmpty);
      OpId k = AggrDefault(kq, AggrKind::kMax, cur->loop, &empty_key);
      tail.keys.push_back({k, spec.descending});
    }
    EXRQUY_ASSIGN_OR_RETURN(tail.body, CompileExpr(*e.ret, *cur, mode));
    tail.body = dag_->Project(tail.body, Ipi());
    return tail;
  }

  // -- Conditionals and quantifiers -----------------------------------------

  Result<OpId> CompileIf(const Expr& e, Scope& scope, OrderingMode mode) {
    EXRQUY_ASSIGN_OR_RETURN(OpId qc, CompileEbv(*e.children[0], scope, mode));
    OpId then_loop =
        dag_->Project(dag_->Select(qc, item()), {{iter(), iter()}});
    ColId notc = FreshCol("not");
    OpId qn = dag_->Fun(qc, FunKind::kNot, notc, {item()});
    OpId else_loop =
        dag_->Project(dag_->Select(qn, notc), {{iter(), iter()}});
    Scope then_scope = MakeRestrictScope(&scope, then_loop);
    Scope else_scope = MakeRestrictScope(&scope, else_loop);
    EXRQUY_ASSIGN_OR_RETURN(OpId qt,
                            CompileExpr(*e.children[1], then_scope, mode));
    EXRQUY_ASSIGN_OR_RETURN(OpId qe,
                            CompileExpr(*e.children[2], else_scope, mode));
    return dag_->Union(dag_->Project(qt, Ipi()), dag_->Project(qe, Ipi()));
  }

  // some $x in e1 satisfies e2 (every was normalized away).
  Result<OpId> CompileSome(const Expr& e, Scope& scope, OrderingMode mode) {
    EXRQUY_CHECK(e.op == BinOp::kOr);
    EXRQUY_ASSIGN_OR_RETURN(OpId q1, CompileExpr(*e.children[0], scope, mode));
    q1 = dag_->Project(q1, Ipi());
    OpId qb;
    if (exploit_ && mode == OrderingMode::kUnordered) {
      qb = dag_->RowId(q1, col::bind());
    } else {
      qb = dag_->RowNum(q1, col::bind(), {{iter(), false}, {pos(), false}},
                        kNoCol);
    }
    Scope inner = MakeLiftScope(&scope, qb);
    inner.vars[e.string_value] = ToTriple(
        dag_->Project(qb, {{iter(), col::bind()}, {item(), item()}}));
    EXRQUY_ASSIGN_OR_RETURN(OpId qs, CompileEbv(*e.children[1], inner, mode));
    OpId sel = dag_->Select(qs, item());
    OpId back = dag_->EquiJoin(dag_->Project(sel, {{iter(), iter()}}),
                               inner.map, iter(), inner.map_inner);
    OpId found =
        dag_->Distinct(dag_->Project(back, {{iter(), inner.map_outer}}));
    OpId t = dag_->AttachConst(found, item(), Value::Bool(true));
    return ToTriple(WithDefault(t, scope.loop, Value::Bool(false)));
  }

  // -- Paths ------------------------------------------------------------

  Result<OpId> CompileStep(const Expr& e, Scope& scope, OrderingMode mode) {
    EXRQUY_ASSIGN_OR_RETURN(OpId q, CompileExpr(*e.children[0], scope, mode));
    NodeTest test;
    test.kind = e.test_kind;
    if (test.kind == NodeTest::Kind::kName) {
      test.name = strings_->Intern(e.test_name);
    }
    OpId st = dag_->Step(dag_->Project(q, Ii()), e.axis, test);
    if (exploit_ && mode == OrderingMode::kUnordered) {
      // Rule LOC#: sequence order is arbitrary.
      return dag_->RowId(st, pos());
    }
    // Rule LOC: document order determines sequence order (doc -> seq).
    return dag_->Project(dag_->RowNum(st, pos(), {{item(), false}}, iter()),
                         Ipi());
  }

  // e1/(e2): evaluate e2 once per context node of e1, take the distinct
  // node-set union of the per-context results, and derive sequence order
  // from document order (or arbitrarily, under LOC#-style indifference).
  Result<OpId> CompilePathFilter(const Expr& e, Scope& scope,
                                 OrderingMode mode) {
    EXRQUY_ASSIGN_OR_RETURN(OpId q1, CompileExpr(*e.children[0], scope, mode));
    q1 = dag_->Project(q1, Ipi());
    // Context iteration order is unobservable: the final set is re-sorted
    // (or arbitrary), so # is sound in either mode.
    OpId qb = dag_->RowId(q1, col::bind());
    Scope inner = MakeLiftScope(&scope, qb);
    inner.vars["."] = ToTriple(
        dag_->Project(qb, {{iter(), col::bind()}, {item(), item()}}));
    EXRQUY_ASSIGN_OR_RETURN(OpId qe,
                            CompileExpr(*e.children[1], inner, mode));
    OpId back = dag_->EquiJoin(dag_->Project(qe, Ii()), inner.map, iter(),
                               inner.map_inner);
    OpId set = dag_->Distinct(dag_->Project(
        back, {{iter(), inner.map_outer}, {item(), item()}}));
    if (exploit_ && mode == OrderingMode::kUnordered) {
      return dag_->RowId(set, pos());
    }
    return dag_->Project(dag_->RowNum(set, pos(), {{item(), false}}, iter()),
                         Ipi());
  }

  Result<OpId> CompileSetOp(const Expr& e, Scope& scope, OrderingMode mode) {
    EXRQUY_ASSIGN_OR_RETURN(OpId q1, CompileExpr(*e.children[0], scope, mode));
    EXRQUY_ASSIGN_OR_RETURN(OpId q2, CompileExpr(*e.children[1], scope, mode));
    OpId l = dag_->Project(q1, Ii());
    OpId r = dag_->Project(q2, Ii());
    OpId set;
    switch (e.op) {
      case BinOp::kUnion:
        set = dag_->Distinct(dag_->Union(l, r));
        break;
      case BinOp::kIntersect:
        set = dag_->SemiJoin(dag_->Distinct(l), r, {iter(), item()});
        break;
      case BinOp::kExcept:
        set = dag_->Difference(dag_->Distinct(l), r, {iter(), item()});
        break;
      default:
        return Internal("bad set op");
    }
    if (exploit_ && mode == OrderingMode::kUnordered) {
      return dag_->RowId(set, pos());
    }
    return dag_->Project(dag_->RowNum(set, pos(), {{item(), false}}, iter()),
                         Ipi());
  }

  // Recognizes `position() op <int>` / `<int> op position()` predicates;
  // fills *op_out (normalized to position-on-the-left) and *value_out.
  static bool IsPositionComparison(const Expr& p, FunKind* op_out,
                                   int64_t* value_out) {
    if (p.kind != ExprKind::kGeneralComp && p.kind != ExprKind::kValueComp) {
      return false;
    }
    auto is_position = [](const Expr& e) {
      return e.kind == ExprKind::kFunctionCall &&
             e.string_value == "position" && e.children.empty();
    };
    const Expr* lhs = p.children[0].get();
    const Expr* rhs = p.children[1].get();
    // The normalizer may have wrapped general-comparison operands.
    auto unwrap = [](const Expr* e) {
      while (e->kind == ExprKind::kFunctionCall &&
             e->string_value == "unordered") {
        e = e->children[0].get();
      }
      return e;
    };
    lhs = unwrap(lhs);
    rhs = unwrap(rhs);
    bool swapped;
    const Expr* value;
    if (is_position(*lhs) && rhs->kind == ExprKind::kIntLit) {
      swapped = false;
      value = rhs;
    } else if (is_position(*rhs) && lhs->kind == ExprKind::kIntLit) {
      swapped = true;
      value = lhs;
    } else {
      return false;
    }
    FunKind op;
    switch (p.op) {
      case BinOp::kEq:
        op = FunKind::kEq;
        break;
      case BinOp::kNe:
        op = FunKind::kNe;
        break;
      case BinOp::kLt:
        op = swapped ? FunKind::kGt : FunKind::kLt;
        break;
      case BinOp::kLe:
        op = swapped ? FunKind::kGe : FunKind::kLe;
        break;
      case BinOp::kGt:
        op = swapped ? FunKind::kLt : FunKind::kGt;
        break;
      case BinOp::kGe:
        op = swapped ? FunKind::kLe : FunKind::kGe;
        break;
      default:
        return false;
    }
    *op_out = op;
    *value_out = value->int_value;
    return true;
  }

  Result<OpId> CompilePredicate(const Expr& e, Scope& scope,
                                OrderingMode mode) {
    EXRQUY_ASSIGN_OR_RETURN(OpId q1, CompileExpr(*e.children[0], scope, mode));
    q1 = dag_->Project(q1, Ipi());
    const Expr& p = *e.children[1];

    // position() comparisons: a dense re-rank filtered by the relation.
    FunKind pos_op;
    int64_t pos_value;
    if (IsPositionComparison(p, &pos_op, &pos_value)) {
      ColId rank = FreshCol("rank");
      OpId rn = dag_->RowNum(q1, rank, {{pos(), false}}, iter());
      ColId kc = FreshCol("k");
      OpId withk = dag_->AttachConst(rn, kc, Value::Int(pos_value));
      ColId sel = FreshCol("sel");
      OpId flagged = dag_->Fun(withk, pos_op, sel, {rank, kc});
      return dag_->Project(dag_->Select(flagged, sel), Ipi());
    }

    // Positional predicates re-rank by pos (dense), then select the rank.
    if (p.kind == ExprKind::kIntLit ||
        (p.kind == ExprKind::kFunctionCall && p.string_value == "last" &&
         p.children.empty())) {
      ColId rank = FreshCol("rank");
      OpId rn = dag_->RowNum(q1, rank, {{pos(), false}}, iter());
      ColId cmp = FreshCol("sel");
      OpId flagged;
      if (p.kind == ExprKind::kIntLit) {
        ColId kc = FreshCol("k");
        OpId withk = dag_->AttachConst(rn, kc, Value::Int(p.int_value));
        flagged = dag_->Fun(withk, FunKind::kEq, cmp, {rank, kc});
      } else {
        ColId cnt = FreshCol("cnt");
        OpId counts = dag_->Aggr(q1, AggrKind::kCount, cnt, kNoCol, iter());
        ColId ci = FreshCol("iterC");
        OpId counts_r = dag_->Project(counts, {{ci, iter()}, {cnt, cnt}});
        OpId withc = dag_->EquiJoin(rn, counts_r, iter(), ci);
        flagged = dag_->Fun(withc, FunKind::kEq, cmp, {rank, cnt});
      }
      return dag_->Project(dag_->Select(flagged, cmp), Ipi());
    }

    // General predicate: filter by the effective boolean value of p with
    // the context item bound to each node. The context binding order is
    // never observable (filtering keeps the original rows), so # is sound
    // in either mode.
    OpId qb = dag_->RowId(q1, col::bind());
    Scope inner = MakeLiftScope(&scope, qb);
    inner.vars["."] = ToTriple(
        dag_->Project(qb, {{iter(), col::bind()}, {item(), item()}}));
    EXRQUY_ASSIGN_OR_RETURN(OpId qp, CompileEbv(p, inner, mode));
    ColId kb = FreshCol("keep");
    OpId keep = dag_->Project(dag_->Select(qp, item()), {{kb, iter()}});
    OpId j = dag_->EquiJoin(qb, keep, col::bind(), kb);
    return dag_->Project(j, Ipi());
  }

  // -- Comparisons, arithmetic, logic ---------------------------------------

  Result<OpId> CompileComparison(const Expr& e, Scope& scope,
                                 OrderingMode mode) {
    EXRQUY_ASSIGN_OR_RETURN(OpId q1, CompileExpr(*e.children[0], scope, mode));
    EXRQUY_ASSIGN_OR_RETURN(OpId q2, CompileExpr(*e.children[1], scope, mode));
    if (e.kind != ExprKind::kNodeComp) {
      q1 = Atomize(dag_->Project(q1, Ipi()));
      q2 = Atomize(dag_->Project(q2, Ipi()));
    }
    FunKind fk;
    switch (e.op) {
      case BinOp::kEq:
        fk = FunKind::kEq;
        break;
      case BinOp::kNe:
        fk = FunKind::kNe;
        break;
      case BinOp::kLt:
        fk = FunKind::kLt;
        break;
      case BinOp::kLe:
        fk = FunKind::kLe;
        break;
      case BinOp::kGt:
        fk = FunKind::kGt;
        break;
      case BinOp::kGe:
        fk = FunKind::kGe;
        break;
      case BinOp::kBefore:
        fk = FunKind::kNodeBefore;
        break;
      case BinOp::kAfter:
        fk = FunKind::kNodeAfter;
        break;
      case BinOp::kIs:
        fk = FunKind::kNodeIs;
        break;
      default:
        return Internal("bad comparison op");
    }
    // Existential semantics: a pair-wise comparison over the per-iteration
    // cross product (the value-based join of Section 5 arises here), then
    // per-iteration existence.
    Joined j = JoinOnIter(q1, q2);
    ColId b = FreshCol("cmp");
    OpId c = dag_->Fun(j.plan, fk, b, {item(), j.right_item});
    dag_->SetProv(j.plan, "join");
    dag_->SetProv(c, "join");
    OpId found =
        dag_->Distinct(dag_->Project(dag_->Select(c, b), {{iter(), iter()}}));
    OpId t = dag_->AttachConst(found, item(), Value::Bool(true));
    return ToTriple(WithDefault(t, scope.loop, Value::Bool(false)));
  }

  Result<OpId> CompileArith(const Expr& e, Scope& scope, OrderingMode mode) {
    FunKind fk;
    switch (e.op) {
      case BinOp::kAdd:
        fk = FunKind::kAdd;
        break;
      case BinOp::kSub:
        fk = FunKind::kSub;
        break;
      case BinOp::kMul:
        fk = FunKind::kMul;
        break;
      case BinOp::kDiv:
        fk = FunKind::kDiv;
        break;
      case BinOp::kIDiv:
        fk = FunKind::kIDiv;
        break;
      case BinOp::kMod:
        fk = FunKind::kMod;
        break;
      case BinOp::kNeg: {
        EXRQUY_ASSIGN_OR_RETURN(OpId q,
                                CompileExpr(*e.children[0], scope, mode));
        return MapItem(Atomize(dag_->Project(q, Ipi())), FunKind::kNeg);
      }
      default:
        return Internal("bad arithmetic op");
    }
    EXRQUY_ASSIGN_OR_RETURN(OpId q1, CompileExpr(*e.children[0], scope, mode));
    EXRQUY_ASSIGN_OR_RETURN(OpId q2, CompileExpr(*e.children[1], scope, mode));
    q1 = Atomize(dag_->Project(q1, Ipi()));
    q2 = Atomize(dag_->Project(q2, Ipi()));
    Joined j = JoinOnIter(q1, q2);
    ColId res = FreshCol("item");
    OpId f = dag_->Fun(j.plan, fk, res, {item(), j.right_item});
    return ToTriple(dag_->Project(f, {{iter(), iter()}, {item(), res}}));
  }

  // e1 to e2: the integer range sequence, in ascending sequence order
  // (the Range operator emits values ascending; pos derives from the
  // value order, or arbitrarily under order indifference).
  Result<OpId> CompileRange(const Expr& e, Scope& scope, OrderingMode mode) {
    EXRQUY_ASSIGN_OR_RETURN(OpId q1, CompileExpr(*e.children[0], scope, mode));
    EXRQUY_ASSIGN_OR_RETURN(OpId q2, CompileExpr(*e.children[1], scope, mode));
    q1 = Atomize(dag_->Project(q1, Ipi()));
    q2 = Atomize(dag_->Project(q2, Ipi()));
    Joined j = JoinOnIter(q1, q2);
    OpId r = dag_->Range(j.plan, item(), j.right_item);
    if (exploit_ && mode == OrderingMode::kUnordered) {
      return dag_->RowId(r, pos());
    }
    return dag_->Project(dag_->RowNum(r, pos(), {{item(), false}}, iter()),
                         Ipi());
  }

  Result<OpId> CompileLogical(const Expr& e, Scope& scope,
                              OrderingMode mode) {
    EXRQUY_ASSIGN_OR_RETURN(OpId qa, CompileEbv(*e.children[0], scope, mode));
    EXRQUY_ASSIGN_OR_RETURN(OpId qb, CompileEbv(*e.children[1], scope, mode));
    Joined j = JoinOnIter(qa, qb);
    ColId res = FreshCol("item");
    OpId f = dag_->Fun(j.plan,
                       e.op == BinOp::kAnd ? FunKind::kAnd : FunKind::kOr,
                       res, {item(), j.right_item});
    return ToTriple(dag_->Project(f, {{iter(), iter()}, {item(), res}}));
  }

  // -- Function calls ---------------------------------------------------

  Result<OpId> CompileCall(const Expr& e, Scope& scope, OrderingMode mode) {
    const std::string& name = e.string_value;
    auto arity = [&](size_t n) -> Status {
      if (e.children.size() != n) {
        return TypeError("fn:" + name + " expects " + std::to_string(n) +
                         " argument(s)");
      }
      return Status::Ok();
    };

    if (name == "true" || name == "false") {
      EXRQUY_RETURN_IF_ERROR(arity(0));
      return ConstSeq(scope.loop, Value::Bool(name == "true"));
    }
    if (name == "doc") {
      EXRQUY_RETURN_IF_ERROR(arity(1));
      if (e.children[0]->kind != ExprKind::kStringLit) {
        return Unimplemented("fn:doc requires a string literal argument");
      }
      OpId d = dag_->Doc(strings_->Intern(e.children[0]->string_value));
      return ToTriple(dag_->Cross(scope.loop, d));
    }
    if (name == "unordered") {
      EXRQUY_RETURN_IF_ERROR(arity(1));
      EXRQUY_ASSIGN_OR_RETURN(OpId q,
                              CompileExpr(*e.children[0], scope, mode));
      if (!exploit_) return q;  // identity, like the engines of Section 6
      // Rule FN:UNORDERED: #pos(π_iter,item(q)).
      return dag_->RowId(dag_->Project(q, Ii()), pos());
    }

    if (name == "count" || name == "sum" || name == "max" || name == "min" ||
        name == "avg") {
      EXRQUY_RETURN_IF_ERROR(arity(1));
      EXRQUY_ASSIGN_OR_RETURN(OpId q,
                              CompileExpr(*e.children[0], scope, mode));
      q = dag_->Project(q, Ipi());
      if (name != "count") q = Atomize(q);
      AggrKind ak = name == "count" ? AggrKind::kCount
                    : name == "sum" ? AggrKind::kSum
                    : name == "max" ? AggrKind::kMax
                    : name == "min" ? AggrKind::kMin
                                    : AggrKind::kAvg;
      OpId a;
      if (name == "count" || name == "sum") {
        Value zero = Value::Int(0);
        a = AggrDefault(q, ak, scope.loop, &zero);
      } else {
        a = AggrDefault(q, ak, scope.loop, nullptr);
      }
      if (name == "count") dag_->SetProv(a, "fn:count");
      return ToTriple(a);
    }

    if (name == "empty" || name == "exists") {
      EXRQUY_RETURN_IF_ERROR(arity(1));
      EXRQUY_ASSIGN_OR_RETURN(OpId q,
                              CompileExpr(*e.children[0], scope, mode));
      Value zero = Value::Int(0);
      OpId cnt = AggrDefault(dag_->Project(q, Ipi()), AggrKind::kCount,
                             scope.loop, &zero);
      ColId z = FreshCol("zero");
      OpId withz = dag_->AttachConst(cnt, z, Value::Int(0));
      ColId b = FreshCol("item");
      OpId f = dag_->Fun(withz,
                         name == "empty" ? FunKind::kEq : FunKind::kNe, b,
                         {item(), z});
      return ToTriple(dag_->Project(f, {{iter(), iter()}, {item(), b}}));
    }

    if (name == "boolean") {
      EXRQUY_RETURN_IF_ERROR(arity(1));
      EXRQUY_ASSIGN_OR_RETURN(OpId q, CompileEbv(*e.children[0], scope, mode));
      return ToTriple(q);
    }
    if (name == "not") {
      EXRQUY_RETURN_IF_ERROR(arity(1));
      EXRQUY_ASSIGN_OR_RETURN(OpId q, CompileEbv(*e.children[0], scope, mode));
      ColId b = FreshCol("item");
      OpId f = dag_->Fun(q, FunKind::kNot, b, {item()});
      return ToTriple(dag_->Project(f, {{iter(), iter()}, {item(), b}}));
    }

    if (name == "distinct-values") {
      EXRQUY_RETURN_IF_ERROR(arity(1));
      EXRQUY_ASSIGN_OR_RETURN(OpId q,
                              CompileExpr(*e.children[0], scope, mode));
      OpId d = dag_->Distinct(
          dag_->Project(Atomize(dag_->Project(q, Ipi())), Ii()));
      // The spec leaves the result order implementation defined: a free #
      // when order indifference is exploited, a deterministic sort
      // otherwise.
      if (exploit_) return dag_->RowId(d, pos());
      return dag_->Project(dag_->RowNum(d, pos(), {{item(), false}}, iter()),
                           Ipi());
    }

    if (name == "data") {
      EXRQUY_RETURN_IF_ERROR(arity(1));
      EXRQUY_ASSIGN_OR_RETURN(OpId q,
                              CompileExpr(*e.children[0], scope, mode));
      return Atomize(dag_->Project(q, Ipi()));
    }
    if (name == "string") {
      EXRQUY_RETURN_IF_ERROR(arity(1));
      EXRQUY_ASSIGN_OR_RETURN(OpId q,
                              CompileExpr(*e.children[0], scope, mode));
      return MapItem(Atomize(dag_->Project(q, Ipi())), FunKind::kToString);
    }
    if (name == "number") {
      EXRQUY_RETURN_IF_ERROR(arity(1));
      EXRQUY_ASSIGN_OR_RETURN(OpId q,
                              CompileExpr(*e.children[0], scope, mode));
      return MapItem(Atomize(dag_->Project(q, Ipi())), FunKind::kToDouble);
    }
    if (name == "string-length") {
      EXRQUY_RETURN_IF_ERROR(arity(1));
      EXRQUY_ASSIGN_OR_RETURN(OpId q,
                              CompileExpr(*e.children[0], scope, mode));
      return MapItem(
          MapItem(Atomize(dag_->Project(q, Ipi())), FunKind::kToString),
          FunKind::kStringLength);
    }

    if (name == "contains") {
      EXRQUY_RETURN_IF_ERROR(arity(2));
      EXRQUY_ASSIGN_OR_RETURN(OpId q1,
                              CompileExpr(*e.children[0], scope, mode));
      EXRQUY_ASSIGN_OR_RETURN(OpId q2,
                              CompileExpr(*e.children[1], scope, mode));
      q1 = MapItem(Atomize(dag_->Project(q1, Ipi())), FunKind::kToString);
      q2 = MapItem(Atomize(dag_->Project(q2, Ipi())), FunKind::kToString);
      Joined j = JoinOnIter(q1, q2);
      ColId b = FreshCol("item");
      OpId f =
          dag_->Fun(j.plan, FunKind::kContains, b, {item(), j.right_item});
      return ToTriple(dag_->Project(f, {{iter(), iter()}, {item(), b}}));
    }

    if (name == "concat") {
      if (e.children.size() < 2) {
        return TypeError("fn:concat expects at least two arguments");
      }
      OpId acc = kNoOp;
      for (const ExprPtr& arg : e.children) {
        EXRQUY_ASSIGN_OR_RETURN(OpId q, CompileExpr(*arg, scope, mode));
        q = MapItem(Atomize(dag_->Project(q, Ipi())), FunKind::kToString);
        if (acc == kNoOp) {
          acc = q;
          continue;
        }
        Joined j = JoinOnIter(acc, q);
        ColId res = FreshCol("item");
        OpId f =
            dag_->Fun(j.plan, FunKind::kConcat, res, {item(), j.right_item});
        acc = ToTriple(dag_->Project(f, {{iter(), iter()}, {item(), res}}));
      }
      return acc;
    }

    if (name == "starts-with" || name == "ends-with") {
      EXRQUY_RETURN_IF_ERROR(arity(2));
      EXRQUY_ASSIGN_OR_RETURN(OpId q1,
                              CompileExpr(*e.children[0], scope, mode));
      EXRQUY_ASSIGN_OR_RETURN(OpId q2,
                              CompileExpr(*e.children[1], scope, mode));
      q1 = MapItem(Atomize(dag_->Project(q1, Ipi())), FunKind::kToString);
      q2 = MapItem(Atomize(dag_->Project(q2, Ipi())), FunKind::kToString);
      Joined j = JoinOnIter(q1, q2);
      ColId b = FreshCol("item");
      OpId f = dag_->Fun(j.plan,
                         name == "starts-with" ? FunKind::kStartsWith
                                               : FunKind::kEndsWith,
                         b, {item(), j.right_item});
      return ToTriple(dag_->Project(f, {{iter(), iter()}, {item(), b}}));
    }

    if (name == "upper-case" || name == "lower-case" ||
        name == "normalize-space") {
      EXRQUY_RETURN_IF_ERROR(arity(1));
      EXRQUY_ASSIGN_OR_RETURN(OpId q,
                              CompileExpr(*e.children[0], scope, mode));
      FunKind fk = name == "upper-case"   ? FunKind::kUpperCase
                   : name == "lower-case" ? FunKind::kLowerCase
                                          : FunKind::kNormalizeSpace;
      return MapItem(
          MapItem(Atomize(dag_->Project(q, Ipi())), FunKind::kToString), fk);
    }

    if (name == "substring") {
      if (e.children.size() != 2 && e.children.size() != 3) {
        return TypeError("fn:substring expects 2 or 3 arguments");
      }
      EXRQUY_ASSIGN_OR_RETURN(OpId q1,
                              CompileExpr(*e.children[0], scope, mode));
      EXRQUY_ASSIGN_OR_RETURN(OpId q2,
                              CompileExpr(*e.children[1], scope, mode));
      q1 = MapItem(Atomize(dag_->Project(q1, Ipi())), FunKind::kToString);
      q2 = Atomize(dag_->Project(q2, Ipi()));
      Joined j = JoinOnIter(q1, q2);
      ColId res = FreshCol("item");
      if (e.children.size() == 2) {
        OpId f = dag_->Fun(j.plan, FunKind::kSubstring2, res,
                           {item(), j.right_item});
        return ToTriple(dag_->Project(f, {{iter(), iter()}, {item(), res}}));
      }
      EXRQUY_ASSIGN_OR_RETURN(OpId q3,
                              CompileExpr(*e.children[2], scope, mode));
      q3 = Atomize(dag_->Project(q3, Ipi()));
      ColId i3 = FreshCol("iter3");
      ColId t3 = FreshCol("item3");
      OpId r3 = dag_->Project(q3, {{i3, iter()}, {t3, item()}});
      OpId j3 = dag_->EquiJoin(j.plan, r3, iter(), i3);
      OpId f = dag_->Fun(j3, FunKind::kSubstring3, res,
                         {item(), j.right_item, t3});
      return ToTriple(dag_->Project(f, {{iter(), iter()}, {item(), res}}));
    }

    if (name == "abs" || name == "floor" || name == "ceiling" ||
        name == "round") {
      EXRQUY_RETURN_IF_ERROR(arity(1));
      EXRQUY_ASSIGN_OR_RETURN(OpId q,
                              CompileExpr(*e.children[0], scope, mode));
      FunKind fk = name == "abs"     ? FunKind::kAbs
                   : name == "floor" ? FunKind::kFloor
                   : name == "ceiling" ? FunKind::kCeiling
                                       : FunKind::kRound;
      return MapItem(Atomize(dag_->Project(q, Ipi())), fk);
    }

    if (name == "name" || name == "local-name") {
      EXRQUY_RETURN_IF_ERROR(arity(1));
      EXRQUY_ASSIGN_OR_RETURN(OpId q,
                              CompileExpr(*e.children[0], scope, mode));
      return MapItem(dag_->Project(q, Ipi()), FunKind::kNodeName);
    }

    if (name == "string-join") {
      EXRQUY_RETURN_IF_ERROR(arity(2));
      if (e.children[1]->kind != ExprKind::kStringLit) {
        return Unimplemented(
            "fn:string-join requires a string literal separator");
      }
      EXRQUY_ASSIGN_OR_RETURN(OpId q,
                              CompileExpr(*e.children[0], scope, mode));
      q = MapItem(Atomize(dag_->Project(q, Ipi())), FunKind::kToString);
      ColId res = FreshCol("item");
      OpId a = dag_->AggrStrJoin(
          dag_->Project(q, Ipi()), res, item(), iter(), pos(),
          strings_->Intern(e.children[1]->string_value));
      OpId renamed = dag_->Project(a, {{iter(), iter()}, {item(), res}});
      return ToTriple(
          WithDefault(renamed, scope.loop, Value::Str(StrPool::kEmpty)));
    }

    if (name == "reverse") {
      // Order sensitive: pos is renumbered in reverse — this one *cannot*
      // ignore its argument's order, so no fn:unordered is inserted for
      // it and the pos computation below stays live even under CDA.
      EXRQUY_RETURN_IF_ERROR(arity(1));
      EXRQUY_ASSIGN_OR_RETURN(OpId q,
                              CompileExpr(*e.children[0], scope, mode));
      ColId rev = FreshCol("pos1");
      OpId rn = dag_->RowNum(dag_->Project(q, Ipi()), rev,
                             {{pos(), true}}, iter());
      return dag_->Project(rn,
                           {{iter(), iter()}, {pos(), rev}, {item(), item()}});
    }

    if (name == "zero-or-one" || name == "exactly-one" ||
        name == "one-or-more") {
      // Cardinality-checked identities: the argument passes through, but
      // the engine raises err:FORG000x when a loop iteration violates
      // the bound.
      EXRQUY_RETURN_IF_ERROR(arity(1));
      EXRQUY_ASSIGN_OR_RETURN(OpId q,
                              CompileExpr(*e.children[0], scope, mode));
      int64_t lo = name == "zero-or-one" ? 0 : 1;
      int64_t hi = name == "one-or-more"
                       ? std::numeric_limits<int64_t>::max()
                       : 1;
      return dag_->CardCheck(dag_->Project(q, Ipi()), scope.loop, lo, hi,
                             strings_->Intern(name));
    }

    if (name == "subsequence") {
      if (e.children.size() != 2 && e.children.size() != 3) {
        return TypeError("fn:subsequence expects 2 or 3 arguments");
      }
      EXRQUY_ASSIGN_OR_RETURN(OpId q,
                              CompileExpr(*e.children[0], scope, mode));
      q = dag_->Project(q, Ipi());
      // Dense per-iteration ranks; the window bounds round per spec.
      ColId rank = FreshCol("rank");
      OpId rn = dag_->RowNum(q, rank, {{pos(), false}}, iter());
      EXRQUY_ASSIGN_OR_RETURN(OpId qs,
                              CompileExpr(*e.children[1], scope, mode));
      qs = MapItem(Atomize(dag_->Project(qs, Ipi())), FunKind::kRound);
      ColId si = FreshCol("iterS");
      ColId sv = FreshCol("start");
      OpId smap = dag_->Project(qs, {{si, iter()}, {sv, item()}});
      OpId j = dag_->EquiJoin(rn, smap, iter(), si);
      ColId ok1 = FreshCol("sel");
      OpId f1 = dag_->Fun(j, FunKind::kGe, ok1, {rank, sv});
      OpId filtered = dag_->Select(f1, ok1);
      if (e.children.size() == 3) {
        EXRQUY_ASSIGN_OR_RETURN(OpId ql,
                                CompileExpr(*e.children[2], scope, mode));
        ql = MapItem(Atomize(dag_->Project(ql, Ipi())), FunKind::kRound);
        ColId li = FreshCol("iterL");
        ColId lv = FreshCol("len");
        OpId lmap = dag_->Project(ql, {{li, iter()}, {lv, item()}});
        OpId j2 = dag_->EquiJoin(filtered, lmap, iter(), li);
        ColId bound = FreshCol("bound");
        OpId add = dag_->Fun(j2, FunKind::kAdd, bound, {sv, lv});
        ColId ok2 = FreshCol("sel");
        OpId f2 = dag_->Fun(add, FunKind::kLt, ok2, {rank, bound});
        filtered = dag_->Select(f2, ok2);
      }
      return dag_->Project(filtered, Ipi());
    }

    if (name == "last" || name == "position") {
      return Unimplemented("fn:" + name +
                           " is supported only inside predicates");
    }
    return NotFound("unknown function: " + name);
  }

  // -- Constructors -----------------------------------------------------

  // Compiles an attribute-value template to a singleton string (iter,
  // pos, item) plan.
  Result<OpId> CompileAvt(const std::vector<CtorPart>& parts, Scope& scope,
                          OrderingMode mode) {
    std::vector<OpId> plans;
    for (const CtorPart& p : parts) {
      if (p.expr == nullptr) {
        plans.push_back(
            ConstSeq(scope.loop, Value::Str(strings_->Intern(p.text))));
        continue;
      }
      EXRQUY_ASSIGN_OR_RETURN(OpId q, CompileExpr(*p.expr, scope, mode));
      q = MapItem(Atomize(dag_->Project(q, Ipi())), FunKind::kToString);
      // Space-joined in sequence order (pos), '' when empty.
      ColId res = FreshCol("item");
      OpId a = dag_->AggrStrJoin(dag_->Project(q, Ipi()), res, item(),
                                 iter(), pos(), strings_->Intern(" "));
      OpId renamed = dag_->Project(a, {{iter(), iter()}, {item(), res}});
      OpId joined =
          WithDefault(renamed, scope.loop, Value::Str(StrPool::kEmpty));
      plans.push_back(ToTriple(joined));
    }
    if (plans.empty()) {
      return ConstSeq(scope.loop, Value::Str(StrPool::kEmpty));
    }
    OpId acc = plans[0];
    for (size_t i = 1; i < plans.size(); ++i) {
      Joined j = JoinOnIter(acc, plans[i]);
      ColId res = FreshCol("item");
      OpId f =
          dag_->Fun(j.plan, FunKind::kConcat, res, {item(), j.right_item});
      acc = ToTriple(dag_->Project(f, {{iter(), iter()}, {item(), res}}));
    }
    return acc;
  }

  Result<OpId> CompileElementCtor(const Expr& e, Scope& scope,
                                  OrderingMode mode) {
    std::vector<OpId> content;
    for (const ExprPtr& a : e.children) {
      EXRQUY_CHECK(a->kind == ExprKind::kAttributeCtor);
      EXRQUY_ASSIGN_OR_RETURN(OpId value, CompileAvt(a->parts, scope, mode));
      OpId attr =
          dag_->Attr(strings_->Intern(a->string_value), value, scope.loop);
      content.push_back(ToTriple(attr));
    }
    for (const CtorPart& p : e.parts) {
      if (p.expr == nullptr) {
        // Literal content is a *text node*, not an atomic: it must not
        // participate in the space-joining of adjacent atomics
        // (<e>a{1}b</e> serializes as a1b).
        OpId lit =
            ConstSeq(scope.loop, Value::Str(strings_->Intern(p.text)));
        content.push_back(ToTriple(dag_->Text(lit, scope.loop)));
        continue;
      }
      EXRQUY_ASSIGN_OR_RETURN(OpId q, CompileExpr(*p.expr, scope, mode));
      content.push_back(q);
    }
    OpId content_plan = SequencePlans(content);
    OpId el =
        dag_->Elem(strings_->Intern(e.string_value), content_plan, scope.loop);
    dag_->SetProv(el, "constructor");
    return ToTriple(el);
  }

  Dag* dag_;
  StrPool* strings_;
  bool exploit_;
};

}  // namespace

Result<CompiledQuery> CompileQuery(const Query& query, StrPool* strings,
                                   const CompileOptions& options) {
  CompiledQuery out;
  out.dag = std::make_unique<Dag>();
  Compiler compiler(out.dag.get(), strings, options.exploit_unordered);
  OrderingMode mode = query.has_ordering_decl ? query.default_ordering
                                              : options.default_mode;
  if (!options.exploit_unordered) {
    // Baseline configuration: strict ordering throughout (Section 5's
    // "compiler ignores order indifference").
    mode = OrderingMode::kOrdered;
  }
  EXRQUY_ASSIGN_OR_RETURN(out.root, compiler.CompileRoot(*query.body, mode));
  return out;
}

}  // namespace exrquy
