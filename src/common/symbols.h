// Column symbols for the relational algebra. Column names such as iter,
// pos, item are interned into dense 32-bit ids so that plan operators can
// carry small fixed-size column lists and the optimizer can use bitset-like
// column sets. The well-known columns of the compilation scheme (Section 3
// of the paper) are pre-interned as constants.
#ifndef EXRQUY_COMMON_SYMBOLS_H_
#define EXRQUY_COMMON_SYMBOLS_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace exrquy {

using ColId = uint32_t;

// Interns a column name process-wide (not thread-safe; the library is
// single-threaded by design, like the paper's per-query evaluation).
ColId ColSym(std::string_view name);

// Returns the name of an interned column id.
const std::string& ColName(ColId id);

// Derives a fresh, unique column id with a readable name based on `base`
// (e.g. "pos" -> "pos$17"). Used by the compiler for intermediate columns.
ColId FreshCol(std::string_view base);

// Well-known columns of the iter|pos|item encoding.
namespace col {
ColId iter();
ColId pos();
ColId item();
ColId bind();
ColId ord();
ColId item1();
ColId iter1();
ColId pos1();
}  // namespace col

}  // namespace exrquy

#endif  // EXRQUY_COMMON_SYMBOLS_H_
