// Exhaustive fault-point sweep (engine/faults.h SweepFaultPoints)
// through the query service: for a set of XMark queries, arm "fail
// allocation N" for N = 1, 2, ... until a run completes cleanly —
// proving every single allocation point in the workload was failed once
// — and after every faulted attempt assert the full resilience
// contract:
//
//   * the failure surfaces as exactly the planned Status code (never a
//     torn result, a crash, or a hang — the sweep completing covers the
//     last two, the ASan/LSan CI job covers leaks);
//   * the service stays pristine: every worker store is rolled back to
//     its snapshot bounds, and the shared string pool stops growing
//     after the first full evaluation;
//   * an immediate unfaulted re-run is byte-identical to the
//     never-faulted reference.
//
// Two queries additionally sweep the cancel-at-op and deadline-at-chunk
// counters, covering all three FaultKinds end to end.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "api/service.h"
#include "api/session.h"
#include "common/status.h"
#include "engine/faults.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

namespace exrquy {
namespace {

// Queries chosen to cover distinct plan shapes (path-only, filter,
// aggregation, join, construction) while keeping the sweep — two
// engine runs per fault point — affordable at this scale.
const char* const kSweepQueries[] = {"Q1", "Q4", "Q6", "Q13", "Q17"};

// chunk_rows pinned tiny and identical everywhere: chunk-boundary poll
// counts are a pure function of table sizes, so sweeps are reproducible.
QueryOptions SweepOptions() {
  QueryOptions o;
  o.chunk_rows = 7;
  return o;
}

class FaultSweepTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ServiceConfig config;
    config.workers = 2;
    config.plan_cache = 1;
    config.result_cache_bytes = 0;  // every re-run must run the engine
    service_ = new QueryService(config);
    XMarkOptions options;
    options.scale = 0.002;
    ASSERT_TRUE(
        service_->LoadDocument("auction.xml", GenerateXMark(options)).ok());
  }
  static void TearDownTestSuite() {
    delete service_;
    service_ = nullptr;
  }

  // Runs the sweep for one (query, kind) pair with the full per-point
  // contract, and returns the number of fault points exercised.
  static uint64_t Sweep(const std::string& name, FaultKind kind) {
    const std::string query = XMarkQueryText(name);
    Result<ServiceResult> reference = service_->Execute(query, SweepOptions());
    EXPECT_TRUE(reference.ok()) << name << ": "
                                << reference.status().ToString();
    if (!reference.ok()) return 0;
    // The reference evaluated the query in full, so the shared pool now
    // holds every string this query can intern; any later growth would
    // be a leak of abort-path state.
    const size_t pool_size = service_->strings().size();

    auto attempt = [&](const FaultPlan& plan) -> Status {
      QueryOptions o = SweepOptions();
      o.faults = plan;
      Result<ServiceResult> r = service_->Execute(query, o);
      return r.ok() ? Status::Ok() : r.status();
    };
    auto check = [&](uint64_t point, const Status& st) {
      std::string context =
          name + " " + std::string(StatusCodeName(FaultKindCode(kind))) +
          " point " + std::to_string(point);
      // Exactly the planned code, never some other error.
      EXPECT_EQ(st.code(), FaultKindCode(kind))
          << context << ": " << st.ToString();
      // Pristine service: worker stores rolled back, pool not grown.
      EXPECT_TRUE(service_->WorkersPristine()) << context;
      EXPECT_EQ(service_->strings().size(), pool_size) << context;
      // Byte-identical unfaulted re-run.
      Result<ServiceResult> again = service_->Execute(query, SweepOptions());
      ASSERT_TRUE(again.ok()) << context << ": " << again.status().ToString();
      EXPECT_EQ(again->result.serialized, reference->result.serialized)
          << context;
      EXPECT_EQ(again->result.items, reference->result.items) << context;
    };

    Result<uint64_t> points =
        SweepFaultPoints(kind, /*max_points=*/1000000, attempt, check);
    EXPECT_TRUE(points.ok()) << name << ": " << points.status().ToString();
    if (!points.ok()) return 0;
    EXPECT_GT(*points, 0u)
        << name << ": a real workload must hit at least one fault point";
    return *points;
  }

  static QueryService* service_;
};

QueryService* FaultSweepTest::service_ = nullptr;

TEST_F(FaultSweepTest, FailAllocSweepIsExhaustiveAndClean) {
  for (const char* name : kSweepQueries) {
    uint64_t points = Sweep(name, FaultKind::kFailAlloc);
    std::printf("[sweep] %-4s fail-alloc       points=%llu\n", name,
                static_cast<unsigned long long>(points));
  }
  // Nothing the sweep did may linger: no retries (injected faults are
  // surfaced verbatim), no quarantine entries, no degraded runs.
  ServiceCounters counters = service_->counters();
  EXPECT_EQ(counters.retries, 0u);
  EXPECT_EQ(counters.degraded_runs, 0u);
  EXPECT_EQ(counters.quarantine.tracked, 0u);
  EXPECT_EQ(counters.quarantine.shed, 0u);
  EXPECT_TRUE(service_->WorkersPristine());
}

TEST_F(FaultSweepTest, CancelAtOpSweep) {
  for (const char* name : {"Q1", "Q6"}) {
    uint64_t points = Sweep(name, FaultKind::kCancelAtOp);
    std::printf("[sweep] %-4s cancel-at-op     points=%llu\n", name,
                static_cast<unsigned long long>(points));
  }
}

TEST_F(FaultSweepTest, DeadlineAtChunkSweep) {
  for (const char* name : {"Q1", "Q6"}) {
    uint64_t points = Sweep(name, FaultKind::kDeadlineAtChunk);
    std::printf("[sweep] %-4s deadline-at-chunk points=%llu\n", name,
                static_cast<unsigned long long>(points));
  }
}

TEST_F(FaultSweepTest, SweepGuardRejectsUnreachableWorkload) {
  // A workload that always fails never reaches a clean run: the guard
  // returns kInternal instead of looping forever.
  auto attempt = [](const FaultPlan&) { return Internal("always fails"); };
  Result<uint64_t> r = SweepFaultPoints(FaultKind::kFailAlloc, 5, attempt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace exrquy
