// The optimization pipeline: column dependency analysis + rewrites,
// iterated to a fixpoint (pruning exposes more pruning, e.g. removing a
// % makes two location steps adjacent and mergeable).
#ifndef EXRQUY_OPT_PIPELINE_H_
#define EXRQUY_OPT_PIPELINE_H_

#include "algebra/algebra.h"
#include "opt/rewrites.h"

namespace exrquy {

struct OptimizeOptions {
  // Master switch; when false the emitted plan runs as-is (the paper's
  // baseline configuration).
  bool enable = true;
  RewriteOptions rewrites;
  int max_passes = 8;
};

// Returns the new plan root (ops are appended to the same DAG; use
// ReachableFrom/CollectPlanStats on the returned root).
OpId Optimize(Dag* dag, OpId root, const OptimizeOptions& options);

}  // namespace exrquy

#endif  // EXRQUY_OPT_PIPELINE_H_
