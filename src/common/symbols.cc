#include "common/symbols.h"

#include "common/check.h"
#include "common/str_pool.h"

namespace exrquy {
namespace {

StrPool& Registry() {
  static StrPool* pool = new StrPool();  // never destroyed (trivial at exit)
  return *pool;
}

}  // namespace

ColId ColSym(std::string_view name) { return Registry().Intern(name); }

const std::string& ColName(ColId id) { return Registry().Get(id); }

ColId FreshCol(std::string_view base) {
  static uint64_t counter = 0;
  std::string name(base);
  name += '$';
  name += std::to_string(++counter);
  return Registry().Intern(name);
}

namespace col {
ColId iter() {
  static const ColId id = ColSym("iter");
  return id;
}
ColId pos() {
  static const ColId id = ColSym("pos");
  return id;
}
ColId item() {
  static const ColId id = ColSym("item");
  return id;
}
ColId bind() {
  static const ColId id = ColSym("bind");
  return id;
}
ColId ord() {
  static const ColId id = ColSym("ord");
  return id;
}
ColId item1() {
  static const ColId id = ColSym("item1");
  return id;
}
ColId iter1() {
  static const ColId id = ColSym("iter1");
  return id;
}
ColId pos1() {
  static const ColId id = ColSym("pos1");
  return id;
}
}  // namespace col

}  // namespace exrquy
