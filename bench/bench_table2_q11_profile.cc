// Table 2: profile breakdown for XMark Query Q11.
//
// The paper dissects where time goes when the compiler ignores order
// indifference: the value-based join and the enforcement of the
// iter -> seq interaction dominate, and the latter is wasted effort since
// the join result only feeds fn:count(). This bench reproduces the
// breakdown (aggregated into the paper's categories from the compiler's
// provenance labels) and then shows the saving once order indifference is
// enabled.
//
// Substitution note (DESIGN.md): Pathfinder's join recognition [9] is out
// of scope, so the per-person evaluation of the inner path shows up as
// lifting joins here; the headline effect — the order-enforcement share
// disappears under fn:unordered — is preserved.
#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_util.h"

namespace exrquy {
namespace {

// Maps a provenance label to one of Table 2's rows.
std::string Category(const std::string& prov) {
  auto contains = [&](const char* s) {
    return prov.find(s) != std::string::npos;
  };
  if (prov == "return (iter->seq)") return "return $i (iter->seq)";
  if (prov == "fn:count" || contains("count($l)")) return "fn:count($l)";
  if (prov == "constructor" || contains("<items")) {
    return "<items name=...>...</items>";
  }
  if (prov == "join" ||
      (contains("income") && contains("5000") && contains(">"))) {
    return "join (of $p and $i)";
  }
  if (contains("5000") || contains("income")) {
    return "@income, 5000 * $i (+ atomization)";
  }
  if (contains("people") || contains("person")) {
    return "$auction/site/people/person";
  }
  if (contains("initial") || contains("open_auction")) {
    return "$auction/site/.../initial (lifted)";
  }
  return "other (lifting, serialization)";
}

void PrintProfile(const Profile& profile) {
  std::map<std::string, double> by_cat;
  for (const auto& [prov, bucket] : profile.by_prov()) {
    by_cat[Category(prov)] += bucket.ms;
  }
  std::printf("%-44s %10s %6s\n", "sub-expression", "time [ms]", "%");
  for (const auto& [cat, ms] : by_cat) {
    std::printf("%-44s %10.2f %5.1f%%\n", cat.c_str(), ms,
                100.0 * ms / profile.total_ms());
  }
  std::printf("%-44s %10.2f\n", "total", profile.total_ms());
}

void Run() {
  double scale = bench::EnvScale("EXRQUY_SCALE", 0.03);
  size_t bytes = 0;
  auto session = bench::MakeXMarkSession(scale, &bytes);
  std::printf("Table 2 — profile breakdown for XMark Q11 (instance %zu KB)\n\n",
              bytes / 1024);

  QueryOptions base = bench::Baseline();
  base.profile = true;
  QueryResult rb;
  double base_ms = bench::MedianExecMs(session.get(),
                                       XMarkQueryText("Q11"), base, 3, &rb);

  std::printf("-- baseline (compiler ignores order indifference) --\n");
  PrintProfile(rb.profile);

  QueryOptions enabled = bench::Enabled();
  enabled.profile = true;
  QueryResult re;
  double enabled_ms = bench::MedianExecMs(
      session.get(), XMarkQueryText("Q11"), enabled, 3, &re);

  std::printf("\n-- order indifference enabled --\n");
  PrintProfile(re.profile);

  std::printf(
      "\nwall clock: baseline %.1f ms, enabled %.1f ms -> %.0f%% of the\n"
      "baseline time saved (the paper reports 45%% for the removed\n"
      "iter->seq enforcement on its 558 MB instance).\n",
      base_ms, enabled_ms, 100.0 * (1.0 - enabled_ms / base_ms));
  std::printf("plans: baseline %s; enabled %s\n",
              rb.plan_optimized.ToString().c_str(),
              re.plan_optimized.ToString().c_str());
}

}  // namespace
}  // namespace exrquy

int main() {
  exrquy::Run();
  return 0;
}
