file(REMOVE_RECURSE
  "CMakeFiles/test_plan_shapes.dir/test_plan_shapes.cc.o"
  "CMakeFiles/test_plan_shapes.dir/test_plan_shapes.cc.o.d"
  "test_plan_shapes"
  "test_plan_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plan_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
