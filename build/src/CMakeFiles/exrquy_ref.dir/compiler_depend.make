# Empty compiler generated dependencies file for exrquy_ref.
# This may be replaced when dependencies are built.
