file(REMOVE_RECURSE
  "CMakeFiles/exrquy_algebra.dir/algebra/algebra.cc.o"
  "CMakeFiles/exrquy_algebra.dir/algebra/algebra.cc.o.d"
  "CMakeFiles/exrquy_algebra.dir/algebra/dot.cc.o"
  "CMakeFiles/exrquy_algebra.dir/algebra/dot.cc.o.d"
  "CMakeFiles/exrquy_algebra.dir/algebra/stats.cc.o"
  "CMakeFiles/exrquy_algebra.dir/algebra/stats.cc.o.d"
  "libexrquy_algebra.a"
  "libexrquy_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exrquy_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
