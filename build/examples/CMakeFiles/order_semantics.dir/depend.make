# Empty dependencies file for order_semantics.
# This may be replaced when dependencies are built.
