#include "engine/eval.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <thread>
#include <unordered_map>

#include "common/check.h"
#include "opt/analyses.h"
#include "opt/verify.h"
#include "xml/serializer.h"
#include "xml/step.h"

namespace exrquy {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Resolves EvalContext::num_threads: explicit > EXRQUY_THREADS > hardware.
size_t ResolveThreads(int requested) {
  int v = requested;
  if (v <= 0) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env lookup at resolve
    if (const char* env = std::getenv("EXRQUY_THREADS")) v = std::atoi(env);
  }
  if (v <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    v = hw == 0 ? 1 : static_cast<int>(hw);
  }
  return static_cast<size_t>(std::min(v, 256));
}

// Resolves EvalContext::morsel_rows: explicit > EXRQUY_MORSEL_ROWS >
// chunk_rows. A pure function of configuration — never of the thread
// count — so morsel boundaries are too.
size_t ResolveMorselRows(size_t requested, size_t chunk_rows) {
  size_t v = requested;
  if (v == 0) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env lookup at resolve
    if (const char* env = std::getenv("EXRQUY_MORSEL_ROWS")) {
      long parsed = std::atol(env);
      if (parsed > 0) v = static_cast<size_t>(parsed);
    }
  }
  return v == 0 ? chunk_rows : v;
}

// Node constructors append to the NodeStore; NodeIdx values are allocation
// -ordered, so these operators must run in the same order as the serial
// engine (ascending op id) for results to be byte-identical.
bool IsNodeConstructor(OpKind k) {
  return k == OpKind::kElem || k == OpKind::kAttr || k == OpKind::kTextNode;
}

// Where the running operator task reports its chunk count (set around
// EvalOp; chunked kernels run on the same thread as their dispatch).
thread_local size_t* tls_chunks = nullptr;

void NoteChunks(size_t chunks) {
  if (tls_chunks != nullptr) *tls_chunks = std::max(*tls_chunks, chunks);
}

// Hash of one row over the given column pointers.
uint64_t RowHash(const std::vector<const Column*>& cols, size_t row) {
  uint64_t h = 1469598103934665603ull;
  for (const Column* c : cols) {
    h ^= (*c)[row].Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

bool RowEquals(const std::vector<const Column*>& a, size_t ra,
               const std::vector<const Column*>& b, size_t rb) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (!((*a[i])[ra] == (*b[i])[rb])) return false;
  }
  return true;
}

// Key normalization for value joins: general comparison treats xs:string
// and xs:untypedAtomic alike (both compare by string value), so a hash
// join over value keys must not let the kind tag split equal keys into
// different buckets. The verifier's [join-isolation-claim] audit confines
// value_join keys to {int, string-class, bool}, where bit equality under
// this normalization coincides exactly with `eq`.
Value NormalizeValueKey(const Value& v) {
  return v.kind == ValueKind::kUntyped ? Value::Str(v.str) : v;
}

uint64_t RowHashNorm(const std::vector<const Column*>& cols, size_t row) {
  uint64_t h = 1469598103934665603ull;
  for (const Column* c : cols) {
    h ^= NormalizeValueKey((*c)[row]).Hash() + 0x9e3779b97f4a7c15ull +
         (h << 6) + (h >> 2);
  }
  return h;
}

bool RowEqualsNorm(const std::vector<const Column*>& a, size_t ra,
                   const std::vector<const Column*>& b, size_t rb) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(NormalizeValueKey((*a[i])[ra]) == NormalizeValueKey((*b[i])[rb]))) {
      return false;
    }
  }
  return true;
}

// Simple open hash table from row keys to row indices. Built once,
// read-only afterwards — probing from concurrent chunk tasks is safe.
// `normalize_keys` switches to the value-join key normalization above.
class RowIndex {
 public:
  RowIndex(std::vector<const Column*> key_cols, size_t rows,
           bool normalize_keys = false)
      : key_cols_(std::move(key_cols)), normalize_keys_(normalize_keys) {
    buckets_.resize(std::max<size_t>(16, rows * 2));
    for (size_t r = 0; r < rows; ++r) {
      size_t b = Hash(key_cols_, r) % buckets_.size();
      buckets_[b].push_back(static_cast<uint32_t>(r));
    }
  }

  // Invokes fn(row) for every stored row whose key equals the probe row.
  template <typename Fn>
  void ForEachMatch(const std::vector<const Column*>& probe_cols,
                    size_t probe_row, Fn fn) const {
    size_t b = Hash(probe_cols, probe_row) % buckets_.size();
    for (uint32_t r : buckets_[b]) {
      if (normalize_keys_
              ? RowEqualsNorm(key_cols_, r, probe_cols, probe_row)
              : RowEquals(key_cols_, r, probe_cols, probe_row)) {
        fn(r);
      }
    }
  }

  bool Contains(const std::vector<const Column*>& probe_cols,
                size_t probe_row) const {
    bool found = false;
    ForEachMatch(probe_cols, probe_row, [&](uint32_t) { found = true; });
    return found;
  }

 private:
  uint64_t Hash(const std::vector<const Column*>& cols, size_t row) const {
    return normalize_keys_ ? RowHashNorm(cols, row) : RowHash(cols, row);
  }

  std::vector<const Column*> key_cols_;
  bool normalize_keys_;
  std::vector<std::vector<uint32_t>> buckets_;
};

std::vector<const Column*> ColPtrs(const Table& t,
                                   const std::vector<ColId>& cols) {
  std::vector<const Column*> out;
  out.reserve(cols.size());
  for (ColId c : cols) out.push_back(&t.col(c));
  return out;
}

// Concatenates per-chunk row lists in chunk order — the order a serial
// scan would have produced them in.
std::vector<uint32_t> ConcatChunks(
    const std::vector<std::vector<uint32_t>>& parts) {
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<uint32_t> rows;
  rows.reserve(total);
  for (const auto& p : parts) rows.insert(rows.end(), p.begin(), p.end());
  return rows;
}

// Shares the column pointer when the range covers the whole table,
// slices otherwise — pipeline stages touch only their morsel's rows.
ColumnPtr SliceOrShare(const Table& t, ColId c, size_t b, size_t e) {
  if (b == 0 && e == t.rows()) return t.col_ptr(c);
  const Column& src = t.col(c);
  return std::make_shared<const Column>(
      src.begin() + static_cast<ptrdiff_t>(b),
      src.begin() + static_cast<ptrdiff_t>(e));
}

// One morsel's result, parked until the sink's ordered merge. Slots are
// disjoint across morsel tasks, so no locking.
struct MorselOut {
  std::shared_ptr<Table> table;       // non-Step sinks
  std::vector<int64_t> step_iters;    // Step sinks (merged, sorted, deduped
  std::vector<NodeIdx> step_nodes;    // by the sink, like chunked EvalStep)
  int err_stage = -1;                 // first failing stage in this morsel
  Status err;
  size_t bytes = 0;                   // ledger charge for `table`
};

constexpr size_t kNoSlot = static_cast<size_t>(-1);

}  // namespace

// Per-Eval scheduler state. Operators are addressed by their dense slot in
// the topological order; `pending` counts unfinished children (plus the
// constructor-chain edge), `consumers` counts unfinished parents (plus one
// for the root, whose table outlives the evaluation).
struct Evaluator::Sched {
  explicit Sched(size_t n)
      : ops(n, nullptr),
        memo(n),
        pending(std::make_unique<std::atomic<uint32_t>[]>(n)),
        consumers(std::make_unique<std::atomic<uint32_t>[]>(n)),
        parents(n),
        ctor_next(n, kNoSlot),
        ready_at(n),
        remaining(n) {}

  std::vector<OpId> ids;                  // slot -> op id (ascending)
  std::unordered_map<OpId, size_t> slot;  // op id -> slot
  std::vector<const Op*> ops;
  std::vector<TablePtr> memo;
  std::unique_ptr<std::atomic<uint32_t>[]> pending;
  std::unique_ptr<std::atomic<uint32_t>[]> consumers;
  std::vector<std::vector<size_t>> parents;  // per edge (duplicates kept)
  std::vector<size_t> ctor_next;  // next constructor slot in the chain
  std::vector<Clock::time_point> ready_at;
  bool release = false;
  bool track = false;

  // First error by op id — the operator the serial engine would have
  // failed on first (among those that ran before cancellation).
  std::atomic<bool> cancelled{false};
  std::mutex err_mu;
  OpId err_op = kNoOp;
  Status err;

  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t remaining;
};

Evaluator::Evaluator(const Dag& dag, EvalContext* ctx)
    : dag_(dag),
      ctx_(ctx),
      ops_(ctx->strings, ctx->store),
      chunk_rows_(std::max<size_t>(1, ctx->chunk_rows)),
      morsel_rows_(ResolveMorselRows(ctx->morsel_rows, chunk_rows_)),
      inline_rows_(ctx->inline_rows) {}

// ---------------------------------------------------------------------------
// Governor polls. All cooperative: kernels are never interrupted, they
// observe the trip at the next operator dispatch or chunk boundary, so
// the abort latency is bounded by one chunk's work.

void Evaluator::Trip(Status st) {
  std::lock_guard<std::mutex> lock(trip_mu_);
  if (trip_status_.ok()) trip_status_ = std::move(st);
  tripped_.store(true, std::memory_order_release);
}

Status Evaluator::TripStatus() {
  std::lock_guard<std::mutex> lock(trip_mu_);
  EXRQUY_DCHECK(!trip_status_.ok());
  return trip_status_;
}

Status Evaluator::PollGovernor() {
  if (!tripped_.load(std::memory_order_acquire)) {
    if (ctx_->cancel != nullptr && ctx_->cancel->cancelled()) {
      Trip(Cancelled("query cancelled by caller"));
    } else if (ctx_->has_deadline && Clock::now() >= ctx_->deadline) {
      Trip(DeadlineExceeded("query deadline exceeded"));
    } else if (ctx_->budget != nullptr && ctx_->budget->exhausted()) {
      Trip(ResourceExhausted(
          "query memory budget exhausted (limit " +
          std::to_string(ctx_->budget->limit()) + " bytes)"));
    } else {
      return Status::Ok();
    }
  }
  return TripStatus();
}

Status Evaluator::PollOp() {
  if (ctx_->faults != nullptr && ctx_->faults->CancelAtOp()) {
    Trip(Cancelled("fault injection: cancel at operator dispatch " +
                   std::to_string(ctx_->faults->plan().cancel_at_op)));
  }
  return PollGovernor();
}

Status Evaluator::PollChunk() {
  if (ctx_->faults != nullptr && ctx_->faults->DeadlineAtChunk()) {
    Trip(DeadlineExceeded(
        "fault injection: deadline at chunk boundary " +
        std::to_string(ctx_->faults->plan().deadline_at_chunk)));
  }
  return PollGovernor();
}

Result<TablePtr> Evaluator::Eval(OpId root) {
  // A malformed plan (hand-built, or produced by a buggy rewrite that
  // slipped past the pipeline's own verification) must fail as a Status,
  // not as out-of-bounds column accesses mid-evaluation. Structure and
  // schema checks only — property auditing is the optimizer's concern.
  VerifyOptions guard;
  guard.check_properties = false;
  EXRQUY_RETURN_IF_ERROR(VerifyPlan(dag_, root, guard));

  // A pre-cancelled token, an already-expired deadline, or a budget
  // exhausted by pre-evaluation work fails before any operator runs.
  EXRQUY_RETURN_IF_ERROR(PollGovernor());

  std::vector<OpId> order = dag_.ReachableFrom(root);
  if (ctx_->pipelined_execution) {
    // Plan the fusable chains, then refuse to run any plan the audit
    // cannot independently re-derive — a planner bug must fail as a
    // Status, never as a wrong (or torn) result.
    mplan_ = PlanPipelines(dag_, order, root);
    EXRQUY_RETURN_IF_ERROR(AuditMorselPlan(dag_, order, root, mplan_));
    pipelined_ = !mplan_.pipelines.empty();
  }
  size_t threads = ResolveThreads(ctx_->num_threads);
  if (ctx_->profile != nullptr) {
    ctx_->profile->SetExecution(threads, ctx_->release_intermediates);
  }
  Result<TablePtr> result = threads <= 1 ? EvalSerial(order, root)
                                         : EvalParallel(order, root, threads);
  if (result.ok()) {
    // A trip latched during the final operator's chunks, or a budget
    // crossing charged by the last kernel, still fails the query: the
    // root table may be complete, but the contract (clean Status once a
    // governor condition fires) takes precedence. The wall-clock
    // deadline alone is exempt — a query that finished is not re-failed
    // for ending close to its deadline.
    if (tripped_.load(std::memory_order_acquire)) {
      result = TripStatus();
    } else if (ctx_->budget != nullptr && ctx_->budget->exhausted()) {
      result = ResourceExhausted(
          "query memory budget exhausted (limit " +
          std::to_string(ctx_->budget->limit()) + " bytes)");
    }
  }
  if (ctx_->profile != nullptr) {
    ctx_->profile->SetMemory(peak_live_bytes_, live_bytes_, released_tables_);
  }
  return result;
}

void Evaluator::TrackTable(const Table& t) {
  for (ColId c : t.schema()) {
    const Column* p = t.col_ptr(c).get();
    if (++live_cols_[p] == 1) {
      size_t bytes = Table::ColumnBytes(*p);
      live_bytes_ += bytes;
      if (ctx_->budget != nullptr) ctx_->budget->Charge(bytes);
    }
  }
  peak_live_bytes_ =
      std::max(peak_live_bytes_, live_bytes_ + morsel_live_bytes_);
}

void Evaluator::UntrackTable(const Table& t) {
  for (ColId c : t.schema()) {
    const Column* p = t.col_ptr(c).get();
    auto it = live_cols_.find(p);
    if (it != live_cols_.end() && --it->second == 0) {
      size_t bytes = Table::ColumnBytes(*p);
      live_bytes_ -= bytes;
      if (ctx_->budget != nullptr) ctx_->budget->Release(bytes);
      live_cols_.erase(it);
    }
  }
}

// Morsel parts awaiting their pipeline's merge are live memory like any
// memoized table: they count against the budget (the charge count is a
// pure function of the data, so fail_alloc sweeps stay replayable) and
// into the peak alongside the memo tracker's live_bytes_.
void Evaluator::ChargeMorsel(size_t bytes) {
  if (bytes == 0) return;
  if (ctx_->budget != nullptr) ctx_->budget->Charge(bytes);
  std::lock_guard<std::mutex> lock(profile_mu_);
  morsel_live_bytes_ += bytes;
  peak_live_bytes_ =
      std::max(peak_live_bytes_, live_bytes_ + morsel_live_bytes_);
}

void Evaluator::ReleaseMorsel(size_t bytes) {
  if (bytes == 0) return;
  if (ctx_->budget != nullptr) ctx_->budget->Release(bytes);
  std::lock_guard<std::mutex> lock(profile_mu_);
  morsel_live_bytes_ -= bytes;
}

Result<TablePtr> Evaluator::EvalSerial(const std::vector<OpId>& order,
                                       OpId root) {
  // Bottom-up over the reachable sub-DAG: each operator evaluated once,
  // shared sub-plans reused (full materialization, MonetDB style).
  std::unordered_map<OpId, TablePtr> memo;
  std::unordered_map<OpId, uint32_t> consumers;
  const bool release = ctx_->release_intermediates;
  if (release) consumers = ConsumerCounts(dag_, root);

  // Releases `c`'s table once its last consumer has run. In-pipe edges
  // have no memo entry (interior stages never materialize) — their
  // counter still reaches zero here, with nothing to free.
  auto release_child = [&](OpId c) {
    auto it = consumers.find(c);
    if (it != consumers.end() && --it->second == 0) {
      auto mit = memo.find(c);
      if (mit != memo.end()) {
        UntrackTable(*mit->second);
        memo.erase(mit);
        ++released_tables_;
      }
    }
  };

  for (OpId id : order) {
    // Interior pipeline stages run fused inside their sink's unit; they
    // are skipped here (and in the parallel scheduler) so the PollOp
    // dispatch count is the number of scheduled units in both modes.
    if (pipelined_ && mplan_.interior(id)) continue;
    EXRQUY_RETURN_IF_ERROR(PollOp());
    const Op& op = dag_.op(id);

    if (pipelined_ && mplan_.sink(id)) {
      uint32_t pidx = mplan_.pipeline_of.at(id);
      const Pipeline& pl = mplan_.pipelines[pidx];
      auto input = [&](OpId c) -> const TablePtr& { return memo.at(c); };
      const bool prof = ctx_->profile != nullptr;
      std::vector<Profile::OpMetrics> sm;
      Profile::PipelineMetrics pm;
      Clock::time_point start = Clock::now();
      Result<TablePtr> r =
          EvalPipeline(pidx, input, prof ? &sm : nullptr, prof ? &pm : nullptr);
      double ms = MsSince(start);
      if (r.ok() && tripped_.load(std::memory_order_acquire)) {
        r = TripStatus();
      }
      if (!r.ok()) return r.status();
      TablePtr t = std::move(r).value();
      if (prof) {
        for (Profile::OpMetrics& m : sm) {
          ctx_->profile->Record(dag_.op(m.op), std::move(m));
        }
        pm.ms = ms;
        ctx_->profile->RecordPipeline(pm);
      }
      TrackTable(*t);
      memo[id] = std::move(t);
      if (release) {
        for (const PipelineStage& st : pl.stages) {
          for (OpId c : dag_.op(st.op).children) release_child(c);
        }
      }
      continue;
    }

    std::vector<TablePtr> in;
    in.reserve(op.children.size());
    size_t in_rows = 0;
    for (OpId c : op.children) {
      in.push_back(memo.at(c));
      in_rows += in.back()->rows();
    }
    size_t chunks = 1;
    tls_chunks = &chunks;
    Clock::time_point start = Clock::now();
    Result<TablePtr> r = EvalOp(op, in);
    double ms = MsSince(start);
    tls_chunks = nullptr;
    if (r.ok() && tripped_.load(std::memory_order_acquire)) {
      // A governor trip mid-kernel makes chunk tasks skip their slices;
      // the assembled table would be torn, so it must not be memoized.
      r = TripStatus();
    }
    if (!r.ok()) return r.status();
    TablePtr t = std::move(r).value();
    if (ctx_->profile != nullptr) {
      Profile::OpMetrics m;
      m.op = id;
      m.ms = ms;
      m.in_rows = in_rows;
      m.out_rows = t->rows();
      m.chunks = chunks;
      ctx_->profile->Record(op, std::move(m));
    }
    TrackTable(*t);
    memo[id] = std::move(t);
    if (release) {
      in.clear();  // drop the extra references before releasing
      for (OpId c : op.children) release_child(c);
    }
  }
  return memo.at(root);
}

Result<TablePtr> Evaluator::EvalParallel(const std::vector<OpId>& order,
                                         OpId root, size_t threads) {
  const size_t n = order.size();
  Sched s(n);
  s.ids = order;
  s.slot.reserve(n * 2);
  for (size_t i = 0; i < n; ++i) s.slot.emplace(order[i], i);
  for (size_t i = 0; i < n; ++i) {
    const Op& op = dag_.op(order[i]);
    s.ops[i] = &op;
    s.pending[i].store(static_cast<uint32_t>(op.children.size()),
                       std::memory_order_relaxed);
    for (OpId c : op.children) {
      size_t cs = s.slot.at(c);
      s.parents[cs].push_back(i);
      s.consumers[cs].fetch_add(1, std::memory_order_relaxed);
    }
  }
  s.consumers[s.slot.at(root)].fetch_add(1, std::memory_order_relaxed);

  // Chain node constructors in ascending op-id order: each waits for the
  // previous one, so NodeStore allocation order matches serial execution.
  size_t prev_ctor = kNoSlot;
  for (size_t i = 0; i < n; ++i) {
    if (!IsNodeConstructor(s.ops[i]->kind)) continue;
    if (prev_ctor != kNoSlot) {
      s.ctor_next[prev_ctor] = i;
      s.pending[i].fetch_add(1, std::memory_order_relaxed);
    }
    prev_ctor = i;
  }
  s.release = ctx_->release_intermediates;
  s.track = ctx_->profile != nullptr;

  // Snapshot the initially-ready set before any task runs: once workers
  // start, they decrement pending counts concurrently, and re-reading
  // them here could observe a drop to zero and submit an op twice.
  std::vector<size_t> ready;
  for (size_t i = 0; i < n; ++i) {
    if (s.pending[i].load(std::memory_order_relaxed) == 0) ready.push_back(i);
  }
  pool_ = std::make_unique<TaskPool>(threads);
  Sched* sp = &s;
  Clock::time_point t0 = Clock::now();
  // Inline-eligible ready units run on this thread after the pooled ones
  // are queued; with a tiny query, nothing is ever queued and the lazy
  // pool never spawns a worker.
  std::vector<size_t> run_here;
  for (size_t i : ready) {
    s.ready_at[i] = t0;
    if (ShouldInline(sp, i)) {
      run_here.push_back(i);
    } else {
      pool_->Submit([this, sp, i] { RunTask(sp, i, /*queued=*/true); });
    }
  }
  for (size_t i : run_here) RunTask(sp, i, /*queued=*/false);
  {
    std::unique_lock<std::mutex> lock(s.done_mu);
    s.done_cv.wait(lock, [&] { return s.remaining == 0; });
  }
  pool_.reset();  // joins the workers; nothing touches `s` afterwards

  // A governor trip wins over concurrent operator errors: the trip is
  // reproducible at every thread count (its counters advance the same
  // number of times), while which kernels got far enough to fail is not.
  if (tripped_.load(std::memory_order_acquire)) return TripStatus();
  if (s.err_op != kNoOp) return s.err;
  return s.memo[s.slot.at(root)];
}

void Evaluator::RunTask(Sched* s, size_t i, bool queued) {
  // Drain loop: RunOne collects units its completion made ready and
  // inline-eligible; running them here (instead of recursing out of
  // DecrementPending) bounds the stack on long inline chains. Only the
  // unit that actually sat in the pool queue charges queue wait.
  std::vector<size_t> q;
  RunOne(s, i, queued, &q);
  while (!q.empty()) {
    size_t next = q.back();
    q.pop_back();
    RunOne(s, next, /*queued=*/false, &q);
  }
}

void Evaluator::RunOne(Sched* s, size_t i, bool queued,
                       std::vector<size_t>* q) {
  // Interior pipeline stages never run as units — their work happens
  // fused inside the sink's morsel loop; completing them here only
  // propagates readiness (no poll, no release, no memo entry).
  if (pipelined_ && mplan_.interior(s->ids[i])) {
    FinishTask(s, i, q);
    return;
  }
  const Op& op = *s->ops[i];
  if (s->cancelled.load(std::memory_order_acquire)) {
    FinishTask(s, i, q);
    return;
  }
  if (Status g = PollOp(); !g.ok()) {
    // Drain like an operator error: later tasks early-out above, pending
    // counts still reach zero, intermediates still release. The final
    // status comes from the trip latch, not from s->err.
    s->cancelled.store(true, std::memory_order_release);
    FinishTask(s, i, q);
    return;
  }
  if (pipelined_ && mplan_.sink(s->ids[i])) {
    RunPipelineUnit(s, i, queued, q);
    return;
  }
  std::vector<TablePtr> in;
  in.reserve(op.children.size());
  size_t in_rows = 0;
  for (OpId c : op.children) {
    const TablePtr& t = s->memo[s->slot.at(c)];
    in.push_back(t);
    in_rows += t->rows();
  }
  double queue_ms = queued ? MsSince(s->ready_at[i]) : 0;
  size_t chunks = 1;
  tls_chunks = &chunks;
  Clock::time_point start = Clock::now();
  Result<TablePtr> r = [&]() -> Result<TablePtr> {
    if (IsNodeConstructor(op.kind)) {
      std::unique_lock<std::shared_mutex> lock(store_mu_);
      return EvalOp(op, in);
    }
    std::shared_lock<std::shared_mutex> lock(store_mu_);
    return EvalOp(op, in);
  }();
  double ms = MsSince(start);
  tls_chunks = nullptr;
  in.clear();

  if (r.ok() && tripped_.load(std::memory_order_acquire)) {
    // Torn table (chunks skipped after a trip) — do not memoize it.
    r = TripStatus();
  }
  if (!r.ok()) {
    {
      std::lock_guard<std::mutex> lock(s->err_mu);
      if (s->err_op == kNoOp || s->ids[i] < s->err_op) {
        s->err_op = s->ids[i];
        s->err = r.status();
      }
    }
    s->cancelled.store(true, std::memory_order_release);
  } else {
    TablePtr t = std::move(r).value();
    {
      std::lock_guard<std::mutex> lock(profile_mu_);
      if (s->track) {
        Profile::OpMetrics m;
        m.op = s->ids[i];
        m.ms = ms;
        m.queue_ms = queue_ms;
        m.in_rows = in_rows;
        m.out_rows = t->rows();
        m.chunks = chunks;
        ctx_->profile->Record(op, std::move(m));
      }
      TrackTable(*t);
    }
    s->memo[i] = std::move(t);  // published by the pending decrements below
  }
  FinishTask(s, i, q);
}

void Evaluator::RunPipelineUnit(Sched* s, size_t i, bool queued,
                                std::vector<size_t>* q) {
  uint32_t pidx = mplan_.pipeline_of.at(s->ids[i]);
  double queue_ms = queued ? MsSince(s->ready_at[i]) : 0;
  auto input = [s](OpId c) -> const TablePtr& {
    return s->memo[s->slot.at(c)];
  };
  const bool prof = s->track;
  std::vector<Profile::OpMetrics> sm;
  Profile::PipelineMetrics pm;
  Clock::time_point start = Clock::now();
  Result<TablePtr> r = [&]() -> Result<TablePtr> {
    // No fused stage constructs nodes, so the whole pipeline (and the
    // morsel tasks it fans out, which its ParallelFor outlives) runs
    // under a shared store hold, like any reading operator.
    std::shared_lock<std::shared_mutex> lock(store_mu_);
    return EvalPipeline(pidx, input, prof ? &sm : nullptr,
                        prof ? &pm : nullptr);
  }();
  double ms = MsSince(start);

  if (r.ok() && tripped_.load(std::memory_order_acquire)) {
    r = TripStatus();
  }
  if (!r.ok()) {
    // Errors resolve across units by unit id — for a pipeline, its sink's
    // op id, the id the serial unit order dispatches it at. EvalPipeline
    // already picked the serial-first error within the pipeline.
    {
      std::lock_guard<std::mutex> lock(s->err_mu);
      if (s->err_op == kNoOp || s->ids[i] < s->err_op) {
        s->err_op = s->ids[i];
        s->err = r.status();
      }
    }
    s->cancelled.store(true, std::memory_order_release);
  } else {
    TablePtr t = std::move(r).value();
    {
      std::lock_guard<std::mutex> lock(profile_mu_);
      if (prof) {
        for (Profile::OpMetrics& m : sm) {
          ctx_->profile->Record(dag_.op(m.op), std::move(m));
        }
        pm.ms = ms;
        pm.queue_ms = queue_ms;
        ctx_->profile->RecordPipeline(pm);
      }
      TrackTable(*t);
    }
    s->memo[i] = std::move(t);
  }
  FinishTask(s, i, q);
}

void Evaluator::FinishTask(Sched* s, size_t i, std::vector<size_t>* q) {
  OpId id = s->ids[i];
  const bool interior = pipelined_ && mplan_.interior(id);
  if (s->release && !interior) {
    // A sink releases every stage's inputs — the head's external tables
    // were consumed by its morsel loop, not by any standalone unit.
    // Interior completions must not release anything: their edges are
    // accounted at the sink, after the pipeline actually read them.
    if (pipelined_ && mplan_.sink(id)) {
      const Pipeline& pl = mplan_.pipelines[mplan_.pipeline_of.at(id)];
      for (const PipelineStage& st : pl.stages) {
        ReleaseChildren(s, dag_.op(st.op));
      }
    } else {
      ReleaseChildren(s, *s->ops[i]);
    }
  }
  if (s->ctor_next[i] != kNoSlot) DecrementPending(s, s->ctor_next[i], q);
  for (size_t p : s->parents[i]) DecrementPending(s, p, q);
  {
    std::lock_guard<std::mutex> lock(s->done_mu);
    if (--s->remaining == 0) s->done_cv.notify_all();
  }
}

void Evaluator::ReleaseChildren(Sched* s, const Op& op) {
  for (OpId c : op.children) {
    size_t cs = s->slot.at(c);
    if (s->consumers[cs].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      TablePtr dead = std::move(s->memo[cs]);
      // In-pipe edges (and drained-before-running producers) have no
      // memoized table; their counter still hits zero with nothing to
      // free.
      if (dead != nullptr) {
        std::lock_guard<std::mutex> lock(profile_mu_);
        UntrackTable(*dead);
        ++released_tables_;
      }
    }
  }
}

void Evaluator::DecrementPending(Sched* s, size_t i, std::vector<size_t>* q) {
  if (s->pending[i].fetch_sub(1, std::memory_order_acq_rel) == 1) {
    s->ready_at[i] = Clock::now();
    if (ShouldInline(s, i)) {
      q->push_back(i);
      return;
    }
    pool_->Submit([this, s, i] { RunTask(s, i, /*queued=*/true); });
  }
}

bool Evaluator::ShouldInline(Sched* s, size_t i) {
  OpId id = s->ids[i];
  // Interior completions are pure bookkeeping — never worth a task.
  if (pipelined_ && mplan_.interior(id)) return true;
  if (inline_rows_ == 0) return false;
  size_t rows = 0;
  auto add = [&](const Op& op) {
    for (OpId c : op.children) {
      const TablePtr& t = s->memo[s->slot.at(c)];
      if (t != nullptr) rows += t->rows();
    }
  };
  if (pipelined_ && mplan_.sink(id)) {
    const Pipeline& pl = mplan_.pipelines[mplan_.pipeline_of.at(id)];
    for (const PipelineStage& st : pl.stages) add(dag_.op(st.op));
  } else {
    add(*s->ops[i]);
  }
  return rows <= inline_rows_;
}

// ---------------------------------------------------------------------------
// Pipelined execution: one scheduled unit runs a whole fused chain. The
// head's materialized input rows are split into morsels — boundaries a
// pure function of the source size and morsel_rows_, never the thread
// count — and each morsel flows through every stage without
// materializing interior tables. The sink concatenates morsel results
// in morsel order (Step re-sorts/dedups, # numbers the merged stream),
// which is exactly what the standalone chunked kernels produce, so the
// fused table is byte-identical to operator-at-a-time evaluation.

size_t Evaluator::NumMorsels(size_t n) const {
  return n == 0 ? 1 : (n + morsel_rows_ - 1) / morsel_rows_;
}

Result<TablePtr> Evaluator::EvalPipeline(
    uint32_t pidx, const std::function<const TablePtr&(OpId)>& input,
    std::vector<Profile::OpMetrics>* stage_metrics,
    Profile::PipelineMetrics* pm) {
  const Pipeline& pl = mplan_.pipelines[pidx];
  const size_t nstages = pl.stages.size();

  // Resolve stage operators and their materialized (non-pipe) inputs.
  std::vector<const Op*> sops(nstages);
  std::vector<std::vector<TablePtr>> ext(nstages);
  for (size_t si = 0; si < nstages; ++si) {
    const PipelineStage& st = pl.stages[si];
    sops[si] = &dag_.op(st.op);
    const Op& op = *sops[si];
    ext[si].resize(op.children.size());
    for (size_t ci = 0; ci < op.children.size(); ++ci) {
      if (si > 0 && static_cast<int>(ci) == st.pipe_child) continue;
      ext[si][ci] = input(op.children[ci]);
    }
  }

  // The head defines the morsel domain.
  const Op& hop = *sops[0];
  const Table* stream = nullptr;  // single-stream heads (and the probe side)
  const Table* lT = nullptr;      // union / equi-join heads
  const Table* rT = nullptr;
  std::unique_ptr<RowIndex> jindex;  // equi-join build, done once up front
  bool jbuild_right = false;
  ColId jprobe_col = kNoCol;
  size_t total = 0;
  switch (hop.kind) {
    case OpKind::kUnion:
      lT = ext[0][0].get();
      rT = ext[0][1].get();
      total = lT->rows() + rT->rows();
      break;
    case OpKind::kEquiJoin: {
      lT = ext[0][0].get();
      rT = ext[0][1].get();
      // Same runtime choice as the standalone kernel: build on the
      // smaller side, probe with the larger (ties build right). The
      // build is blocking work and happens here, before any morsel.
      jbuild_right = rT->rows() <= lT->rows();
      const Table* build = jbuild_right ? rT : lT;
      stream = jbuild_right ? lT : rT;
      ColId build_col = jbuild_right ? hop.col2 : hop.col;
      jprobe_col = jbuild_right ? hop.col : hop.col2;
      jindex = std::make_unique<RowIndex>(
          std::vector<const Column*>{&build->col(build_col)}, build->rows(),
          hop.value_join);
      total = stream->rows();
      break;
    }
    default:
      stream = ext[0][0].get();
      total = stream->rows();
  }

  const size_t morsels = NumMorsels(total);
  const bool step_sink = sops[nstages - 1]->kind == OpKind::kStep;
  std::vector<MorselOut> outs(morsels);
  const bool prof = stage_metrics != nullptr;
  // Per-(morsel, stage) measurements in disjoint slots; summed below.
  std::vector<double> st_ms;
  std::vector<size_t> st_in;
  std::vector<size_t> st_out;
  if (prof) {
    st_ms.assign(morsels * nstages, 0);
    st_in.assign(morsels * nstages, 0);
    st_out.assign(morsels * nstages, 0);
  }

  auto equi_probe = [&](size_t b,
                        size_t e) -> std::shared_ptr<Table> {
    std::vector<const Column*> probe_key = {&stream->col(jprobe_col)};
    std::vector<uint32_t> probe_rows;
    std::vector<uint32_t> build_rows;
    for (size_t pr = b; pr < e; ++pr) {
      jindex->ForEachMatch(probe_key, pr, [&](uint32_t br) {
        probe_rows.push_back(static_cast<uint32_t>(pr));
        build_rows.push_back(br);
      });
    }
    const std::vector<uint32_t>& l_rows =
        jbuild_right ? probe_rows : build_rows;
    const std::vector<uint32_t>& r_rows =
        jbuild_right ? build_rows : probe_rows;
    size_t out_n = probe_rows.size();
    auto out = std::make_shared<Table>();
    auto gather_side = [&](const Table& side,
                           const std::vector<uint32_t>& rows) {
      for (ColId c : side.schema()) {
        const Column& src = side.col(c);
        Column col(out_n);
        for (size_t k = 0; k < out_n; ++k) col[k] = src[rows[k]];
        out->AddColumn(c, std::move(col));
      }
    };
    gather_side(*lT, l_rows);
    gather_side(*rT, r_rows);
    out->SetRows(out_n);
    return out;
  };

  auto run_morsel = [&](size_t m) {
    size_t mb = m * morsel_rows_;
    size_t me = std::min(total, mb + morsel_rows_);
    MorselOut& mo = outs[m];
    std::shared_ptr<Table> cur;
    for (size_t si = 0; si < nstages; ++si) {
      // Morsel-stage boundary = the pipelined engine's chunk boundary:
      // same poll, same fault-injection coordinate space.
      if (!PollChunk().ok()) return;  // torn morsel; the trip latch wins
      const Op& op = *sops[si];
      const Table* in = si == 0 ? stream : cur.get();
      size_t b = si == 0 ? mb : 0;
      size_t e = si == 0 ? me : cur->rows();
      Clock::time_point t0;
      if (prof) t0 = Clock::now();
      Result<std::shared_ptr<Table>> r =
          [&]() -> Result<std::shared_ptr<Table>> {
        switch (op.kind) {
          case OpKind::kProject:
            return StageProjectM(op, *in, b, e);
          case OpKind::kSelect:
            return StageSelectM(op, *in, b, e);
          case OpKind::kFun:
            return StageFunM(op, *in, b, e);
          case OpKind::kUnion:
            return StageUnionM(*lT, *rT, b, e);
          case OpKind::kEquiJoin:
            return equi_probe(b, e);
          case OpKind::kThetaJoin:
            return StageThetaM(op, *in, b, e, *ext[si][1]);
          case OpKind::kStep: {
            Status st =
                StageStepM(op, *in, b, e, &mo.step_iters, &mo.step_nodes);
            if (!st.ok()) return st;
            return std::shared_ptr<Table>();
          }
          case OpKind::kRowId:
            return cur;  // ids are positions in the merged output
          default:
            return Internal("morsel plan: unfusable stage kind survived "
                            "the audit");
        }
      }();
      if (!r.ok()) {
        if (tripped_.load(std::memory_order_acquire)) return;
        // First error within the morsel: the stage loop stops at the
        // first failing stage, and each stage kernel fails on its first
        // bad row — exactly the serial scan order.
        mo.err_stage = static_cast<int>(si);
        mo.err = r.status();
        return;
      }
      cur = std::move(r).value();
      if (prof) {
        size_t slot = m * nstages + si;
        st_ms[slot] = MsSince(t0);
        if (si > 0) st_in[slot] = e - b;
        st_out[slot] = step_sink && si + 1 == nstages ? mo.step_iters.size()
                                                      : cur->rows();
      }
    }
    if (!step_sink) {
      mo.table = std::move(cur);
      mo.bytes = mo.table->ByteSize();
      ChargeMorsel(mo.bytes);
    }
  };

  if (pool_ != nullptr && pool_->threads() > 0 && morsels > 1) {
    pool_->ParallelFor(morsels, run_morsel);
  } else {
    for (size_t m = 0; m < morsels; ++m) run_morsel(m);
  }
  NoteChunks(morsels);

  auto release_parts = [&] {
    for (MorselOut& mo : outs) {
      ReleaseMorsel(mo.bytes);
      mo.bytes = 0;
    }
  };
  if (tripped_.load(std::memory_order_acquire)) {
    release_parts();
    return TripStatus();
  }
  // Cross-morsel error resolution: the failing stage with the smallest
  // op id, then the earliest morsel within it — the first error a serial
  // stage-at-a-time scan would have hit.
  int best_stage = -1;
  size_t best_m = 0;
  for (size_t m = 0; m < morsels; ++m) {
    if (outs[m].err_stage < 0) continue;
    if (best_stage < 0 || outs[m].err_stage < best_stage) {
      best_stage = outs[m].err_stage;
      best_m = m;
    }
  }
  if (best_stage >= 0) {
    release_parts();
    return outs[best_m].err;
  }

  // Ordered morsel merge.
  const Op& sop = *sops[nstages - 1];
  TablePtr result;
  if (step_sink) {
    // Step output is the globally sorted duplicate-free (iter, node)
    // set; concatenating the per-morsel sets, sorting and deduplicating
    // reproduces the single-call result exactly (chunked EvalStep's own
    // merge).
    std::vector<std::pair<int64_t, NodeIdx>> all;
    size_t n = 0;
    for (const MorselOut& mo : outs) n += mo.step_iters.size();
    all.reserve(n);
    for (const MorselOut& mo : outs) {
      for (size_t k = 0; k < mo.step_iters.size(); ++k) {
        all.emplace_back(mo.step_iters[k], mo.step_nodes[k]);
      }
    }
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    Column ic(all.size());
    Column nc(all.size());
    for (size_t k = 0; k < all.size(); ++k) {
      ic[k] = Value::Int(all[k].first);
      nc[k] = Value::Node(all[k].second);
    }
    auto out = std::make_shared<Table>();
    out->AddColumn(col::iter(), std::move(ic));
    out->AddColumn(col::item(), std::move(nc));
    out->SetRows(all.size());
    result = out;
  } else if (morsels == 1) {
    result = outs[0].table;  // the single part IS the concatenation
  } else {
    // Concatenate in morsel order, column by column; each part drops its
    // reference to a column as soon as it is copied, so the transient
    // peak is the merged output plus one part column — not two full
    // copies of the output.
    size_t rows_total = 0;
    for (const MorselOut& mo : outs) rows_total += mo.table->rows();
    auto out = std::make_shared<Table>();
    const std::vector<ColId> schema = outs[0].table->schema();
    for (ColId c : schema) {
      // The merge moves a lot of bytes: stay responsive to
      // cancel/deadline, but do not advance the chunk-fault coordinate —
      // merge granularity is an implementation detail, not a replayable
      // fault point.
      if (!PollGovernor().ok()) break;
      Column col(rows_total);
      size_t off = 0;
      for (const MorselOut& mo : outs) {
        const Column& src = mo.table->col(c);
        std::copy(src.begin(), src.end(), col.begin() + off);
        off += src.size();
        mo.table->ReleaseColumn(c);
      }
      out->AddColumn(c, std::move(col));
    }
    out->SetRows(rows_total);
    result = out;
  }
  release_parts();
  if (tripped_.load(std::memory_order_acquire)) return TripStatus();

  if (sop.kind == OpKind::kRowId) {
    // # over the merged stream: positions in the concatenation-in-morsel-
    // order equal positions in the standalone input, so the ids match the
    // operator-at-a-time numbering exactly.
    size_t n = result->rows();
    Column ids(n);
    for (size_t r = 0; r < n; ++r) {
      ids[r] = Value::Int(static_cast<int64_t>(r) + 1);
    }
    auto out = std::make_shared<Table>();
    for (ColId c : result->schema()) out->AddColumn(c, result->col_ptr(c));
    out->AddColumn(sop.col, std::move(ids));
    out->SetRows(n);
    result = out;
  }

  if (prof) {
    for (size_t si = 0; si < nstages; ++si) {
      Profile::OpMetrics m;
      m.op = pl.stages[si].op;
      m.pipeline = static_cast<int64_t>(pidx);
      m.chunks = morsels;
      m.queue_ms = 0;  // queue wait belongs to the unit, counted once
      double ms = 0;
      size_t irows = 0;
      size_t orows = 0;
      for (size_t mm = 0; mm < morsels; ++mm) {
        size_t slot = mm * nstages + si;
        ms += st_ms[slot];
        irows += st_in[slot];
        orows += st_out[slot];
      }
      // Materialized (non-pipe) inputs count once, as standalone
      // evaluation would; the streamed input was summed per morsel.
      const Op& op = *sops[si];
      for (size_t ci = 0; ci < op.children.size(); ++ci) {
        if (ext[si][ci] != nullptr) irows += ext[si][ci]->rows();
      }
      m.ms = ms;
      m.in_rows = irows;
      m.out_rows = si + 1 == nstages ? result->rows() : orows;
      stage_metrics->push_back(std::move(m));
    }
    pm->id = pidx;
    pm->head = pl.head();
    pm->sink = pl.sink();
    pm->stages = nstages;
    pm->morsels = morsels;
    pm->in_rows = total;
    pm->out_rows = result->rows();
  }
  return TablePtr(result);
}

std::shared_ptr<Table> Evaluator::StageProjectM(const Op& op, const Table& in,
                                                size_t b, size_t e) {
  auto out = std::make_shared<Table>();
  for (const auto& [n, o] : op.proj) out->AddColumn(n, SliceOrShare(in, o, b, e));
  out->SetRows(e - b);
  return out;
}

Result<std::shared_ptr<Table>> Evaluator::StageSelectM(const Op& op,
                                                       const Table& in,
                                                       size_t b, size_t e) {
  const Column& flags = in.col(op.col);
  std::vector<uint32_t> rows;
  for (size_t r = b; r < e; ++r) {
    const Value& v = flags[r];
    if (v.kind != ValueKind::kBool) {
      return TypeError("selection column is not boolean");
    }
    if (v.b) rows.push_back(static_cast<uint32_t>(r));
  }
  auto out = std::make_shared<Table>();
  for (ColId c : in.schema()) {
    const Column& src = in.col(c);
    Column col(rows.size());
    for (size_t k = 0; k < rows.size(); ++k) col[k] = src[rows[k]];
    out->AddColumn(c, std::move(col));
  }
  out->SetRows(rows.size());
  return out;
}

Result<std::shared_ptr<Table>> Evaluator::StageFunM(const Op& op,
                                                    const Table& in, size_t b,
                                                    size_t e) {
  std::vector<const Column*> args = ColPtrs(in, op.args);
  Column resultc(e - b);
  for (size_t r = b; r < e; ++r) {
    Result<Value> v = ApplyFun(op, args, r);
    if (!v.ok()) return v.status();
    resultc[r - b] = std::move(v).value();
  }
  auto out = std::make_shared<Table>();
  for (ColId c : in.schema()) out->AddColumn(c, SliceOrShare(in, c, b, e));
  out->AddColumn(op.col, std::move(resultc));
  out->SetRows(e - b);
  return out;
}

std::shared_ptr<Table> Evaluator::StageUnionM(const Table& l, const Table& r,
                                              size_t b, size_t e) {
  // The morsel domain is the concatenation of both inputs; [b, e) may
  // straddle the seam.
  size_t nl = l.rows();
  auto out = std::make_shared<Table>();
  for (ColId c : l.schema()) {
    Column col;
    col.reserve(e - b);
    if (b < nl) {
      const Column& lc = l.col(c);
      size_t hi = std::min(e, nl);
      col.insert(col.end(), lc.begin() + static_cast<ptrdiff_t>(b),
                 lc.begin() + static_cast<ptrdiff_t>(hi));
    }
    if (e > nl) {
      const Column& rc = r.col(c);
      size_t lo = b > nl ? b - nl : 0;
      col.insert(col.end(), rc.begin() + static_cast<ptrdiff_t>(lo),
                 rc.begin() + static_cast<ptrdiff_t>(e - nl));
    }
    out->AddColumn(c, std::move(col));
  }
  out->SetRows(e - b);
  return out;
}

Result<std::shared_ptr<Table>> Evaluator::StageThetaM(const Op& op,
                                                      const Table& in,
                                                      size_t b, size_t e,
                                                      const Table& right) {
  // Nested loop over [b, e) x right, left-major with matches in
  // right-row order — the standalone kernel's chunk body.
  const Column& lk = in.col(op.col);
  const Column& rk = right.col(op.col2);
  size_t m = right.rows();
  std::vector<uint32_t> l_rows;
  std::vector<uint32_t> r_rows;
  size_t pairs = 0;
  for (size_t i = b; i < e; ++i) {
    for (size_t j = 0; j < m; ++j) {
      // Pair-volume poll (EvalRange's output-volume idiom): one morsel's
      // work is morsel_rows * m pairs, not morsel_rows.
      if ((pairs++ & 0xFFFF) == 0xFFFF) {
        EXRQUY_RETURN_IF_ERROR(PollGovernor());
      }
      Result<Value> v = ops_.Compare(op.fun, lk[i], rk[j]);
      if (!v.ok()) return v.status();
      if (v.value().b) {
        l_rows.push_back(static_cast<uint32_t>(i));
        r_rows.push_back(static_cast<uint32_t>(j));
      }
    }
  }
  size_t out_n = l_rows.size();
  auto out = std::make_shared<Table>();
  auto gather_side = [&](const Table& side, const std::vector<uint32_t>& rows) {
    for (ColId c : side.schema()) {
      const Column& src = side.col(c);
      Column col(out_n);
      for (size_t k = 0; k < out_n; ++k) col[k] = src[rows[k]];
      out->AddColumn(c, std::move(col));
    }
  };
  gather_side(in, l_rows);
  gather_side(right, r_rows);
  out->SetRows(out_n);
  return out;
}

Status Evaluator::StageStepM(const Op& op, const Table& in, size_t b, size_t e,
                             std::vector<int64_t>* out_iters,
                             std::vector<NodeIdx>* out_nodes) {
  const Column& iters = in.col(col::iter());
  const Column& items = in.col(col::item());
  std::vector<int64_t> ci;
  std::vector<NodeIdx> cn;
  ci.reserve(e - b);
  cn.reserve(e - b);
  for (size_t r = b; r < e; ++r) {
    if (items[r].kind != ValueKind::kNode) {
      return TypeError(std::string("path step ") + AxisName(op.axis) +
                       ":: applied to a non-node item");
    }
    EXRQUY_DCHECK(iters[r].kind == ValueKind::kInt);
    ci.push_back(iters[r].i);
    cn.push_back(items[r].node);
  }
  exrquy::EvalStep(*ctx_->store, op.axis, op.test, std::move(ci),
                   std::move(cn), out_iters, out_nodes);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Chunk helpers.

size_t Evaluator::NumChunks(size_t n) const {
  return n == 0 ? 1 : (n + chunk_rows_ - 1) / chunk_rows_;
}

size_t Evaluator::ForChunks(
    size_t n, const std::function<void(size_t, size_t, size_t)>& fn) {
  size_t chunks = NumChunks(n);
  auto run = [&](size_t c) {
    // Chunk-boundary governor poll: a tripped chunk leaves its slice
    // unwritten, which the post-EvalOp torn-table check turns into the
    // trip Status before the table can be observed.
    if (!PollChunk().ok()) return;
    size_t begin = c * chunk_rows_;
    fn(c, begin, std::min(n, begin + chunk_rows_));
  };
  if (pool_ == nullptr || pool_->threads() == 0 || chunks == 1) {
    for (size_t c = 0; c < chunks; ++c) run(c);
  } else {
    pool_->ParallelFor(chunks, run);
  }
  NoteChunks(chunks);
  return chunks;
}

TablePtr Evaluator::GatherParallel(const Table& in,
                                   const std::vector<uint32_t>& rows) {
  size_t n = rows.size();
  auto out = std::make_shared<Table>();
  for (ColId c : in.schema()) {
    const Column& src = in.col(c);
    Column col(n);
    ForChunks(n, [&](size_t, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) col[i] = src[rows[i]];
    });
    out->AddColumn(c, std::move(col));
  }
  out->SetRows(n);
  return out;
}

void Evaluator::ParallelStableSort(
    std::vector<uint32_t>* perm,
    const std::function<bool(uint32_t, uint32_t)>& less) {
  size_t n = perm->size();
  size_t chunks = NumChunks(n);
  if (chunks <= 1 || pool_ == nullptr || pool_->threads() == 0) {
    std::stable_sort(perm->begin(), perm->end(), less);
    return;
  }
  // Stable-sort each chunk, then stably merge chunk pairs bottom-up.
  // std::merge prefers the left range on ties, so the result is the
  // unique stable ordering — byte-identical to one big stable_sort.
  ForChunks(n, [&](size_t, size_t begin, size_t end) {
    std::stable_sort(perm->begin() + begin, perm->begin() + end, less);
  });
  // A trip leaves some chunks unsorted; merging unsorted ranges violates
  // std::merge's precondition, and the result is discarded anyway.
  if (tripped_.load(std::memory_order_acquire)) return;
  std::vector<uint32_t> buf(n);
  std::vector<uint32_t>* src = perm;
  std::vector<uint32_t>* dst = &buf;
  for (size_t width = chunk_rows_; width < n; width *= 2) {
    size_t pairs = (n + 2 * width - 1) / (2 * width);
    auto merge_pair = [&](size_t p) {
      size_t lo = p * 2 * width;
      size_t mid = std::min(n, lo + width);
      size_t hi = std::min(n, lo + 2 * width);
      std::merge(src->begin() + lo, src->begin() + mid, src->begin() + mid,
                 src->begin() + hi, dst->begin() + lo, less);
    };
    if (pairs > 1) {
      pool_->ParallelFor(pairs, merge_pair);
    } else {
      merge_pair(0);
    }
    std::swap(src, dst);
  }
  if (src != perm) *perm = *src;
}

// ---------------------------------------------------------------------------
// Operator kernels.

Result<TablePtr> Evaluator::EvalOp(const Op& op,
                                   const std::vector<TablePtr>& in) {
  auto child = [&](size_t i) -> const Table& { return *in[i]; };
  switch (op.kind) {
    case OpKind::kLit:
      return EvalLit(op);
    case OpKind::kProject:
      return EvalProject(op, child(0));
    case OpKind::kSelect:
      return EvalSelect(op, child(0));
    case OpKind::kEquiJoin:
      return EvalEquiJoin(op, child(0), child(1));
    case OpKind::kThetaJoin:
      return EvalThetaJoin(op, child(0), child(1));
    case OpKind::kCross:
      return EvalCross(op, child(0), child(1));
    case OpKind::kUnion:
      return EvalUnion(op, child(0), child(1));
    case OpKind::kDifference:
    case OpKind::kSemiJoin:
      return EvalDiffSemi(op, child(0), child(1));
    case OpKind::kDistinct:
      return EvalDistinct(op, child(0));
    case OpKind::kRowNum:
      return EvalRowNum(op, child(0));
    case OpKind::kRowId:
      return EvalRowId(op, child(0));
    case OpKind::kFun:
      return EvalFun(op, child(0));
    case OpKind::kAggr:
      return EvalAggr(op, child(0));
    case OpKind::kStep:
      return EvalStep(op, child(0));
    case OpKind::kDoc:
      return EvalDoc(op);
    case OpKind::kElem:
      return EvalElem(op, child(0), child(1));
    case OpKind::kAttr:
      return EvalAttr(op, child(0), child(1));
    case OpKind::kTextNode:
      return EvalText(op, child(0), child(1));
    case OpKind::kRange:
      return EvalRange(op, child(0));
    case OpKind::kCardCheck:
      return EvalCardCheck(op, child(0), child(1));
  }
  return Internal("unhandled operator");
}

Result<TablePtr> Evaluator::EvalCardCheck(const Op& op, const Table& in,
                                          const Table& loop) {
  std::unordered_map<int64_t, int64_t> counts;
  const Column& iters = in.col(col::iter());
  for (size_t r = 0; r < in.rows(); ++r) ++counts[iters[r].i];
  const Column& loop_iters = loop.col(col::iter());
  for (size_t r = 0; r < loop.rows(); ++r) {
    auto it = counts.find(loop_iters[r].i);
    int64_t n = it == counts.end() ? 0 : it->second;
    if (n < op.min_card || n > op.max_card) {
      return CardinalityError("fn:" + ctx_->strings->Get(op.name) +
                              ": argument has " + std::to_string(n) +
                              " item(s)");
    }
  }
  // Pass through unchanged.
  auto out = std::make_shared<Table>();
  for (ColId c : in.schema()) out->AddColumn(c, in.col_ptr(c));
  out->SetRows(in.rows());
  return out;
}

Result<TablePtr> Evaluator::EvalRange(const Op& op, const Table& in) {
  const Column& iters = in.col(col::iter());
  const Column& lo = in.col(op.col);
  const Column& hi = in.col(op.col2);
  Column out_iter;
  Column out_item;
  for (size_t r = 0; r < in.rows(); ++r) {
    // The expansion kernel can produce orders of magnitude more rows than
    // it consumes, so it polls on its own output volume (below) as well
    // as periodically on input rows — the only kernel whose "one chunk of
    // work" is not bounded by its input size.
    if ((r & 1023) == 0) EXRQUY_RETURN_IF_ERROR(PollGovernor());
    auto as_int = [&](const Value& v) -> Result<int64_t> {
      if (v.kind == ValueKind::kInt) return v.i;
      EXRQUY_ASSIGN_OR_RETURN(Value d, ops_.ToDouble(v));
      return static_cast<int64_t>(d.d);
    };
    EXRQUY_ASSIGN_OR_RETURN(int64_t a, as_int(lo[r]));
    EXRQUY_ASSIGN_OR_RETURN(int64_t b, as_int(hi[r]));
    if (b - a > 10'000'000) {
      return TypeError("range expression too large");
    }
    for (int64_t v = a; v <= b; ++v) {
      if ((out_item.size() & 0xFFFF) == 0xFFFF) {
        EXRQUY_RETURN_IF_ERROR(PollGovernor());
      }
      out_iter.push_back(iters[r]);
      out_item.push_back(Value::Int(v));
    }
  }
  size_t n = out_iter.size();
  auto out = std::make_shared<Table>();
  out->AddColumn(col::iter(), std::move(out_iter));
  out->AddColumn(col::item(), std::move(out_item));
  out->SetRows(n);
  return out;
}

Result<TablePtr> Evaluator::EvalLit(const Op& op) {
  auto out = std::make_shared<Table>();
  for (size_t i = 0; i < op.lit.cols.size(); ++i) {
    Column col;
    col.reserve(op.lit.rows.size());
    for (const auto& row : op.lit.rows) col.push_back(row[i]);
    out->AddColumn(op.lit.cols[i], std::move(col));
  }
  out->SetRows(op.lit.rows.size());
  return out;
}

Result<TablePtr> Evaluator::EvalProject(const Op& op, const Table& in) {
  auto out = std::make_shared<Table>();
  for (const auto& [n, o] : op.proj) out->AddColumn(n, in.col_ptr(o));
  out->SetRows(in.rows());
  return out;
}

Result<TablePtr> Evaluator::EvalSelect(const Op& op, const Table& in) {
  const Column& flags = in.col(op.col);
  size_t n = in.rows();
  std::vector<std::vector<uint32_t>> parts(NumChunks(n));
  std::vector<uint8_t> bad(parts.size(), 0);
  ForChunks(n, [&](size_t c, size_t begin, size_t end) {
    std::vector<uint32_t>& rows = parts[c];
    for (size_t r = begin; r < end; ++r) {
      const Value& v = flags[r];
      if (v.kind != ValueKind::kBool) {
        bad[c] = 1;
        return;
      }
      if (v.b) rows.push_back(static_cast<uint32_t>(r));
    }
  });
  for (uint8_t b : bad) {
    if (b != 0) return TypeError("selection column is not boolean");
  }
  return GatherParallel(in, ConcatChunks(parts));
}

Result<TablePtr> Evaluator::EvalEquiJoin(const Op& op, const Table& l,
                                         const Table& r) {
  // Build on the smaller side, probe with the larger — chunk-parallel
  // over the probe side, matches concatenated in probe-row order.
  bool build_right = r.rows() <= l.rows();
  const Table& build = build_right ? r : l;
  const Table& probe = build_right ? l : r;
  ColId build_col = build_right ? op.col2 : op.col;
  ColId probe_col = build_right ? op.col : op.col2;

  // A value join's keys are item values where xs:string and
  // xs:untypedAtomic must hash alike (see NormalizeValueKey); scaffolding
  // joins keep bit-exact keys.
  RowIndex index({&build.col(build_col)}, build.rows(), op.value_join);
  std::vector<const Column*> probe_key = {&probe.col(probe_col)};
  size_t n = probe.rows();
  std::vector<std::vector<uint32_t>> probe_parts(NumChunks(n));
  std::vector<std::vector<uint32_t>> build_parts(probe_parts.size());
  ForChunks(n, [&](size_t c, size_t begin, size_t end) {
    for (size_t pr = begin; pr < end; ++pr) {
      index.ForEachMatch(probe_key, pr, [&](uint32_t br) {
        probe_parts[c].push_back(static_cast<uint32_t>(pr));
        build_parts[c].push_back(br);
      });
    }
  });
  std::vector<uint32_t> probe_rows = ConcatChunks(probe_parts);
  std::vector<uint32_t> build_rows = ConcatChunks(build_parts);
  const std::vector<uint32_t>& l_rows = build_right ? probe_rows : build_rows;
  const std::vector<uint32_t>& r_rows = build_right ? build_rows : probe_rows;

  size_t out_n = probe_rows.size();
  auto out = std::make_shared<Table>();
  auto gather_side = [&](const Table& side,
                         const std::vector<uint32_t>& rows) {
    for (ColId c : side.schema()) {
      const Column& src = side.col(c);
      Column col(out_n);
      ForChunks(out_n, [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) col[i] = src[rows[i]];
      });
      out->AddColumn(c, std::move(col));
    }
  };
  gather_side(l, l_rows);
  gather_side(r, r_rows);
  out->SetRows(out_n);
  return out;
}

Result<TablePtr> Evaluator::EvalThetaJoin(const Op& op, const Table& l,
                                          const Table& r) {
  // Nested-loop join under a general comparison. The probe side is
  // always the left input and the output is left-major with matches in
  // right-row order — chunk boundaries depend only on l.rows(), so the
  // result is byte-identical to a serial nested loop at any thread
  // count. Comparison errors latch per chunk and resolve in chunk order
  // (first error a serial scan would hit), as in EvalFun.
  const Column& lk = l.col(op.col);
  const Column& rk = r.col(op.col2);
  size_t n = l.rows();
  size_t m = r.rows();
  std::vector<std::vector<uint32_t>> l_parts(NumChunks(n));
  std::vector<std::vector<uint32_t>> r_parts(l_parts.size());
  std::vector<Status> errs(l_parts.size());
  ForChunks(n, [&](size_t c, size_t begin, size_t end) {
    size_t pairs = 0;
    for (size_t i = begin; i < end; ++i) {
      for (size_t j = 0; j < m; ++j) {
        // One chunk's work is chunk_rows * m pairs, not chunk_rows — poll
        // on pair volume so a cancel/deadline lands promptly (EvalRange's
        // output-volume idiom).
        if ((pairs++ & 0xFFFF) == 0xFFFF && !PollGovernor().ok()) return;
        Result<Value> v = ops_.Compare(op.fun, lk[i], rk[j]);
        if (!v.ok()) {
          errs[c] = v.status();
          return;
        }
        if (v.value().b) {
          l_parts[c].push_back(static_cast<uint32_t>(i));
          r_parts[c].push_back(static_cast<uint32_t>(j));
        }
      }
    }
  });
  for (const Status& st : errs) {
    if (!st.ok()) return st;
  }
  std::vector<uint32_t> l_rows = ConcatChunks(l_parts);
  std::vector<uint32_t> r_rows = ConcatChunks(r_parts);
  size_t out_n = l_rows.size();
  auto out = std::make_shared<Table>();
  auto gather_side = [&](const Table& side,
                         const std::vector<uint32_t>& rows) {
    for (ColId c : side.schema()) {
      const Column& src = side.col(c);
      Column col(out_n);
      ForChunks(out_n, [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) col[i] = src[rows[i]];
      });
      out->AddColumn(c, std::move(col));
    }
  };
  gather_side(l, l_rows);
  gather_side(r, r_rows);
  out->SetRows(out_n);
  return out;
}

Result<TablePtr> Evaluator::EvalCross(const Op& op, const Table& l,
                                      const Table& r) {
  (void)op;
  size_t nl = l.rows();
  size_t nr = r.rows();
  size_t n = nl * nr;
  // Output row c pairs left row c / nr with right row c % nr — a pure
  // function of the output position, so chunks fill disjoint slices of
  // pre-sized columns in parallel.
  auto out = std::make_shared<Table>();
  for (ColId c : l.schema()) {
    const Column& src = l.col(c);
    Column col(n);
    ForChunks(n, [&](size_t, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) col[i] = src[i / nr];
    });
    out->AddColumn(c, std::move(col));
  }
  for (ColId c : r.schema()) {
    const Column& src = r.col(c);
    Column col(n);
    ForChunks(n, [&](size_t, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) col[i] = src[i % nr];
    });
    out->AddColumn(c, std::move(col));
  }
  out->SetRows(n);
  return out;
}

Result<TablePtr> Evaluator::EvalUnion(const Op& op, const Table& l,
                                      const Table& r) {
  (void)op;
  size_t nl = l.rows();
  size_t nr = r.rows();
  auto out = std::make_shared<Table>();
  for (ColId c : l.schema()) {
    const Column& lc = l.col(c);
    const Column& rc = r.col(c);
    Column col(nl + nr);
    ForChunks(nl, [&](size_t, size_t begin, size_t end) {
      std::copy(lc.begin() + begin, lc.begin() + end, col.begin() + begin);
    });
    ForChunks(nr, [&](size_t, size_t begin, size_t end) {
      std::copy(rc.begin() + begin, rc.begin() + end,
                col.begin() + nl + begin);
    });
    out->AddColumn(c, std::move(col));
  }
  out->SetRows(nl + nr);
  return out;
}

Result<TablePtr> Evaluator::EvalDiffSemi(const Op& op, const Table& l,
                                         const Table& r) {
  RowIndex index(ColPtrs(r, op.keys), r.rows());
  std::vector<const Column*> probe = ColPtrs(l, op.keys);
  bool keep_matching = op.kind == OpKind::kSemiJoin;
  size_t n = l.rows();
  std::vector<std::vector<uint32_t>> parts(NumChunks(n));
  ForChunks(n, [&](size_t c, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (index.Contains(probe, i) == keep_matching) {
        parts[c].push_back(static_cast<uint32_t>(i));
      }
    }
  });
  return GatherParallel(l, ConcatChunks(parts));
}

Result<TablePtr> Evaluator::EvalDistinct(const Op& op, const Table& in) {
  (void)op;
  std::vector<const Column*> cols = ColPtrs(in, in.schema());
  std::vector<std::vector<uint32_t>> buckets(
      std::max<size_t>(16, in.rows() * 2));
  std::vector<uint32_t> rows;
  for (size_t r = 0; r < in.rows(); ++r) {
    size_t b = RowHash(cols, r) % buckets.size();
    bool dup = false;
    for (uint32_t prev : buckets[b]) {
      if (RowEquals(cols, prev, cols, r)) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      buckets[b].push_back(static_cast<uint32_t>(r));
      rows.push_back(static_cast<uint32_t>(r));
    }
  }
  return GatherParallel(in, rows);
}

Result<TablePtr> Evaluator::EvalRowNum(const Op& op, const Table& in) {
  // % — the blocking sort. Rows keep their positions; the new column
  // receives the dense per-group rank.
  size_t n = in.rows();
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);

  const Column* part = op.part != kNoCol ? &in.col(op.part) : nullptr;
  std::vector<std::pair<const Column*, bool>> keys;
  for (const SortKey& k : op.order) {
    keys.emplace_back(&in.col(k.col), k.descending);
  }
  auto less = [&](uint32_t a, uint32_t b) {
    if (part != nullptr) {
      int c = ops_.OrderCompare((*part)[a], (*part)[b]);
      if (c != 0) return c < 0;
    }
    for (const auto& [col, desc] : keys) {
      int c = ops_.OrderCompare((*col)[a], (*col)[b]);
      if (c != 0) return desc ? c > 0 : c < 0;
    }
    return false;
  };
  if (ctx_->detect_sorted_inputs &&
      std::is_sorted(perm.begin(), perm.end(), less)) {
    // Physical order detection: the input already carries the requested
    // order, so the blocking sort degenerates to a scan.
    ctx_->sorts_skipped.fetch_add(1, std::memory_order_relaxed);
  } else {
    ParallelStableSort(&perm, less);
  }

  // Rank assignment carries a sequential dependency across group
  // boundaries — kept serial.
  Column ranks(n);
  int64_t rank = 0;
  for (size_t i = 0; i < n; ++i) {
    if (part != nullptr && i > 0) {
      bool new_group =
          ops_.OrderCompare((*part)[perm[i]], (*part)[perm[i - 1]]) != 0;
      if (new_group) rank = 0;
    }
    ranks[perm[i]] = Value::Int(++rank);
  }

  auto out = std::make_shared<Table>();
  for (ColId c : in.schema()) out->AddColumn(c, in.col_ptr(c));
  out->AddColumn(op.col, std::move(ranks));
  out->SetRows(n);
  return out;
}

Result<TablePtr> Evaluator::EvalRowId(const Op& op, const Table& in) {
  // # — arbitrary unique numbers at negligible cost (a ROWID column).
  size_t n = in.rows();
  Column ids(n);
  ForChunks(n, [&](size_t, size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      ids[r] = Value::Int(static_cast<int64_t>(r) + 1);
    }
  });
  auto out = std::make_shared<Table>();
  for (ColId c : in.schema()) out->AddColumn(c, in.col_ptr(c));
  out->AddColumn(op.col, std::move(ids));
  out->SetRows(n);
  return out;
}

Result<Value> Evaluator::ApplyFun(const Op& op,
                                  const std::vector<const Column*>& args,
                                  size_t row) {
  auto arg = [&](size_t i) -> const Value& { return (*args[i])[row]; };
  switch (op.fun) {
    case FunKind::kAdd:
    case FunKind::kSub:
    case FunKind::kMul:
    case FunKind::kDiv:
    case FunKind::kIDiv:
    case FunKind::kMod:
      return ops_.Arith(op.fun, arg(0), arg(1));
    case FunKind::kNeg: {
      EXRQUY_ASSIGN_OR_RETURN(Value v, ops_.ToDouble(arg(0)));
      if (arg(0).kind == ValueKind::kInt) {
        if (arg(0).i == INT64_MIN) {
          return TypeError("err:FOAR0002: integer overflow in negation");
        }
        return Value::Int(-arg(0).i);
      }
      return Value::Double(-v.d);
    }
    case FunKind::kEq:
    case FunKind::kNe:
    case FunKind::kLt:
    case FunKind::kLe:
    case FunKind::kGt:
    case FunKind::kGe:
      return ops_.Compare(op.fun, arg(0), arg(1));
    case FunKind::kNodeBefore:
    case FunKind::kNodeAfter:
    case FunKind::kNodeIs: {
      const Value& a = arg(0);
      const Value& b = arg(1);
      if (a.kind != ValueKind::kNode || b.kind != ValueKind::kNode) {
        return TypeError("node comparison on non-node operands");
      }
      if (op.fun == FunKind::kNodeBefore) return Value::Bool(a.node < b.node);
      if (op.fun == FunKind::kNodeAfter) return Value::Bool(a.node > b.node);
      return Value::Bool(a.node == b.node);
    }
    case FunKind::kAnd:
    case FunKind::kOr: {
      const Value& a = arg(0);
      const Value& b = arg(1);
      if (a.kind != ValueKind::kBool || b.kind != ValueKind::kBool) {
        return TypeError("boolean connective on non-boolean operands");
      }
      return Value::Bool(op.fun == FunKind::kAnd ? (a.b && b.b)
                                                 : (a.b || b.b));
    }
    case FunKind::kNot: {
      const Value& a = arg(0);
      if (a.kind != ValueKind::kBool) {
        return TypeError("fn:not on non-boolean operand");
      }
      return Value::Bool(!a.b);
    }
    case FunKind::kAtomize:
      return ops_.Atomize(arg(0));
    case FunKind::kToDouble:
      return ops_.ToDouble(arg(0));
    case FunKind::kToString:
      return ops_.ToString(arg(0));
    case FunKind::kContains: {
      EXRQUY_ASSIGN_OR_RETURN(Value a, ops_.ToString(arg(0)));
      EXRQUY_ASSIGN_OR_RETURN(Value b, ops_.ToString(arg(1)));
      const std::string& hay = ctx_->strings->Get(a.str);
      const std::string& needle = ctx_->strings->Get(b.str);
      return Value::Bool(hay.find(needle) != std::string::npos);
    }
    case FunKind::kConcat: {
      EXRQUY_ASSIGN_OR_RETURN(Value a, ops_.ToString(arg(0)));
      EXRQUY_ASSIGN_OR_RETURN(Value b, ops_.ToString(arg(1)));
      std::string s = ctx_->strings->Get(a.str);
      s += ctx_->strings->Get(b.str);
      return Value::Str(ctx_->strings->Intern(s));
    }
    case FunKind::kStringLength: {
      EXRQUY_ASSIGN_OR_RETURN(Value a, ops_.ToString(arg(0)));
      return Value::Int(
          static_cast<int64_t>(ctx_->strings->Get(a.str).size()));
    }
    case FunKind::kStartsWith:
    case FunKind::kEndsWith: {
      EXRQUY_ASSIGN_OR_RETURN(Value a, ops_.ToString(arg(0)));
      EXRQUY_ASSIGN_OR_RETURN(Value b, ops_.ToString(arg(1)));
      const std::string& s = ctx_->strings->Get(a.str);
      const std::string& p = ctx_->strings->Get(b.str);
      if (p.size() > s.size()) return Value::Bool(false);
      if (op.fun == FunKind::kStartsWith) {
        return Value::Bool(s.compare(0, p.size(), p) == 0);
      }
      return Value::Bool(s.compare(s.size() - p.size(), p.size(), p) == 0);
    }
    case FunKind::kUpperCase:
    case FunKind::kLowerCase: {
      EXRQUY_ASSIGN_OR_RETURN(Value a, ops_.ToString(arg(0)));
      std::string s = ctx_->strings->Get(a.str);
      for (char& c : s) {
        c = op.fun == FunKind::kUpperCase
                ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      return Value::Str(ctx_->strings->Intern(s));
    }
    case FunKind::kNormalizeSpace: {
      EXRQUY_ASSIGN_OR_RETURN(Value a, ops_.ToString(arg(0)));
      const std::string& s = ctx_->strings->Get(a.str);
      std::string out;
      bool in_space = true;  // also trims leading whitespace
      for (char c : s) {
        if (std::isspace(static_cast<unsigned char>(c))) {
          if (!in_space) out += ' ';
          in_space = true;
        } else {
          out += c;
          in_space = false;
        }
      }
      while (!out.empty() && out.back() == ' ') out.pop_back();
      return Value::Str(ctx_->strings->Intern(out));
    }
    case FunKind::kSubstring2:
    case FunKind::kSubstring3: {
      EXRQUY_ASSIGN_OR_RETURN(Value a, ops_.ToString(arg(0)));
      EXRQUY_ASSIGN_OR_RETURN(Value s1, ops_.ToDouble(arg(1)));
      const std::string& s = ctx_->strings->Get(a.str);
      // XQuery substring positions are 1-based and rounded.
      int64_t start = static_cast<int64_t>(std::llround(s1.d));
      int64_t end;  // exclusive, 1-based
      if (op.fun == FunKind::kSubstring3) {
        EXRQUY_ASSIGN_OR_RETURN(Value s2, ops_.ToDouble(arg(2)));
        end = start + static_cast<int64_t>(std::llround(s2.d));
      } else {
        end = static_cast<int64_t>(s.size()) + 1;
      }
      start = std::max<int64_t>(start, 1);
      end = std::min<int64_t>(end, static_cast<int64_t>(s.size()) + 1);
      std::string out = start < end
                            ? s.substr(static_cast<size_t>(start - 1),
                                       static_cast<size_t>(end - start))
                            : "";
      return Value::Str(ctx_->strings->Intern(out));
    }
    case FunKind::kAbs:
    case FunKind::kFloor:
    case FunKind::kCeiling:
    case FunKind::kRound: {
      Value a = arg(0);
      if (a.kind == ValueKind::kUntyped || a.kind == ValueKind::kString) {
        EXRQUY_ASSIGN_OR_RETURN(a, ops_.ToDouble(a));
      }
      if (a.kind == ValueKind::kInt) {
        return op.fun == FunKind::kAbs ? Value::Int(std::llabs(a.i)) : a;
      }
      if (a.kind != ValueKind::kDouble) {
        return TypeError("numeric function on non-numeric operand");
      }
      switch (op.fun) {
        case FunKind::kAbs:
          return Value::Double(std::fabs(a.d));
        case FunKind::kFloor:
          return Value::Double(std::floor(a.d));
        case FunKind::kCeiling:
          return Value::Double(std::ceil(a.d));
        default:
          // fn:round: round half up (toward positive infinity).
          return Value::Double(std::floor(a.d + 0.5));
      }
    }
    case FunKind::kNodeName: {
      const Value& a = arg(0);
      if (a.kind != ValueKind::kNode) {
        return TypeError("fn:name on a non-node item");
      }
      return Value::Str(ctx_->store->name(a.node));
    }
  }
  return Internal("unhandled function");
}

Result<TablePtr> Evaluator::EvalFun(const Op& op, const Table& in) {
  std::vector<const Column*> args = ColPtrs(in, op.args);
  size_t n = in.rows();
  Column result(n);
  std::vector<Status> errs(NumChunks(n));
  ForChunks(n, [&](size_t c, size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      Result<Value> v = ApplyFun(op, args, r);
      if (!v.ok()) {
        // First error in the chunk == first error a serial scan of this
        // chunk would hit; chunk order resolves the rest below.
        errs[c] = v.status();
        return;
      }
      result[r] = std::move(v).value();
    }
  });
  for (const Status& st : errs) {
    if (!st.ok()) return st;
  }
  auto out = std::make_shared<Table>();
  for (ColId c : in.schema()) out->AddColumn(c, in.col_ptr(c));
  out->AddColumn(op.col, std::move(result));
  out->SetRows(n);
  return out;
}

Result<TablePtr> Evaluator::EvalAggr(const Op& op, const Table& in) {
  // Group rows by the partition column (first-appearance order keeps the
  // output deterministic).
  std::vector<std::vector<uint32_t>> groups;
  std::vector<uint32_t> group_rep;  // representative row per group
  if (op.part == kNoCol) {
    groups.emplace_back(in.rows());
    std::iota(groups[0].begin(), groups[0].end(), 0);
    group_rep.push_back(0);
  } else {
    const Column& part = in.col(op.part);
    std::vector<const Column*> key = {&part};
    std::vector<std::vector<uint32_t>> buckets(
        std::max<size_t>(16, in.rows() * 2));
    for (size_t r = 0; r < in.rows(); ++r) {
      size_t b = RowHash(key, r) % buckets.size();
      int64_t found = -1;
      for (uint32_t g : buckets[b]) {
        if (part[group_rep[g]] == part[r]) {
          found = g;
          break;
        }
      }
      if (found < 0) {
        found = static_cast<int64_t>(groups.size());
        groups.emplace_back();
        group_rep.push_back(static_cast<uint32_t>(r));
        buckets[b].push_back(static_cast<uint32_t>(found));
      }
      groups[found].push_back(static_cast<uint32_t>(r));
    }
  }

  const Column* arg =
      op.aggr == AggrKind::kCount ? nullptr : &in.col(op.col2);
  const Column* order =
      op.keys.empty() ? nullptr : &in.col(op.keys[0]);

  Column part_out;
  Column result;
  for (size_t g = 0; g < groups.size(); ++g) {
    const std::vector<uint32_t>& rows = groups[g];
    Value v;
    switch (op.aggr) {
      case AggrKind::kCount:
        v = Value::Int(static_cast<int64_t>(rows.size()));
        break;
      case AggrKind::kSum:
      case AggrKind::kAvg: {
        Value acc = Value::Int(0);
        for (uint32_t r : rows) {
          EXRQUY_ASSIGN_OR_RETURN(acc,
                                  ops_.Arith(FunKind::kAdd, acc, (*arg)[r]));
        }
        if (op.aggr == AggrKind::kAvg) {
          EXRQUY_ASSIGN_OR_RETURN(Value d, ops_.ToDouble(acc));
          v = Value::Double(d.d / static_cast<double>(rows.size()));
        } else {
          v = acc;
        }
        break;
      }
      case AggrKind::kMax:
      case AggrKind::kMin: {
        // fn:max/fn:min cast untyped values to xs:double when every value
        // parses as a number; otherwise compare as strings.
        bool numeric = true;
        for (uint32_t r : rows) {
          Result<Value> d = ops_.ToDouble((*arg)[r]);
          if (!d.ok()) {
            numeric = false;
            break;
          }
        }
        bool want_max = op.aggr == AggrKind::kMax;
        bool first = true;
        Value best;
        for (uint32_t r : rows) {
          Value cand = (*arg)[r];
          if (numeric) {
            EXRQUY_ASSIGN_OR_RETURN(cand, ops_.ToDouble(cand));
          }
          if (first) {
            best = cand;
            first = false;
            continue;
          }
          int c = ops_.OrderCompare(cand, best);
          if (want_max ? c > 0 : c < 0) best = cand;
        }
        v = best;
        break;
      }
      case AggrKind::kEbv: {
        if (rows.size() == 1) {
          v = Value::Bool(ops_.EbvSingle((*arg)[rows[0]]));
          break;
        }
        bool any_node = false;
        for (uint32_t r : rows) {
          if ((*arg)[r].kind == ValueKind::kNode) {
            any_node = true;
            break;
          }
        }
        if (!any_node) {
          return TypeError(
              "effective boolean value of a multi-item atomic sequence");
        }
        v = Value::Bool(true);
        break;
      }
      case AggrKind::kStrJoin: {
        std::vector<uint32_t> sorted = rows;
        if (order != nullptr) {
          std::stable_sort(sorted.begin(), sorted.end(),
                           [&](uint32_t a, uint32_t b) {
                             return ops_.OrderCompare((*order)[a],
                                                      (*order)[b]) < 0;
                           });
        }
        const std::string& sep = ctx_->strings->Get(op.name);
        std::string s;
        for (size_t i = 0; i < sorted.size(); ++i) {
          if (i > 0) s += sep;
          EXRQUY_ASSIGN_OR_RETURN(Value sv, ops_.ToString((*arg)[sorted[i]]));
          s += ctx_->strings->Get(sv.str);
        }
        v = Value::Str(ctx_->strings->Intern(s));
        break;
      }
    }
    if (op.part != kNoCol) {
      part_out.push_back(in.col(op.part)[group_rep[g]]);
    }
    result.push_back(v);
  }

  auto out = std::make_shared<Table>();
  if (op.part != kNoCol) out->AddColumn(op.part, std::move(part_out));
  out->AddColumn(op.col, std::move(result));
  out->SetRows(groups.size());
  return out;
}

Result<TablePtr> Evaluator::EvalStep(const Op& op, const Table& in) {
  const Column& iters = in.col(col::iter());
  const Column& items = in.col(col::item());
  size_t n = in.rows();
  for (size_t r = 0; r < n; ++r) {
    if (items[r].kind != ValueKind::kNode) {
      return TypeError(std::string("path step ") + AxisName(op.axis) +
                       ":: applied to a non-node item");
    }
    EXRQUY_DCHECK(iters[r].kind == ValueKind::kInt);
  }

  std::vector<int64_t> out_iters;
  std::vector<NodeIdx> out_nodes;
  size_t chunks = NumChunks(n);
  if (chunks <= 1) {
    std::vector<int64_t> ctx_iters;
    std::vector<NodeIdx> ctx_nodes;
    ctx_iters.reserve(n);
    ctx_nodes.reserve(n);
    for (size_t r = 0; r < n; ++r) {
      ctx_iters.push_back(iters[r].i);
      ctx_nodes.push_back(items[r].node);
    }
    exrquy::EvalStep(*ctx_->store, op.axis, op.test, std::move(ctx_iters),
                     std::move(ctx_nodes), &out_iters, &out_nodes);
  } else {
    // Each chunk evaluates its context subset independently; EvalStep
    // output is the sorted duplicate-free (iter, node) result set, so
    // concatenating the chunks, sorting and deduplicating reproduces the
    // single-call result exactly.
    std::vector<std::vector<int64_t>> chunk_iters(chunks);
    std::vector<std::vector<NodeIdx>> chunk_nodes(chunks);
    ForChunks(n, [&](size_t c, size_t begin, size_t end) {
      std::vector<int64_t> ci;
      std::vector<NodeIdx> cn;
      ci.reserve(end - begin);
      cn.reserve(end - begin);
      for (size_t r = begin; r < end; ++r) {
        ci.push_back(iters[r].i);
        cn.push_back(items[r].node);
      }
      exrquy::EvalStep(*ctx_->store, op.axis, op.test, std::move(ci),
                       std::move(cn), &chunk_iters[c], &chunk_nodes[c]);
    });
    std::vector<std::pair<int64_t, NodeIdx>> all;
    size_t total = 0;
    for (const auto& ci : chunk_iters) total += ci.size();
    all.reserve(total);
    for (size_t c = 0; c < chunks; ++c) {
      for (size_t i = 0; i < chunk_iters[c].size(); ++i) {
        all.emplace_back(chunk_iters[c][i], chunk_nodes[c][i]);
      }
    }
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    out_iters.reserve(all.size());
    out_nodes.reserve(all.size());
    for (const auto& [it, node] : all) {
      out_iters.push_back(it);
      out_nodes.push_back(node);
    }
  }

  size_t out_n = out_iters.size();
  Column ic(out_n);
  Column nc(out_n);
  ForChunks(out_n, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ic[i] = Value::Int(out_iters[i]);
      nc[i] = Value::Node(out_nodes[i]);
    }
  });
  auto out = std::make_shared<Table>();
  out->AddColumn(col::iter(), std::move(ic));
  out->AddColumn(col::item(), std::move(nc));
  out->SetRows(out_n);
  return out;
}

Result<TablePtr> Evaluator::EvalDoc(const Op& op) {
  auto it = ctx_->documents.find(op.name);
  if (it == ctx_->documents.end()) {
    return NotFound("document not loaded: " + ctx_->strings->Get(op.name));
  }
  auto out = std::make_shared<Table>();
  out->AddColumn(col::item(), Column{Value::Node(it->second)});
  out->SetRows(1);
  return out;
}

namespace {

// Groups content rows by iter and yields each iter group's rows sorted
// by pos (sequence order establishes the new fragment's document order).
class ContentGroups {
 public:
  ContentGroups(const Table& content, const ValueOps& ops) {
    const Column& iters = content.col(col::iter());
    const Column& poss = content.col(col::pos());
    for (size_t r = 0; r < content.rows(); ++r) {
      groups_[iters[r].i].push_back(static_cast<uint32_t>(r));
    }
    for (auto& [iter, rows] : groups_) {
      std::stable_sort(rows.begin(), rows.end(),
                       [&](uint32_t a, uint32_t b) {
                         return ops.OrderCompare(poss[a], poss[b]) < 0;
                       });
    }
  }

  static const std::vector<uint32_t>& Empty() {
    static const std::vector<uint32_t>* empty = new std::vector<uint32_t>();
    return *empty;
  }

  const std::vector<uint32_t>& RowsFor(int64_t iter) const {
    auto it = groups_.find(iter);
    return it == groups_.end() ? Empty() : it->second;
  }

 private:
  std::unordered_map<int64_t, std::vector<uint32_t>> groups_;
};

}  // namespace

Result<TablePtr> Evaluator::EvalElem(const Op& op, const Table& content,
                                     const Table& loop) {
  ContentGroups groups(content, ops_);
  const Column& items = content.col(col::item());
  const Column& loop_iters = loop.col(col::iter());

  Column out_iter;
  Column out_item;
  for (size_t lr = 0; lr < loop.rows(); ++lr) {
    int64_t it = loop_iters[lr].i;
    const std::vector<uint32_t>& rows = groups.RowsFor(it);

    NodeBuilder builder(ctx_->store);
    builder.BeginElement(op.name);
    // Attribute items first (XQuery requires attributes to precede other
    // content; we accept them anywhere, leniently).
    for (uint32_t r : rows) {
      const Value& v = items[r];
      if (v.kind == ValueKind::kNode &&
          ctx_->store->kind(v.node) == NodeKind::kAttribute) {
        builder.Attribute(ctx_->store->name(v.node),
                          ctx_->store->value(v.node));
      }
    }
    // Children: nodes are deep-copied, adjacent atomics merge into one
    // space-separated text node.
    std::string pending;
    bool have_pending = false;
    auto flush = [&] {
      if (have_pending) builder.Text(pending);
      pending.clear();
      have_pending = false;
    };
    for (uint32_t r : rows) {
      const Value& v = items[r];
      if (v.kind == ValueKind::kNode) {
        NodeKind k = ctx_->store->kind(v.node);
        if (k == NodeKind::kAttribute) continue;  // already handled
        flush();
        if (k == NodeKind::kDocument) {
          // Copying a document node copies its children.
          NodeIdx end = v.node + ctx_->store->size(v.node);
          NodeIdx c = v.node + 1;
          while (c <= end) {
            builder.CopySubtree(c);
            c += ctx_->store->size(c) + 1;
          }
        } else {
          builder.CopySubtree(v.node);
        }
      } else {
        if (have_pending) pending += ' ';
        pending += ops_.Render(v);
        have_pending = true;
      }
    }
    flush();
    builder.EndElement();
    NodeIdx node = builder.Finish();
    out_iter.push_back(Value::Int(it));
    out_item.push_back(Value::Node(node));
  }

  auto out = std::make_shared<Table>();
  out->AddColumn(col::iter(), std::move(out_iter));
  out->AddColumn(col::item(), std::move(out_item));
  out->SetRows(loop.rows());
  return out;
}

Result<TablePtr> Evaluator::EvalAttr(const Op& op, const Table& value,
                                     const Table& loop) {
  ContentGroups groups(value, ops_);
  const Column& items = value.col(col::item());
  const Column& loop_iters = loop.col(col::iter());

  Column out_iter;
  Column out_item;
  for (size_t lr = 0; lr < loop.rows(); ++lr) {
    int64_t it = loop_iters[lr].i;
    std::string s;
    bool first = true;
    for (uint32_t r : groups.RowsFor(it)) {
      if (!first) s += ' ';
      first = false;
      Value v = ops_.Atomize(items[r]);
      EXRQUY_ASSIGN_OR_RETURN(Value sv, ops_.ToString(v));
      s += ctx_->strings->Get(sv.str);
    }
    NodeIdx node =
        ctx_->store->MakeAttribute(op.name, ctx_->strings->Intern(s));
    out_iter.push_back(Value::Int(it));
    out_item.push_back(Value::Node(node));
  }

  auto out = std::make_shared<Table>();
  out->AddColumn(col::iter(), std::move(out_iter));
  out->AddColumn(col::item(), std::move(out_item));
  out->SetRows(loop.rows());
  return out;
}

Result<TablePtr> Evaluator::EvalText(const Op& op, const Table& content,
                                     const Table& loop) {
  (void)op;
  ContentGroups groups(content, ops_);
  const Column& items = content.col(col::item());
  const Column& loop_iters = loop.col(col::iter());

  Column out_iter;
  Column out_item;
  for (size_t lr = 0; lr < loop.rows(); ++lr) {
    int64_t it = loop_iters[lr].i;
    const std::vector<uint32_t>& rows = groups.RowsFor(it);
    if (rows.empty()) continue;  // text {()} yields the empty sequence
    std::string s;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) s += ' ';
      Value v = ops_.Atomize(items[rows[i]]);
      EXRQUY_ASSIGN_OR_RETURN(Value sv, ops_.ToString(v));
      s += ctx_->strings->Get(sv.str);
    }
    NodeIdx node = ctx_->store->MakeText(ctx_->strings->Intern(s));
    out_iter.push_back(Value::Int(it));
    out_item.push_back(Value::Node(node));
  }

  size_t n = out_iter.size();
  auto out = std::make_shared<Table>();
  out->AddColumn(col::iter(), std::move(out_iter));
  out->AddColumn(col::item(), std::move(out_item));
  out->SetRows(n);
  return out;
}

// ---------------------------------------------------------------------------

namespace {

std::vector<uint32_t> RowsInSequenceOrder(const Table& t,
                                          const ValueOps& ops) {
  const Column& iters = t.col(col::iter());
  const Column& poss = t.col(col::pos());
  std::vector<uint32_t> rows(t.rows());
  std::iota(rows.begin(), rows.end(), 0);
  std::stable_sort(rows.begin(), rows.end(), [&](uint32_t a, uint32_t b) {
    int c = ops.OrderCompare(iters[a], iters[b]);
    if (c != 0) return c < 0;
    return ops.OrderCompare(poss[a], poss[b]) < 0;
  });
  return rows;
}

}  // namespace

Result<std::string> SerializeResult(const Table& t, const EvalContext& ctx) {
  ValueOps ops(ctx.strings, ctx.store);
  std::string out;
  // Adjacent "textual" items (atomics, attribute nodes, text nodes) are
  // separated by one space so result items stay distinguishable; markup
  // items (elements) serialize back to back.
  bool prev_textual = false;
  for (uint32_t r : RowsInSequenceOrder(t, ops)) {
    Value v = t.at(col::item(), r);
    bool textual =
        v.kind != ValueKind::kNode ||
        ctx.store->kind(v.node) == NodeKind::kAttribute ||
        ctx.store->kind(v.node) == NodeKind::kText;
    if (prev_textual && textual) out += ' ';
    if (v.kind == ValueKind::kNode) {
      SerializeNode(*ctx.store, v.node, {}, &out);
    } else {
      EscapeText(ops.Render(v), &out);
    }
    prev_textual = textual;
  }
  return out;
}

Result<std::vector<std::string>> ResultItems(const Table& t,
                                             const EvalContext& ctx) {
  ValueOps ops(ctx.strings, ctx.store);
  std::vector<std::string> items;
  items.reserve(t.rows());
  for (uint32_t r : RowsInSequenceOrder(t, ops)) {
    Value v = t.at(col::item(), r);
    if (v.kind == ValueKind::kNode) {
      items.push_back(SerializeNode(*ctx.store, v.node));
    } else {
      items.push_back(ops.Render(v));
    }
  }
  return items;
}

}  // namespace exrquy
