// Figure 9 / Section 4.1 / Section 7: the effect of column dependency
// analysis and of the constant/arbitrary-column weakening on plan DAGs.
//
//  * Q6 (unordered): CDA removes the dead order derivations introduced
//    compositionally ("#pos indirectly followed by #pos"); the constant-
//    column analysis then reduces the residual %pos1:<bind,pos>‖iter1 to
//    a free numbering — no trace of order remains (end of Section 7).
//  * Q11: the paper reports the initial DAG of 235 operators cut down to
//    141 after the analysis; our inventory differs, but the reduction
//    must be of the same order.
#include <cstdio>

#include "algebra/stats.h"
#include "bench/bench_util.h"

namespace exrquy {
namespace {

void Row(Session* session, const char* title, const std::string& query,
         QueryOptions options, bool optimized) {
  Result<QueryPlans> plans = session->Plan(query, options);
  if (!plans.ok()) {
    std::printf("%-52s error: %s\n", title,
                plans.status().ToString().c_str());
    return;
  }
  PlanStats stats = CollectPlanStats(
      *plans->dag, optimized ? plans->optimized : plans->initial);
  std::printf("%-52s %s\n", title, stats.ToString().c_str());
}

void Run() {
  auto session = bench::MakeXMarkSession(0.004, nullptr);

  std::printf("Figure 9 / Section 7 — column dependency analysis\n\n");

  const std::string& q6 = XMarkQueryText("Q6");
  QueryOptions u = bench::Enabled();
  Row(session.get(), "Q6 unordered, as emitted", q6, u, false);

  QueryOptions cda_only = u;
  cda_only.weaken_rownum = false;
  cda_only.step_merging = false;
  cda_only.distinct_elimination = false;
  Row(session.get(), "Q6 + column dependency analysis (Fig. 9)", q6,
      cda_only, true);

  QueryOptions cda_weaken = u;
  cda_weaken.step_merging = false;
  cda_weaken.distinct_elimination = false;
  Row(session.get(), "Q6 + constant/arbitrary-column weakening", q6,
      cda_weaken, true);

  Row(session.get(), "Q6 + step merging (all rewrites)", q6, u, true);

  std::printf(
      "\nExpected: the weakened plan contains no %% at all — \"which\n"
      "ultimately removes any residual traces of order in the plan for "
      "Q6\".\n\n");

  const std::string& q11 = XMarkQueryText("Q11");
  Row(session.get(), "Q11 unordered, as emitted", q11, u, false);
  Row(session.get(), "Q11 after the analysis", q11, u, true);
  std::printf(
      "\nPaper: Q11's initial DAG of 235 operators is cut down to 141.\n");
}

}  // namespace
}  // namespace exrquy

int main() {
  exrquy::Run();
  return 0;
}
