#include "xml/node_store.h"

#include <algorithm>

#include "common/check.h"

namespace exrquy {

namespace {

uint64_t IndexKey(NodeKind kind, StrId name) {
  return (static_cast<uint64_t>(kind) << 32) | name;
}

}  // namespace

std::string NodeStore::StringValue(NodeIdx n) const {
  NodeKind k = kind(n);
  if (k == NodeKind::kAttribute || k == NodeKind::kText ||
      k == NodeKind::kComment) {
    return value_str(n);
  }
  std::string out;
  NodeIdx end = n + size(n);
  for (NodeIdx i = n + 1; i <= end; ++i) {
    if (kind(i) == NodeKind::kText) out += value_str(i);
  }
  return out;
}

const NodeStore::Fragment& NodeStore::FragmentOf(NodeIdx n) const {
  EXRQUY_DCHECK(!fragments_.empty());
  auto it = std::upper_bound(
      fragments_.begin(), fragments_.end(), n,
      [](NodeIdx v, const Fragment& f) { return v < f.root; });
  EXRQUY_DCHECK(it != fragments_.begin());
  --it;
  EXRQUY_DCHECK(n >= it->root && n < it->root + it->node_count);
  return *it;
}

NodeIdx NodeStore::CopySubtreeInto(NodeIdx src, uint16_t level_delta,
                                   NodeIdx new_parent) {
  NodeIdx dst_root = kind_.size();
  uint32_t count = size(src) + 1;
  int64_t idx_delta = static_cast<int64_t>(dst_root) -
                      static_cast<int64_t>(src);
  uint16_t src_level = level(src);
  for (NodeIdx i = src; i < src + count; ++i) {
    NodeIdx p;
    if (i == src) {
      p = new_parent;
    } else {
      p = parent_[i] + idx_delta;
    }
    uint16_t lvl = static_cast<uint16_t>(level_[i] - src_level + level_delta);
    AppendNode(kind(i), name_[i], value_[i], lvl, p);
    size_.back() = size_[i];  // subtree sizes are position independent
  }
  return dst_root;
}

NodeIdx NodeStore::MakeAttribute(StrId name, StrId value) {
  NodeIdx n = AppendNode(NodeKind::kAttribute, name, value, 0, kInvalidNode);
  fragments_.push_back(Fragment{n, 1, false});
  return n;
}

NodeIdx NodeStore::MakeText(StrId value) {
  NodeIdx n = AppendNode(NodeKind::kText, StrPool::kEmpty, value, 0,
                         kInvalidNode);
  fragments_.push_back(Fragment{n, 1, false});
  return n;
}

void NodeStore::TruncateTo(size_t node_count, size_t fragment_count) {
  EXRQUY_CHECK(node_count <= kind_.size());
  EXRQUY_CHECK(fragment_count <= fragments_.size());
  for (size_t i = fragment_count; i < fragments_.size(); ++i) {
    EXRQUY_CHECK(!fragments_[i].indexed);
  }
  if (budget_ != nullptr && node_count < kind_.size()) {
    budget_->Release((kind_.size() - node_count) * kBytesPerNode);
  }
  kind_.resize(node_count);
  name_.resize(node_count);
  value_.resize(node_count);
  size_.resize(node_count);
  level_.resize(node_count);
  parent_.resize(node_count);
  fragments_.resize(fragment_count);
}

void NodeStore::CloneFrom(const NodeStore& src) {
  EXRQUY_CHECK(strings_ == src.strings_);
  kind_ = src.kind_;
  name_ = src.name_;
  value_ = src.value_;
  size_ = src.size_;
  level_ = src.level_;
  parent_ = src.parent_;
  fragments_ = src.fragments_;
  name_index_ = src.name_index_;
}

const std::vector<NodeIdx>* NodeStore::IndexedNodes(NodeKind kind,
                                                    StrId name) const {
  auto it = name_index_.find(IndexKey(kind, name));
  if (it == name_index_.end()) return nullptr;
  return &it->second;
}

void NodeStore::IndexFragment(size_t frag_id) {
  Fragment& f = fragments_[frag_id];
  if (f.indexed) return;
  for (NodeIdx i = f.root; i < f.root + f.node_count; ++i) {
    NodeKind k = kind(i);
    if (k == NodeKind::kElement || k == NodeKind::kAttribute) {
      std::vector<NodeIdx>& v = name_index_[IndexKey(k, name_[i])];
      // Creation order equals preorder within a fragment; indexing
      // fragments in creation order keeps every vector sorted.
      EXRQUY_DCHECK(v.empty() || v.back() < i);
      v.push_back(i);
    }
  }
  f.indexed = true;
}

NodeIdx NodeStore::AppendNode(NodeKind kind, StrId name, StrId value,
                              uint16_t level, NodeIdx parent) {
  NodeIdx n = kind_.size();
  kind_.push_back(static_cast<uint8_t>(kind));
  name_.push_back(name);
  value_.push_back(value);
  size_.push_back(0);
  level_.push_back(level);
  parent_.push_back(parent);
  if (budget_ != nullptr) budget_->Charge(kBytesPerNode);
  return n;
}

// ---------------------------------------------------------------------------
// NodeBuilder

NodeBuilder::NodeBuilder(NodeStore* store)
    : store_(store), first_(store->node_count()) {}

NodeBuilder::~NodeBuilder() {
  if (!finished_) {
    // Abandoned build (e.g. a parse error): roll the partial fragment
    // back so the store is unchanged.
    store_->TruncateTo(first_, store_->fragment_count());
  }
}

uint16_t NodeBuilder::CurrentLevel() const {
  return static_cast<uint16_t>(open_.size());
}

NodeIdx NodeBuilder::CurrentParent() const {
  return open_.empty() ? kInvalidNode : open_.back();
}

void NodeBuilder::BeginDocument() {
  EXRQUY_CHECK(open_.empty() && store_->node_count() == first_);
  NodeIdx n = store_->AppendNode(NodeKind::kDocument, StrPool::kEmpty,
                                 StrPool::kEmpty, 0, kInvalidNode);
  open_.push_back(n);
}

void NodeBuilder::BeginElement(StrId name) {
  NodeIdx n = store_->AppendNode(NodeKind::kElement, name, StrPool::kEmpty,
                                 CurrentLevel(), CurrentParent());
  open_.push_back(n);
}

void NodeBuilder::BeginElement(std::string_view name) {
  BeginElement(store_->strings().Intern(name));
}

void NodeBuilder::Attribute(StrId name, StrId value) {
  EXRQUY_CHECK(!open_.empty());
  store_->AppendNode(NodeKind::kAttribute, name, value, CurrentLevel(),
                     CurrentParent());
}

void NodeBuilder::Attribute(std::string_view name, std::string_view value) {
  Attribute(store_->strings().Intern(name), store_->strings().Intern(value));
}

void NodeBuilder::Text(StrId value) {
  store_->AppendNode(NodeKind::kText, StrPool::kEmpty, value, CurrentLevel(),
                     CurrentParent());
}

void NodeBuilder::Text(std::string_view value) {
  Text(store_->strings().Intern(value));
}

void NodeBuilder::Comment(std::string_view value) {
  store_->AppendNode(NodeKind::kComment, StrPool::kEmpty,
                     store_->strings().Intern(value), CurrentLevel(),
                     CurrentParent());
}

void NodeBuilder::CopySubtree(NodeIdx src) {
  store_->CopySubtreeInto(src, CurrentLevel(), CurrentParent());
}

void NodeBuilder::EndElement() {
  EXRQUY_CHECK(!open_.empty());
  NodeIdx n = open_.back();
  EXRQUY_CHECK(store_->kind(n) == NodeKind::kElement);
  open_.pop_back();
  store_->size_[n] = static_cast<uint32_t>(store_->node_count() - n - 1);
}

void NodeBuilder::EndDocument() {
  EXRQUY_CHECK(open_.size() == 1);
  NodeIdx n = open_.back();
  EXRQUY_CHECK(store_->kind(n) == NodeKind::kDocument);
  open_.pop_back();
  store_->size_[n] = static_cast<uint32_t>(store_->node_count() - n - 1);
}

NodeIdx NodeBuilder::Finish() {
  EXRQUY_CHECK(open_.empty() && !finished_);
  EXRQUY_CHECK(store_->node_count() > first_);
  finished_ = true;
  store_->fragments_.push_back(NodeStore::Fragment{
      first_, static_cast<uint32_t>(store_->node_count() - first_), false});
  return first_;
}

}  // namespace exrquy
