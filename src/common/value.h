// The fixed-width value type that flows through the columnar engine and
// appears in algebra literal tables. Strings are interned StrIds; nodes
// are preorder ranks (NodeIdx). `kUntyped` is xs:untypedAtomic — the type
// of atomized schema-less XML content — which general comparisons cast
// by the XQuery rules.
#ifndef EXRQUY_COMMON_VALUE_H_
#define EXRQUY_COMMON_VALUE_H_

#include <cstdint>
#include <functional>

#include "common/str_pool.h"

namespace exrquy {

enum class ValueKind : uint8_t {
  kInt = 0,     // xs:integer
  kDouble = 1,  // xs:double (also stands in for xs:decimal)
  kString = 2,  // xs:string
  kUntyped = 3, // xs:untypedAtomic
  kBool = 4,    // xs:boolean
  kNode = 5,    // node reference (preorder rank)
};

struct Value {
  ValueKind kind = ValueKind::kInt;
  union {
    int64_t i;
    double d;
    uint64_t node;
    StrId str;
    bool b;
  };

  Value() : i(0) {}

  static Value Int(int64_t v) {
    Value x;
    x.kind = ValueKind::kInt;
    x.i = v;
    return x;
  }
  static Value Double(double v) {
    Value x;
    x.kind = ValueKind::kDouble;
    x.d = v;
    return x;
  }
  static Value Str(StrId v) {
    Value x;
    x.kind = ValueKind::kString;
    x.str = v;
    return x;
  }
  static Value Untyped(StrId v) {
    Value x;
    x.kind = ValueKind::kUntyped;
    x.str = v;
    return x;
  }
  static Value Bool(bool v) {
    Value x;
    x.kind = ValueKind::kBool;
    x.b = v;
    return x;
  }
  static Value Node(uint64_t v) {
    Value x;
    x.kind = ValueKind::kNode;
    x.node = v;
    return x;
  }

  // Bit-exact identity (used for hashing plans and grouping), not XQuery
  // value equality — that lives in engine/value.h.
  bool operator==(const Value& other) const {
    if (kind != other.kind) return false;
    switch (kind) {
      case ValueKind::kInt:
        return i == other.i;
      case ValueKind::kDouble:
        return d == other.d;
      case ValueKind::kString:
      case ValueKind::kUntyped:
        return str == other.str;
      case ValueKind::kBool:
        return b == other.b;
      case ValueKind::kNode:
        return node == other.node;
    }
    return false;
  }

  uint64_t Hash() const {
    uint64_t h = static_cast<uint64_t>(kind) * 0x9e3779b97f4a7c15ull;
    uint64_t payload;
    switch (kind) {
      case ValueKind::kDouble:
        payload = std::hash<double>{}(d);
        break;
      case ValueKind::kBool:
        payload = b ? 1 : 0;
        break;
      case ValueKind::kString:
      case ValueKind::kUntyped:
        payload = str;
        break;
      default:
        payload = static_cast<uint64_t>(i);
    }
    h ^= payload + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  }
};

}  // namespace exrquy

#endif  // EXRQUY_COMMON_VALUE_H_
