// Graphviz DOT rendering of plan DAGs (for documentation and debugging;
// the paper's Figures 6, 9 and 10 are plan DAGs of this shape).
#ifndef EXRQUY_ALGEBRA_DOT_H_
#define EXRQUY_ALGEBRA_DOT_H_

#include <map>
#include <string>
#include <vector>

#include "algebra/algebra.h"

namespace exrquy {

// One-line human-readable description of an operator, e.g.
// "RowNum pos:<item>|iter" or "Step child::site".
std::string OpToString(const Dag& dag, OpId id, const StrPool& strings);

// The sub-DAG rooted at `root` as a DOT digraph.
std::string PlanToDot(const Dag& dag, OpId root, const StrPool& strings);

// Same, with extra per-operator label lines (e.g. the order-provenance
// reasons of opt/analyses.h ProvenanceAnnotations). Keeping the
// parameter a plain map keeps this layer independent of the analyses.
std::string PlanToDot(const Dag& dag, OpId root, const StrPool& strings,
                      const std::map<OpId, std::vector<std::string>>& annotations);

// Indented textual plan tree (EXPLAIN-style). Shared sub-plans are
// printed once and referenced as "^<id>" afterwards.
std::string PlanToText(const Dag& dag, OpId root, const StrPool& strings);

}  // namespace exrquy

#endif  // EXRQUY_ALGEBRA_DOT_H_
