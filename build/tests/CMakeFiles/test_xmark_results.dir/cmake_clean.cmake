file(REMOVE_RECURSE
  "CMakeFiles/test_xmark_results.dir/test_xmark_results.cc.o"
  "CMakeFiles/test_xmark_results.dir/test_xmark_results.cc.o.d"
  "test_xmark_results"
  "test_xmark_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xmark_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
