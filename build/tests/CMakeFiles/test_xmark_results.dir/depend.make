# Empty dependencies file for test_xmark_results.
# This may be replaced when dependencies are built.
