# Empty compiler generated dependencies file for test_plan_shapes.
# This may be replaced when dependencies are built.
