// Morsel pipeline planning — the plan-time half of the engine's
// pipelined execution model (VXQuery/Hyper style, engine/eval.h).
//
// A *pipeline* is a maximal chain of non-blocking operators that the
// evaluator fuses into one scheduled unit: the chain's source rows are
// pulled in fixed-size morsels, each morsel flows through every stage
// without materializing the interior operators' tables, and the sink
// performs an ordered morsel merge (concatenation in morsel order) so
// the fused result is byte-identical to operator-at-a-time evaluation at
// every thread count and morsel size. Blocking operators — %, Distinct,
// Aggr, node constructors, the build side of a join — are pipeline
// breakers: they stay operator-at-a-time and bound every pipeline.
//
// Which operators may fuse, and where in a chain:
//
//   Project / Select / Fun    anywhere (head or interior); row-local
//   Union                     head only (the morsel domain is the
//                             concatenation of both materialized inputs)
//   EquiJoin                  head only: the probe side is chosen at
//                             run time by input cardinality, so both
//                             inputs must be materialized before the
//                             morsel domain is even known
//   ThetaJoin                 head or interior via its LEFT input (the
//                             kernel is left-probe/left-major; the right
//                             input is always materialized)
//   Step                      sink only: its output is the globally
//                             sorted duplicate-free (iter, node) set, so
//                             the sink merge re-sorts and dedups
//   RowId                     sink only: the ids are positions in the
//                             merged output, assigned at merge time
//
// An interior stage must have exactly one consumer in the evaluated
// sub-DAG (its table is never materialized, so nothing else may read
// it), and the root is never interior. Everything else runs standalone,
// exactly as before.
//
// Like every other optimizer claim in this codebase, the plan is not
// trusted: AuditMorselPlan re-derives each fusability condition
// independently and the evaluator refuses to run a plan that fails the
// audit (diagnostics follow the plan verifier's format).
#ifndef EXRQUY_OPT_MORSEL_PLAN_H_
#define EXRQUY_OPT_MORSEL_PLAN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "algebra/algebra.h"
#include "common/status.h"

namespace exrquy {

struct PipelineStage {
  OpId op = kNoOp;
  // Index into Op::children of the input that arrives morsel-by-morsel
  // from the previous stage; -1 for the head stage (all of whose inputs
  // are materialized tables).
  int pipe_child = -1;
};

struct Pipeline {
  // Bottom-up chain, ascending op id; front() is the head (the stage
  // that defines the morsel domain), back() is the sink (the only stage
  // whose table materializes).
  std::vector<PipelineStage> stages;

  OpId head() const { return stages.front().op; }
  OpId sink() const { return stages.back().op; }
};

struct MorselPlan {
  std::vector<Pipeline> pipelines;
  // Stage op -> index into `pipelines`, for every fused op (head,
  // interior, and sink). Ops absent here run standalone.
  std::unordered_map<OpId, uint32_t> pipeline_of;

  bool fused(OpId id) const { return pipeline_of.count(id) != 0; }
  // True when `id` is a non-sink stage of some pipeline (its table is
  // never materialized).
  bool interior(OpId id) const {
    auto it = pipeline_of.find(id);
    return it != pipeline_of.end() && pipelines[it->second].sink() != id;
  }
  bool sink(OpId id) const {
    auto it = pipeline_of.find(id);
    return it != pipeline_of.end() && pipelines[it->second].sink() == id;
  }
};

// Identifies maximal fusable chains over the sub-DAG reachable from
// `root` (`order` as returned by Dag::ReachableFrom). Chains of fewer
// than two stages are not worth a pipeline and stay standalone. Pure
// analysis: the DAG is not modified.
MorselPlan PlanPipelines(const Dag& dag, const std::vector<OpId>& order,
                         OpId root);

// Independently re-derives every condition a pipeline relies on —
// stage kinds and positions, the unique-consumer property of interior
// stages, materialized externals, root never interior — directly from
// the DAG, sharing no state with PlanPipelines. Diagnostics:
//   morsel plan: [<invariant>] op <id> (<OpKind>): <detail>
Status AuditMorselPlan(const Dag& dag, const std::vector<OpId>& order,
                       OpId root, const MorselPlan& plan);

}  // namespace exrquy

#endif  // EXRQUY_OPT_MORSEL_PLAN_H_
