# Empty dependencies file for bench_ablation_rewrites.
# This may be replaced when dependencies are built.
