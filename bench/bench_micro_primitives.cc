// Micro-benchmarks (google-benchmark) for the cost asymmetry the paper's
// rewrites exploit:
//
//  * % (RowNum, a blocking sort) vs # (RowId, a free numbering) on tables
//    of growing size — the primitive-level version of Figures 6/9;
//  * the merged descendant::nt step vs the two-step
//    descendant-or-self::node()/child::nt evaluation — the source of the
//    exceptional Q6/Q7 speedups.
#include <benchmark/benchmark.h>

#include "algebra/algebra.h"
#include "api/session.h"
#include "engine/eval.h"
#include "xmark/generator.h"

namespace exrquy {
namespace {

// Builds a (iter, pos, item) literal table with `n` rows in shuffled
// order so the sort has real work to do.
OpId ShuffledTable(Dag* dag, int64_t n) {
  LitTable t;
  t.cols = {col::iter(), col::pos(), col::item()};
  uint64_t x = 88172645463325252ull;
  for (int64_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    t.rows.push_back({Value::Int(1), Value::Int(i + 1),
                      Value::Int(static_cast<int64_t>(x % (2 * n)))});
  }
  return dag->Lit(std::move(t));
}

void BM_RowNumSort(benchmark::State& state) {
  StrPool strings;
  NodeStore store(&strings);
  Dag dag;
  OpId lit = ShuffledTable(&dag, state.range(0));
  OpId rn = dag.RowNum(lit, ColSym("rank"), {{col::item(), false}},
                       col::iter());
  for (auto _ : state) {
    EvalContext ctx;
    ctx.store = &store;
    ctx.strings = &strings;
    Evaluator ev(dag, &ctx);
    auto r = ev.Eval(rn);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RowNumSort)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_RowIdFree(benchmark::State& state) {
  StrPool strings;
  NodeStore store(&strings);
  Dag dag;
  OpId lit = ShuffledTable(&dag, state.range(0));
  OpId ri = dag.RowId(lit, ColSym("rank"));
  for (auto _ : state) {
    EvalContext ctx;
    ctx.store = &store;
    ctx.strings = &strings;
    Evaluator ev(dag, &ctx);
    auto r = ev.Eval(ri);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RowIdFree)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

Session* XMarkSession() {
  static Session* session = [] {
    auto* s = new Session();
    XMarkOptions options;
    options.scale = 0.02;
    Status st = s->LoadDocument("auction.xml", GenerateXMark(options));
    EXRQUY_CHECK(st.ok());
    return s;
  }();
  return session;
}

void BM_TwoStepDescendant(benchmark::State& state) {
  // descendant-or-self::node()/child::item, as the ordered plans run it.
  QueryOptions options;
  options.enable_order_indifference = false;
  for (auto _ : state) {
    auto r = XMarkSession()->Execute(
        R"(count(doc("auction.xml")//item))", options);
    EXRQUY_CHECK(r.ok());
    benchmark::DoNotOptimize(r->items);
  }
}
BENCHMARK(BM_TwoStepDescendant);

void BM_MergedDescendant(benchmark::State& state) {
  // The merged descendant::item step with the tag-index fast path.
  QueryOptions options;
  options.default_ordering = OrderingMode::kUnordered;
  for (auto _ : state) {
    auto r = XMarkSession()->Execute(
        R"(count(doc("auction.xml")//item))", options);
    EXRQUY_CHECK(r.ok());
    benchmark::DoNotOptimize(r->items);
  }
}
BENCHMARK(BM_MergedDescendant);

}  // namespace
}  // namespace exrquy

BENCHMARK_MAIN();
