// A broad XQuery semantics battery run through the full pipeline,
// parameterized over the two experimental configurations in ordered mode
// (whose results must be identical). Covers FLWOR nesting, predicates,
// quantifiers, comparisons, arithmetic/atomization, string functions,
// constructors, set operations, axes, conditionals, ordering, and
// dynamic errors.
#include <gtest/gtest.h>

#include "api/session.h"

namespace exrquy {
namespace {

constexpr char kDoc[] = R"(
<library>
  <book id="b1" year="2003"><title>Staircase Join</title>
    <authors><author>Grust</author><author>van Keulen</author>
      <author>Teubner</author></authors>
    <price>12.50</price></book>
  <book id="b2" year="2004"><title>XQuery on SQL Hosts</title>
    <authors><author>Grust</author><author>Sakr</author>
      <author>Teubner</author></authors>
    <price>8.75</price></book>
  <book id="b3" year="2007"><title>eXrQuy</title>
    <authors><author>Grust</author><author>Rittinger</author>
      <author>Teubner</author></authors>
    <price>10</price></book>
  <journal id="j1"><title>VLDB Journal</title></journal>
</library>)";

// Param: exploit order indifference (in ordered mode) or not — results
// must be identical either way.
class SemanticsTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(session_.LoadDocument("lib.xml", kDoc).ok());
  }

  QueryOptions Opts() {
    QueryOptions o;
    o.enable_order_indifference = GetParam();
    o.default_ordering = OrderingMode::kOrdered;
    return o;
  }

  std::string Run(const std::string& query) {
    Result<QueryResult> r = session_.Execute(query, Opts());
    EXPECT_TRUE(r.ok()) << query << "\n  " << r.status().ToString();
    return r.ok() ? r->serialized : "<error>";
  }

  Status RunError(const std::string& query) {
    Result<QueryResult> r = session_.Execute(query, Opts());
    EXPECT_FALSE(r.ok()) << query;
    return r.ok() ? Status::Ok() : r.status();
  }

  Session session_;
};

TEST_P(SemanticsTest, NestedFlworWithLets) {
  EXPECT_EQ(Run(R"(
    for $b in doc("lib.xml")/library/book
    let $n := count($b/authors/author)
    let $t := $b/title/text()
    where $n >= 3
    return <r n="{ $n }">{ $t }</r>)"),
            "<r n=\"3\">Staircase Join</r>"
            "<r n=\"3\">XQuery on SQL Hosts</r>"
            "<r n=\"3\">eXrQuy</r>");
}

TEST_P(SemanticsTest, NestedForCrossProductOrder) {
  EXPECT_EQ(Run("for $x in (1,2) for $y in (10,20) return $x * $y"),
            "10 20 20 40");
}

TEST_P(SemanticsTest, LetBindsSequenceNotIteration) {
  EXPECT_EQ(Run("let $s := (1,2,3) return count($s)"), "3");
  EXPECT_EQ(Run("for $x in (1,2) let $s := ($x, $x) return count($s)"),
            "2 2");
}

TEST_P(SemanticsTest, PredicateBooleanWithPaths) {
  EXPECT_EQ(Run(R"(
    for $b in doc("lib.xml")/library/book[authors/author = "Sakr"]
    return $b/@id)"),
            "id=\"b2\"");
}

TEST_P(SemanticsTest, PredicatePositional) {
  EXPECT_EQ(Run(R"((doc("lib.xml")//author)[1]/text())"), "Grust");
  EXPECT_EQ(Run(R"((doc("lib.xml")//book)[last()]/title/text())"),
            "eXrQuy");
  EXPECT_EQ(Run(R"(doc("lib.xml")//book[2]/@id)"), "id=\"b2\"");
}

TEST_P(SemanticsTest, PredicateChained) {
  EXPECT_EQ(Run(R"(doc("lib.xml")//author[. = "Grust"][2]/../../@id)"),
            "id=\"b2\"");
}

TEST_P(SemanticsTest, PredicateComparingAttribute) {
  EXPECT_EQ(Run(R"(doc("lib.xml")//book[@year > 2003]/@id)"),
            "id=\"b2\" id=\"b3\"");
}

TEST_P(SemanticsTest, QuantifiersNested) {
  EXPECT_EQ(Run(R"(
    some $b in doc("lib.xml")//book satisfies
      every $a in $b/authors/author satisfies string-length($a) > 4)"),
            "true");
  EXPECT_EQ(Run(R"(
    every $b in doc("lib.xml")//book satisfies $b/price > 9)"), "false");
}

TEST_P(SemanticsTest, GeneralComparisonExistential) {
  EXPECT_EQ(Run(R"(doc("lib.xml")//price > 12)"), "true");
  EXPECT_EQ(Run(R"(doc("lib.xml")//price > 13)"), "false");
  EXPECT_EQ(Run("() = ()"), "false");
  EXPECT_EQ(Run("(1,2) != (1,2)"), "true");  // existential pairs
}

TEST_P(SemanticsTest, ArithmeticOnAtomizedNodes) {
  EXPECT_EQ(Run(R"(sum(doc("lib.xml")//price))"), "31.25");
  EXPECT_EQ(Run(R"(avg(doc("lib.xml")//price) * 3)"), "31.25");
  EXPECT_EQ(Run(R"(max(doc("lib.xml")//price))"), "12.5");
  EXPECT_EQ(Run(R"(min(doc("lib.xml")//price))"), "8.75");
}

TEST_P(SemanticsTest, EmptySequenceArithmetic) {
  EXPECT_EQ(Run(R"(doc("lib.xml")//journal/price * 2)"), "");
  EXPECT_EQ(Run("() + 1"), "");
}

TEST_P(SemanticsTest, StringFunctions) {
  EXPECT_EQ(Run(R"(contains("staircase", "stair"))"), "true");
  EXPECT_EQ(Run(R"(contains("abc", "x"))"), "false");
  EXPECT_EQ(Run(R"(concat("a", "b", 3))"), "ab3");
  EXPECT_EQ(Run(R"(string-length("hello"))"), "5");
  EXPECT_EQ(Run(R"(string(doc("lib.xml")//book[3]/price))"), "10");
  EXPECT_EQ(Run(R"(number("2.5") * 2)"), "5");
}

TEST_P(SemanticsTest, BooleanFunctions) {
  EXPECT_EQ(Run("not(1 = 2)"), "true");
  EXPECT_EQ(Run("boolean((0))"), "false");
  EXPECT_EQ(Run(R"(boolean(doc("lib.xml")//journal))"), "true");
  EXPECT_EQ(Run("true() and false()"), "false");
  EXPECT_EQ(Run("true() or false()"), "true");
}

TEST_P(SemanticsTest, DistinctValues) {
  Result<QueryResult> r = session_.Execute(
      R"(count(distinct-values(doc("lib.xml")//author)))", Opts());
  ASSERT_TRUE(r.ok());
  // Grust, van Keulen, Teubner, Sakr, Rittinger.
  EXPECT_EQ(r->serialized, "5");
}

TEST_P(SemanticsTest, DataAtomizes) {
  EXPECT_EQ(Run(R"(data(doc("lib.xml")//book[1]/@year) + 1)"), "2004");
}

TEST_P(SemanticsTest, SetOperations) {
  EXPECT_EQ(Run(R"(count(doc("lib.xml")//book | doc("lib.xml")//journal))"),
            "4");
  EXPECT_EQ(Run(R"(count(doc("lib.xml")//book | doc("lib.xml")//book))"),
            "3");
  EXPECT_EQ(Run(R"(count(doc("lib.xml")//* intersect doc("lib.xml")//book))"),
            "3");
  EXPECT_EQ(
      Run(R"(count(doc("lib.xml")/library/* except doc("lib.xml")//book))"),
      "1");
}

TEST_P(SemanticsTest, AxesBeyondChildDescendant) {
  EXPECT_EQ(Run(R"(count(doc("lib.xml")//author/parent::authors))"), "3");
  EXPECT_EQ(
      Run(R"(count((doc("lib.xml")//author)[1]/ancestor::*))"), "3");
  EXPECT_EQ(
      Run(R"(doc("lib.xml")//book[1]/following-sibling::book[1]/@id)"),
      "id=\"b2\"");
  EXPECT_EQ(Run(R"(doc("lib.xml")//journal/preceding-sibling::book[1]/@id)"),
            "id=\"b1\"");
  EXPECT_EQ(Run(R"(count(doc("lib.xml")//journal/preceding::author))"), "9");
  EXPECT_EQ(Run(R"(count(doc("lib.xml")//book[3]/following::*))"), "2");
  EXPECT_EQ(Run(R"(count(doc("lib.xml")//price/self::price))"), "3");
}

TEST_P(SemanticsTest, ConditionalsInsideIteration) {
  EXPECT_EQ(Run(R"(
    for $b in doc("lib.xml")/library/book
    return if ($b/price > 10) then "pricey" else "fair")"),
            "pricey fair fair");
  EXPECT_EQ(Run("if (()) then 1 else 2"), "2");
}

TEST_P(SemanticsTest, ConstructorsNestedWithAttributes) {
  EXPECT_EQ(Run(R"(
    <shelf n="{ count(doc("lib.xml")//book) }">
      <top>{ doc("lib.xml")//book[1]/title/text() }</top>
    </shelf>)"),
            "<shelf n=\"3\"><top>Staircase Join</top></shelf>");
}

TEST_P(SemanticsTest, ConstructorCopiesSubtrees) {
  // The copied book keeps its structure; the original is unchanged.
  EXPECT_EQ(Run(R"(
    let $c := <copy>{ doc("lib.xml")//book[3] }</copy>
    return ($c/book/@id, count(doc("lib.xml")//book)))"),
            "id=\"b3\" 3");
}

TEST_P(SemanticsTest, ConstructorAtomicContentJoining) {
  EXPECT_EQ(Run("<e>{ 1, 2, \"x\" }</e>"), "<e>1 2 x</e>");
  EXPECT_EQ(Run("<e>a{ 1 }b</e>"), "<e>a1b</e>");
}

TEST_P(SemanticsTest, AttributeValueTemplates) {
  EXPECT_EQ(Run(R"(<e a="x{ 1 + 1 }y" b="{ (1,2,3) }"/>)"),
            "<e a=\"x2y\" b=\"1 2 3\"/>");
  EXPECT_EQ(Run(R"(<e empty="{ () }"/>)"), "<e empty=\"\"/>");
}

TEST_P(SemanticsTest, TextConstructor) {
  EXPECT_EQ(Run("<e>{ text { \"ab\" } }</e>"), "<e>ab</e>");
}

TEST_P(SemanticsTest, NodeIdentityAndOrder) {
  EXPECT_EQ(Run(R"(
    let $b := doc("lib.xml")//book[1]
    return ($b is $b, $b is doc("lib.xml")//book[1],
            $b << doc("lib.xml")//journal))"),
            "true true true");
  // Constructed nodes have fresh identity.
  EXPECT_EQ(Run("let $a := <x/> let $b := <x/> return $a is $b"), "false");
  EXPECT_EQ(Run("let $a := <x/> return $a is $a"), "true");
}

TEST_P(SemanticsTest, OrderByVariants) {
  EXPECT_EQ(Run(R"(
    for $b in doc("lib.xml")/library/book
    order by number($b/price) return $b/@id)"),
            "id=\"b2\" id=\"b3\" id=\"b1\"");
  EXPECT_EQ(Run(R"(
    for $b in doc("lib.xml")/library/book
    order by number($b/price) descending return $b/@id)"),
            "id=\"b1\" id=\"b3\" id=\"b2\"");
  // String keys sort lexicographically.
  EXPECT_EQ(Run(R"(
    for $b in doc("lib.xml")/library/book
    order by $b/title return ($b/title/text())[1])"),
            "Staircase Join XQuery on SQL Hosts eXrQuy");
}

TEST_P(SemanticsTest, OrderByTwoKeys) {
  EXPECT_EQ(Run(R"(
    for $x in (3, 1, 2, 1)
    order by $x mod 2, $x return $x)"),
            "2 1 1 3");
}

TEST_P(SemanticsTest, UserFunctions) {
  EXPECT_EQ(Run(R"(
    declare function local:tax($p) { $p * 1.2 };
    sum(for $b in doc("lib.xml")//book return local:tax($b/price)))"),
            "37.5");
}

TEST_P(SemanticsTest, SequenceFlattening) {
  EXPECT_EQ(Run("((1, (2, 3)), 4)"), "1 2 3 4");
  EXPECT_EQ(Run("count(((1,2), (), (3)))"), "3");
}

TEST_P(SemanticsTest, DynamicErrors) {
  EXPECT_EQ(RunError("1 idiv 0").code(), StatusCode::kTypeError);
  EXPECT_EQ(RunError(R"("a" + 1)").code(), StatusCode::kTypeError);
  EXPECT_EQ(RunError(R"(number("nope") and true())").code(),
            StatusCode::kTypeError);
  EXPECT_EQ(RunError(R"(doc("unknown.xml"))").code(), StatusCode::kNotFound);
  EXPECT_EQ(RunError("(1)/a").code(), StatusCode::kTypeError);
  // EBV of a multi-item atomic sequence.
  EXPECT_EQ(RunError("if ((1,2)) then 1 else 2").code(),
            StatusCode::kTypeError);
}

TEST_P(SemanticsTest, WhereOverEmptyBindingYieldsEmpty) {
  EXPECT_EQ(Run("for $x in () where $x > 1 return $x"), "");
  EXPECT_EQ(Run("count(for $x in (1,2) where $x > 9 return $x)"), "0");
}

TEST_P(SemanticsTest, CountOnEmptyPerIteration) {
  EXPECT_EQ(Run(R"(
    for $b in doc("lib.xml")/library/*
    return count($b/authors/author))"),
            "3 3 3 0");
}

INSTANTIATE_TEST_SUITE_P(Configs, SemanticsTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "exploit" : "baseline";
                         });

}  // namespace
}  // namespace exrquy
