// String interning pool. Element/attribute names, text contents, and
// string items are stored once and referred to by dense 32-bit ids, which
// keeps the columnar engine's values fixed-width (MonetDB does the same
// with its string heaps).
//
// The pool is thread-safe: Intern serializes writers behind a mutex,
// while Get is wait-free — strings live in fixed-size chunks whose
// addresses never change, so concurrent growth cannot invalidate a
// reader. Parallel operator kernels hit Get on every string comparison,
// which is why it must not take the writers' lock.
#ifndef EXRQUY_COMMON_STR_POOL_H_
#define EXRQUY_COMMON_STR_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace exrquy {

using StrId = uint32_t;

class StrPool {
 public:
  StrPool();
  ~StrPool();

  StrPool(const StrPool&) = delete;
  StrPool& operator=(const StrPool&) = delete;

  // Interns `s`, returning its dense id. Identical strings share an id.
  // Safe to call from multiple threads; the id ordering between
  // concurrent first-time interns is unspecified (never observable in
  // results: all value comparisons go through string contents).
  StrId Intern(std::string_view s);

  // Returns the string for `id`. The reference is stable for the lifetime
  // of the pool. Wait-free; safe concurrently with Intern.
  const std::string& Get(StrId id) const;

  // Id of the empty string (always 0).
  static constexpr StrId kEmpty = 0;

  size_t size() const { return size_.load(std::memory_order_acquire); }

 private:
  static constexpr size_t kChunkShift = 12;
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;  // 4096
  static constexpr size_t kMaxChunks = size_t{1} << 14;  // 64M strings

  // chunks_[c] is null until the pool grows into chunk c, then an
  // immovable array of kChunkSize strings.
  std::unique_ptr<std::atomic<std::string*>[]> chunks_;
  std::atomic<size_t> size_{0};

  std::mutex mu_;  // guards index_ and growth
  std::unordered_map<std::string_view, StrId> index_;
};

}  // namespace exrquy

#endif  // EXRQUY_COMMON_STR_POOL_H_
