// Query-service cache experiment over the 20-query XMark mix: every
// query executed through the concurrent QueryService (api/service.h)
// with cold caches, a warm plan cache, and a warm result cache, median
// wall clock each, dumped as a table and as BENCH_service.json:
//
//   { "bench": "service_cache",
//     "scale": s, "doc_bytes": N, "workers": W,
//     "queries": [ {"name": "Q1", "cold_ms": t, "warm_plan_ms": t,
//                   "warm_result_ms": t}, ... ],
//     "plan_cache":   {"hits": h, "misses": m},
//     "result_cache": {"hits": h, "misses": m, "evictions": e,
//                      "bytes": b},
//     "geomean_plan_speedup": x, "geomean_result_speedup": x }
//
// cold_ms measures the full pipeline (compile + execute); warm_plan_ms
// the plan-cache hit path (execute only — compile_ms is exactly 0);
// warm_result_ms the result-cache hit path (serialized bytes only).
// Every warm run re-checks byte-identity against its cold run: a cache
// that changed the answer would be no cache at all.
//
// EXRQUY_BENCH_SCALE overrides the document scale factor;
// EXRQUY_BENCH_WORKERS the service's worker-slot count (default 4).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "api/service.h"
#include "bench/bench_util.h"

namespace exrquy {
namespace {

// Median total wall clock (compile + execute) over `runs` calls.
double MedianTotalMs(QueryService* service, const std::string& query,
                     const QueryOptions& options, int runs,
                     ServiceResult* out) {
  std::vector<double> times;
  for (int i = 0; i < runs; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    Result<ServiceResult> r = service->Execute(query, options);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   r.status().ToString().c_str());
      return -1;
    }
    times.push_back(ms);
    if (out != nullptr && i == 0) *out = std::move(r).value();
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

void Run() {
  double scale = bench::EnvScale("EXRQUY_BENCH_SCALE", 0.016);
  size_t workers =
      static_cast<size_t>(bench::EnvScale("EXRQUY_BENCH_WORKERS", 4));
  XMarkOptions xmark;
  xmark.scale = scale;
  std::string xml = GenerateXMark(xmark);

  std::printf(
      "Service cache — XMark, %.3f scale (%zu KB), %zu worker(s)\n\n",
      scale, xml.size() / 1024, workers);
  std::printf("%-6s  %10s  %13s  %15s\n", "query", "cold ms",
              "warm plan ms", "warm result ms");

  struct Row {
    std::string name;
    double cold_ms;
    double warm_plan_ms;
    double warm_result_ms;
  };
  std::vector<Row> rows;
  double log_plan = 0;
  double log_result = 0;

  // Cold / warm-plan pass: plan cache only, so every Execute runs the
  // engine. The first call per query compiles; the rest hit the plan
  // cache.
  ServiceConfig plan_only;
  plan_only.workers = workers;
  plan_only.plan_cache = 1;
  plan_only.result_cache_bytes = 0;
  QueryService plan_service(plan_only);
  if (!plan_service.LoadDocument("auction.xml", xml).ok()) {
    std::fprintf(stderr, "load failed\n");
    std::exit(1);
  }

  // Result pass: both caches armed.
  ServiceConfig full;
  full.workers = workers;
  full.plan_cache = 1;
  full.result_cache_bytes = size_t{64} << 20;
  QueryService result_service(full);
  if (!result_service.LoadDocument("auction.xml", xml).ok()) {
    std::fprintf(stderr, "load failed\n");
    std::exit(1);
  }

  for (const XMarkQuery& query : XMarkQueries()) {
    ServiceResult cold;
    double cold_ms =
        MedianTotalMs(&plan_service, query.text, {}, 1, &cold);
    ServiceResult warm_plan;
    double warm_plan_ms =
        MedianTotalMs(&plan_service, query.text, {}, 5, &warm_plan);
    ServiceResult prime;
    if (MedianTotalMs(&result_service, query.text, {}, 1, &prime) < 0) {
      std::exit(1);
    }
    ServiceResult warm_result;
    double warm_result_ms =
        MedianTotalMs(&result_service, query.text, {}, 5, &warm_result);
    if (cold_ms < 0 || warm_plan_ms < 0 || warm_result_ms < 0) {
      std::exit(1);
    }
    if (!warm_plan.plan_cache_hit || warm_plan.result.compile_ms != 0) {
      std::fprintf(stderr, "%s: warm run did not hit the plan cache\n",
                   query.name.c_str());
      std::exit(1);
    }
    if (warm_plan.result.serialized != cold.result.serialized ||
        warm_result.result.serialized != cold.result.serialized) {
      std::fprintf(stderr, "%s: cached bytes diverge from cold bytes\n",
                   query.name.c_str());
      std::exit(1);
    }
    std::printf("%-6s  %10.2f  %13.2f  %15.3f\n", query.name.c_str(),
                cold_ms, warm_plan_ms, warm_result_ms);
    log_plan += std::log(cold_ms / std::max(warm_plan_ms, 1e-3));
    log_result += std::log(cold_ms / std::max(warm_result_ms, 1e-3));
    rows.push_back(Row{query.name, cold_ms, warm_plan_ms, warm_result_ms});
  }

  double geo_plan = std::exp(log_plan / rows.size());
  double geo_result = std::exp(log_result / rows.size());
  ServiceCounters plan_c = plan_service.counters();
  ServiceCounters result_c = result_service.counters();
  std::printf("\ngeomean speedup: plan cache %.2fx, result cache %.2fx\n",
              geo_plan, geo_result);
  std::printf("plan cache %llu/%llu hits, result cache %llu/%llu hits\n",
              static_cast<unsigned long long>(plan_c.plan_cache.hits),
              static_cast<unsigned long long>(plan_c.plan_cache.hits +
                                              plan_c.plan_cache.misses),
              static_cast<unsigned long long>(result_c.result_cache.hits),
              static_cast<unsigned long long>(result_c.result_cache.hits +
                                              result_c.result_cache.misses));

  std::FILE* out = std::fopen("BENCH_service.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_service.json\n");
    std::exit(1);
  }
  std::fprintf(out,
               "{\n  \"bench\": \"service_cache\",\n"
               "  \"scale\": %.4f,\n  \"doc_bytes\": %zu,\n"
               "  \"workers\": %zu,\n  \"queries\": [\n",
               scale, xml.size(), workers);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"cold_ms\": %.3f, "
                 "\"warm_plan_ms\": %.3f, \"warm_result_ms\": %.3f}%s\n",
                 rows[i].name.c_str(), rows[i].cold_ms,
                 rows[i].warm_plan_ms, rows[i].warm_result_ms,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"plan_cache\": {\"hits\": %llu, \"misses\": %llu},\n"
               "  \"result_cache\": {\"hits\": %llu, \"misses\": %llu, "
               "\"evictions\": %llu, \"bytes\": %zu},\n"
               "  \"geomean_plan_speedup\": %.3f,\n"
               "  \"geomean_result_speedup\": %.3f\n}\n",
               static_cast<unsigned long long>(plan_c.plan_cache.hits),
               static_cast<unsigned long long>(plan_c.plan_cache.misses),
               static_cast<unsigned long long>(result_c.result_cache.hits),
               static_cast<unsigned long long>(result_c.result_cache.misses),
               static_cast<unsigned long long>(
                   result_c.result_cache.evictions),
               result_c.result_cache.bytes, geo_plan, geo_result);
  std::fclose(out);
  std::printf("wrote BENCH_service.json\n");
}

}  // namespace
}  // namespace exrquy

int main() {
  exrquy::Run();
  return 0;
}
