# Empty dependencies file for exrquy_common.
# This may be replaced when dependencies are built.
