// XQuery value semantics over the fixed-width Value type: atomization,
// casts, arithmetic, general-comparison dynamics, effective boolean value
// of single items, the total sort order used by the % primitive, and the
// string rendering used by serialization.
#ifndef EXRQUY_ENGINE_VALUE_H_
#define EXRQUY_ENGINE_VALUE_H_

#include <string>

#include "algebra/algebra.h"
#include "common/status.h"
#include "common/value.h"
#include "xml/node_store.h"

namespace exrquy {

class ValueOps {
 public:
  ValueOps(StrPool* strings, NodeStore* store)
      : strings_(strings), store_(store) {}

  // Node -> xs:untypedAtomic (string-value); atomics unchanged.
  Value Atomize(Value v) const;

  // fn:number / xs:double cast. Errors on non-numeric strings.
  Result<Value> ToDouble(Value v) const;

  // xs:string cast of an atomic (nodes must be atomized first).
  Result<Value> ToString(Value v) const;

  // Arithmetic (operands are atomics; untyped casts to double).
  Result<Value> Arith(FunKind op, Value a, Value b) const;

  // Comparison with the general-comparison casting rules: untyped casts
  // to double against numbers and compares as string otherwise.
  Result<Value> Compare(FunKind op, Value a, Value b) const;

  // Effective boolean value of a single item.
  bool EbvSingle(Value v) const;

  // Total order used by RowNum sort criteria: numeric < string < boolean
  // < node; numerics by value, strings lexicographically, nodes by
  // preorder rank (document order). Returns <0, 0, >0.
  int OrderCompare(const Value& a, const Value& b) const;

  // The string a value serializes as.
  std::string Render(Value v) const;

  StrPool& strings() const { return *strings_; }
  NodeStore& store() const { return *store_; }

 private:
  StrPool* strings_;
  NodeStore* store_;
};

// Formats a double the way XQuery serializes xs:double values that have
// integral magnitude (no trailing ".000000").
std::string FormatDouble(double v);

}  // namespace exrquy

#endif  // EXRQUY_ENGINE_VALUE_H_
