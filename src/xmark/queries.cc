#include "xmark/queries.h"

namespace exrquy {

// Adaptations relative to the original XMark formulations:
//  * person/item id constants are scaled down (the generator produces
//    smaller instances),
//  * Q18's user-defined function is kept (the normalizer inlines it),
//  * Q19 orders by zero-or-one($b/location) exactly as the original,
//  * no other structural changes.
const std::vector<XMarkQuery>& XMarkQueries() {
  static const std::vector<XMarkQuery>* queries = new std::vector<XMarkQuery>{
      {"Q1",
       R"(for $b in doc("auction.xml")/site/people/person[@id = "person0"]
return $b/name/text())"},

      {"Q2",
       R"(for $b in doc("auction.xml")/site/open_auctions/open_auction
return <increase>{ $b/bidder[1]/increase/text() }</increase>)"},

      {"Q3",
       R"(for $b in doc("auction.xml")/site/open_auctions/open_auction
where zero-or-one($b/bidder[1]/increase/text()) * 2
      <= $b/bidder[last()]/increase/text()
return <increase first="{ $b/bidder[1]/increase/text() }"
                 last="{ $b/bidder[last()]/increase/text() }"/>)"},

      {"Q4",
       R"(for $b in doc("auction.xml")/site/open_auctions/open_auction
where some $pr1 in $b/bidder/personref[@person = "person3"],
           $pr2 in $b/bidder/personref[@person = "person7"]
      satisfies $pr1 << $pr2
return <history>{ $b/reserve/text() }</history>)"},

      {"Q5",
       R"(count(for $i in doc("auction.xml")/site/closed_auctions/closed_auction
      where $i/price/text() >= 40
      return $i/price))"},

      {"Q6",
       R"(for $b in doc("auction.xml")/site/regions
return count($b//item))"},

      {"Q7",
       R"(for $p in doc("auction.xml")/site
return count($p//description) + count($p//annotation)
       + count($p//emailaddress))"},

      {"Q8",
       R"(for $p in doc("auction.xml")/site/people/person
let $a := for $t in doc("auction.xml")/site/closed_auctions/closed_auction
          where $t/buyer/@person = $p/@id
          return $t
return <item person="{ $p/name/text() }">{ count($a) }</item>)"},

      {"Q9",
       R"(let $auction := doc("auction.xml")
for $p in $auction/site/people/person
let $a := for $t in $auction/site/closed_auctions/closed_auction
          let $n := for $t2 in $auction/site/regions/europe/item
                    where $t/itemref/@item = $t2/@id
                    return $t2
          where $p/@id = $t/buyer/@person
          return <item>{ $n/name/text() }</item>
return <person name="{ $p/name/text() }">{ $a }</person>)"},

      {"Q10",
       R"(for $i in distinct-values(
    doc("auction.xml")/site/people/person/profile/interest/@category)
let $p := for $t in doc("auction.xml")/site/people/person
          where $t/profile/interest/@category = $i
          return <personne>
                   <statistiques>
                     <sexe>{ $t/profile/gender/text() }</sexe>
                     <age>{ $t/profile/age/text() }</age>
                     <education>{ $t/profile/education/text() }</education>
                     <revenu>{ fn:data($t/profile/@income) }</revenu>
                   </statistiques>
                   <coordonnees>
                     <nom>{ $t/name/text() }</nom>
                     <rue>{ $t/address/street/text() }</rue>
                     <ville>{ $t/address/city/text() }</ville>
                     <pays>{ $t/address/country/text() }</pays>
                     <reseau>
                       <courrier>{ $t/emailaddress/text() }</courrier>
                       <pagePerso>{ $t/homepage/text() }</pagePerso>
                     </reseau>
                   </coordonnees>
                   <cartePaiement>{ $t/creditcard/text() }</cartePaiement>
                 </personne>
return <categorie>{ <id>{ $i }</id>, $p }</categorie>)"},

      {"Q11",
       R"(let $auction := doc("auction.xml")
for $p in $auction/site/people/person
let $l := for $i in $auction/site/open_auctions/open_auction/initial
          where $p/profile/@income > 5000 * $i
          return $i
return <items name="{ $p/name }">{ fn:count($l) }</items>)"},

      {"Q12",
       R"(for $p in doc("auction.xml")/site/people/person
let $l := for $i in doc("auction.xml")/site/open_auctions/open_auction/initial
          where $p/profile/@income > 5000 * exactly-one($i/text())
          return $i
where $p/profile/@income > 50000
return <items person="{ $p/profile/@income }">{ count($l) }</items>)"},

      {"Q13",
       R"(for $i in doc("auction.xml")/site/regions/australia/item
return <item name="{ $i/name/text() }">{ $i/description }</item>)"},

      {"Q14",
       R"(for $i in doc("auction.xml")/site//item
where contains(string(exactly-one($i/description)), "gold")
return $i/name/text())"},

      {"Q15",
       R"(for $a in doc("auction.xml")/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()
return <text>{ $a }</text>)"},

      {"Q16",
       R"(for $a in doc("auction.xml")/site/closed_auctions/closed_auction
where not(empty($a/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()))
return <person id="{ $a/seller/@person }"/>)"},

      {"Q17",
       R"(for $p in doc("auction.xml")/site/people/person
where empty($p/homepage/text())
return <person name="{ $p/name/text() }"/>)"},

      {"Q18",
       R"(declare function local:convert($v) { 2.20371 * $v };
for $i in doc("auction.xml")/site/open_auctions/open_auction
return local:convert(zero-or-one($i/reserve/text())))"},

      {"Q19",
       R"(for $b in doc("auction.xml")/site/regions//item
let $k := $b/name/text()
order by zero-or-one($b/location) ascending
return <item name="{ $k }">{ $b/location/text() }</item>)"},

      {"Q20",
       R"(<result>
  <preferred>{
    count(doc("auction.xml")/site/people/person/profile[@income >= 100000])
  }</preferred>
  <standard>{
    count(doc("auction.xml")/site/people/person/profile[
        @income < 100000 and @income >= 30000])
  }</standard>
  <challenge>{
    count(doc("auction.xml")/site/people/person/profile[@income < 30000])
  }</challenge>
  <na>{
    count(for $p in doc("auction.xml")/site/people/person
          where empty($p/profile/@income)
          return $p)
  }</na>
</result>)"},
  };
  return *queries;
}

const std::string& XMarkQueryText(const std::string& name) {
  static const std::string* empty = new std::string();
  for (const XMarkQuery& q : XMarkQueries()) {
    if (q.name == name) return q.text;
  }
  return *empty;
}

}  // namespace exrquy
