// Sharded LRU cache with byte-budget eviction — the storage layer behind
// the query service's plan and result caches (api/service.h).
//
// Design notes:
//
//  * Keys hash to one of `num_shards` shards; each shard is an
//    independent mutex + hash map + intrusive LRU list, so concurrent
//    lookups of different keys rarely contend. Recency is therefore
//    per-shard (a strictly global LRU order would serialize every Get
//    behind one lock, which defeats the point of a cache on the hot
//    path).
//  * The byte budget is split evenly across shards and enforced at
//    insertion: a Put that pushes its shard over budget evicts from that
//    shard's cold end until it fits. An entry larger than a whole
//    shard's budget is refused outright (recorded as an eviction) —
//    admitting it would immediately flush the shard for a value that can
//    never be resident.
//  * Charged bytes flow through an optional MemoryBudget accountant
//    (common/governor.h): Put charges, eviction/Clear release. The
//    accountant observes — peak and charged numbers for profiles — but
//    never vetoes; budget_bytes is the enforcement mechanism.
//  * Values are shared_ptr<const V>: a Get result stays valid after the
//    entry is evicted, so readers never hold shard locks while using a
//    value.
//  * budget_bytes == 0 means "no byte limit" (used by the plan cache,
//    whose entries are small and whose population is bounded by the
//    distinct query mix); max_entries still caps runaway growth.
#ifndef EXRQUY_COMMON_CACHE_H_
#define EXRQUY_COMMON_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/governor.h"

namespace exrquy {

// Point-in-time cache observability (hit/miss/insert/evict counters are
// monotonic; entries/bytes are the current residency). Value-type
// independent so callers can report stats without naming the cache's
// instantiation.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;  // includes oversize refusals
  size_t entries = 0;
  size_t bytes = 0;
};

template <typename V>
class ShardedLruCache {
 public:
  using Stats = CacheStats;

  // `accountant` (optional) is charged/released as entries come and go;
  // it must outlive the cache.
  explicit ShardedLruCache(size_t budget_bytes,
                           MemoryBudget* accountant = nullptr,
                           size_t num_shards = 8, size_t max_entries = 65536)
      : budget_bytes_(budget_bytes),
        accountant_(accountant),
        shards_(num_shards == 0 ? 1 : num_shards) {
    EXRQUY_CHECK(max_entries > 0);
    shard_budget_ = budget_bytes_ == 0 ? 0 : budget_bytes_ / shards_.size();
    if (budget_bytes_ != 0 && shard_budget_ == 0) shard_budget_ = 1;
    shard_max_entries_ = max_entries / shards_.size();
    if (shard_max_entries_ == 0) shard_max_entries_ = 1;
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  ~ShardedLruCache() { Clear(); }

  // Returns the cached value and refreshes its recency, or nullptr.
  std::shared_ptr<const V> Get(const std::string& key) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second.lru_it);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second.value;
  }

  // Inserts (or replaces) `key`, charging `bytes` against the budget and
  // evicting cold entries from the key's shard until it fits. Returns
  // false when the value is larger than a whole shard's budget and was
  // refused.
  bool Put(const std::string& key, std::shared_ptr<const V> value,
           size_t bytes) {
    Shard& s = ShardFor(key);
    size_t released = 0;
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(s.mu);
      if (shard_budget_ != 0 && bytes > shard_budget_) {
        evictions_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      auto it = s.map.find(key);
      if (it != s.map.end()) {
        released += it->second.bytes;
        s.bytes -= it->second.bytes;
        s.lru.erase(it->second.lru_it);
        s.map.erase(it);
      }
      while ((shard_budget_ != 0 && s.bytes + bytes > shard_budget_) ||
             s.map.size() >= shard_max_entries_) {
        if (s.lru.empty()) break;
        released += EvictColdest(&s);
      }
      s.lru.push_front(key);
      s.map.emplace(key,
                    Entry{std::move(value), bytes, s.lru.begin()});
      s.bytes += bytes;
      admitted = true;
      insertions_.fetch_add(1, std::memory_order_relaxed);
    }
    if (accountant_ != nullptr) {
      if (admitted) accountant_->Charge(bytes);
      if (released != 0) accountant_->Release(released);
    }
    return admitted;
  }

  // Drops every entry (all shards), releasing their bytes. Used when a
  // document load bumps the store version: stale entries would never be
  // hit again (the version is part of every key), but their bytes should
  // not sit around waiting for eviction.
  void Clear() {
    size_t released = 0;
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      released += s.bytes;
      s.map.clear();
      s.lru.clear();
      s.bytes = 0;
    }
    if (accountant_ != nullptr && released != 0) {
      accountant_->Release(released);
    }
  }

  Stats stats() const {
    Stats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.insertions = insertions_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      out.entries += s.map.size();
      out.bytes += s.bytes;
    }
    return out;
  }

  size_t budget_bytes() const { return budget_bytes_; }

 private:
  struct Entry {
    std::shared_ptr<const V> value;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> map;
    std::list<std::string> lru;  // front = most recently used
    size_t bytes = 0;
  };

  Shard& ShardFor(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  // Caller holds s->mu. Returns the evicted entry's bytes.
  size_t EvictColdest(Shard* s) {
    const std::string& victim = s->lru.back();
    auto it = s->map.find(victim);
    EXRQUY_DCHECK(it != s->map.end());
    size_t bytes = it->second.bytes;
    s->bytes -= bytes;
    s->map.erase(it);
    s->lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    return bytes;
  }

  size_t budget_bytes_;
  size_t shard_budget_ = 0;       // 0 = unlimited bytes
  size_t shard_max_entries_ = 0;  // always > 0
  MemoryBudget* accountant_;
  std::vector<Shard> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace exrquy

#endif  // EXRQUY_COMMON_CACHE_H_
