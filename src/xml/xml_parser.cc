#include "xml/xml_parser.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>

namespace exrquy {
namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':' || c == '-' || c == '.';
}

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

// XML 1.0 Char production: #x9 | #xA | #xD | [#x20-#xD7FF] |
// [#xE000-#xFFFD] | [#x10000-#x10FFFF].
bool IsXmlChar(long cp) {
  return cp == 0x9 || cp == 0xA || cp == 0xD ||
         (cp >= 0x20 && cp <= 0xD7FF) || (cp >= 0xE000 && cp <= 0xFFFD) ||
         (cp >= 0x10000 && cp <= 0x10FFFF);
}

// Appends a valid code point UTF-8 encoded (callers check IsXmlChar).
void AppendUtf8(long cp, std::string* out) {
  if (cp < 0x80) {
    *out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    *out += static_cast<char>(0xC0 | (cp >> 6));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    *out += static_cast<char>(0xE0 | (cp >> 12));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    *out += static_cast<char>(0xF0 | (cp >> 18));
    *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

class Parser {
 public:
  Parser(NodeStore* store, std::string_view text,
         const XmlParseOptions& options)
      : builder_(store), text_(text), options_(options) {}

  Result<NodeIdx> Run() {
    builder_.BeginDocument();
    SkipProlog();
    EXRQUY_RETURN_IF_ERROR(ParseElement());
    SkipMisc();
    if (pos_ != text_.size()) {
      return Error("trailing content after document element");
    }
    builder_.EndDocument();
    return builder_.Finish();
  }

 private:
  Status Error(std::string message) { return ErrorAt(std::move(message), pos_); }

  Status ErrorAt(std::string message, size_t offset) {
    message += " (offset ";
    message += std::to_string(offset);
    message += ")";
    return InvalidArgument(std::move(message));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Lookahead(std::string_view s) const {
    return text_.substr(pos_, s.size()) == s;
  }
  void SkipWs() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  void SkipProlog() {
    SkipWs();
    while (!AtEnd()) {
      if (Lookahead("<?")) {
        SkipUntil("?>");
      } else if (Lookahead("<!--")) {
        SkipUntil("-->");
      } else if (Lookahead("<!DOCTYPE")) {
        SkipUntil(">");
      } else {
        break;
      }
      SkipWs();
    }
  }

  void SkipMisc() {
    SkipWs();
    while (!AtEnd() && (Lookahead("<?") || Lookahead("<!--"))) {
      SkipUntil(Lookahead("<?") ? "?>" : "-->");
      SkipWs();
    }
  }

  void SkipUntil(std::string_view end) {
    size_t p = text_.find(end, pos_);
    pos_ = (p == std::string_view::npos) ? text_.size() : p + end.size();
  }

  Result<std::string_view> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) return Error("expected name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return text_.substr(start, pos_ - start);
  }

  // Decodes the five predefined entities and numeric character
  // references (decimal and hex), emitting UTF-8. Malformed references —
  // a bare '&', an unknown entity name, a charref that is empty, has
  // trailing garbage, or names a code point outside the XML Char
  // production — are rejected, per the well-formedness rules.
  // `base_offset` is the document offset of raw[0], for diagnostics.
  Result<std::string> DecodeText(std::string_view raw, size_t base_offset) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out += raw[i++];
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return ErrorAt("'&' must start an entity or character reference",
                       base_offset + i);
      }
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "lt") {
        out += '<';
      } else if (ent == "gt") {
        out += '>';
      } else if (ent == "amp") {
        out += '&';
      } else if (ent == "quot") {
        out += '"';
      } else if (ent == "apos") {
        out += '\'';
      } else if (!ent.empty() && ent[0] == '#') {
        bool hex = ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X');
        std::string digits(ent.substr(hex ? 2 : 1));
        if (digits.empty()) {
          return ErrorAt("empty character reference", base_offset + i);
        }
        errno = 0;
        char* end = nullptr;
        long code = std::strtol(digits.c_str(), &end, hex ? 16 : 10);
        if (errno == ERANGE || end != digits.c_str() + digits.size() ||
            !IsXmlChar(code)) {
          return ErrorAt("invalid character reference &" + std::string(ent) +
                             ";",
                         base_offset + i);
        }
        AppendUtf8(code, &out);
      } else {
        return ErrorAt("unknown entity &" + std::string(ent) + ";",
                       base_offset + i);
      }
      i = semi + 1;
    }
    return out;
  }

  Status ParseElement() {
    EXRQUY_DCHECK(Peek() == '<');
    if (depth_ >= options_.max_depth) {
      return Error("element nesting deeper than " +
                   std::to_string(options_.max_depth));
    }
    ++depth_;
    Status st = ParseElementInner();
    --depth_;
    return st;
  }

  Status ParseElementInner() {
    ++pos_;
    EXRQUY_ASSIGN_OR_RETURN(std::string_view name, ParseName());
    builder_.BeginElement(name);
    // Attributes.
    for (;;) {
      SkipWs();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>' || Lookahead("/>")) break;
      EXRQUY_ASSIGN_OR_RETURN(std::string_view attr_name, ParseName());
      SkipWs();
      if (AtEnd() || Peek() != '=') return Error("expected '='");
      ++pos_;
      SkipWs();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected quoted attribute value");
      }
      char quote = Peek();
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Error("unterminated attribute value");
      EXRQUY_ASSIGN_OR_RETURN(
          std::string value,
          DecodeText(text_.substr(start, pos_ - start), start));
      ++pos_;
      builder_.Attribute(attr_name, value);
    }
    if (Lookahead("/>")) {
      pos_ += 2;
      builder_.EndElement();
      return Status::Ok();
    }
    ++pos_;  // '>'
    // Content.
    for (;;) {
      size_t start = pos_;
      while (!AtEnd() && Peek() != '<') ++pos_;
      if (pos_ > start) {
        std::string_view raw = text_.substr(start, pos_ - start);
        if (!(options_.strip_whitespace && IsAllWhitespace(raw))) {
          EXRQUY_ASSIGN_OR_RETURN(std::string text, DecodeText(raw, start));
          builder_.Text(text);
        }
      }
      if (AtEnd()) return Error("unterminated element content");
      if (Lookahead("</")) {
        pos_ += 2;
        EXRQUY_ASSIGN_OR_RETURN(std::string_view end_name, ParseName());
        if (end_name != name) {
          return Error("mismatched end tag </" + std::string(end_name) + ">");
        }
        SkipWs();
        if (AtEnd() || Peek() != '>') return Error("expected '>'");
        ++pos_;
        builder_.EndElement();
        return Status::Ok();
      }
      if (Lookahead("<!--")) {
        SkipUntil("-->");
        continue;
      }
      if (Lookahead("<![CDATA[")) {
        pos_ += 9;
        size_t end = text_.find("]]>", pos_);
        if (end == std::string_view::npos) return Error("unterminated CDATA");
        builder_.Text(text_.substr(pos_, end - pos_));
        pos_ = end + 3;
        continue;
      }
      if (Lookahead("<?")) {
        SkipUntil("?>");
        continue;
      }
      EXRQUY_RETURN_IF_ERROR(ParseElement());
    }
  }

  NodeBuilder builder_;
  std::string_view text_;
  XmlParseOptions options_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

}  // namespace

Result<NodeIdx> ParseXml(NodeStore* store, std::string_view text,
                         const XmlParseOptions& options) {
  return Parser(store, text, options).Run();
}

}  // namespace exrquy
