// Overload resilience (api/admission.h + api/service.h): bounded
// admission with deadline-aware shedding, degraded-mode retry of
// transient failures, memory-pressure degradation, and the poison-query
// quarantine. The contract under test, from DESIGN.md:
//
//   * a shed request returns kUnavailable (queue full / queue timeout)
//     or kDeadlineExceeded (its own deadline expired while queued) fast,
//     without compiling a plan or touching a worker;
//   * every admitted request that completes is byte-identical to a
//     serial Session::Execute over the same documents — including
//     requests that succeeded only on a degraded-mode retry;
//   * fault-injected failures are surfaced verbatim (no retry, no
//     quarantine) unless the plan is explicitly marked transient;
//   * service counters account exactly: every Execute ends in exactly
//     one of {result-cache hit, admitted, shed}.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/admission.h"
#include "api/service.h"
#include "api/session.h"
#include "common/governor.h"
#include "common/status.h"
#include "engine/faults.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

namespace exrquy {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// ---------------------------------------------------------------------
// LatencyHistogram.

TEST(LatencyHistogramTest, BucketsArePowersOfTwo) {
  AtomicLatencyHistogram h;
  h.Record(0.5);   // bucket 0: < 1 µs
  h.Record(1.0);   // bucket 1: [1, 2)
  h.Record(3.0);   // bucket 2: [2, 4)
  h.Record(10.0);  // bucket 4: [8, 16)
  LatencyHistogram s = h.Snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[4], 1u);
}

TEST(LatencyHistogramTest, PercentileReturnsBucketUpperBound) {
  AtomicLatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.Record(10.0);  // [8, 16)
  h.Record(5000.0);                             // [4096, 8192)
  LatencyHistogram s = h.Snapshot();
  EXPECT_DOUBLE_EQ(s.PercentileUs(50), 16.0);
  EXPECT_DOUBLE_EQ(s.PercentileUs(99), 16.0);
  EXPECT_DOUBLE_EQ(s.PercentileUs(100), 8192.0);
}

TEST(LatencyHistogramTest, EmptyIsZero) {
  LatencyHistogram s;
  EXPECT_DOUBLE_EQ(s.PercentileUs(50), 0.0);
  EXPECT_DOUBLE_EQ(s.PercentileUs(99), 0.0);
}

// ---------------------------------------------------------------------
// AdmissionController (unit level: abstract slots, no engine).

TEST(AdmissionControllerTest, HandsOutAllSlotsThenSheds) {
  AdmissionController::Config c;
  c.slots = 2;
  c.max_queue_depth = 0;  // never queue
  AdmissionController ctl(c);
  Result<AdmissionController::Ticket> a = ctl.Admit(std::nullopt);
  Result<AdmissionController::Ticket> b = ctl.Admit(std::nullopt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->slot, b->slot);

  Result<AdmissionController::Ticket> shed = ctl.Admit(std::nullopt);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);

  ctl.Release(a->slot);
  EXPECT_TRUE(ctl.Admit(std::nullopt).ok());

  AdmissionStats st = ctl.stats();
  EXPECT_EQ(st.admitted, 3u);
  EXPECT_EQ(st.shed_queue_full, 1u);
  EXPECT_EQ(st.queued, 0u);
}

TEST(AdmissionControllerTest, QueueTimeoutSheds) {
  AdmissionController::Config c;
  c.slots = 1;
  c.max_queue_depth = 8;
  c.queue_timeout_ms = 20;
  AdmissionController ctl(c);
  Result<AdmissionController::Ticket> held = ctl.Admit(std::nullopt);
  ASSERT_TRUE(held.ok());

  Clock::time_point t0 = Clock::now();
  Result<AdmissionController::Ticket> shed = ctl.Admit(std::nullopt);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(MsSince(t0), 19.0);

  AdmissionStats st = ctl.stats();
  EXPECT_EQ(st.queued, 1u);
  EXPECT_EQ(st.shed_queue_timeout, 1u);
  EXPECT_EQ(st.queue_depth, 0u);  // the waiter is gone
  EXPECT_EQ(st.peak_queue_depth, 1u);
}

TEST(AdmissionControllerTest, DeadlineBindsBeforeQueueTimeout) {
  AdmissionController::Config c;
  c.slots = 1;
  c.max_queue_depth = 8;
  c.queue_timeout_ms = 10000;
  AdmissionController ctl(c);
  ASSERT_TRUE(ctl.Admit(std::nullopt).ok());

  Clock::time_point t0 = Clock::now();
  Result<AdmissionController::Ticket> shed =
      ctl.Admit(t0 + std::chrono::milliseconds(20));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kDeadlineExceeded);
  double waited = MsSince(t0);
  EXPECT_GE(waited, 19.0);
  EXPECT_LT(waited, 5000.0);  // the 10 s queue timeout never bound
  EXPECT_EQ(ctl.stats().shed_deadline, 1u);
}

TEST(AdmissionControllerTest, ExpiredDeadlineShedsBeforeQueueing) {
  AdmissionController ctl(AdmissionController::Config{});
  Result<AdmissionController::Ticket> shed =
      ctl.Admit(Clock::now() - std::chrono::milliseconds(1));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ctl.stats().queued, 0u);
}

TEST(AdmissionControllerTest, ReleaseWakesWaiter) {
  AdmissionController::Config c;
  c.slots = 1;
  c.max_queue_depth = 4;
  AdmissionController ctl(c);
  Result<AdmissionController::Ticket> held = ctl.Admit(std::nullopt);
  ASSERT_TRUE(held.ok());

  std::atomic<bool> got{false};
  std::thread waiter([&] {
    Result<AdmissionController::Ticket> t = ctl.Admit(std::nullopt);
    ASSERT_TRUE(t.ok());
    got.store(true);
    ctl.Release(t->slot);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(got.load());
  ctl.Release(held->slot);
  waiter.join();
  EXPECT_TRUE(got.load());
  AdmissionStats st = ctl.stats();
  EXPECT_EQ(st.admitted, 2u);
  EXPECT_EQ(st.queued, 1u);
  EXPECT_GT(st.queue_wait_us.count, 0u);
}

// ---------------------------------------------------------------------
// QuarantineList (unit level: opaque keys).

TEST(QuarantineListTest, TripsAfterThresholdAndRecoversViaProbe) {
  QuarantineList::Config c;
  c.failure_threshold = 3;
  c.cooldown_ms = 30;
  QuarantineList q(c);

  EXPECT_EQ(q.Admit("k"), QuarantineList::Decision::kAdmit);
  q.Record("k", /*resource_failure=*/true, /*was_probe=*/false);
  q.Record("k", true, false);
  EXPECT_EQ(q.Admit("k"), QuarantineList::Decision::kAdmit);  // 2 < 3
  q.Record("k", true, false);  // third consecutive: trips

  EXPECT_EQ(q.Admit("k"), QuarantineList::Decision::kShed);
  QuarantineStats st = q.stats();
  EXPECT_EQ(st.trips, 1u);
  EXPECT_EQ(st.shed, 1u);
  EXPECT_EQ(st.open, 1u);

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(q.Admit("k"), QuarantineList::Decision::kProbe);
  // The one probe is in flight: everyone else stays shed.
  EXPECT_EQ(q.Admit("k"), QuarantineList::Decision::kShed);

  q.Record("k", /*resource_failure=*/false, /*was_probe=*/true);
  EXPECT_EQ(q.Admit("k"), QuarantineList::Decision::kAdmit);
  st = q.stats();
  EXPECT_EQ(st.probes, 1u);
  EXPECT_EQ(st.recoveries, 1u);
  EXPECT_EQ(st.tracked, 0u);  // clean slate after recovery
}

TEST(QuarantineListTest, SuccessResetsConsecutiveCount) {
  QuarantineList::Config c;
  c.failure_threshold = 2;
  QuarantineList q(c);
  q.Record("k", true, false);
  q.Record("k", false, false);  // success wipes the streak
  q.Record("k", true, false);
  EXPECT_EQ(q.Admit("k"), QuarantineList::Decision::kAdmit);
  q.Record("k", true, false);  // now 2 consecutive: trips
  EXPECT_EQ(q.Admit("k"), QuarantineList::Decision::kShed);
}

TEST(QuarantineListTest, FailedProbeDoublesCooldown) {
  QuarantineList::Config c;
  c.failure_threshold = 1;
  c.cooldown_ms = 40;
  QuarantineList q(c);
  q.Record("k", true, false);  // trip #1: cooldown 40 ms
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ASSERT_EQ(q.Admit("k"), QuarantineList::Decision::kProbe);
  q.Record("k", true, /*was_probe=*/true);  // trip #2: cooldown 80 ms

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(q.Admit("k"), QuarantineList::Decision::kShed)
      << "50 ms < doubled 80 ms cooldown";
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(q.Admit("k"), QuarantineList::Decision::kProbe);
  EXPECT_EQ(q.stats().trips, 2u);
}

TEST(QuarantineListTest, AbortedProbeReopensImmediately) {
  QuarantineList::Config c;
  c.failure_threshold = 1;
  c.cooldown_ms = 20;
  QuarantineList q(c);
  q.Record("k", true, false);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_EQ(q.Admit("k"), QuarantineList::Decision::kProbe);
  // The probe was shed by the admission queue: nothing was learned, so
  // the next arrival probes again at once instead of waiting behind a
  // stuck half-open state.
  q.ProbeAborted("k");
  EXPECT_EQ(q.Admit("k"), QuarantineList::Decision::kProbe);
}

TEST(QuarantineListTest, ZeroThresholdDisables) {
  QuarantineList::Config c;
  c.failure_threshold = 0;
  QuarantineList q(c);
  for (int i = 0; i < 10; ++i) q.Record("k", true, false);
  EXPECT_EQ(q.Admit("k"), QuarantineList::Decision::kAdmit);
  EXPECT_EQ(q.stats().tracked, 0u);
}

// ---------------------------------------------------------------------
// FaultPlan::FromEnv strict parsing (engine/faults.h).

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    setenv(name, value, 1);
  }
  ~ScopedEnv() { unsetenv(name_); }

 private:
  const char* name_;
};

TEST(FaultPlanFromEnvTest, UnsetIsDisarmed) {
  Result<FaultPlan> plan = FaultPlan::FromEnv();
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->any());
  EXPECT_FALSE(plan->transient);
}

TEST(FaultPlanFromEnvTest, ValidValuesParse) {
  ScopedEnv a("EXRQUY_FAULT_ALLOC", "7");
  ScopedEnv t("EXRQUY_FAULT_TRANSIENT", "1");
  Result<FaultPlan> plan = FaultPlan::FromEnv();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->fail_alloc, 7u);
  EXPECT_TRUE(plan->transient);
}

TEST(FaultPlanFromEnvTest, RejectsTrailingGarbage) {
  ScopedEnv e("EXRQUY_FAULT_ALLOC", "12abc");
  Result<FaultPlan> plan = FaultPlan::FromEnv();
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(plan.status().message().find("EXRQUY_FAULT_ALLOC"),
            std::string::npos);
}

TEST(FaultPlanFromEnvTest, RejectsSignedValues) {
  {
    ScopedEnv e("EXRQUY_FAULT_CANCEL_OP", "-3");
    Result<FaultPlan> plan = FaultPlan::FromEnv();
    ASSERT_FALSE(plan.ok());
    EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(plan.status().message().find("EXRQUY_FAULT_CANCEL_OP"),
              std::string::npos);
  }
  {
    ScopedEnv e("EXRQUY_FAULT_DEADLINE_CHUNK", "+5");
    Result<FaultPlan> plan = FaultPlan::FromEnv();
    ASSERT_FALSE(plan.ok());
    EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(FaultPlanFromEnvTest, RejectsOverflow) {
  ScopedEnv e("EXRQUY_FAULT_ALLOC", "99999999999999999999999999");
  Result<FaultPlan> plan = FaultPlan::FromEnv();
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(plan.status().message().find("out of range"), std::string::npos);
}

TEST(FaultPlanFromEnvTest, RejectsNonBooleanTransient) {
  ScopedEnv e("EXRQUY_FAULT_TRANSIENT", "yes");
  Result<FaultPlan> plan = FaultPlan::FromEnv();
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(plan.status().message().find("EXRQUY_FAULT_TRANSIENT"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Service-level overload behavior. One small XMark document; each test
// builds its own service so counters start from zero.

std::string& XMarkXml() {
  static std::string* xml = [] {
    XMarkOptions options;
    options.scale = 0.004;
    return new std::string(GenerateXMark(options));
  }();
  return *xml;
}

// Long enough (a three-way cross product over //person) that it always
// holds its worker slot until cancelled.
const char kSlowQuery[] =
    R"(count(for $a in doc("auction.xml")//person,
                $b in doc("auction.xml")//person,
                $c in doc("auction.xml")//person
            return 1))";

std::unique_ptr<QueryService> MakeService(ServiceConfig config) {
  auto service = std::make_unique<QueryService>(config);
  EXPECT_TRUE(service->LoadDocument("auction.xml", XMarkXml()).ok());
  return service;
}

// Occupies one worker slot with kSlowQuery until destroyed.
class Blocker {
 public:
  explicit Blocker(QueryService* service, uint64_t admitted_before = 0)
      : cancel_(std::make_shared<CancelToken>()) {
    thread_ = std::thread([service, cancel = cancel_] {
      QueryOptions o;
      o.cancel = cancel;
      Result<ServiceResult> r = service->Execute(kSlowQuery, o);
      // Either the cancel landed or (never observed in practice) the
      // cross product completed; both release the slot cleanly.
      if (!r.ok()) {
        EXPECT_EQ(r.status().code(), StatusCode::kCancelled)
            << r.status().ToString();
      }
    });
    for (int i = 0; i < 5000; ++i) {
      if (service->counters().admission.admitted > admitted_before) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ADD_FAILURE() << "blocker query was never admitted";
  }

  ~Blocker() {
    cancel_->Cancel();
    thread_.join();
  }

 private:
  std::shared_ptr<CancelToken> cancel_;
  std::thread thread_;
};

TEST(ServiceOverloadTest, ShedsUnderSaturationFast) {
  ServiceConfig config;
  config.workers = 1;
  config.max_queue_depth = 0;  // never queue: saturated = shed
  std::unique_ptr<QueryService> service = MakeService(config);
  Blocker blocker(service.get());

  constexpr int kCalls = 50;
  std::vector<double> shed_ms;
  shed_ms.reserve(kCalls);
  for (int i = 0; i < kCalls; ++i) {
    Clock::time_point t0 = Clock::now();
    Result<ServiceResult> r = service->Execute("1 + 1", {});
    double ms = MsSince(t0);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable)
        << r.status().ToString();
    shed_ms.push_back(ms);
  }
  std::sort(shed_ms.begin(), shed_ms.end());
  // Acceptance gate: shed requests fail in < 1 ms median — they never
  // reach the planner, let alone a worker.
  EXPECT_LT(shed_ms[kCalls / 2], 1.0);

  ServiceCounters counters = service->counters();
  EXPECT_EQ(counters.admission.shed_queue_full, uint64_t{kCalls});
  EXPECT_EQ(counters.admission.admitted, 1u);  // only the blocker
  EXPECT_EQ(counters.executions, uint64_t{kCalls});  // sheds are counted
  // A shed request never compiled: the plan cache saw only the blocker.
  EXPECT_EQ(counters.plan_cache.misses, 1u);
}

TEST(ServiceOverloadTest, QueueTimeoutShedsWaiter) {
  ServiceConfig config;
  config.workers = 1;
  config.max_queue_depth = 4;
  config.queue_timeout_ms = 25;
  std::unique_ptr<QueryService> service = MakeService(config);
  Blocker blocker(service.get());

  Clock::time_point t0 = Clock::now();
  Result<ServiceResult> r = service->Execute("1 + 1", {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable)
      << r.status().ToString();
  EXPECT_GE(MsSince(t0), 24.0);
  ServiceCounters counters = service->counters();
  EXPECT_EQ(counters.admission.shed_queue_timeout, 1u);
  EXPECT_EQ(counters.admission.queued, 1u);
}

TEST(ServiceOverloadTest, QueueWaitIsChargedAgainstDeadline) {
  ServiceConfig config;
  config.workers = 1;
  config.max_queue_depth = 4;
  config.queue_timeout_ms = 10000;  // must never bind
  std::unique_ptr<QueryService> service = MakeService(config);
  Blocker blocker(service.get());

  QueryOptions o;
  o.deadline_ms = 30;
  Clock::time_point t0 = Clock::now();
  Result<ServiceResult> r = service->Execute(XMarkQueryText("Q1"), o);
  double waited = MsSince(t0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
      << r.status().ToString();
  EXPECT_GE(waited, 29.0);
  EXPECT_LT(waited, 5000.0) << "the 10 s queue timeout must not be what fired";
  // Execution never started: the deadline fired in the queue.
  EXPECT_NE(r.status().message().find("execution never started"),
            std::string::npos)
      << r.status().message();
  ServiceCounters counters = service->counters();
  EXPECT_EQ(counters.admission.shed_deadline, 1u);
  EXPECT_EQ(counters.plan_cache.misses, 1u);  // only the blocker compiled
}

TEST(ServiceOverloadTest, TransientFaultRetriesToByteIdenticalResult) {
  ServiceConfig config;
  config.workers = 2;
  config.max_retries = 1;
  std::unique_ptr<QueryService> service = MakeService(config);

  Session session;
  ASSERT_TRUE(session.LoadDocument("auction.xml", XMarkXml()).ok());
  QueryOptions serial;
  serial.num_threads = 1;
  Result<QueryResult> reference =
      session.Execute(XMarkQueryText("Q1"), serial);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  // The very first budget charge fails — but the fault is transient, so
  // the service may re-run with the fault disarmed, in degraded mode.
  QueryOptions o;
  o.num_threads = 4;
  o.profile = true;
  o.faults.fail_alloc = 1;
  o.faults.transient = true;
  Result<ServiceResult> r = service->Execute(XMarkQueryText("Q1"), o);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->result.serialized, reference->serialized);
  EXPECT_EQ(r->result.items, reference->items);
  EXPECT_EQ(r->result.profile.attempts(), 2u);
  EXPECT_TRUE(r->result.profile.degraded());

  ServiceCounters counters = service->counters();
  EXPECT_EQ(counters.retries, 1u);
  EXPECT_EQ(counters.degraded_runs, 1u);
  EXPECT_GE(counters.pressure_events, 1u);
  EXPECT_TRUE(service->WorkersPristine());
}

TEST(ServiceOverloadTest, PlainInjectedFaultIsNeverRetried) {
  ServiceConfig config;
  config.workers = 1;
  config.max_retries = 3;
  std::unique_ptr<QueryService> service = MakeService(config);

  QueryOptions o;
  o.faults.fail_alloc = 1;  // not transient: surfaced verbatim
  Result<ServiceResult> r = service->Execute(XMarkQueryText("Q1"), o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  ServiceCounters counters = service->counters();
  EXPECT_EQ(counters.retries, 0u);
  EXPECT_EQ(counters.degraded_runs, 0u);
  // Injected faults also never feed the quarantine.
  EXPECT_EQ(counters.quarantine.tracked, 0u);
  EXPECT_TRUE(service->WorkersPristine());
}

TEST(ServiceOverloadTest, GenuineBudgetExhaustionFailsAfterRetries) {
  ServiceConfig config;
  config.workers = 1;
  config.max_retries = 2;
  config.quarantine_failures = 0;  // isolate the retry policy
  std::unique_ptr<QueryService> service = MakeService(config);

  QueryOptions o;
  o.memory_budget = 1024;  // really too small, every attempt trips
  Result<ServiceResult> r = service->Execute(XMarkQueryText("Q10"), o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  ServiceCounters counters = service->counters();
  EXPECT_EQ(counters.retries, 2u);  // both retries were attempted
  EXPECT_EQ(counters.degraded_runs, 2u);
  EXPECT_GE(counters.pressure_events, 2u);
  EXPECT_TRUE(service->WorkersPristine());
}

TEST(ServiceOverloadTest, MemoryPressureEvictsResultCacheAndDegrades) {
  // Learn the query's budget peak on a scratch service, then size a
  // budget so the peak crosses the high-water fraction without tripping.
  size_t peak = 0;
  {
    ServiceConfig config;
    config.workers = 1;
    std::unique_ptr<QueryService> probe = MakeService(config);
    QueryOptions o;
    o.num_threads = 1;
    o.profile = true;
    o.memory_budget = size_t{1} << 30;
    Result<ServiceResult> r = probe->Execute(XMarkQueryText("Q10"), o);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    peak = r->result.profile.budget_peak_bytes();
    ASSERT_GT(peak, 0u);
  }

  ServiceConfig config;
  config.workers = 1;
  config.result_cache_bytes = 1 << 20;
  config.memory_high_water = 0.5;
  config.degraded_window_ms = 10000;  // hold the window open for asserts
  std::unique_ptr<QueryService> service = MakeService(config);

  ASSERT_TRUE(service->Execute(XMarkQueryText("Q1"), {}).ok());
  EXPECT_EQ(service->counters().result_cache.entries, 1u);

  // peak / (1.5 * peak) = 0.67 >= 0.5: high water, but no trip.
  QueryOptions o;
  o.num_threads = 1;
  o.memory_budget = peak + peak / 2;
  Result<ServiceResult> r = service->Execute(XMarkQueryText("Q10"), o);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  ServiceCounters counters = service->counters();
  EXPECT_EQ(counters.pressure_events, 1u);
  EXPECT_EQ(counters.result_cache.entries, 0u) << "cache must be evicted";
  EXPECT_EQ(counters.retries, 0u) << "the query itself never failed";

  // Inside the degraded window: admissions run serial, caches drain.
  QueryOptions profiled;
  profiled.profile = true;
  profiled.num_threads = 4;
  Result<ServiceResult> d = service->Execute(XMarkQueryText("Q1"), profiled);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->result.profile.degraded());
  EXPECT_GE(service->counters().degraded_runs, 1u);
}

TEST(ServiceOverloadTest, PoisonQueryQuarantineTripAndRecovery) {
  ServiceConfig config;
  config.workers = 1;
  config.max_retries = 0;
  config.quarantine_failures = 2;
  config.quarantine_cooldown_ms = 40;
  std::unique_ptr<QueryService> service = MakeService(config);

  const std::string query = XMarkQueryText("Q10");
  QueryOptions starved;
  starved.memory_budget = 1024;

  for (int i = 0; i < 2; ++i) {
    Result<ServiceResult> r = service->Execute(query, starved);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  }
  // Tripped: the same query (the breaker keys on the plan-cache key, so
  // the budget knob does not matter) now fast-fails without a worker.
  Clock::time_point t0 = Clock::now();
  Result<ServiceResult> shed = service->Execute(query, starved);
  double shed_time = MsSince(t0);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable)
      << shed.status().ToString();
  EXPECT_NE(shed.status().message().find("quarantined"), std::string::npos);
  EXPECT_LT(shed_time, 10.0);
  {
    ServiceCounters counters = service->counters();
    EXPECT_EQ(counters.quarantine.trips, 1u);
    EXPECT_EQ(counters.quarantine.shed, 1u);
    EXPECT_EQ(counters.admission.admitted, 2u) << "the shed never admitted";
  }

  // After the cooldown the breaker half-opens; the probe — now with a
  // workable budget — succeeds and closes it.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  QueryOptions generous;
  generous.memory_budget = size_t{1} << 30;
  Result<ServiceResult> probe = service->Execute(query, generous);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();

  Result<ServiceResult> after = service->Execute(query, generous);
  EXPECT_TRUE(after.ok());
  ServiceCounters counters = service->counters();
  EXPECT_EQ(counters.quarantine.probes, 1u);
  EXPECT_EQ(counters.quarantine.recoveries, 1u);
  EXPECT_EQ(counters.quarantine.tracked, 0u);
  EXPECT_EQ(counters.quarantine.shed, 1u) << "no shedding after recovery";
}

TEST(ServiceOverloadTest, ExactCountersOnScriptedSequence) {
  ServiceConfig config;
  config.workers = 1;
  config.plan_cache = 1;
  config.result_cache_bytes = 1 << 20;
  std::unique_ptr<QueryService> service = MakeService(config);

  // 1: cold — compiles, runs, populates both caches.
  ASSERT_TRUE(service->Execute(XMarkQueryText("Q1"), {}).ok());
  // 2: result-cache hit — bypasses admission entirely.
  Result<ServiceResult> hit = service->Execute(XMarkQueryText("Q1"), {});
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->result_cache_hit);
  // 3: parse error — admitted, fails in the planner, slot released.
  EXPECT_FALSE(service->Execute("for $x in", {}).ok());

  ServiceCounters c = service->counters();
  EXPECT_EQ(c.executions, 3u);
  EXPECT_EQ(c.admission.admitted, 2u);
  EXPECT_EQ(c.admission.queued, 0u);
  EXPECT_EQ(c.admission.shed_queue_full, 0u);
  EXPECT_EQ(c.admission.shed_queue_timeout, 0u);
  EXPECT_EQ(c.admission.shed_deadline, 0u);
  EXPECT_EQ(c.plan_cache.misses, 2u);
  EXPECT_EQ(c.plan_cache.hits, 0u);
  EXPECT_EQ(c.plan_cache.insertions, 1u);
  EXPECT_EQ(c.result_cache.hits, 1u);
  EXPECT_EQ(c.result_cache.misses, 2u);
  EXPECT_EQ(c.result_cache.insertions, 1u);
  EXPECT_EQ(c.retries, 0u);
  EXPECT_EQ(c.degraded_runs, 0u);
  EXPECT_EQ(c.pressure_events, 0u);
  EXPECT_EQ(c.quarantine.shed, 0u);
  EXPECT_EQ(c.latency_us.count, 3u);
  EXPECT_TRUE(service->WorkersPristine());
}

// Every Execute ends in exactly one of {result-cache hit, admitted,
// shed}, at 1 and at 8 client threads — the accounting identity that
// makes the overload bench's shed-rate numbers trustworthy. Run under
// TSan in CI.
TEST(ServiceOverloadTest, ConcurrentMixedOutcomesAccountExactly) {
  for (int client_threads : {1, 8}) {
    ServiceConfig config;
    config.workers = 1;
    config.max_queue_depth = 2;
    config.queue_timeout_ms = 200;
    config.result_cache_bytes = 0;  // every success runs the engine
    std::unique_ptr<QueryService> service = MakeService(config);

    Session session;
    ASSERT_TRUE(session.LoadDocument("auction.xml", XMarkXml()).ok());
    QueryOptions serial;
    serial.num_threads = 1;
    Result<QueryResult> reference =
        session.Execute(XMarkQueryText("Q1"), serial);
    ASSERT_TRUE(reference.ok());

    constexpr int kPerThread = 6;
    std::atomic<uint64_t> ok_count{0};
    std::atomic<uint64_t> shed_count{0};
    std::vector<std::thread> clients;
    clients.reserve(client_threads);
    for (int t = 0; t < client_threads; ++t) {
      clients.emplace_back([&] {
        for (int i = 0; i < kPerThread; ++i) {
          Result<ServiceResult> r =
              service->Execute(XMarkQueryText("Q1"), {});
          if (r.ok()) {
            ok_count.fetch_add(1);
            EXPECT_EQ(r->result.serialized, reference->serialized);
            EXPECT_EQ(r->result.items, reference->items);
          } else {
            shed_count.fetch_add(1);
            EXPECT_EQ(r.status().code(), StatusCode::kUnavailable)
                << r.status().ToString();
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();

    uint64_t total = static_cast<uint64_t>(client_threads) * kPerThread;
    EXPECT_EQ(ok_count.load() + shed_count.load(), total);
    ServiceCounters c = service->counters();
    EXPECT_EQ(c.executions, total);
    EXPECT_EQ(c.admission.admitted, ok_count.load());
    EXPECT_EQ(c.admission.shed_queue_full + c.admission.shed_queue_timeout,
              shed_count.load());
    EXPECT_EQ(c.latency_us.count, total);
    EXPECT_TRUE(service->WorkersPristine());
    if (client_threads == 1) {
      EXPECT_EQ(shed_count.load(), 0u) << "serial clients never overload";
    }
  }
}

}  // namespace
}  // namespace exrquy
