file(REMOVE_RECURSE
  "libexrquy_api.a"
)
