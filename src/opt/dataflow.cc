#include "opt/dataflow.h"

namespace exrquy {

std::string DataflowStats::ToString() const {
  return "solves=" + std::to_string(solves) +
         " transfers=" + std::to_string(transfers) +
         " rejoins=" + std::to_string(rejoins);
}

}  // namespace exrquy
