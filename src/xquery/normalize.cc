#include "xquery/normalize.h"

#include <map>
#include <set>
#include <string>

#include "common/check.h"
#include "common/symbols.h"

namespace exrquy {
namespace {

// Names whose single argument is order indifferent (Rule FN:COUNT and the
// analogous rules for further aggregates and built-ins, Section 2.2).
bool IsOrderIndifferentBuiltin(const std::string& name) {
  return name == "count" || name == "sum" || name == "max" ||
         name == "min" || name == "avg" || name == "empty" ||
         name == "exists" || name == "boolean" || name == "not" ||
         name == "distinct-values";
}

ExprPtr WrapUnordered(ExprPtr e) {
  if (e->kind == ExprKind::kFunctionCall && e->string_value == "unordered") {
    return e;  // already wrapped
  }
  ExprPtr call = MakeExpr(ExprKind::kFunctionCall);
  call->string_value = "unordered";
  call->children.push_back(std::move(e));
  return call;
}

ExprPtr WrapNot(ExprPtr e) {
  ExprPtr call = MakeExpr(ExprKind::kFunctionCall);
  call->string_value = "not";
  call->children.push_back(std::move(e));
  return call;
}

class Normalizer {
 public:
  Normalizer(const Query& query, const NormalizeOptions& options)
      : options_(options) {
    for (const FunctionDecl& f : query.functions) {
      functions_[f.name] = &f;
    }
  }

  Status Rewrite(ExprPtr* e) {
    // Bottom-up: children first.
    Expr& expr = **e;
    for (ExprPtr& c : expr.children) EXRQUY_RETURN_IF_ERROR(Rewrite(&c));
    for (FlworClause& c : expr.clauses) EXRQUY_RETURN_IF_ERROR(Rewrite(&c.expr));
    if (expr.where) EXRQUY_RETURN_IF_ERROR(Rewrite(&expr.where));
    for (OrderSpec& s : expr.order_by) EXRQUY_RETURN_IF_ERROR(Rewrite(&s.key));
    if (expr.ret) EXRQUY_RETURN_IF_ERROR(Rewrite(&expr.ret));
    for (CtorPart& p : expr.parts) {
      if (p.expr) EXRQUY_RETURN_IF_ERROR(Rewrite(&p.expr));
    }

    switch (expr.kind) {
      case ExprKind::kQuantified: {
        // every -> not(some(not)).
        if (expr.op == BinOp::kAnd) {
          ExprPtr some = MakeExpr(ExprKind::kQuantified);
          some->op = BinOp::kOr;
          some->string_value = expr.string_value;
          some->children.push_back(std::move(expr.children[0]));
          some->children.push_back(WrapNot(std::move(expr.children[1])));
          *e = WrapNot(std::move(some));
          // The inner `some` domain still needs the QUANT treatment.
          Expr* inner = (*e)->children[0].get();
          if (options_.insert_unordered) {
            inner->children[0] = WrapUnordered(std::move(inner->children[0]));
          }
          return Status::Ok();
        }
        // Rule QUANT: the quantifier is indifferent to the order of its
        // domain (either ordering mode).
        if (options_.insert_unordered) {
          expr.children[0] = WrapUnordered(std::move(expr.children[0]));
        }
        return Status::Ok();
      }
      case ExprKind::kGeneralComp: {
        // General comparisons have existential semantics; their
        // normalization is based on `some` with unordered domains.
        if (options_.insert_unordered) {
          expr.children[0] = WrapUnordered(std::move(expr.children[0]));
          expr.children[1] = WrapUnordered(std::move(expr.children[1]));
        }
        return Status::Ok();
      }
      case ExprKind::kFunctionCall: {
        const std::string& name = expr.string_value;
        if (options_.insert_unordered && expr.children.size() == 1 &&
            IsOrderIndifferentBuiltin(name)) {
          expr.children[0] = WrapUnordered(std::move(expr.children[0]));
          return Status::Ok();
        }
        if (functions_.count(name) != 0) {
          return InlineCall(e);
        }
        return Status::Ok();
      }
      default:
        return Status::Ok();
    }
  }

 private:
  // Replaces a call to a declared function with
  //   let $fresh1 := arg1 ... return body[params := fresh]
  Status InlineCall(ExprPtr* e) {
    Expr& call = **e;
    const FunctionDecl& decl = *functions_.at(call.string_value);
    if (inlining_.count(decl.name) != 0) {
      return Unimplemented("recursive function: " + decl.name);
    }
    if (call.children.size() != decl.params.size()) {
      return TypeError("wrong number of arguments to " + decl.name);
    }

    // Check the body is closed over its parameters.
    std::set<std::string> bound(decl.params.begin(), decl.params.end());
    EXRQUY_RETURN_IF_ERROR(CheckClosed(*decl.body, decl.name, bound));

    // Fresh names prevent capturing the caller's variables.
    std::map<std::string, std::string> renames;
    ExprPtr flwor = MakeExpr(ExprKind::kFlwor);
    for (size_t i = 0; i < decl.params.size(); ++i) {
      std::string fresh = ColName(FreshCol(decl.params[i]));
      renames[decl.params[i]] = fresh;
      FlworClause clause;
      clause.kind = FlworClause::Kind::kLet;
      clause.var = fresh;
      clause.expr = std::move(call.children[i]);
      flwor->clauses.push_back(std::move(clause));
    }
    ExprPtr body = CloneExpr(*decl.body);
    RenameVars(body.get(), renames);

    // The inlined body may itself call declared functions.
    inlining_.insert(decl.name);
    EXRQUY_RETURN_IF_ERROR(Rewrite(&body));
    inlining_.erase(decl.name);

    if (flwor->clauses.empty()) {
      *e = std::move(body);
    } else {
      flwor->ret = std::move(body);
      *e = std::move(flwor);
    }
    return Status::Ok();
  }

  Status CheckClosed(const Expr& e, const std::string& fn_name,
                     std::set<std::string> bound) const {
    if (e.kind == ExprKind::kVarRef && bound.count(e.string_value) == 0) {
      return TypeError("function " + fn_name + " references free variable $" +
                       e.string_value);
    }
    if (e.kind == ExprKind::kQuantified) {
      EXRQUY_RETURN_IF_ERROR(CheckClosed(*e.children[0], fn_name, bound));
      std::set<std::string> inner = bound;
      inner.insert(e.string_value);
      return CheckClosed(*e.children[1], fn_name, inner);
    }
    if (e.kind == ExprKind::kFlwor) {
      std::set<std::string> scope = bound;
      for (const FlworClause& c : e.clauses) {
        EXRQUY_RETURN_IF_ERROR(CheckClosed(*c.expr, fn_name, scope));
        scope.insert(c.var);
        if (!c.pos_var.empty()) scope.insert(c.pos_var);
      }
      if (e.where) EXRQUY_RETURN_IF_ERROR(CheckClosed(*e.where, fn_name, scope));
      for (const OrderSpec& s : e.order_by) {
        EXRQUY_RETURN_IF_ERROR(CheckClosed(*s.key, fn_name, scope));
      }
      return CheckClosed(*e.ret, fn_name, scope);
    }
    for (const ExprPtr& c : e.children) {
      EXRQUY_RETURN_IF_ERROR(CheckClosed(*c, fn_name, bound));
    }
    for (const CtorPart& p : e.parts) {
      if (p.expr) EXRQUY_RETURN_IF_ERROR(CheckClosed(*p.expr, fn_name, bound));
    }
    return Status::Ok();
  }

  static void RenameVars(Expr* e,
                         const std::map<std::string, std::string>& renames) {
    if (e->kind == ExprKind::kVarRef) {
      auto it = renames.find(e->string_value);
      if (it != renames.end()) e->string_value = it->second;
    }
    // Shadowing binders stop the rename for the shadowed name.
    if (e->kind == ExprKind::kQuantified) {
      RenameVars(e->children[0].get(), renames);
      std::map<std::string, std::string> inner = renames;
      inner.erase(e->string_value);
      RenameVars(e->children[1].get(), inner);
      return;
    }
    if (e->kind == ExprKind::kFlwor) {
      std::map<std::string, std::string> scope = renames;
      for (FlworClause& c : e->clauses) {
        RenameVars(c.expr.get(), scope);
        scope.erase(c.var);
        if (!c.pos_var.empty()) scope.erase(c.pos_var);
      }
      if (e->where) RenameVars(e->where.get(), scope);
      for (OrderSpec& s : e->order_by) RenameVars(s.key.get(), scope);
      RenameVars(e->ret.get(), scope);
      return;
    }
    for (ExprPtr& c : e->children) RenameVars(c.get(), renames);
    for (CtorPart& p : e->parts) {
      if (p.expr) RenameVars(p.expr.get(), renames);
    }
  }

  const NormalizeOptions& options_;
  std::map<std::string, const FunctionDecl*> functions_;
  std::set<std::string> inlining_;
};

}  // namespace

Status Normalize(Query* query, const NormalizeOptions& options) {
  Normalizer normalizer(*query, options);
  return normalizer.Rewrite(&query->body);
}

}  // namespace exrquy
