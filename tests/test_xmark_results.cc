// Semantic cross-validation of the XMark query results: every query's
// answer is checked against an independent reformulation or an
// arithmetic identity over the generated data — not just against the
// other configuration.
#include <gtest/gtest.h>

#include <algorithm>

#include "api/session.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

namespace exrquy {
namespace {

class XMarkResultsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    session_ = new Session();
    XMarkOptions options;
    options.scale = 0.004;
    ASSERT_TRUE(
        session_->LoadDocument("auction.xml", GenerateXMark(options)).ok());
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }

  static std::vector<std::string> Items(const std::string& query) {
    Result<QueryResult> r = session_->Execute(query, {});
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->items : std::vector<std::string>{};
  }

  static std::string One(const std::string& query) {
    std::vector<std::string> items = Items(query);
    EXPECT_EQ(items.size(), 1u) << query;
    return items.empty() ? "" : items[0];
  }

  static long Num(const std::string& query) {
    return std::stol(One(query));
  }

  static std::vector<std::string> Query(const std::string& name) {
    return Items(XMarkQueryText(name));
  }

  static Session* session_;
};

Session* XMarkResultsTest::session_ = nullptr;

TEST_F(XMarkResultsTest, Q1NameOfPerson0) {
  std::vector<std::string> q1 = Query("Q1");
  ASSERT_EQ(q1.size(), 1u);
  EXPECT_EQ(q1[0],
            One(R"(doc("auction.xml")//person[@id = "person0"]/name/text())"));
}

TEST_F(XMarkResultsTest, Q2OneIncreasePerAuction) {
  // One <increase> element per open auction, empty for bidder-less ones.
  EXPECT_EQ(static_cast<long>(Query("Q2").size()),
            Num(R"(count(doc("auction.xml")//open_auction))"));
}

TEST_F(XMarkResultsTest, Q5MatchesPredicateFormulation) {
  EXPECT_EQ(Num(XMarkQueryText("Q5")),
            Num(R"(count(doc("auction.xml")
                //closed_auction[price/text() >= 40]))"));
}

TEST_F(XMarkResultsTest, Q6MatchesDescendantCount) {
  EXPECT_EQ(Num(XMarkQueryText("Q6")),
            Num(R"(count(doc("auction.xml")/site/regions//item))"));
}

TEST_F(XMarkResultsTest, Q7SumsThreeCounts) {
  long d = Num(R"(count(doc("auction.xml")//description))");
  long a = Num(R"(count(doc("auction.xml")//annotation))");
  long e = Num(R"(count(doc("auction.xml")//emailaddress))");
  EXPECT_EQ(Num(XMarkQueryText("Q7")), d + a + e);
}

TEST_F(XMarkResultsTest, Q8CountsSumToClosedAuctions) {
  // Every closed auction has exactly one buyer who is a generated
  // person, so the per-person purchase counts sum to the number of
  // closed auctions.
  std::vector<std::string> q8 = Query("Q8");
  long sum = 0;
  for (const std::string& item : q8) {
    size_t gt = item.find('>');
    size_t lt = item.find('<', gt);
    sum += std::stol(item.substr(gt + 1, lt - gt - 1));
  }
  EXPECT_EQ(sum, Num(R"(count(doc("auction.xml")//closed_auction))"));
  EXPECT_EQ(static_cast<long>(q8.size()),
            Num(R"(count(doc("auction.xml")//person))"));
}

TEST_F(XMarkResultsTest, Q11CountsBoundedByInitials) {
  long initials = Num(R"(count(doc("auction.xml")//open_auction/initial))");
  for (const std::string& item : Query("Q11")) {
    size_t gt = item.find('>');
    size_t lt = item.find('<', gt);
    long n = std::stol(item.substr(gt + 1, lt - gt - 1));
    EXPECT_GE(n, 0);
    EXPECT_LE(n, initials);
  }
}

TEST_F(XMarkResultsTest, Q12SubsetOfQ11Persons) {
  // Q12 restricts Q11 to persons with income > 50000.
  EXPECT_EQ(static_cast<long>(Query("Q12").size()),
            Num(R"(count(doc("auction.xml")
                //person[profile/@income > 50000]))"));
}

TEST_F(XMarkResultsTest, Q13OneItemPerAustralianItem) {
  EXPECT_EQ(static_cast<long>(Query("Q13").size()),
            Num(R"(count(doc("auction.xml")/site/regions/australia/item))"));
}

TEST_F(XMarkResultsTest, Q14GoldSubset) {
  long gold = static_cast<long>(Query("Q14").size());
  EXPECT_GT(gold, 0);
  EXPECT_LT(gold, Num(R"(count(doc("auction.xml")//item))"));
}

TEST_F(XMarkResultsTest, Q15Q16SameAuctions) {
  // Q16 returns one element per closed auction whose deep path is
  // non-empty; Q15 returns the keyword texts themselves — counts match
  // whenever each such auction carries exactly one deep keyword, and
  // Q16 can never exceed Q15.
  long q15 = static_cast<long>(Query("Q15").size());
  long q16 = static_cast<long>(Query("Q16").size());
  EXPECT_GT(q16, 0);
  EXPECT_LE(q16, q15);
}

TEST_F(XMarkResultsTest, Q17ComplementOfHomepages) {
  EXPECT_EQ(static_cast<long>(Query("Q17").size()),
            Num(R"(count(doc("auction.xml")//person))") -
                Num(R"(count(doc("auction.xml")//person[homepage]))"));
}

TEST_F(XMarkResultsTest, Q18ConvertsEveryReserve) {
  // One converted value per auction that has a reserve.
  EXPECT_EQ(static_cast<long>(Query("Q18").size()),
            Num(R"(count(doc("auction.xml")//open_auction/reserve))"));
  // Spot-check the conversion factor on the first auction with a
  // reserve.
  std::string reserve =
      One(R"((doc("auction.xml")//open_auction/reserve)[1]/text())");
  double expected = 2.20371 * std::stod(reserve);
  double got = std::stod(Query("Q18")[0]);
  EXPECT_NEAR(got, expected, 1e-6);
}

TEST_F(XMarkResultsTest, Q19SortedByLocation) {
  // The item elements come back ordered by their location string.
  std::vector<std::string> q19 = Query("Q19");
  ASSERT_FALSE(q19.empty());
  std::vector<std::string> locations;
  for (const std::string& item : q19) {
    size_t gt = item.find('>');
    size_t lt = item.find('<', gt);
    locations.push_back(item.substr(gt + 1, lt - gt - 1));
  }
  EXPECT_TRUE(std::is_sorted(locations.begin(), locations.end()));
  EXPECT_EQ(static_cast<long>(q19.size()),
            Num(R"(count(doc("auction.xml")/site/regions//item))"));
}

TEST_F(XMarkResultsTest, Q20BucketsPartitionProfiles) {
  std::vector<std::string> q20 = Query("Q20");
  ASSERT_EQ(q20.size(), 1u);
  // Extract the four bucket counts from the constructed result.
  long total = 0;
  std::string s = q20[0];
  for (const char* tag : {"preferred", "standard", "challenge", "na"}) {
    std::string open = std::string("<") + tag + ">";
    size_t at = s.find(open);
    ASSERT_NE(at, std::string::npos) << tag;
    total += std::stol(s.substr(at + open.size()));
  }
  long with_income =
      Num(R"(count(doc("auction.xml")//person/profile[@income]))");
  long persons = Num(R"(count(doc("auction.xml")//person))");
  long without = persons - with_income;
  EXPECT_EQ(total, with_income + without);
}

}  // namespace
}  // namespace exrquy
