// xq — a small command-line XQuery processor on top of the library.
//
//   xq [options] <query.xq | ->
//     -d name=path    load an XML document (repeatable); fn:doc(name)
//     -e <expr>       inline query text instead of a file
//     --baseline      ignore order indifference (the paper's baseline)
//     --unordered     declare ordering unordered by default
//     --plan          print the optimized plan instead of executing
//     --sql           print the generated SQL:1999 instead of executing
//     --explain-order print, for every sort surviving optimization, the
//                     source constructs whose order demand keeps it alive
//     --explain-rewrites
//                     print every rewrite instance with its certificate
//                     verdict (what fired, what it cited, whether the
//                     independent checker proved the obligation), ending
//                     with a "[certify] emitted=... validated=...
//                     rejected=..." summary line. EXRQUY_CERTIFY selects
//                     the mode (check | strict | spot | off)
//     --profile       print the Table 2-style execution profile
//     --serve-batch N replay the query mix through the concurrent
//                     QueryService on N client threads (the input may
//                     hold several queries separated by lines of "%%");
//                     verifies byte-equality across threads and prints
//                     cache hit/miss statistics. EXRQUY_PLAN_CACHE and
//                     EXRQUY_RESULT_CACHE_BYTES configure the caches.
//     --repeat R      rounds per client thread in --serve-batch mode
//                     (default 8)
//     --queue-depth N     bound the admission queue at N waiters; extra
//                         requests are shed with Unavailable (serve-batch)
//     --queue-timeout-ms N  shed a queued request after waiting N ms
//     --retries N     retry transient resource exhaustion up to N times
//                     in degraded (serial, cache-bypassing) mode
//
// Example:
//   xq -d t.xml=fragment.xml -e 'count(doc("t.xml")//c)'
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algebra/dot.h"
#include "api/service.h"
#include "api/session.h"
#include "sql/sql_gen.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: xq [-d name=path]... [--baseline|--unordered] "
               "[--plan|--sql|--explain-order|--explain-rewrites] "
               "[--profile] "
               "[--serve-batch N [--repeat R] [--queue-depth N] "
               "[--queue-timeout-ms N] [--retries N]] "
               "(-e <expr> | query.xq | -)\n");
  return 2;
}

// Splits the input into a query mix on lines consisting of "%%".
std::vector<std::string> SplitMix(const std::string& text) {
  std::vector<std::string> mix;
  std::string current;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line == "%%") {
      if (!current.empty()) mix.push_back(current);
      current.clear();
    } else {
      current += line;
      current += '\n';
    }
  }
  if (current.find_first_not_of(" \t\n\r") != std::string::npos) {
    mix.push_back(current);
  }
  return mix;
}

struct ServeKnobs {
  int64_t queue_depth = -1;       // -1: environment / unbounded
  int64_t queue_timeout_ms = -1;  // -1: environment / no timeout
  int max_retries = -1;           // -1: environment / default (1)
};

int ServeBatch(const std::vector<std::pair<std::string, std::string>>& docs,
               const std::string& input, const exrquy::QueryOptions& options,
               size_t threads, size_t repeat, const ServeKnobs& knobs) {
  exrquy::ServiceConfig config;
  config.workers = threads;  // caches come from the environment knobs
  config.max_queue_depth = knobs.queue_depth;
  config.queue_timeout_ms = knobs.queue_timeout_ms;
  config.max_retries = knobs.max_retries;
  exrquy::QueryService service(config);
  for (const auto& [name, path] : docs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "xq: cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    exrquy::Status st = service.LoadDocument(name, buf.str());
    if (!st.ok()) {
      std::fprintf(stderr, "xq: %s: %s\n", name.c_str(),
                   st.ToString().c_str());
      return 1;
    }
  }

  std::vector<std::string> mix = SplitMix(input);
  if (mix.empty()) return Usage();

  // Serial reference pass: establishes the expected bytes and prints
  // each query's result once.
  std::vector<std::string> expected;
  for (const std::string& q : mix) {
    exrquy::Result<exrquy::ServiceResult> r = service.Execute(q, options);
    if (!r.ok()) {
      std::fprintf(stderr, "xq: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", r->result.serialized.c_str());
    expected.push_back(r->result.serialized);
  }

  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};
  std::atomic<size_t> sheds{0};
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (size_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      for (size_t round = 0; round < repeat; ++round) {
        for (size_t i = 0; i < mix.size(); ++i) {
          // Offset per thread so distinct queries overlap in flight.
          size_t qi = (i + t) % mix.size();
          exrquy::Result<exrquy::ServiceResult> r =
              service.Execute(mix[qi], options);
          if (!r.ok()) {
            // A shed (bounded queue full or queue timeout) is the
            // resilience layer doing its job, not a correctness failure.
            if (r.status().code() == exrquy::StatusCode::kUnavailable) {
              sheds.fetch_add(1, std::memory_order_relaxed);
            } else {
              failures.fetch_add(1, std::memory_order_relaxed);
            }
          } else if (r->result.serialized != expected[qi]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& th : clients) th.join();
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();

  exrquy::ServiceCounters c = service.counters();
  std::fprintf(stderr,
               "serve-batch: %zu queries x %zu threads x %zu rounds "
               "in %.1f ms\n",
               mix.size(), threads, repeat, ms);
  std::fprintf(stderr,
               "  executions   %llu\n"
               "  plan cache   %llu hits / %llu misses\n"
               "  result cache %llu hits / %llu misses / %llu evictions "
               "(%zu bytes resident)\n",
               static_cast<unsigned long long>(c.executions),
               static_cast<unsigned long long>(c.plan_cache.hits),
               static_cast<unsigned long long>(c.plan_cache.misses),
               static_cast<unsigned long long>(c.result_cache.hits),
               static_cast<unsigned long long>(c.result_cache.misses),
               static_cast<unsigned long long>(c.result_cache.evictions),
               c.result_cache.bytes);
  std::fprintf(stderr,
               "  admission    %llu admitted / %llu queued / "
               "%llu+%llu+%llu shed (full/timeout/deadline), "
               "peak queue %llu\n",
               static_cast<unsigned long long>(c.admission.admitted),
               static_cast<unsigned long long>(c.admission.queued),
               static_cast<unsigned long long>(c.admission.shed_queue_full),
               static_cast<unsigned long long>(c.admission.shed_queue_timeout),
               static_cast<unsigned long long>(c.admission.shed_deadline),
               static_cast<unsigned long long>(c.admission.peak_queue_depth));
  std::fprintf(stderr,
               "  resilience   %llu retries / %llu degraded runs / "
               "%llu pressure events\n",
               static_cast<unsigned long long>(c.retries),
               static_cast<unsigned long long>(c.degraded_runs),
               static_cast<unsigned long long>(c.pressure_events));
  std::fprintf(stderr,
               "  quarantine   %llu shed / %llu trips / %llu probes / "
               "%llu recoveries (%llu open)\n",
               static_cast<unsigned long long>(c.quarantine.shed),
               static_cast<unsigned long long>(c.quarantine.trips),
               static_cast<unsigned long long>(c.quarantine.probes),
               static_cast<unsigned long long>(c.quarantine.recoveries),
               static_cast<unsigned long long>(c.quarantine.open));
  std::fprintf(stderr, "  latency      p50 %.0f us / p99 %.0f us\n",
               c.latency_us.PercentileUs(50), c.latency_us.PercentileUs(99));
  if (sheds.load() != 0) {
    std::fprintf(stderr, "  (%zu requests shed by admission control)\n",
                 sheds.load());
  }
  if (mismatches.load() != 0 || failures.load() != 0) {
    std::fprintf(stderr, "xq: %zu mismatches, %zu failures\n",
                 mismatches.load(), failures.load());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  exrquy::QueryOptions options;
  std::vector<std::pair<std::string, std::string>> docs;  // name -> path
  std::string query;
  bool have_query = false;
  bool want_plan = false;
  bool want_sql = false;
  bool want_explain_order = false;
  bool want_explain_rewrites = false;
  size_t serve_threads = 0;
  size_t serve_repeat = 8;
  ServeKnobs knobs;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-d" && i + 1 < argc) {
      std::string spec = argv[++i];
      size_t eq = spec.find('=');
      if (eq == std::string::npos) return Usage();
      docs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--serve-batch" && i + 1 < argc) {
      serve_threads = static_cast<size_t>(std::atoi(argv[++i]));
      if (serve_threads == 0) return Usage();
    } else if (arg == "--repeat" && i + 1 < argc) {
      serve_repeat = static_cast<size_t>(std::atoi(argv[++i]));
      if (serve_repeat == 0) return Usage();
    } else if (arg == "--queue-depth" && i + 1 < argc) {
      knobs.queue_depth = std::atoll(argv[++i]);
      if (knobs.queue_depth < 0) return Usage();
    } else if (arg == "--queue-timeout-ms" && i + 1 < argc) {
      knobs.queue_timeout_ms = std::atoll(argv[++i]);
      if (knobs.queue_timeout_ms < 0) return Usage();
    } else if (arg == "--retries" && i + 1 < argc) {
      knobs.max_retries = std::atoi(argv[++i]);
      if (knobs.max_retries < 0) return Usage();
    } else if (arg == "-e" && i + 1 < argc) {
      query = argv[++i];
      have_query = true;
    } else if (arg == "--baseline") {
      options.enable_order_indifference = false;
    } else if (arg == "--unordered") {
      options.default_ordering = exrquy::OrderingMode::kUnordered;
    } else if (arg == "--plan") {
      want_plan = true;
    } else if (arg == "--sql") {
      want_sql = true;
    } else if (arg == "--explain-order") {
      want_explain_order = true;
    } else if (arg == "--explain-rewrites") {
      want_explain_rewrites = true;
    } else if (arg == "--profile") {
      options.profile = true;
    } else if (!have_query) {
      if (arg == "-") {
        std::ostringstream buf;
        buf << std::cin.rdbuf();
        query = buf.str();
      } else {
        std::ifstream in(arg);
        if (!in) {
          std::fprintf(stderr, "xq: cannot open %s\n", arg.c_str());
          return 1;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        query = buf.str();
      }
      have_query = true;
    } else {
      return Usage();
    }
  }
  if (!have_query) return Usage();

  if (serve_threads > 0) {
    if (want_plan || want_sql || want_explain_order || want_explain_rewrites) {
      return Usage();
    }
    return ServeBatch(docs, query, options, serve_threads, serve_repeat,
                      knobs);
  }

  exrquy::Session session;
  for (const auto& [name, path] : docs) {
    exrquy::Status st = session.LoadDocumentFile(name, path);
    if (!st.ok()) {
      std::fprintf(stderr, "xq: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  if (want_explain_order) {
    exrquy::Result<exrquy::OrderExplanation> explained =
        session.ExplainOrder(query, options);
    if (!explained.ok()) {
      std::fprintf(stderr, "xq: %s\n",
                   explained.status().ToString().c_str());
      return 1;
    }
    for (const auto& trade : explained->trades) {
      std::printf("%s  [%u]", trade.label.c_str(), trade.op);
      if (!trade.source.empty()) {
        std::printf("  -- %s", trade.source.c_str());
      }
      std::printf("\n  order traded (%s): %s\n", trade.rule.c_str(),
                  trade.detail.c_str());
    }
    if (explained->sorts.empty()) {
      std::printf("no sorts survive optimization: the plan is fully "
                  "order-indifferent\n");
      return 0;
    }
    for (const auto& sort : explained->sorts) {
      std::printf("%s  [%u]", sort.label.c_str(), sort.op);
      if (!sort.source.empty()) std::printf("  -- %s", sort.source.c_str());
      std::printf("\n");
      if (sort.reasons.empty()) {
        std::printf("  rank never consumed (removable by column pruning)\n");
      }
      for (const std::string& reason : sort.reasons) {
        std::printf("  ordered because: %s\n", reason.c_str());
      }
    }
    return 0;
  }

  if (want_explain_rewrites) {
    exrquy::Result<exrquy::RewriteExplanation> explained =
        session.ExplainRewrites(query, options);
    if (!explained.ok()) {
      std::fprintf(stderr, "xq: %s\n",
                   explained.status().ToString().c_str());
      return 1;
    }
    for (const auto& e : explained->entries) {
      const char* verdict = !e.checked ? "uncertified"
                            : e.valid  ? "certified"
                                       : "REJECTED";
      std::printf("%s  op %u -> op %u  [%s]", e.rule.c_str(), e.from, e.to,
                  verdict);
      if (e.checked && !e.valid) {
        std::printf("  obligation %s%s", e.obligation.c_str(),
                    e.committed ? " (committed anyway)" : " (kept out)");
      }
      std::printf("\n  %s", e.label.c_str());
      if (!e.source.empty()) std::printf("  -- %s", e.source.c_str());
      std::printf("\n  %s\n", e.detail.c_str());
      for (const std::string& fact : e.facts) {
        std::printf("  cites %s\n", fact.c_str());
      }
      if (e.checked && !e.valid) {
        std::printf("  %s\n", e.diagnostic.c_str());
      }
    }
    std::printf("[certify] emitted=%zu validated=%zu rejected=%zu\n",
                explained->emitted, explained->validated,
                explained->rejected);
    return explained->rejected == 0 ? 0 : 1;
  }

  if (want_plan || want_sql) {
    exrquy::Result<exrquy::QueryPlans> plans =
        session.Plan(query, options);
    if (!plans.ok()) {
      std::fprintf(stderr, "xq: %s\n", plans.status().ToString().c_str());
      return 1;
    }
    if (want_plan) {
      std::fputs(exrquy::PlanToText(*plans->dag, plans->optimized,
                                    session.strings())
                     .c_str(),
                 stdout);
    }
    if (want_sql) {
      exrquy::Result<std::string> sql = exrquy::PlanToSql(
          *plans->dag, plans->optimized, session.strings());
      if (!sql.ok()) {
        std::fprintf(stderr, "xq: %s\n", sql.status().ToString().c_str());
        return 1;
      }
      std::fputs(sql->c_str(), stdout);
    }
    return 0;
  }

  exrquy::Result<exrquy::QueryResult> r = session.Execute(query, options);
  if (!r.ok()) {
    std::fprintf(stderr, "xq: %s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", r->serialized.c_str());
  if (options.profile) {
    std::fprintf(stderr, "\n%s", r->profile.ToString().c_str());
  }
  return 0;
}
