file(REMOVE_RECURSE
  "libexrquy_algebra.a"
)
