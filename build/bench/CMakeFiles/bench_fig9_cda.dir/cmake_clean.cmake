file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_cda.dir/bench_fig9_cda.cc.o"
  "CMakeFiles/bench_fig9_cda.dir/bench_fig9_cda.cc.o.d"
  "bench_fig9_cda"
  "bench_fig9_cda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_cda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
