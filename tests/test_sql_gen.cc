// Tests for the SQL:1999 code generator: structural faithfulness of the
// emitted CTE chain — % renders as ROW_NUMBER() OVER (PARTITION BY ...
// ORDER BY ...) exactly as the paper defines it, # as an un-ordered
// ROW_NUMBER, steps as pre/size range joins against the doc relation —
// plus basic well-formedness and the ordered/unordered plan contrast.
#include <gtest/gtest.h>

#include <algorithm>

#include "api/session.h"
#include "sql/sql_gen.h"

namespace exrquy {
namespace {

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

class SqlGenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        session_.LoadDocument("t.xml", "<a><b><c/><d/></b><c/></a>").ok());
  }

  std::string Sql(const std::string& query, const QueryOptions& options,
                  bool optimized = true) {
    Result<QueryPlans> p = session_.Plan(query, options);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    Result<std::string> sql = PlanToSql(
        *p->dag, optimized ? p->optimized : p->initial, session_.strings());
    EXPECT_TRUE(sql.ok()) << sql.status().ToString();
    return sql.ok() ? *sql : "";
  }

  Session session_;
};

TEST_F(SqlGenTest, ShapeOfASimpleQuery) {
  QueryOptions baseline;
  baseline.enable_order_indifference = false;
  std::string sql = Sql(R"(doc("t.xml")/a/b)", baseline);
  EXPECT_NE(sql.find("WITH t"), std::string::npos);
  EXPECT_NE(sql.find("SELECT iter, pos, item FROM"), std::string::npos);
  EXPECT_NE(sql.find("ORDER BY iter, pos;"), std::string::npos);
  // fn:doc resolves against the doc relation.
  EXPECT_NE(sql.find("doc_name = 't.xml'"), std::string::npos);
  // Child steps join on parent.
  EXPECT_NE(sql.find("d.parent = c.item"), std::string::npos);
  EXPECT_NE(sql.find("d.name = 'b'"), std::string::npos);
}

TEST_F(SqlGenTest, RowNumIsTheSql1999RankingOperator) {
  QueryOptions baseline;
  baseline.enable_order_indifference = false;
  std::string sql = Sql(R"(doc("t.xml")/a/b)", baseline);
  // %pos:<item>|iter — the paper's defining equivalence.
  EXPECT_NE(
      sql.find("ROW_NUMBER() OVER (PARTITION BY iter ORDER BY item) AS pos"),
      std::string::npos);
}

TEST_F(SqlGenTest, RowIdIsUnorderedRowNumber) {
  QueryOptions unordered;
  unordered.default_ordering = OrderingMode::kUnordered;
  std::string sql = Sql(R"(doc("t.xml")/a/b)", unordered);
  EXPECT_NE(sql.find("ROW_NUMBER() OVER () AS pos"), std::string::npos);
  EXPECT_EQ(sql.find("ORDER BY item"), std::string::npos);
}

TEST_F(SqlGenTest, OrderedPlanHasMoreOrderedRankingsThanUnordered) {
  const std::string q =
      R"(for $t in doc("t.xml")/a return count($t//(c|d)))";
  QueryOptions baseline;
  baseline.enable_order_indifference = false;
  QueryOptions unordered;
  unordered.default_ordering = OrderingMode::kUnordered;
  std::string ordered_sql = Sql(q, baseline);
  std::string unordered_sql = Sql(q, unordered);
  size_t ordered_ranks = CountOccurrences(ordered_sql, "OVER (PARTITION");
  size_t unordered_ranks =
      CountOccurrences(unordered_sql, "OVER (PARTITION");
  EXPECT_GT(ordered_ranks, unordered_ranks);
}

TEST_F(SqlGenTest, DescendantStepUsesPreSizeRange) {
  QueryOptions unordered;
  unordered.default_ordering = OrderingMode::kUnordered;
  // Step merging turns //c into descendant::c — the pre/size range join.
  std::string sql = Sql(R"(doc("t.xml")//c)", unordered);
  EXPECT_NE(sql.find("d.pre > c.item"), std::string::npos);
  EXPECT_NE(sql.find("+ (SELECT size FROM doc s WHERE s.pre = c.item)"),
            std::string::npos);
}

TEST_F(SqlGenTest, AggregatesGroupByIter) {
  std::string sql = Sql(R"(count(doc("t.xml")//c))", {});
  EXPECT_NE(sql.find("COUNT(*)"), std::string::npos);
  EXPECT_NE(sql.find("GROUP BY iter"), std::string::npos);
}

TEST_F(SqlGenTest, ComparisonAndLiterals) {
  std::string sql = Sql("(1, 2) = (2, 3)", {});
  EXPECT_NE(sql.find("UNION ALL"), std::string::npos);
  EXPECT_NE(sql.find(" = "), std::string::npos);
  EXPECT_NE(sql.find("EXISTS"), std::string::npos);  // default-false diff
}

TEST_F(SqlGenTest, ConstructorsRequireHostUdfs) {
  std::string sql = Sql("<e>{ 1 }</e>", {});
  EXPECT_NE(sql.find("xq_construct_elem"), std::string::npos);
  EXPECT_NE(sql.find("-- Required host UDFs:"), std::string::npos);
}

TEST_F(SqlGenTest, StringAggregationWithSeparatorAndOrder) {
  std::string sql = Sql(R"(<e a="{ doc("t.xml")//c }"/>)", {});
  EXPECT_NE(sql.find("STRING_AGG("), std::string::npos);
  EXPECT_NE(sql.find("ORDER BY pos"), std::string::npos);
}

TEST_F(SqlGenTest, StringLiteralsEscaped) {
  std::string sql = Sql(R"(("it''s", "a'b"))", {});
  EXPECT_NE(sql.find("'it''''s'"), std::string::npos);
  EXPECT_NE(sql.find("'a''b'"), std::string::npos);
}

TEST_F(SqlGenTest, BalancedParensInEveryPlan) {
  QueryOptions configs[2];
  configs[0].enable_order_indifference = false;
  configs[1].default_ordering = OrderingMode::kUnordered;
  const char* queries[] = {
      R"(for $b in doc("t.xml")/a/b where count($b/*) > 1
         order by name($b) return <r>{ $b/c }</r>)",
      R"(some $x in doc("t.xml")//c satisfies $x << doc("t.xml")//d)",
      R"(sum(for $i in 1 to 5 return $i))",
      R"(string-join(for $c in doc("t.xml")//* return name($c), "/"))",
  };
  for (const QueryOptions& o : configs) {
    for (const char* q : queries) {
      std::string sql = Sql(q, o);
      EXPECT_EQ(std::count(sql.begin(), sql.end(), '('),
                std::count(sql.begin(), sql.end(), ')'))
          << q;
      // Every CTE that is defined is either referenced or the root.
      EXPECT_NE(sql.find("WITH t"), std::string::npos);
    }
  }
}

TEST_F(SqlGenTest, EmptySequenceRendersEmptyRelation) {
  std::string sql = Sql("()", {});
  EXPECT_NE(sql.find("WHERE 1 = 0"), std::string::npos);
}

}  // namespace
}  // namespace exrquy
