// API-level tests for exrquy::Session: document management, plan-only
// compilation, profiling, error paths, store hygiene across executions,
// and plan rendering.
#include <gtest/gtest.h>

#include <fstream>

#include "algebra/dot.h"
#include "api/session.h"

namespace exrquy {
namespace {

TEST(SessionTest, LoadAndQueryMultipleDocuments) {
  Session session;
  ASSERT_TRUE(session.LoadDocument("a.xml", "<a><x/></a>").ok());
  ASSERT_TRUE(session.LoadDocument("b.xml", "<b><x/><x/></b>").ok());
  Result<QueryResult> r = session.Execute(
      R"((count(doc("a.xml")//x), count(doc("b.xml")//x)))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->serialized, "1 2");
}

TEST(SessionTest, LoadRejectsMalformedXml) {
  Session session;
  Status st = session.LoadDocument("bad.xml", "<a><b></a>");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, LoadDocumentFile) {
  std::string path = ::testing::TempDir() + "/exrquy_session_test.xml";
  {
    std::ofstream out(path);
    out << "<f><g/></f>";
  }
  Session session;
  ASSERT_TRUE(session.LoadDocumentFile("f.xml", path).ok());
  Result<QueryResult> r = session.Execute(R"(count(doc("f.xml")/f/g))");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->serialized, "1");
  EXPECT_FALSE(session.LoadDocumentFile("g.xml", path + ".missing").ok());
}

TEST(SessionTest, ReloadedNameShadowsOldDocument) {
  Session session;
  ASSERT_TRUE(session.LoadDocument("d.xml", "<v>1</v>").ok());
  ASSERT_TRUE(session.LoadDocument("d.xml", "<v>2</v>").ok());
  Result<QueryResult> r = session.Execute(R"(doc("d.xml")/v/text())");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->serialized, "2");
}

TEST(SessionTest, ExecuteReportsQueryErrors) {
  Session session;
  EXPECT_EQ(session.Execute("for $x").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.Execute("$nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(session.Execute(R"(doc("nope.xml"))").status().code(),
            StatusCode::kNotFound);
}

TEST(SessionTest, StoreDoesNotGrowAcrossExecutions) {
  Session session;
  ASSERT_TRUE(session.LoadDocument("d.xml", "<r><x/><x/></r>").ok());
  // Warm up, then check the constructed fragments are reclaimed.
  ASSERT_TRUE(
      session.Execute(R"(for $x in doc("d.xml")//x return <e>{ $x }</e>)")
          .ok());
  size_t nodes = session.store().node_count();
  size_t frags = session.store().fragment_count();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        session.Execute(R"(for $x in doc("d.xml")//x return <e>{ $x }</e>)")
            .ok());
  }
  EXPECT_EQ(session.store().node_count(), nodes);
  EXPECT_EQ(session.store().fragment_count(), frags);
}

TEST(SessionTest, PlanReturnsBothRoots) {
  Session session;
  ASSERT_TRUE(session.LoadDocument("d.xml", "<r><x/></r>").ok());
  Result<QueryPlans> p = session.Plan(R"(count(doc("d.xml")//x))");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_NE(p->initial, kNoOp);
  EXPECT_NE(p->optimized, kNoOp);
  EXPECT_LE(p->dag->ReachableFrom(p->optimized).size(),
            p->dag->ReachableFrom(p->initial).size());
}

TEST(SessionTest, PlanToTextRendersTree) {
  Session session;
  ASSERT_TRUE(session.LoadDocument("d.xml", "<r><x/></r>").ok());
  Result<QueryPlans> p = session.Plan(R"(doc("d.xml")/r/x)");
  ASSERT_TRUE(p.ok());
  std::string text = PlanToText(*p->dag, p->optimized, session.strings());
  EXPECT_NE(text.find("Step child::r"), std::string::npos);
  EXPECT_NE(text.find("Step child::x"), std::string::npos);
  EXPECT_NE(text.find("Doc \"d.xml\""), std::string::npos);
}

TEST(SessionTest, ProfileRecordsWhenRequested) {
  Session session;
  ASSERT_TRUE(session.LoadDocument("d.xml", "<r><x/><x/></r>").ok());
  QueryOptions with;
  with.profile = true;
  Result<QueryResult> r =
      session.Execute(R"(count(doc("d.xml")//x))", with);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->profile.by_kind().size(), 0u);
  EXPECT_GT(r->profile.by_prov().size(), 0u);
  EXPECT_FALSE(r->profile.ToString().empty());

  Result<QueryResult> without =
      session.Execute(R"(count(doc("d.xml")//x))", {});
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(without->profile.by_kind().size(), 0u);
}

TEST(SessionTest, ResultCarriesItemsAndStats) {
  Session session;
  ASSERT_TRUE(session.LoadDocument("d.xml", "<r><x>1</x><x>2</x></r>").ok());
  Result<QueryResult> r = session.Execute(R"(doc("d.xml")//x)");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->items.size(), 2u);
  EXPECT_EQ(r->items[0], "<x>1</x>");
  EXPECT_GT(r->plan_initial.total_ops, 0u);
  EXPECT_GT(r->plan_optimized.total_ops, 0u);
  EXPECT_GE(r->compile_ms, 0.0);
  EXPECT_GE(r->execute_ms, 0.0);
}

TEST(SessionTest, PhysicalSortDetectionPreservesResults) {
  Session session;
  ASSERT_TRUE(
      session.LoadDocument("d.xml", "<r><x>3</x><x>1</x><x>2</x></r>").ok());
  const char* queries[] = {
      R"(doc("d.xml")//x)",
      R"(for $x in doc("d.xml")//x order by number($x) return $x/text())",
      R"(for $a in doc("d.xml")//x for $b in doc("d.xml")//x
         where number($a) < number($b) return concat($a, $b))",
  };
  QueryOptions plain;
  plain.enable_order_indifference = false;
  QueryOptions phys = plain;
  phys.physical_sort_detection = true;
  for (const char* q : queries) {
    Result<QueryResult> a = session.Execute(q, plain);
    Result<QueryResult> b = session.Execute(q, phys);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->items, b->items) << q;
  }
  // A path query's per-step % input arrives in document order: the sort
  // is skipped.
  Result<QueryResult> r = session.Execute(R"(doc("d.xml")/r/x)", phys);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->sorts_skipped, 0u);
  Result<QueryResult> off = session.Execute(R"(doc("d.xml")/r/x)", plain);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->sorts_skipped, 0u);
}

TEST(SessionTest, PrologOrderingDeclarationRespected) {
  Session session;
  ASSERT_TRUE(session.LoadDocument("d.xml", "<r><x/><y/></r>").ok());
  // declare ordering unordered switches the mode even when the options
  // default to ordered.
  Result<QueryPlans> p = session.Plan(
      R"(declare ordering unordered; doc("d.xml")/r/x)");
  ASSERT_TRUE(p.ok());
  PlanStats stats = CollectPlanStats(*p->dag, p->initial);
  EXPECT_GT(stats.rowid_ops, 0u);
  EXPECT_EQ(stats.rownum_ops, 0u);
}

}  // namespace
}  // namespace exrquy
