// The dataflow framework (opt/dataflow.h) and its concrete instances
// (opt/analyses.h), tested at three levels:
//
//  1. the generic engines, driven by purpose-built toy analyses, pinning
//     the convergence contract (single sweep on the DAG's id order) and
//     the cross-call memoization of forward facts;
//  2. plan-level golden tests: with the fact-driven rewrites disabled,
//     the optimizer built on the framework must reproduce the committed
//     pre-framework plans byte for byte, for all 20 XMark queries in
//     both ordering modes (tests/corpus/plans);
//  3. dynamic validation: the key and cardinality facts claimed for the
//     optimized XMark plans are checked against actual evaluation —
//     claimed key columns must be duplicate-free in the materialized
//     table, and row counts must land inside the claimed interval.
//
// Equality of the migrated analyses with the legacy one-shot walks is
// additionally audited on every verified plan by opt/verify.cc, which
// keeps an independent copy of the old liveness walk ("[liveness-
// equivalence]"); the XMark and fuzz suites run with verify_each_pass.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "algebra/algebra.h"
#include "algebra/dot.h"
#include "api/session.h"
#include "engine/eval.h"
#include "opt/analyses.h"
#include "opt/dataflow.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

namespace exrquy {
namespace {

using col::item;
using col::iter;
using col::pos;

// ---------------------------------------------------------------------------
// 1. The generic engines, with toy analyses.
// ---------------------------------------------------------------------------

// Forward: number of operators in the sub-DAG (shared nodes counted
// once per edge — i.e. sub-*tree* size, which distinguishes DAG sharing
// from tree duplication in the test below).
struct SubtreeSize {
  using Fact = uint64_t;
  Fact Bottom(const Dag&, OpId) const { return 0; }
  bool Join(Fact* into, const Fact& from) const {
    if (from <= *into) return false;
    *into = from;
    return true;
  }
  Fact Transfer(const Dag&, OpId,
                const std::vector<const Fact*>& in) const {
    Fact n = 1;
    for (const Fact* f : in) n += *f;
    return n;
  }
};

// Backward: longest path from the root (a "depth" demand).
struct DepthFromRoot {
  using Fact = uint64_t;
  Fact Bottom(const Dag&, OpId) const { return 0; }
  bool Join(Fact* into, const Fact& from) const {
    if (from <= *into) return false;
    *into = from;
    return true;
  }
  void Transfer(const Dag&, OpId, const Fact& fact,
                std::vector<Fact>* to_children) const {
    for (Fact& f : *to_children) f = fact + 1;
  }
};

class DataflowTest : public ::testing::Test {
 protected:
  OpId Triples(std::vector<std::array<int64_t, 3>> rows) {
    LitTable t;
    t.cols = {iter(), pos(), item()};
    for (const auto& r : rows) {
      t.rows.push_back(
          {Value::Int(r[0]), Value::Int(r[1]), Value::Int(r[2])});
    }
    return dag_.Lit(std::move(t));
  }

  // A diamond: two distinct unary chains off one shared literal,
  // re-joined by a Union (each arm: Fun, Select on it, projection back
  // to the common schema — 3 ops per arm, 8 ops, 9 tree nodes).
  OpId Diamond(OpId* out_lit = nullptr) {
    OpId l = Triples({{1, 1, 5}});
    ColId a = ColSym("da");
    ColId b = ColSym("db");
    OpId fa = dag_.Fun(l, FunKind::kEq, a, {pos(), pos()});
    OpId fb = dag_.Fun(l, FunKind::kEq, b, {pos(), item()});
    std::vector<std::pair<ColId, ColId>> keep = {
        {iter(), iter()}, {pos(), pos()}, {item(), item()}};
    OpId pa = dag_.Project(dag_.Select(fa, a), keep);
    OpId pb = dag_.Project(dag_.Select(fb, b), keep);
    if (out_lit != nullptr) *out_lit = l;
    return dag_.Union(pa, pb);
  }

  Dag dag_;
};

TEST_F(DataflowTest, ForwardSingleSweepOnDag) {
  OpId root = Diamond();
  ForwardDataflow<SubtreeSize> flow(&dag_);
  // lit(1) -> fun(2) -> sel(3) -> proj(4) on both arms; union = 1+4+4.
  EXPECT_EQ(flow.Get(root), 9u);
  size_t reachable = dag_.ReachableFrom(root).size();
  EXPECT_EQ(reachable, 8u);  // the literal is shared, not duplicated
  // Ascending-id order is topological: one transfer per op, no rejoins.
  EXPECT_EQ(flow.stats().transfers, reachable);
  EXPECT_EQ(flow.stats().rejoins, 0u);
}

TEST_F(DataflowTest, ForwardMemoizesAcrossCallsAndGrowth) {
  OpId root = Diamond();
  ForwardDataflow<SubtreeSize> flow(&dag_);
  (void)flow.Get(root);
  size_t after_first = flow.stats().transfers;
  // Re-asking costs nothing — a cached fact doesn't even start a solve.
  (void)flow.Get(root);
  EXPECT_EQ(flow.stats().transfers, after_first);
  EXPECT_EQ(flow.stats().solves, 1u);
  // Growing the DAG (as rewrites do) only transfers the new operator.
  OpId grown = dag_.Distinct(root);
  EXPECT_EQ(flow.Get(grown), 10u);
  EXPECT_EQ(flow.stats().transfers, after_first + 1);
  EXPECT_EQ(flow.stats().solves, 2u);
}

TEST_F(DataflowTest, BackwardSingleSweepAndJoinAtSharing) {
  OpId lit = kNoOp;
  OpId root = Diamond(&lit);
  BackwardDataflow<DepthFromRoot> flow(&dag_);
  auto facts = flow.Solve(root, 0);
  ASSERT_EQ(facts.size(), 8u);
  // The shared literal is reached through both arms at depth 4; the
  // join keeps the maximum, and the descending worklist drains both
  // parents before the literal transfers — no rejoin.
  EXPECT_EQ(facts.at(root), 0u);
  EXPECT_EQ(facts.at(lit), 4u);
  EXPECT_EQ(flow.stats().transfers, 8u);
  EXPECT_EQ(flow.stats().rejoins, 0u);
}

TEST_F(DataflowTest, BackwardSolvesArePerSeed) {
  OpId root = Diamond();
  BackwardDataflow<DepthFromRoot> flow(&dag_);
  auto shallow = flow.Solve(root, 0);
  auto deep = flow.Solve(root, 10);
  EXPECT_EQ(shallow.at(root) + 10, deep.at(root));
  EXPECT_EQ(flow.stats().solves, 2u);
}

// The liveness instance on a hand-built plan: provenance's demanded
// domains must coincide with ComputeICols for the same seed (the
// invariant opt/verify.cc audits on every plan).
TEST_F(DataflowTest, ProvenanceDomainsEqualLiveness) {
  OpId l = Triples({{1, 1, 5}, {1, 2, 7}});
  ColId rank = ColSym("dr");
  OpId rn = dag_.RowNum(l, rank, {{pos(), false}}, iter());
  OpId root = dag_.Project(rn, {{iter(), iter()}, {pos(), rank},
                                {item(), item()}});
  ColSet seed = {iter(), pos(), item()};
  auto icols = ComputeICols(dag_, root, seed);
  OrderProvenance prov = ComputeOrderProvenance(dag_, root, seed, nullptr);
  for (OpId id : dag_.ReachableFrom(root)) {
    ColSet domain;
    auto it = prov.demand.find(id);
    if (it != prov.demand.end()) {
      for (const auto& [c, reasons] : it->second) {
        EXPECT_FALSE(reasons.empty());
        domain.insert(c);
      }
    }
    EXPECT_EQ(domain, icols[id]) << "op " << id;
  }
  // The rank's demand is attributed to the projection that consumes it.
  std::vector<std::string> why = prov.ReasonsFor(rn, rank);
  ASSERT_FALSE(why.empty());
}

// ---------------------------------------------------------------------------
// 2 + 3. XMark-level tests.
// ---------------------------------------------------------------------------

class DataflowXMarkTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    session_ = new Session();
    XMarkOptions options;
    options.scale = 0.004;
    ASSERT_TRUE(
        session_->LoadDocument("auction.xml", GenerateXMark(options)).ok());
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }

  static QueryOptions Ordered() { return {}; }
  static QueryOptions Unordered() {
    QueryOptions o;
    o.default_ordering = OrderingMode::kUnordered;
    return o;
  }

  static Session* session_;
};

Session* DataflowXMarkTest::session_ = nullptr;

// With the three fact-driven rewrites off, the framework-based optimizer
// must reproduce the pre-framework plans byte for byte. The goldens in
// tests/corpus/plans were dumped from the legacy implementation at the
// commit that introduced them; this is the migration's no-regression
// contract.
TEST_F(DataflowXMarkTest, GoldenPlansByteIdenticalToLegacy) {
  for (const XMarkQuery& q : XMarkQueries()) {
    for (bool unordered : {false, true}) {
      QueryOptions options = unordered ? Unordered() : Ordered();
      options.distinct_by_keys = false;
      options.empty_short_circuit = false;
      options.rownum_by_keys = false;
      options.rownum_by_od = false;
      Result<QueryPlans> p = session_->Plan(q.text, options);
      ASSERT_TRUE(p.ok()) << q.name << ": " << p.status().ToString();
      std::string text =
          PlanToText(*p->dag, p->optimized, session_->strings());
      std::string path = std::string(EXRQUY_TEST_CORPUS_DIR) + "/plans/" +
                         q.name + (unordered ? "_unordered" : "_ordered") +
                         ".txt";
      std::ifstream in(path);
      ASSERT_TRUE(in.good()) << path;
      std::ostringstream golden;
      golden << in.rdbuf();
      EXPECT_EQ(text, golden.str())
          << q.name << (unordered ? " unordered" : " ordered")
          << ": optimized plan drifted from " << path;
    }
  }
}

// Bit-exact identity of a Value, usable as a set element (grouping
// identity — the same notion Distinct and the key analysis reason
// about).
std::pair<uint8_t, uint64_t> ValueBits(const Value& v) {
  uint64_t bits = 0;
  switch (v.kind) {
    case ValueKind::kInt:
      bits = static_cast<uint64_t>(v.i);
      break;
    case ValueKind::kDouble:
      static_assert(sizeof(v.d) == sizeof(bits));
      __builtin_memcpy(&bits, &v.d, sizeof(bits));
      break;
    case ValueKind::kString:
    case ValueKind::kUntyped:
      bits = v.str;
      break;
    case ValueKind::kBool:
      bits = v.b ? 1 : 0;
      break;
    case ValueKind::kNode:
      bits = v.node;
      break;
  }
  return {static_cast<uint8_t>(v.kind), bits};
}

// Every key / cardinality fact claimed for an optimized XMark plan must
// hold on the actual data: evaluate the sub-plan and check. Evaluating
// every operator re-runs its whole subtree, so per (query, mode) the
// checked set is capped to the operators with a non-trivial claim.
TEST_F(DataflowXMarkTest, KeyAndCardinalityFactsHoldDynamically) {
  EvalContext ctx;
  ctx.store = &session_->store();
  ctx.strings = &session_->strings();
  ctx.documents = session_->documents();
  ctx.num_threads = 1;

  size_t key_checks = 0;
  size_t card_checks = 0;
  for (const XMarkQuery& q : XMarkQueries()) {
    for (bool unordered : {false, true}) {
      Result<QueryPlans> p =
          session_->Plan(q.text, unordered ? Unordered() : Ordered());
      ASSERT_TRUE(p.ok()) << q.name << ": " << p.status().ToString();
      const Dag& dag = *p->dag;
      CardTracker cards(&dag);
      KeyTracker keys(&dag, &cards);

      std::vector<OpId> targets;
      for (OpId id : dag.ReachableFrom(p->optimized)) {
        const CardRange& cr = cards.Get(id);
        if (!keys.Get(id).empty() || cr.min > 0 ||
            cr.max != kUnboundedRows) {
          targets.push_back(id);
        }
      }
      // Cap the per-plan work; keep the root (the overall claim) and an
      // even sample of the rest.
      const size_t kMaxTargets = 32;
      if (targets.size() > kMaxTargets) {
        std::vector<OpId> sampled;
        for (size_t i = 0; i < kMaxTargets; ++i) {
          sampled.push_back(targets[i * targets.size() / kMaxTargets]);
        }
        sampled.push_back(p->optimized);
        targets = std::move(sampled);
      }

      for (OpId id : targets) {
        Evaluator ev(dag, &ctx);
        Result<TablePtr> r = ev.Eval(id);
        ASSERT_TRUE(r.ok())
            << q.name << " op " << id << ": " << r.status().ToString();
        const Table& t = **r;
        const CardRange& cr = cards.Get(id);
        EXPECT_GE(t.rows(), cr.min)
            << q.name << " op " << id << " claimed " << cr.ToString();
        EXPECT_LE(t.rows(), cr.max)
            << q.name << " op " << id << " claimed " << cr.ToString();
        ++card_checks;
        for (ColId k : keys.Get(id)) {
          std::set<std::pair<uint8_t, uint64_t>> distinct;
          for (size_t row = 0; row < t.rows(); ++row) {
            EXPECT_TRUE(distinct.insert(ValueBits(t.at(k, row))).second)
                << q.name << " op " << id << ": claimed key column " << k
                << " has a duplicate at row " << row;
          }
          ++key_checks;
        }
      }
    }
  }
  // The corpus genuinely exercises both domains.
  EXPECT_GT(key_checks, 100u);
  EXPECT_GT(card_checks, 200u);
}

}  // namespace
}  // namespace exrquy
