#include "api/session.h"

#include <chrono>
#include <fstream>
#include <sstream>

#include "compiler/compile.h"
#include "opt/pipeline.h"
#include "opt/verify.h"
#include "xml/xml_parser.h"
#include "xquery/normalize.h"
#include "xquery/parser.h"

namespace exrquy {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

Session::Session() : store_(&strings_) {}

Status Session::LoadDocument(std::string_view name, std::string_view xml) {
  EXRQUY_ASSIGN_OR_RETURN(NodeIdx root, ParseXml(&store_, xml));
  store_.IndexFragment(store_.fragment_count() - 1);
  documents_[strings_.Intern(name)] = root;
  return Status::Ok();
}

Status Session::LoadDocumentFile(std::string_view name,
                                 const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFound("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return LoadDocument(name, buf.str());
}

Result<QueryPlans> Session::PlanInternal(std::string_view query,
                                         const QueryOptions& options) {
  EXRQUY_ASSIGN_OR_RETURN(Query parsed, ParseQuery(query));

  NormalizeOptions norm;
  norm.insert_unordered =
      options.enable_order_indifference && options.insert_unordered;
  EXRQUY_RETURN_IF_ERROR(Normalize(&parsed, norm));

  CompileOptions copts;
  copts.default_mode = options.default_ordering;
  copts.exploit_unordered =
      options.enable_order_indifference && options.mode_rules;
  EXRQUY_ASSIGN_OR_RETURN(CompiledQuery compiled,
                          CompileQuery(parsed, &strings_, copts));

  QueryPlans plans;
  plans.dag = std::move(compiled.dag);
  plans.initial = compiled.root;

  // Every compiled plan is statically verified before it goes anywhere
  // near the rewrites or the engine: a miscompilation surfaces here as a
  // Status naming the violated invariant, not as wrong answers or UB.
  Status verified = VerifyPlan(*plans.dag, plans.initial);
  if (!verified.ok()) {
    return Internal("compiled plan rejected: " + verified.message());
  }

  OptimizeOptions oopts;
  oopts.enable = options.enable_order_indifference;
  oopts.rewrites.column_pruning = options.column_pruning;
  oopts.rewrites.weaken_rownum = options.weaken_rownum;
  oopts.rewrites.distinct_elimination = options.distinct_elimination;
  oopts.rewrites.step_merging = options.step_merging;
  oopts.verify_each_pass = options.verify_each_pass;
  oopts.strings = &strings_;
  EXRQUY_ASSIGN_OR_RETURN(
      plans.optimized, Optimize(plans.dag.get(), plans.initial, oopts));

  // And once more after the pipeline (cheap single pass) so a rewrite
  // bug is caught even when the per-pass hook is off.
  verified = VerifyPlan(*plans.dag, plans.optimized);
  if (!verified.ok()) {
    return Internal("optimized plan rejected: " + verified.message());
  }
  return plans;
}

Result<QueryPlans> Session::Plan(std::string_view query,
                                 const QueryOptions& options) {
  return PlanInternal(query, options);
}

Result<QueryResult> Session::Execute(std::string_view query,
                                     const QueryOptions& options) {
  QueryResult result;

  Clock::time_point t0 = Clock::now();
  EXRQUY_ASSIGN_OR_RETURN(QueryPlans plans, PlanInternal(query, options));
  result.compile_ms = MsSince(t0);

  result.plan_initial = CollectPlanStats(*plans.dag, plans.initial);
  result.plan_optimized = CollectPlanStats(*plans.dag, plans.optimized);

  // Discard query-constructed fragments afterwards.
  size_t node_snapshot = store_.node_count();
  size_t fragment_snapshot = store_.fragment_count();

  EvalContext ctx;
  ctx.store = &store_;
  ctx.strings = &strings_;
  ctx.documents = documents_;
  ctx.detect_sorted_inputs = options.physical_sort_detection;
  ctx.num_threads = options.num_threads;
  ctx.chunk_rows = options.chunk_rows;
  ctx.release_intermediates = options.release_intermediates;
  if (options.profile) ctx.profile = &result.profile;

  Clock::time_point t1 = Clock::now();
  Evaluator evaluator(*plans.dag, &ctx);
  Result<TablePtr> table = evaluator.Eval(plans.optimized);
  if (!table.ok()) {
    store_.TruncateTo(node_snapshot, fragment_snapshot);
    return table.status();
  }
  result.execute_ms = MsSince(t1);
  result.sorts_skipped = ctx.sorts_skipped;

  Result<std::string> serialized = SerializeResult(**table, ctx);
  Result<std::vector<std::string>> items = ResultItems(**table, ctx);
  store_.TruncateTo(node_snapshot, fragment_snapshot);
  if (!serialized.ok()) return serialized.status();
  if (!items.ok()) return items.status();
  result.serialized = std::move(serialized).value();
  result.items = std::move(items).value();
  return result;
}

}  // namespace exrquy
