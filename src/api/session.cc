#include "api/session.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "algebra/dot.h"
#include "compiler/compile.h"
#include "opt/analyses.h"
#include "opt/pipeline.h"
#include "opt/verify.h"
#include "xml/xml_parser.h"
#include "xquery/normalize.h"
#include "xquery/parser.h"

namespace exrquy {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

uint64_t EnvU64(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  unsigned long long n = std::strtoull(v, &end, 10);
  return end == v ? 0 : static_cast<uint64_t>(n);
}

}  // namespace

Session::Session() : store_(&strings_) {}

Status Session::LoadDocument(std::string_view name, std::string_view xml) {
  EXRQUY_ASSIGN_OR_RETURN(NodeIdx root, ParseXml(&store_, xml));
  store_.IndexFragment(store_.fragment_count() - 1);
  documents_[strings_.Intern(name)] = root;
  return Status::Ok();
}

Status Session::LoadDocumentFile(std::string_view name,
                                 const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFound("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return LoadDocument(name, buf.str());
}

Result<QueryPlans> PlanQuery(std::string_view query,
                             const QueryOptions& options, StrPool* strings) {
  EXRQUY_ASSIGN_OR_RETURN(Query parsed, ParseQuery(query));

  NormalizeOptions norm;
  norm.insert_unordered =
      options.enable_order_indifference && options.insert_unordered;
  EXRQUY_RETURN_IF_ERROR(Normalize(&parsed, norm));

  CompileOptions copts;
  copts.default_mode = options.default_ordering;
  copts.exploit_unordered =
      options.enable_order_indifference && options.mode_rules;
  EXRQUY_ASSIGN_OR_RETURN(CompiledQuery compiled,
                          CompileQuery(parsed, strings, copts));

  QueryPlans plans;
  plans.dag = std::move(compiled.dag);
  plans.initial = compiled.root;

  // Every compiled plan is statically verified before it goes anywhere
  // near the rewrites or the engine: a miscompilation surfaces here as a
  // Status naming the violated invariant, not as wrong answers or UB.
  Status verified = VerifyPlan(*plans.dag, plans.initial);
  if (!verified.ok()) {
    return Internal("compiled plan rejected: " + verified.message());
  }

  OptimizeOptions oopts;
  oopts.enable = options.enable_order_indifference;
  oopts.rewrites.column_pruning = options.column_pruning;
  oopts.rewrites.weaken_rownum = options.weaken_rownum;
  oopts.rewrites.distinct_elimination = options.distinct_elimination;
  oopts.rewrites.step_merging = options.step_merging;
  oopts.rewrites.distinct_by_keys = options.distinct_by_keys;
  oopts.rewrites.empty_short_circuit = options.empty_short_circuit;
  oopts.rewrites.rownum_by_keys = options.rownum_by_keys;
  oopts.rewrites.rownum_by_od = options.rownum_by_od;
  oopts.rewrites.join_recognition = options.join_recognition;
  oopts.rewrites.theta_join = options.theta_join;
  oopts.verify_each_pass = options.verify_each_pass;
  oopts.strings = strings;
  oopts.trade_log = &plans.trades;
  EXRQUY_ASSIGN_OR_RETURN(
      plans.optimized, Optimize(plans.dag.get(), plans.initial, oopts));

  // And once more after the pipeline (cheap single pass) so a rewrite
  // bug is caught even when the per-pass hook is off.
  verified = VerifyPlan(*plans.dag, plans.optimized);
  if (!verified.ok()) {
    return Internal("optimized plan rejected: " + verified.message());
  }
  return plans;
}

Result<QueryPlans> Session::PlanInternal(std::string_view query,
                                         const QueryOptions& options) {
  return PlanQuery(query, options, &strings_);
}

Result<QueryPlans> Session::Plan(std::string_view query,
                                 const QueryOptions& options) {
  return PlanInternal(query, options);
}

Result<OrderExplanation> Session::ExplainOrder(std::string_view query,
                                               const QueryOptions& options) {
  EXRQUY_ASSIGN_OR_RETURN(QueryPlans plans, PlanInternal(query, options));
  const Dag& dag = *plans.dag;
  ColSet seed;
  for (ColId c : {col::iter(), col::pos(), col::item()}) {
    if (dag.op(plans.optimized).HasCol(c)) seed.insert(c);
  }
  OrderProvenance prov =
      ComputeOrderProvenance(dag, plans.optimized, seed, &strings_);
  OrderExplanation out;
  for (OpId id : dag.ReachableFrom(plans.optimized)) {
    const Op& op = dag.op(id);
    if (op.kind != OpKind::kRowNum) continue;
    OrderExplanation::SortPoint p;
    p.op = id;
    p.label = OpToString(dag, id, strings_);
    p.source = op.prov;
    p.reasons = prov.ReasonsFor(id, op.col);
    out.sorts.push_back(std::move(p));
  }
  for (const RewriteTrade& t : plans.trades) {
    OrderExplanation::Trade trade;
    trade.op = t.from;
    trade.label = OpToString(dag, t.from, strings_);
    trade.source = dag.op(t.from).prov;
    trade.rule = t.rule;
    trade.detail = t.detail;
    out.trades.push_back(std::move(trade));
  }
  std::map<OpId, std::vector<std::string>> annotations =
      ProvenanceAnnotations(dag, plans.optimized, prov);
  // Annotate the surviving replacements of traded %s with the trade's
  // justification (the eliminated % itself is no longer in the plan).
  for (const RewriteTrade& t : plans.trades) {
    annotations[t.to].push_back("order traded (" + t.rule + "): " +
                                t.detail);
  }
  // Annotations for ops that did not survive later passes would confuse
  // the DOT rendering: restrict to the final plan.
  std::map<OpId, std::vector<std::string>> live;
  for (OpId id : dag.ReachableFrom(plans.optimized)) {
    auto it = annotations.find(id);
    if (it != annotations.end()) live.emplace(id, std::move(it->second));
  }
  out.dot = PlanToDot(dag, plans.optimized, strings_, live);
  return out;
}

namespace {

// Rolls the Session's shared state back to its pre-query snapshot on
// every exit path — success, compile error, runtime error, or governor
// abort. Constructed fragments and query-interned strings never outlive
// the Execute call (results hold plain std::strings), so a failing-query
// loop leaves the store and pool exactly where they started and the
// Session stays usable. Detaches the budget first so the rollback's
// Release calls don't hit an accountant that is about to go away with
// this frame anyway.
class SessionRestore {
 public:
  SessionRestore(NodeStore* store, StrPool* strings)
      : store_(store),
        strings_(strings),
        nodes_(store->node_count()),
        fragments_(store->fragment_count()),
        strs_(strings->size()) {}

  ~SessionRestore() {
    store_->set_budget(nullptr);
    strings_->set_budget(nullptr);
    store_->TruncateTo(nodes_, fragments_);
    strings_->TruncateTo(strs_);
  }

 private:
  NodeStore* store_;
  StrPool* strings_;
  size_t nodes_;
  size_t fragments_;
  size_t strs_;
};

}  // namespace

Result<QueryResult> Session::Execute(std::string_view query,
                                     const QueryOptions& options) {
  QueryResult result;

  // Resolve the governor configuration: explicit options beat the
  // environment (EXRQUY_DEADLINE_MS / EXRQUY_MEM_BUDGET / EXRQUY_FAULT_*).
  Clock::time_point start = Clock::now();
  int64_t deadline_ms = options.deadline_ms > 0
                            ? options.deadline_ms
                            : static_cast<int64_t>(EnvU64("EXRQUY_DEADLINE_MS"));
  size_t budget_limit = options.memory_budget > 0
                            ? options.memory_budget
                            : static_cast<size_t>(EnvU64("EXRQUY_MEM_BUDGET"));
  FaultPlan faults = options.faults;
  if (!faults.any()) {
    EXRQUY_ASSIGN_OR_RETURN(faults, FaultPlan::FromEnv());
  }

  MemoryBudget budget(budget_limit);
  if (faults.fail_alloc != 0) budget.FailChargeAt(faults.fail_alloc);
  FaultInjector injector(faults);
  // Accounting costs a few atomic ops per charge site; only pay them when
  // someone will observe the numbers (a limit, an alloc fault, a profile).
  bool account =
      budget_limit != 0 || faults.fail_alloc != 0 || options.profile;

  SessionRestore restore(&store_, &strings_);
  if (account) {
    store_.set_budget(&budget);
    strings_.set_budget(&budget);
  }

  EXRQUY_ASSIGN_OR_RETURN(QueryPlans plans, PlanInternal(query, options));
  result.compile_ms = MsSince(start);

  result.plan_initial = CollectPlanStats(*plans.dag, plans.initial);
  result.plan_optimized = CollectPlanStats(*plans.dag, plans.optimized);

  EvalContext ctx;
  ctx.store = &store_;
  ctx.strings = &strings_;
  ctx.documents = documents_;
  ctx.detect_sorted_inputs = options.physical_sort_detection;
  ctx.num_threads = options.num_threads;
  ctx.chunk_rows = options.chunk_rows;
  ctx.release_intermediates = options.release_intermediates;
  if (options.profile) ctx.profile = &result.profile;
  ctx.cancel = options.cancel.get();
  if (deadline_ms > 0) {
    ctx.has_deadline = true;
    ctx.deadline = start + std::chrono::milliseconds(deadline_ms);
  }
  if (account) ctx.budget = &budget;
  if (faults.any()) ctx.faults = &injector;

  Clock::time_point t1 = Clock::now();
  Evaluator evaluator(*plans.dag, &ctx);
  Result<TablePtr> table = evaluator.Eval(plans.optimized);
  if (options.profile) {
    result.profile.SetBudget(budget.limit(), budget.charged(), budget.peak());
  }
  if (!table.ok()) return table.status();
  result.execute_ms = MsSince(t1);
  result.sorts_skipped = ctx.sorts_skipped;

  Result<std::string> serialized = SerializeResult(**table, ctx);
  Result<std::vector<std::string>> items = ResultItems(**table, ctx);
  if (!serialized.ok()) return serialized.status();
  if (!items.ok()) return items.status();
  result.serialized = std::move(serialized).value();
  result.items = std::move(items).value();
  return result;
}

}  // namespace exrquy
