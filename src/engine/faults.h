// Deterministic fault injection for the resource governor. A FaultPlan
// names exact failure points in terms of the engine's own monotonic
// counters — "fail allocation N", "cancel at operator dispatch K", "trip
// the deadline at chunk boundary M" — so a test (or an operator
// reproducing a production incident) can replay the identical failure on
// every run: the counters advance at well-defined points in the
// evaluator, not on wall clocks or thread identities. What is
// deterministic is the *outcome* (the query fails with the planned
// Status code iff the counter reaches the threshold, and the threshold
// is reached iff an unfaulted run would pass that many points); under
// parallel execution the specific operator observing the trip may vary,
// which the governor's clean-abort contract makes unobservable.
//
// The plan is configured per query via QueryOptions::faults or, when
// that is all zeros, the environment:
//
//   EXRQUY_FAULT_ALLOC=N           fail MemoryBudget charge N  -> kResourceExhausted
//   EXRQUY_FAULT_CANCEL_OP=K       cancel at op dispatch K     -> kCancelled
//   EXRQUY_FAULT_DEADLINE_CHUNK=M  deadline at chunk M         -> kDeadlineExceeded
//   EXRQUY_FAULT_TRANSIENT=1       mark the fault transient (see below)
//
// A *transient* fault models a one-off incident (an allocation glitch, a
// pressure spike) rather than a property of the query: the QueryService
// retry policy (api/service.h) is allowed to re-run a transiently-faulted
// request with the fault disarmed, where a plain injected fault is always
// surfaced verbatim so injection tests stay deterministic.
#ifndef EXRQUY_ENGINE_FAULTS_H_
#define EXRQUY_ENGINE_FAULTS_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "common/status.h"

namespace exrquy {

// Which failure to inject, in engine-counter coordinates. All thresholds
// are 1-based; 0 disarms the corresponding fault.
struct FaultPlan {
  uint64_t fail_alloc = 0;         // MemoryBudget charge number
  uint64_t cancel_at_op = 0;       // operator dispatch number
  uint64_t deadline_at_chunk = 0;  // chunk-boundary poll number
  bool transient = false;          // retryable-once incident, not a replay

  bool any() const {
    return fail_alloc != 0 || cancel_at_op != 0 || deadline_at_chunk != 0;
  }

  // Reads the EXRQUY_FAULT_* environment variables. Unset/empty = 0
  // (disarmed); anything else must be a plain non-negative decimal
  // integer (EXRQUY_FAULT_TRANSIENT: "0" or "1") — malformed, signed, or
  // out-of-range values are a kInvalidArgument naming the offending
  // variable, never silently parsed as garbage.
  static Result<FaultPlan> FromEnv();
};

// Per-query counter state for one FaultPlan. The evaluator consults it
// at every operator dispatch and chunk boundary; thresholds compare with
// >= so the answer stays true once reached (the governor's trip latch
// makes the first observation the only one that matters).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Counts one operator dispatch; true iff the cancel fault is armed and
  // dispatch number >= cancel_at_op.
  bool CancelAtOp() {
    if (plan_.cancel_at_op == 0) return false;
    return ops_.fetch_add(1, std::memory_order_relaxed) + 1 >=
           plan_.cancel_at_op;
  }

  // Counts one chunk-boundary poll; true iff the deadline fault is armed
  // and poll number >= deadline_at_chunk.
  bool DeadlineAtChunk() {
    if (plan_.deadline_at_chunk == 0) return false;
    return chunks_.fetch_add(1, std::memory_order_relaxed) + 1 >=
           plan_.deadline_at_chunk;
  }

  const FaultPlan& plan() const { return plan_; }

 private:
  const FaultPlan plan_;
  std::atomic<uint64_t> ops_{0};
  std::atomic<uint64_t> chunks_{0};
};

// ---------------------------------------------------------------------
// Exhaustive fault-point sweep.

// Which engine counter a sweep walks.
enum class FaultKind {
  kFailAlloc,        // MemoryBudget charges      -> kResourceExhausted
  kCancelAtOp,       // operator dispatches       -> kCancelled
  kDeadlineAtChunk,  // chunk-boundary polls      -> kDeadlineExceeded
};

// The Status code a fault of `kind` surfaces as when its point is hit.
StatusCode FaultKindCode(FaultKind kind);

// Runs `attempt` with the single fault point N armed for N = 1, 2, ...
// until the first clean (OK) run — i.e. until N exceeds every counter
// tick the workload performs, proving every single failure point was
// exercised. After each faulted attempt, `check` (optional) is invoked
// with (N, status) so the caller can assert the planned code, a pristine
// session/service, and a byte-identical unfaulted re-run.
//
// Returns the number of faulted points (the first clean N minus one).
// Errors: an attempt succeeding *before* a later one fails cannot happen
// by construction (the sweep stops at the first clean run); exceeding
// `max_points` without a clean run returns kInternal, the guard against
// a workload whose counters never settle.
Result<uint64_t> SweepFaultPoints(
    FaultKind kind, uint64_t max_points,
    const std::function<Status(const FaultPlan&)>& attempt,
    const std::function<void(uint64_t, const Status&)>& check = nullptr);

}  // namespace exrquy

#endif  // EXRQUY_ENGINE_FAULTS_H_
