
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xquery/ast.cc" "src/CMakeFiles/exrquy_xquery.dir/xquery/ast.cc.o" "gcc" "src/CMakeFiles/exrquy_xquery.dir/xquery/ast.cc.o.d"
  "/root/repo/src/xquery/lexer.cc" "src/CMakeFiles/exrquy_xquery.dir/xquery/lexer.cc.o" "gcc" "src/CMakeFiles/exrquy_xquery.dir/xquery/lexer.cc.o.d"
  "/root/repo/src/xquery/normalize.cc" "src/CMakeFiles/exrquy_xquery.dir/xquery/normalize.cc.o" "gcc" "src/CMakeFiles/exrquy_xquery.dir/xquery/normalize.cc.o.d"
  "/root/repo/src/xquery/parser.cc" "src/CMakeFiles/exrquy_xquery.dir/xquery/parser.cc.o" "gcc" "src/CMakeFiles/exrquy_xquery.dir/xquery/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/exrquy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
