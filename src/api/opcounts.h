// Figure 6-style operator-count report over the twenty XMark queries:
// for each query and ordering mode, the initial and optimized plans'
// operator tallies — total operators, % (blocking sorts), # (free
// numberings) and the #^ subset (numberings proven to be row positions
// by the order-dependency analysis) — plus the corpus-wide surviving-%
// totals per mode. The rendered report is committed as a golden
// (tests/corpus/opcounts/), so any drift in the rewriter's
// %-elimination power — in either direction — must be re-committed
// deliberately (tools/gen_opcounts regenerates it).
#ifndef EXRQUY_API_OPCOUNTS_H_
#define EXRQUY_API_OPCOUNTS_H_

#include <string>

#include "api/session.h"

namespace exrquy {

// Renders the report by planning every XMark query in both ordering
// modes against `session` (plans are data-independent; the session needs
// no documents loaded). Fails with the first planning error.
Result<std::string> OpCountReport(Session* session);

}  // namespace exrquy

#endif  // EXRQUY_API_OPCOUNTS_H_
