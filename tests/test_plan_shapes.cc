// Regression guards for the paper's plan-shape claims (Figures 6, 9, 10
// and Section 7), asserted as unit tests so refactoring the compiler or
// the rewriter cannot silently lose them. The benches print the same
// quantities; these tests pin them.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "algebra/stats.h"
#include "api/opcounts.h"
#include "api/session.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

namespace exrquy {
namespace {

class PlanShapesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    session_ = new Session();
    XMarkOptions options;
    options.scale = 0.004;
    ASSERT_TRUE(
        session_->LoadDocument("auction.xml", GenerateXMark(options)).ok());
    ASSERT_TRUE(
        session_->LoadDocument("t.xml", "<a><b><c/><d/></b><c/></a>").ok());
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }

  PlanStats Stats(const std::string& query, const QueryOptions& options,
                  bool optimized) {
    Result<QueryPlans> p = session_->Plan(query, options);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return CollectPlanStats(*p->dag,
                            optimized ? p->optimized : p->initial);
  }

  static QueryOptions BaselineOpts() {
    QueryOptions o;
    o.enable_order_indifference = false;
    return o;
  }

  static QueryOptions UnorderedOpts() {
    QueryOptions o;
    o.default_ordering = OrderingMode::kUnordered;
    return o;
  }

  static Session* session_;
};

Session* PlanShapesTest::session_ = nullptr;

// Figure 6(a)/(b): under mode unordered, all % but ONE are traded for #
// in the emitted Q6 plan; the residual % implements iter->seq.
TEST_F(PlanShapesTest, Fig6UnorderedLeavesExactlyOneRowNum) {
  PlanStats ordered = Stats(XMarkQueryText("Q6"), BaselineOpts(), false);
  PlanStats unordered = Stats(XMarkQueryText("Q6"), UnorderedOpts(), false);
  EXPECT_GE(ordered.rownum_ops, 5u);
  EXPECT_EQ(ordered.rowid_ops, 0u);
  EXPECT_EQ(unordered.rownum_ops, 1u);
  EXPECT_GE(unordered.rowid_ops, 5u);
}

// Figure 9 + Section 7: after CDA and the constant/arbitrary-column
// weakening, no % remains in Q6's plan — "any residual traces of order"
// are gone — and the plan shrank substantially.
TEST_F(PlanShapesTest, Fig9NoResidualOrderInQ6) {
  PlanStats emitted = Stats(XMarkQueryText("Q6"), UnorderedOpts(), false);
  PlanStats optimized = Stats(XMarkQueryText("Q6"), UnorderedOpts(), true);
  EXPECT_EQ(optimized.rownum_ops, 0u);
  EXPECT_LT(optimized.total_ops, emitted.total_ops);
  // Step merging: dos::node()/child::item became descendant::item.
  EXPECT_LT(optimized.step_ops, emitted.step_ops);
}

// Section 4.1: Q11's DAG shrinks by roughly the paper's 235 -> 141
// proportion (-40 %); we assert at least a quarter goes away and the %
// population collapses.
TEST_F(PlanShapesTest, Q11CdaReduction) {
  PlanStats emitted = Stats(XMarkQueryText("Q11"), UnorderedOpts(), false);
  PlanStats optimized = Stats(XMarkQueryText("Q11"), UnorderedOpts(), true);
  EXPECT_LT(optimized.total_ops * 4, emitted.total_ops * 3);
  EXPECT_LE(optimized.rownum_ops, 1u);
}

// Figure 10: unordered { $t//(c|d) } loses the union's Distinct and
// every % — '|' became ','.
TEST_F(PlanShapesTest, Fig10UnionBecomesConcatenation) {
  const std::string q =
      R"(unordered { for $t in doc("t.xml")/a return $t//(c|d) })";
  PlanStats baseline = Stats(q, BaselineOpts(), true);
  PlanStats enabled = Stats(q, QueryOptions{}, true);
  EXPECT_GT(baseline.rownum_ops, 0u);
  EXPECT_GT(baseline.distinct_ops, enabled.distinct_ops);
  EXPECT_EQ(enabled.rownum_ops, 0u);

  QueryOptions no_disjoint;
  no_disjoint.distinct_elimination = false;
  PlanStats kept = Stats(q, no_disjoint, true);
  EXPECT_EQ(kept.distinct_ops, enabled.distinct_ops + 1);
}

// The mode-independent rules: count's argument is order indifferent in
// *either* mode, so even under ordered mode the optimized plan for a
// count over a path carries no %.
TEST_F(PlanShapesTest, AggregatesShedOrderInOrderedModeToo) {
  QueryOptions ordered;  // exploit on, mode ordered
  PlanStats s = Stats(R"(count(doc("auction.xml")//item))", ordered, true);
  EXPECT_EQ(s.rownum_ops, 0u);
  EXPECT_EQ(s.step_ops, 1u);  // merged descendant::item
}

// Baseline plans keep strict order derivation: across the whole XMark
// set they carry at least as many % as the order-indifferent plans, and
// the # population only ever comes from predicate context numbering
// (which is order-free in any configuration) — never from the paper's
// rules, so enabling them strictly grows it.
TEST_F(PlanShapesTest, BaselineKeepsStrictOrderDerivation) {
  for (const XMarkQuery& q : XMarkQueries()) {
    PlanStats base = Stats(q.text, BaselineOpts(), true);
    PlanStats enabled = Stats(q.text, UnorderedOpts(), true);
    EXPECT_GE(base.rownum_ops, enabled.rownum_ops) << q.name;
    EXPECT_LE(base.rowid_ops, enabled.rowid_ops) << q.name;
    EXPECT_GT(base.rownum_ops, 0u) << q.name;
  }
}

// Key-based Distinct elimination (opt/analyses.h key + cardinality
// domains): Q1's unordered plan carries a Distinct over a subplan whose
// schema retains a key column, a fact only the key analysis can
// establish — no structural rule (step disjointness, set-typed input)
// applies. With only distinct_by_keys toggled, that Distinct must go.
TEST_F(PlanShapesTest, KeyFactsEliminateADistinctNothingElseCan) {
  QueryOptions with = UnorderedOpts();
  QueryOptions without = UnorderedOpts();
  without.distinct_by_keys = false;
  PlanStats on = Stats(XMarkQueryText("Q1"), with, true);
  PlanStats off = Stats(XMarkQueryText("Q1"), without, true);
  EXPECT_LT(on.distinct_ops, off.distinct_ops);

  // And across the whole corpus the flag is monotone: turning it on
  // never leaves more Distincts behind.
  for (const XMarkQuery& q : XMarkQueries()) {
    PlanStats a = Stats(q.text, with, true);
    PlanStats b = Stats(q.text, without, true);
    EXPECT_LE(a.distinct_ops, b.distinct_ops) << q.name;
    EXPECT_LE(a.total_ops, b.total_ops) << q.name;
  }
}

// The committed Figure 6-style operator-count report must match a fresh
// rendering byte for byte: any change to the rewriter's %-elimination
// power (either direction) has to be re-committed deliberately via
// tools/gen_opcounts.
TEST_F(PlanShapesTest, OpCountReportMatchesGolden) {
  Result<std::string> report = OpCountReport(session_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  std::string path =
      std::string(EXRQUY_TEST_CORPUS_DIR) + "/opcounts/xmark_opcounts.txt";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(*report, golden.str())
      << "operator counts drifted from " << path
      << " — regenerate with tools/gen_opcounts if deliberate";
}

// The corpus-wide count of surviving % in ordered mode must never creep
// back above the committed level (the order-dependency and semantic-type
// trades brought it from 100 down to 81). The byte-exact golden above
// catches any drift; this guard names the quantity the paper cares
// about and fails with a number, not a diff.
TEST_F(PlanShapesTest, OrderedModeSurvivingSortsDoNotRegress) {
  size_t surviving = 0;
  for (const XMarkQuery& q : XMarkQueries()) {
    surviving += Stats(q.text, QueryOptions{}, true).rownum_ops;
  }
  EXPECT_LE(surviving, 81u);
  // And the order-dependency trade must be doing real corpus-wide work:
  // turning it off leaves strictly more % behind.
  size_t without = 0;
  QueryOptions off;
  off.rownum_by_od = false;
  for (const XMarkQuery& q : XMarkQueries()) {
    without += Stats(q.text, off, true).rownum_ops;
  }
  EXPECT_LT(surviving, without);
}

// Optimization is monotone across the whole XMark set: never more
// operators, never more % after rewriting.
TEST_F(PlanShapesTest, RewritesMonotoneOnXMark) {
  for (const XMarkQuery& q : XMarkQueries()) {
    PlanStats before = Stats(q.text, UnorderedOpts(), false);
    PlanStats after = Stats(q.text, UnorderedOpts(), true);
    EXPECT_LE(after.total_ops, before.total_ops) << q.name;
    EXPECT_LE(after.rownum_ops, before.rownum_ops) << q.name;
    EXPECT_LE(after.step_ops, before.step_ops) << q.name;
  }
}

}  // namespace
}  // namespace exrquy
