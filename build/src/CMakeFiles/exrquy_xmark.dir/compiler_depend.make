# Empty compiler generated dependencies file for exrquy_xmark.
# This may be replaced when dependencies are built.
