// Grammar-based fuzzing: randomly generated queries over randomly
// generated documents, executed in the baseline and the fully enabled
// configuration. Invariants:
//
//   * both configurations succeed or both fail (with the same status
//     code class) — rewriting must not introduce or mask errors;
//   * ordered mode results are identical;
//   * unordered mode results are multiset-equal.
//
// The generator deliberately produces queries whose sub-expressions can
// be empty, plural, or type-heterogeneous, to push the EBV / aggregation
// / comparison paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <string>
#include <vector>

#include "api/session.h"

namespace exrquy {
namespace {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 0x9e3779b97f4a7c15ull + 1) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  int Below(int n) { return static_cast<int>(Next() % n); }

 private:
  uint64_t state_;
};

std::string RandomDoc(Rng* rng) {
  std::string xml = "<top>";
  int groups = 2 + rng->Below(3);
  for (int g = 0; g < groups; ++g) {
    xml += "<g k=\"" + std::to_string(rng->Below(9)) + "\">";
    int leaves = rng->Below(4);
    for (int l = 0; l < leaves; ++l) {
      int v = rng->Below(30);
      xml += (rng->Below(2) != 0)
                 ? "<n>" + std::to_string(v) + "</n>"
                 : "<m v=\"" + std::to_string(v) + "\"/>";
    }
    xml += "</g>";
  }
  xml += "</top>";
  return xml;
}

// A node-sequence expression (all items nodes).
std::string NodeExpr(Rng* rng, int depth, const std::string& var);
// A numeric/atomic expression (single item or empty).
std::string AtomicExpr(Rng* rng, int depth, const std::string& var);
// A boolean expression.
std::string BoolExpr(Rng* rng, int depth, const std::string& var);

std::string NodeExpr(Rng* rng, int depth, const std::string& var) {
  if (depth <= 0) return var.empty() ? R"(doc("f.xml")/top/g)" : var;
  switch (rng->Below(6)) {
    case 0:
      return NodeExpr(rng, depth - 1, var) + "/n";
    case 1:
      return NodeExpr(rng, depth - 1, var) + "//m";
    case 2:
      return "(" + NodeExpr(rng, depth - 1, var) + " | " +
             NodeExpr(rng, depth - 1, var) + ")";
    case 3:
      return NodeExpr(rng, depth - 1, var) + "[" +
             std::to_string(1 + rng->Below(3)) + "]";
    case 4:
      return NodeExpr(rng, depth - 1, var) + "[" +
             BoolExpr(rng, 0, ".") + "]";
    default:
      return R"(doc("f.xml")//g)";
  }
}

// Scalar edge literals for the arithmetic productions: INT64 boundaries,
// the first integer a double cannot represent, and an operand whose
// square overflows — steering the fuzz through the exact-integer,
// FOAR0001 and FOAR0002 paths (divergence would mean one stack wraps,
// loses precision, or errors where the other does not).
const char* kEdgeLiterals[] = {
    "9223372036854775807",
    "(-9223372036854775807 - 1)",
    "9007199254740993",
    "3037000500",
    "-1",
};

std::string AtomicExpr(Rng* rng, int depth, const std::string& var) {
  if (depth <= 0) return std::to_string(rng->Below(20));
  switch (rng->Below(8)) {
    case 0:
      return "count(" + NodeExpr(rng, depth - 1, var) + ")";
    case 1:
      return "sum(" + NodeExpr(rng, depth - 1, var) + "/@v)";
    case 2:
      return "(" + AtomicExpr(rng, depth - 1, var) + " + " +
             AtomicExpr(rng, depth - 1, var) + ")";
    case 3:
      return "(" + AtomicExpr(rng, depth - 1, var) + " * " +
             std::to_string(1 + rng->Below(4)) + ")";
    case 4:
      return "(" + AtomicExpr(rng, depth - 1, var) + " idiv " +
             std::to_string(1 + rng->Below(6)) + ")";
    case 5:
      // The divisor can evaluate to 0: both configurations must then
      // fail identically (FOAR0001).
      return "(" + AtomicExpr(rng, depth - 1, var) + " mod " +
             AtomicExpr(rng, depth - 1, var) + ")";
    case 6:
      return kEdgeLiterals[rng->Below(
          static_cast<int>(std::size(kEdgeLiterals)))];
    default:
      return std::to_string(rng->Below(20));
  }
}

std::string BoolExpr(Rng* rng, int depth, const std::string& var) {
  std::string ctx = var.empty() ? R"(doc("f.xml")//g)" : var;
  switch (rng->Below(5)) {
    case 0:
      return AtomicExpr(rng, depth, var) + " > " + AtomicExpr(rng, depth, var);
    case 1:
      return "exists(" + NodeExpr(rng, depth, var) + ")";
    case 2:
      return ctx + "/@k = " + std::to_string(rng->Below(9));
    case 3:
      return "some $s in " + ctx + " satisfies $s/@k > " +
             std::to_string(rng->Below(9));
    default:
      return "not(" + BoolExpr(rng, depth > 0 ? depth - 1 : 0, var) + ")";
  }
}

std::string RandomQuery(Rng* rng) {
  switch (rng->Below(5)) {
    case 0:
      return "for $x in " + NodeExpr(rng, 2, "") + " return count($x//n)";
    case 1:
      return "for $x in " + NodeExpr(rng, 2, "") + " where " +
             BoolExpr(rng, 1, "$x") + " return <r>{ $x/@k }</r>";
    case 2:
      return "for $x in " + NodeExpr(rng, 1, "") +
             " order by number($x/@k), count($x/n) return name($x)";
    case 3:
      return AtomicExpr(rng, 3, "");
    default:
      return "(" + BoolExpr(rng, 2, "") + ", " + AtomicExpr(rng, 2, "") +
             ")";
  }
}

class FuzzEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzEquivalenceTest, ConfigurationsAgree) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  Session session;
  ASSERT_TRUE(session.LoadDocument("f.xml", RandomDoc(&rng)).ok());

  QueryOptions baseline;
  baseline.enable_order_indifference = false;
  QueryOptions exploit_ordered;
  QueryOptions exploit_unordered;
  exploit_unordered.default_ordering = OrderingMode::kUnordered;
  // Fuzzed plans double as verifier input: every optimizer pass over
  // every generated query is statically checked (opt/verify.h); a
  // rewrite breaking an invariant fails the run with a named diagnostic
  // rather than (possibly) a silently wrong answer.
  exploit_ordered.verify_each_pass = true;
  exploit_unordered.verify_each_pass = true;

  int executed = 0;
  for (int i = 0; i < 40; ++i) {
    std::string query = RandomQuery(&rng);
    Result<QueryResult> a = session.Execute(query, baseline);
    Result<QueryResult> b = session.Execute(query, exploit_ordered);
    Result<QueryResult> c = session.Execute(query, exploit_unordered);

    ASSERT_EQ(a.ok(), b.ok()) << query << "\nbaseline: "
                              << a.status().ToString()
                              << "\nexploit:  " << b.status().ToString();
    ASSERT_EQ(a.ok(), c.ok()) << query << "\nbaseline: "
                              << a.status().ToString()
                              << "\nunordered: " << c.status().ToString();
    if (!a.ok()) continue;  // both failed identically: fine
    ++executed;
    EXPECT_EQ(a->items, b->items) << query;
    std::vector<std::string> sa = a->items;
    std::vector<std::string> sc = c->items;
    std::sort(sa.begin(), sa.end());
    std::sort(sc.begin(), sc.end());
    EXPECT_EQ(sa, sc) << query;
  }
  // The generator must produce mostly executable queries.
  EXPECT_GT(executed, 20);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalenceTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace exrquy
