#include "xml/serializer.h"

#include "common/check.h"

namespace exrquy {

void EscapeText(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '&':
        *out += "&amp;";
        break;
      case '<':
        *out += "&lt;";
        break;
      case '>':
        *out += "&gt;";
        break;
      case '\r':
        // A literal CR would be folded to LF by XML line-end
        // normalization on re-parse; the charref survives.
        *out += "&#xD;";
        break;
      default:
        *out += c;
    }
  }
}

void EscapeAttribute(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '&':
        *out += "&amp;";
        break;
      case '<':
        *out += "&lt;";
        break;
      case '>':
        *out += "&gt;";
        break;
      case '"':
        *out += "&quot;";
        break;
      // Literal whitespace in attribute values is subject to
      // attribute-value normalization (tabs and line ends become
      // spaces); escaping makes serialize -> parse the identity.
      case '\t':
        *out += "&#x9;";
        break;
      case '\n':
        *out += "&#xA;";
        break;
      case '\r':
        *out += "&#xD;";
        break;
      default:
        *out += c;
    }
  }
}

namespace {

void Indent(int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
}

// Serializes element node `n`; returns the first preorder rank after its
// subtree.
NodeIdx SerializeElement(const NodeStore& store, NodeIdx n, int depth,
                         const XmlSerializeOptions& options,
                         std::string* out) {
  EXRQUY_DCHECK(store.kind(n) == NodeKind::kElement);
  if (options.indent) Indent(depth, out);
  *out += '<';
  *out += store.name_str(n);
  NodeIdx end = n + store.size(n) + 1;
  NodeIdx child = n + 1;
  while (child < end && store.kind(child) == NodeKind::kAttribute) {
    *out += ' ';
    *out += store.name_str(child);
    *out += "=\"";
    EscapeAttribute(store.value_str(child), out);
    *out += '"';
    ++child;
  }
  if (child == end) {
    *out += "/>";
    if (options.indent) *out += '\n';
    return end;
  }
  *out += '>';
  bool has_element_children = false;
  for (NodeIdx c = child; c < end; c += store.size(c) + 1) {
    if (store.kind(c) == NodeKind::kElement) has_element_children = true;
  }
  bool pretty = options.indent && has_element_children;
  if (pretty) *out += '\n';
  while (child < end) {
    switch (store.kind(child)) {
      case NodeKind::kElement:
        child = SerializeElement(store, child, depth + 1, options, out);
        break;
      case NodeKind::kText:
        if (pretty) Indent(depth + 1, out);
        EscapeText(store.value_str(child), out);
        if (pretty) *out += '\n';
        ++child;
        break;
      case NodeKind::kComment:
        *out += "<!--";
        *out += store.value_str(child);
        *out += "-->";
        ++child;
        break;
      default:
        EXRQUY_CHECK(false);
    }
  }
  if (pretty) Indent(depth, out);
  *out += "</";
  *out += store.name_str(n);
  *out += '>';
  if (options.indent) *out += '\n';
  return end;
}

}  // namespace

void SerializeNode(const NodeStore& store, NodeIdx n,
                   const XmlSerializeOptions& options, std::string* out) {
  switch (store.kind(n)) {
    case NodeKind::kDocument: {
      NodeIdx end = n + store.size(n) + 1;
      NodeIdx child = n + 1;
      while (child < end) {
        SerializeNode(store, child, options, out);
        child += store.size(child) + 1;
      }
      break;
    }
    case NodeKind::kElement:
      SerializeElement(store, n, 0, options, out);
      break;
    case NodeKind::kAttribute:
      // A bare attribute serializes as name="value" (useful in results).
      *out += store.name_str(n);
      *out += "=\"";
      EscapeAttribute(store.value_str(n), out);
      *out += '"';
      break;
    case NodeKind::kText:
      EscapeText(store.value_str(n), out);
      break;
    case NodeKind::kComment:
      *out += "<!--";
      *out += store.value_str(n);
      *out += "-->";
      break;
  }
}

std::string SerializeNode(const NodeStore& store, NodeIdx n,
                          const XmlSerializeOptions& options) {
  std::string out;
  SerializeNode(store, n, options, &out);
  return out;
}

}  // namespace exrquy
