# Empty dependencies file for bench_fig6_plan_shapes.
# This may be replaced when dependencies are built.
