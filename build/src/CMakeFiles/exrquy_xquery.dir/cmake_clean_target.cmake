file(REMOVE_RECURSE
  "libexrquy_xquery.a"
)
