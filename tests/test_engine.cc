// Operator-level tests for the columnar engine: every algebra operator
// evaluated on small literal tables, including the % / # primitives, the
// grouped aggregates (with the EBV and order-sensitive string-join
// cases), joins, set operations, and node constructors.
#include <gtest/gtest.h>

#include "algebra/algebra.h"
#include "engine/eval.h"
#include "xml/xml_parser.h"

namespace exrquy {
namespace {

using col::item;
using col::iter;
using col::pos;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : store_(&strings_) {
    ctx_.store = &store_;
    ctx_.strings = &strings_;
  }

  // Builds a Lit with columns (iter, pos, item) from integer triples.
  OpId Triples(std::vector<std::array<int64_t, 3>> rows) {
    LitTable t;
    t.cols = {iter(), pos(), item()};
    for (const auto& r : rows) {
      t.rows.push_back(
          {Value::Int(r[0]), Value::Int(r[1]), Value::Int(r[2])});
    }
    return dag_.Lit(std::move(t));
  }

  TablePtr Eval(OpId root) {
    Evaluator ev(dag_, &ctx_);
    Result<TablePtr> r = ev.Eval(root);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : nullptr;
  }

  Status EvalError(OpId root) {
    Evaluator ev(dag_, &ctx_);
    Result<TablePtr> r = ev.Eval(root);
    EXPECT_FALSE(r.ok());
    return r.ok() ? Status::Ok() : r.status();
  }

  // Column values as int64 (CHECKs kind).
  std::vector<int64_t> Ints(const Table& t, ColId c) {
    std::vector<int64_t> out;
    for (size_t i = 0; i < t.rows(); ++i) {
      EXPECT_EQ(t.at(c, i).kind, ValueKind::kInt);
      out.push_back(t.at(c, i).i);
    }
    return out;
  }

  StrPool strings_;
  NodeStore store_;
  Dag dag_;
  EvalContext ctx_;
};

TEST_F(EngineTest, LitAndProject) {
  OpId l = Triples({{1, 1, 10}, {1, 2, 20}});
  ColId renamed = ColSym("val");
  TablePtr t = Eval(dag_.Project(l, {{renamed, item()}, {iter(), iter()}}));
  ASSERT_EQ(t->rows(), 2u);
  EXPECT_EQ(Ints(*t, renamed), (std::vector<int64_t>{10, 20}));
}

TEST_F(EngineTest, SelectKeepsTrueRows) {
  OpId l = Triples({{1, 1, 5}, {1, 2, 15}, {1, 3, 25}});
  ColId k = ColSym("k10");
  OpId withk = dag_.AttachConst(l, k, Value::Int(10));
  ColId b = ColSym("flag");
  OpId f = dag_.Fun(withk, FunKind::kGt, b, {item(), k});
  TablePtr t = Eval(dag_.Select(f, b));
  EXPECT_EQ(Ints(*t, item()), (std::vector<int64_t>{15, 25}));
}

TEST_F(EngineTest, SelectOnNonBoolErrors) {
  OpId l = Triples({{1, 1, 5}});
  Status st = EvalError(dag_.Select(l, item()));
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
}

TEST_F(EngineTest, EquiJoinMatchesKeys) {
  OpId l = Triples({{1, 1, 10}, {2, 1, 20}, {3, 1, 30}});
  ColId i2 = ColSym("iterX");
  ColId v2 = ColSym("itemX");
  LitTable rt;
  rt.cols = {i2, v2};
  rt.rows = {{Value::Int(1), Value::Int(100)},
             {Value::Int(3), Value::Int(300)},
             {Value::Int(3), Value::Int(301)}};
  OpId r = dag_.Lit(std::move(rt));
  TablePtr t = Eval(dag_.EquiJoin(l, r, iter(), i2));
  ASSERT_EQ(t->rows(), 3u);  // iter 1 once, iter 3 twice
  std::vector<int64_t> iters = Ints(*t, iter());
  std::sort(iters.begin(), iters.end());
  EXPECT_EQ(iters, (std::vector<int64_t>{1, 3, 3}));
}

TEST_F(EngineTest, CrossMultiplies) {
  OpId l = Triples({{1, 1, 10}, {2, 1, 20}});
  ColId c = ColSym("cc");
  LitTable rt;
  rt.cols = {c};
  rt.rows = {{Value::Int(7)}, {Value::Int(8)}};
  TablePtr t = Eval(dag_.Cross(l, dag_.Lit(std::move(rt))));
  EXPECT_EQ(t->rows(), 4u);
}

TEST_F(EngineTest, UnionAlignsByName) {
  OpId a = Triples({{1, 1, 10}});
  // Same columns in a different declaration order.
  LitTable bt;
  bt.cols = {item(), iter(), pos()};
  bt.rows = {{Value::Int(99), Value::Int(2), Value::Int(1)}};
  OpId b = dag_.Lit(std::move(bt));
  TablePtr t = Eval(dag_.Union(a, b));
  ASSERT_EQ(t->rows(), 2u);
  EXPECT_EQ(Ints(*t, item()), (std::vector<int64_t>{10, 99}));
  EXPECT_EQ(Ints(*t, iter()), (std::vector<int64_t>{1, 2}));
}

TEST_F(EngineTest, DifferenceAntiJoin) {
  OpId l = Triples({{1, 1, 0}, {2, 1, 0}, {3, 1, 0}});
  LitTable rt;
  rt.cols = {iter()};
  rt.rows = {{Value::Int(2)}};
  OpId r = dag_.Lit(std::move(rt));
  TablePtr t = Eval(dag_.Difference(l, r, {iter()}));
  EXPECT_EQ(Ints(*t, iter()), (std::vector<int64_t>{1, 3}));
}

TEST_F(EngineTest, SemiJoinKeepsMatches) {
  OpId l = Triples({{1, 1, 0}, {2, 1, 0}, {3, 1, 0}});
  LitTable rt;
  rt.cols = {iter()};
  rt.rows = {{Value::Int(2)}, {Value::Int(2)}, {Value::Int(3)}};
  OpId r = dag_.Lit(std::move(rt));
  TablePtr t = Eval(dag_.SemiJoin(l, r, {iter()}));
  EXPECT_EQ(Ints(*t, iter()), (std::vector<int64_t>{2, 3}));
}

TEST_F(EngineTest, DistinctStable) {
  OpId l = Triples({{1, 1, 5}, {1, 1, 5}, {1, 2, 5}, {1, 1, 5}});
  TablePtr t = Eval(dag_.Distinct(l));
  ASSERT_EQ(t->rows(), 2u);
  EXPECT_EQ(Ints(*t, pos()), (std::vector<int64_t>{1, 2}));
}

TEST_F(EngineTest, RowNumDensePerGroup) {
  OpId l = Triples({{2, 9, 0}, {1, 5, 0}, {2, 3, 0}, {1, 1, 0}});
  ColId rank = ColSym("rank1");
  TablePtr t = Eval(dag_.RowNum(l, rank, {{pos(), false}}, iter()));
  // Row order preserved; ranks dense within each iter group by pos.
  EXPECT_EQ(Ints(*t, rank), (std::vector<int64_t>{2, 2, 1, 1}));
}

TEST_F(EngineTest, RowNumDescendingAndUngrouped) {
  OpId l = Triples({{1, 1, 10}, {1, 2, 30}, {1, 3, 20}});
  ColId rank = ColSym("rank2");
  TablePtr t = Eval(dag_.RowNum(l, rank, {{item(), true}}, kNoCol));
  EXPECT_EQ(Ints(*t, rank), (std::vector<int64_t>{3, 1, 2}));
}

TEST_F(EngineTest, RowNumMultiKeyTieBreak) {
  OpId l = Triples({{1, 2, 5}, {1, 1, 5}, {1, 1, 4}});
  ColId rank = ColSym("rank3");
  TablePtr t =
      Eval(dag_.RowNum(l, rank, {{item(), false}, {pos(), false}}, kNoCol));
  EXPECT_EQ(Ints(*t, rank), (std::vector<int64_t>{3, 2, 1}));
}

TEST_F(EngineTest, RowIdSequential) {
  OpId l = Triples({{1, 1, 0}, {1, 2, 0}, {1, 3, 0}});
  ColId id = ColSym("rid");
  TablePtr t = Eval(dag_.RowId(l, id));
  EXPECT_EQ(Ints(*t, id), (std::vector<int64_t>{1, 2, 3}));
}

TEST_F(EngineTest, FunArithmeticAndComparisons) {
  OpId l = Triples({{1, 1, 6}});
  ColId k = ColSym("k4");
  OpId withk = dag_.AttachConst(l, k, Value::Int(4));
  ColId sum = ColSym("s");
  TablePtr t = Eval(dag_.Fun(withk, FunKind::kAdd, sum, {item(), k}));
  EXPECT_EQ(Ints(*t, sum), (std::vector<int64_t>{10}));

  ColId le = ColSym("le1");
  TablePtr t2 = Eval(dag_.Fun(withk, FunKind::kLe, le, {item(), k}));
  EXPECT_FALSE(t2->at(le, 0).b);
}

TEST_F(EngineTest, FunDivisionByZeroErrors) {
  OpId l = Triples({{1, 1, 6}});
  ColId z = ColSym("z0");
  OpId withz = dag_.AttachConst(l, z, Value::Int(0));
  Status st = EvalError(dag_.Fun(withz, FunKind::kIDiv, ColSym("q"),
                                 {item(), z}));
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
}

TEST_F(EngineTest, AggrCountSumPerGroup) {
  OpId l = Triples({{1, 1, 10}, {1, 2, 20}, {2, 1, 5}});
  ColId cnt = ColSym("cnt1");
  TablePtr t = Eval(dag_.Aggr(l, AggrKind::kCount, cnt, kNoCol, iter()));
  ASSERT_EQ(t->rows(), 2u);
  EXPECT_EQ(Ints(*t, cnt), (std::vector<int64_t>{2, 1}));

  ColId s = ColSym("sum1");
  TablePtr t2 = Eval(dag_.Aggr(l, AggrKind::kSum, s, item(), iter()));
  EXPECT_EQ(Ints(*t2, s), (std::vector<int64_t>{30, 5}));
}

TEST_F(EngineTest, AggrMaxMinNumericCast) {
  LitTable lt;
  lt.cols = {iter(), item()};
  lt.rows = {{Value::Int(1), Value::Untyped(strings_.Intern("5"))},
             {Value::Int(1), Value::Untyped(strings_.Intern("40"))}};
  OpId l = dag_.Lit(std::move(lt));
  ColId mx = ColSym("mx");
  TablePtr t = Eval(dag_.Aggr(l, AggrKind::kMax, mx, item(), iter()));
  ASSERT_EQ(t->rows(), 1u);
  // Untyped numerics compare numerically: 40 > 5 (not "5" > "40").
  EXPECT_EQ(t->at(mx, 0).kind, ValueKind::kDouble);
  EXPECT_DOUBLE_EQ(t->at(mx, 0).d, 40.0);
}

TEST_F(EngineTest, AggrAvg) {
  OpId l = Triples({{1, 1, 10}, {1, 2, 20}});
  ColId avg = ColSym("avg1");
  TablePtr t = Eval(dag_.Aggr(l, AggrKind::kAvg, avg, item(), iter()));
  EXPECT_DOUBLE_EQ(t->at(avg, 0).d, 15.0);
}

TEST_F(EngineTest, AggrEbvSingleAndNodes) {
  LitTable lt;
  lt.cols = {iter(), item()};
  lt.rows = {{Value::Int(1), Value::Int(0)},
             {Value::Int(2), Value::Int(7)},
             {Value::Int(3), Value::Node(0)},
             {Value::Int(3), Value::Node(1)}};
  OpId l = dag_.Lit(std::move(lt));
  ColId b = ColSym("ebv1");
  TablePtr t = Eval(dag_.Aggr(l, AggrKind::kEbv, b, item(), iter()));
  ASSERT_EQ(t->rows(), 3u);
  EXPECT_FALSE(t->at(b, 0).b);
  EXPECT_TRUE(t->at(b, 1).b);
  EXPECT_TRUE(t->at(b, 2).b);
}

TEST_F(EngineTest, AggrEbvMultiAtomicErrors) {
  OpId l = Triples({{1, 1, 1}, {1, 2, 2}});
  Status st = EvalError(
      dag_.Aggr(l, AggrKind::kEbv, ColSym("ebv2"), item(), iter()));
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
}

TEST_F(EngineTest, AggrStrJoinOrderedByPos) {
  LitTable lt;
  lt.cols = {iter(), pos(), item()};
  lt.rows = {{Value::Int(1), Value::Int(2), Value::Str(strings_.Intern("b"))},
             {Value::Int(1), Value::Int(1), Value::Str(strings_.Intern("a"))},
             {Value::Int(1), Value::Int(3), Value::Str(strings_.Intern("c"))}};
  OpId l = dag_.Lit(std::move(lt));
  ColId j = ColSym("join1");
  TablePtr t = Eval(dag_.AggrStrJoin(l, j, item(), iter(), pos(),
                                     strings_.Intern(" ")));
  EXPECT_EQ(strings_.Get(t->at(j, 0).str), "a b c");
}

TEST_F(EngineTest, AggrStrJoinCustomSeparator) {
  LitTable lt;
  lt.cols = {iter(), pos(), item()};
  lt.rows = {{Value::Int(1), Value::Int(1), Value::Str(strings_.Intern("x"))},
             {Value::Int(1), Value::Int(2), Value::Str(strings_.Intern("y"))}};
  OpId l = dag_.Lit(std::move(lt));
  ColId j = ColSym("join2");
  TablePtr t = Eval(dag_.AggrStrJoin(l, j, item(), iter(), pos(),
                                     strings_.Intern(", ")));
  EXPECT_EQ(strings_.Get(t->at(j, 0).str), "x, y");
}

TEST_F(EngineTest, RangeExpansion) {
  LitTable lt;
  ColId lo = ColSym("lo");
  ColId hi = ColSym("hi");
  lt.cols = {iter(), lo, hi};
  lt.rows = {{Value::Int(1), Value::Int(2), Value::Int(4)},
             {Value::Int(2), Value::Int(5), Value::Int(3)}};  // empty
  OpId r = dag_.Range(dag_.Lit(std::move(lt)), lo, hi);
  TablePtr t = Eval(r);
  ASSERT_EQ(t->rows(), 3u);
  EXPECT_EQ(Ints(*t, item()), (std::vector<int64_t>{2, 3, 4}));
  EXPECT_EQ(Ints(*t, iter()), (std::vector<int64_t>{1, 1, 1}));
}

TEST_F(EngineTest, StepOverDocument) {
  Result<NodeIdx> doc = ParseXml(&store_, "<a><b/><b/><c/></a>");
  ASSERT_TRUE(doc.ok());
  LitTable ctx;
  ctx.cols = {iter(), item()};
  ctx.rows = {{Value::Int(1), Value::Node(*doc + 1)}};
  OpId l = dag_.Lit(std::move(ctx));
  OpId st = dag_.Step(l, Axis::kChild,
                      NodeTest::Name(strings_.Intern("b")));
  TablePtr t = Eval(st);
  EXPECT_EQ(t->rows(), 2u);
}

TEST_F(EngineTest, StepOnAtomicErrors) {
  LitTable ctx;
  ctx.cols = {iter(), item()};
  ctx.rows = {{Value::Int(1), Value::Int(42)}};
  OpId st = dag_.Step(dag_.Lit(std::move(ctx)), Axis::kChild,
                      NodeTest::AnyKind());
  EXPECT_EQ(EvalError(st).code(), StatusCode::kTypeError);
}

TEST_F(EngineTest, DocResolvesRegisteredDocuments) {
  Result<NodeIdx> doc = ParseXml(&store_, "<a/>");
  ASSERT_TRUE(doc.ok());
  StrId name = strings_.Intern("d.xml");
  ctx_.documents[name] = *doc;
  TablePtr t = Eval(dag_.Doc(name));
  ASSERT_EQ(t->rows(), 1u);
  EXPECT_EQ(t->at(item(), 0).node, *doc);
  EXPECT_EQ(EvalError(dag_.Doc(strings_.Intern("missing"))).code(),
            StatusCode::kNotFound);
}

TEST_F(EngineTest, ElemBuildsPerLoopIteration) {
  // Loop {1, 2}; content only for iter 1: element 2 must still exist.
  LitTable loop;
  loop.cols = {iter()};
  loop.rows = {{Value::Int(1)}, {Value::Int(2)}};
  OpId lp = dag_.Lit(std::move(loop));
  LitTable ct;
  ct.cols = {iter(), pos(), item()};
  ct.rows = {{Value::Int(1), Value::Int(2), Value::Int(20)},
             {Value::Int(1), Value::Int(1), Value::Int(10)}};
  OpId content = dag_.Lit(std::move(ct));
  OpId el = dag_.Elem(strings_.Intern("e"), content, lp);
  TablePtr t = Eval(el);
  ASSERT_EQ(t->rows(), 2u);
  // Content sorted by pos; adjacent atomics joined with a space.
  EXPECT_EQ(store_.StringValue(t->at(item(), 0).node), "10 20");
  EXPECT_EQ(store_.StringValue(t->at(item(), 1).node), "");
}

TEST_F(EngineTest, ElemAttributeItemsBecomeAttributes) {
  NodeIdx attr =
      store_.MakeAttribute(strings_.Intern("k"), strings_.Intern("v"));
  LitTable loop;
  loop.cols = {iter()};
  loop.rows = {{Value::Int(1)}};
  OpId lp = dag_.Lit(std::move(loop));
  LitTable ct;
  ct.cols = {iter(), pos(), item()};
  ct.rows = {{Value::Int(1), Value::Int(1), Value::Node(attr)},
             {Value::Int(1), Value::Int(2), Value::Int(3)}};
  OpId el = dag_.Elem(strings_.Intern("e"), dag_.Lit(std::move(ct)), lp);
  TablePtr t = Eval(el);
  NodeIdx e = t->at(item(), 0).node;
  EXPECT_EQ(store_.kind(e + 1), NodeKind::kAttribute);
  EXPECT_EQ(store_.name_str(e + 1), "k");
  EXPECT_EQ(store_.StringValue(e), "3");
}

TEST_F(EngineTest, AttrJoinsValuesInPosOrder) {
  LitTable loop;
  loop.cols = {iter()};
  loop.rows = {{Value::Int(1)}};
  OpId lp = dag_.Lit(std::move(loop));
  LitTable vt;
  vt.cols = {iter(), pos(), item()};
  vt.rows = {{Value::Int(1), Value::Int(2), Value::Int(2)},
             {Value::Int(1), Value::Int(1), Value::Int(1)}};
  OpId a = dag_.Attr(strings_.Intern("n"), dag_.Lit(std::move(vt)), lp);
  TablePtr t = Eval(a);
  EXPECT_EQ(store_.value_str(t->at(item(), 0).node), "1 2");
}

TEST_F(EngineTest, TextSkipsEmptyIterations) {
  LitTable loop;
  loop.cols = {iter()};
  loop.rows = {{Value::Int(1)}, {Value::Int(2)}};
  OpId lp = dag_.Lit(std::move(loop));
  LitTable ct;
  ct.cols = {iter(), pos(), item()};
  ct.rows = {{Value::Int(2), Value::Int(1), Value::Int(9)}};
  OpId tx = dag_.Text(dag_.Lit(std::move(ct)), lp);
  TablePtr t = Eval(tx);
  ASSERT_EQ(t->rows(), 1u);
  EXPECT_EQ(Ints(*t, iter()), (std::vector<int64_t>{2}));
}

TEST_F(EngineTest, SharedSubplanEvaluatedOnce) {
  OpId l = Triples({{1, 1, 1}});
  ColId r1 = ColSym("sh1");
  OpId rid = dag_.RowId(l, r1);
  OpId u = dag_.Union(rid, rid);
  Profile profile;
  ctx_.profile = &profile;
  TablePtr t = Eval(u);
  EXPECT_EQ(t->rows(), 2u);
  EXPECT_EQ(profile.by_kind().at("RowId").ops, 1u);  // shared, not twice
  ctx_.profile = nullptr;
}

}  // namespace
}  // namespace exrquy
