// Rewrite certification: translation validation for the optimizer.
//
// Every rewrite instance the optimizer performs emits a
// RewriteCertificate — the rewrite family, the before/after roots, a
// column witness map, and the exact facts the rewrite cited (keys,
// cardinality intervals, sorted prefixes, semantic types, error
// capability, join isolation). An independent checker (CertifyChecker)
// validates each certificate against its own fact re-derivation
// (opt/facts_audit.h) plus a per-family proof-obligation template:
//
//   family               obligation          what must be re-derivable
//   -------------------  ------------------  ----------------------------
//   column_pruning       dead-column         every dropped column is dead
//                                            in the reference liveness
//                                            walk at the before op
//   weaken_rownum        constant-criteria   every dropped sort/grouping
//                                            criterion is constant
//   arbitrary-order      arbitrary-order     no grouping left; the
//                                            leading criterion (if any)
//                                            is order-meaningless
//   distinct_elimination disjoint-steps      the after plan is a union of
//                                            pairwise-disjoint steps
//   step_merging         step-shape          the merged-away child is a
//                                            descendant-or-self::node()
//                                            step and the axis/test
//                                            mapping is exact
//   distinct_by_keys     key-distinct        the before input has a
//                                            derivable key column or at
//                                            most one row
//   empty_short_circuit  empty-plan          derived max-rows = 0 AND the
//                                            derived error capability is
//                                            empty; the after plan is an
//                                            empty literal, same schema
//   union_empty_branch   empty-branch        the dropped branch is a
//                                            0-row literal
//   keyed-partition      keyed-partition     the partition column is a
//                                            derivable key of the input
//                                            (or the input has <= 1 row)
//   semantic-type        unit-group          the partition column is
//                                            derivably duplicate-free
//   order-dependency     sorted-prefix       the requested order is
//                                            covered by a derivable
//                                            sorted-prefix fact
//   join_recognition     join-isolation      no predicate column of any
//                                            emitted join is reachable
//                                            from iteration/order
//                                            scaffolding; the hash/theta
//                                            kind gates re-check
//
// Modes (EXRQUY_CERTIFY, options beat environment):
//   off    — emit bare trade records, never check;
//   on     — check every certificate and record the outcome (default);
//   strict — fail closed: an unprovable certificate rejects that rewrite
//            and keeps the old sub-plan;
//   spot   — strict, plus the api layer dynamically evaluates before/
//            after sub-plans and compares results byte-for-byte.
//
// Diagnostics are stable and test-assertable:
//   certify: [<obligation>] <rule> op <from> -> op <to>: <detail>
#ifndef EXRQUY_OPT_CERTIFY_H_
#define EXRQUY_OPT_CERTIFY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/algebra.h"
#include "opt/facts_audit.h"

namespace exrquy {

// How strictly rewrite certificates are enforced.
enum class CertifyMode : uint8_t {
  kDefault,  // resolve via EXRQUY_CERTIFY (unset -> kCheck)
  kOff,      // emit bare trade records, never check
  kCheck,    // check every certificate, record outcomes, never reject
  kStrict,   // fail closed: an unprovable certificate rejects its rewrite
};

struct CertifySettings {
  CertifyMode mode = CertifyMode::kDefault;
  // Evaluate before/after sub-plans on the session's documents and
  // compare results byte-for-byte (api layer; implies checking).
  bool spot_check = false;
  // Test-only: the checker fails this family's obligation
  // unconditionally, to exercise the strict-mode fail-close path
  // deterministically.
  std::string force_reject_rule;
};

// Resolves kDefault against the EXRQUY_CERTIFY environment variable
// ("off"/"on"/"strict"/"spot"); explicit options beat the environment.
CertifySettings ResolveCertify(const CertifySettings& options);

// One fact a rewrite cited as its license. The checker re-derives every
// cited fact with the audit fact base — a cited fact the audit cannot
// reproduce (stale, corrupted, or about the wrong column) fails the
// certificate's obligation.
struct CitedFact {
  enum class Kind : uint8_t {
    kKey,           // `col` is duplicate-free at `op`
    kConstant,      // `col` holds one value at `op`
    kArbitrary,     // `col` is order-meaningless at `op`
    kInterval,      // row count of `op` lies in [min_rows, max_rows]
    kSorted,        // `op` already realizes `order`
    kUnitGroup,     // `col` partitions `op` into singleton groups
    kNoRaise,       // evaluating `op` can never raise a dynamic error
    kKindClass,     // `col` at `op` stays within `kind_class`
    kScaffoldFree,  // `col` at `op` carries no iteration/order scaffolding
    kDeadColumn,    // `col` of `op` is never consumed above it
    kStructural,    // a shape condition the family template re-checks
  };
  Kind kind = Kind::kStructural;
  OpId op = kNoOp;
  ColId col = kNoCol;
  std::vector<SortKey> order;                 // kSorted payload
  uint64_t min_rows = 0;                      // kInterval payload
  uint64_t max_rows = kUnboundedRows;
  ItemKind kind_class = ItemKind::kAny;       // kKindClass payload
  std::string text;                           // human rendering
};

const char* CitedFactKindName(CitedFact::Kind kind);

// CitedFact constructors (each fills the rendered `text`).
CitedFact CiteKey(OpId op, ColId col);
CitedFact CiteConstant(OpId op, ColId col);
CitedFact CiteArbitrary(OpId op, ColId col);
CitedFact CiteInterval(OpId op, uint64_t min_rows, uint64_t max_rows);
CitedFact CiteSorted(OpId op, std::vector<SortKey> order);
CitedFact CiteUnitGroup(OpId op, ColId col);
CitedFact CiteNoRaise(OpId op);
CitedFact CiteKindClass(OpId op, ColId col, ItemKind kind_class);
CitedFact CiteScaffoldFree(OpId op, ColId col);
CitedFact CiteDeadColumn(OpId op, ColId col);
CitedFact CiteStructural(OpId op, std::string text);

// How one output column of the after plan corresponds to a column of the
// before plan. `exact` columns must hold byte-identical values row for
// row (node values compare by serialization — constructed node
// identities differ between evaluations); inexact columns carry
// legitimately different values (e.g. an arbitrary # numbering) and are
// excluded from the dynamic spot check.
struct ColWitness {
  ColId after = kNoCol;
  ColId before = kNoCol;
  bool exact = true;
};

// The certificate one rewrite instance emits. Doubles as the optimizer's
// per-instance trade log entry (rewrites.h aliases RewriteTrade to it).
struct RewriteCertificate {
  OpId from = kNoOp;   // the rewritten operator (pre-pass region)
  OpId to = kNoOp;     // its replacement
  std::string rule;    // the rewrite family that fired
  std::string detail;  // human-readable justification
  // A % elimination: Session::ExplainOrder surfaces these next to the
  // surviving sorts (the pre-certification RewriteTrade contract).
  bool order_trade = false;
  // The after plan may emit rows in a different physical order (join
  // re-rooting); the spot check then compares row multisets.
  bool rows_reordered = false;
  std::vector<CitedFact> cited;
  std::vector<ColWitness> witness;
  // Checker outcome.
  bool checked = false;
  bool valid = false;
  std::string obligation;   // the obligation that failed (when !valid)
  std::string diagnostic;   // "certify: [<obligation>] ..." (when !valid)
};

// Validates certificates against an independent fact re-derivation over
// `dag`. `pass_root` is the root of the plan the rewrite pass is
// consuming — the reference liveness walk for dead-column obligations is
// anchored there. One checker serves one rewrite pass (its memoized fact
// base stays sound because the DAG is append-only).
class CertifyChecker {
 public:
  CertifyChecker(const Dag* dag, OpId pass_root,
                 std::string force_reject_rule = {});

  // Fills cert->checked / valid / obligation / diagnostic; returns
  // cert->valid.
  bool Check(RewriteCertificate* cert);

 private:
  void EnsureLive();
  bool Fail(RewriteCertificate* cert, const char* obligation,
            const std::string& detail);
  bool ValidateCited(RewriteCertificate* cert, const char* obligation);
  bool CheckFamily(RewriteCertificate* cert);

  const Dag* dag_;
  OpId pass_root_;
  std::string force_reject_rule_;
  FactsAudit audit_;
  bool live_ready_ = false;
  std::unordered_map<OpId, ColSet> live_;
};

}  // namespace exrquy

#endif  // EXRQUY_OPT_CERTIFY_H_
