// Rewrite certification (opt/certify.h): the mutation suite. Every
// proof-obligation family must reject a hand-miscompiled rewrite or a
// corrupted certificate (wrong cited column, stale fact, bogus witness)
// with the stable "certify: [<obligation>]" diagnostic; every
// certificate the real optimizer emits over the XMark corpus must
// validate in strict mode; and certification must never change the
// produced plan (byte-identical renderings across off/check/strict).
#include <gtest/gtest.h>

#include <array>
#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "algebra/algebra.h"
#include "algebra/dot.h"
#include "algebra/stats.h"
#include "api/session.h"
#include "opt/certify.h"
#include "xmark/queries.h"

namespace exrquy {
namespace {

using col::item;
using col::iter;
using col::pos;

// Gensym column ids (iter1$1781) draw on a process-global counter, so
// two compilations of the same query never render byte-identically.
// Plan comparisons are modulo that alpha-renaming: every $<digits>
// suffix collapses to $#.
std::string NormalizeGensyms(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    out += text[i];
    if (text[i] != '$') continue;
    size_t j = i + 1;
    while (j < text.size() && std::isdigit(static_cast<unsigned char>(
                                  text[j])) != 0) {
      ++j;
    }
    if (j > i + 1) {
      out += '#';
      i = j - 1;
    }
  }
  return out;
}

class CertifyCheckerTest : public ::testing::Test {
 protected:
  // (iter, pos, item) literal rows.
  OpId Triples(std::vector<std::array<int64_t, 3>> rows) {
    LitTable t;
    t.cols = {iter(), pos(), item()};
    for (const auto& r : rows) {
      t.rows.push_back(
          {Value::Int(r[0]), Value::Int(r[1]), Value::Int(r[2])});
    }
    return dag_.Lit(std::move(t));
  }

  OpId Loop1() {
    LitTable t;
    t.cols = {iter()};
    t.rows = {{Value::Int(1)}};
    return dag_.Lit(std::move(t));
  }

  RewriteCertificate Cert(OpId from, OpId to, const char* rule,
                          std::vector<CitedFact> cited) {
    RewriteCertificate c;
    c.from = from;
    c.to = to;
    c.rule = rule;
    c.cited = std::move(cited);
    return c;
  }

  // Asserts the checker rejects `cert` citing `obligation`, with the
  // stable diagnostic prefix.
  void ExpectRejected(OpId pass_root, RewriteCertificate cert,
                      const std::string& obligation) {
    CertifyChecker checker(&dag_, pass_root);
    EXPECT_FALSE(checker.Check(&cert));
    EXPECT_TRUE(cert.checked);
    EXPECT_FALSE(cert.valid);
    EXPECT_EQ(cert.obligation, obligation) << cert.diagnostic;
    EXPECT_EQ(cert.diagnostic.find("certify: [" + obligation + "] "), 0u)
        << cert.diagnostic;
  }

  void ExpectValid(OpId pass_root, RewriteCertificate cert) {
    CertifyChecker checker(&dag_, pass_root);
    EXPECT_TRUE(checker.Check(&cert)) << cert.diagnostic;
    EXPECT_TRUE(cert.valid);
  }

  Dag dag_;
  StrPool strings_;
};

// -- dead-column ---------------------------------------------------------

TEST_F(CertifyCheckerTest, ColumnPruningAcceptsDeadColumn) {
  OpId l = Triples({{1, 1, 5}, {1, 2, 7}});
  ColId x = ColSym("cx1");
  OpId rn = dag_.RowNum(l, x, {{pos(), false}}, iter());
  // x never consumed above: the % is dead.
  OpId proj = dag_.Project(rn, {{iter(), iter()}, {pos(), pos()},
                                {item(), item()}});
  ExpectValid(proj,
              Cert(rn, l, "column_pruning", {CiteDeadColumn(rn, x)}));
}

TEST_F(CertifyCheckerTest, ColumnPruningRejectsLiveColumn) {
  OpId l = Triples({{1, 1, 5}, {1, 2, 7}});
  ColId x = ColSym("cx2");
  OpId rn = dag_.RowNum(l, x, {{pos(), false}}, iter());
  // The projection consumes x (as pos): the reference liveness walk
  // demands it, so a certificate claiming it dead is a miscompile.
  OpId proj = dag_.Project(rn, {{iter(), iter()}, {pos(), x},
                                {item(), item()}});
  ExpectRejected(proj,
                 Cert(rn, l, "column_pruning", {CiteDeadColumn(rn, x)}),
                 "dead-column");
}

TEST_F(CertifyCheckerTest, ColumnPruningRejectsFactAtWrongOperator) {
  OpId l = Triples({{1, 1, 5}});
  ColId x = ColSym("cx3");
  OpId rn = dag_.RowNum(l, x, {{pos(), false}}, iter());
  OpId proj = dag_.Project(rn, {{iter(), iter()}, {pos(), pos()},
                                {item(), item()}});
  // The fact is true (x is dead at rn) but cited against the wrong
  // operator: the template requires it to name the rewritten op.
  ExpectRejected(proj,
                 Cert(proj, rn, "column_pruning", {CiteDeadColumn(rn, x)}),
                 "dead-column");
}

// -- key-distinct --------------------------------------------------------

TEST_F(CertifyCheckerTest, DistinctByKeysAcceptsDerivableKey) {
  OpId l = Triples({{1, 1, 5}, {2, 2, 7}});  // item values distinct
  OpId d = dag_.Distinct(l);
  ExpectValid(d, Cert(d, l, "distinct_by_keys", {CiteKey(l, item())}));
}

TEST_F(CertifyCheckerTest, DistinctByKeysRejectsNonKeyColumn) {
  // Duplicate item values: citing item as a key is a corrupt (stale or
  // wrong-column) certificate, whatever the tracker said.
  OpId l = Triples({{1, 1, 5}, {2, 2, 5}});
  OpId d = dag_.Distinct(l);
  ExpectRejected(d, Cert(d, l, "distinct_by_keys", {CiteKey(l, item())}),
                 "key-distinct");
}

// -- empty-plan ----------------------------------------------------------

TEST_F(CertifyCheckerTest, EmptyShortCircuitRejectsNonEmptyInput) {
  OpId l = Triples({{1, 1, 5}, {1, 2, 7}});
  OpId empty = dag_.Empty({iter(), pos(), item()});
  // A stale zero-row interval: the audit derives [2,2], which the cited
  // [0,0] does not contain.
  ExpectRejected(empty,
                 Cert(l, empty, "empty_short_circuit",
                      {CiteInterval(l, 0, 0), CiteNoRaise(l)}),
                 "empty-plan");
}

TEST_F(CertifyCheckerTest, EmptyShortCircuitRejectsSchemaChange) {
  OpId l = dag_.Empty({iter(), pos(), item()});
  OpId narrower = dag_.Empty({iter()});
  ExpectRejected(narrower,
                 Cert(l, narrower, "empty_short_circuit",
                      {CiteInterval(l, 0, 0), CiteNoRaise(l)}),
                 "empty-plan");
}

TEST_F(CertifyCheckerTest, EmptyShortCircuitAcceptsEmptyLiteral) {
  OpId l = dag_.Empty({iter(), pos(), item()});
  OpId repl = dag_.Empty({item(), pos(), iter()});  // same schema, set-wise
  RewriteCertificate cert =
      Cert(l, repl, "empty_short_circuit",
           {CiteInterval(l, 0, 0), CiteNoRaise(l)});
  // Schema equality is on the ordered schema vector; build it the same
  // way the rewrite does (to == from here after hash-consing).
  if (dag_.op(repl).schema == dag_.op(l).schema) {
    ExpectValid(repl, cert);
  }
}

// -- witness / roots / unknown family ------------------------------------

TEST_F(CertifyCheckerTest, RejectsBogusWitnessColumn) {
  OpId l = Triples({{1, 1, 5}});
  ColId x = ColSym("cw1");
  OpId rn = dag_.RowNum(l, x, {{pos(), false}}, iter());
  OpId proj = dag_.Project(rn, {{iter(), iter()}, {pos(), pos()},
                                {item(), item()}});
  RewriteCertificate cert =
      Cert(rn, l, "column_pruning", {CiteDeadColumn(rn, x)});
  cert.witness.push_back({ColSym("not_a_col"), iter(), true});
  ExpectRejected(proj, std::move(cert), "witness");
}

TEST_F(CertifyCheckerTest, RejectsOutOfRangeRoots) {
  OpId l = Triples({{1, 1, 5}});
  ExpectRejected(l, Cert(l + 100, l, "column_pruning", {}),
                 "certificate-roots");
}

TEST_F(CertifyCheckerTest, RejectsUnknownFamily) {
  OpId l = Triples({{1, 1, 5}});
  ExpectRejected(l,
                 Cert(l, l, "totally_new_rewrite",
                      {CiteStructural(l, "shape")}),
                 "unknown-family");
}

TEST_F(CertifyCheckerTest, RejectsEmptyCitations) {
  OpId l = Triples({{1, 1, 5}});
  OpId d = dag_.Distinct(l);
  ExpectRejected(d, Cert(d, l, "distinct_by_keys", {}), "key-distinct");
}

// -- constant-criteria ---------------------------------------------------

TEST_F(CertifyCheckerTest, WeakenRownumRejectsNonConstantDrop) {
  OpId l = Triples({{1, 1, 5}, {1, 2, 7}});  // item varies
  ColId x = ColSym("cc1");
  OpId weak = dag_.RowNum(l, x, {{pos(), false}}, kNoCol);
  OpId orig = dag_.RowNum(l, x, {{pos(), false}, {item(), false}}, kNoCol);
  // Dropping the item criterion is only sound if item is constant; the
  // cited fact cannot be re-derived.
  ExpectRejected(weak,
                 Cert(orig, weak, "weaken_rownum",
                      {CiteConstant(l, item())}),
                 "constant-criteria");
}

TEST_F(CertifyCheckerTest, WeakenRownumAcceptsConstantDrop) {
  OpId l = Triples({{1, 1, 5}, {1, 2, 5}});  // item constant 5
  ColId x = ColSym("cc2");
  OpId orig = dag_.RowNum(l, x, {{pos(), false}, {item(), false}}, kNoCol);
  OpId weak = dag_.RowNum(l, x, {{pos(), false}}, kNoCol);
  ExpectValid(weak, Cert(orig, weak, "weaken_rownum",
                         {CiteConstant(l, item())}));
}

// -- sorted-prefix -------------------------------------------------------

TEST_F(CertifyCheckerTest, OrderDependencyAcceptsRealizedOrder) {
  OpId l = Triples({{1, 1, 5}, {1, 2, 7}});  // pos ascending, no ties
  ColId x = ColSym("so1");
  OpId orig = dag_.RowNum(l, x, {{pos(), false}}, kNoCol);
  OpId repl = dag_.RowId(l, x, /*positional=*/true);
  ExpectValid(repl, Cert(orig, repl, "order-dependency",
                         {CiteSorted(l, {{pos(), false}})}));
}

TEST_F(CertifyCheckerTest, OrderDependencyRejectsUnrealizedOrder) {
  OpId l = Triples({{1, 2, 7}, {1, 1, 5}});  // pos descending
  ColId x = ColSym("so2");
  OpId orig = dag_.RowNum(l, x, {{pos(), false}}, kNoCol);
  OpId repl = dag_.RowId(l, x, /*positional=*/true);
  ExpectRejected(repl,
                 Cert(orig, repl, "order-dependency",
                      {CiteSorted(l, {{pos(), false}})}),
                 "sorted-prefix");
}

// -- step-shape ----------------------------------------------------------

TEST_F(CertifyCheckerTest, StepMergingRejectsNonDosMiddleStep) {
  OpId ctx = dag_.Project(
      dag_.AttachConst(Loop1(), item(), Value::Node(0)),
      {{iter(), iter()}, {item(), item()}});
  // child::node(), not descendant-or-self::node(): absorbing it widens
  // the result set.
  OpId mid = dag_.Step(ctx, Axis::kChild, NodeTest::AnyKind());
  NodeTest nt = NodeTest::Name(strings_.Intern("x"));
  OpId from = dag_.Step(mid, Axis::kChild, nt);
  OpId to = dag_.Step(ctx, Axis::kDescendant, nt);
  ExpectRejected(to,
                 Cert(from, to, "step_merging",
                      {CiteStructural(mid, "descendant-or-self::node() "
                                           "step")}),
                 "step-shape");
}

TEST_F(CertifyCheckerTest, StepMergingRejectsWrongAxisMapping) {
  OpId ctx = dag_.Project(
      dag_.AttachConst(Loop1(), item(), Value::Node(0)),
      {{iter(), iter()}, {item(), item()}});
  OpId mid = dag_.Step(ctx, Axis::kDescendantOrSelf, NodeTest::AnyKind());
  NodeTest nt = NodeTest::Name(strings_.Intern("y"));
  OpId from = dag_.Step(mid, Axis::kChild, nt);
  // Merging dos::node()/child::y must produce descendant::y, not
  // child::y — the miscompile drops the descendant widening.
  OpId to = dag_.Step(ctx, Axis::kChild, nt);
  ExpectRejected(to,
                 Cert(from, to, "step_merging",
                      {CiteStructural(mid, "descendant-or-self::node() "
                                           "step")}),
                 "step-shape");
}

TEST_F(CertifyCheckerTest, StepMergingAcceptsExactMerge) {
  OpId ctx = dag_.Project(
      dag_.AttachConst(Loop1(), item(), Value::Node(0)),
      {{iter(), iter()}, {item(), item()}});
  OpId mid = dag_.Step(ctx, Axis::kDescendantOrSelf, NodeTest::AnyKind());
  NodeTest nt = NodeTest::Name(strings_.Intern("z"));
  OpId from = dag_.Step(mid, Axis::kChild, nt);
  OpId to = dag_.Step(ctx, Axis::kDescendant, nt);
  ExpectValid(to, Cert(from, to, "step_merging",
                       {CiteStructural(mid, "descendant-or-self::node() "
                                            "step")}));
}

// -- disjoint-steps ------------------------------------------------------

TEST_F(CertifyCheckerTest, DistinctEliminationRejectsOverlappingSteps) {
  OpId ctx = dag_.Project(
      dag_.AttachConst(Loop1(), item(), Value::Node(0)),
      {{iter(), iter()}, {item(), item()}});
  OpId c = dag_.Step(ctx, Axis::kChild,
                     NodeTest::Name(strings_.Intern("c")));
  OpId w = dag_.Step(ctx, Axis::kChild, NodeTest::Wildcard());
  OpId u = dag_.Union(c, w);
  OpId dist = dag_.Distinct(u);
  // A wildcard leaf is not a name test: disjointness is unprovable.
  ExpectRejected(dist,
                 Cert(dist, u, "distinct_elimination",
                      {CiteStructural(c, "disjoint step"),
                       CiteStructural(w, "disjoint step")}),
                 "disjoint-steps");
}

TEST_F(CertifyCheckerTest, DistinctEliminationAcceptsDisjointSteps) {
  OpId ctx = dag_.Project(
      dag_.AttachConst(Loop1(), item(), Value::Node(0)),
      {{iter(), iter()}, {item(), item()}});
  OpId c = dag_.Step(ctx, Axis::kChild,
                     NodeTest::Name(strings_.Intern("c")));
  OpId d = dag_.Step(ctx, Axis::kChild,
                     NodeTest::Name(strings_.Intern("d")));
  OpId u = dag_.Union(c, d);
  OpId dist = dag_.Distinct(u);
  ExpectValid(dist, Cert(dist, u, "distinct_elimination",
                         {CiteStructural(c, "disjoint step"),
                          CiteStructural(d, "disjoint step")}));
}

// -- keyed-partition / unit-group ----------------------------------------

TEST_F(CertifyCheckerTest, KeyedPartitionRejectsNonKeyPartition) {
  OpId l = Triples({{1, 1, 5}, {1, 2, 7}});  // iter not a key
  ColId x = ColSym("kp1");
  OpId orig = dag_.RowNum(l, x, {{pos(), false}}, iter());
  OpId repl = dag_.AttachConst(l, x, Value::Int(1));
  ExpectRejected(repl,
                 Cert(orig, repl, "keyed-partition", {CiteKey(l, iter())}),
                 "keyed-partition");
}

TEST_F(CertifyCheckerTest, KeyedPartitionAcceptsKeyPartition) {
  OpId l = Triples({{1, 1, 5}, {2, 2, 7}});  // iter distinct
  ColId x = ColSym("kp2");
  OpId orig = dag_.RowNum(l, x, {{pos(), false}}, iter());
  OpId repl = dag_.AttachConst(l, x, Value::Int(1));
  ExpectValid(repl, Cert(orig, repl, "keyed-partition",
                         {CiteKey(l, iter())}));
}

TEST_F(CertifyCheckerTest, SemanticTypeRejectsNonUnitGroup) {
  OpId l = Triples({{1, 1, 5}, {1, 2, 7}});
  ColId x = ColSym("ug1");
  OpId orig = dag_.RowNum(l, x, {{pos(), false}}, iter());
  OpId repl = dag_.AttachConst(l, x, Value::Int(1));
  ExpectRejected(repl,
                 Cert(orig, repl, "semantic-type",
                      {CiteUnitGroup(l, iter())}),
                 "unit-group");
}

// -- join-isolation ------------------------------------------------------

TEST_F(CertifyCheckerTest, JoinRecognitionRejectsReplacementWithoutJoin) {
  // A "join recognition" certificate whose replacement region contains
  // no join at all: the rewrite replaced the anchor with nonsense.
  OpId l = Triples({{1, 1, 5}});
  OpId proj = dag_.Project(l, {{iter(), iter()}, {pos(), pos()},
                               {item(), item()}});
  ExpectRejected(proj,
                 Cert(proj, l, "join_recognition",
                      {CiteScaffoldFree(l, item())}),
                 "join-isolation");
}

TEST_F(CertifyCheckerTest, JoinRecognitionRejectsScaffoldingKey) {
  // An equi value join keyed on iter — an iteration scaffolding column.
  // Joining on scaffolding values instead of data values is the exact
  // bug class the isolation obligation exists for.
  OpId left = Triples({{1, 1, 5}});
  LitTable rt;
  ColId i2 = ColSym("ji2");
  rt.cols = {i2};
  rt.rows = {{Value::Int(1)}};
  OpId right = dag_.Lit(std::move(rt));
  OpId join = dag_.ValueJoin(left, right, iter(), i2);
  OpId anchor = dag_.Project(left, {{iter(), iter()}, {pos(), pos()},
                                    {item(), item()}});
  ExpectRejected(anchor,
                 Cert(anchor, join, "join_recognition",
                      {CiteScaffoldFree(left, item())}),
                 "join-isolation");
}

// -- forced rejection & strict fail-close --------------------------------

TEST_F(CertifyCheckerTest, ForceRejectRuleFailsThatFamilyOnly) {
  OpId l = Triples({{1, 1, 5}, {1, 2, 7}});
  ColId x = ColSym("fr1");
  OpId rn = dag_.RowNum(l, x, {{pos(), false}}, iter());
  OpId proj = dag_.Project(rn, {{iter(), iter()}, {pos(), pos()},
                                {item(), item()}});
  CertifyChecker checker(&dag_, proj, "column_pruning");
  RewriteCertificate pruned =
      Cert(rn, l, "column_pruning", {CiteDeadColumn(rn, x)});
  EXPECT_FALSE(checker.Check(&pruned));
  EXPECT_EQ(pruned.obligation, "forced-reject");
  RewriteCertificate other =
      Cert(dag_.Distinct(Triples({{1, 1, 5}, {2, 2, 9}})),
           Triples({{1, 1, 5}, {2, 2, 9}}), "distinct_by_keys",
           {CiteKey(Triples({{1, 1, 5}, {2, 2, 9}}), item())});
  EXPECT_TRUE(checker.Check(&other)) << other.diagnostic;
}

// ========================================================================
// End-to-end: the real optimizer under certification.
// ========================================================================

TEST(CertifySessionTest, StrictModeRejectionKeepsOldSubPlan) {
  // Force-reject every step_merging certificate in strict mode: the
  // fused steps must stay unfused (fail-close keeps the old sub-plan),
  // the plan must still verify, and execution must agree byte-for-byte.
  Session session;
  ASSERT_TRUE(session
                  .LoadDocument("t.xml",
                                "<a><b><c>x</c></b><b><c>y</c></b></a>")
                  .ok());
  const std::string q = "count(doc(\"t.xml\")//c)";

  QueryOptions plain;
  plain.verify_each_pass = true;
  Result<QueryResult> expect = session.Execute(q, plain);
  ASSERT_TRUE(expect.ok()) << expect.status().ToString();
  Result<QueryPlans> plain_plans = session.Plan(q, plain);
  ASSERT_TRUE(plain_plans.ok());

  QueryOptions forced = plain;
  forced.certify.mode = CertifyMode::kStrict;
  forced.certify.force_reject_rule = "step_merging";
  Result<QueryPlans> kept = session.Plan(q, forced);
  ASSERT_TRUE(kept.ok()) << kept.status().ToString();
  PlanStats plain_stats =
      CollectPlanStats(*plain_plans->dag, plain_plans->optimized);
  PlanStats kept_stats = CollectPlanStats(*kept->dag, kept->optimized);
  // //c compiles to dos::node()/child::c twice; with merging rejected,
  // both dos steps survive.
  EXPECT_GT(kept_stats.step_ops, plain_stats.step_ops);

  size_t rejected = 0;
  for (const RewriteTrade& t : kept->trades) {
    if (!t.checked || t.valid) continue;
    EXPECT_EQ(t.rule, "step_merging") << t.diagnostic;
    EXPECT_EQ(t.obligation, "forced-reject");
    ++rejected;
  }
  EXPECT_GT(rejected, 0u);

  Result<QueryResult> forced_result = session.Execute(q, forced);
  ASSERT_TRUE(forced_result.ok()) << forced_result.status().ToString();
  EXPECT_EQ(forced_result->serialized, expect->serialized);
}

TEST(CertifySessionTest, CheckModeNeverChangesThePlan) {
  // In plain checking mode even a forced rejection is report-only.
  Session session;
  const std::string q = "count(doc(\"t.xml\")//c)";
  QueryOptions plain;
  Result<QueryPlans> a = session.Plan(q, plain);
  ASSERT_TRUE(a.ok());

  QueryOptions noted = plain;
  noted.certify.mode = CertifyMode::kCheck;
  noted.certify.force_reject_rule = "step_merging";
  Result<QueryPlans> b = session.Plan(q, noted);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(
      NormalizeGensyms(PlanToText(*a->dag, a->optimized, session.strings())),
      NormalizeGensyms(PlanToText(*b->dag, b->optimized, session.strings())));
  bool saw_rejection = false;
  for (const RewriteTrade& t : b->trades) {
    saw_rejection |= t.checked && !t.valid;
  }
  EXPECT_TRUE(saw_rejection);
}

TEST(CertifySessionTest, ExplainRewritesCountsAndAnnotates) {
  Session session;
  QueryOptions options;
  Result<RewriteExplanation> explained = session.ExplainRewrites(
      "for $b in doc(\"t.xml\")//b return count($b//c)", options);
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  EXPECT_GT(explained->emitted, 0u);
  EXPECT_EQ(explained->emitted, explained->entries.size());
  EXPECT_EQ(explained->validated, explained->emitted);
  EXPECT_EQ(explained->rejected, 0u);
  for (const auto& e : explained->entries) {
    EXPECT_TRUE(e.checked);
    EXPECT_TRUE(e.valid) << e.diagnostic;
    EXPECT_TRUE(e.committed);
    EXPECT_FALSE(e.rule.empty());
    EXPECT_FALSE(e.facts.empty()) << e.rule;
  }
  EXPECT_NE(explained->dot.find("certified"), std::string::npos);
}

TEST(CertifySessionTest, SpotCheckPassesOnRealRewrites) {
  Session session;
  ASSERT_TRUE(session
                  .LoadDocument("t.xml",
                                "<a><b id=\"1\"><c>x</c></b>"
                                "<b id=\"2\"><c>y</c></b></a>")
                  .ok());
  QueryOptions spot;
  spot.certify.mode = CertifyMode::kStrict;
  spot.certify.spot_check = true;
  const std::string q =
      "for $b in doc(\"t.xml\")//b return count($b//c)";
  Result<QueryResult> checked = session.Execute(q, spot);
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
  Result<QueryResult> plain = session.Execute(q, QueryOptions{});
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(checked->serialized, plain->serialized);
}

// Every certificate the optimizer emits over the full XMark corpus, in
// both ordering modes, must validate in strict mode — so strict
// certification never rejects a default-on rewrite (the acceptance bar
// for shipping fail-closed). Prints the greppable "[certify]" summary
// the CI job checks.
TEST(CertifyCorpusTest, AllXMarkCertificatesValidateStrict) {
  Session session;
  size_t emitted = 0;
  size_t validated = 0;
  for (bool unordered : {false, true}) {
    for (const XMarkQuery& q : XMarkQueries()) {
      QueryOptions options;
      options.verify_each_pass = true;
      options.certify.mode = CertifyMode::kStrict;
      options.default_ordering =
          unordered ? OrderingMode::kUnordered : OrderingMode::kOrdered;
      Result<QueryPlans> plans = session.Plan(q.text, options);
      ASSERT_TRUE(plans.ok())
          << q.name << (unordered ? " (unordered)" : " (ordered)") << ": "
          << plans.status().ToString();
      for (const RewriteTrade& t : plans->trades) {
        ++emitted;
        EXPECT_TRUE(t.checked) << q.name << ": " << t.rule;
        EXPECT_TRUE(t.valid)
            << q.name << (unordered ? " (unordered)" : " (ordered)")
            << ": " << t.diagnostic;
        validated += t.checked && t.valid ? 1 : 0;
      }
    }
  }
  EXPECT_GT(emitted, 0u);
  EXPECT_EQ(validated, emitted);
  std::printf("[certify] emitted=%zu validated=%zu rejected=%zu\n",
              emitted, validated, emitted - validated);
}

// Certification must be observation-only on the good path: the plan an
// optimizer run produces must render byte-identically with certificates
// off, checked, and enforced strictly.
TEST(CertifyCorpusTest, PlansByteIdenticalAcrossModes) {
  Session session;
  for (const XMarkQuery& q : XMarkQueries()) {
    QueryOptions off;
    off.certify.mode = CertifyMode::kOff;
    QueryOptions check;
    check.certify.mode = CertifyMode::kCheck;
    QueryOptions strict;
    strict.certify.mode = CertifyMode::kStrict;
    Result<QueryPlans> a = session.Plan(q.text, off);
    Result<QueryPlans> b = session.Plan(q.text, check);
    Result<QueryPlans> c = session.Plan(q.text, strict);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok()) << q.name;
    std::string ta = NormalizeGensyms(
        PlanToText(*a->dag, a->optimized, session.strings()));
    std::string tb = NormalizeGensyms(
        PlanToText(*b->dag, b->optimized, session.strings()));
    std::string tc = NormalizeGensyms(
        PlanToText(*c->dag, c->optimized, session.strings()));
    EXPECT_EQ(ta, tb) << q.name;
    EXPECT_EQ(ta, tc) << q.name;
  }
}

TEST(CertifyResolveTest, OptionsBeatEnvironment) {
  setenv("EXRQUY_CERTIFY", "off", 1);
  CertifySettings strict;
  strict.mode = CertifyMode::kStrict;
  EXPECT_EQ(ResolveCertify(strict).mode, CertifyMode::kStrict);
  CertifySettings dflt;
  EXPECT_EQ(ResolveCertify(dflt).mode, CertifyMode::kOff);
  setenv("EXRQUY_CERTIFY", "strict", 1);
  EXPECT_EQ(ResolveCertify(dflt).mode, CertifyMode::kStrict);
  setenv("EXRQUY_CERTIFY", "spot", 1);
  CertifySettings r = ResolveCertify(dflt);
  EXPECT_EQ(r.mode, CertifyMode::kStrict);
  EXPECT_TRUE(r.spot_check);
  unsetenv("EXRQUY_CERTIFY");
  EXPECT_EQ(ResolveCertify(dflt).mode, CertifyMode::kCheck);
}

}  // namespace
}  // namespace exrquy
