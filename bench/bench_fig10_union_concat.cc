// Figure 10 / Section 4.2: trading '|' for ','.
//
// unordered { $t//(c|d) } compiles to a plan with per-step order
// derivations, a document-order-aware union and duplicate elimination;
// after FN:UNORDERED and column dependency analysis, the disjointness of
// child::c and child::d lets the optimizer drop the Distinct — the node
// set union has become a bare disjoint union (sequence concatenation).
#include <cstdio>

#include "algebra/dot.h"
#include "algebra/stats.h"
#include "bench/bench_util.h"
#include "opt/analyses.h"

namespace exrquy {
namespace {

void Run() {
  Session session;
  // The XML fragment of Figure 1.
  Status st = session.LoadDocument("t.xml", "<a><b><c/><d/></b><c/></a>");
  if (!st.ok()) {
    std::printf("load failed: %s\n", st.ToString().c_str());
    return;
  }

  std::printf("Figure 10 — '|' traded for ','\n\n");
  const std::string query =
      R"(unordered { for $t in doc("t.xml")/a return $t//(c|d) })";

  QueryOptions base = bench::Baseline();
  Result<QueryPlans> pb = session.Plan(query, base);
  if (pb.ok()) {
    std::printf("baseline (order-aware union):       %s\n",
                CollectPlanStats(*pb->dag, pb->initial).ToString().c_str());
  }

  QueryOptions enabled;  // keep mode ordered; unordered {} is lexical here
  Result<QueryPlans> pe = session.Plan(query, enabled);
  if (pe.ok()) {
    std::printf("enabled, as emitted (Fig. 10 left): %s\n",
                CollectPlanStats(*pe->dag, pe->initial).ToString().c_str());
    std::printf("enabled, rewritten (Fig. 10 right): %s\n",
                CollectPlanStats(*pe->dag, pe->optimized).ToString().c_str());
    FILE* f = std::fopen("fig10_after.dot", "w");
    if (f != nullptr) {
      ColSet seed;
      for (ColId c : {col::iter(), col::pos(), col::item()}) {
        if (pe->dag->op(pe->optimized).HasCol(c)) seed.insert(c);
      }
      OrderProvenance prov = ComputeOrderProvenance(
          *pe->dag, pe->optimized, seed, &session.strings());
      std::fputs(
          PlanToDot(*pe->dag, pe->optimized, session.strings(),
                    ProvenanceAnnotations(*pe->dag, pe->optimized, prov))
              .c_str(),
          f);
      std::fclose(f);
      std::printf("DOT of the rewritten plan written to fig10_after.dot\n");
    }
  }

  QueryOptions no_disjoint;
  no_disjoint.distinct_elimination = false;
  Result<QueryPlans> pn = session.Plan(query, no_disjoint);
  if (pn.ok()) {
    std::printf("enabled, without disjointness:      %s\n",
                CollectPlanStats(*pn->dag, pn->optimized).ToString().c_str());
  }

  std::printf(
      "\nExpected: the rewritten plan keeps the disjoint union of the two\n"
      "steps but loses every %% and the Distinct — the algebraic\n"
      "equivalent of  unordered { $t//c }, unordered { $t//d }.\n\n");

  // Execution sanity: same multiset of nodes in either configuration.
  Result<QueryResult> rb = session.Execute(query, base);
  Result<QueryResult> re = session.Execute(query, enabled);
  if (rb.ok() && re.ok()) {
    std::printf("baseline result: %s\n", rb->serialized.c_str());
    std::printf("enabled  result: %s (any permutation is admissible)\n",
                re->serialized.c_str());
  }
}

}  // namespace
}  // namespace exrquy

int main() {
  exrquy::Run();
  return 0;
}
