// Figure 12: observed impact of order indifference (speedup) on the
// XMark benchmark query set, across document sizes.
//
// For every XMark query and every scale factor, the query is executed in
// the baseline configuration (order indifference ignored) and in the
// enabled configuration (declare ordering unordered + the paper's
// machinery); the reported speedup is baseline/enabled - 1, i.e. 100 %
// means twice as fast, exactly as in the paper. Queries whose baseline
// exceeds the cutoff at a scale are skipped at larger scales (the paper
// used a 30 s interactive cutoff the same way).
#include <cstdio>

#include "bench/bench_util.h"

namespace exrquy {
namespace {

void Run() {
  using bench::Baseline;
  using bench::Enabled;

  std::vector<double> scales = {0.004, 0.016, 0.064};
  const double cutoff_ms = bench::EnvScale("EXRQUY_CUTOFF_MS", 4000);

  std::printf(
      "Figure 12 — speedup of order-indifferent evaluation on XMark\n"
      "(100%% = twice as fast; '-' = baseline over cutoff at the previous "
      "size, as in the paper's 30s cutoff)\n\n");

  struct Cell {
    double speedup = -2;  // -2: not run, -1: failed
  };
  std::vector<std::vector<Cell>> table(
      XMarkQueries().size(), std::vector<Cell>(scales.size()));
  std::vector<size_t> doc_bytes(scales.size());
  std::vector<bool> skip(XMarkQueries().size(), false);

  for (size_t s = 0; s < scales.size(); ++s) {
    auto session = bench::MakeXMarkSession(scales[s], &doc_bytes[s]);
    for (size_t q = 0; q < XMarkQueries().size(); ++q) {
      if (skip[q]) continue;
      const XMarkQuery& query = XMarkQueries()[q];
      double base =
          bench::MedianExecMs(session.get(), query.text, Baseline(), 3);
      double enabled =
          bench::MedianExecMs(session.get(), query.text, Enabled(), 3);
      if (base < 0 || enabled < 0) {
        table[q][s].speedup = -1;
        continue;
      }
      table[q][s].speedup =
          enabled > 0 ? 100.0 * (base / enabled - 1.0) : 0.0;
      if (base > cutoff_ms) skip[q] = true;
    }
  }

  std::printf("%-6s", "query");
  for (size_t s = 0; s < scales.size(); ++s) {
    std::printf("  %9zuKB", doc_bytes[s] / 1024);
  }
  std::printf("\n");
  for (size_t q = 0; q < XMarkQueries().size(); ++q) {
    std::printf("%-6s", XMarkQueries()[q].name.c_str());
    for (size_t s = 0; s < scales.size(); ++s) {
      if (table[q][s].speedup <= -2) {
        std::printf("  %11s", "-");
      } else if (table[q][s].speedup < -1.5) {
        std::printf("  %11s", "err");
      } else {
        std::printf("  %9.0f %%", table[q][s].speedup);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper): speedups from ~0%% to >10,000%%, with\n"
      "exceptional Q6/Q7 due to the merged descendant step.\n");
}

}  // namespace
}  // namespace exrquy

int main() {
  exrquy::Run();
  return 0;
}
