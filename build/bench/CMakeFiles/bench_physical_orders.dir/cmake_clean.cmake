file(REMOVE_RECURSE
  "CMakeFiles/bench_physical_orders.dir/bench_physical_orders.cc.o"
  "CMakeFiles/bench_physical_orders.dir/bench_physical_orders.cc.o.d"
  "bench_physical_orders"
  "bench_physical_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_physical_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
