// Figure 6: the plan DAG emitted for XMark Q6 under ordering mode ordered
// vs unordered.
//
// The paper's ordered plan has 19 operators, 5 of them % (blocking
// sorts); under ordering mode unordered, all % but one are traded for #
// (Figure 6(b)). Our operator inventory differs slightly (explicit
// projections, atomization), but the tallies must show the same shape:
// several % under ordered, exactly one semantically required % (the
// iter->seq back-map) under unordered before further rewriting.
#include <cstdio>

#include "algebra/dot.h"
#include "algebra/stats.h"
#include "bench/bench_util.h"
#include "opt/analyses.h"

namespace exrquy {
namespace {

void Show(Session* session, const char* title, const std::string& query,
          const QueryOptions& options, bool optimized) {
  Result<QueryPlans> plans = session->Plan(query, options);
  if (!plans.ok()) {
    std::printf("%s: error %s\n", title, plans.status().ToString().c_str());
    return;
  }
  OpId root = optimized ? plans->optimized : plans->initial;
  PlanStats stats = CollectPlanStats(*plans->dag, root);
  std::printf("%-46s %s\n", title, stats.ToString().c_str());
}

void Run() {
  auto session = bench::MakeXMarkSession(0.004, nullptr);
  const std::string& q6 = XMarkQueryText("Q6");

  std::printf("Figure 6 — Q6 plan shapes under varying ordering mode\n\n");
  QueryOptions ordered = bench::Baseline();
  Show(session.get(), "(a) ordering mode ordered (as emitted)", q6, ordered,
       /*optimized=*/false);

  QueryOptions unordered = bench::Enabled();
  // Plan as emitted by the # rules, before column dependency analysis.
  Show(session.get(), "(b) ordering mode unordered (as emitted)", q6,
       unordered, /*optimized=*/false);

  std::printf(
      "\nPaper: (a) has 5 %% among 19 operators; (b) trades all %% but one\n"
      "for # — the residual %% implements iter->seq, which mode unordered\n"
      "does not disable.\n");

  // Emit DOT renderings for inspection: the fully optimized plans, with
  // every surviving % annotated by its order-provenance reasons and
  // every traded % annotated — on its surviving replacement — by the
  // rule (keyed-partition, semantic-type, order-dependency,
  // arbitrary-order) and justification that eliminated it.
  Result<OrderExplanation> ea = session->ExplainOrder(q6, ordered);
  Result<OrderExplanation> eb = session->ExplainOrder(q6, unordered);
  if (ea.ok() && eb.ok()) {
    FILE* fa = std::fopen("q6_ordered.dot", "w");
    if (fa != nullptr) {
      std::fputs(ea->dot.c_str(), fa);
      std::fclose(fa);
    }
    FILE* fb = std::fopen("q6_unordered.dot", "w");
    if (fb != nullptr) {
      std::fputs(eb->dot.c_str(), fb);
      std::fclose(fb);
    }
    std::printf("DOT plans written to q6_ordered.dot / q6_unordered.dot\n");
  }
}

}  // namespace
}  // namespace exrquy

int main() {
  exrquy::Run();
  return 0;
}
