// Unit tests for the optimizer: column dependency analysis (Section 4.1),
// pruning and projection composition, the constant/arbitrary-column
// weakening of % (Section 7), distinct elimination over disjoint steps
// (Section 4.2), and step merging — plus end-to-end equivalence checks
// (optimized and unoptimized plans must produce the same tables modulo
// admissible reordering).
#include <gtest/gtest.h>

#include "algebra/algebra.h"
#include "algebra/stats.h"
#include "opt/analyses.h"
#include "opt/pipeline.h"

namespace exrquy {
namespace {

using col::item;
using col::iter;
using col::pos;

ColSet Seed() { return {iter(), pos(), item()}; }

class OptimizerTest : public ::testing::Test {
 protected:
  OpId Loop1() {
    LitTable t;
    t.cols = {iter()};
    t.rows = {{Value::Int(1)}};
    return dag_.Lit(std::move(t));
  }

  // (iter, pos, item) rows.
  OpId Triples(std::vector<std::array<int64_t, 3>> rows) {
    LitTable t;
    t.cols = {iter(), pos(), item()};
    for (const auto& r : rows) {
      t.rows.push_back(
          {Value::Int(r[0]), Value::Int(r[1]), Value::Int(r[2])});
    }
    return dag_.Lit(std::move(t));
  }

  OpId Opt(OpId root, RewriteOptions rewrites = {}) {
    OptimizeOptions options;
    options.rewrites = rewrites;
    options.verify_each_pass = true;  // exercise the checker everywhere
    Result<OpId> opt = Optimize(&dag_, root, options);
    EXPECT_TRUE(opt.ok()) << opt.status().ToString();
    return opt.ok() ? *opt : root;
  }

  Dag dag_;
};

TEST_F(OptimizerTest, IColsSeedsRootAndFollowsProjections) {
  OpId l = Triples({{1, 1, 5}});
  ColId x = ColSym("x1");
  OpId rn = dag_.RowNum(l, x, {{pos(), false}}, iter());
  OpId proj = dag_.Project(rn, {{iter(), iter()}, {pos(), x}, {item(), item()}});
  auto icols = ComputeICols(dag_, proj, Seed());
  // The projection consumes x (as pos), so the RowNum's x is required.
  EXPECT_TRUE(icols[rn].count(x) != 0);
  // The Lit's pos is required as the RowNum's order criterion.
  EXPECT_TRUE(icols[l].count(pos()) != 0);
}

TEST_F(OptimizerTest, IColsIgnoresDeadColumns) {
  OpId l = Triples({{1, 1, 5}});
  ColId x = ColSym("x2");
  OpId rn = dag_.RowNum(l, x, {{pos(), false}}, iter());
  OpId proj = dag_.Project(rn, {{iter(), iter()}, {pos(), pos()},
                                {item(), item()}});
  auto icols = ComputeICols(dag_, proj, Seed());
  EXPECT_TRUE(icols[rn].count(x) == 0);
}

TEST_F(OptimizerTest, DeadRowNumPruned) {
  // RowNum whose rank is projected away disappears (Figure 9's effect).
  OpId l = Triples({{1, 1, 5}});
  ColId x = ColSym("x3");
  OpId rn = dag_.RowNum(l, x, {{pos(), false}}, iter());
  OpId proj = dag_.Project(rn, {{iter(), iter()}, {pos(), pos()},
                                {item(), item()}});
  OpId opt = Opt(proj);
  PlanStats stats = CollectPlanStats(dag_, opt);
  EXPECT_EQ(stats.rownum_ops, 0u);
}

TEST_F(OptimizerTest, DeadAttachedConstantPruned) {
  // × with a one-row literal whose column is never required vanishes.
  OpId l = Triples({{1, 1, 5}});
  OpId attached = dag_.AttachConst(l, ColSym("x4"), Value::Int(9));
  OpId proj = dag_.Project(attached, {{iter(), iter()}, {pos(), pos()},
                                      {item(), item()}});
  OpId opt = Opt(proj);
  EXPECT_EQ(opt, l);
}

TEST_F(OptimizerTest, ProjectionComposition) {
  OpId l = Triples({{1, 1, 5}});
  ColId a = ColSym("a5");
  OpId p1 = dag_.Project(l, {{a, item()}, {iter(), iter()}, {pos(), pos()}});
  OpId p2 = dag_.Project(p1, {{iter(), iter()}, {pos(), pos()}, {item(), a}});
  OpId opt = Opt(p2);
  // Both projections collapse into the literal (identity overall).
  EXPECT_EQ(opt, l);
}

TEST_F(OptimizerTest, WeakenDropsConstantCriteria) {
  OpId l = Triples({{1, 1, 5}, {1, 1, 7}});
  ColId c = ColSym("c6");
  OpId withc = dag_.AttachConst(l, c, Value::Int(3));
  ColId rank = ColSym("r6");
  OpId rn = dag_.RowNum(withc, rank, {{c, false}, {item(), false}}, kNoCol);
  OpId proj = dag_.Project(rn, {{iter(), iter()}, {pos(), rank},
                                {item(), item()}});
  // The literal's item column is statically sorted, so the
  // order-dependency trade would eliminate the % outright; this test
  // pins the weaken flag specifically.
  RewriteOptions rewrites;
  rewrites.rownum_by_od = false;
  OpId opt = Opt(proj, rewrites);
  PlanStats stats = CollectPlanStats(dag_, opt);
  ASSERT_EQ(stats.rownum_ops, 1u);
  // Find the RowNum and check the constant criterion is gone.
  for (OpId id : dag_.ReachableFrom(opt)) {
    const Op& op = dag_.op(id);
    if (op.kind == OpKind::kRowNum) {
      ASSERT_EQ(op.order.size(), 1u);
      EXPECT_EQ(op.order[0].col, item());
    }
  }
}

TEST_F(OptimizerTest, WeakenArbitraryOrderBecomesRowId) {
  // %r:<b> where b comes from # degenerates to # (Section 7).
  OpId l = Triples({{1, 1, 5}, {1, 2, 7}});
  ColId b = ColSym("b7");
  OpId rid = dag_.RowId(l, b);
  ColId rank = ColSym("r7");
  OpId rn = dag_.RowNum(rid, rank, {{b, false}}, kNoCol);
  OpId proj = dag_.Project(rn, {{iter(), iter()}, {pos(), rank},
                                {item(), item()}});
  OpId opt = Opt(proj);
  PlanStats stats = CollectPlanStats(dag_, opt);
  EXPECT_EQ(stats.rownum_ops, 0u);
  EXPECT_GE(stats.rowid_ops, 1u);
}

TEST_F(OptimizerTest, WeakenKeepsMeaningfulPartition) {
  // Grouped % with a non-constant partition must survive even if the
  // criteria are arbitrary (per-group density matters). The iter values
  // repeat so the partition column is not a key (which would license
  // the keyed % collapse instead).
  OpId l = Triples({{1, 1, 5}, {1, 2, 7}, {2, 1, 9}});
  ColId b = ColSym("b8");
  OpId rid = dag_.RowId(l, b);
  ColId rank = ColSym("r8");
  OpId rn = dag_.RowNum(rid, rank, {{b, false}}, iter());
  OpId proj = dag_.Project(rn, {{iter(), iter()}, {pos(), rank},
                                {item(), item()}});
  OpId opt = Opt(proj);
  EXPECT_EQ(CollectPlanStats(dag_, opt).rownum_ops, 1u);
}

TEST_F(OptimizerTest, WeakenDisabledKeepsRowNum) {
  OpId l = Triples({{1, 1, 5}});
  ColId b = ColSym("b9");
  OpId rid = dag_.RowId(l, b);
  ColId rank = ColSym("r9");
  OpId rn = dag_.RowNum(rid, rank, {{b, false}}, kNoCol);
  OpId proj = dag_.Project(rn, {{iter(), iter()}, {pos(), rank},
                                {item(), item()}});
  RewriteOptions rewrites;
  rewrites.weaken_rownum = false;
  // The single-row literal would trigger the keyed % collapse and the
  // order-dependency trade; this test pins the weaken flag specifically.
  rewrites.rownum_by_keys = false;
  rewrites.rownum_by_od = false;
  OpId opt = Opt(proj, rewrites);
  EXPECT_EQ(CollectPlanStats(dag_, opt).rownum_ops, 1u);
}

TEST_F(OptimizerTest, PropertiesConstantAndArbitrary) {
  OpId l = Loop1();
  OpId a = dag_.AttachConst(l, pos(), Value::Int(1));
  OpId rid = dag_.RowId(a, item());
  PropertyTracker props(&dag_);
  const ColProps& p = props.Get(rid);
  EXPECT_TRUE(p.constant.count(iter()) != 0);  // single-row literal
  EXPECT_TRUE(p.constant.count(pos()) != 0);
  EXPECT_TRUE(p.arbitrary.count(item()) != 0);
  EXPECT_TRUE(p.arbitrary.count(pos()) == 0);
}

TEST_F(OptimizerTest, PropertiesSurviveProjectAndJoin) {
  OpId l = Loop1();
  OpId a = dag_.AttachConst(l, pos(), Value::Int(1));
  ColId b = ColSym("b10");
  OpId rid = dag_.RowId(a, b);
  ColId i2 = ColSym("i10");
  OpId right = dag_.Project(Loop1(), {{i2, iter()}});
  OpId j = dag_.EquiJoin(rid, right, iter(), i2);
  PropertyTracker props(&dag_);
  const ColProps& p = props.Get(j);
  EXPECT_TRUE(p.constant.count(pos()) != 0);
  EXPECT_TRUE(p.arbitrary.count(b) != 0);
}

TEST_F(OptimizerTest, StepMergeDosChild) {
  OpId ctx = dag_.Project(
      dag_.AttachConst(Loop1(), item(), Value::Node(0)),
      {{iter(), iter()}, {item(), item()}});
  OpId dos = dag_.Step(ctx, Axis::kDescendantOrSelf, NodeTest::AnyKind());
  StrPool strings;
  NodeTest nt = NodeTest::Name(strings.Intern("x"));
  OpId child = dag_.Step(dos, Axis::kChild, nt);
  OpId proj = dag_.Project(dag_.AttachConst(child, pos(), Value::Int(1)),
                           {{iter(), iter()}, {pos(), pos()},
                            {item(), item()}});
  OpId opt = Opt(proj);
  PlanStats stats = CollectPlanStats(dag_, opt);
  EXPECT_EQ(stats.step_ops, 1u);
  for (OpId id : dag_.ReachableFrom(opt)) {
    if (dag_.op(id).kind == OpKind::kStep) {
      EXPECT_EQ(dag_.op(id).axis, Axis::kDescendant);
      EXPECT_TRUE(dag_.op(id).test == nt);
    }
  }
}

TEST_F(OptimizerTest, StepMergeDisabledByFlag) {
  OpId ctx = dag_.Project(
      dag_.AttachConst(Loop1(), item(), Value::Node(0)),
      {{iter(), iter()}, {item(), item()}});
  OpId dos = dag_.Step(ctx, Axis::kDescendantOrSelf, NodeTest::AnyKind());
  OpId child = dag_.Step(dos, Axis::kChild, NodeTest::Wildcard());
  OpId proj = dag_.Project(dag_.AttachConst(child, pos(), Value::Int(1)),
                           {{iter(), iter()}, {pos(), pos()},
                            {item(), item()}});
  RewriteOptions rewrites;
  rewrites.step_merging = false;
  OpId opt = Opt(proj, rewrites);
  EXPECT_EQ(CollectPlanStats(dag_, opt).step_ops, 2u);
}

TEST_F(OptimizerTest, NoMergeThroughOtherAxes) {
  OpId ctx = dag_.Project(
      dag_.AttachConst(Loop1(), item(), Value::Node(0)),
      {{iter(), iter()}, {item(), item()}});
  OpId child1 = dag_.Step(ctx, Axis::kChild, NodeTest::AnyKind());
  OpId child2 = dag_.Step(child1, Axis::kChild, NodeTest::Wildcard());
  OpId proj = dag_.Project(dag_.AttachConst(child2, pos(), Value::Int(1)),
                           {{iter(), iter()}, {pos(), pos()},
                            {item(), item()}});
  OpId opt = Opt(proj);
  EXPECT_EQ(CollectPlanStats(dag_, opt).step_ops, 2u);
}

TEST_F(OptimizerTest, DistinctOverDisjointStepsRemoved) {
  StrPool strings;
  OpId ctx = dag_.Project(
      dag_.AttachConst(Loop1(), item(), Value::Node(0)),
      {{iter(), iter()}, {item(), item()}});
  OpId c = dag_.Step(ctx, Axis::kChild,
                     NodeTest::Name(strings.Intern("c")));
  OpId d = dag_.Step(ctx, Axis::kChild,
                     NodeTest::Name(strings.Intern("d")));
  OpId u = dag_.Union(c, d);
  OpId dist = dag_.Distinct(u);
  OpId proj = dag_.Project(dag_.AttachConst(dist, pos(), Value::Int(1)),
                           {{iter(), iter()}, {pos(), pos()},
                            {item(), item()}});
  OpId opt = Opt(proj);
  EXPECT_EQ(CollectPlanStats(dag_, opt).distinct_ops, 0u);
}

TEST_F(OptimizerTest, DistinctKeptForSameNameSteps) {
  StrPool strings;
  OpId ctx = dag_.Project(
      dag_.AttachConst(Loop1(), item(), Value::Node(0)),
      {{iter(), iter()}, {item(), item()}});
  NodeTest nt = NodeTest::Name(strings.Intern("c"));
  OpId c1 = dag_.Step(ctx, Axis::kChild, nt);
  OpId u = dag_.Union(c1, c1);  // same step twice: real duplicates
  OpId dist = dag_.Distinct(u);
  OpId proj = dag_.Project(dag_.AttachConst(dist, pos(), Value::Int(1)),
                           {{iter(), iter()}, {pos(), pos()},
                            {item(), item()}});
  OpId opt = Opt(proj);
  EXPECT_EQ(CollectPlanStats(dag_, opt).distinct_ops, 1u);
}

TEST_F(OptimizerTest, DistinctKeptForNonStepInputs) {
  OpId l = Triples({{1, 1, 5}, {1, 1, 5}});
  OpId dist = dag_.Distinct(l);
  OpId opt = Opt(dist);
  EXPECT_EQ(CollectPlanStats(dag_, opt).distinct_ops, 1u);
}

TEST_F(OptimizerTest, DisabledPipelineIsIdentity) {
  OpId l = Triples({{1, 1, 5}});
  OpId rn = dag_.RowNum(l, ColSym("x11"), {{pos(), false}}, kNoCol);
  OptimizeOptions options;
  options.enable = false;
  EXPECT_EQ(*Optimize(&dag_, rn, options), rn);
}

TEST_F(OptimizerTest, DistinctRemovedWhenChildHasKeyColumn) {
  // item is pairwise distinct, so the key analysis proves the input
  // duplicate-free — the Distinct is a no-op. No structural rule (step
  // disjointness) applies here; only the new fact justifies the prune.
  OpId l = Triples({{1, 1, 5}, {1, 1, 7}, {1, 1, 9}});
  OpId dist = dag_.Distinct(l);
  OpId opt = Opt(dist);
  EXPECT_EQ(opt, l);

  RewriteOptions off;
  off.distinct_by_keys = false;
  EXPECT_EQ(CollectPlanStats(dag_, Opt(dist, off)).distinct_ops, 1u);
}

TEST_F(OptimizerTest, DistinctRemovedForAtMostOneRow) {
  // One row can't contain duplicates: the cardinality interval [1,1]
  // licenses the prune even though no column is a key... and here every
  // column IS trivially a key, so disable that path to isolate the
  // cardinality one.
  OpId l = Triples({{1, 1, 5}});
  OpId sel = dag_.Select(dag_.Fun(l, FunKind::kEq, ColSym("eq12"),
                                  {pos(), item()}),
                         ColSym("eq12"));
  OpId dist = dag_.Distinct(sel);
  OpId opt = Opt(dist);
  EXPECT_EQ(CollectPlanStats(dag_, opt).distinct_ops, 0u);
}

TEST_F(OptimizerTest, EmptyPlanShortCircuits) {
  // A join against a statically empty input can't produce rows and
  // can't raise: the whole subtree collapses to an empty literal.
  OpId l = Triples({{1, 1, 5}, {1, 2, 7}});
  OpId empty = dag_.Empty({iter(), pos(), item()});
  ColId i2 = ColSym("i13");
  OpId right = dag_.Project(empty, {{i2, iter()}});
  OpId j = dag_.EquiJoin(l, right, iter(), i2);
  OpId opt = Opt(j);
  const Op& root = dag_.op(opt);
  EXPECT_EQ(root.kind, OpKind::kLit);
  EXPECT_TRUE(root.lit.rows.empty());
  EXPECT_EQ(CollectPlanStats(dag_, opt).total_ops, 1u);

  RewriteOptions off;
  off.empty_short_circuit = false;
  EXPECT_GT(CollectPlanStats(dag_, Opt(j, off)).total_ops, 1u);
}

TEST_F(OptimizerTest, EmptyShortCircuitSparesRaisingOps) {
  // fn:exactly-one over a statically empty input yields no rows but DOES
  // raise at runtime — the error capability analysis must block the
  // collapse or optimization would change observable behaviour.
  StrPool strings;
  OpId loop = Loop1();
  OpId empty = dag_.Empty({iter(), pos(), item()});
  OpId cc = dag_.CardCheck(empty, loop, 1, 1,
                           strings.Intern("exactly-one"));
  OpId opt = Opt(cc);
  bool has_card_check = false;
  for (OpId id : dag_.ReachableFrom(opt)) {
    if (dag_.op(id).kind == OpKind::kCardCheck) has_card_check = true;
  }
  EXPECT_TRUE(has_card_check);
}

TEST_F(OptimizerTest, RowNumCollapsesWhenPartitionIsKey) {
  // % partitioned by a key column: every partition has exactly one row,
  // so every rank is 1 — the sort becomes an attached constant.
  OpId l = Triples({{1, 1, 5}, {1, 2, 7}, {2, 1, 9}});  // item is a key
  ColId rank = ColSym("r14");
  OpId rn = dag_.RowNum(l, rank, {{pos(), false}}, item());
  OpId proj = dag_.Project(rn, {{iter(), iter()}, {pos(), rank},
                                {item(), item()}});
  OpId opt = Opt(proj);
  EXPECT_EQ(CollectPlanStats(dag_, opt).rownum_ops, 0u);

  RewriteOptions off;
  off.rownum_by_keys = false;
  EXPECT_EQ(CollectPlanStats(dag_, Opt(proj, off)).rownum_ops, 1u);
}

TEST_F(OptimizerTest, EmptyUnionBranchRemoved) {
  OpId l = Triples({{1, 1, 5}});
  OpId empty = dag_.Empty({iter(), pos(), item()});
  OpId u = dag_.Union(l, empty);
  OpId opt = Opt(u);
  EXPECT_EQ(opt, l);
}

}  // namespace
}  // namespace exrquy
