// Recursive-descent parser for the supported XQuery subset: prolog
// (declare ordering, declare function), FLWOR, quantifiers, conditionals,
// path expressions with predicates, set operations, comparisons,
// arithmetic, direct element constructors with attribute value templates,
// and ordered{}/unordered{} expressions.
#ifndef EXRQUY_XQUERY_PARSER_H_
#define EXRQUY_XQUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xquery/ast.h"

namespace exrquy {

// Parses a complete query module (prolog + body).
Result<Query> ParseQuery(std::string_view text);

// Parses a single expression (tests and tools).
Result<ExprPtr> ParseExpression(std::string_view text);

}  // namespace exrquy

#endif  // EXRQUY_XQUERY_PARSER_H_
