// Columnar, fully materialized tables — the engine's runtime
// representation of the iter|pos|item relations. Columns are shared by
// shared_ptr, so projection and renaming operate on "table descriptors"
// and are almost free, as the paper notes for MonetDB (Section 5).
#ifndef EXRQUY_ENGINE_TABLE_H_
#define EXRQUY_ENGINE_TABLE_H_

#include <memory>
#include <vector>

#include "common/check.h"
#include "common/symbols.h"
#include "common/value.h"

namespace exrquy {

using Column = std::vector<Value>;
using ColumnPtr = std::shared_ptr<const Column>;

class Table {
 public:
  Table() = default;

  size_t rows() const { return rows_; }
  size_t width() const { return cols_.size(); }
  const std::vector<ColId>& schema() const { return cols_; }

  bool HasCol(ColId c) const;
  size_t ColIndex(ColId c) const;  // CHECK-fails if absent
  const Column& col(ColId c) const { return *data_[ColIndex(c)]; }
  const ColumnPtr& col_ptr(ColId c) const { return data_[ColIndex(c)]; }

  Value at(ColId c, size_t row) const { return col(c)[row]; }

  // Appends a column (length must equal rows() unless the table is empty).
  void AddColumn(ColId c, ColumnPtr data);
  void AddColumn(ColId c, Column data);

  // Explicitly sets the row count for tables built column-less first.
  void SetRows(size_t rows) { rows_ = rows; }

  // Drops this table's reference to column `c`'s payload (the schema
  // entry remains; reading the column afterwards is invalid). The
  // engine's ordered morsel merge frees each exclusively-owned part
  // column right after copying it, keeping the merge's transient
  // footprint at the output plus a single column.
  void ReleaseColumn(ColId c) { data_[ColIndex(c)].reset(); }

  // Materialized payload bytes of one column — the unit the memory
  // governor accounts in (Value is fixed-width; the vector header and
  // allocator slack are ignored).
  static size_t ColumnBytes(const Column& c) {
    return c.size() * sizeof(Value);
  }

  // Payload bytes of this table, counting each shared column once even
  // when several ColIds alias it (projection/renaming share by pointer).
  size_t ByteSize() const;

 private:
  std::vector<ColId> cols_;
  std::vector<ColumnPtr> data_;
  size_t rows_ = 0;
};

using TablePtr = std::shared_ptr<const Table>;

}  // namespace exrquy

#endif  // EXRQUY_ENGINE_TABLE_H_
