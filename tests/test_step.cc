// Unit and property tests for the ⊙ax::nt step evaluator: all twelve
// axes on a reference tree, node tests, duplicate/nested context pruning
// (the staircase join behaviour), and agreement between the tag-indexed
// fast path and the scan fallback.
#include <gtest/gtest.h>

#include <algorithm>

#include "xml/node_store.h"
#include "xml/step.h"
#include "xml/xml_parser.h"

namespace exrquy {
namespace {

//   doc
//    a(1)
//      @id(2)
//      b(3)  x(4) x(5)
//      c(6)  t"hi"(7)
//      b(8)  x(9)  y(10)  @k(—) ... built below
constexpr char kDoc[] =
    "<a id=\"0\">"
    "<b><x/><x/></b>"
    "<c>hi</c>"
    "<b><x/><y/></b>"
    "</a>";

class StepTest : public ::testing::Test {
 protected:
  StepTest() : store_(&strings_) {
    Result<NodeIdx> r = ParseXml(&store_, kDoc);
    EXPECT_TRUE(r.ok());
    doc_ = *r;
    store_.IndexFragment(0);
  }

  // Runs the step with all contexts in iteration 1 and returns the node
  // ranks.
  std::vector<NodeIdx> Step(Axis axis, const NodeTest& test,
                            std::vector<NodeIdx> ctx) {
    std::vector<int64_t> iters(ctx.size(), 1);
    std::vector<int64_t> out_iters;
    std::vector<NodeIdx> out_nodes;
    EvalStep(store_, axis, test, std::move(iters), std::move(ctx),
             &out_iters, &out_nodes);
    return out_nodes;
  }

  NodeTest Name(const char* n) {
    return NodeTest::Name(strings_.Intern(n));
  }

  std::vector<std::string> Names(const std::vector<NodeIdx>& nodes) {
    std::vector<std::string> out;
    for (NodeIdx n : nodes) out.push_back(store_.name_str(n));
    return out;
  }

  StrPool strings_;
  NodeStore store_;
  NodeIdx doc_ = 0;
};

TEST_F(StepTest, ChildSkipsAttributes) {
  NodeIdx a = doc_ + 1;
  std::vector<NodeIdx> kids = Step(Axis::kChild, NodeTest::AnyKind(), {a});
  EXPECT_EQ(Names(kids), (std::vector<std::string>{"b", "c", "b"}));
}

TEST_F(StepTest, ChildNameTest) {
  NodeIdx a = doc_ + 1;
  EXPECT_EQ(Step(Axis::kChild, Name("b"), {a}).size(), 2u);
  EXPECT_EQ(Step(Axis::kChild, Name("x"), {a}).size(), 0u);
}

TEST_F(StepTest, ChildTextTest) {
  NodeIdx a = doc_ + 1;
  std::vector<NodeIdx> c = Step(Axis::kChild, Name("c"), {a});
  ASSERT_EQ(c.size(), 1u);
  std::vector<NodeIdx> texts = Step(Axis::kChild, NodeTest::Text(), {c[0]});
  ASSERT_EQ(texts.size(), 1u);
  EXPECT_EQ(store_.value_str(texts[0]), "hi");
}

TEST_F(StepTest, AttributeAxis) {
  NodeIdx a = doc_ + 1;
  std::vector<NodeIdx> attrs =
      Step(Axis::kAttribute, NodeTest::Wildcard(), {a});
  ASSERT_EQ(attrs.size(), 1u);
  EXPECT_EQ(store_.name_str(attrs[0]), "id");
  EXPECT_EQ(Step(Axis::kAttribute, Name("id"), {a}).size(), 1u);
  EXPECT_EQ(Step(Axis::kAttribute, Name("nope"), {a}).size(), 0u);
}

TEST_F(StepTest, DescendantExcludesAttributesAndSelf) {
  NodeIdx a = doc_ + 1;
  std::vector<NodeIdx> d = Step(Axis::kDescendant, NodeTest::AnyKind(), {a});
  for (NodeIdx n : d) {
    EXPECT_NE(store_.kind(n), NodeKind::kAttribute);
    EXPECT_NE(n, a);
  }
  // b, x, x, c, text, b, x, y = 8 nodes.
  EXPECT_EQ(d.size(), 8u);
}

TEST_F(StepTest, DescendantOrSelfIncludesSelf) {
  NodeIdx a = doc_ + 1;
  std::vector<NodeIdx> d =
      Step(Axis::kDescendantOrSelf, NodeTest::AnyKind(), {a});
  EXPECT_EQ(d.size(), 9u);
  EXPECT_EQ(d.front(), a);
}

TEST_F(StepTest, SelfFiltersByTest) {
  NodeIdx a = doc_ + 1;
  EXPECT_EQ(Step(Axis::kSelf, Name("a"), {a}).size(), 1u);
  EXPECT_EQ(Step(Axis::kSelf, Name("b"), {a}).size(), 0u);
}

TEST_F(StepTest, ParentAndAncestors) {
  std::vector<NodeIdx> xs = Step(Axis::kDescendant, Name("x"), {doc_});
  ASSERT_EQ(xs.size(), 3u);
  std::vector<NodeIdx> parents =
      Step(Axis::kParent, NodeTest::AnyKind(), xs);
  EXPECT_EQ(Names(parents), (std::vector<std::string>{"b", "b"}));
  std::vector<NodeIdx> ancestors =
      Step(Axis::kAncestor, NodeTest::Wildcard(), {xs[0]});
  EXPECT_EQ(Names(ancestors), (std::vector<std::string>{"a", "b"}));
  std::vector<NodeIdx> aos =
      Step(Axis::kAncestorOrSelf, NodeTest::Wildcard(), {xs[0]});
  EXPECT_EQ(aos.size(), 3u);
}

TEST_F(StepTest, AttributeParentIsElement) {
  NodeIdx a = doc_ + 1;
  std::vector<NodeIdx> attrs =
      Step(Axis::kAttribute, NodeTest::Wildcard(), {a});
  std::vector<NodeIdx> parents =
      Step(Axis::kParent, NodeTest::AnyKind(), attrs);
  ASSERT_EQ(parents.size(), 1u);
  EXPECT_EQ(parents[0], a);
}

TEST_F(StepTest, Siblings) {
  NodeIdx a = doc_ + 1;
  std::vector<NodeIdx> kids = Step(Axis::kChild, NodeTest::AnyKind(), {a});
  ASSERT_EQ(kids.size(), 3u);
  NodeIdx c = kids[1];
  EXPECT_EQ(Names(Step(Axis::kFollowingSibling, NodeTest::AnyKind(), {c})),
            (std::vector<std::string>{"b"}));
  EXPECT_EQ(Names(Step(Axis::kPrecedingSibling, NodeTest::AnyKind(), {c})),
            (std::vector<std::string>{"b"}));
  // The first b has following siblings c and b.
  EXPECT_EQ(
      Step(Axis::kFollowingSibling, NodeTest::AnyKind(), {kids[0]}).size(),
      2u);
}

TEST_F(StepTest, FollowingAndPreceding) {
  NodeIdx a = doc_ + 1;
  std::vector<NodeIdx> kids = Step(Axis::kChild, NodeTest::AnyKind(), {a});
  NodeIdx c = kids[1];
  // following(c): second b and its children x, y (text of c excluded —
  // it is a descendant of c).
  std::vector<NodeIdx> fol = Step(Axis::kFollowing, NodeTest::AnyKind(), {c});
  EXPECT_EQ(fol.size(), 3u);
  // preceding(c): first b and its two x children (ancestors excluded).
  std::vector<NodeIdx> pre = Step(Axis::kPreceding, NodeTest::AnyKind(), {c});
  EXPECT_EQ(pre.size(), 3u);
  for (NodeIdx n : pre) EXPECT_NE(n, a);
}

TEST_F(StepTest, DuplicateContextsYieldNoDuplicates) {
  NodeIdx a = doc_ + 1;
  std::vector<NodeIdx> once = Step(Axis::kDescendant, Name("x"), {a});
  std::vector<NodeIdx> twice = Step(Axis::kDescendant, Name("x"), {a, a, a});
  EXPECT_EQ(once, twice);
}

TEST_F(StepTest, NestedContextsPruned) {
  // Contexts {a, b1}: b1 lies in a's subtree, so descendant results must
  // not repeat (staircase pruning).
  NodeIdx a = doc_ + 1;
  std::vector<NodeIdx> bs = Step(Axis::kChild, Name("b"), {a});
  std::vector<NodeIdx> merged =
      Step(Axis::kDescendant, Name("x"), {a, bs[0]});
  EXPECT_EQ(merged, Step(Axis::kDescendant, Name("x"), {a}));
}

TEST_F(StepTest, OutputSortedPerIterAndGroupedByIter) {
  NodeIdx a = doc_ + 1;
  std::vector<int64_t> iters = {2, 1};
  std::vector<NodeIdx> nodes = {a, a};
  std::vector<int64_t> out_iters;
  std::vector<NodeIdx> out_nodes;
  EvalStep(store_, Axis::kDescendant, Name("x"), iters, nodes, &out_iters,
           &out_nodes);
  ASSERT_EQ(out_iters.size(), 6u);
  EXPECT_TRUE(std::is_sorted(out_iters.begin(), out_iters.end()));
  for (size_t i = 1; i < 3; ++i) {
    EXPECT_LT(out_nodes[i - 1], out_nodes[i]);
  }
}

TEST_F(StepTest, MemoizedIdenticalGroupsAcrossIterations) {
  // Many iterations sharing one context set (the lifted loop-invariant
  // pattern) and one differing iteration: results must be per-iteration
  // correct, memoization notwithstanding.
  NodeIdx a = doc_ + 1;
  std::vector<NodeIdx> bs = Step(Axis::kChild, Name("b"), {a});
  ASSERT_EQ(bs.size(), 2u);
  std::vector<int64_t> iters;
  std::vector<NodeIdx> nodes;
  for (int64_t it = 1; it <= 50; ++it) {
    iters.push_back(it);
    nodes.push_back(a);  // identical group everywhere...
  }
  iters.push_back(99);
  nodes.push_back(bs[0]);  // ...except iteration 99
  std::vector<int64_t> out_iters;
  std::vector<NodeIdx> out_nodes;
  EvalStep(store_, Axis::kDescendant, Name("x"), iters, nodes, &out_iters,
           &out_nodes);
  // 50 iterations × 3 x-descendants of a, plus 2 under the first b.
  ASSERT_EQ(out_nodes.size(), 50u * 3 + 2);
  for (size_t i = 0; i < out_iters.size(); ++i) {
    if (out_iters[i] == 99) {
      EXPECT_EQ(store_.parent(out_nodes[i]), bs[0]);
    }
  }
}

TEST_F(StepTest, IndexedMatchesScanOnUnindexedCopy) {
  // Evaluate descendant::x against the indexed document and against an
  // identical unindexed fragment: the result sets must correspond.
  NodeIdx a = doc_ + 1;
  NodeBuilder b(&store_);
  b.BeginElement("root");
  b.CopySubtree(a);
  b.EndElement();
  NodeIdx copy_root = b.Finish();  // unindexed fragment
  NodeIdx copy_a = copy_root + 1;

  std::vector<NodeIdx> indexed = Step(Axis::kDescendant, Name("x"), {a});
  std::vector<NodeIdx> scanned =
      Step(Axis::kDescendant, Name("x"), {copy_a});
  ASSERT_EQ(indexed.size(), scanned.size());
  for (size_t i = 0; i < indexed.size(); ++i) {
    // Same relative offsets within their fragments.
    EXPECT_EQ(indexed[i] - a, scanned[i] - copy_a);
  }
}

// Property sweep: for every axis, duplicate-freeness and per-iteration
// sorting of the output, with mixed nested/duplicate contexts.
class StepAxisSweep : public StepTest,
                      public ::testing::WithParamInterface<Axis> {};

TEST_P(StepAxisSweep, OutputDuplicateFreeAndSorted) {
  NodeIdx a = doc_ + 1;
  std::vector<NodeIdx> all =
      Step(Axis::kDescendantOrSelf, NodeTest::AnyKind(), {doc_});
  // All nodes (including nested ones) as contexts of one iteration, each
  // twice.
  std::vector<NodeIdx> ctx = all;
  ctx.insert(ctx.end(), all.begin(), all.end());
  (void)a;
  std::vector<NodeIdx> out = Step(GetParam(), NodeTest::AnyKind(), ctx);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1], out[i]);  // strictly increasing: sorted + unique
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAxes, StepAxisSweep,
    ::testing::Values(Axis::kChild, Axis::kDescendant,
                      Axis::kDescendantOrSelf, Axis::kSelf, Axis::kAttribute,
                      Axis::kParent, Axis::kAncestor, Axis::kAncestorOrSelf,
                      Axis::kFollowingSibling, Axis::kPrecedingSibling,
                      Axis::kFollowing, Axis::kPreceding),
    [](const ::testing::TestParamInfo<Axis>& info) {
      std::string name = AxisName(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace exrquy
