file(REMOVE_RECURSE
  "libexrquy_xmark.a"
)
