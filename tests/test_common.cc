// Unit tests for the common layer: Status/Result, string interning,
// column symbols, Value identity/hashing.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/status.h"
#include "common/str_pool.h"
#include "common/symbols.h"
#include "common/value.h"

namespace exrquy {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = TypeError("bad operand");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
  EXPECT_EQ(st.message(), "bad operand");
  EXPECT_EQ(st.ToString(), "TypeError: bad operand");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(CardinalityError("x").code(), StatusCode::kCardinalityError);
  EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EveryCodeHasAName) {
  // Exhaustive: every StatusCode in [0, kStatusCodeCount) maps to a
  // distinct printable name, and the first out-of-range value does not —
  // adding a code without extending the name table (or the count) fails
  // here.
  std::set<std::string> names;
  for (int i = 0; i < kStatusCodeCount; ++i) {
    std::string name = StatusCodeName(static_cast<StatusCode>(i));
    EXPECT_NE(name, "Unknown") << "code " << i << " missing from the table";
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate name \"" << name << "\" for code " << i;
  }
  EXPECT_EQ(StatusCodeName(static_cast<StatusCode>(kStatusCodeCount)),
            std::string("Unknown"));
}

TEST(StatusTest, UnavailableCode) {
  Status st = Unavailable("shed");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(st.ToString(), "Unavailable: shed");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnavailable),
            std::string("Unavailable"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ConvertibleValue) {
  // shared_ptr<X> converts into Result<shared_ptr<const X>>.
  auto p = std::make_shared<int>(7);
  Result<std::shared_ptr<const int>> r = p;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 7);
}

TEST(ResultTest, MoveOut) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(StrPoolTest, EmptyStringIsIdZero) {
  StrPool pool;
  EXPECT_EQ(pool.Intern(""), StrPool::kEmpty);
  EXPECT_EQ(pool.Get(StrPool::kEmpty), "");
}

TEST(StrPoolTest, InternDeduplicates) {
  StrPool pool;
  StrId a = pool.Intern("hello");
  StrId b = pool.Intern("hello");
  StrId c = pool.Intern("world");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(pool.Get(a), "hello");
  EXPECT_EQ(pool.Get(c), "world");
}

TEST(StrPoolTest, ReferencesStableUnderGrowth) {
  StrPool pool;
  StrId first = pool.Intern("stable");
  const std::string* addr = &pool.Get(first);
  for (int i = 0; i < 10000; ++i) {
    pool.Intern("filler" + std::to_string(i));
  }
  EXPECT_EQ(&pool.Get(first), addr);
  EXPECT_EQ(pool.Get(first), "stable");
  // Dedup still works after heavy growth.
  EXPECT_EQ(pool.Intern("filler5000"), pool.Intern("filler5000"));
}

TEST(SymbolsTest, WellKnownColumnsAreStable) {
  EXPECT_EQ(col::iter(), ColSym("iter"));
  EXPECT_EQ(col::pos(), ColSym("pos"));
  EXPECT_EQ(col::item(), ColSym("item"));
  EXPECT_EQ(ColName(col::bind()), "bind");
}

TEST(SymbolsTest, FreshColsAreUnique) {
  ColId a = FreshCol("pos");
  ColId b = FreshCol("pos");
  EXPECT_NE(a, b);
  EXPECT_NE(a, col::pos());
  EXPECT_EQ(ColName(a).substr(0, 4), "pos$");
}

TEST(ValueTest, IdentityPerKind) {
  EXPECT_TRUE(Value::Int(3) == Value::Int(3));
  EXPECT_FALSE(Value::Int(3) == Value::Int(4));
  EXPECT_FALSE(Value::Int(1) == Value::Double(1.0));  // bit identity
  EXPECT_TRUE(Value::Bool(true) == Value::Bool(true));
  EXPECT_TRUE(Value::Node(9) == Value::Node(9));
  EXPECT_FALSE(Value::Str(1) == Value::Untyped(1));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(123).Hash(), Value::Int(123).Hash());
  EXPECT_EQ(Value::Str(5).Hash(), Value::Str(5).Hash());
  EXPECT_NE(Value::Int(1).Hash(), Value::Node(1).Hash());
}

}  // namespace
}  // namespace exrquy
