file(REMOVE_RECURSE
  "libexrquy_xml.a"
)
