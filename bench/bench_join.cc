// Join-recognition experiment over the join-shaped XMark queries
// (Q8-Q12): cold and warm wall clock with join_recognition off and on,
// in both ordering modes, plus the recognized joins' build/probe/output
// row counts from the execution profile. Dumped as a table and as
// BENCH_join.json:
//
//   { "bench": "join_recognition",
//     "scale": s, "doc_bytes": N,
//     "queries": [ {"name": "Q8",
//                   "ordered":   {"off_warm_ms": t, "on_cold_ms": t,
//                                 "on_warm_ms": t, "speedup": x},
//                   "unordered": {...},
//                   "joins": [ {"kind": "ValueJoin", "build_rows": n,
//                               "probe_rows": n, "out_rows": n}, ... ]},
//                  ... ],
//     "geomean_warm_speedup_ordered": x,
//     "geomean_warm_speedup_unordered": x }
//
// Every off/on pair re-checks result equality inline — byte-identical
// serializations ordered, equal item multisets unordered; a speedup
// that changed the answer would be no speedup at all.
//
// EXRQUY_BENCH_SCALE overrides the document scale (default 0.008 — the
// retired product-space plans are cubic in it, and Q9's off
// configuration alone is seconds per run already at this size).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "opt/verify.h"

namespace exrquy {
namespace {

const char* kQueries[] = {"Q8", "Q9", "Q10", "Q11", "Q12"};

struct JoinRow {
  const char* kind;
  size_t build_rows;
  size_t probe_rows;
  size_t out_rows;
};

struct ModeRow {
  double off_warm_ms = -1;
  double on_cold_ms = -1;
  double on_warm_ms = -1;
};

// The recognized joins of the executed plan, with their input/output
// row counts from the profile. Plan compilation is deterministic, so
// the planned dag's op ids match the profiled execution's.
std::vector<JoinRow> ProfileJoins(Session* session, const std::string& text,
                                  const QueryOptions& options,
                                  const Profile& profile) {
  std::vector<JoinRow> joins;
  Result<QueryPlans> plans = session->Plan(text, options);
  if (!plans.ok()) return joins;
  std::map<OpId, size_t> out_rows;
  for (const Profile::OpMetrics& m : profile.ops()) {
    out_rows[m.op] = m.out_rows;
  }
  for (OpId id : plans->dag->ReachableFrom(plans->optimized)) {
    const Op& op = plans->dag->op(id);
    bool theta = op.kind == OpKind::kThetaJoin;
    bool value = op.kind == OpKind::kEquiJoin && op.value_join;
    if (!theta && !value) continue;
    size_t l = out_rows.count(op.children[0]) != 0
                   ? out_rows[op.children[0]]
                   : 0;
    size_t r = out_rows.count(op.children[1]) != 0
                   ? out_rows[op.children[1]]
                   : 0;
    size_t out = out_rows.count(id) != 0 ? out_rows[id] : 0;
    // The theta kernel probes its left (larger) input; the hash join
    // builds on whichever side is smaller.
    size_t build = theta ? r : std::min(l, r);
    size_t probe = theta ? l : std::max(l, r);
    joins.push_back({theta ? "ThetaJoin" : "ValueJoin", build, probe, out});
  }
  return joins;
}

void Run() {
  double scale = bench::EnvScale("EXRQUY_BENCH_SCALE", 0.008);
  size_t doc_bytes = 0;
  std::unique_ptr<Session> session =
      bench::MakeXMarkSession(scale, &doc_bytes);

  std::printf("Join recognition — XMark, %.3f scale (%zu KB)\n\n", scale,
              doc_bytes / 1024);
  std::printf("%-5s %-9s  %12s  %10s  %10s  %8s\n", "query", "mode",
              "off warm ms", "on cold ms", "on warm ms", "speedup");

  struct Row {
    const char* name;
    ModeRow ordered;
    ModeRow unordered;
    std::vector<JoinRow> joins;
  };
  std::vector<Row> rows;
  double log_speedup[2] = {0, 0};

  for (const char* name : kQueries) {
    const std::string& text = XMarkQueryText(name);
    Row row;
    row.name = name;
    for (OrderingMode mode :
         {OrderingMode::kOrdered, OrderingMode::kUnordered}) {
      bool ordered = mode == OrderingMode::kOrdered;
      QueryOptions on;
      on.default_ordering = mode;
      QueryOptions off = on;
      off.join_recognition = false;

      QueryResult off_result;
      double off_warm =
          bench::MedianExecMs(session.get(), text, off, 3, &off_result);
      QueryResult on_result;
      Result<QueryResult> cold = session->Execute(text, on);
      if (off_warm < 0 || !cold.ok()) std::exit(1);
      double on_cold = cold->compile_ms + cold->execute_ms;
      double on_warm =
          bench::MedianExecMs(session.get(), text, on, 5, &on_result);
      if (on_warm < 0) std::exit(1);

      // The optimization must never change the answer: byte-identical
      // ordered, the same item multiset unordered.
      if (ordered) {
        if (on_result.serialized != off_result.serialized) {
          std::fprintf(stderr, "%s: ordered results diverge off vs on\n",
                       name);
          std::exit(1);
        }
      } else {
        std::vector<std::string> a = on_result.items;
        std::vector<std::string> b = off_result.items;
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        if (a != b) {
          std::fprintf(stderr, "%s: unordered multisets diverge off vs on\n",
                       name);
          std::exit(1);
        }
      }

      ModeRow& m = ordered ? row.ordered : row.unordered;
      m.off_warm_ms = off_warm;
      m.on_cold_ms = on_cold;
      m.on_warm_ms = on_warm;
      log_speedup[ordered ? 0 : 1] +=
          std::log(off_warm / std::max(on_warm, 1e-3));
      std::printf("%-5s %-9s  %12.2f  %10.2f  %10.2f  %7.1fx\n", name,
                  ordered ? "ordered" : "unordered", off_warm, on_cold,
                  on_warm, off_warm / std::max(on_warm, 1e-3));

      if (ordered) {
        QueryOptions prof = on;
        prof.profile = true;
        Result<QueryResult> p = session->Execute(text, prof);
        if (!p.ok()) std::exit(1);
        row.joins = ProfileJoins(session.get(), text, on, p->profile);
      }
    }
    rows.push_back(std::move(row));
  }

  size_t n = rows.size();
  double geo_ordered = std::exp(log_speedup[0] / n);
  double geo_unordered = std::exp(log_speedup[1] / n);
  std::printf("\ngeomean warm speedup: ordered %.2fx, unordered %.2fx\n",
              geo_ordered, geo_unordered);

  std::FILE* out = std::fopen("BENCH_join.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_join.json\n");
    std::exit(1);
  }
  std::fprintf(out,
               "{\n  \"bench\": \"join_recognition\",\n"
               "  \"scale\": %.4f,\n  \"doc_bytes\": %zu,\n"
               "  \"queries\": [\n",
               scale, doc_bytes);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    auto mode_json = [&](const ModeRow& m) {
      std::fprintf(out,
                   "{\"off_warm_ms\": %.3f, \"on_cold_ms\": %.3f, "
                   "\"on_warm_ms\": %.3f, \"speedup\": %.2f}",
                   m.off_warm_ms, m.on_cold_ms, m.on_warm_ms,
                   m.off_warm_ms / std::max(m.on_warm_ms, 1e-3));
    };
    std::fprintf(out, "    {\"name\": \"%s\",\n     \"ordered\": ", r.name);
    mode_json(r.ordered);
    std::fprintf(out, ",\n     \"unordered\": ");
    mode_json(r.unordered);
    std::fprintf(out, ",\n     \"joins\": [");
    for (size_t j = 0; j < r.joins.size(); ++j) {
      std::fprintf(out,
                   "%s{\"kind\": \"%s\", \"build_rows\": %zu, "
                   "\"probe_rows\": %zu, \"out_rows\": %zu}",
                   j != 0 ? ", " : "", r.joins[j].kind, r.joins[j].build_rows,
                   r.joins[j].probe_rows, r.joins[j].out_rows);
    }
    std::fprintf(out, "]}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"geomean_warm_speedup_ordered\": %.3f,\n"
               "  \"geomean_warm_speedup_unordered\": %.3f\n}\n",
               geo_ordered, geo_unordered);
  std::fclose(out);
  std::printf("wrote BENCH_join.json\n");
}

}  // namespace
}  // namespace exrquy

int main() {
  exrquy::Run();
  return 0;
}
