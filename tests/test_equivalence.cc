// Property-based equivalence sweep: a battery of queries over randomized
// documents, executed under every combination of the ablation flags.
// Invariants, for every query and every configuration:
//
//  * ordered mode: the result sequence equals the baseline's exactly
//    (exploiting order indifference never changes an ordered-mode
//    result);
//  * unordered mode: the result is a permutation of the baseline's
//    multiset (any permutation is admissible, nothing may appear or
//    vanish).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "api/session.h"

namespace exrquy {
namespace {

// Deterministic pseudo-random document: nested sections with attributes,
// text, and repeated tag names so that set operations and predicates
// have real work to do.
std::string RandomDoc(uint64_t seed) {
  uint64_t state = seed * 2654435761u + 1;
  auto next = [&]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::string xml = "<root>";
  int sections = 3 + static_cast<int>(next() % 4);
  for (int s = 0; s < sections; ++s) {
    xml += "<sec id=\"s" + std::to_string(s) + "\" w=\"" +
           std::to_string(next() % 50) + "\">";
    int entries = 1 + static_cast<int>(next() % 5);
    for (int e = 0; e < entries; ++e) {
      uint64_t kind = next() % 3;
      std::string v = std::to_string(next() % 20);
      if (kind == 0) {
        xml += "<a v=\"" + v + "\">" + v + "</a>";
      } else if (kind == 1) {
        xml += "<b v=\"" + v + "\"><a v=\"" + v + "\"/></b>";
      } else {
        xml += "<c>" + v + "</c>";
      }
    }
    xml += "</sec>";
  }
  xml += "</root>";
  return xml;
}

const std::vector<std::string>& Queries() {
  static const std::vector<std::string>* queries =
      new std::vector<std::string>{
          R"(for $s in doc("r.xml")/root/sec return count($s//a))",
          R"(doc("r.xml")//a | doc("r.xml")//b)",
          R"(for $s in doc("r.xml")/root/sec
             where $s/@w > 20 return $s/@id)",
          R"(count(doc("r.xml")//a[@v > 10]))",
          R"(for $s in doc("r.xml")/root/sec
             order by number($s/@w) return $s/@id)",
          R"(sum(doc("r.xml")//c))",
          R"(for $x in doc("r.xml")//a
             return <hit sec="{ $x/ancestor::sec/@id }">{ $x/@v }</hit>)",
          R"(some $x in doc("r.xml")//a satisfies $x/@v = doc("r.xml")//c)",
          R"(distinct-values(doc("r.xml")//@v))",
          R"(for $s in doc("r.xml")/root/sec
             return (count($s/a), count($s/b), count($s/c)))",
          R"((doc("r.xml")//a)[2] is (doc("r.xml")//a)[2])",
          R"(doc("r.xml")//sec[a]/@id)",
          R"(reverse(for $s in doc("r.xml")/root/sec return $s/@w))",
      };
  return *queries;
}

class EquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(EquivalenceTest, AllFlagCombinationsAgree) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  Session session;
  ASSERT_TRUE(session.LoadDocument("r.xml", RandomDoc(seed)).ok());

  QueryOptions baseline;
  baseline.enable_order_indifference = false;

  for (const std::string& query : Queries()) {
    Result<QueryResult> ref = session.Execute(query, baseline);
    ASSERT_TRUE(ref.ok()) << query << ": " << ref.status().ToString();
    std::vector<std::string> ref_sorted = ref->items;
    std::sort(ref_sorted.begin(), ref_sorted.end());

    // Sweep the ablation flags (16 combinations) in both modes.
    for (int mask = 0; mask < 16; ++mask) {
      QueryOptions o;
      o.enable_order_indifference = true;
      o.column_pruning = (mask & 1) != 0;
      o.weaken_rownum = (mask & 2) != 0;
      o.distinct_elimination = (mask & 4) != 0;
      o.step_merging = (mask & 8) != 0;

      o.default_ordering = OrderingMode::kOrdered;
      Result<QueryResult> ordered = session.Execute(query, o);
      ASSERT_TRUE(ordered.ok())
          << query << " mask=" << mask << ": "
          << ordered.status().ToString();
      // distinct-values order is implementation defined even in ordered
      // mode; everything else must match the baseline exactly.
      if (query.find("distinct-values") == std::string::npos) {
        EXPECT_EQ(ordered->items, ref->items)
            << query << " (ordered, mask=" << mask << ")";
      }

      o.default_ordering = OrderingMode::kUnordered;
      Result<QueryResult> unordered = session.Execute(query, o);
      ASSERT_TRUE(unordered.ok())
          << query << " mask=" << mask << ": "
          << unordered.status().ToString();
      std::vector<std::string> got = unordered->items;
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, ref_sorted)
          << query << " (unordered, mask=" << mask << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace exrquy
