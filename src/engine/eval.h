// Evaluation of algebra DAGs over columnar tables — the stand-in for the
// MonetDB back-end of the paper. Every reachable operator is evaluated
// exactly once (sub-plan sharing); % performs a blocking sort while #
// attaches a dense numbering at negligible cost, which is precisely the
// cost asymmetry the paper's rewrites exploit.
//
// Execution is morsel-driven and pipelined: a plan-time pass
// (opt/morsel_plan.h, audited independently like every other optimizer
// claim) fuses maximal chains of non-blocking operators — π, σ, Fun, ⊕,
// join probes, Step, # — into pipelines, and the scheduler dispatches
// whole pipelines as single units. A pipeline pulls its source in
// fixed-size morsels; each morsel flows through every stage without
// materializing interior tables, and the sink concatenates morsel
// results in morsel order (Step re-sorts, # numbers the merged output).
// Morsel boundaries depend only on the source size, never on the thread
// count, so results are byte-identical to serial evaluation at every
// thread count and morsel size. Blocking operators (%, Distinct, Aggr,
// node constructors, join builds) are pipeline breakers and keep the
// original operator-at-a-time kernels, which also chunk large inputs
// over the same pool.
//
// Intermediate tables are refcounted against their remaining consumers
// (opt/analyses.h ConsumerCounts) and released as soon as the last
// consumer has run; fused interior operators never materialize at all,
// shrinking peak memory below the live-frontier bound of the
// operator-at-a-time engine.
#ifndef EXRQUY_ENGINE_EVAL_H_
#define EXRQUY_ENGINE_EVAL_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "algebra/algebra.h"
#include "common/governor.h"
#include "common/status.h"
#include "engine/faults.h"
#include "engine/profile.h"
#include "engine/table.h"
#include "engine/task_pool.h"
#include "engine/value.h"
#include "opt/morsel_plan.h"
#include "xml/node_store.h"

namespace exrquy {

struct EvalContext {
  NodeStore* store = nullptr;
  StrPool* strings = nullptr;
  // fn:doc() name -> document node.
  std::map<StrId, NodeIdx> documents;
  Profile* profile = nullptr;  // optional

  // Worker threads for DAG- and chunk-level parallelism. 1 = the exact
  // old serial behavior; 0 = EXRQUY_THREADS if set, otherwise
  // std::thread::hardware_concurrency().
  int num_threads = 0;
  // Row-count granularity of intra-operator chunking (standalone
  // kernels). Chunk boundaries are a pure function of the input size,
  // never of the thread count, so any setting yields byte-identical
  // results.
  size_t chunk_rows = 65536;
  // Release memoized intermediates once their last consumer has run.
  // Off = keep-all memoization (the pre-refcounting behavior), retained
  // for peak-memory comparisons.
  bool release_intermediates = true;

  // Morsel-driven pipelined execution (opt/morsel_plan.h): fuse chains
  // of non-blocking operators and pull them in morsels with an ordered
  // merge at each sink. Off = pure operator-at-a-time evaluation,
  // retained for peak-memory and attribution comparisons. Either
  // setting yields byte-identical results.
  bool pipelined_execution = true;
  // Row-count granularity of morsel pulls. 0 defers to the
  // EXRQUY_MORSEL_ROWS environment variable, then to chunk_rows. Morsel
  // boundaries are a pure function of the source size, so any setting
  // yields byte-identical results.
  size_t morsel_rows = 0;
  // A scheduled unit (pipeline or standalone operator) whose
  // materialized inputs total at most this many rows runs inline on the
  // thread that made it ready instead of being enqueued on the pool —
  // tiny queries never pay task-dispatch overhead (and, with the pool's
  // lazy worker spawn, never start worker threads at all). Inlining
  // changes scheduling only, never results. 0 disables it.
  size_t inline_rows = 4096;

  // Physical-plan order detection (Section 6's pointer to Moerkotte &
  // Neumann): when set, % first checks in O(n) whether its input already
  // arrives in the requested (partition, criteria) order and skips the
  // blocking sort if so — "this renders subsequent % as cheap as #".
  // Orthogonal to the paper's logical rewrites, hence off by default.
  bool detect_sorted_inputs = false;
  // Number of % evaluations whose sort was skipped (diagnostics).
  mutable std::atomic<size_t> sorts_skipped{0};

  // -- Resource governance (all optional; see common/governor.h) ----------
  // Cooperative cancellation: polled at every unit dispatch and chunk/
  // morsel boundary, so an abort lands within one morsel's work ->
  // kCancelled.
  const CancelToken* cancel = nullptr;
  // Wall-clock deadline, same poll points -> kDeadlineExceeded. A query
  // that completes its root is allowed to return even if the deadline
  // passed during its final chunk (completion beats a late trip).
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  // Byte accountant; charged by live intermediate columns here and by
  // NodeStore/StrPool growth (Session attaches it there). A charge that
  // crosses the limit latches the budget and the next poll converts it
  // into kResourceExhausted — exhaustion always fails the query, even
  // when detected only after the root completed (the memory was used).
  MemoryBudget* budget = nullptr;
  // Deterministic fault injection (engine/faults.h); counts unit
  // dispatches and chunk/morsel-stage polls and turns the planned points
  // into governor trips.
  FaultInjector* faults = nullptr;
};

class Evaluator {
 public:
  Evaluator(const Dag& dag, EvalContext* ctx);

  // Evaluates the sub-DAG rooted at `root` and returns its table.
  Result<TablePtr> Eval(OpId root);

 private:
  struct Sched;  // per-Eval scheduler state (eval.cc)

  // -- Governor (cancel/deadline/budget/faults) ----------------------------
  // Latches the first trip status; later trips are ignored.
  void Trip(Status st);
  Status TripStatus();
  // Checks cancel token, deadline, and budget latch; returns the trip
  // status once any of them (or a previous trip) fired. PollOp/PollChunk
  // additionally advance the fault-injection counters.
  Status PollGovernor();
  Status PollOp();     // one scheduled-unit dispatch
  Status PollChunk();  // one chunk boundary / morsel-stage boundary

  Result<TablePtr> EvalOp(const Op& op, const std::vector<TablePtr>& in);

  Result<TablePtr> EvalSerial(const std::vector<OpId>& order, OpId root);
  Result<TablePtr> EvalParallel(const std::vector<OpId>& order, OpId root,
                                size_t threads);
  // Scheduler internals address operators by their dense slot in the
  // topological order rather than by OpId. A scheduled unit is a
  // standalone operator or a whole pipeline (dispatched at its sink
  // slot); interior pipeline slots finish instantly without running.
  // RunTask drains `slot` plus every unit its completion makes ready
  // inline-eligible, as a loop (bounded stack depth). `queued` marks a
  // unit that actually waited in the pool queue — only those charge
  // queue_ms (inline units never queued; counting the backlog once per
  // scheduled unit is what keeps the profile's queue-wait additive).
  void RunTask(Sched* s, size_t slot, bool queued);
  void RunOne(Sched* s, size_t slot, bool queued, std::vector<size_t>* q);
  void RunPipelineUnit(Sched* s, size_t slot, bool queued,
                       std::vector<size_t>* q);
  void FinishTask(Sched* s, size_t slot, std::vector<size_t>* q);
  void ReleaseChildren(Sched* s, const Op& op);
  void DecrementPending(Sched* s, size_t slot, std::vector<size_t>* q);
  // Rows-based serial-execution threshold: true when the ready unit's
  // materialized inputs are small enough to run on the current thread.
  bool ShouldInline(Sched* s, size_t slot);

  // -- Pipelined execution (opt/morsel_plan.h) -----------------------------
  // Runs pipeline `pidx` morsel by morsel (on the pool when present) and
  // merges the morsel results in morsel order. On success fills
  // `stage_metrics`/`pm` when non-null (profiling); on a stage error
  // returns the error the serial engine would have hit first (smallest
  // failing stage, then earliest morsel).
  Result<TablePtr> EvalPipeline(
      uint32_t pidx, const std::function<const TablePtr&(OpId)>& input,
      std::vector<Profile::OpMetrics>* stage_metrics,
      Profile::PipelineMetrics* pm);
  // Morsel-local stage kernels: evaluate rows [b, e) of `in` (the whole
  // morsel for interior stages, a source slice for the head) without
  // chunking or materialization outside the morsel.
  std::shared_ptr<Table> StageProjectM(const Op& op, const Table& in,
                                       size_t b, size_t e);
  Result<std::shared_ptr<Table>> StageSelectM(const Op& op, const Table& in,
                                              size_t b, size_t e);
  Result<std::shared_ptr<Table>> StageFunM(const Op& op, const Table& in,
                                           size_t b, size_t e);
  std::shared_ptr<Table> StageUnionM(const Table& l, const Table& r, size_t b,
                                     size_t e);
  Result<std::shared_ptr<Table>> StageThetaM(const Op& op, const Table& in,
                                             size_t b, size_t e,
                                             const Table& right);
  Status StageStepM(const Op& op, const Table& in, size_t b, size_t e,
                    std::vector<int64_t>* out_iters,
                    std::vector<NodeIdx>* out_nodes);
  size_t NumMorsels(size_t n) const;
  // Transient morsel-intermediate accounting (parts awaiting the merge);
  // folded into peak_live_bytes_ and the memory budget.
  void ChargeMorsel(size_t bytes);
  void ReleaseMorsel(size_t bytes);

  // Splits [0, n) into fixed chunk_rows-sized ranges and runs
  // fn(chunk, begin, end) for each — on the pool when one exists and the
  // input is large enough, inline otherwise. Returns the chunk count.
  size_t ForChunks(size_t n,
                   const std::function<void(size_t, size_t, size_t)>& fn);
  size_t NumChunks(size_t n) const;
  // Materializes the given rows of `in`, chunk-parallel per column.
  TablePtr GatherParallel(const Table& in, const std::vector<uint32_t>& rows);
  // Chunked stable sort: sorts each chunk, then stably merges chunk pairs
  // — byte-identical to std::stable_sort over the whole range.
  void ParallelStableSort(
      std::vector<uint32_t>* perm,
      const std::function<bool(uint32_t, uint32_t)>& less);

  Result<TablePtr> EvalLit(const Op& op);
  Result<TablePtr> EvalProject(const Op& op, const Table& in);
  Result<TablePtr> EvalSelect(const Op& op, const Table& in);
  Result<TablePtr> EvalEquiJoin(const Op& op, const Table& l, const Table& r);
  Result<TablePtr> EvalThetaJoin(const Op& op, const Table& l, const Table& r);
  Result<TablePtr> EvalCross(const Op& op, const Table& l, const Table& r);
  Result<TablePtr> EvalUnion(const Op& op, const Table& l, const Table& r);
  Result<TablePtr> EvalDiffSemi(const Op& op, const Table& l, const Table& r);
  Result<TablePtr> EvalDistinct(const Op& op, const Table& in);
  Result<TablePtr> EvalRowNum(const Op& op, const Table& in);
  Result<TablePtr> EvalRowId(const Op& op, const Table& in);
  Result<TablePtr> EvalFun(const Op& op, const Table& in);
  Result<TablePtr> EvalAggr(const Op& op, const Table& in);
  Result<TablePtr> EvalStep(const Op& op, const Table& in);
  Result<TablePtr> EvalDoc(const Op& op);
  Result<TablePtr> EvalElem(const Op& op, const Table& content,
                            const Table& loop);
  Result<TablePtr> EvalAttr(const Op& op, const Table& value,
                            const Table& loop);
  Result<TablePtr> EvalText(const Op& op, const Table& content,
                            const Table& loop);
  Result<TablePtr> EvalRange(const Op& op, const Table& in);
  Result<TablePtr> EvalCardCheck(const Op& op, const Table& in,
                                 const Table& loop);

  Result<Value> ApplyFun(const Op& op, const std::vector<const Column*>& args,
                         size_t row);

  const Dag& dag_;
  EvalContext* ctx_;
  ValueOps ops_;
  size_t chunk_rows_;
  size_t morsel_rows_;
  size_t inline_rows_;

  // Pipeline plan for the current Eval; empty (pipelined_ false) when
  // pipelining is off or the plan has no fusable chain.
  MorselPlan mplan_;
  bool pipelined_ = false;

  std::unique_ptr<TaskPool> pool_;  // null in serial execution

  // Node constructors append to the NodeStore; everything else only
  // reads it. A constructor operator holds this exclusively for its whole
  // kernel, every other operator holds it shared — chunk and morsel
  // tasks inherit the coordinating unit task's hold (ParallelFor blocks
  // the coordinator).
  std::shared_mutex store_mu_;

  // Guards ctx_->profile and the live-column tracker.
  std::mutex profile_mu_;

  // Governor trip state: set once by the first observed cancel/deadline/
  // budget/fault condition, then sticky for the whole evaluation. Chunk
  // and morsel tasks that observe the trip skip their work, so the
  // owning unit's table would be torn — the unit discards any ok()
  // result produced while tripped_ is set instead of memoizing it.
  std::atomic<bool> tripped_{false};
  std::mutex trip_mu_;
  Status trip_status_;

  // Distinct live memoized columns (tables share columns by pointer, so
  // bytes are counted once per column, not once per referencing table).
  std::map<const Column*, uint32_t> live_cols_;
  size_t live_bytes_ = 0;
  size_t peak_live_bytes_ = 0;
  size_t released_tables_ = 0;
  // Live per-morsel parts of in-flight pipelines (guarded by
  // profile_mu_); counted into peak_live_bytes_ alongside live_bytes_.
  size_t morsel_live_bytes_ = 0;
  void TrackTable(const Table& t);
  void UntrackTable(const Table& t);
};

// Serializes a query result table (schema iter|pos|item, single
// iteration) in sequence order: nodes as XML, atomics via their string
// value, adjacent atomics separated by a single space.
Result<std::string> SerializeResult(const Table& t, const EvalContext& ctx);

// The result items individually rendered (order preserved); useful for
// the multiset comparisons in tests ("any permutation is admissible").
Result<std::vector<std::string>> ResultItems(const Table& t,
                                             const EvalContext& ctx);

}  // namespace exrquy

#endif  // EXRQUY_ENGINE_EVAL_H_
