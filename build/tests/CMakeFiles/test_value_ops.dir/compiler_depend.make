# Empty compiler generated dependencies file for test_value_ops.
# This may be replaced when dependencies are built.
