// XQuery -> Core normalization J.K (Section 2.2 of the paper):
//
//  * user-declared (non-recursive) functions are inlined via let bindings,
//  * `every $x in d satisfies s` rewrites to
//    `fn:not(some $x in d satisfies fn:not(s))`,
//  * and — when order indifference is enabled — calls to fn:unordered()
//    are inserted in the places where sequence order is unobservable:
//    aggregate arguments (Rule FN:COUNT and friends), quantifier domains
//    (Rule QUANT), and the operands of general comparisons (whose
//    normalization is based on `some`). These rules apply in either
//    ordering mode.
//
// The mode-dependent rules (FOR/STEP/UNION, i.e. LOC#/BIND#) are
// implemented directly in the compiler, which tracks the lexical ordering
// mode — the paper shows (Section 2.2) that Rule FOR cannot even be
// expressed faithfully at the language level.
#ifndef EXRQUY_XQUERY_NORMALIZE_H_
#define EXRQUY_XQUERY_NORMALIZE_H_

#include "common/status.h"
#include "xquery/ast.h"

namespace exrquy {

struct NormalizeOptions {
  // Insert fn:unordered() per rules FN:COUNT / QUANT / general-comparison
  // normalization. Off in the paper's baseline configuration.
  bool insert_unordered = true;
};

// Normalizes `query` in place. Fails on recursive or unknown local
// functions and on arity mismatches.
Status Normalize(Query* query, const NormalizeOptions& options);

}  // namespace exrquy

#endif  // EXRQUY_XQUERY_NORMALIZE_H_
