# Empty compiler generated dependencies file for test_xmark.
# This may be replaced when dependencies are built.
