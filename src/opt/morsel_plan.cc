#include "opt/morsel_plan.h"

#include <string>
#include <unordered_set>

namespace exrquy {
namespace {

// Kinds that may appear as a pipeline stage at all.
bool RowLocal(OpKind k) {
  return k == OpKind::kProject || k == OpKind::kSelect || k == OpKind::kFun;
}

bool HeadCapable(OpKind k) {
  return RowLocal(k) || k == OpKind::kUnion || k == OpKind::kEquiJoin ||
         k == OpKind::kThetaJoin;
}

bool SinkOnly(OpKind k) { return k == OpKind::kStep || k == OpKind::kRowId; }

// Parent-edge counts over the reachable sub-DAG, duplicates kept (an op
// consumed twice by one parent has two edges and can never be interior).
std::unordered_map<OpId, uint32_t> ParentEdges(const Dag& dag,
                                               const std::vector<OpId>& order) {
  std::unordered_map<OpId, uint32_t> edges;
  edges.reserve(order.size() * 2);
  for (OpId id : order) {
    for (OpId c : dag.op(id).children) ++edges[c];
  }
  return edges;
}

std::string Diag(const char* invariant, const Dag& dag, OpId id,
                 const std::string& detail) {
  return std::string("morsel plan: [") + invariant + "] op " +
         std::to_string(id) + " (" + OpKindName(dag.op(id).kind) +
         "): " + detail;
}

}  // namespace

MorselPlan PlanPipelines(const Dag& dag, const std::vector<OpId>& order,
                         OpId root) {
  MorselPlan plan;
  std::unordered_map<OpId, uint32_t> edges = ParentEdges(dag, order);
  // The unique parent of ops with exactly one parent edge.
  std::unordered_map<OpId, OpId> parent;
  parent.reserve(order.size());
  for (OpId id : order) {
    for (OpId c : dag.op(id).children) {
      if (edges.at(c) == 1) parent[c] = id;
    }
  }

  std::unordered_set<OpId> covered;
  // Ascending op ids: a maximal chain's head has the smallest id in the
  // chain (children precede parents), so growing upward from the first
  // uncovered head-capable op discovers each maximal chain exactly once.
  for (OpId h : order) {
    if (covered.count(h) != 0) continue;
    const Op& hop = dag.op(h);
    if (!HeadCapable(hop.kind)) continue;
    // A head's morsel domain is its materialized input(s); an input that
    // is this very op (degenerate self-loops cannot happen in a DAG) or
    // missing disqualifies nothing here — structure was verified already.

    Pipeline pl;
    pl.stages.push_back({h, -1});
    OpId cur = h;
    for (;;) {
      if (cur == root) break;  // the root's table must materialize
      auto eit = edges.find(cur);
      if (eit == edges.end() || eit->second != 1) break;
      OpId p = parent.at(cur);
      if (covered.count(p) != 0) break;
      const Op& pop = dag.op(p);
      bool is_sink_only = SinkOnly(pop.kind);
      if (!RowLocal(pop.kind) && pop.kind != OpKind::kThetaJoin &&
          !is_sink_only) {
        break;  // breaker (or head-only kind, which cannot sit mid-chain)
      }
      if (pop.kind == OpKind::kThetaJoin &&
          (pop.children[0] != cur || pop.children[1] == cur)) {
        // The theta kernel streams its left input only; a self-join on
        // the streamed op would leave the build side unmaterialized.
        break;
      }
      pl.stages.push_back({p, 0});
      cur = p;
      if (is_sink_only) break;  // Step/RowId terminate the chain
    }
    if (pl.stages.size() < 2) continue;  // a 1-stage pipeline is just the op
    uint32_t idx = static_cast<uint32_t>(plan.pipelines.size());
    for (const PipelineStage& st : pl.stages) {
      covered.insert(st.op);
      plan.pipeline_of.emplace(st.op, idx);
    }
    plan.pipelines.push_back(std::move(pl));
  }
  return plan;
}

Status AuditMorselPlan(const Dag& dag, const std::vector<OpId>& order,
                       OpId root, const MorselPlan& plan) {
  std::unordered_set<OpId> reachable(order.begin(), order.end());
  std::unordered_map<OpId, uint32_t> edges = ParentEdges(dag, order);

  // Coverage: every stage op appears in exactly one pipeline, once, and
  // pipeline_of mirrors the stage lists exactly.
  std::unordered_map<OpId, uint32_t> seen;
  std::unordered_set<OpId> interior;
  for (uint32_t pi = 0; pi < plan.pipelines.size(); ++pi) {
    const Pipeline& pl = plan.pipelines[pi];
    if (pl.stages.size() < 2) {
      return Internal("morsel plan: [pipeline-arity] pipeline " +
                      std::to_string(pi) + ": fewer than two stages");
    }
    for (size_t si = 0; si < pl.stages.size(); ++si) {
      OpId id = pl.stages[si].op;
      if (reachable.count(id) == 0) {
        return Internal(
            Diag("stage-reachable", dag, id, "not reachable from the root"));
      }
      if (!seen.emplace(id, pi).second) {
        return Internal(
            Diag("stage-unique", dag, id, "fused into more than one stage"));
      }
      auto it = plan.pipeline_of.find(id);
      if (it == plan.pipeline_of.end() || it->second != pi) {
        return Internal(Diag("stage-map", dag, id,
                             "pipeline_of does not name its pipeline"));
      }
      if (si + 1 < pl.stages.size()) interior.insert(id);
      if (si > 0 && !(pl.stages[si - 1].op < id)) {
        return Internal(Diag("stage-order", dag, id,
                             "stages not in ascending (bottom-up) op order"));
      }
    }
  }
  for (const auto& [id, pi] : plan.pipeline_of) {
    auto it = seen.find(id);
    if (it == seen.end() || it->second != pi) {
      return Internal(Diag("stage-map", dag, id,
                           "pipeline_of entry without a matching stage"));
    }
  }

  for (const Pipeline& pl : plan.pipelines) {
    for (size_t si = 0; si < pl.stages.size(); ++si) {
      const PipelineStage& st = pl.stages[si];
      const Op& op = dag.op(st.op);
      bool last = si + 1 == pl.stages.size();
      if (si == 0) {
        if (st.pipe_child != -1) {
          return Internal(Diag("head-source", dag, st.op,
                               "head stage claims an in-pipe input"));
        }
        if (!(RowLocal(op.kind) || op.kind == OpKind::kUnion ||
              op.kind == OpKind::kEquiJoin ||
              op.kind == OpKind::kThetaJoin)) {
          return Internal(
              Diag("head-kind", dag, st.op, "kind cannot head a pipeline"));
        }
      } else {
        if (st.pipe_child < 0 ||
            static_cast<size_t>(st.pipe_child) >= op.children.size()) {
          return Internal(Diag("pipe-child", dag, st.op,
                               "in-pipe child index out of range"));
        }
        if (op.children[st.pipe_child] != pl.stages[si - 1].op) {
          return Internal(Diag("pipe-child", dag, st.op,
                               "in-pipe child is not the previous stage"));
        }
        if (RowLocal(op.kind)) {
          if (st.pipe_child != 0) {
            return Internal(Diag("pipe-child", dag, st.op,
                                 "row-local stage must stream child 0"));
          }
        } else if (op.kind == OpKind::kThetaJoin) {
          if (st.pipe_child != 0) {
            return Internal(Diag("theta-stream", dag, st.op,
                                 "theta stage must stream its left input"));
          }
          if (op.children[1] == pl.stages[si - 1].op) {
            return Internal(Diag("theta-stream", dag, st.op,
                                 "theta build side is an interior stage"));
          }
        } else if (SinkOnly(op.kind)) {
          if (!last) {
            return Internal(Diag("sink-only", dag, st.op,
                                 "Step/RowId must be the pipeline sink"));
          }
        } else {
          return Internal(
              Diag("stage-kind", dag, st.op, "kind cannot be fused"));
        }
      }
      if (!last) {
        // An interior table is never materialized: its one and only
        // consumer must be the next stage, reading it in-pipe.
        auto eit = edges.find(st.op);
        uint32_t n = eit == edges.end() ? 0 : eit->second;
        if (n != 1) {
          return Internal(Diag("interior-consumers", dag, st.op,
                               "interior stage has " + std::to_string(n) +
                                   " consumer edges (need exactly 1)"));
        }
        if (st.op == root) {
          return Internal(Diag("interior-root", dag, st.op,
                               "the root's table must materialize"));
        }
      }
      // Every non-pipe input must be a materialized table — standalone
      // op or another pipeline's sink, never an interior stage.
      for (size_t ci = 0; ci < op.children.size(); ++ci) {
        if (si > 0 && static_cast<int>(ci) == st.pipe_child) continue;
        if (interior.count(op.children[ci]) != 0) {
          return Internal(Diag("external-materialized", dag, st.op,
                               "input op " + std::to_string(op.children[ci]) +
                                   " is an interior stage of a pipeline"));
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace exrquy
